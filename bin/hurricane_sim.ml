(* hurricane_sim — command-line driver for the HURRICANE locking simulator.

   Subcommands expose the building blocks individually (lock stress, fault
   tests, calibration, destruction storms) with tunable parameters, so a
   user can explore configurations beyond the paper's figures. The `figure`
   subcommand regenerates a named table/figure exactly as the benchmark
   harness does. *)

open Cmdliner
open Hurricane
open Workloads

let ppf = Format.std_formatter

(* -- shared arguments ------------------------------------------------------ *)

let algo_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "mcs" -> Ok Locks.Lock.Mcs_original
    | "h1" | "h1-mcs" -> Ok Locks.Lock.Mcs_h1
    | "h2" | "h2-mcs" -> Ok Locks.Lock.Mcs_h2
    | "cas" | "h2-cas" -> Ok Locks.Lock.Mcs_cas
    | "cohort" | "c-mcs-mcs" -> Ok Locks.Lock.c_mcs_mcs
    | "hmcs" -> Ok Locks.Lock.hmcs
    | "cna" -> Ok Locks.Lock.cna
    | "clh" -> Ok Locks.Lock.Clh
    | "ticket" -> Ok Locks.Lock.Ticket
    | "anderson" -> Ok Locks.Lock.Anderson
    | "adaptive" | "adaptive:cna" -> Ok Locks.Lock.adaptive
    | "adaptive:cohort" ->
      Ok (Locks.Lock.Adaptive { numa = Locks.Lock.c_mcs_mcs })
    | "adaptive:hmcs" -> Ok (Locks.Lock.Adaptive { numa = Locks.Lock.hmcs })
    | s -> (
      match Scanf.sscanf_opt s "spin:%f" (fun v -> v) with
      | Some us -> Ok (Locks.Lock.Spin { max_backoff_us = us })
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown lock algorithm %S (mcs | h1 | h2 | cas | clh | ticket \
                | anderson | cohort | hmcs | cna | \
                adaptive[:cna|:cohort|:hmcs] | spin:<us>)" s)))
  in
  let print ppf a = Format.pp_print_string ppf (Locks.Lock.algo_name a) in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(
    value
    & opt algo_conv Locks.Lock.Mcs_h2
    & info [ "l"; "lock" ] ~docv:"ALGO"
        ~doc:
          "Lock algorithm: mcs, h1, h2, cas, cohort, hmcs, cna or \
           spin:<max-backoff-us>.")

let procs_arg =
  Arg.(
    value & opt int 16
    & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of contending processors.")

let cluster_arg =
  Arg.(
    value & opt int 16
    & info [ "c"; "cluster-size" ] ~docv:"N" ~doc:"Processors per cluster.")

let seed_arg =
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

(* -- locks subcommand ------------------------------------------------------- *)

let locks_cmd =
  let run algo p hold_us window_us =
    let r =
      Lock_stress.run
        ~config:{ Lock_stress.default_config with p; hold_us; window_us }
        algo
    in
    Format.fprintf ppf "%a@." Measure.pp r.Lock_stress.summary;
    Format.fprintf ppf
      "acquisitions=%d lock-module-utilization=%.2f atomics=%d@."
      r.Lock_stress.acquisitions r.Lock_stress.lock_mem_utilization
      r.Lock_stress.atomics
  in
  let hold =
    Arg.(
      value & opt float 0.0
      & info [ "hold" ] ~docv:"US" ~doc:"Critical-section length in us.")
  in
  let window =
    Arg.(
      value & opt float 20000.0
      & info [ "window" ] ~docv:"US" ~doc:"Measurement window in us.")
  in
  Cmd.v
    (Cmd.info "locks" ~doc:"Stress one lock with P processors (Figure 5).")
    Term.(const run $ algo_arg $ procs_arg $ hold $ window)

(* -- faults subcommand ------------------------------------------------------ *)

let faults_cmd =
  let run algo p cluster_size shared seed =
    if shared then begin
      let r =
        Shared_faults.run
          ~config:
            {
              Shared_faults.default_config with
              p;
              cluster_size;
              lock_algo = algo;
              seed;
            }
          ()
      in
      Format.fprintf ppf "%a@." Measure.pp r.Shared_faults.summary;
      Format.fprintf ppf "retries=%d rpcs=%d replications=%d invalidations=%d@."
        r.Shared_faults.retries r.Shared_faults.rpcs
        r.Shared_faults.replications r.Shared_faults.invalidations
    end
    else begin
      let r =
        Independent_faults.run
          ~config:
            {
              Independent_faults.default_config with
              p;
              cluster_size;
              lock_algo = algo;
              seed;
            }
          ()
      in
      Format.fprintf ppf "%a@." Measure.pp r.Independent_faults.summary;
      Format.fprintf ppf "retries=%d rpcs=%d reserve-conflicts=%d@."
        r.Independent_faults.retries r.Independent_faults.rpcs
        r.Independent_faults.reserve_conflicts
    end
  in
  let shared =
    Arg.(
      value & flag
      & info [ "shared" ]
          ~doc:"Run the shared-fault test instead of the independent one.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a page-fault stress test on the simulated kernel (Figure 7).")
    Term.(const run $ algo_arg $ procs_arg $ cluster_arg $ shared $ seed_arg)

(* -- calibrate subcommand --------------------------------------------------- *)

let calibrate_cmd =
  let run () = Report.constants ppf (Experiments.constants ()) in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Measure the absolute cost anchors (fault, RPC, replication).")
    Term.(const run $ const ())

(* -- destroy subcommand ------------------------------------------------------ *)

let destroy_cmd =
  let run cluster_size pessimistic children =
    let strategy =
      if pessimistic then Hkernel.Procs.Pessimistic else Hkernel.Procs.Optimistic
    in
    let r =
      Destruction.run
        ~config:{ Destruction.default_config with cluster_size; strategy; children }
        ()
    in
    Format.fprintf ppf "%a@." Measure.pp r.Destruction.destroy_summary;
    Format.fprintf ppf "destroys=%d retries=%d revalidations=%d lost-races=%d@."
      r.Destruction.destroys r.Destruction.retries r.Destruction.revalidations
      r.Destruction.lost_races
  in
  let pessimistic =
    Arg.(
      value & flag
      & info [ "pessimistic" ]
          ~doc:"Use the pessimistic deadlock-management strategy.")
  in
  let children =
    Arg.(
      value & opt int 8
      & info [ "children" ] ~docv:"N" ~doc:"Processes per program.")
  in
  Cmd.v
    (Cmd.info "destroy"
       ~doc:"Program-destruction storm across clusters (Section 2.5).")
    Term.(const run $ cluster_arg $ pessimistic $ children)

(* -- sweep subcommand --------------------------------------------------------- *)

let sweep_cmd =
  let run algo shared sizes =
    Format.fprintf ppf "%-14s" "cluster";
    List.iter (fun c -> Format.fprintf ppf "%9d" c) sizes;
    Format.fprintf ppf "@.%-14s" (Locks.Lock.algo_name algo);
    List.iter
      (fun cluster_size ->
        let mean =
          if shared then
            (Shared_faults.run
               ~config:
                 {
                   Shared_faults.default_config with
                   p = 16;
                   cluster_size;
                   lock_algo = algo;
                 }
               ())
              .Shared_faults.summary
              .Measure.mean_us
          else
            (Independent_faults.run
               ~config:
                 {
                   Independent_faults.default_config with
                   p = 16;
                   cluster_size;
                   lock_algo = algo;
                 }
               ())
              .Independent_faults.summary
              .Measure.mean_us
        in
        Format.fprintf ppf "%9.1f" mean)
      sizes;
    Format.fprintf ppf "@."
  in
  let shared =
    Arg.(
      value & flag
      & info [ "shared" ] ~doc:"Sweep the shared-fault test instead.")
  in
  let sizes =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Cluster sizes to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep the cluster size at p=16 (Figures 7c/7d).")
    Term.(const run $ algo_arg $ shared $ sizes)

(* -- storm subcommand --------------------------------------------------------- *)

let check_fault_config fc =
  match Eventsim.Fault.validate fc with
  | fc -> fc
  | exception Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 2

let storm_cmd =
  let run mech_name p stall_every_us stall_us drop_rate delay_rate use_verify
      seed =
    let mech =
      match String.lowercase_ascii mech_name with
      | "no-timeout" | "none" -> Fault_storm.No_timeout
      | "timeout" -> Fault_storm.Timeout
      | "bounded-retry" | "bounded" -> Fault_storm.Bounded_retry
      | other ->
        Format.eprintf
          "unknown mechanism %S (no-timeout | timeout | bounded-retry)@." other;
        exit 2
    in
    let cfg = Hector.Config.hector in
    let fault =
      if stall_every_us <= 0.0 && drop_rate <= 0.0 && delay_rate <= 0.0 then
        None
      else
        Some
          (check_fault_config
          @@ {
            Eventsim.Fault.disabled with
            seed;
            stall_every =
              (if stall_every_us > 0.0 then
                 Hector.Config.cycles_of_us cfg stall_every_us
               else 0);
            stall_cycles = Hector.Config.cycles_of_us cfg stall_us;
            rpc_delay_rate = delay_rate;
            rpc_delay_cycles = Hector.Config.cycles_of_us cfg 25.0;
            rpc_drop_rate = drop_rate;
            reply_timeout =
              (if drop_rate > 0.0 then Hector.Config.cycles_of_us cfg 250.0
               else 0);
          })
    in
    let verify =
      if not use_verify then None
      else begin
        if drop_rate > 0.0 then
          Format.eprintf
            "storm: note: reply-drop recovery re-executes services \
             (at-least-once), which the checker reports as double clears — \
             prefer --verify with --drop-rate 0@.";
        Some (Verify.create ~n_procs:(Hector.Config.n_procs cfg) ())
      end
    in
    let r =
      Fault_storm.run ~cfg
        ~config:{ Fault_storm.default_config with p; seed; fault }
        ?verify mech
    in
    Format.fprintf ppf
      "%s: ops=%d deferred=%d rpc-ok=%d/%d resends=%d gave-ups=%d@."
      (Fault_storm.mechanism_name mech)
      r.Fault_storm.ops r.Fault_storm.deferred r.Fault_storm.rpc_ok
      r.Fault_storm.rpc_calls r.Fault_storm.rpc_resends
      r.Fault_storm.rpc_gave_ups;
    Format.fprintf ppf
      "lock-timeouts=%d gcs=%d reserve-timeouts=%d injected: stalls=%d \
       delays=%d drops=%d hotspots=%d@."
      r.Fault_storm.lock_timeouts r.Fault_storm.lock_gcs
      r.Fault_storm.reserve_timeouts r.Fault_storm.stalls_injected
      r.Fault_storm.delays_injected r.Fault_storm.drops_injected
      r.Fault_storm.hotspots_injected;
    Format.fprintf ppf "recovery: %a@." Measure.pp r.Fault_storm.recovery;
    match verify with
    | None -> ()
    | Some v ->
      let n = Verify.violation_count v in
      if n = 0 then Format.fprintf ppf "verify: clean (0 violations)@."
      else begin
        Format.eprintf "verify: %d violation(s):@." n;
        List.iter
          (fun viol -> Format.eprintf "  %a@." Verify.pp_violation viol)
          (Verify.violations v);
        exit 1
      end
  in
  let mech =
    Arg.(
      value & opt string "timeout"
      & info [ "m"; "mechanism" ] ~docv:"MECH"
          ~doc:"Recovery mechanism: no-timeout, timeout or bounded-retry.")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "p"; "workers" ] ~docv:"P" ~doc:"Worker processors.")
  in
  let stall_every =
    Arg.(
      value & opt float 2000.0
      & info [ "stall-every" ] ~docv:"US"
          ~doc:"Inject a holder stall every US microseconds (0 = none).")
  in
  let stall =
    Arg.(
      value & opt float 1000.0
      & info [ "stall" ] ~docv:"US" ~doc:"Length of an injected stall.")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop-rate" ] ~docv:"R" ~doc:"P(message loss) per RPC call.")
  in
  let delay =
    Arg.(
      value & opt float 0.0
      & info [ "delay-rate" ] ~docv:"R" ~doc:"P(delay) per RPC message.")
  in
  let use_verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run under the lockdep checker (lock order, reserve ownership, \
             stall watchdog); exit non-zero on any violation. Pair with \
             $(b,--drop-rate) 0: reply-drop recovery re-executes services, \
             which the ownership checker reports.")
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Fault-injection storm: holder stalls, RPC loss/delay, and the \
          timeout/bounded-retry recovery mechanisms.")
    Term.(
      const run $ mech $ workers $ stall_every $ stall $ drop $ delay
      $ use_verify $ seed_arg)

(* -- verify subcommand --------------------------------------------------------- *)

let verify_cmd =
  let run () =
    let rows = Experiments.verify_suite () in
    Report.verify ppf rows;
    if List.for_all (fun r -> r.Experiments.vok) rows then begin
      Format.fprintf ppf "verify: all probes behaved as planted@.";
      exit 0
    end
    else begin
      Format.eprintf "verify: FAILED — see the rows marked FAIL above@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the lockdep checker against the planted-violation probes \
          (inverted lock order, leaked reserve bit, interrupt-context spin, \
          stalled holder, true deadlock, plus a clean storm that must stay \
          silent). Exits non-zero if any probe misbehaves.")
    Term.(const run $ const ())

(* -- trace subcommand -------------------------------------------------------- *)

let trace_cmd =
  let run out p window_us stall_every_us capacity seed =
    let cfg = Hector.Config.hector in
    let fault =
      if stall_every_us <= 0.0 then None
      else
        Some
          (check_fault_config
          @@ {
               Eventsim.Fault.disabled with
               seed;
               stall_every = Hector.Config.cycles_of_us cfg stall_every_us;
               stall_cycles = Hector.Config.cycles_of_us cfg 1000.0;
             })
    in
    let obs =
      Obs.create ~trace:capacity
        ~cluster_of:(Hector.Config.station_of_proc cfg)
        ~n_clusters:cfg.Hector.Config.stations
        ~n_procs:(Hector.Config.n_procs cfg) ()
    in
    let r =
      Fault_storm.run ~cfg
        ~config:{ Fault_storm.default_config with p; window_us; seed; fault }
        ~obs Fault_storm.Timeout
    in
    let doc =
      Obs.trace_json obs ~us_per_cycle:(Hector.Config.us_of_cycles cfg 1)
    in
    let oc = open_out out in
    output_string oc (Json.to_string ~compact:true doc);
    output_char oc '\n';
    close_out oc;
    Format.fprintf ppf "wrote %s: %d trace events (%d recorded, %d dropped)@."
      out
      (List.length (Obs.trace obs))
      (Obs.trace_recorded obs) (Obs.trace_dropped obs);
    Report.obs ppf { Experiments.obs_rows = Obs.profile_rows obs; obs_storm = r }
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file (Chrome trace-event JSON; load in Perfetto or \
                chrome://tracing).")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "p"; "workers" ] ~docv:"P" ~doc:"Worker processors.")
  in
  let window =
    Arg.(
      value & opt float 8000.0
      & info [ "w"; "window-us" ] ~docv:"US" ~doc:"Storm window, simulated us.")
  in
  let stall_every =
    Arg.(
      value & opt float 2000.0
      & info [ "stall-every-us" ] ~docv:"US"
          ~doc:"Inject a 1000 us holder stall each period; 0 disables.")
  in
  let capacity =
    Arg.(
      value & opt int 65536
      & info [ "trace-events" ] ~docv:"N"
          ~doc:"Ring capacity: keep the last N events.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a fault storm with the contention observer installed and \
          export the event trace as Chrome trace-event JSON, plus the \
          per-lock-class contention profile. Tracing is host-side only: the \
          storm's simulated timing is identical with and without it.")
    Term.(
      const run $ out $ workers $ window $ stall_every $ capacity $ seed)

(* -- numa subcommand --------------------------------------------------------- *)

let numa_cmd =
  let run algo clusters hold_us window_us =
    let r =
      Numa_stress.run
        ~config:
          {
            Numa_stress.default_config with
            n_clusters = clusters;
            hold_us;
            window_us;
          }
        algo
    in
    Format.fprintf ppf "%a@." Measure.pp r.Numa_stress.summary;
    let total = r.Numa_stress.local_handoffs + r.Numa_stress.remote_handoffs in
    Format.fprintf ppf
      "acquisitions=%d handoffs=%d/%d local/remote (remote %.0f%%) \
       max-wait=%.1fus atomics=%d@."
      r.Numa_stress.acquisitions r.Numa_stress.local_handoffs
      r.Numa_stress.remote_handoffs
      (if total = 0 then 0.0
       else 100.0 *. float_of_int r.Numa_stress.remote_handoffs /. float_of_int total)
      r.Numa_stress.max_wait_us r.Numa_stress.atomics
  in
  let clusters =
    Arg.(
      value & opt int 4
      & info [ "clusters" ] ~docv:"C" ~doc:"Number of clusters (p=16 split).")
  in
  let hold =
    Arg.(
      value & opt float 0.0
      & info [ "hold" ] ~docv:"US" ~doc:"Critical-section length in us.")
  in
  let window =
    Arg.(
      value & opt float 20000.0
      & info [ "window" ] ~docv:"US" ~doc:"Measurement window in us.")
  in
  Cmd.v
    (Cmd.info "numa"
       ~doc:
         "Cross-cluster lock stress: measures hand-off locality (local vs \
          remote) and worst-case waits for one lock algorithm. Compare \
          cohort/hmcs/cna against h2.")
    Term.(const run $ algo_arg $ clusters $ hold $ window)

(* -- abort subcommand --------------------------------------------------------- *)

let abort_cmd =
  let run algo clusters timeout_us stall_us window_us seed =
    let r =
      Abort_storm.run
        ~config:
          {
            Abort_storm.default_config with
            n_clusters = clusters;
            timeout_us;
            stall_us;
            window_us;
            seed;
          }
        algo
    in
    Format.fprintf ppf "overshoot: %a@." Measure.pp r.Abort_storm.overshoot;
    Format.fprintf ppf "recovery:  %a@." Measure.pp r.Abort_storm.recovery;
    Format.fprintf ppf
      "attempts=%d acquisitions=%d aborts=%d (fast-fail %d) stalls=%d \
       max-overshoot=%.1fus bound-ratio=%.2f remote-aborts=%d repairs=%d \
       final-free=%b@."
      r.Abort_storm.attempts r.Abort_storm.acquisitions r.Abort_storm.aborts
      r.Abort_storm.fast_fails r.Abort_storm.stalls
      r.Abort_storm.max_overshoot_us r.Abort_storm.bound_ratio
      r.Abort_storm.remote_aborts r.Abort_storm.obs_repairs
      r.Abort_storm.final_free
  in
  let clusters =
    Arg.(
      value & opt int 4
      & info [ "clusters" ] ~docv:"C" ~doc:"Number of clusters (p=16 split).")
  in
  let timeout =
    Arg.(
      value & opt float 150.0
      & info [ "timeout" ] ~docv:"US" ~doc:"Per-attempt deadline in us.")
  in
  let stall =
    Arg.(
      value & opt float 1500.0
      & info [ "stall" ] ~docv:"US"
          ~doc:"How long the planted holder goes dark per stall.")
  in
  let window =
    Arg.(
      value & opt float 20000.0
      & info [ "window" ] ~docv:"US" ~doc:"Measurement window in us.")
  in
  Cmd.v
    (Cmd.info "abort"
       ~doc:
         "Timed acquisition under a planted cross-cluster holder stall: \
          every waiter attempts through the timed face and must return \
          within a bounded overshoot of its deadline (experiment \
          ABORT-STORM). Only abortable algorithms are accepted.")
    Term.(const run $ algo_arg $ clusters $ timeout $ stall $ window $ seed_arg)

(* -- crash subcommand --------------------------------------------------------- *)

let crash_cmd =
  let run algo clusters kills check_period_us hold_us window_us seed =
    let r =
      Crash_storm.run
        ~config:
          {
            Crash_storm.default_config with
            n_clusters = clusters;
            n_kills = kills;
            check_period_us;
            hold_us;
            window_us;
            seed;
          }
        algo
    in
    Format.fprintf ppf "recovery: %a@." Measure.pp r.Crash_storm.recovery;
    List.iter
      (fun (c, s) ->
        Format.fprintf ppf "cluster %d: %a@." c Measure.pp s)
      r.Crash_storm.by_cluster;
    Format.fprintf ppf
      "kills=%d acquisitions=%d obs-crashes=%d obs-recoveries=%d \
       lockdep-recoveries=%d lockdep-violations=%d final-free=%b@."
      r.Crash_storm.kills r.Crash_storm.acquisitions r.Crash_storm.obs_crashes
      r.Crash_storm.obs_recoveries r.Crash_storm.lockdep_recoveries
      r.Crash_storm.lockdep_violations r.Crash_storm.final_free
  in
  let clusters =
    Arg.(
      value & opt int 4
      & info [ "clusters" ] ~docv:"C" ~doc:"Number of clusters (p=16 split).")
  in
  let kills =
    Arg.(
      value & opt int 6
      & info [ "kills" ] ~docv:"N"
          ~doc:"Victim processors, each fail-stopped once mid-critical-section.")
  in
  let check_period =
    Arg.(
      value & opt float 25.0
      & info [ "check-period" ] ~docv:"US"
          ~doc:"Recoverable-acquire slice (the dead-holder detector period).")
  in
  let hold =
    Arg.(
      value & opt float 2.0
      & info [ "hold" ] ~docv:"US" ~doc:"Critical-section length in us.")
  in
  let window =
    Arg.(
      value & opt float 20000.0
      & info [ "window" ] ~docv:"US" ~doc:"Measurement window in us.")
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Fail-stop crashes planted mid-critical-section: victims die \
          holding the lock, survivors acquire through the recoverable face \
          and force-release each orphaned hold (experiment CRASH-STORM). \
          Only recoverable algorithms are accepted.")
    Term.(
      const run $ algo_arg $ clusters $ kills $ check_period $ hold $ window
      $ seed_arg)

(* -- rw subcommand ------------------------------------------------------------ *)

let rw_cmd =
  let run algo style_name p clusters read_ratio ops reader_pref centralised
      seed =
    let policy =
      if reader_pref then Locks.Rwlock.Reader_preference
      else Locks.Rwlock.Writer_blocking
    in
    let style =
      match String.lowercase_ascii style_name with
      | "mutex" -> Rw_scaling.Mutex algo
      | "rw" -> Rw_scaling.Rw_lock { writer = algo; policy; centralised }
      | "seqlock" -> Rw_scaling.Seqlock_style { writer = algo }
      | "replicated" -> Rw_scaling.Replicated { writer = algo }
      | other ->
        Format.eprintf "unknown style %S (mutex | rw | seqlock | replicated)@."
          other;
        exit 2
    in
    let r =
      Rw_scaling.run
        ~config:
          {
            Rw_scaling.default_config with
            p;
            n_clusters = clusters;
            ops;
            read_ratio;
            style;
            seed;
          }
        ()
    in
    Format.fprintf ppf "reads:  %a@." Measure.pp r.Rw_scaling.read_summary;
    Format.fprintf ppf "writes: %a@." Measure.pp r.Rw_scaling.write_summary;
    Format.fprintf ppf
      "%s: reads=%d writes=%d throughput=%.1f ops/ms (reads %.1f/ms) \
       peak-readers=%d read-remote=%d seq-aborts=%d lockdep-violations=%d@."
      r.Rw_scaling.style_name r.Rw_scaling.reads_done r.Rw_scaling.writes_done
      r.Rw_scaling.throughput_ops_ms r.Rw_scaling.read_throughput_ops_ms
      r.Rw_scaling.peak_readers r.Rw_scaling.read_remote
      r.Rw_scaling.seq_aborts r.Rw_scaling.lockdep_violations;
    if r.Rw_scaling.lockdep_violations > 0 then exit 1
  in
  let style =
    Arg.(
      value & opt string "rw"
      & info [ "style" ] ~docv:"STYLE"
          ~doc:
            "Read-path style: mutex (exclusive lock), rw (distributed RW \
             lock over the writer algorithm), seqlock, or replicated.")
  in
  let procs =
    Arg.(
      value & opt int 8
      & info [ "p"; "procs" ] ~docv:"P" ~doc:"Contending processors.")
  in
  let clusters =
    Arg.(
      value & opt int 2
      & info [ "clusters" ] ~docv:"C"
          ~doc:"Clusters the processors are spread across.")
  in
  let read_ratio =
    Arg.(
      value & opt float 0.99
      & info [ "read-ratio" ] ~docv:"R"
          ~doc:"Fraction of operations that are read-only lookups.")
  in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per processor.")
  in
  let reader_pref =
    Arg.(
      value & flag
      & info [ "reader-preference" ]
          ~doc:
            "Use the reader-preference sweep order (close and drain one \
             cluster gate at a time) instead of writer-blocking.")
  in
  let centralised =
    Arg.(
      value & flag
      & info [ "centralised" ]
          ~doc:
            "Home every reader indicator on one cluster (the layout \
             baseline) instead of distributing them.")
  in
  Cmd.v
    (Cmd.info "rw"
       ~doc:
         "Read-mostly lookups: distributed reader-writer lock vs seqlock vs \
          per-cluster replication vs one exclusive lock (experiment \
          RW-SCALING). Reports reader-parallelism peaks, remote read-path \
          traffic, and lockdep violations (non-zero exit on any violation).")
    Term.(
      const run $ algo_arg $ style $ procs $ clusters $ read_ratio $ ops
      $ reader_pref $ centralised $ seed_arg)

(* -- hash subcommand --------------------------------------------------------- *)

let hash_cmd =
  let run algo granularity_name p shards read_ratio locked churn seed =
    let granularity =
      match String.lowercase_ascii granularity_name with
      | "hybrid" -> Hkernel.Khash.Hybrid
      | "coarse" -> Hkernel.Khash.Coarse
      | "fine" -> Hkernel.Khash.Fine
      | "sharded" -> Hkernel.Khash.Sharded
      | other ->
        Format.eprintf
          "unknown granularity %S (hybrid | coarse | fine | sharded)@." other;
        exit 2
    in
    let r =
      Hash_scaling.run
        ~config:
          {
            Hash_scaling.default_config with
            p;
            shards;
            read_ratio;
            churn_fraction = churn;
            granularity;
            optimistic = not locked;
            lock_algo = algo;
            seed;
          }
        ()
    in
    Format.fprintf ppf "reads:   %a@." Measure.pp r.Hash_scaling.read_summary;
    Format.fprintf ppf "updates: %a@." Measure.pp r.Hash_scaling.update_summary;
    Format.fprintf ppf
      "%s shards=%d optimistic=%b: throughput=%.1f ops/ms makespan=%.0fus \
       opt-hits=%d opt-fallbacks=%d reserve-conflicts=%d atomics=%d@."
      (Hkernel.Khash.granularity_name r.Hash_scaling.granularity)
      r.Hash_scaling.shards r.Hash_scaling.optimistic
      r.Hash_scaling.throughput_ops_ms r.Hash_scaling.makespan_us
      r.Hash_scaling.optimistic_hits r.Hash_scaling.optimistic_fallbacks
      r.Hash_scaling.reserve_conflicts r.Hash_scaling.atomics
  in
  let granularity =
    Arg.(
      value & opt string "sharded"
      & info [ "g"; "granularity" ] ~docv:"G"
          ~doc:"Table granularity: hybrid, coarse, fine or sharded.")
  in
  let procs =
    Arg.(
      value & opt int 8
      & info [ "p"; "procs" ] ~docv:"P" ~doc:"Contending processors.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"S" ~doc:"Shard count (sharded granularity).")
  in
  let read_ratio =
    Arg.(
      value & opt float 0.9
      & info [ "read-ratio" ] ~docv:"R"
          ~doc:"Fraction of operations that are read-only lookups.")
  in
  let locked =
    Arg.(
      value & flag
      & info [ "locked" ]
          ~doc:
            "Force lookups through the locked path (disable the seqlock \
             optimistic reads).")
  in
  let churn =
    Arg.(
      value & opt float 0.3
      & info [ "churn" ] ~docv:"F"
          ~doc:
            "Fraction of non-read operations that delete and re-insert \
             their key (chain mutations).")
  in
  Cmd.v
    (Cmd.info "hash"
       ~doc:
         "Read/update mix over one hash table: sharded granularity and the \
          seqlock optimistic read path against the single-lock hybrid \
          (experiment HASH-SCALING).")
    Term.(
      const run $ algo_arg $ granularity $ procs $ shards $ read_ratio
      $ locked $ churn $ seed_arg)

(* -- slo subcommand ----------------------------------------------------------- *)

let slo_cmd =
  let run algo p elements rate requests shards read_ratio work_us seed =
    let r =
      Slo_stream.run
        ~config:
          {
            Slo_stream.default_config with
            Slo_stream.p;
            elements;
            rate_per_ms = rate;
            requests;
            shards;
            read_ratio;
            element_work_us = work_us;
            lock_algo = algo;
            seed;
          }
        ()
    in
    Format.fprintf ppf "reads:   %a@." Measure.pp r.Slo_stream.read_summary;
    Format.fprintf ppf "updates: %a@." Measure.pp r.Slo_stream.update_summary;
    Format.fprintf ppf
      "offered=%.1f/ms achieved=%.1f/ms completed=%d makespan=%.0fus \
       peak-backlog=%d opt-hits=%d opt-fallbacks=%d atomics=%d \
       lockdep-violations=%d@."
      r.Slo_stream.offered_per_ms r.Slo_stream.achieved_per_ms
      r.Slo_stream.completed r.Slo_stream.makespan_us
      r.Slo_stream.peak_backlog r.Slo_stream.optimistic_hits
      r.Slo_stream.optimistic_fallbacks r.Slo_stream.atomics
      r.Slo_stream.lockdep_violations;
    if r.Slo_stream.lockdep_violations > 0 then exit 1
  in
  let procs =
    Arg.(
      value
      & opt int Slo_stream.default_config.Slo_stream.p
      & info [ "p"; "procs" ] ~docv:"P" ~doc:"Server processors.")
  in
  let elements =
    Arg.(
      value
      & opt int Slo_stream.default_config.Slo_stream.elements
      & info [ "elements" ] ~docv:"N"
          ~doc:"Keys pre-inserted into the table (requests target these).")
  in
  let rate =
    Arg.(
      value
      & opt float Slo_stream.default_config.Slo_stream.rate_per_ms
      & info [ "rate" ] ~docv:"R"
          ~doc:"Offered load: requests per virtual millisecond, total.")
  in
  let requests =
    Arg.(
      value
      & opt int Slo_stream.default_config.Slo_stream.requests
      & info [ "requests" ] ~docv:"N" ~doc:"Arrivals generated.")
  in
  let shards =
    Arg.(
      value
      & opt int Slo_stream.default_config.Slo_stream.shards
      & info [ "shards" ] ~docv:"S" ~doc:"Table shard count.")
  in
  let read_ratio =
    Arg.(
      value
      & opt float Slo_stream.default_config.Slo_stream.read_ratio
      & info [ "read-ratio" ] ~docv:"R"
          ~doc:"Fraction of requests that are read-only lookups.")
  in
  let work_us =
    Arg.(
      value
      & opt float Slo_stream.default_config.Slo_stream.element_work_us
      & info [ "work" ] ~docv:"US" ~doc:"Update work under the element, us.")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Open-loop sustained-request stream over the sharded \
          million-element table: exponential arrivals at a fixed offered \
          rate, FIFO queueing behind a random server, \
          arrival-to-completion p50/p99/p99.9 (experiment SLO). Exits \
          non-zero on lockdep violations.")
    Term.(
      const run $ algo_arg $ procs $ elements $ rate $ requests $ shards
      $ read_ratio $ work_us $ seed_arg)

(* -- adaptive subcommand ------------------------------------------------------ *)

let adaptive_cmd =
  let run algo p_hot p_cold clusters phase_us hold_us seed =
    let r =
      Diurnal.run
        ~config:
          {
            Diurnal.default_config with
            Diurnal.algo;
            p_hot;
            p_cold;
            n_clusters = clusters;
            phase_us;
            hold_us;
            seed;
          }
        ()
    in
    Format.fprintf ppf
      "%s: cold1=%d hot=%d cold2=%d cold/ms=%.1f hot/ms=%.1f@."
      r.Diurnal.algo_name r.Diurnal.cold1_ops r.Diurnal.hot_ops
      r.Diurnal.cold2_ops r.Diurnal.cold_throughput_ops_ms
      r.Diurnal.hot_throughput_ops_ms;
    Format.fprintf ppf
      "morphs-up=%d morphs-down=%d final-shape=%d final-free=%b \
       lockdep-violations=%d@."
      r.Diurnal.morphs_up r.Diurnal.morphs_down r.Diurnal.final_shape
      r.Diurnal.final_free r.Diurnal.lockdep_violations;
    if r.Diurnal.lockdep_violations > 0 then exit 1
  in
  let algo =
    Arg.(
      value
      & opt algo_conv Locks.Lock.adaptive
      & info [ "l"; "lock" ] ~docv:"ALGO"
          ~doc:
            "Lock algorithm (adaptive[:cna|:cohort|:hmcs], or any static \
             shape to race against).")
  in
  let p_hot =
    Arg.(
      value & opt int 16
      & info [ "p-hot" ] ~docv:"P" ~doc:"Processors at the daytime peak.")
  in
  let p_cold =
    Arg.(
      value & opt int 1
      & info [ "p-cold" ] ~docv:"P"
          ~doc:"Processors in the overnight trickle.")
  in
  let clusters =
    Arg.(
      value & opt int 4
      & info [ "clusters" ] ~docv:"C" ~doc:"Number of clusters.")
  in
  let phase =
    Arg.(
      value & opt float 1200.0
      & info [ "phase" ] ~docv:"US"
          ~doc:"Length of each of the three plateaus in us.")
  in
  let hold =
    Arg.(
      value & opt float 1.5
      & info [ "hold" ] ~docv:"US" ~doc:"Critical-section length in us.")
  in
  Cmd.v
    (Cmd.info "adaptive"
       ~doc:
         "The diurnal load cycle: load ramps cold -> hot -> cold and the \
          morphing lock promotes test&set -> MCS -> NUMA composite as the \
          peak arrives, then demotes as traffic cools (experiment \
          ADAPTIVE). Exits non-zero on lockdep violations.")
    Term.(
      const run $ algo $ p_hot $ p_cold $ clusters $ phase $ hold $ seed_arg)

(* -- figure subcommand -------------------------------------------------------- *)

let figure_cmd =
  let run name =
    match name with
    | "fig4" -> Report.fig4 ppf (Experiments.fig4 ())
    | "uncontended" -> Report.uncontended ppf (Experiments.uncontended ())
    | "fig5a" -> Report.fig5 ppf ~name:"FIG5a" ~hold_us:0.0 (Experiments.fig5a ())
    | "fig5b" ->
      Report.fig5 ppf ~name:"FIG5b" ~hold_us:25.0 (Experiments.fig5b ())
    | "starvation" -> Report.starvation ppf (Experiments.starvation ())
    | "fig7a" ->
      Report.fig7 ppf ~name:"FIG7a" ~xlabel:"p" ~claim:"(see bench)"
        (Experiments.fig7a ())
    | "fig7b" ->
      Report.fig7 ppf ~name:"FIG7b" ~xlabel:"p" ~claim:"(see bench)"
        (Experiments.fig7b ())
    | "fig7c" ->
      Report.fig7 ppf ~name:"FIG7c" ~xlabel:"cluster" ~claim:"(see bench)"
        (Experiments.fig7c ())
    | "fig7d" ->
      Report.fig7 ppf ~name:"FIG7d" ~xlabel:"cluster" ~claim:"(see bench)"
        (Experiments.fig7d ())
    | "constants" -> Report.constants ppf (Experiments.constants ())
    | "retries" -> Report.retries ppf (Experiments.retries ())
    | "trylock" -> Report.trylock ppf (Experiments.trylock ())
    | "classes" -> Report.classes ppf (Experiments.classes ())
    | "cow" -> Report.cow ppf (Experiments.cow ())
    | "fault-matrix" -> Report.fault_matrix ppf (Experiments.fault_matrix ())
    | "verify" -> Report.verify ppf (Experiments.verify_suite ())
    | "obs" -> Report.obs ppf (Experiments.obs_profile ())
    | "numa" -> Report.numa_locks ppf (Experiments.numa_locks ())
    | "hash" -> Report.hash_scaling ppf (Experiments.hash_scaling ())
    | "abort-storm" -> Report.abort_storm ppf (Experiments.abort_storm ())
    | "crash-storm" -> Report.crash_storm ppf (Experiments.crash_storm ())
    | "rw" -> Report.rw_scaling ppf (Experiments.rw_scaling ())
    | "slo" -> Report.slo ppf (Experiments.slo ())
    | "adaptive" -> Report.adaptive ppf (Experiments.adaptive ())
    | other ->
      Format.eprintf "unknown figure %S@." other;
      exit 2
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE" ~doc:"fig4, uncontended, fig5a, fig5b, ...")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(const run $ name_arg)

let main_cmd =
  let doc = "Simulator for the HURRICANE locking architecture on HECTOR." in
  Cmd.group
    (Cmd.info "hurricane_sim" ~version:"1.0.0" ~doc)
    [
      locks_cmd;
      faults_cmd;
      calibrate_cmd;
      destroy_cmd;
      sweep_cmd;
      storm_cmd;
      verify_cmd;
      trace_cmd;
      numa_cmd;
      abort_cmd;
      crash_cmd;
      rw_cmd;
      hash_cmd;
      slo_cmd;
      adaptive_cmd;
      figure_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
