(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe fig5a fig7d ...  # selected experiments
     dune exec bench/main.exe -- --json [names] # write BENCH_results.json
     dune exec bench/main.exe -- --bechamel    # wall-clock micro-benchmarks
                                               # of the substrate (one
                                               # Test.make per table)

   All experiment output is simulated HECTOR time; the Bechamel mode
   measures the *simulator's* own wall-clock cost. *)

open Hurricane

let ppf = Format.std_formatter

let run_fig4 () = Report.fig4 ppf (Experiments.fig4 ())
let run_uncontended () = Report.uncontended ppf (Experiments.uncontended ())

let run_fig5a () =
  Report.fig5 ppf ~name:"FIG5a" ~hold_us:0.0 (Experiments.fig5a ())

let run_fig5b () =
  Report.fig5 ppf ~name:"FIG5b" ~hold_us:25.0 (Experiments.fig5b ())

let run_starvation () = Report.starvation ppf (Experiments.starvation ())

let run_fig7a () =
  Report.fig7 ppf ~name:"FIG7a - independent faults, one 16-processor cluster"
    ~xlabel:"p"
    ~claim:
      "little difference up to p=4; beyond that spin degrades; at p=16 spin \
       is over 2x the distributed locks"
    (Experiments.fig7a ())

let run_fig7b () =
  Report.fig7 ppf ~name:"FIG7b - shared faults, one 16-processor cluster"
    ~xlabel:"p"
    ~claim:
      "smaller gap between distributed and spin locks: contention shifts to \
       the reserve bits"
    (Experiments.fig7b ())

let run_fig7c () =
  Report.fig7 ppf ~name:"FIG7c - independent faults, p=16, cluster-size sweep"
    ~xlabel:"cluster"
    ~claim:
      "small clusters best; no degradation for cluster size <= 4 (hybrid \
       matches fine-grain locking)"
    (Experiments.fig7c ())

let run_fig7d () =
  Report.fig7 ppf ~name:"FIG7d - shared faults, p=16, cluster-size sweep"
    ~xlabel:"cluster"
    ~claim:
      "moderate cluster sizes win: inter-cluster ownership traffic dominates \
       very small clusters, lock contention the largest"
    (Experiments.fig7d ())

let run_constants () = Report.constants ppf (Experiments.constants ())
let run_retries () = Report.retries ppf (Experiments.retries ())

let run_abl1 () =
  Report.ablation_granularity ppf (Experiments.ablation_granularity ())

let run_abl2 () =
  Report.ablation_combining ppf (Experiments.ablation_combining ())

let run_abl3 () = Report.ablation_cas ppf (Experiments.ablation_cas ())
let run_abl4 () = Report.ablation_clh ppf (Experiments.ablation_clh ())

let run_abl5 () =
  Report.ablation_cached_locks ppf (Experiments.ablation_cached_locks ())

let run_abl6 () =
  Report.ablation_spin_then_block ppf (Experiments.ablation_spin_then_block ())

let run_abl7 () = Report.ablation_lockfree ppf (Experiments.ablation_lockfree ())
let run_abl8 () = Report.ablation_layout ppf (Experiments.ablation_layout ())

let run_abl9 () =
  Report.ablation_lock_family ppf (Experiments.ablation_lock_family ())
let run_trylock () = Report.trylock ppf (Experiments.trylock ())
let run_classes () = Report.classes ppf (Experiments.classes ())
let run_cow () = Report.cow ppf (Experiments.cow ())
let run_fs () = Report.fs ppf (Experiments.fs ())
let run_fault_matrix () = Report.fault_matrix ppf (Experiments.fault_matrix ())
let run_verify () = Report.verify ppf (Experiments.verify_suite ())
let run_obs () = Report.obs ppf (Experiments.obs_profile ())
let run_numa () = Report.numa_locks ppf (Experiments.numa_locks ())
let run_hash () = Report.hash_scaling ppf (Experiments.hash_scaling ())
let run_abort () = Report.abort_storm ppf (Experiments.abort_storm ())
let run_crash () = Report.crash_storm ppf (Experiments.crash_storm ())
let run_rw () = Report.rw_scaling ppf (Experiments.rw_scaling ())
let run_slo () = Report.slo ppf (Experiments.slo ())
let run_adaptive () = Report.adaptive ppf (Experiments.adaptive ())

let experiments =
  [
    ("fig4", run_fig4);
    ("uncontended", run_uncontended);
    ("fig5a", run_fig5a);
    ("fig5b", run_fig5b);
    ("starvation", run_starvation);
    ("fig7a", run_fig7a);
    ("fig7b", run_fig7b);
    ("fig7c", run_fig7c);
    ("fig7d", run_fig7d);
    ("constants", run_constants);
    ("retries", run_retries);
    ("ablation-granularity", run_abl1);
    ("ablation-combining", run_abl2);
    ("ablation-cas", run_abl3);
    ("ablation-clh", run_abl4);
    ("ablation-cached-locks", run_abl5);
    ("ablation-spin-then-block", run_abl6);
    ("ablation-lockfree", run_abl7);
    ("ablation-layout", run_abl8);
    ("ablation-lock-family", run_abl9);
    ("trylock", run_trylock);
    ("classes", run_classes);
    ("cow", run_cow);
    ("fs", run_fs);
    ("fault-matrix", run_fault_matrix);
    ("verify", run_verify);
    ("obs", run_obs);
    ("numa", run_numa);
    ("hash", run_hash);
    ("abort-storm", run_abort);
    ("crash-storm", run_crash);
    ("rw", run_rw);
    ("slo", run_slo);
    ("adaptive", run_adaptive);
  ]

(* -- Bechamel wall-clock micro-benchmarks ---------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let open Hector in
  let uncontended_pair =
    Test.make ~name:"UNC: simulate uncontended H2 pair"
      (Staged.stage (fun () ->
           ignore (Workloads.Uncontended.run ~iters:50 Locks.Lock.Mcs_h2)))
  in
  let fig5_step =
    Test.make ~name:"FIG5: simulate 4-proc lock stress window"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Lock_stress.run
                ~config:
                  {
                    Workloads.Lock_stress.default_config with
                    p = 4;
                    window_us = 1000.0;
                  }
                Locks.Lock.Mcs_h2)))
  in
  let fig7_fault =
    Test.make ~name:"FIG7: simulate 4-proc independent faults"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Independent_faults.run
                ~config:
                  {
                    Workloads.Independent_faults.default_config with
                    p = 4;
                    iters = 10;
                  }
                ())))
  in
  let engine_events =
    Test.make ~name:"substrate: 10k engine events"
      (Staged.stage (fun () ->
           let eng = Eventsim.Engine.create () in
           for i = 1 to 10_000 do
             Eventsim.Engine.schedule eng ~at:i (fun () -> ())
           done;
           Eventsim.Engine.run eng))
  in
  (* The flattened-core pin: schedule-then-dispatch of 100k thunks through
     the structure-of-arrays heap, reported as events/sec so the engine's
     raw dispatch rate is tracked across PRs (the interleaved variant keeps
     the heap at working depth instead of draining a pre-filled one). *)
  let engine_events_flat =
    Test.make ~name:"substrate: 100k events pinned (events/sec)"
      (Staged.stage (fun () ->
           let eng = Eventsim.Engine.create () in
           let remaining = ref 100_000 in
           let rec feed () =
             if !remaining > 0 then begin
               decr remaining;
               Eventsim.Engine.schedule_after eng ~delay:1 feed
             end
           in
           (* 16 concurrent chains: the heap stays ~16 deep, as in a
              16-processor simulation, rather than degenerating to a
              FIFO drain. *)
           for _ = 1 to 16 do
             feed ()
           done;
           Eventsim.Engine.run eng))
  in
  let machine_accesses =
    Test.make ~name:"substrate: 10k timed remote reads"
      (Staged.stage (fun () ->
           let eng = Eventsim.Engine.create () in
           let machine = Machine.create eng Config.hector in
           let cell = Machine.alloc machine ~home:15 0 in
           Eventsim.Process.spawn eng (fun () ->
               for _ = 1 to 10_000 do
                 ignore (Machine.read machine ~proc:0 cell)
               done);
           Eventsim.Engine.run eng))
  in
  [
    (uncontended_pair, None);
    (fig5_step, None);
    (fig7_fault, None);
    (engine_events, Some 10_000);
    (engine_events_flat, Some 100_000);
    (machine_accesses, None);
  ]

(* [filters] restricts to tests whose name contains one of the given
   substrings (CI runs [--bechamel substrate] as a fast smoke step). *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let run_bechamel ?(filters = []) () =
  let open Bechamel in
  let selected (test, _) =
    filters = [] || List.exists (fun f -> contains ~sub:f (Test.name test)) filters
  in
  let tests = List.filter selected (bechamel_tests ()) in
  if tests = [] then begin
    Format.eprintf "no bechamel test matches %s@." (String.concat ", " filters);
    exit 2
  end;
  List.iter
    (fun (test, events_per_run) ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true
          ~predictors:[| Measure.run |]
      in
      let estimates = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let rate =
              match events_per_run with
              | Some n when est > 0.0 ->
                Printf.sprintf " %11.0f events/sec" (float_of_int n /. est *. 1e9)
              | _ -> ""
            in
            Format.printf "%-50s %14.1f ns/run%s@." name est rate
          | _ -> Format.printf "%-50s (no estimate)@." name)
        estimates)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | "--bechamel" :: filters -> run_bechamel ~filters ()
  | "--json" :: rest ->
    (* Machine-readable export; non-flag arguments restrict to a subset of
       experiments (CI runs a fast one). [--jobs N] runs the independent
       experiment cells on N domains — the file is byte-identical to a
       sequential run — and [--out PATH] redirects the output. See
       Bench_json for the schema. *)
    let rec parse names jobs path = function
      | [] -> (List.rev names, jobs, path)
      | "--jobs" :: n :: tl -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse names j path tl
        | _ ->
          Format.eprintf "--jobs expects a positive integer, got %S@." n;
          exit 2)
      | [ "--jobs" ] ->
        Format.eprintf "--jobs expects a positive integer@.";
        exit 2
      | "--out" :: p :: tl -> parse names jobs p tl
      | [ "--out" ] ->
        Format.eprintf "--out expects a path@.";
        exit 2
      | name :: tl -> parse (name :: names) jobs path tl
    in
    let names, jobs, path = parse [] 1 "BENCH_results.json" rest in
    (try Bench_json.write ~path (Bench_json.document ~jobs ~names ())
     with Invalid_argument msg ->
       Format.eprintf "%s; available: %s@." msg
         (String.concat ", " Bench_json.default_names);
       exit 2);
    Format.printf "wrote %s@." path
  | [ "--dat"; dir ] ->
    let written = Dat.write_all dir in
    List.iter (Format.printf "wrote %s@.") written
  | [] ->
    Format.printf
      "HURRICANE locking reproduction - all experiments (simulated HECTOR \
       time)@.";
    List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Format.eprintf "unknown experiment %S; available: %s, --bechamel@."
            name
            (String.concat ", " (List.map fst experiments));
          exit 2)
      names
