(** TSV emitters for the figure series plus a gnuplot script —
    [bench/main.exe --dat DIR]. Each function returns the written path. *)

val fig5 : string -> name:string -> Experiments.fig5_series list -> string
val fig7 : string -> name:string -> Experiments.fig7_series list -> string
val gnuplot_script : string -> string

(** Run every figure and write its data (and the gnuplot script) into the
    directory, creating it if needed. Returns the written paths. *)
val write_all : string -> string list
