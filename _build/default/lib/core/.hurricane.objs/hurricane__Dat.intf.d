lib/core/dat.mli: Experiments
