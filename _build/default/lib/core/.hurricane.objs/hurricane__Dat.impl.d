lib/core/dat.ml: Experiments Filename List Lock Lock_stress Locks Measure Printf String Sys Workloads
