(* Binary min-heap of timestamped events.

   Events are ordered by (time, seq): the sequence number breaks ties so that
   events scheduled for the same instant run in FIFO order, which keeps every
   simulation deterministic. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift the new entry up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.data.(i) t.data.(parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let peek_time t = if t.len = 0 then None else Some t.data.(0).time

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift the displaced entry down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some top
  end

let clear t = t.len <- 0

(* Pop all entries in order; used by tests. *)
let drain t =
  let rec go acc =
    match pop t with
    | None -> List.rev acc
    | Some e -> go (e :: acc)
  in
  go []
