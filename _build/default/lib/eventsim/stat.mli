(** Exact sample statistics for simulated latencies (cycles).

    All samples are retained, so percentiles and tail fractions are exact;
    this is needed for the paper's starvation measurement (fraction of lock
    acquisitions exceeding 2 ms). *)

type t

val create : string -> t

val name : t -> string

val add : t -> int -> unit

val count : t -> int

val mean : t -> float

val min_value : t -> int

val max_value : t -> int

(** Nearest-rank percentile, [q] clamped to [0, 1]. *)
val percentile : t -> float -> int

val median : t -> int

(** Fraction of samples strictly greater than [threshold] cycles. *)
val fraction_above : t -> int -> float

(** Sample standard deviation. *)
val stddev : t -> float

val clear : t -> unit

val to_list : t -> int list

val pp : Format.formatter -> t -> unit
