(** FIFO server resource (memory module, bus, ring).

    A request arriving at time [now] starts service at
    [max now (next_free t)] and occupies the resource for [service] cycles.
    Requests are served in arrival order; queueing delay is what produces the
    second-order contention effects the paper measures. *)

type t

val create : string -> t

val name : t -> string

(** [reserve t ~now ~service] claims the next service slot and returns the
    completion time. The caller is expected to [Process.wait_until] it. *)
val reserve : t -> now:int -> service:int -> int

(** Time at which the resource next becomes idle. *)
val next_free : t -> int

val busy_cycles : t -> int

(** Total cycles requests spent queued before service began. *)
val queued_cycles : t -> int

val n_requests : t -> int

(** Zero all counters and make the resource immediately free. *)
val reset : t -> unit

(** Fraction of [horizon] cycles the resource was busy. *)
val utilization : t -> horizon:int -> float

val pp : Format.formatter -> t -> unit
