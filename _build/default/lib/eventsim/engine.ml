(* Discrete-event engine.

   The engine owns the virtual clock and an event heap of thunks. Simulated
   code never blocks the OCaml runtime: anything that must wait re-schedules
   itself (see {!Process}). Time is measured in integer machine cycles. *)

exception Deadlock of string

type t = {
  mutable now : int;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  mutable executed : int;
  mutable max_events : int; (* safety valve against runaway simulations *)
}

let create ?(max_events = 200_000_000) () =
  { now = 0; seq = 0; events = Pqueue.create (); executed = 0; max_events }

let now t = t.now

let events_executed t = t.executed

let schedule t ~at f =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at t.now);
  let seq = t.seq in
  t.seq <- seq + 1;
  Pqueue.push t.events ~time:at ~seq f

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now + delay) f

let pending t = Pqueue.length t.events

let step t =
  match Pqueue.pop t.events with
  | None -> false
  | Some { time; payload = f; _ } ->
    t.now <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  let continue_past_time () =
    match until with
    | None -> true
    | Some limit -> (
      match Pqueue.peek_time t.events with
      | None -> false
      | Some next -> next <= limit)
  in
  let rec loop () =
    if t.executed > t.max_events then
      raise
        (Deadlock
           (Printf.sprintf "event budget exhausted (%d events executed)"
              t.max_events));
    if (not (Pqueue.is_empty t.events)) && continue_past_time () then begin
      ignore (step t);
      loop ()
    end
  in
  loop ();
  match until with
  | Some limit when t.now < limit && Pqueue.is_empty t.events -> t.now <- limit
  | _ -> ()
