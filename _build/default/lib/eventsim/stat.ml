(* Sample statistics for simulated latencies.

   Samples are stored in full (experiments record at most a few hundred
   thousand), so exact percentiles and tail fractions are available — the
   paper's starvation result ("over 13% of acquisitions took more than 2 ms")
   is a tail fraction. *)

type t = {
  name : string;
  mutable samples : int array;
  mutable len : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
  mutable sorted : bool;
}

let create name =
  {
    name;
    samples = [||];
    len = 0;
    sum = 0.0;
    min_v = max_int;
    max_v = min_int;
    sorted = true;
  }

let name t = t.name

let add t v =
  let cap = Array.length t.samples in
  if t.len = cap then begin
    let ncap = if cap = 0 then 256 else cap * 2 in
    let samples = Array.make ncap 0 in
    Array.blit t.samples 0 samples 0 t.len;
    t.samples <- samples
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.sorted <- false

let count t = t.len

let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let min_value t = if t.len = 0 then 0 else t.min_v
let max_value t = if t.len = 0 then 0 else t.max_v

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

(* Nearest-rank percentile; [q] in [0,1]. *)
let percentile t q =
  if t.len = 0 then 0
  else begin
    ensure_sorted t;
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int t.len)) in
    let idx = max 0 (min (t.len - 1) (rank - 1)) in
    t.samples.(idx)
  end

let median t = percentile t 0.5

(* Fraction of samples strictly greater than the threshold. *)
let fraction_above t threshold =
  if t.len = 0 then 0.0
  else begin
    let n = ref 0 in
    for i = 0 to t.len - 1 do
      if t.samples.(i) > threshold then incr n
    done;
    float_of_int !n /. float_of_int t.len
  end

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = float_of_int t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.len - 1))
  end

let clear t =
  t.len <- 0;
  t.sum <- 0.0;
  t.min_v <- max_int;
  t.max_v <- min_int;
  t.sorted <- true

let to_list t = Array.to_list (Array.sub t.samples 0 t.len)

let pp ppf t =
  Format.fprintf ppf "%s: n=%d mean=%.1f min=%d p50=%d p99=%d max=%d" t.name
    t.len (mean t) (min_value t) (median t) (percentile t 0.99) (max_value t)
