(** One-shot synchronisation variable for simulated processes.

    RPC replies and barrier releases use this: readers suspend until some
    process fills the variable. An ivar can be filled exactly once. *)

type 'a t

exception Already_filled

val create : unit -> 'a t

val is_full : 'a t -> bool

(** Value if filled, without suspending. *)
val peek : 'a t -> 'a option

(** Fill and wake all waiting readers (at the current virtual time, in their
    arrival order).
    @raise Already_filled on a second fill. *)
val fill : Engine.t -> 'a t -> 'a -> unit

(** Return the value, suspending the calling process until filled. Must be
    called from within a {!Process.spawn}ed process. *)
val read : 'a t -> 'a
