(** Simulated processes: effect-based coroutines over {!Engine}.

    A process is an ordinary function; inside it, the functions below may be
    used to let virtual time pass. They must only be called from within a
    process started by [spawn] (performing an effect with no handler raises
    [Effect.Unhandled]). *)

(** Low-level suspension: [suspend reg] captures the current continuation as
    a resume thunk and passes it to [reg]. The process stays suspended until
    the thunk is invoked (exactly once). *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Suspend until the given absolute time. *)
val wait_until : Engine.t -> int -> unit

(** Suspend for a relative number of cycles (0 is a no-op). *)
val pause : Engine.t -> int -> unit

(** Re-schedule at the current time, letting same-time events interleave. *)
val yield : Engine.t -> unit

(** Start a process at the current virtual time. *)
val spawn : Engine.t -> (unit -> unit) -> unit

(** Start a process at an absolute time. *)
val spawn_at : Engine.t -> at:int -> (unit -> unit) -> unit
