(* One-shot synchronisation variable.

   Used for RPC replies: the caller reads (suspending if empty), the handler
   fills. Filling wakes all readers at the current virtual time. *)

type 'a state =
  | Empty of (unit -> unit) list (* waiting resume thunks, newest first *)
  | Full of 'a

type 'a t = { mutable state : 'a state }

exception Already_filled

let create () = { state = Empty [] }

let is_full t =
  match t.state with
  | Full _ -> true
  | Empty _ -> false

let peek t =
  match t.state with
  | Full v -> Some v
  | Empty _ -> None

let fill eng t v =
  match t.state with
  | Full _ -> raise Already_filled
  | Empty waiters ->
    t.state <- Full v;
    (* Wake in arrival order: the list is newest-first. *)
    List.iter
      (fun resume -> Engine.schedule eng ~at:(Engine.now eng) resume)
      (List.rev waiters)

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
    Process.suspend (fun resume ->
        match t.state with
        | Full _ ->
          (* Filled between the check and the suspension (cannot happen in a
             single-threaded engine, but be safe). *)
          resume ()
        | Empty waiters -> t.state <- Empty (resume :: waiters));
    (match t.state with
    | Full v -> v
    | Empty _ -> assert false)
