(** Discrete-event engine: virtual clock + ordered heap of thunks.

    Time is in integer machine cycles. All simulated concurrency is
    cooperative: a thunk runs to completion at its timestamp and may schedule
    further thunks. Determinism is guaranteed by FIFO tie-breaking in the
    event heap. *)

(** Raised when the event budget is exhausted, which in practice means the
    simulation livelocked (e.g. processors spinning forever on a lock that is
    never released). *)
exception Deadlock of string

type t

(** [create ()] makes an engine at time 0. [max_events] bounds the total
    number of events executed, as a livelock safety valve. *)
val create : ?max_events:int -> unit -> t

(** Current virtual time, in cycles. *)
val now : t -> int

(** Number of events executed so far. *)
val events_executed : t -> int

(** [schedule t ~at f] runs [f] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)
val schedule : t -> at:int -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] = [schedule t ~at:(now t + delay) f]. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> unit

(** Number of events still queued. *)
val pending : t -> int

(** Execute the single earliest event. Returns [false] if none was queued. *)
val step : t -> bool

(** Run until the heap is empty, or past [until] if given (events strictly
    later than [until] stay queued; the clock is advanced to [until] if the
    heap drains early). *)
val run : ?until:int -> t -> unit
