(* Deterministic splittable PRNG (splitmix64).

   Every experiment derives its random streams from a fixed seed, so runs
   are reproducible bit-for-bit. Splitting gives independent streams to each
   simulated processor without coordination. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Uniform int in [0, bound), bound > 0. Modulo bias is irrelevant at our
   sample sizes; keep it simple. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the conversion cannot overflow OCaml's 63-bit int
     into the negatives. *)
  let v =
    Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL)
  in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(* Geometric-ish jitter in [lo, hi] for de-synchronising workloads. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: hi < lo";
  lo + int t (hi - lo + 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
