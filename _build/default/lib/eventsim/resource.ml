(* FIFO server resource.

   A resource models a component that serves one request at a time (a memory
   module, a station bus, the ring). A request arriving at [now] begins
   service at [max now next_free] and holds the resource for [service]
   cycles. Because the engine executes events in time order and requests
   claim their slot at arrival, slot assignment is FIFO — exactly the
   queueing behaviour that produces the paper's second-order contention
   effects.

   The resource also keeps utilisation counters so experiments can report
   where time was lost. *)

type t = {
  name : string;
  mutable next_free : int;
  mutable busy_cycles : int;
  mutable queued_cycles : int; (* total time requests spent waiting *)
  mutable n_requests : int;
}

let create name =
  { name; next_free = 0; busy_cycles = 0; queued_cycles = 0; n_requests = 0 }

let name t = t.name

let reserve t ~now ~service =
  if service < 0 then invalid_arg "Resource.reserve: negative service";
  let start = max now t.next_free in
  let finish = start + service in
  t.next_free <- finish;
  t.busy_cycles <- t.busy_cycles + service;
  t.queued_cycles <- t.queued_cycles + (start - now);
  t.n_requests <- t.n_requests + 1;
  finish

let next_free t = t.next_free

let busy_cycles t = t.busy_cycles
let queued_cycles t = t.queued_cycles
let n_requests t = t.n_requests

let reset t =
  t.next_free <- 0;
  t.busy_cycles <- 0;
  t.queued_cycles <- 0;
  t.n_requests <- 0

let utilization t ~horizon =
  if horizon <= 0 then 0.0
  else float_of_int t.busy_cycles /. float_of_int horizon

let pp ppf t =
  Format.fprintf ppf "%s: %d reqs, busy %d cyc, queued %d cyc" t.name
    t.n_requests t.busy_cycles t.queued_cycles
