(** Deterministic splittable PRNG (splitmix64).

    Experiments derive all randomness from a fixed seed so every run is
    bit-for-bit reproducible; [split] hands independent streams to simulated
    processors. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** Independent child stream. *)
val split : t -> t

(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val shuffle : t -> 'a array -> unit
