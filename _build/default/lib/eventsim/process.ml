(* Simulated processes as effect-based coroutines.

   A process is a plain OCaml function run under a deep effect handler. When
   it needs to let virtual time pass, it performs [Suspend reg]: the handler
   captures the continuation, wraps it in a resume thunk and hands it to
   [reg], which decides when (or whether) to schedule it. [pause] and
   [wait_until] are the common cases; ivars and resources build on the same
   primitive. *)

open Effect
open Effect.Deep

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend reg = perform (Suspend reg)

let wait_until eng time =
  if time < Engine.now eng then
    invalid_arg "Process.wait_until: time is in the past";
  suspend (fun resume -> Engine.schedule eng ~at:time resume)

let pause eng cycles =
  if cycles < 0 then invalid_arg "Process.pause: negative duration";
  if cycles = 0 then ()
  else suspend (fun resume -> Engine.schedule_after eng ~delay:cycles resume)

let yield eng = suspend (fun resume -> Engine.schedule_after eng ~delay:0 resume)

let run_fiber f =
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Suspend reg ->
            Some
              (fun (k : (c, unit) continuation) ->
                reg (fun () -> continue k ()))
          | _ -> None);
    }

let spawn_at eng ~at f = Engine.schedule eng ~at (fun () -> run_fiber f)

let spawn eng f = spawn_at eng ~at:(Engine.now eng) f
