(** Binary min-heap of timestamped events, ordered by [(time, seq)].

    The sequence number breaks ties between events scheduled for the same
    instant, so the queue pops same-time events in insertion (FIFO) order and
    every simulation run is deterministic. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~time ~seq payload] inserts an event. [seq] must be unique per
    queue for deterministic ordering; the engine supplies a counter. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** Earliest entry without removing it. *)
val peek : 'a t -> 'a entry option

(** Timestamp of the earliest entry. *)
val peek_time : 'a t -> int option

(** Remove and return the earliest entry. *)
val pop : 'a t -> 'a entry option

val clear : 'a t -> unit

(** Pop everything, in order. Mainly for tests. *)
val drain : 'a t -> 'a entry list
