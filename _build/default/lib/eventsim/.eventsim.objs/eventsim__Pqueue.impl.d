lib/eventsim/pqueue.ml: Array List
