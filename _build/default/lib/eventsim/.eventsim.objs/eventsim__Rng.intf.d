lib/eventsim/rng.mli:
