lib/eventsim/ivar.ml: Engine List Process
