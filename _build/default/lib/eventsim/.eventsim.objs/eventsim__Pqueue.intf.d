lib/eventsim/pqueue.mli:
