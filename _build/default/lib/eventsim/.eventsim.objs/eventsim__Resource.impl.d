lib/eventsim/resource.ml: Format
