lib/eventsim/rng.ml: Array Int64
