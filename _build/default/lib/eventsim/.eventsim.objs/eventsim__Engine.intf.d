lib/eventsim/engine.mli:
