lib/eventsim/ivar.mli: Engine
