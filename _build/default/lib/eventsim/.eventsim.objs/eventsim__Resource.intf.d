lib/eventsim/resource.mli: Format
