lib/eventsim/process.ml: Effect Engine
