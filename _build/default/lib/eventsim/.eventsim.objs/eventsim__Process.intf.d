lib/eventsim/process.mli: Engine
