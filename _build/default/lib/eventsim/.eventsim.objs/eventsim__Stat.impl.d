lib/eventsim/stat.ml: Array Format
