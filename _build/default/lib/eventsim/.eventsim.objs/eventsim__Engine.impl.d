lib/eventsim/engine.ml: Pqueue Printf
