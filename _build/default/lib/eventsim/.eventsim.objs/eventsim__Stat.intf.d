lib/eventsim/stat.mli: Format
