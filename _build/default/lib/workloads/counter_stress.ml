(* Lock-free vs locked single-word updates (Section 5.3, experiment ABL7).

   [p] processors each add to one shared counter [ops] times. The lock-free
   version is a CAS retry loop; the locked versions take a lock around a
   read-modify-write. On a cache-coherent CAS machine (NUMAchine preset)
   the lock-free version saves both the lock words and half the coherence
   transfers; the experiment reports throughput and correctness (the final
   count is exact in all versions). *)

open Eventsim
open Hector
open Locks

type mode = Lock_free | Locked of Lock.algo

let mode_name = function
  | Lock_free -> "lock-free"
  | Locked algo -> "locked(" ^ Lock.algo_name algo ^ ")"

type config = { p : int; ops : int; think : int; seed : int }

let default_config = { p = 8; ops = 100; think = 60; seed = 41 }

type result = {
  mode : mode;
  total_us : float;
  per_op_us : float;
  final_value : int;
  expected_value : int;
  cas_failures : int;
  atomics : int;
}

let run ?(cfg = Config.numachine) ?(config = default_config) mode =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let counter = Lockfree.make_counter machine ~home:0 0 in
  let lock =
    match mode with
    | Lock_free -> None
    | Locked algo -> Some (Lock.make machine ~home:0 algo)
  in
  let rng = Rng.create config.seed in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to config.ops do
          (match lock with
          | None -> ignore (Lockfree.counter_incr counter ctx)
          | Some l ->
            l.Lock.acquire ctx;
            let v = Ctx.read ctx (Lockfree.counter_cell counter) in
            Ctx.write ctx (Lockfree.counter_cell counter) (v + 1);
            l.Lock.release ctx);
          if config.think > 0 then
            Ctx.work ctx (1 + Rng.int (Ctx.rng ctx) config.think)
        done)
  done;
  Engine.run eng;
  let total = Engine.now eng in
  let n_ops = config.p * config.ops in
  {
    mode;
    total_us = Config.us_of_cycles cfg total;
    per_op_us = Config.us_of_cycles cfg total /. float_of_int n_ops;
    final_value = Lockfree.counter_value counter;
    expected_value = n_ops;
    cas_failures = Lockfree.counter_cas_failures counter;
    atomics = Machine.atomics machine;
  }

let run_all ?cfg ?config () =
  List.map (fun m -> run ?cfg ?config m)
    [
      Lock_free;
      Locked (Lock.Spin { max_backoff_us = 35.0 });
      Locked Lock.Mcs_cas;
    ]
