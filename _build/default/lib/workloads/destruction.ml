(* Program destruction storm (Section 2.5, the RETRY experiment).

   A parallel program is a root process with children spread across the
   clusters. All of its processes are destroyed at approximately the same
   time by different processors, so the parent descriptor's reservation is
   hotly contended and the deadlock-management protocol retries often —
   "independent of the strategy chosen". The experiment compares the
   optimistic and pessimistic strategies on the same storm: total time,
   retries, and (for the pessimistic one) revalidations. *)

open Eventsim
open Hector
open Hkernel

type config = {
  n_programs : int; (* storms run back-to-back *)
  children : int; (* processes per program, one destroyer each *)
  cluster_size : int;
  strategy : Procs.strategy;
  seed : int;
}

let default_config =
  {
    n_programs = 12;
    children = 8;
    cluster_size = 4;
    strategy = Procs.Optimistic;
    seed = 21;
  }

type result = {
  strategy : Procs.strategy;
  destroy_summary : Measure.summary;
  destroys : int;
  retries : int;
  revalidations : int;
  lost_races : int;
  total_us : float;
}

(* Pids: program g has root 1000*g+100 and children 1000*g+100+1..children.
   Consecutive pids land on consecutive clusters (pid mod n_clusters). *)
let root_pid g = (1000 * g) + 100
let child_pid g i = root_pid g + 1 + i

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size ~seed:config.seed
  in
  let procs = Procs.create ~strategy:config.strategy kernel in
  for g = 0 to config.n_programs - 1 do
    Procs.spawn_process_untimed procs ~pid:(root_pid g) ~parent:0;
    for i = 0 to config.children - 1 do
      Procs.spawn_process_untimed procs ~pid:(child_pid g i)
        ~parent:(root_pid g)
    done
  done;
  let destroyers = min config.children (Machine.n_procs machine) in
  let active = List.init destroyers (fun p -> p) in
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create "destroy" in
  let barrier = Barrier.create ~parties:destroyers in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      Process.spawn eng (fun () ->
          for g = 0 to config.n_programs - 1 do
            (* Every destroyer hits the same program at the same time. *)
            Barrier.wait barrier ctx;
            let rec my_children i acc =
              if i >= config.children then acc
              else
                my_children (i + destroyers) (child_pid g i :: acc)
            in
            List.iter
              (fun pid ->
                let t0 = Machine.now machine in
                ignore (Procs.destroy procs ctx pid);
                Stat.add stat (Machine.now machine - t0))
              (my_children proc []);
            Barrier.wait barrier ctx;
            (* One processor finishes the root off. *)
            if proc = 0 then ignore (Procs.destroy procs ctx (root_pid g))
          done;
          (* Finished workers keep serving incoming RPCs. *)
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  {
    strategy = config.strategy;
    destroy_summary =
      Measure.of_stat cfg ~label:(Procs.strategy_name config.strategy) stat;
    destroys = Procs.destroys procs;
    retries = Procs.retries procs;
    revalidations = Procs.revalidations procs;
    lost_races = Procs.lost_races procs;
    total_us = Config.us_of_cycles cfg (Engine.now eng);
  }
