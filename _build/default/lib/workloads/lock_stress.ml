(* Lock contention stress (Figure 5).

   [p] processors repeatedly acquire and release the same lock, holding it
   for [hold_us] of critical-section work. The critical section is partly
   memory work on data co-located with the lock — that coupling is what lets
   remote spinning stretch the holder's critical section (the second-order
   effect of Section 2.1). The run is time-bounded: all processors contend
   for the whole measurement window, so unfairness shows up as a latency
   tail rather than an early exit.

   Reported latency is acquisition time: from the start of the acquire to
   lock entry, plus the release (the paper's "response time" of a
   lock/unlock pair under contention), excluding the critical section. *)

open Eventsim
open Hector
open Locks

type config = {
  p : int;
  hold_us : float;
  think_us : float; (* per-iteration measurement-loop bookkeeping *)
  warmup_us : float;
  window_us : float;
  seed : int;
}

let default_config =
  {
    p = 16;
    hold_us = 0.0;
    think_us = 3.0;
    warmup_us = 200.0;
    window_us = 30_000.0;
    seed = 7;
  }

type result = {
  summary : Measure.summary;
  acquisitions : int;
  lock_mem_utilization : float; (* of the lock's home memory module *)
  atomics : int;
}

let run ?(cfg = Config.hector) ?(config = default_config) algo =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let lock = Lock.make machine ~home:0 algo in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let warmup = Config.cycles_of_us cfg config.warmup_us in
  let t_end = warmup + Config.cycles_of_us cfg config.window_us in
  let stat = Stat.create (Lock.algo_name algo) in
  let data = Array.init 8 (fun i -> Machine.alloc machine ~home:0 i) in
  let rng = Rng.create config.seed in
  let acquisitions = ref 0 in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let rec loop () =
          if Machine.now machine < t_end then begin
            let t0 = Machine.now machine in
            lock.Lock.acquire ctx;
            let t_in = Machine.now machine in
            if hold > 0 then begin
              (* The critical section touches the protected data (which
                 lives beside the lock) roughly every 40 cycles. *)
              let accesses = max 1 (hold / 40) in
              for i = 1 to accesses do
                let c = data.(i land 7) in
                if i land 1 = 0 then ignore (Ctx.read ctx c)
                else Ctx.write ctx c i;
                Ctx.work ctx 14
              done;
              let spent = Machine.now machine - t_in in
              if spent < hold then Ctx.work ctx (hold - spent)
            end;
            let t_out = Machine.now machine in
            lock.Lock.release ctx;
            let t_done = Machine.now machine in
            if t0 >= warmup then begin
              incr acquisitions;
              Stat.add stat (t_done - t0 - (t_out - t_in))
            end;
            (* Loop bookkeeping between iterations (timer read, counter
               update) — local work, jittered. *)
            if think > 0 then
              Ctx.work ctx ((think / 2) + Rng.int (Ctx.rng ctx) (max 1 think));
            loop ()
          end
        in
        loop ())
  done;
  Engine.run eng;
  let horizon = Engine.now eng in
  {
    summary = Measure.of_stat cfg ~label:(Lock.algo_name algo) stat;
    acquisitions = !acquisitions;
    lock_mem_utilization =
      Resource.utilization (Machine.mem_resource machine 0) ~horizon;
    atomics = Machine.atomics machine;
  }

(* The Figure 5 sweep: all five algorithms over a list of processor
   counts. *)
let sweep ?(cfg = Config.hector) ?(config = default_config) ~algos ~procs () =
  List.map
    (fun algo ->
      ( algo,
        List.map (fun p -> (p, run ~cfg ~config:{ config with p } algo)) procs
      ))
    algos
