(** Uncontended lock latency (Section 4.1.1): one processor, a local lock,
    a tight measurement loop whose bookkeeping is charged as the paper's
    measurements include it. *)

open Hector
open Locks

(** Cycles of measurement-loop bookkeeping per iteration. *)
val loop_overhead : int

type result = {
  algo : Lock.algo;
  pair_us : float;  (** measured lock+unlock+loop time *)
  predicted_us : float option;  (** static Figure-4 model, where defined *)
}

val run : ?cfg:Config.t -> ?iters:int -> Lock.algo -> result

(** MCS, H1, H2 and the 35 µs spin lock — the Section 4.1.1 table. *)
val run_all : ?cfg:Config.t -> ?iters:int -> unit -> result list
