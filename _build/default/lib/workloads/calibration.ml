(* Calibration probes for the paper's absolute anchors:

   - a simple soft page fault: ~160 us, of which ~40 us is locking;
   - a null RPC: ~27 us;
   - a cluster-wide page lookup + descriptor replication: ~88 us.

   Each probe is single-threaded (no contention), matching how the paper
   quotes the numbers. *)

open Eventsim
open Hector
open Hkernel

type result = {
  soft_fault_us : float;
  lockless_fault_us : float;
  lock_overhead_us : float; (* soft_fault - lockless_fault *)
  null_rpc_us : float;
  replicate_fault_us : float; (* first-touch fault on a remote-master page *)
  replicate_extra_us : float; (* over a local soft fault: lookup+replicate *)
}

let measure_fault ?(lockless = false) ?(iters = 200) cfg =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel = Kernel.create machine ~cluster_size:16 ~lockless ~seed:3 in
  Kernel.populate_page kernel ~vpage:42 ~master_cluster:0 ~frame:42;
  let total = ref 0 in
  let ctx = Kernel.ctx kernel 0 in
  Process.spawn eng (fun () ->
      for _ = 1 to iters do
        let t0 = Machine.now machine in
        Memmgr.fault kernel ctx ~vpage:42 ~write:true;
        total := !total + (Machine.now machine - t0);
        Memmgr.unmap kernel ctx ~vpage:42
      done);
  Engine.run eng;
  Config.us_of_cycles cfg !total /. float_of_int iters

let measure_null_rpc ?(iters = 200) cfg =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel = Kernel.create machine ~cluster_size:4 ~seed:4 in
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let ctx = Kernel.ctx kernel 0 in
  let clustering = Kernel.clustering kernel in
  let target = Clustering.rpc_target clustering ~from:0 ~target_cluster:1 in
  let total = ref 0 in
  Process.spawn eng (fun () ->
      for _ = 1 to iters do
        let t0 = Machine.now machine in
        (match Rpc.call (Kernel.rpc kernel) ctx ~target (fun _ -> Rpc.Ok 0) with
        | Rpc.Ok _ -> ()
        | _ -> failwith "null rpc failed");
        total := !total + (Machine.now machine - t0)
      done);
  Engine.run eng;
  Config.us_of_cycles cfg !total /. float_of_int iters

(* First-touch read fault on a page mastered in another cluster: the local
   cluster inserts a placeholder, RPCs the master, and replicates the
   descriptor. *)
let measure_replicate_fault ?(iters = 100) cfg =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel = Kernel.create machine ~cluster_size:4 ~seed:5 in
  for i = 0 to iters - 1 do
    Kernel.populate_page kernel ~vpage:(7000 + i) ~master_cluster:1
      ~frame:(7000 + i)
  done;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let ctx = Kernel.ctx kernel 0 in
  let total = ref 0 in
  Process.spawn eng (fun () ->
      for i = 0 to iters - 1 do
        let t0 = Machine.now machine in
        Memmgr.fault kernel ctx ~vpage:(7000 + i) ~write:false;
        total := !total + (Machine.now machine - t0)
      done);
  Engine.run eng;
  assert (Kernel.replications kernel = iters);
  Config.us_of_cycles cfg !total /. float_of_int iters

let run ?(cfg = Config.hector) () =
  let soft_fault_us = measure_fault cfg in
  let lockless_fault_us = measure_fault ~lockless:true cfg in
  let null_rpc_us = measure_null_rpc cfg in
  let replicate_fault_us = measure_replicate_fault cfg in
  {
    soft_fault_us;
    lockless_fault_us;
    lock_overhead_us = soft_fault_us -. lockless_fault_us;
    null_rpc_us;
    replicate_fault_us;
    replicate_extra_us = replicate_fault_us -. soft_fault_us;
  }
