lib/workloads/independent_faults.ml: Array Clustering Config Ctx Engine Eventsim Hector Hkernel Kernel Khash List Lock Locks Machine Measure Memmgr Process Rng Rpc Stat
