lib/workloads/messaging_mix.ml: Clustering Config Ctx Engine Eventsim Hector Hkernel Kernel List Machine Measure Process Procs Rng Stat
