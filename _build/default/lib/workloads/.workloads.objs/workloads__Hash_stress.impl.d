lib/workloads/hash_stress.ml: Config Ctx Engine Eventsim Hector Hkernel Khash List Lock Locks Machine Measure Process Rng Stat
