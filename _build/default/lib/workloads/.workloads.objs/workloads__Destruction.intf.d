lib/workloads/destruction.mli: Hector Hkernel Measure Procs
