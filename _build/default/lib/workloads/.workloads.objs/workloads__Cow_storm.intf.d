lib/workloads/cow_storm.mli: Hector Hkernel Measure Procs
