lib/workloads/uncontended.mli: Config Hector Lock Locks
