lib/workloads/four_classes.mli: Hector Locks Measure
