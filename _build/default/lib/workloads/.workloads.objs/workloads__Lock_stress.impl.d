lib/workloads/lock_stress.ml: Array Config Ctx Engine Eventsim Hector List Lock Locks Machine Measure Process Resource Rng Stat
