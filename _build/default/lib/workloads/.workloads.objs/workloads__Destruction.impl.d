lib/workloads/destruction.ml: Barrier Config Ctx Engine Eventsim Hector Hkernel Kernel List Machine Measure Process Procs Stat
