lib/workloads/barrier.ml: Ctx Eventsim Hector Ivar
