lib/workloads/replication_storm.mli: Hector Measure
