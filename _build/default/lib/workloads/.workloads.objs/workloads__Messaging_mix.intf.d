lib/workloads/messaging_mix.mli: Hector Hkernel Measure Procs
