lib/workloads/file_read.ml: Clustering Config Ctx Engine Eventsim Fserver Hector Hkernel Kernel List Machine Measure Printf Process Rng Stat
