lib/workloads/calibration.mli: Config Hector
