lib/workloads/uncontended.ml: Config Ctx Engine Eventsim Hector Instr_model List Lock Locks Machine Option Process Rng
