lib/workloads/counter_stress.mli: Hector Lock Locks
