lib/workloads/trylock_starvation.mli: Hector Measure
