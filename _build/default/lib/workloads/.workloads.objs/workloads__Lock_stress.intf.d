lib/workloads/lock_stress.mli: Config Hector Lock Locks Measure
