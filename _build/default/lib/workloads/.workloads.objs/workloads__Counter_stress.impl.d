lib/workloads/counter_stress.ml: Config Ctx Engine Eventsim Hector List Lock Lockfree Locks Machine Process Rng
