lib/workloads/shared_faults.ml: Array Barrier Clustering Config Ctx Engine Eventsim Hector Hkernel Kernel Khash List Lock Locks Machine Measure Memmgr Process Rpc Stat
