lib/workloads/measure.mli: Config Eventsim Format Hector Stat
