lib/workloads/barrier.mli: Ctx Hector
