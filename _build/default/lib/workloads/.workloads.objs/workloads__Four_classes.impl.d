lib/workloads/four_classes.ml: Clustering Config Ctx Engine Eventsim Hector Hkernel Kernel List Locks Machine Measure Memmgr Process Rng Stat
