lib/workloads/hash_stress.mli: Hector Hkernel Khash Lock Locks Measure
