lib/workloads/measure.ml: Config Eventsim Format Hector Stat
