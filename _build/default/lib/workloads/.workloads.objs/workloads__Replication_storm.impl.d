lib/workloads/replication_storm.ml: Barrier Config Ctx Engine Eventsim Hector Hkernel Kernel List Machine Measure Memmgr Process Stat
