lib/workloads/trylock_starvation.ml: Array Config Ctx Engine Eventsim Hector Locks Machine Mcs Measure Process Rng Stat
