lib/workloads/independent_faults.mli: Hector Lock Locks Measure
