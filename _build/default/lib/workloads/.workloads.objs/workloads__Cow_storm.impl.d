lib/workloads/cow_storm.ml: Barrier Cell Config Ctx Engine Eventsim Hector Hkernel Kernel Khash List Machine Measure Memmgr Page Process Procs Stat
