lib/workloads/shared_faults.mli: Hector Lock Locks Measure
