lib/workloads/file_read.mli: Hector Measure
