lib/workloads/calibration.ml: Clustering Config Engine Eventsim Hector Hkernel Kernel Machine Memmgr Process Rpc
