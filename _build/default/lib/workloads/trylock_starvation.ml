(* TryLock fairness under saturation (Section 3.2, experiment TRY).

   Distributed locks are inherently fair: a saturated lock is handed
   directly from holder to queued waiter and is never observed free. A
   retry-based TryLock therefore starves: the paper found its second TryLock
   variant "discriminated against RPC operations", which led them to the
   Stodolsky soft-mask + deferred-work-queue scheme instead.

   This experiment saturates an H2-MCS lock with [holders] processors and
   drives a stream of TryLock attempts from another processor, then runs the
   same stream through the deferred-work scheme (post the work to a holder
   processor; its soft mask defers the interrupt until the lock is
   released, at which point the work runs and takes the lock immediately).

   Expected: TryLock success rate near zero under saturation; the deferred
   scheme completes every request with bounded latency. *)

open Eventsim
open Hector
open Locks

type config = {
  holders : int;
  hold_us : float;
  attempt_gap_us : float;
  window_us : float;
  seed : int;
}

let default_config =
  { holders = 4; hold_us = 10.0; attempt_gap_us = 30.0; window_us = 20_000.0; seed = 31 }

type result = {
  try_attempts : int;
  try_successes : int;
  try_success_rate : float;
  deferred_posted : int;
  deferred_completed : int;
  deferred_latency : Measure.summary;
}

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let mcs = Mcs.create ~variant:Mcs.H2 ~home:0 machine in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let gap = Config.cycles_of_us cfg config.attempt_gap_us in
  let t_end = Config.cycles_of_us cfg config.window_us in
  let rng = Rng.create config.seed in
  (* Saturating holders on processors 0..holders-1; they hold the lock with
     the soft mask set, so posted work is deferred, not lost. *)
  let holder_ctxs =
    Array.init config.holders (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  Array.iter
    (fun ctx ->
      Process.spawn eng (fun () ->
          let rec loop () =
            if Machine.now machine < t_end then begin
              Ctx.set_soft_mask ctx;
              Mcs.acquire mcs ctx;
              Ctx.work ctx hold;
              Mcs.release mcs ctx;
              Ctx.clear_soft_mask ctx;
              loop ()
            end
          in
          loop ()))
    holder_ctxs;
  (* The remote requester: alternates a TryLock attempt and a deferred-work
     post each gap. *)
  let requester = Ctx.create machine ~proc:(config.holders + 1) (Rng.split rng) in
  let try_attempts = ref 0 in
  let try_successes = ref 0 in
  let posted = ref 0 in
  let completed = ref 0 in
  let latency = Stat.create "deferred" in
  Process.spawn eng (fun () ->
      let rec loop i =
        if Machine.now machine < t_end then begin
          incr try_attempts;
          if Mcs.try_acquire_v2 mcs requester then begin
            incr try_successes;
            Ctx.work requester hold;
            Mcs.release mcs requester
          end;
          (* Deferred-work route: post the same request to holder i's
             processor. Its handler takes the lock when it runs (after the
             holder clears its mask — i.e. right after a release). *)
          let t0 = Machine.now machine in
          incr posted;
          Ctx.post_ipi holder_ctxs.(i mod config.holders) (fun hctx ->
              Mcs.acquire mcs hctx;
              Ctx.work hctx hold;
              Mcs.release mcs hctx;
              incr completed;
              Stat.add latency (Machine.now machine - t0));
          Ctx.work requester gap;
          loop (i + 1)
        end
      in
      loop 0);
  Engine.run eng;
  {
    try_attempts = !try_attempts;
    try_successes = !try_successes;
    try_success_rate =
      (if !try_attempts = 0 then 0.0
       else float_of_int !try_successes /. float_of_int !try_attempts);
    deferred_posted = !posted;
    deferred_completed = !completed;
    deferred_latency = Measure.of_stat cfg ~label:"deferred-work" latency;
  }
