(* Barrier for workload phases.

   Implemented at the engine level (ivar per generation) so that barrier
   synchronisation itself contributes almost nothing to the measured kernel
   costs — the paper measures page-fault response times, not barrier
   traffic. Waiting processors keep taking interrupts (Ctx.await), which is
   essential: the shared-fault test barriers while other clusters may still
   be sending demote RPCs. *)

open Eventsim
open Hector

type t = {
  parties : int;
  mutable arrived : int;
  mutable generation : unit Ivar.t;
}

let create ~parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { parties; arrived = 0; generation = Ivar.create () }

let parties t = t.parties
let waiting t = t.arrived

let wait t ctx =
  (* A couple of cycles for the arrival bookkeeping. *)
  Ctx.work ctx 4;
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    let gen = t.generation in
    t.arrived <- 0;
    t.generation <- Ivar.create ();
    Ivar.fill (Ctx.engine ctx) gen ()
  end
  else begin
    let gen = t.generation in
    Ctx.await ctx gen
  end
