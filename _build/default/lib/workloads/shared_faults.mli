(** Shared page-fault test (Figures 6b, 7b, 7d): [p] processes write the
    same small page set each round, barrier, unmap, repeat. Contention is
    implicit in the application: reserve bits inside a cluster, write
    ownership (replication + invalidation RPCs) across clusters. *)

open Locks

type config = {
  p : int;
  n_pages : int;
  rounds : int;
  cluster_size : int;
  lock_algo : Lock.algo;
  seed : int;
}

val default_config : config

type result = {
  summary : Measure.summary;
  faults : int;
  retries : int;
  rpcs : int;
  replications : int;
  invalidations : int;
  reserve_conflicts : int;
}

val vpage_of : int -> int

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result
