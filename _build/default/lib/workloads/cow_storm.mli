(** Copy-on-write fault storm (experiment COW, Sections 2.3 / 2.5):
    simultaneous COW breaks on the same pages under both deadlock
    strategies — retries under either, plus the pessimistic strategy's
    "page had disappeared" observations. *)

open Hkernel

type config = {
  p : int;
  n_pages : int;
  rounds : int;
  cluster_size : int;
  strategy : Procs.strategy;
  seed : int;
}

val default_config : config

type result = {
  strategy : Procs.strategy;
  summary : Measure.summary;
  broke : int;
  found_gone : int;
  retries : int;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result

val run_both : ?cfg:Hector.Config.t -> ?config:config -> unit -> result * result
