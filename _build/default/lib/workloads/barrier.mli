(** Barrier for workload phases, implemented at the engine level so the
    synchronisation itself contributes (almost) nothing to measured kernel
    costs. Waiters keep taking interrupts, so RPCs directed at a barriered
    processor are still served. *)

open Hector

type t

val create : parties:int -> t

val parties : t -> int

(** Processes currently waiting. *)
val waiting : t -> int

(** Block until all parties arrive; reusable across rounds. *)
val wait : t -> Ctx.t -> unit
