(* Copy-on-write fault storm (experiment COW, Sections 2.3 / 2.5).

   An SPMD program's processes write simultaneously to the same
   copy-on-write pages: every writer must break the sharing, so the shared
   descriptor's share count is a brief cross-cluster hot spot and the last
   unshare removes it. The paper uses this as the example where retries
   are needed "independent of the strategy chosen", and where the
   pessimistic strategy "would likely find that its copy of the page had
   disappeared by the time it completed its remote operation". *)

open Eventsim
open Hector
open Hkernel

type config = {
  p : int;
  n_pages : int; (* COW pages broken per round *)
  rounds : int;
  cluster_size : int;
  strategy : Procs.strategy;
  seed : int;
}

let default_config =
  {
    p = 8;
    n_pages = 4;
    rounds = 10;
    cluster_size = 4;
    strategy = Procs.Optimistic;
    seed = 59;
  }

type result = {
  strategy : Procs.strategy;
  summary : Measure.summary;
  broke : int;
  found_gone : int; (* pessimistic: shared page vanished before we broke it *)
  retries : int;
}

let shared_page ~round ~j = 600_000 + (100 * round) + j
let private_page ~proc ~round ~j = 650_000 + (10_000 * proc) + (100 * round) + j

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size ~seed:config.seed
  in
  (* Shared COW pages, mastered at cluster 0, pre-shared by all p
     writers. *)
  for round = 0 to config.rounds - 1 do
    for j = 0 to config.n_pages - 1 do
      let vpage = shared_page ~round ~j in
      Kernel.populate_page kernel ~vpage ~master_cluster:0 ~frame:vpage;
      match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage with
      | Some e -> Cell.poke e.Khash.payload.Page.refcount config.p
      | None -> assert false
    done
  done;
  let active = List.init config.p (fun i -> i) in
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create "cow" in
  let broke = ref 0 and gone = ref 0 in
  let barrier = Barrier.create ~parties:config.p in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      Process.spawn eng (fun () ->
          for round = 0 to config.rounds - 1 do
            (* Everyone hits the same COW pages at once. *)
            Barrier.wait barrier ctx;
            for j = 0 to config.n_pages - 1 do
              let t0 = Machine.now machine in
              (match
                 Memmgr.cow_fault kernel ctx ~strategy:config.strategy
                   ~vpage:(shared_page ~round ~j)
                   ~private_vpage:(private_page ~proc ~round ~j)
               with
              | Memmgr.Broke -> incr broke
              | Memmgr.Already_gone -> incr gone);
              Stat.add stat (Machine.now machine - t0)
            done
          done;
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  {
    strategy = config.strategy;
    summary =
      Measure.of_stat cfg ~label:(Procs.strategy_name config.strategy) stat;
    broke = !broke;
    found_gone = !gone;
    retries = Kernel.retries kernel;
  }

let run_both ?cfg ?(config = default_config) () =
  ( run ?cfg ~config:{ config with strategy = Procs.Optimistic } (),
    run ?cfg ~config:{ config with strategy = Procs.Pessimistic } () )
