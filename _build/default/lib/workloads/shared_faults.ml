(* Shared page-fault test (Figure 6b / Figures 7b and 7d).

   [p] processes repeatedly 1) write to the same small set of shared pages,
   2) barrier, 3) unmap the pages. Every fault targets the same physical
   pages, so contention is implicit in the application's demands: processes
   contend for the descriptors' reserve bits within a cluster, and clusters
   contend for write ownership across the machine (descriptor replication,
   invalidation broadcasts — the traffic that makes very small clusters
   expensive in Figure 7d). *)

open Eventsim
open Hector
open Locks
open Hkernel

type config = {
  p : int;
  n_pages : int;
  rounds : int;
  cluster_size : int;
  lock_algo : Lock.algo;
  seed : int;
}

let default_config =
  {
    p = 16;
    n_pages = 4;
    rounds = 30;
    cluster_size = 16;
    lock_algo = Lock.Mcs_h2;
    seed = 13;
  }

type result = {
  summary : Measure.summary;
  faults : int;
  retries : int;
  rpcs : int;
  replications : int;
  invalidations : int;
  reserve_conflicts : int;
}

let vpage_of j = 500_000 + j

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size
      ~lock_algo:config.lock_algo ~seed:config.seed
  in
  for j = 0 to config.n_pages - 1 do
    Kernel.populate_page kernel ~vpage:(vpage_of j) ~master_cluster:0
      ~frame:(vpage_of j)
  done;
  let active = List.init config.p (fun p -> p) in
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create "shared" in
  let barrier = Barrier.create ~parties:config.p in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      Process.spawn eng (fun () ->
          for _round = 1 to config.rounds do
            for j = 0 to config.n_pages - 1 do
              let vpage = vpage_of j in
              let t0 = Machine.now machine in
              Memmgr.fault kernel ctx ~vpage ~write:true;
              Stat.add stat (Machine.now machine - t0)
            done;
            Barrier.wait barrier ctx;
            for j = 0 to config.n_pages - 1 do
              Memmgr.unmap kernel ctx ~vpage:(vpage_of j)
            done;
            Barrier.wait barrier ctx
          done;
          (* Finished workers keep serving incoming RPCs. *)
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  let reserve_conflicts =
    Array.fold_left
      (fun acc c -> acc + Khash.reserve_conflicts c.Kernel.page_hash)
      0
      (Array.init
         (Clustering.n_clusters (Kernel.clustering kernel))
         (fun i -> Kernel.cluster kernel i))
  in
  {
    summary =
      Measure.of_stat cfg ~label:(Lock.algo_name config.lock_algo) stat;
    faults = Kernel.faults kernel;
    retries = Kernel.retries kernel;
    rpcs = Rpc.calls (Kernel.rpc kernel);
    replications = Kernel.replications kernel;
    invalidations = Kernel.invalidations kernel;
    reserve_conflicts;
  }
