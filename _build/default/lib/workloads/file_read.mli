(** File-server read stress (experiment FS, Section 5.1): sequential reads
    of private files vs one hot shared file through the clustered file
    server, with and without read-ahead. *)

type sharing = Private_files | Shared_file

val sharing_name : sharing -> string

type config = {
  p : int;
  blocks_per_file : int;
  passes : int;
  cluster_size : int;
  read_ahead : int;
  sharing : sharing;
  seed : int;
}

val default_config : config

type result = {
  sharing : sharing;
  read_ahead : int;
  summary : Measure.summary;
  hit_rate : float;
  fetch_rpcs : int;
  blocks_fetched : int;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result

(** Private/shared × read-ahead off/on. *)
val run_grid : ?cfg:Hector.Config.t -> ?config:config -> unit -> result list
