(** Lock contention stress (Figure 5): [p] processors acquire/hold/release
    one lock for a fixed window of virtual time. The critical section mixes
    memory work on data beside the lock with compute, so remote spinning can
    stretch it — the second-order coupling of Section 2.1. *)

open Hector
open Locks

type config = {
  p : int;
  hold_us : float;
  think_us : float;  (** per-iteration loop bookkeeping *)
  warmup_us : float;
  window_us : float;
  seed : int;
}

val default_config : config

type result = {
  summary : Measure.summary;  (** acquisition latency, hold excluded *)
  acquisitions : int;
  lock_mem_utilization : float;  (** of the lock's home memory module *)
  atomics : int;
}

val run : ?cfg:Config.t -> ?config:config -> Lock.algo -> result

(** Sweep several algorithms over processor counts. *)
val sweep :
  ?cfg:Config.t ->
  ?config:config ->
  algos:Lock.algo list ->
  procs:int list ->
  unit ->
  (Lock.algo * (int * result) list) list
