(* The four access-behaviour classes of the paper's introduction, running
   simultaneously on one clustered machine (experiment CLASSES):

   1. non-concurrent requests          — one processor faulting alone;
   2. concurrent independent requests  — a cluster of processors faulting
                                         on private pages;
   3. concurrent read-shared requests  — a cluster read-faulting pages
                                         mastered elsewhere (replication);
   4. concurrent write-shared requests — a cluster write-faulting shared
                                         pages (ownership traffic).

   The measurement shows the architecture's whole point: each class keeps
   its latency profile even while the others run — clustering isolates the
   independent classes, replication absorbs the read sharing, and only the
   write-shared class pays cross-cluster costs. *)

open Eventsim
open Hector
open Hkernel

type config = {
  iters : int; (* operations per participating processor *)
  cluster_size : int;
  lock_algo : Locks.Lock.algo;
  seed : int;
}

let default_config =
  { iters = 60; cluster_size = 4; lock_algo = Locks.Lock.Mcs_h2; seed = 53 }

type result = {
  non_concurrent : Measure.summary;
  independent : Measure.summary;
  read_shared : Measure.summary;
  write_shared : Measure.summary;
  replications : int;
  invalidations : int;
  retries : int;
}

(* Page ranges per class. *)
let private_page ~proc ~i = 10_000 + (1000 * proc) + i
let read_shared_page i = 700_000 + i
let write_shared_page i = 800_000 + i

let n_read_pages = 16
let n_write_pages = 4

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size
      ~lock_algo:config.lock_algo ~seed:config.seed
  in
  let clustering = Kernel.clustering kernel in
  let n_clusters = Clustering.n_clusters clustering in
  if n_clusters < 4 then
    invalid_arg "Four_classes.run: needs at least 4 clusters";
  let cluster_procs c = Clustering.procs_of_cluster clustering c in
  (* Class 1: the first processor of cluster 0, alone. *)
  let c1_proc = List.hd (cluster_procs 0) in
  (* Class 2: all of cluster 1, private pages. *)
  let c2_procs = cluster_procs 1 in
  (* Class 3: all of cluster 2, read-faulting pages mastered at cluster 0. *)
  let c3_procs = cluster_procs 2 in
  (* Class 4: all of cluster 3 plus cluster 0's remaining processors,
     write-faulting the same shared pages — write sharing that spans
     clusters, so ownership must ping-pong. *)
  let c4_procs = cluster_procs 3 @ List.tl (cluster_procs 0) in
  (* Populate. *)
  List.iter
    (fun proc ->
      for i = 0 to config.iters - 1 do
        Kernel.populate_page kernel
          ~vpage:(private_page ~proc ~i)
          ~master_cluster:(Clustering.cluster_of_proc clustering proc)
          ~frame:i
      done)
    (c1_proc :: c2_procs);
  for i = 0 to n_read_pages - 1 do
    Kernel.populate_page kernel ~vpage:(read_shared_page i) ~master_cluster:0
      ~frame:i
  done;
  for i = 0 to n_write_pages - 1 do
    Kernel.populate_page kernel ~vpage:(write_shared_page i) ~master_cluster:0
      ~frame:i
  done;
  let active = (c1_proc :: c2_procs) @ c3_procs @ c4_procs in
  Kernel.spawn_idle_except kernel ~active;
  let s1 = Stat.create "class1" in
  let s2 = Stat.create "class2" in
  let s3 = Stat.create "class3" in
  let s4 = Stat.create "class4" in
  let rng = Rng.create config.seed in
  let spawn_faulter proc stat pick_page ~write =
    let ctx = Kernel.ctx kernel proc in
    let my_rng = Rng.split rng in
    Process.spawn eng (fun () ->
        for i = 0 to config.iters - 1 do
          Ctx.work ctx (200 + Rng.int my_rng 400);
          let vpage = pick_page my_rng i in
          let t0 = Machine.now machine in
          Memmgr.fault kernel ctx ~vpage ~write;
          Stat.add stat (Machine.now machine - t0);
          (* Shared pages are unmapped so the next round faults again. *)
          if write then Memmgr.unmap kernel ctx ~vpage
        done;
        Ctx.idle_loop ctx)
  in
  (* Class 1 and 2: private pages, each faulted once. *)
  spawn_faulter c1_proc s1 (fun _ i -> private_page ~proc:c1_proc ~i) ~write:false;
  List.iter
    (fun proc ->
      spawn_faulter proc s2 (fun _ i -> private_page ~proc ~i) ~write:false)
    c2_procs;
  (* Class 3: read-shared pages; after the first touch they are local
     replicas — exactly the "increase access bandwidth" behaviour. The
     pages must be remapped per access, so unmap after each fault. *)
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      let my_rng = Rng.split rng in
      Process.spawn eng (fun () ->
          for _ = 0 to config.iters - 1 do
            Ctx.work ctx (200 + Rng.int my_rng 400);
            let vpage = read_shared_page (Rng.int my_rng n_read_pages) in
            let t0 = Machine.now machine in
            Memmgr.fault kernel ctx ~vpage ~write:false;
            Stat.add s3 (Machine.now machine - t0);
            Memmgr.unmap kernel ctx ~vpage
          done;
          Ctx.idle_loop ctx))
    c3_procs;
  (* Class 4: write-shared pages. *)
  List.iter
    (fun proc ->
      spawn_faulter proc s4
        (fun my_rng _ -> write_shared_page (Rng.int my_rng n_write_pages))
        ~write:true)
    c4_procs;
  Engine.run eng;
  {
    non_concurrent = Measure.of_stat cfg ~label:"non-concurrent" s1;
    independent = Measure.of_stat cfg ~label:"independent" s2;
    read_shared = Measure.of_stat cfg ~label:"read-shared" s3;
    write_shared = Measure.of_stat cfg ~label:"write-shared" s4;
    replications = Kernel.replications kernel;
    invalidations = Kernel.invalidations kernel;
    retries = Kernel.retries kernel;
  }
