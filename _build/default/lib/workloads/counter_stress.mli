(** Lock-free vs locked single-word updates (Section 5.3, experiment
    ABL7): shared-counter increments by CAS retry loop versus under a
    lock, on the CAS machine. All modes produce the exact count. *)

open Locks

type mode = Lock_free | Locked of Lock.algo

val mode_name : mode -> string

type config = { p : int; ops : int; think : int; seed : int }

val default_config : config

type result = {
  mode : mode;
  total_us : float;
  per_op_us : float;
  final_value : int;
  expected_value : int;
  cas_failures : int;
  atomics : int;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> mode -> result

val run_all : ?cfg:Hector.Config.t -> ?config:config -> unit -> result list
