(** Locking-granularity ablation for the hash table (experiment ABL1):
    the same independent-key workload under hybrid, coarse and fine
    locking, at cluster-bounded concurrency. *)

open Locks
open Hkernel

type config = {
  p : int;
  keys_per_proc : int;
  ops : int;
  element_work_us : float;
  think_us : float;
  shared_fraction : float;
  lock_algo : Lock.algo;
  seed : int;
}

val default_config : config

type result = {
  granularity : Khash.granularity;
  summary : Measure.summary;  (** per-operation latency, work excluded *)
  atomics : int;
  lock_words : int;  (** space cost of the locking strategy *)
  reserve_conflicts : int;
}

val run :
  ?cfg:Hector.Config.t -> ?config:config -> Khash.granularity -> result

val run_all : ?cfg:Hector.Config.t -> ?config:config -> unit -> result list
