(* Data-structure-design ablation (Section 2.5, experiment ABL8).

   The paper's lesson: process descriptors did double duty — family-tree
   links (destruction, tree-ordered) and message passing (arbitrary pairs,
   no order) — and "combining two structures with different locking
   characteristics into a single entity" caused concurrency-control
   problems. This workload mixes a message-passing storm with a destruction
   storm over the same processes and compares the shipped [Combined] layout
   (one reserve bit does both jobs) against the wished-for [Separate] one
   (the tree has its own tables and reserve bits).

   Expected: with the combined layout, senders and destroyers trip over
   each other's reservations; separating the structures removes almost all
   of that interference. *)

open Eventsim
open Hector
open Hkernel

type config = {
  cluster_size : int;
  senders : int; (* one per cluster index, sending from local processes *)
  destroyers : int;
  messages_per_sender : int;
  victims : int; (* processes destroyed during the storm *)
  layout : Procs.layout;
  seed : int;
}

let default_config =
  {
    cluster_size = 4;
    senders = 4;
    destroyers = 4;
    messages_per_sender = 60;
    victims = 16;
    layout = Procs.Combined;
    seed = 47;
  }

type result = {
  layout : Procs.layout;
  sends : int;
  send_retries : int;
  destroys : int;
  destroy_retries : int;
  send_summary : Measure.summary;
  destroy_summary : Measure.summary;
  total_us : float;
}

(* Process ids: a root, one long-lived "server" process per cluster
   (message targets), and the victims (children of the root, destroyed
   mid-storm). *)
let root = 1
let victim_pid i = 1000 + i

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size ~seed:config.seed
  in
  let clustering = Kernel.clustering kernel in
  let procs = Procs.create ~layout:config.layout kernel in
  Procs.spawn_process_untimed procs ~pid:root ~parent:0;
  (* One server process homed in each cluster: pick pids congruent to the
     cluster id so cluster_of_pid places them correctly. *)
  let n_clusters = Clustering.n_clusters clustering in
  let server c =
    let rec find pid = if pid mod n_clusters = c then pid else find (pid + 1) in
    find (100 + (100 * c))
  in
  for c = 0 to n_clusters - 1 do
    Procs.spawn_process_untimed procs ~pid:(server c) ~parent:root
  done;
  (* Victims: children of the servers, scattered over clusters. *)
  for i = 0 to config.victims - 1 do
    Procs.spawn_process_untimed procs ~pid:(victim_pid i)
      ~parent:(server (i mod n_clusters))
  done;
  let send_stat = Stat.create "send" in
  let destroy_stat = Stat.create "destroy" in
  let rng = Rng.create config.seed in
  let active = ref [] in
  (* Senders: processor 0 of each of the first [senders] clusters, sending
     from their cluster's server to other clusters' servers. *)
  for s = 0 to min config.senders n_clusters - 1 do
    let proc = List.hd (Clustering.procs_of_cluster clustering s) in
    active := proc :: !active;
    let ctx = Kernel.ctx kernel proc in
    let my_rng = Rng.split rng in
    Process.spawn eng (fun () ->
        for _ = 1 to config.messages_per_sender do
          let dst = server (Rng.int my_rng n_clusters) in
          let t0 = Machine.now machine in
          ignore (Procs.send procs ctx ~src:(server s) ~dst);
          Stat.add send_stat (Machine.now machine - t0);
          Ctx.work ctx (200 + Rng.int my_rng 400)
        done;
        Ctx.idle_loop ctx)
  done;
  (* Destroyers: the second processor of each of the first [destroyers]
     clusters, killing the victims concurrently with the message storm. *)
  for d = 0 to min config.destroyers n_clusters - 1 do
    match Clustering.procs_of_cluster clustering d with
    | _ :: proc :: _ ->
      active := proc :: !active;
      let ctx = Kernel.ctx kernel proc in
      let my_rng = Rng.split rng in
      Process.spawn eng (fun () ->
          let rec kill i =
            if i < config.victims then begin
              let t0 = Machine.now machine in
              ignore (Procs.destroy procs ctx (victim_pid i));
              Stat.add destroy_stat (Machine.now machine - t0);
              Ctx.work ctx (100 + Rng.int my_rng 300);
              kill (i + min config.destroyers n_clusters)
            end
          in
          kill d;
          Ctx.idle_loop ctx)
    | _ -> ()
  done;
  Kernel.spawn_idle_except kernel ~active:!active;
  Engine.run eng;
  {
    layout = config.layout;
    sends = Procs.sends procs;
    send_retries = Procs.send_retries procs;
    destroys = Procs.destroys procs;
    destroy_retries = Procs.retries procs;
    send_summary = Measure.of_stat cfg ~label:"send" send_stat;
    destroy_summary = Measure.of_stat cfg ~label:"destroy" destroy_stat;
    total_us = Config.us_of_cycles cfg (Engine.now eng);
  }

let run_both ?cfg ?(config = default_config) () =
  ( run ?cfg ~config:{ config with layout = Procs.Combined } (),
    run ?cfg ~config:{ config with layout = Procs.Separate } () )
