(* File-server read stress (experiment FS, Section 5.1).

   [p] processes sequentially read files through the clustered file server:
   either private files (concurrent independent requests) or one hot shared
   file (concurrent read-shared requests). Reports per-read latency, cache
   hit rate and home-fetch traffic, with and without read-ahead — showing
   the paper's server-side claim: the same clustering + hybrid-locking
   machinery gives the file system its concurrency too. *)

open Eventsim
open Hector
open Hkernel

type sharing = Private_files | Shared_file

let sharing_name = function
  | Private_files -> "private"
  | Shared_file -> "shared"

type config = {
  p : int;
  blocks_per_file : int;
  passes : int; (* sequential passes over the file(s) *)
  cluster_size : int;
  read_ahead : int;
  sharing : sharing;
  seed : int;
}

let default_config =
  {
    p = 8;
    blocks_per_file = 24;
    passes = 2;
    cluster_size = 4;
    read_ahead = 3;
    sharing = Private_files;
    seed = 61;
  }

type result = {
  sharing : sharing;
  read_ahead : int;
  summary : Measure.summary;
  hit_rate : float;
  fetch_rpcs : int;
  blocks_fetched : int;
}

(* Private file ids are chosen so each lands at its reader's home cluster;
   the shared file lives at cluster 0. *)
let shared_file = 4000

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size ~seed:config.seed
  in
  let clustering = Kernel.clustering kernel in
  let n_clusters = Clustering.n_clusters clustering in
  let server = Fserver.create ~read_ahead:config.read_ahead kernel in
  let private_file proc =
    (* A file homed in the reader's own cluster. *)
    let c = Clustering.cluster_of_proc clustering proc in
    let rec find f = if f mod n_clusters = c then f else find (f + 1) in
    find (5000 + (100 * proc))
  in
  (match config.sharing with
  | Shared_file ->
    Fserver.create_file_untimed server ~file:shared_file
      ~blocks:config.blocks_per_file
  | Private_files ->
    for proc = 0 to config.p - 1 do
      Fserver.create_file_untimed server ~file:(private_file proc)
        ~blocks:config.blocks_per_file
    done);
  let active = List.init config.p (fun i -> i) in
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create "read" in
  let rng = Rng.create config.seed in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      let my_rng = Rng.split rng in
      let file =
        match config.sharing with
        | Shared_file -> shared_file
        | Private_files -> private_file proc
      in
      Process.spawn eng (fun () ->
          (match Fserver.open_file server ctx ~file with
          | Some _ -> ()
          | None -> failwith "file_read: open failed");
          for _pass = 1 to config.passes do
            for index = 0 to config.blocks_per_file - 1 do
              Ctx.work ctx (40 + Rng.int my_rng 80);
              let t0 = Machine.now machine in
              if not (Fserver.read_block server ctx ~file ~index) then
                failwith "file_read: read failed";
              Stat.add stat (Machine.now machine - t0)
            done
          done;
          Fserver.close_file server ctx ~file;
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  {
    sharing = config.sharing;
    read_ahead = config.read_ahead;
    summary =
      Measure.of_stat cfg
        ~label:
          (Printf.sprintf "%s/ra=%d" (sharing_name config.sharing)
             config.read_ahead)
        stat;
    hit_rate = Fserver.hit_rate server;
    fetch_rpcs = Fserver.fetch_rpcs server;
    blocks_fetched = Fserver.fetches server;
  }

(* The FS experiment grid: private vs shared, read-ahead off and on. *)
let run_grid ?cfg ?(config = default_config) () =
  List.concat_map
    (fun sharing ->
      List.map
        (fun read_ahead -> run ?cfg ~config:{ config with sharing; read_ahead } ())
        [ 0; config.read_ahead ])
    [ Private_files; Shared_file ]
