(** Independent page-fault test (Figures 6a, 7a, 7c): [p] processes walk
    private regions of local memory, each page faulted exactly once (soft
    faults), with jittered application think time between faults. The only
    lock contention is the kernel's own coarse locks. *)

open Locks

type config = {
  p : int;
  iters : int;
  cluster_size : int;
  lock_algo : Lock.algo;
  nbins : int;
  think_us : float;
  seed : int;
}

val default_config : config

type result = {
  summary : Measure.summary;
  faults : int;
  retries : int;
  rpcs : int;
  reserve_conflicts : int;
}

val vpage_of : proc:int -> j:int -> int

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result
