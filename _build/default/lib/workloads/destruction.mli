(** Program-destruction storm (Section 2.5, experiment RETRY): every
    process of a program is destroyed at about the same time by different
    processors, contending on the parent descriptor's reservation. Compares
    the optimistic and pessimistic deadlock-management strategies. *)

open Hkernel

type config = {
  n_programs : int;
  children : int;
  cluster_size : int;
  strategy : Procs.strategy;
  seed : int;
}

val default_config : config

type result = {
  strategy : Procs.strategy;
  destroy_summary : Measure.summary;
  destroys : int;
  retries : int;
  revalidations : int;
  lost_races : int;
  total_us : float;
}

val root_pid : int -> int
val child_pid : int -> int -> int

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result
