(** The four access-behaviour classes of the paper's introduction, running
    simultaneously on one clustered machine (experiment CLASSES):
    non-concurrent, concurrent independent, concurrent read-shared, and
    concurrent write-shared requests, one cluster each. *)

type config = {
  iters : int;
  cluster_size : int;
  lock_algo : Locks.Lock.algo;
  seed : int;
}

val default_config : config

type result = {
  non_concurrent : Measure.summary;
  independent : Measure.summary;
  read_shared : Measure.summary;
  write_shared : Measure.summary;
  replications : int;
  invalidations : int;
  retries : int;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result
