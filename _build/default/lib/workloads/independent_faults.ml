(* Independent page-fault test (Figure 6a / Figures 7a and 7c).

   [p] processes repeatedly fault on per-process private pages of local
   memory. The faults touch different physical resources, so the only lock
   contention is "unnecessary" conflicts inside the kernel — chiefly the
   cluster's coarse page-descriptor lock. Each iteration faults the page in
   (measured) and unmaps it again (not measured), keeping every fault a
   soft fault. *)

open Eventsim
open Hector
open Locks
open Hkernel

type config = {
  p : int;
  iters : int; (* measured faults per processor; one private page each *)
  cluster_size : int;
  lock_algo : Lock.algo;
  nbins : int;
  think_us : float; (* application work between faults (jittered) *)
  seed : int;
}

let default_config =
  {
    p = 16;
    iters = 120;
    cluster_size = 16;
    lock_algo = Lock.Mcs_h2;
    nbins = 512;
    think_us = 30.0;
    seed = 11;
  }

type result = {
  summary : Measure.summary;
  faults : int;
  retries : int;
  rpcs : int;
  reserve_conflicts : int;
}

let vpage_of ~proc ~j = 100_000 + (1000 * proc) + j

let run ?(cfg = Config.hector) ?(config = default_config) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size
      ~lock_algo:config.lock_algo ~nbins:config.nbins ~seed:config.seed
  in
  (* Each processor walks its own private region of local memory, faulting
     every page exactly once — each fault a fresh soft fault, as in the
     paper's test. *)
  let active = List.init config.p (fun p -> p) in
  List.iter
    (fun proc ->
      for j = 0 to config.iters - 1 do
        Kernel.populate_page kernel ~vpage:(vpage_of ~proc ~j)
          ~master_cluster:(Kernel.cluster_of_proc kernel proc)
          ~frame:(vpage_of ~proc ~j)
      done)
    active;
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create "independent" in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      Process.spawn eng (fun () ->
          let think = Config.cycles_of_us cfg config.think_us in
          for i = 0 to config.iters - 1 do
            (* The application touches the freshly mapped page and computes
               for a while before the next fault — local work. *)
            if think > 0 then begin
              let d = (think / 2) + Rng.int (Ctx.rng ctx) (max 1 think) in
              Ctx.work ctx d
            end;
            let vpage = vpage_of ~proc ~j:i in
            let t0 = Machine.now machine in
            Memmgr.fault kernel ctx ~vpage ~write:true;
            Stat.add stat (Machine.now machine - t0)
          done;
          (* Finished workers keep serving incoming RPCs. *)
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  let reserve_conflicts =
    Array.fold_left
      (fun acc c -> acc + Khash.reserve_conflicts c.Kernel.page_hash)
      0
      (Array.init
         (Clustering.n_clusters (Kernel.clustering kernel))
         (fun i -> Kernel.cluster kernel i))
  in
  {
    summary =
      Measure.of_stat cfg ~label:(Lock.algo_name config.lock_algo) stat;
    faults = Kernel.faults kernel;
    retries = Kernel.retries kernel;
    rpcs = Rpc.calls (Kernel.rpc kernel);
    reserve_conflicts;
  }
