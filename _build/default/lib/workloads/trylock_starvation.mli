(** TryLock fairness under a saturated distributed lock (Section 3.2,
    experiment TRY): retry-based TryLock never sees the lock free, while
    the soft-mask + deferred-work scheme completes every request. *)

type config = {
  holders : int;
  hold_us : float;
  attempt_gap_us : float;
  window_us : float;
  seed : int;
}

val default_config : config

type result = {
  try_attempts : int;
  try_successes : int;
  try_success_rate : float;
  deferred_posted : int;
  deferred_completed : int;
  deferred_latency : Measure.summary;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result
