(** Single-threaded probes for the paper's absolute anchors: the ~160 µs
    soft fault (~40 µs locking), the ~27 µs null RPC, and the ~88 µs
    cluster-wide lookup + descriptor replication. *)

open Hector

type result = {
  soft_fault_us : float;
  lockless_fault_us : float;
  lock_overhead_us : float;  (** soft fault minus the lockless variant *)
  null_rpc_us : float;
  replicate_fault_us : float;
  replicate_extra_us : float;  (** over a local soft fault *)
}

val measure_fault : ?lockless:bool -> ?iters:int -> Config.t -> float
val measure_null_rpc : ?iters:int -> Config.t -> float
val measure_replicate_fault : ?iters:int -> Config.t -> float

val run : ?cfg:Config.t -> unit -> result
