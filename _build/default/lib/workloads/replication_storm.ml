(* Combining-tree ablation (experiment ABL2).

   All [p] processors read-fault the same cold page (mastered at cluster 0,
   no replicas anywhere else) at the same instant — the bursty SPMD access
   pattern of Section 2.2. With the combining tree, the first misser per
   cluster inserts a reserved placeholder and goes remote while its
   cluster-mates wait on the reserve bit: the master absorbs one RPC per
   cluster. Without it, every misser goes remote itself. *)

open Eventsim
open Hector
open Hkernel

type config = {
  p : int;
  cluster_size : int;
  storms : int; (* repetitions, each on a fresh page *)
  seed : int;
}

let default_config = { p = 16; cluster_size = 4; storms = 20; seed = 23 }

type result = {
  combining : bool;
  summary : Measure.summary;
  master_rpcs_per_storm : float;
  replications_per_storm : float;
}

let vpage_of storm = 900_000 + storm

let run ?(cfg = Config.hector) ?(config = default_config) ~combining () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let kernel =
    Kernel.create machine ~cluster_size:config.cluster_size ~seed:config.seed
  in
  for s = 0 to config.storms - 1 do
    Kernel.populate_page kernel ~vpage:(vpage_of s) ~master_cluster:0
      ~frame:(vpage_of s)
  done;
  let active = List.init config.p (fun p -> p) in
  Kernel.spawn_idle_except kernel ~active;
  let stat = Stat.create (if combining then "combining" else "direct") in
  let barrier = Barrier.create ~parties:config.p in
  List.iter
    (fun proc ->
      let ctx = Kernel.ctx kernel proc in
      Process.spawn eng (fun () ->
          for s = 0 to config.storms - 1 do
            (* Everyone hits the cold page at the same time. *)
            Barrier.wait barrier ctx;
            let t0 = Machine.now machine in
            if combining then
              Memmgr.fault kernel ctx ~vpage:(vpage_of s) ~write:false
            else Memmgr.read_fault_no_combining kernel ctx ~vpage:(vpage_of s);
            Stat.add stat (Machine.now machine - t0);
            Barrier.wait barrier ctx
          done;
          (* Finished workers keep serving incoming RPCs. *)
          Ctx.idle_loop ctx))
    active;
  Engine.run eng;
  let storms = float_of_int config.storms in
  {
    combining;
    summary =
      Measure.of_stat cfg
        ~label:(if combining then "combining" else "no-combining")
        stat;
    master_rpcs_per_storm = float_of_int (Kernel.fault_rpcs kernel) /. storms;
    replications_per_storm =
      float_of_int (Kernel.replications kernel) /. storms;
  }

let run_both ?cfg ?config () =
  (run ?cfg ?config ~combining:true (), run ?cfg ?config ~combining:false ())
