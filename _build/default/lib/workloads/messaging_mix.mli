(** Data-structure-design ablation (Section 2.5, experiment ABL8): a
    message-passing storm mixed with a destruction storm over the same
    processes, under the shipped [Combined] descriptor layout versus the
    [Separate] family tree the paper wished it had used. *)

open Hkernel

type config = {
  cluster_size : int;
  senders : int;
  destroyers : int;
  messages_per_sender : int;
  victims : int;
  layout : Procs.layout;
  seed : int;
}

val default_config : config

type result = {
  layout : Procs.layout;
  sends : int;
  send_retries : int;
  destroys : int;
  destroy_retries : int;
  send_summary : Measure.summary;
  destroy_summary : Measure.summary;
  total_us : float;
}

val run : ?cfg:Hector.Config.t -> ?config:config -> unit -> result

(** Combined first, then Separate, same parameters. *)
val run_both :
  ?cfg:Hector.Config.t -> ?config:config -> unit -> result * result
