(** Combining-tree ablation (experiment ABL2): every processor read-faults
    the same cold page at once. With combining, the master serves one
    request per cluster; without, one per processor. *)

type config = { p : int; cluster_size : int; storms : int; seed : int }

val default_config : config

type result = {
  combining : bool;
  summary : Measure.summary;
  master_rpcs_per_storm : float;
  replications_per_storm : float;
}

val run :
  ?cfg:Hector.Config.t -> ?config:config -> combining:bool -> unit -> result

val run_both : ?cfg:Hector.Config.t -> ?config:config -> unit -> result * result
