(* Inter-cluster remote procedure calls.

   An RPC is carried by an inter-processor interrupt: the sender marshals a
   request (a remote write into the target's memory), raises the IPI, and
   spins on the reply word with interrupts enabled — the processor is busy
   but still serves incoming RPCs, as an exception-based kernel must. The
   service runs in the target's interrupt context and therefore must never
   wait on a reserve bit: it fails with [Would_deadlock] instead, and the
   initiator retries (Section 2.3).

   The target processor is chosen by the caller; Hurricane's rule is i-th
   processor to i-th processor (see {!Clustering.rpc_target}). *)

open Eventsim
open Hector

type outcome =
  | Ok of int
  | Would_deadlock (* a reserve bit was found set on the remote side *)
  | Absent (* the remote structure does not exist *)

let outcome_name = function
  | Ok v -> Printf.sprintf "Ok(%d)" v
  | Would_deadlock -> "Would_deadlock"
  | Absent -> "Absent"

type t = {
  ctxs : Ctx.t array;
  costs : Costs.t;
  req_cells : Cell.t array; (* request mailbox per processor *)
  mutable work : Ctx.t -> int -> unit;
      (* how marshal/dispatch cycles are charged; the kernel installs its
         memory-bound worker here *)
  mutable calls : int;
  mutable deadlock_failures : int;
  mutable retries : int;
}

let create machine ctxs costs =
  {
    ctxs;
    costs;
    req_cells =
      Array.init (Array.length ctxs) (fun p ->
          Machine.alloc machine ~label:(Printf.sprintf "rpcreq%d" p) ~home:p 0);
    work = (fun ctx cycles -> Ctx.work ctx cycles);
    calls = 0;
    deadlock_failures = 0;
    retries = 0;
  }

let set_work t f = t.work <- f

let calls t = t.calls
let deadlock_failures t = t.deadlock_failures
let retries t = t.retries

(* One synchronous RPC. [service] runs on the target processor's context in
   interrupt state. *)
let call t ctx ~target service =
  let machine = Ctx.machine ctx in
  if target = Ctx.proc ctx then begin
    (* Local "call": run the service directly, no interrupt machinery. *)
    t.calls <- t.calls + 1;
    let r = service ctx in
    (match r with
    | Would_deadlock -> t.deadlock_failures <- t.deadlock_failures + 1
    | Ok _ | Absent -> ());
    r
  end
  else begin
    t.calls <- t.calls + 1;
    t.work ctx t.costs.Costs.rpc_send;
    (* Deposit the request in the target's mailbox: one remote write. *)
    Ctx.write ctx t.req_cells.(target) (Ctx.proc ctx + 1);
    let reply = Ivar.create () in
    let reply_cell =
      Machine.alloc machine ~label:"rpcreply" ~home:(Ctx.proc ctx) 0
    in
    Ctx.post_ipi t.ctxs.(target) (fun tctx ->
        t.work tctx t.costs.Costs.rpc_dispatch;
        let r = service tctx in
        t.work tctx t.costs.Costs.rpc_reply;
        (* Deposit the reply at the caller: one remote write. *)
        Ctx.write tctx reply_cell 1;
        Ivar.fill (Ctx.engine tctx) reply r);
    let r = Ctx.await ctx reply in
    (* Consume the reply word. *)
    ignore (Ctx.read ctx reply_cell);
    (match r with
    | Would_deadlock -> t.deadlock_failures <- t.deadlock_failures + 1
    | Ok _ | Absent -> ());
    r
  end

(* Retry a [Would_deadlock]-prone call until it resolves, backing off with
   jitter between attempts. [before_retry] lets the caller release local
   reserve bits (the optimistic protocol) before each new attempt. *)
let call_until_resolved ?(before_retry = fun () -> ()) t ctx ~target service =
  let rec go attempt =
    match call t ctx ~target service with
    | Would_deadlock ->
      t.retries <- t.retries + 1;
      before_retry ();
      let base = t.costs.Costs.retry_backoff * min attempt 8 in
      Ctx.interruptible_pause ctx (base + Rng.int (Ctx.rng ctx) (max 1 base));
      go (attempt + 1)
    | (Ok _ | Absent) as r -> r
  in
  go 1
