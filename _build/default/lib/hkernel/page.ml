(* Page descriptors.

   A descriptor instance exists per cluster that uses the page (hierarchical
   clustering replicates them on demand). Each instance keeps its own
   reference count — the paper's example of data that software replication
   handles better than hardware coherence would. The master cluster's
   instance additionally carries the ownership directory: which clusters
   hold replicas (sharers) and which one holds write ownership. *)

open Hector

(* Validity of a cluster's replica. *)
let st_invalid = 0
let st_valid_read = 1
let st_valid_write = 2

type pdesc = {
  vpage : int;
  frame : int; (* physical frame; soft faults never change it *)
  master_cluster : int;
  refcount : Cell.t; (* local mappings in this cluster *)
  vstate : Cell.t; (* st_invalid / st_valid_read / st_valid_write *)
  (* Directory fields — meaningful on the master instance only. *)
  dir_sharers : Cell.t; (* bitmask of clusters holding a replica *)
  dir_owner : Cell.t; (* 1 + owning cluster id; 0 = none *)
}

let make machine ~home ~vpage ~frame ~master_cluster ~vstate:v0 =
  {
    vpage;
    frame;
    master_cluster;
    refcount = Machine.alloc machine ~label:"refcnt" ~home 0;
    vstate = Machine.alloc machine ~label:"vstate" ~home v0;
    dir_sharers = Machine.alloc machine ~label:"sharers" ~home 0;
    dir_owner = Machine.alloc machine ~label:"owner" ~home 0;
  }

let state_name s =
  if s = st_invalid then "invalid"
  else if s = st_valid_read then "valid-read"
  else if s = st_valid_write then "valid-write"
  else "?"

(* Sharer bitmask helpers. *)
let sharer_bit c = 1 lsl c
let has_sharer mask c = mask land sharer_bit c <> 0
let add_sharer mask c = mask lor sharer_bit c
let remove_sharer mask c = mask land lnot (sharer_bit c)

let sharers_to_list mask =
  let rec go c acc =
    if c < 0 then acc
    else go (c - 1) (if has_sharer mask c then c :: acc else acc)
  in
  go 62 []
