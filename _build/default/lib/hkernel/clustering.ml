(* Hierarchical clustering: partition the machine's processors into
   clusters. A complete set of kernel data structures is instantiated per
   cluster; only processors inside a cluster touch its structures directly,
   and cross-cluster work travels by RPC (i-th processor to i-th processor,
   to balance the RPC load — Section 2.2). *)

type t = {
  cluster_size : int;
  n_clusters : int;
  n_procs : int;
}

let create ~n_procs ~cluster_size =
  if cluster_size <= 0 || cluster_size > n_procs then
    invalid_arg
      (Printf.sprintf "Clustering.create: bad cluster size %d (procs %d)"
         cluster_size n_procs);
  let n_clusters = (n_procs + cluster_size - 1) / cluster_size in
  { cluster_size; n_clusters; n_procs }

let cluster_size t = t.cluster_size
let n_clusters t = t.n_clusters
let n_procs t = t.n_procs

let cluster_of_proc t p =
  if p < 0 || p >= t.n_procs then
    invalid_arg (Printf.sprintf "Clustering.cluster_of_proc: bad proc %d" p);
  p / t.cluster_size

(* Index of a processor within its cluster. *)
let index_in_cluster t p = p mod t.cluster_size

let procs_of_cluster t c =
  if c < 0 || c >= t.n_clusters then
    invalid_arg (Printf.sprintf "Clustering.procs_of_cluster: bad cluster %d" c);
  let first = c * t.cluster_size in
  let last = min (first + t.cluster_size) t.n_procs - 1 in
  List.init (last - first + 1) (fun i -> first + i)

let size_of_cluster t c = List.length (procs_of_cluster t c)

(* The paper's load-balancing rule: an RPC from the i-th processor of the
   source cluster goes to the i-th processor of the target cluster. *)
let rpc_target t ~from ~target_cluster =
  let i = index_in_cluster t from in
  let procs = procs_of_cluster t target_cluster in
  List.nth procs (i mod List.length procs)

(* A PMM within cluster [c] to home a structure on, spread round-robin by
   [salt] so cluster data is distributed over the cluster's memory. *)
let home_in_cluster t ~cluster ~salt =
  let procs = procs_of_cluster t cluster in
  List.nth procs (abs salt mod List.length procs)

let pp ppf t =
  Format.fprintf ppf "%d clusters of %d (over %d procs)" t.n_clusters
    t.cluster_size t.n_procs
