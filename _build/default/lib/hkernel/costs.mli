(** Calibrated cost constants (in cycles) for the simulated kernel paths.

    Calibrated against the paper's anchors: a soft page fault ~160 µs of
    which ~40 µs is locking; a null RPC ~27 µs; a cluster-wide lookup plus
    descriptor replication ~88 µs. The CONST experiment re-measures them. *)

type t = {
  fault_entry : int;
  fault_exit : int;
  map_page : int;
  unmap_page : int;
  hash_probe : int;
  rpc_send : int;
  rpc_dispatch : int;
  rpc_reply : int;
  replicate_copy : int;
  shootdown : int;
  directory_update : int;
  retry_backoff : int;
}

(** The calibrated HECTOR constants. *)
val default : t

(** All paddings zeroed (retry backoff kept minimal); for tests that check
    locking logic without calibration cycles. *)
val zero : t
