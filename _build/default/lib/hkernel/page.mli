(** Page descriptors and the per-page ownership directory.

    A descriptor instance exists in every cluster that uses the page; each
    keeps its own reference count (the paper's example of replication that
    hardware coherence cannot provide). The master cluster's instance also
    carries the directory: the sharer set and the write owner. *)

open Hector

(** Replica validity states, ordered: invalid < valid-read < valid-write. *)
val st_invalid : int

val st_valid_read : int
val st_valid_write : int

val state_name : int -> string

type pdesc = {
  vpage : int;
  frame : int;
  master_cluster : int;
  refcount : Cell.t; (** local mappings in this cluster *)
  vstate : Cell.t; (** replica validity *)
  dir_sharers : Cell.t; (** master only: bitmask of clusters with replicas *)
  dir_owner : Cell.t; (** master only: 1 + owning cluster; 0 = none *)
}

val make :
  Machine.t ->
  home:int ->
  vpage:int ->
  frame:int ->
  master_cluster:int ->
  vstate:int ->
  pdesc

(** Sharer-bitmask helpers. *)

val sharer_bit : int -> int
val has_sharer : int -> int -> bool
val add_sharer : int -> int -> int
val remove_sharer : int -> int -> int
val sharers_to_list : int -> int list
