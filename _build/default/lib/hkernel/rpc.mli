(** Inter-cluster remote procedure calls, carried by inter-processor
    interrupts.

    The caller deposits a request (remote write), raises the IPI, and spins
    on the reply with interrupts enabled — a busy processor still serves
    incoming RPCs, which an exception-based kernel requires. Services run in
    the target's interrupt context and must never wait: they fail with
    [Would_deadlock] and the initiator retries (Section 2.3). *)

open Hector

type outcome =
  | Ok of int
  | Would_deadlock  (** a reserve bit was found set on the remote side *)
  | Absent  (** the remote structure does not exist *)

val outcome_name : outcome -> string

type t

val create : Machine.t -> Ctx.t array -> Costs.t -> t

(** Install the function charging marshal/dispatch cycles (the kernel routes
    them through its memory-bound worker). *)
val set_work : t -> (Ctx.t -> int -> unit) -> unit

val calls : t -> int
val deadlock_failures : t -> int
val retries : t -> int

(** One synchronous call; [service] runs on the target processor. A call to
    the caller's own processor runs the service directly. *)
val call : t -> Ctx.t -> target:int -> (Ctx.t -> outcome) -> outcome

(** Retry a call through [Would_deadlock] failures with jittered backoff;
    [before_retry] releases the caller's reserve bits first (the optimistic
    protocol). Never returns [Would_deadlock]. *)
val call_until_resolved :
  ?before_retry:(unit -> unit) ->
  t ->
  Ctx.t ->
  target:int ->
  (Ctx.t -> outcome) ->
  outcome
