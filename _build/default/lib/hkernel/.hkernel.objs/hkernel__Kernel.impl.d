lib/hkernel/kernel.ml: Array Cell Clustering Costs Ctx Eventsim Hector Khash List Lock Locks Machine Page Printf Process Rng Rpc
