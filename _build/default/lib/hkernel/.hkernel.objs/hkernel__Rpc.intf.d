lib/hkernel/rpc.mli: Costs Ctx Hector Machine
