lib/hkernel/page.ml: Cell Hector Machine
