lib/hkernel/procs.ml: Array Cell Clustering Costs Ctx Eventsim Hector Kernel Khash List Rpc
