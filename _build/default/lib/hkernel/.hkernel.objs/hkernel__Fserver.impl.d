lib/hkernel/fserver.ml: Array Cell Clustering Ctx Hashtbl Hector Kernel Khash List Locks Page Rpc
