lib/hkernel/khash.mli: Cell Ctx Hector Lock Locks Machine Spin_lock
