lib/hkernel/procs.mli: Cell Ctx Hector Kernel
