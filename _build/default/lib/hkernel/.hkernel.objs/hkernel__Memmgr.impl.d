lib/hkernel/memmgr.ml: Cell Clustering Costs Ctx Eventsim Hector Kernel Khash Lock Locks Option Page Procs Rpc
