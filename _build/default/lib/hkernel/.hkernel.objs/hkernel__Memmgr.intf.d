lib/hkernel/memmgr.mli: Ctx Hector Kernel Page Procs Rpc
