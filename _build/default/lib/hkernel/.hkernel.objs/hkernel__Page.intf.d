lib/hkernel/page.mli: Cell Hector Machine
