lib/hkernel/costs.mli:
