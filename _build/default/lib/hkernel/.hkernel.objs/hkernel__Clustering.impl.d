lib/hkernel/clustering.ml: Format List Printf
