lib/hkernel/fserver.mli: Cell Ctx Hector Kernel
