lib/hkernel/khash.ml: Array Backoff Cell Ctx Hector List Lock Locks Machine Option Printf Reserve Spin_lock
