lib/hkernel/costs.ml:
