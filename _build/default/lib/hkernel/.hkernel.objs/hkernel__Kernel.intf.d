lib/hkernel/kernel.mli: Cell Clustering Costs Ctx Engine Eventsim Hector Khash Lock Locks Machine Page Rpc
