lib/hkernel/rpc.ml: Array Cell Costs Ctx Eventsim Hector Ivar Machine Printf Rng
