lib/hkernel/clustering.mli: Format
