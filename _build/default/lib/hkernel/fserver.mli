(** A file server built from the paper's techniques (Section 5.1):
    per-cluster hybrid-locked block caches and open-file tables, descriptor
    replication from each file's home cluster, combining fetches, optional
    read-ahead, and version-based invalidation broadcasts on rewrite. *)

open Hector

type block = { b_file : int; b_index : int; version : Cell.t }

type ofile = { f_file : int; mutable f_blocks : int; opens : Cell.t }

type t

(** [create kernel] with [read_ahead] extra blocks fetched per miss. *)
val create : ?read_ahead:int -> Kernel.t -> t

val reads : t -> int
val hits : t -> int

(** Blocks transferred from home clusters. *)
val fetches : t -> int

(** Fetch RPCs issued (a combined fetch serves a whole cluster). *)
val fetch_rpcs : t -> int

val invalidated_blocks : t -> int
val hit_rate : t -> float

val home_cluster : t -> int -> int
val block_key : file:int -> index:int -> int

(** Untimed setup. *)
val create_file_untimed : t -> file:int -> blocks:int -> unit

val file_exists : t -> int -> bool
val file_version_untimed : t -> int -> int
val open_count_untimed : t -> cluster:int -> file:int -> int

(** Open a file in the caller's cluster (replicating the descriptor on the
    first open); returns its length in blocks, or [None] if absent. *)
val open_file : t -> Ctx.t -> file:int -> int option

val close_file : t -> Ctx.t -> file:int -> unit

(** Read one block through the cluster cache; returns [false] if the block
    does not exist. *)
val read_block : t -> Ctx.t -> file:int -> index:int -> bool

(** Bump the file's version and invalidate every caching cluster. Must run
    at the file's home cluster. Returns [false] if the file is absent. *)
val rewrite_file : t -> Ctx.t -> file:int -> bool
