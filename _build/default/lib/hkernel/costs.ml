(* Calibrated cost constants for the simulated kernel paths.

   The anchors come from the paper:
   - a simple soft page fault measures ~160 us, ~40 us of which is locking;
   - a null RPC costs ~27 us;
   - a cluster-wide page lookup plus descriptor replication costs ~88 us.

   The constants below are pure-compute paddings charged along the paths in
   {!Memmgr} and {!Rpc}; the locking, hash-probe and descriptor-touch costs
   come out of the timed memory operations themselves. The CONST experiment
   in the benchmark harness re-measures all three anchors. *)

type t = {
  (* page fault path *)
  fault_entry : int; (* exception entry, trap decode, region lookup *)
  fault_exit : int; (* return from exception, TLB insert *)
  map_page : int; (* page-table update bookkeeping *)
  unmap_page : int; (* page-table removal bookkeeping *)
  hash_probe : int; (* compute per chain element examined *)
  (* RPC path *)
  rpc_send : int; (* marshal request, raise IPI *)
  rpc_dispatch : int; (* demultiplex on the target side *)
  rpc_reply : int; (* marshal reply *)
  (* replication / coherence *)
  replicate_copy : int; (* copy a page descriptor's payload *)
  shootdown : int; (* invalidate a cluster's mappings for one page *)
  directory_update : int; (* ownership / sharer bookkeeping at the master *)
  (* deadlock protocol *)
  retry_backoff : int; (* pause before retrying a failed remote op *)
}

let default =
  {
    fault_entry = 700;
    fault_exit = 500;
    map_page = 660;
    unmap_page = 200;
    hash_probe = 10;
    rpc_send = 110;
    rpc_dispatch = 130;
    rpc_reply = 70;
    replicate_copy = 700;
    shootdown = 240;
    directory_update = 80;
    retry_backoff = 200;
  }

(* A variant with all paddings zeroed: used by tests that check the locking
   logic without wading through calibration cycles. *)
let zero =
  {
    fault_entry = 0;
    fault_exit = 0;
    map_page = 0;
    unmap_page = 0;
    hash_probe = 0;
    rpc_send = 0;
    rpc_dispatch = 0;
    rpc_reply = 0;
    replicate_copy = 0;
    shootdown = 0;
    directory_update = 0;
    retry_backoff = 16;
  }
