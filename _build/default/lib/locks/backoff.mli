(** Exponential backoff policy for spin loops.

    Delay doubles per failed attempt up to a cap. Jitter (drawn from the
    processor's deterministic RNG stream) prevents lock-step retries. *)

open Hector

type t

val create : ?base:int -> ?jitter:bool -> max_cycles:int -> unit -> t

(** Cap expressed in microseconds of the given machine configuration. *)
val of_us : Config.t -> ?base:int -> ?jitter:bool -> max_us:float -> unit -> t

(** First delay, in cycles. *)
val initial : t -> int

(** Next delay after a failure. *)
val next : t -> int -> int

(** Spend one backoff period of [delay] cycles (jittered) on [ctx]. *)
val delay_on : Ctx.t -> t -> int -> unit

val max_cycles : t -> int
