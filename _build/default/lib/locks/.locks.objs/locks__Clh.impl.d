lib/locks/clh.ml: Array Cell Ctx Hector Machine Printf
