lib/locks/spin_lock.mli: Backoff Ctx Hector Machine
