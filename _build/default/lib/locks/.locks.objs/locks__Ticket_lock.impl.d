lib/locks/ticket_lock.ml: Cell Config Ctx Hector Machine
