lib/locks/clh.mli: Ctx Hector Machine
