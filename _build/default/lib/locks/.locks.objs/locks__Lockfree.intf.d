lib/locks/lockfree.mli: Cell Ctx Hector Machine
