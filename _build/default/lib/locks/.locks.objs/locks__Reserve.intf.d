lib/locks/reserve.mli: Backoff Cell Ctx Hector
