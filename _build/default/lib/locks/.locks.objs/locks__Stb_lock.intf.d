lib/locks/stb_lock.mli: Cell Ctx Hector Machine
