lib/locks/reserve.ml: Backoff Cell Ctx Hector
