lib/locks/lockfree.ml: Cell Ctx Hector List Machine
