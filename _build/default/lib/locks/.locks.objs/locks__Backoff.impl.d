lib/locks/backoff.ml: Config Ctx Eventsim Hector
