lib/locks/instr_model.ml: Config Hector List
