lib/locks/stb_lock.ml: Cell Config Ctx Engine Eventsim Hector Machine Process Queue
