lib/locks/mcs.ml: Array Cell Ctx Hector Machine Printf
