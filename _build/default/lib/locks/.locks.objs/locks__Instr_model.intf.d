lib/locks/instr_model.mli: Config Hector
