lib/locks/lock.ml: Anderson_lock Backoff Clh Config Ctx Fun Hector Machine Mcs Printf Spin_lock Stb_lock Ticket_lock
