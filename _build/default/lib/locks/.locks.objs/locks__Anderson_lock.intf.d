lib/locks/anderson_lock.mli: Ctx Hector Machine
