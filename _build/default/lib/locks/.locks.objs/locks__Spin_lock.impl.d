lib/locks/spin_lock.ml: Backoff Cell Ctx Hector Machine
