lib/locks/anderson_lock.ml: Array Cell Config Ctx Hector Machine Printf
