lib/locks/mcs.mli: Ctx Hector Machine
