lib/locks/lock.mli: Ctx Hector Machine Mcs Spin_lock
