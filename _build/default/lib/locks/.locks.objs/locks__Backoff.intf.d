lib/locks/backoff.mli: Config Ctx Hector
