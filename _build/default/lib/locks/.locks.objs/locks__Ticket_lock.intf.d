lib/locks/ticket_lock.mli: Ctx Hector Machine
