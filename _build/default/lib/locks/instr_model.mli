(** Static instruction model regenerating Figure 4: instruction counts of an
    uncontended lock/unlock pair per algorithm, derived from the Figure-3
    code paths the implementations follow. *)

open Hector

type instr = Atomic | Mem | Reg | Br

type counts = { atomic : int; mem : int; reg : int; br : int }

type algo = Mcs_original | Mcs_h1 | Mcs_h2 | Spin

val algo_name : algo -> string

(** The four rows of Figure 4, in paper order. *)
val all : algo list

val acquire_path : algo -> instr list
val release_path : algo -> instr list
val pair_path : algo -> instr list

val count_instrs : instr list -> counts

(** Counts for a full lock/unlock pair. *)
val counts : algo -> counts

(** The table as published, for cross-checking. *)
val paper_counts : algo -> counts

(** Predicted uncontended pair latency (lock word and node local), with the
    post-swap overlap discount. *)
val predicted_cycles : Config.t -> algo -> int

val predicted_us : Config.t -> algo -> float
