(** Lock-free single-word operations (Section 5.3): CAS retry loops for the
    "leaf" data TORNADO plans to strip of locks. Requires a CAS-capable
    machine configuration. *)

open Hector

(** A shared counter updated by atomic fetch-and-add (CAS retry). *)
type counter

val make_counter : Machine.t -> home:int -> int -> counter

val counter_value : counter -> int
val counter_cell : counter -> Cell.t
val counter_cas_failures : counter -> int

(** Returns the previous value. *)
val counter_add : counter -> Ctx.t -> int -> int

val counter_incr : counter -> Ctx.t -> int

(** Atomic bit updates on any status word; both return the previous
    value. *)

val set_bits : Cell.t -> Ctx.t -> int -> int
val clear_bits : Cell.t -> Ctx.t -> int -> int

(** Treiber stack whose head word is the only simulated memory (the
    single-word-update restriction of Section 5.3); nodes are model-level. *)
type 'a stack

val make_stack : Machine.t -> home:int -> 'a stack

val push : 'a stack -> Ctx.t -> 'a -> unit
val pop : 'a stack -> Ctx.t -> 'a option

(** Walk the chain (one timed read for the head; the chain itself is
    model-level). *)
val stack_size : 'a stack -> Ctx.t -> int
