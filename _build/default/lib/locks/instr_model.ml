(* Static instruction model of the uncontended lock/unlock path.

   This regenerates Figure 4 of the paper: the instruction counts of a
   lock/unlock pair in the absence of contention, per algorithm, obtained by
   inspecting the code. Our sequences mirror the Figure 3 pseudo-code and
   the charging sites in {!Spin_lock} and {!Mcs}, so the table is derived,
   not transcribed. *)

open Hector

type instr =
  | Atomic (* read-modify-write: swap on HECTOR *)
  | Mem (* load or store to memory *)
  | Reg (* single-cycle register-to-register *)
  | Br (* branch, including return *)

type counts = { atomic : int; mem : int; reg : int; br : int }

type algo = Mcs_original | Mcs_h1 | Mcs_h2 | Spin

let algo_name = function
  | Mcs_original -> "MCS"
  | Mcs_h1 -> "H1-MCS"
  | Mcs_h2 -> "H2-MCS"
  | Spin -> "Spin"

let all = [ Mcs_original; Mcs_h1; Mcs_h2; Spin ]

(* The uncontended acquire path, as executed. *)
let acquire_path = function
  | Mcs_original ->
    [
      Mem (* I->next := nil *);
      Atomic (* pred := fetch_and_store(L, I) *);
      Reg; Reg (* argument setup *);
      Br (* pred != nil? *);
      Br (* return *);
    ]
  | Mcs_h1 | Mcs_h2 ->
    [
      Atomic (* pred := fetch_and_store(L, I); node pre-initialised *);
      Reg; Reg;
      Br (* pred != nil? *);
      Br (* return *);
    ]
  | Spin ->
    [
      Atomic (* test_and_set(L) *);
      Reg (* load delay constant *);
      Br (* = locked? *);
      Br (* return *);
    ]

(* The uncontended release path. *)
let release_path = function
  | Mcs_original | Mcs_h1 ->
    [
      Mem (* I->next = nil? — load *);
      Br (* test *);
      Atomic (* old := fetch_and_store(L, nil) *);
      Reg;
      Br (* old = I? *);
      Br (* return *);
    ]
  | Mcs_h2 ->
    [
      Atomic (* old := fetch_and_store(L, nil) — no successor check *);
      Reg;
      Br (* old = I? *);
      Br (* return *);
    ]
  | Spin ->
    [ Atomic (* swap(L, 0) *); Br (* return *) ]

let pair_path a = acquire_path a @ release_path a

let count_instrs instrs =
  List.fold_left
    (fun c i ->
      match i with
      | Atomic -> { c with atomic = c.atomic + 1 }
      | Mem -> { c with mem = c.mem + 1 }
      | Reg -> { c with reg = c.reg + 1 }
      | Br -> { c with br = c.br + 1 })
    { atomic = 0; mem = 0; reg = 0; br = 0 }
    instrs

let counts a = count_instrs (pair_path a)

(* Figure 4 as published, for the cross-check in the test suite. *)
let paper_counts = function
  | Mcs_original -> { atomic = 2; mem = 2; reg = 3; br = 5 }
  | Mcs_h1 -> { atomic = 2; mem = 1; reg = 3; br = 5 }
  | Mcs_h2 -> { atomic = 2; mem = 0; reg = 3; br = 4 }
  | Spin -> { atomic = 2; mem = 0; reg = 1; br = 3 }

(* Predicted uncontended latency of a lock/unlock pair on a machine where
   both the lock word and the queue node are local, accounting for the
   overlap of post-swap instructions with the swap's store phase. *)
let predicted_cycles cfg a =
  let instr_cost = function
    | Atomic -> cfg.Config.local_latency * cfg.Config.atomic_mem_accesses
    | Mem -> cfg.Config.local_latency
    | Reg -> cfg.Config.reg_cost
    | Br -> cfg.Config.branch_cost
  in
  let step (total, credit) i =
    match i with
    | Atomic -> (total + instr_cost i, cfg.Config.atomic_overlap)
    | Mem -> (total + instr_cost i, 0)
    | Reg | Br ->
      let c = instr_cost i in
      let hidden = min credit c in
      (total + c - hidden, credit - hidden)
  in
  let total, _ = List.fold_left step (0, 0) (pair_path a) in
  total

let predicted_us cfg a = Config.us_of_cycles cfg (predicted_cycles cfg a)
