(* Exponential backoff policy.

   Used by the test&set spin lock and by reserve-bit waiters. The delay
   doubles on each failed attempt up to a cap; a small deterministic jitter
   (from the caller's per-processor RNG stream) de-synchronises processors
   that fail at the same instant, as real systems do. *)

open Hector

type t = {
  base : int; (* cycles *)
  max : int; (* cycles *)
  jitter : bool;
}

let create ?(base = 8) ?(jitter = true) ~max_cycles () =
  if base <= 0 then invalid_arg "Backoff.create: base must be positive";
  if max_cycles < base then invalid_arg "Backoff.create: max < base";
  { base; max = max_cycles; jitter }

let of_us cfg ?base ?jitter ~max_us () =
  create ?base ?jitter ~max_cycles:(Config.cycles_of_us cfg max_us) ()

let initial t = t.base

let next t delay = min (delay * 2) t.max

(* Wait out one backoff period on the given context. The processor is
   waiting, not computing, so interrupts keep being served. *)
let delay_on ctx t delay =
  let d =
    if t.jitter && delay > 1 then
      let r = Ctx.rng ctx in
      (delay / 2) + Eventsim.Rng.int r (max 1 (delay / 2))
    else delay
  in
  Ctx.interruptible_pause ctx d

let max_cycles t = t.max
