lib/hector/cell.mli: Format
