lib/hector/config.ml: Format
