lib/hector/cell.ml: Format
