lib/hector/machine.mli: Cell Config Engine Eventsim Resource
