lib/hector/ctx.mli: Cell Config Engine Eventsim Ivar Machine Rng
