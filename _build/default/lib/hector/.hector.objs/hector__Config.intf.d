lib/hector/config.mli: Format
