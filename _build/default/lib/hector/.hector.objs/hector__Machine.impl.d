lib/hector/machine.ml: Array Cell Config Engine Eventsim Printf Process Resource
