lib/hector/ctx.ml: Config Eventsim Fun Ivar Machine Printf Process Queue Rng
