(** A word of simulated shared memory, with a home PMM.

    Simulated code must access cells through {!Machine} or {!Ctx} so that
    latency and contention are charged; [peek]/[poke] are untimed and exist
    for initialisation and test assertions only. *)

type t

val make : ?label:string -> home:int -> int -> t

val home : t -> int
val id : t -> int
val label : t -> string

(** Untimed read — initialisation and tests only. *)
val peek : t -> int

(** Untimed write — initialisation and tests only. *)
val poke : t -> int -> unit

val pp : Format.formatter -> t -> unit

(** Cache-state helpers for machines with hardware coherence (untimed —
    {!Machine} charges the costs). *)

val cached_by : t -> int -> bool
val exclusive_of : t -> int
val cache_fill : t -> int -> unit
val cache_take_exclusive : t -> int -> unit
val cache_drop_exclusive : t -> unit
val cache_flush : t -> unit
