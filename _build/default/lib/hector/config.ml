(* Machine configuration.

   The defaults describe the HECTOR prototype used in the paper: 16 MHz
   MC88100 processors, 4 processor-memory modules (PMMs) per station bus,
   4 stations connected by a ring. Memory access costs 10 cycles on-board,
   19 on-station and 23 across the ring; the only atomic primitive is swap,
   which makes two memory accesses. *)

type t = {
  stations : int;
  procs_per_station : int;
  mhz : int;
  local_latency : int; (* cycles, processor to its own PMM *)
  station_latency : int; (* cycles, to another PMM on the same station *)
  ring_latency : int; (* cycles, to a PMM on another station *)
  mem_service : int; (* cycles a memory module is occupied per access *)
  bus_service : int; (* cycles a station bus is occupied per transfer *)
  ring_service : int; (* cycles the ring is occupied per transfer *)
  atomic_mem_accesses : int; (* swap = 2 memory accesses on HECTOR *)
  atomic_module_overhead : int;
      (* extra cycles the module stays locked across an RMW (read-modify-
         write turnaround), beyond its per-access service *)
  has_cas : bool; (* compare-and-swap available (false on HECTOR) *)
  reg_cost : int; (* cycles per register-to-register instruction *)
  branch_cost : int; (* cycles per branch instruction *)
  atomic_overlap : int;
      (* cycles of post-fetch&store instructions that overlap with the store
         phase of the swap (the MC88100 proceeds once the fetch completes) *)
  irq_entry : int; (* cycles to enter an interrupt handler *)
  irq_exit : int; (* cycles to return from an interrupt handler *)
  cache_coherent : bool; (* hardware cache coherence (Section 5.2) *)
  cache_hit : int; (* cycles for a cache hit / cached atomic *)
}

let hector =
  {
    stations = 4;
    procs_per_station = 4;
    mhz = 16;
    local_latency = 10;
    station_latency = 19;
    ring_latency = 23;
    mem_service = 9;
    bus_service = 5;
    ring_service = 7;
    atomic_mem_accesses = 2;
    atomic_module_overhead = 22;
    has_cas = false;
    reg_cost = 1;
    branch_cost = 2;
    atomic_overlap = 5;
    irq_entry = 60;
    irq_exit = 30;
    cache_coherent = false;
    cache_hit = 2;
  }

(* A hypothetical "modern" variant used by the Section 5.2 discussion:
   compare-and-swap available, single-access atomics. *)
let with_cas cfg = { cfg with has_cas = true; atomic_mem_accesses = 1 }

(* The Section 5.3 target: NUMAchine, an order of magnitude faster
   processors, hardware cache coherence and cache-based LL/SC (modelled as
   CAS). Memory is relatively much further away: a miss costs what 10-20
   cached lock operations do. *)
let numachine =
  {
    stations = 4;
    procs_per_station = 4;
    mhz = 150;
    local_latency = 40;
    station_latency = 60;
    ring_latency = 80;
    mem_service = 20;
    bus_service = 8;
    ring_service = 10;
    atomic_mem_accesses = 1;
    atomic_module_overhead = 10;
    has_cas = true;
    reg_cost = 1;
    branch_cost = 1;
    atomic_overlap = 0;
    irq_entry = 100;
    irq_exit = 60;
    cache_coherent = true;
    cache_hit = 2;
  }

let n_procs cfg = cfg.stations * cfg.procs_per_station

let validate cfg =
  if cfg.stations <= 0 then invalid_arg "Config: stations must be positive";
  if cfg.procs_per_station <= 0 then
    invalid_arg "Config: procs_per_station must be positive";
  if cfg.mhz <= 0 then invalid_arg "Config: mhz must be positive";
  if cfg.local_latency <= 0 || cfg.station_latency < cfg.local_latency
     || cfg.ring_latency < cfg.station_latency
  then invalid_arg "Config: latencies must be positive and non-decreasing";
  if cfg.atomic_mem_accesses <= 0 then
    invalid_arg "Config: atomic_mem_accesses must be positive";
  cfg

(* Each PMM pairs one processor with one memory module, so the PMM id of a
   processor is the processor id itself. *)
let station_of_proc cfg p = p / cfg.procs_per_station
let station_of_pmm cfg m = m / cfg.procs_per_station
let index_in_station cfg p = p mod cfg.procs_per_station

let us_of_cycles cfg c = float_of_int c /. float_of_int cfg.mhz
let cycles_of_us cfg us = int_of_float (us *. float_of_int cfg.mhz)

let pp ppf cfg =
  Format.fprintf ppf
    "%d stations x %d procs at %d MHz (lat %d/%d/%d, svc mem=%d bus=%d \
     ring=%d)"
    cfg.stations cfg.procs_per_station cfg.mhz cfg.local_latency
    cfg.station_latency cfg.ring_latency cfg.mem_service cfg.bus_service
    cfg.ring_service
