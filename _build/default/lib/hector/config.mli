(** Machine configuration for the simulated NUMA multiprocessor.

    The [hector] preset matches the prototype in the paper: 4 stations of 4
    processor-memory modules (PMMs) on a ring, 16 MHz processors, memory
    latencies of 10/19/23 cycles (local / on-station / cross-ring), and swap
    as the only atomic primitive (costing two memory accesses). *)

type t = {
  stations : int;
  procs_per_station : int;
  mhz : int;
  local_latency : int;
  station_latency : int;
  ring_latency : int;
  mem_service : int;
  bus_service : int;
  ring_service : int;
  atomic_mem_accesses : int;
  atomic_module_overhead : int;
  has_cas : bool;
  reg_cost : int;
  branch_cost : int;
  atomic_overlap : int;
  irq_entry : int;
  irq_exit : int;
  cache_coherent : bool;
  cache_hit : int;
}

(** The paper's 16-processor HECTOR prototype. *)
val hector : t

(** Same machine with compare-and-swap and single-access atomics, for the
    Section 5.2 "advanced atomic primitives" discussion. *)
val with_cas : t -> t

(** The Section 5.3 target machine (TORNADO's NUMAchine): much faster
    processors, hardware cache coherence, cache-based CAS, and relatively
    distant memory. *)
val numachine : t

val n_procs : t -> int

(** Check invariants; returns the config or raises [Invalid_argument]. *)
val validate : t -> t

val station_of_proc : t -> int -> int
val station_of_pmm : t -> int -> int
val index_in_station : t -> int -> int

(** Convert simulated cycles to microseconds at the configured clock rate. *)
val us_of_cycles : t -> int -> float

val cycles_of_us : t -> float -> int

val pp : Format.formatter -> t -> unit
