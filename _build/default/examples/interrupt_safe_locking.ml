(* Interrupt-safe locking: why Hurricane soft-masks instead of TryLock.

   An exception-based kernel serves cross-cluster RPCs in interrupt
   handlers. A handler that waits for a lock can deadlock with the very
   processor it interrupted; a handler that merely *tries* the lock starves
   when the lock is saturated, because a distributed lock hands off directly
   from holder to queued waiter and is never observed free (Section 3.2).

   This example demonstrates all three designs on one saturated H2-MCS
   lock:
   - TryLock variant 1 (in-use flag): only refuses when it interrupted the
     holder on its own processor; otherwise queues and waits;
   - TryLock variant 2 (true TryLock, abandoned queue nodes): starves;
   - the adopted design: a per-processor soft interrupt mask plus a
     deferred-work queue — interrupts always complete, in bounded time.

   Run with: dune exec examples/interrupt_safe_locking.exe *)

open Eventsim
open Hector
open Locks

let () =
  let cfg = Config.hector in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let mcs = Mcs.create ~variant:Mcs.H2 ~home:0 ~track_in_use:true machine in
  let rng = Rng.create 5 in
  let t_end = Config.cycles_of_us cfg 8000.0 in
  (* Processors 0-3 keep the lock saturated. *)
  let holders =
    Array.init 4 (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  Array.iter
    (fun ctx ->
      Process.spawn eng (fun () ->
          let rec loop () =
            if Machine.now machine < t_end then begin
              Ctx.set_soft_mask ctx;
              Mcs.acquire mcs ctx;
              Ctx.work ctx 160 (* 10 us critical section *);
              Mcs.release mcs ctx;
              Ctx.clear_soft_mask ctx;
              loop ()
            end
          in
          loop ()))
    holders;
  (* Processor 5 plays the interrupt handler arriving every 50 us. *)
  let handler_ctx = Ctx.create machine ~proc:5 (Rng.split rng) in
  let v1_ok = ref 0 and v2_ok = ref 0 and deferred_done = ref 0 in
  let attempts = ref 0 in
  Process.spawn eng (fun () ->
      let rec loop i =
        if Machine.now machine < t_end then begin
          incr attempts;
          (* Variant 1: uses the handler processor's own node; it did not
             interrupt a holder here, so it will queue — and wait. *)
          if Mcs.try_acquire_v1 mcs handler_ctx then begin
            incr v1_ok;
            Mcs.release mcs handler_ctx
          end;
          (* Variant 2: a true TryLock; under saturation it never sees the
             lock free. *)
          if Mcs.try_acquire_v2 mcs handler_ctx then begin
            incr v2_ok;
            Mcs.release mcs handler_ctx
          end;
          (* The adopted scheme: deliver the work as an IPI to a holder;
             its soft mask defers it to just after a release. *)
          Ctx.post_ipi holders.(i mod 4) (fun hctx ->
              Mcs.acquire mcs hctx;
              Ctx.work hctx 160;
              Mcs.release mcs hctx;
              incr deferred_done);
          Ctx.work handler_ctx (Config.cycles_of_us cfg 50.0);
          loop (i + 1)
        end
      in
      loop 0);
  Engine.run eng;
  Format.printf "saturated H2-MCS lock, %d interrupt arrivals:@." !attempts;
  Format.printf
    "  trylock v1 (in-use flag) : %3d acquired — but each success paid a \
     full queue wait@."
    !v1_ok;
  Format.printf
    "  trylock v2 (true try)    : %3d acquired — starved, as Section 3.2 \
     observed@."
    !v2_ok;
  Format.printf
    "  soft-mask deferred work  : %3d completed — every request ran, \
     fairly, after a release@."
    !deferred_done;
  Format.printf "  (lock acquisitions overall: %d; abandoned nodes collected: %d)@."
    (Mcs.acquisitions mcs) (Mcs.gc_count mcs)
