(* Quickstart: build a simulated HECTOR machine, run lock algorithms on it,
   and read the results.

   This walks the public API bottom-up:
   1. an event engine and a machine (the NUMA substrate);
   2. simulated processes on simulated processors;
   3. locks from the paper, uncontended and contended;
   4. the pre-packaged experiment runners.

   Run with: dune exec examples/quickstart.exe *)

open Eventsim
open Hector
open Locks

let () =
  (* 1. The machine: 4 stations x 4 processor-memory modules on a ring,
        16 MHz, memory at 10/19/23 cycles depending on distance. *)
  let cfg = Config.hector in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  Format.printf "machine: %a@.@." Config.pp cfg;

  (* 2. A cell in processor 3's local memory, and two simulated processes
        reading it from different distances. *)
  let cell = Machine.alloc machine ~home:3 42 in
  let show_read proc =
    Process.spawn eng (fun () ->
        let t0 = Machine.now machine in
        let v = Machine.read machine ~proc cell in
        Format.printf "proc %2d read %d in %d cycles@." proc v
          (Machine.now machine - t0))
  in
  show_read 3 (* local: 10 cycles *);
  show_read 0 (* same station: 19 cycles *);
  show_read 12 (* across the ring: 23 cycles *);
  Engine.run eng;

  (* 3. An H2-MCS distributed lock under contention: four processors take
        turns; the lock hands off FIFO and everyone spins only on local
        memory. *)
  Format.printf "@.4 processors, 40 acquisitions each, H2-MCS:@.";
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let lock = Lock.make machine ~home:0 Lock.Mcs_h2 in
  let rng = Rng.create 1 in
  let total_wait = ref 0 in
  for proc = 0 to 3 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 40 do
          let t0 = Machine.now machine in
          Lock.with_lock lock ctx (fun () -> Ctx.work ctx 100);
          total_wait := !total_wait + (Machine.now machine - t0 - 100)
        done)
  done;
  Engine.run eng;
  Format.printf "mean lock+unlock overhead: %.2f us@."
    (Config.us_of_cycles cfg (!total_wait / 160));

  (* 4. The packaged experiments: the Section 4.1.1 uncontended table. *)
  Format.printf "@.uncontended lock/unlock latencies (paper: 5.40 / 3.69 / 3.65 us):@.";
  List.iter
    (fun (r : Workloads.Uncontended.result) ->
      Format.printf "  %-10s %.2f us@."
        (Lock.algo_name r.Workloads.Uncontended.algo)
        r.Workloads.Uncontended.pair_us)
    (Workloads.Uncontended.run_all ())
