(* Page-fault storm: an SPMD application phase on the simulated kernel.

   Sixteen worker processes all write the same few shared pages in rounds —
   the worst-case access pattern of the paper's introduction (concurrent,
   write-shared kernel resources). The example shows how the response time
   decomposes into lock waiting, reserve-bit conflicts and cross-cluster
   ownership traffic, and how the coarse-lock algorithm changes the
   picture.

   Run with: dune exec examples/page_fault_storm.exe *)

open Locks
open Workloads

let describe lock_algo =
  let config =
    {
      Shared_faults.default_config with
      p = 16;
      cluster_size = 4;
      rounds = 15;
      lock_algo;
    }
  in
  let r = Shared_faults.run ~config () in
  let s = r.Shared_faults.summary in
  Format.printf "@.coarse locks = %s@." (Lock.algo_name lock_algo);
  Format.printf "  write-fault response: mean %.0f us, p99 %.0f us (n=%d)@."
    s.Measure.mean_us s.Measure.p99_us s.Measure.n;
  Format.printf
    "  cross-cluster traffic: %d RPCs, %d descriptor replications, %d \
     invalidations@."
    r.Shared_faults.rpcs r.Shared_faults.replications
    r.Shared_faults.invalidations;
  Format.printf
    "  conflicts: %d optimistic-protocol retries, %d reserve-bit waits@."
    r.Shared_faults.retries r.Shared_faults.reserve_conflicts

let () =
  Format.printf
    "SPMD storm: 16 processes write %d shared pages per round, barrier, \
     unmap, repeat (4 clusters of 4).@."
    Shared_faults.default_config.Shared_faults.n_pages;
  List.iter describe
    [ Lock.Mcs_h2; Lock.Mcs_h1; Lock.Spin { max_backoff_us = 35.0 } ];
  Format.printf
    "@.Reading the numbers: ownership of each page ping-pongs between the 4 \
     clusters@.(master directory updates + invalidation RPCs), while inside \
     a cluster the@.processes serialise briefly on the page descriptor's \
     reserve bit. Distributed@.locks keep the coarse-lock cost flat; spin \
     locks add interconnect traffic on top.@."
