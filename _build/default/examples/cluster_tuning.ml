(* Cluster-size tuning: the paper's central systems question.

   Hierarchical clustering instantiates kernel structures per cluster.
   Small clusters bound lock contention (good for independent work) but
   force remote operations through RPC (bad for sharing). This example
   sweeps the cluster size for both workload extremes and prints the
   trade-off the paper summarises as "a cluster size somewhere in the range
   of 4 to 16 processors would be optimal for our system".

   Run with: dune exec examples/cluster_tuning.exe *)

open Workloads

let sizes = [ 1; 2; 4; 8; 16 ]

let independent size =
  (Independent_faults.run
     ~config:
       { Independent_faults.default_config with p = 16; cluster_size = size }
     ())
    .Independent_faults.summary
    .Measure.mean_us

let shared size =
  let r =
    Shared_faults.run
      ~config:
        {
          Shared_faults.default_config with
          p = 16;
          cluster_size = size;
          rounds = 15;
        }
      ()
  in
  (r.Shared_faults.summary.Measure.mean_us, r.Shared_faults.rpcs)

let () =
  Format.printf
    "Soft page-fault response time at p = 16, H2-MCS coarse locks:@.@.";
  Format.printf "%-14s %18s %25s@." "cluster size" "independent (us)"
    "shared (us / RPCs)";
  let score =
    List.map
      (fun size ->
        let ind = independent size in
        let sh, rpcs = shared size in
        Format.printf "%-14d %18.1f %18.1f / %-6d@." size ind sh rpcs;
        (size, ind +. sh))
      sizes
  in
  let best =
    List.fold_left (fun acc x -> if snd x < snd acc then x else acc)
      (List.hd score) score
  in
  Format.printf
    "@.Independent faults want small clusters (contention is bounded by the \
     cluster);@.shared faults want large ones (sharing stays inside a \
     cluster). For an even mix@.of both, the sweet spot here is a cluster \
     size of %d — the paper concluded@.\"somewhere in the range of 4 to 16\" \
     for the same reason.@."
    (fst best)
