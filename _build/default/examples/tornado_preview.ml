(* TORNADO preview: the paper's Section 5.3 redesign, measured.

   Hurricane's successor targets NUMAchine: an order of magnitude faster
   processors, hardware cache coherence, cache-based LL/SC. This example
   walks the Section 5.3 design bullets and shows each one paying off on
   the simulated modern machine:

   1. cache-friendly locks: a lock pair runs in the cache, so reducing
      lock *sharing* matters more than reducing lock *count*;
   2. lock-free leaf data: a CAS loop beats lock/update/unlock for
      single-word updates;
   3. spin-then-block: queue-lock fairness without waiting traffic;
   4. clustering still pays: bounding contention matters even with caches.

   Run with: dune exec examples/tornado_preview.exe *)

open Hector
open Locks
open Workloads

let () =
  Format.printf "TORNADO preview on NUMAchine (%a)@.@." Config.pp
    Config.numachine;

  (* 1. Lock pairs in the cache. *)
  let pair cfg =
    (Uncontended.run ~cfg Lock.Mcs_h2).Uncontended.pair_us
  in
  let hector_us = pair Config.hector and numa_us = pair Config.numachine in
  Format.printf
    "1. uncontended H2-MCS pair: HECTOR %.2f us -> NUMAchine %.3f us (%.0fx)@."
    hector_us numa_us (hector_us /. numa_us);
  Format.printf
    "   a miss costs ~%d cycles; \"10 to 20 lock operations per cache \
     miss\" (Sec 5.3)@.@."
    Config.numachine.Config.ring_latency;

  (* 2. Lock-free leaf updates. *)
  Format.printf "2. shared counter, 8 processors:@.";
  List.iter
    (fun (r : Counter_stress.result) ->
      Format.printf "   %-22s %.2f us/op (exact: %b)@."
        (Counter_stress.mode_name r.Counter_stress.mode)
        r.Counter_stress.per_op_us
        (r.Counter_stress.final_value = r.Counter_stress.expected_value))
    (Counter_stress.run_all ());
  Format.printf "@.";

  (* 3. Spin-then-block fairness without spinning. *)
  Format.printf "3. 12 processors, 50 us critical sections:@.";
  List.iter
    (fun (algo, (r : Lock_stress.result)) ->
      Format.printf "   %-14s mean %7.1f us, >2ms %4.1f%%@."
        (Lock.algo_name algo)
        r.Lock_stress.summary.Measure.mean_us
        (100.0 *. r.Lock_stress.summary.Measure.frac_above_2ms))
    (Hurricane.Experiments.ablation_spin_then_block ());
  Format.printf "@.";

  (* 4. Clustering still pays with caches: the shared-fault sweep on the
     coherent machine keeps the same shape. *)
  Format.printf
    "4. shared faults at p=16 on NUMAchine, cluster sweep (mean us):@.   ";
  List.iter
    (fun cluster_size ->
      let r =
        Shared_faults.run ~cfg:Config.numachine
          ~config:
            {
              Shared_faults.default_config with
              p = 16;
              rounds = 10;
              cluster_size;
            }
          ()
      in
      Format.printf "c=%d: %.0f   " cluster_size
        r.Shared_faults.summary.Measure.mean_us)
    [ 1; 4; 16 ];
  Format.printf
    "@.   bounding contention \"should prove to be even more beneficial in \
     our new, larger and faster system\" (Sec 5.3)@."
