examples/cluster_tuning.ml: Format Independent_faults List Measure Shared_faults Workloads
