examples/tornado_preview.ml: Config Counter_stress Format Hector Hurricane List Lock Lock_stress Locks Measure Shared_faults Uncontended Workloads
