examples/tornado_preview.mli:
