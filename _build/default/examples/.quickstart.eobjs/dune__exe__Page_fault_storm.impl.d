examples/page_fault_storm.ml: Format List Lock Locks Measure Shared_faults Workloads
