examples/quickstart.mli:
