examples/interrupt_safe_locking.ml: Array Config Ctx Engine Eventsim Format Hector Locks Machine Mcs Process Rng
