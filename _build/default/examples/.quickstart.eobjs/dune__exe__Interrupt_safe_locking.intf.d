examples/interrupt_safe_locking.mli:
