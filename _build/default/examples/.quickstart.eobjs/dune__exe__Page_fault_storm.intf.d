examples/page_fault_storm.mli:
