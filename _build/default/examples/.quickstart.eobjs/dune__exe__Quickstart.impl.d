examples/quickstart.ml: Config Ctx Engine Eventsim Format Hector List Lock Locks Machine Process Rng Workloads
