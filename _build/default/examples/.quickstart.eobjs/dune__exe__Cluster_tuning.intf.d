examples/cluster_tuning.mli:
