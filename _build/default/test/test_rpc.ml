(* Tests for the inter-cluster RPC layer. *)

open Eventsim
open Hector
open Hkernel

let make () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let rng = Rng.create 55 in
  let ctxs =
    Array.init 16 (fun p -> Ctx.create machine ~proc:p (Rng.split rng))
  in
  let rpc = Rpc.create machine ctxs Costs.default in
  (eng, machine, ctxs, rpc)

let test_remote_call () =
  let eng, machine, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(8));
  let got = ref None in
  let service_proc = ref (-1) in
  Process.spawn eng (fun () ->
      let r =
        Rpc.call rpc ctxs.(0) ~target:8 (fun tctx ->
            service_proc := Ctx.proc tctx;
            Rpc.Ok 99)
      in
      got := Some r);
  Engine.run eng;
  Alcotest.(check bool) "reply" true (!got = Some (Rpc.Ok 99));
  Alcotest.(check int) "ran on the target" 8 !service_proc;
  Alcotest.(check int) "counted" 1 (Rpc.calls rpc);
  ignore machine

let test_remote_call_has_latency () =
  let eng, machine, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(12));
  let dt = ref 0 in
  Process.spawn eng (fun () ->
      let t0 = Machine.now machine in
      ignore (Rpc.call rpc ctxs.(0) ~target:12 (fun _ -> Rpc.Ok 0));
      dt := Machine.now machine - t0);
  Engine.run eng;
  (* A null RPC costs on the order of the paper's 27 us = 432 cycles. *)
  Alcotest.(check bool) "at least 200 cycles" true (!dt > 200);
  Alcotest.(check bool) "below 1000 cycles" true (!dt < 1000)

let test_local_call_is_direct () =
  let eng, _, ctxs, rpc = make () in
  let ran_on = ref (-1) in
  Process.spawn eng (fun () ->
      ignore
        (Rpc.call rpc ctxs.(3) ~target:3 (fun tctx ->
             ran_on := Ctx.proc tctx;
             Rpc.Ok 1)));
  Engine.run eng;
  Alcotest.(check int) "same processor" 3 !ran_on

let test_deadlock_failures_counted () =
  let eng, _, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(4));
  Process.spawn eng (fun () ->
      ignore (Rpc.call rpc ctxs.(0) ~target:4 (fun _ -> Rpc.Would_deadlock)));
  Engine.run eng;
  Alcotest.(check int) "counted" 1 (Rpc.deadlock_failures rpc)

let test_call_until_resolved_retries () =
  let eng, _, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(4));
  let failures_left = ref 3 in
  let released = ref 0 in
  let got = ref None in
  Process.spawn eng (fun () ->
      let r =
        Rpc.call_until_resolved rpc ctxs.(0) ~target:4
          ~before_retry:(fun () -> incr released)
          (fun _ ->
            if !failures_left > 0 then begin
              decr failures_left;
              Rpc.Would_deadlock
            end
            else Rpc.Ok 5)
      in
      got := Some r);
  Engine.run eng;
  Alcotest.(check bool) "eventually ok" true (!got = Some (Rpc.Ok 5));
  Alcotest.(check int) "reserves released per retry" 3 !released;
  Alcotest.(check int) "retries counted" 3 (Rpc.retries rpc)

let test_concurrent_calls_to_one_target () =
  let eng, _, ctxs, rpc = make () in
  Process.spawn eng (fun () -> Ctx.idle_loop ctxs.(9));
  let replies = ref 0 in
  for p = 0 to 3 do
    Process.spawn eng (fun () ->
        match Rpc.call rpc ctxs.(p) ~target:9 (fun tctx ->
            Ctx.work tctx 50;
            Rpc.Ok p)
        with
        | Rpc.Ok v when v = p -> incr replies
        | _ -> Alcotest.fail "wrong reply")
  done;
  Engine.run eng;
  Alcotest.(check int) "all served" 4 !replies

let test_caller_serves_while_waiting () =
  (* Two processors RPC each other simultaneously: both must complete,
     because a waiting caller keeps taking interrupts. *)
  let eng, _, ctxs, rpc = make () in
  let done_count = ref 0 in
  for p = 0 to 1 do
    let target = 1 - p in
    Process.spawn eng (fun () ->
        match Rpc.call rpc ctxs.(p) ~target (fun tctx ->
            Ctx.work tctx 30;
            Rpc.Ok 0)
        with
        | Rpc.Ok _ -> incr done_count
        | _ -> Alcotest.fail "failed")
  done;
  Engine.run eng;
  Alcotest.(check int) "both crossed calls completed" 2 !done_count

let suite =
  [
    Alcotest.test_case "remote call round trip" `Quick test_remote_call;
    Alcotest.test_case "remote call latency" `Quick test_remote_call_has_latency;
    Alcotest.test_case "local call runs directly" `Quick test_local_call_is_direct;
    Alcotest.test_case "deadlock failures counted" `Quick
      test_deadlock_failures_counted;
    Alcotest.test_case "call_until_resolved retries" `Quick
      test_call_until_resolved_retries;
    Alcotest.test_case "concurrent calls to one target" `Quick
      test_concurrent_calls_to_one_target;
    Alcotest.test_case "crossed RPCs both complete" `Quick
      test_caller_serves_while_waiting;
  ]
