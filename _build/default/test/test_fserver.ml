(* Tests for the clustered file server (Section 5.1). *)

open Eventsim
open Hector
open Hkernel

let make ?(read_ahead = 0) ?(cluster_size = 4) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~seed:101 in
  let server = Fserver.create ~read_ahead kernel in
  (eng, kernel, server)

let test_open_and_length () =
  let eng, kernel, server = make () in
  Fserver.create_file_untimed server ~file:8 ~blocks:10;
  Kernel.spawn_idle_except kernel ~active:[ 4 ];
  let len = ref None in
  Process.spawn eng (fun () ->
      len := Fserver.open_file server (Kernel.ctx kernel 4) ~file:8);
  Engine.run eng;
  Alcotest.(check (option int)) "length" (Some 10) !len;
  Alcotest.(check int) "open counted in cluster 1" 1
    (Fserver.open_count_untimed server ~cluster:1 ~file:8)

let test_open_missing_file () =
  let eng, kernel, server = make () in
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let len = ref (Some 0) in
  Process.spawn eng (fun () ->
      len := Fserver.open_file server (Kernel.ctx kernel 0) ~file:999);
  Engine.run eng;
  Alcotest.(check (option int)) "absent" None !len

let test_open_close_counts () =
  let eng, kernel, server = make () in
  Fserver.create_file_untimed server ~file:8 ~blocks:4;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      ignore (Fserver.open_file server ctx ~file:8);
      ignore (Fserver.open_file server ctx ~file:8);
      Fserver.close_file server ctx ~file:8);
  Engine.run eng;
  Alcotest.(check int) "two opens, one close" 1
    (Fserver.open_count_untimed server ~cluster:0 ~file:8)

let test_read_miss_then_hit () =
  let eng, kernel, server = make () in
  Fserver.create_file_untimed server ~file:8 ~blocks:4;
  Kernel.spawn_idle_except kernel ~active:[ 4 ];
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 4 in
      Alcotest.(check bool) "first read" true
        (Fserver.read_block server ctx ~file:8 ~index:0);
      Alcotest.(check bool) "second read" true
        (Fserver.read_block server ctx ~file:8 ~index:0));
  Engine.run eng;
  Alcotest.(check int) "one miss, one hit" 1 (Fserver.hits server);
  Alcotest.(check int) "one fetch RPC" 1 (Fserver.fetch_rpcs server);
  Alcotest.(check int) "one block moved" 1 (Fserver.fetches server)

let test_read_past_eof () =
  let eng, kernel, server = make () in
  Fserver.create_file_untimed server ~file:8 ~blocks:4;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      Alcotest.(check bool) "eof" false
        (Fserver.read_block server (Kernel.ctx kernel 0) ~file:8 ~index:9));
  Engine.run eng

let test_read_ahead_prefetches () =
  let eng, kernel, server = make ~read_ahead:3 () in
  Fserver.create_file_untimed server ~file:8 ~blocks:8;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      for index = 0 to 7 do
        Alcotest.(check bool) "read ok" true
          (Fserver.read_block server ctx ~file:8 ~index)
      done);
  Engine.run eng;
  (* 8 sequential reads with read-ahead 3: two fetch RPCs of 4 blocks. *)
  Alcotest.(check int) "two fetch RPCs" 2 (Fserver.fetch_rpcs server);
  Alcotest.(check int) "all blocks moved once" 8 (Fserver.fetches server);
  Alcotest.(check int) "six hits" 6 (Fserver.hits server)

let test_combining_one_fetch_per_cluster () =
  let eng, kernel, server = make () in
  Fserver.create_file_untimed server ~file:8 ~blocks:1;
  let readers = [ 4; 5; 6; 7 ] in
  Kernel.spawn_idle_except kernel ~active:readers;
  List.iter
    (fun proc ->
      Process.spawn eng (fun () ->
          let ctx = Kernel.ctx kernel proc in
          Alcotest.(check bool) "read" true
            (Fserver.read_block server ctx ~file:8 ~index:0);
          Ctx.idle_loop ctx))
    readers;
  Engine.run eng;
  Alcotest.(check int) "one fetch for the whole cluster" 1
    (Fserver.fetch_rpcs server);
  Alcotest.(check int) "three combined hits" 3 (Fserver.hits server)

let test_rewrite_invalidates () =
  let eng, kernel, server = make () in
  (* file 8 is homed at cluster 0. *)
  Fserver.create_file_untimed server ~file:8 ~blocks:2;
  Kernel.spawn_idle_except kernel ~active:[ 0; 4 ];
  let refetched = ref false in
  (* The reader (cluster 1) caches a block, waits for the rewrite, then
     rereads. *)
  Process.spawn eng (fun () ->
      let reader = Kernel.ctx kernel 4 in
      ignore (Fserver.read_block server reader ~file:8 ~index:0);
      (* Park until well after the rewrite below, serving its invalidation
         RPC in the meantime. *)
      Ctx.interruptible_pause reader 60_000;
      let before = Fserver.fetch_rpcs server in
      Alcotest.(check bool) "reread" true
        (Fserver.read_block server reader ~file:8 ~index:0);
      refetched := Fserver.fetch_rpcs server = before + 1;
      Ctx.idle_loop reader);
  (* The home cluster rewrites the file after the reader cached it. *)
  Process.spawn eng (fun () ->
      let home_ctx = Kernel.ctx kernel 0 in
      Ctx.interruptible_pause home_ctx 20_000;
      Alcotest.(check bool) "rewrite ok" true
        (Fserver.rewrite_file server home_ctx ~file:8);
      Ctx.idle_loop home_ctx);
  Engine.run eng;
  Alcotest.(check int) "version bumped" 2 (Fserver.file_version_untimed server 8);
  Alcotest.(check bool) "blocks dropped" true
    (Fserver.invalidated_blocks server >= 1);
  Alcotest.(check bool) "next read refetched" true !refetched

let test_workload_grid_sane () =
  List.iter
    (fun (r : Workloads.File_read.result) ->
      Alcotest.(check bool)
        (r.Workloads.File_read.summary.Workloads.Measure.label ^ " hit rate")
        true
        (r.Workloads.File_read.hit_rate >= 0.4
        && r.Workloads.File_read.hit_rate <= 1.0))
    (Workloads.File_read.run_grid
       ~config:
         { Workloads.File_read.default_config with passes = 2; p = 4 }
       ())

let test_read_ahead_cuts_fetch_rpcs () =
  let run read_ahead =
    Workloads.File_read.run
      ~config:
        { Workloads.File_read.default_config with read_ahead; p = 4 }
      ()
  in
  let r0 = run 0 and r3 = run 3 in
  Alcotest.(check bool) "read-ahead divides fetch RPCs" true
    (r3.Workloads.File_read.fetch_rpcs * 3
    < r0.Workloads.File_read.fetch_rpcs)

let suite =
  [
    Alcotest.test_case "open replicates and reports length" `Quick
      test_open_and_length;
    Alcotest.test_case "open missing file" `Quick test_open_missing_file;
    Alcotest.test_case "open/close counts" `Quick test_open_close_counts;
    Alcotest.test_case "read miss then hit" `Quick test_read_miss_then_hit;
    Alcotest.test_case "read past EOF" `Quick test_read_past_eof;
    Alcotest.test_case "read-ahead prefetches" `Quick test_read_ahead_prefetches;
    Alcotest.test_case "combining: one fetch per cluster" `Quick
      test_combining_one_fetch_per_cluster;
    Alcotest.test_case "rewrite invalidates caches" `Quick
      test_rewrite_invalidates;
    Alcotest.test_case "FS workload grid" `Slow test_workload_grid_sane;
    Alcotest.test_case "read-ahead cuts fetch RPCs" `Slow
      test_read_ahead_cuts_fetch_rpcs;
  ]
