(* Whole-system integration ("monkey") tests: faults, copy-on-write breaks,
   destruction, message passing and file reads all running concurrently on
   one kernel, with every global invariant checked at quiescence. Random
   schedules come from qcheck seeds. *)

open Eventsim
open Hector
open Hkernel

(* Build a kernel with a full mixed workload and run it to quiescence.
   Returns everything needed for invariant checks. *)
let run_monkey ~seed ~cluster_size =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~seed in
  let clustering = Kernel.clustering kernel in
  let n_clusters = Clustering.n_clusters clustering in
  let procs_t = Procs.create ~layout:Procs.Combined kernel in
  let server = Fserver.create ~read_ahead:1 kernel in
  (* Shared pages for write faults. *)
  let shared_pages = [ 300_000; 300_001 ] in
  List.iter
    (fun vpage -> Kernel.populate_page kernel ~vpage ~master_cluster:0 ~frame:1)
    shared_pages;
  (* A COW page shared by 4 breakers. *)
  Kernel.populate_page kernel ~vpage:310_000 ~master_cluster:0 ~frame:2;
  (match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:310_000 with
  | Some e -> Cell.poke e.Khash.payload.Page.refcount 4
  | None -> assert false);
  (* A process tree. *)
  Procs.spawn_process_untimed procs_t ~pid:1 ~parent:0;
  let victims = List.init 6 (fun i -> 30 + i) in
  List.iter (fun pid -> Procs.spawn_process_untimed procs_t ~pid ~parent:1) victims;
  let servers = List.init n_clusters (fun c ->
      let rec find p = if p mod n_clusters = c then p else find (p + 1) in
      find (60 + (10 * c)))
  in
  List.iter (fun pid -> Procs.spawn_process_untimed procs_t ~pid ~parent:1) servers;
  (* A file. *)
  Fserver.create_file_untimed server ~file:n_clusters ~blocks:8;
  let n = Machine.n_procs machine in
  let active = List.init n (fun i -> i) in
  Kernel.spawn_idle_except kernel ~active;
  let rng = Rng.create seed in
  let completed = ref 0 in
  for proc = 0 to n - 1 do
    let ctx = Kernel.ctx kernel proc in
    let my_rng = Rng.split rng in
    let my_cluster = Clustering.cluster_of_proc clustering proc in
    Process.spawn eng (fun () ->
        for round = 1 to 4 do
          Ctx.work ctx (50 + Rng.int my_rng 300);
          (match (proc + round) mod 5 with
          | 0 ->
            (* Write fault on a shared page, then unmap. *)
            let vpage = List.nth shared_pages (Rng.int my_rng 2) in
            Memmgr.fault kernel ctx ~vpage ~write:true;
            Memmgr.unmap kernel ctx ~vpage
          | 1 ->
            (* COW break, once per processor. *)
            if round = 1 && proc < 4 then
              ignore
                (Memmgr.cow_fault kernel ctx ~strategy:Procs.Optimistic
                   ~vpage:310_000
                   ~private_vpage:(320_000 + proc))
          | 2 ->
            (* Destroy a victim (racy: several processors may try). *)
            let pid = List.nth victims (Rng.int my_rng 6) in
            ignore (Procs.destroy procs_t ctx pid)
          | 3 ->
            (* Message between servers. *)
            let src = List.nth servers my_cluster in
            let dst = List.nth servers (Rng.int my_rng n_clusters) in
            ignore (Procs.send procs_t ctx ~src ~dst)
          | _ ->
            (* File read. *)
            ignore
              (Fserver.read_block server ctx ~file:n_clusters
                 ~index:(Rng.int my_rng 8)));
          ()
        done;
        incr completed;
        Ctx.idle_loop ctx)
  done;
  Engine.run eng;
  (kernel, procs_t, server, clustering, !completed)

(* Invariants at quiescence. *)
let check_invariants (kernel, procs_t, server, clustering, completed) =
  Alcotest.(check int) "every processor finished" 16 completed;
  (* Page coherence: at most one valid-write replica per page; a writer
     excludes readers. *)
  let n_clusters = Clustering.n_clusters clustering in
  List.iter
    (fun vpage ->
      let states = ref [] in
      for c = 0 to n_clusters - 1 do
        match Kernel.find_descriptor_untimed kernel ~cluster:c ~vpage with
        | None -> ()
        | Some e ->
          let st = Cell.peek e.Khash.payload.Page.vstate in
          Alcotest.(check bool) "no reserve left behind" false
            (Locks.Reserve.write_reserved e.Khash.status);
          states := st :: !states
      done;
      let writers =
        List.length (List.filter (fun s -> s = Page.st_valid_write) !states)
      in
      let readers =
        List.length (List.filter (fun s -> s = Page.st_valid_read) !states)
      in
      Alcotest.(check bool) "single writer" true (writers <= 1);
      if writers = 1 then Alcotest.(check int) "writer excludes readers" 0 readers)
    [ 300_000; 300_001 ];
  (* COW: the shared page's share count is consistent (gone, or the
     remaining shares). *)
  (match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:310_000 with
  | None -> ()
  | Some e ->
    Alcotest.(check bool) "share count non-negative" true
      (Cell.peek e.Khash.payload.Page.refcount >= 0));
  (* Process tree: no destroyed pid is still someone's child. *)
  let root_children = Procs.children_untimed procs_t 1 in
  List.iter
    (fun pid ->
      if not (Procs.alive_untimed procs_t pid) then
        Alcotest.(check bool)
          (Printf.sprintf "dead pid %d unlinked" pid)
          false
          (List.mem pid root_children))
    (List.init 6 (fun i -> 30 + i));
  (* File server: hits + misses = reads. *)
  Alcotest.(check bool) "fs accounting" true
    (Fserver.hits server <= Fserver.reads server)

let test_monkey_fixed_seeds () =
  List.iter
    (fun seed -> check_invariants (run_monkey ~seed ~cluster_size:4))
    [ 1; 2; 3; 42 ]

let test_monkey_cluster_sizes () =
  List.iter
    (fun cluster_size ->
      check_invariants (run_monkey ~seed:9 ~cluster_size))
    [ 2; 4; 8 ]

let prop_monkey =
  QCheck.Test.make ~name:"mixed-workload invariants under random seeds"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      check_invariants (run_monkey ~seed ~cluster_size:4);
      true)

(* The footnote-2 discipline: memory for kernel objects is type-stable, so
   a reserve-bit waiter that re-searches after the spin can never adopt a
   recycled object of another type. The observable contract at our level:
   a waiter whose element is removed mid-wait gets [None] (re-search) and
   never a stale element. *)
let test_reserve_waiter_survives_removal () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let table =
    Khash.create machine ~nbins:8 ~lock_algo:Locks.Lock.Mcs_h2
      ~homes:(List.init 16 (fun i -> i))
  in
  let rng = Rng.create 77 in
  let ctx p = Ctx.create machine ~proc:p (Rng.split rng) in
  let waiter_result = ref (Some ()) in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 5 ~make:(fun _ -> ()));
      match Khash.reserve_existing table c 5 with
      | None -> Alcotest.fail "setup"
      | Some e ->
        Process.pause eng 2000;
        (* Remove the element while the waiter spins on its reserve bit,
           then clear the bit (the type-stable discipline: clear before
           free). *)
        ignore (Khash.remove table c 5);
        Khash.release_reserve c e);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 500;
      waiter_result := Option.map (fun _ -> ()) (Khash.reserve_existing table c 5));
  Engine.run eng;
  Alcotest.(check bool) "waiter re-searched and saw the removal" true
    (!waiter_result = None)

let suite =
  [
    Alcotest.test_case "monkey, fixed seeds" `Slow test_monkey_fixed_seeds;
    Alcotest.test_case "monkey, cluster sizes" `Slow test_monkey_cluster_sizes;
    QCheck_alcotest.to_alcotest prop_monkey;
    Alcotest.test_case "reserve waiter survives element removal" `Quick
      test_reserve_waiter_survives_removal;
  ]
