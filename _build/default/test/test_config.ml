(* Tests for the machine configuration. *)

open Hector

let test_hector_shape () =
  let c = Config.hector in
  Alcotest.(check int) "16 processors" 16 (Config.n_procs c);
  Alcotest.(check int) "stations" 4 c.Config.stations;
  Alcotest.(check int) "local latency" 10 c.Config.local_latency;
  Alcotest.(check int) "station latency" 19 c.Config.station_latency;
  Alcotest.(check int) "ring latency" 23 c.Config.ring_latency;
  Alcotest.(check bool) "no CAS" false c.Config.has_cas;
  Alcotest.(check int) "swap = 2 accesses" 2 c.Config.atomic_mem_accesses

let test_station_mapping () =
  let c = Config.hector in
  Alcotest.(check int) "proc 0" 0 (Config.station_of_proc c 0);
  Alcotest.(check int) "proc 3" 0 (Config.station_of_proc c 3);
  Alcotest.(check int) "proc 4" 1 (Config.station_of_proc c 4);
  Alcotest.(check int) "proc 15" 3 (Config.station_of_proc c 15);
  Alcotest.(check int) "index in station" 3 (Config.index_in_station c 7)

let test_time_conversion () =
  let c = Config.hector in
  Alcotest.(check (float 0.0001)) "16 cycles = 1us" 1.0
    (Config.us_of_cycles c 16);
  Alcotest.(check int) "25us = 400 cycles" 400 (Config.cycles_of_us c 25.0);
  Alcotest.(check (float 0.0001)) "roundtrip" 25.0
    (Config.us_of_cycles c (Config.cycles_of_us c 25.0))

let test_with_cas () =
  let c = Config.with_cas Config.hector in
  Alcotest.(check bool) "has CAS" true c.Config.has_cas;
  Alcotest.(check int) "single-access atomics" 1 c.Config.atomic_mem_accesses

let test_validate_rejects_bad () =
  let bad_cases =
    [
      { Config.hector with Config.stations = 0 };
      { Config.hector with Config.procs_per_station = -1 };
      { Config.hector with Config.mhz = 0 };
      { Config.hector with Config.station_latency = 5 } (* < local *);
      { Config.hector with Config.atomic_mem_accesses = 0 };
    ]
  in
  List.iteri
    (fun i c ->
      match Config.validate c with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "bad config %d accepted" i)
    bad_cases

let test_validate_accepts_hector () =
  Alcotest.(check bool) "hector valid" true
    (Config.validate Config.hector == Config.hector)

let suite =
  [
    Alcotest.test_case "HECTOR preset shape" `Quick test_hector_shape;
    Alcotest.test_case "station mapping" `Quick test_station_mapping;
    Alcotest.test_case "cycle/us conversion" `Quick test_time_conversion;
    Alcotest.test_case "with_cas" `Quick test_with_cas;
    Alcotest.test_case "validate rejects bad configs" `Quick
      test_validate_rejects_bad;
    Alcotest.test_case "validate accepts hector" `Quick
      test_validate_accepts_hector;
  ]
