(* Tests for the Section 5 extensions: the cache-coherence model, the
   NUMAchine preset, the CLH lock, the spin-then-block lock and the
   lock-free single-word operations. *)

open Eventsim
open Hector
open Locks

let make ?(cfg = Config.hector) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (500 + p)) in
  (eng, machine, ctx)

let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

(* -- cache model -------------------------------------------------------------- *)

let test_numachine_preset () =
  let c = Config.numachine in
  Alcotest.(check bool) "coherent" true c.Config.cache_coherent;
  Alcotest.(check bool) "has CAS" true c.Config.has_cas;
  Alcotest.(check bool) "validates" true (Config.validate c == c)

let test_cache_read_hit () =
  let eng, machine, ctx = make ~cfg:Config.numachine () in
  let cell = Machine.alloc machine ~home:12 7 in
  simulate eng (fun () ->
      let c = ctx 0 in
      let t0 = Machine.now machine in
      ignore (Ctx.read c cell);
      let miss = Machine.now machine - t0 in
      let t1 = Machine.now machine in
      ignore (Ctx.read c cell);
      let hit = Machine.now machine - t1 in
      Alcotest.(check bool) "miss pays memory latency" true (miss >= 80);
      Alcotest.(check int) "hit pays the cache" Config.numachine.Config.cache_hit hit;
      Alcotest.(check int) "one hit counted" 1 (Machine.cache_hits machine))

let test_cache_invalidation_on_write () =
  let eng, machine, ctx = make ~cfg:Config.numachine () in
  let cell = Machine.alloc machine ~home:12 7 in
  simulate eng (fun () ->
      let a = ctx 0 and b = ctx 1 in
      ignore (Ctx.read a cell);
      (* b writes: takes the line exclusive, invalidating a's copy. *)
      Ctx.write b cell 9;
      let t0 = Machine.now machine in
      let v = Ctx.read a cell in
      Alcotest.(check int) "fresh value" 9 v;
      Alcotest.(check bool) "a missed after invalidation" true
        (Machine.now machine - t0 >= 80))

let test_cached_atomic_cheap_when_exclusive () =
  let eng, machine, ctx = make ~cfg:Config.numachine () in
  let cell = Machine.alloc machine ~home:12 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Ctx.fetch_and_store c cell 1) (* takes the line exclusive *);
      let t0 = Machine.now machine in
      ignore (Ctx.fetch_and_store c cell 2);
      Alcotest.(check int) "cached atomic" Config.numachine.Config.cache_hit
        (Machine.now machine - t0))

let test_hector_is_never_cached () =
  let eng, machine, ctx = make () in
  let cell = Machine.alloc machine ~home:12 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Ctx.read c cell);
      ignore (Ctx.read c cell);
      Alcotest.(check int) "no cache on HECTOR" 0 (Machine.cache_hits machine))

(* -- CLH lock --------------------------------------------------------------------- *)

let clh_stress cfg =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let lock = Clh.create ~home:0 machine in
  let inside = ref 0 and peak = ref 0 in
  let rng = Rng.create 6 in
  for proc = 0 to 7 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 25 do
          Clh.acquire lock ctx;
          incr inside;
          peak := max !peak !inside;
          Ctx.work ctx 30;
          decr inside;
          Clh.release lock ctx
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !peak;
  Alcotest.(check int) "all acquisitions" 200 (Clh.acquisitions lock);
  Alcotest.(check bool) "free at end" true (Clh.is_free lock)

let test_clh_mutual_exclusion_hector () = clh_stress Config.hector
let test_clh_mutual_exclusion_numachine () = clh_stress Config.numachine

let test_clh_fifo () =
  let eng, machine, ctx = make () in
  let lock = Clh.create ~home:0 machine in
  let order = ref [] in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Clh.acquire lock c;
      Ctx.work c 2000;
      Clh.release lock c);
  for p = 1 to 4 do
    Process.spawn eng (fun () ->
        let c = ctx p in
        Process.pause eng (100 * p);
        Clh.acquire lock c;
        order := p :: !order;
        Clh.release lock c)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3; 4 ] (List.rev !order)

let test_clh_remote_spin_on_hector () =
  (* The defining difference from MCS: a CLH waiter's spin reads land on
     the predecessor's memory module, not its own. *)
  let eng, machine, ctx = make () in
  let lock = Clh.create ~home:0 machine in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Clh.acquire lock c;
      Ctx.work c 3000;
      Clh.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 12 in
      Process.pause eng 100;
      Clh.acquire lock c;
      Clh.release lock c);
  Engine.run eng;
  (* Waiter on processor 12 spun on processor 0's node: its polls loaded
     module 0 (remote traffic MCS would not generate). *)
  Alcotest.(check bool) "remote polls hit the predecessor's module" true
    (Eventsim.Resource.n_requests (Machine.mem_resource machine 0) > 20)

(* -- spin-then-block ----------------------------------------------------------------- *)

let test_stb_fast_path () =
  let eng, machine, ctx = make () in
  let lock = Stb_lock.create ~home:0 machine in
  simulate eng (fun () ->
      let c = ctx 0 in
      Stb_lock.acquire lock c;
      Alcotest.(check bool) "held" true (Stb_lock.is_held lock);
      Stb_lock.release lock c;
      Alcotest.(check bool) "free" false (Stb_lock.is_held lock);
      Alcotest.(check int) "nobody blocked" 0 (Stb_lock.blocks lock))

let test_stb_blocks_on_long_hold () =
  let eng, machine, ctx = make () in
  let lock = Stb_lock.create ~home:0 ~spin_us:5.0 machine in
  let got_at = ref 0 in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      Stb_lock.acquire lock c;
      Ctx.work c 2000 (* 125 us, far beyond the 5 us spin budget *);
      Stb_lock.release lock c);
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      Stb_lock.acquire lock c;
      got_at := Machine.now machine;
      Stb_lock.release lock c);
  Engine.run eng;
  Alcotest.(check int) "waiter blocked" 1 (Stb_lock.blocks lock);
  Alcotest.(check int) "hand-off happened" 1 (Stb_lock.handoffs lock);
  Alcotest.(check bool) "woke after the release" true (!got_at >= 2000)

let test_stb_mutual_exclusion () =
  let eng, machine, _ = make () in
  let lock = Stb_lock.create ~home:0 ~spin_us:2.0 machine in
  let inside = ref 0 and peak = ref 0 and total = ref 0 in
  let rng = Rng.create 8 in
  for proc = 0 to 7 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 20 do
          Stb_lock.acquire lock ctx;
          incr inside;
          peak := max !peak !inside;
          incr total;
          Ctx.work ctx 200;
          decr inside;
          Stb_lock.release lock ctx
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !peak;
  Alcotest.(check int) "all ran" 160 !total;
  Alcotest.(check bool) "some waiters blocked" true (Stb_lock.blocks lock > 0)

(* -- lock-free operations -------------------------------------------------------------- *)

let test_lockfree_counter_exact () =
  let eng, machine, _ = make ~cfg:Config.numachine () in
  let counter = Lockfree.make_counter machine ~home:0 0 in
  let rng = Rng.create 9 in
  for proc = 0 to 7 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 50 do
          ignore (Lockfree.counter_incr counter ctx)
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "no lost updates" 400 (Lockfree.counter_value counter)

let test_lockfree_bits () =
  let eng, machine, ctx = make ~cfg:Config.numachine () in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Lockfree.set_bits cell c 0b101);
      Alcotest.(check int) "set" 0b101 (Cell.peek cell);
      ignore (Lockfree.clear_bits cell c 0b001);
      Alcotest.(check int) "cleared" 0b100 (Cell.peek cell))

let test_lockfree_stack () =
  let eng, machine, ctx = make ~cfg:Config.numachine () in
  let stack = Lockfree.make_stack machine ~home:0 in
  simulate eng (fun () ->
      let c = ctx 0 in
      Alcotest.(check bool) "empty pop" true (Lockfree.pop stack c = None);
      Lockfree.push stack c "a";
      Lockfree.push stack c "b";
      Alcotest.(check int) "size" 2 (Lockfree.stack_size stack c);
      Alcotest.(check (option string)) "LIFO" (Some "b") (Lockfree.pop stack c);
      Alcotest.(check (option string)) "then a" (Some "a") (Lockfree.pop stack c);
      Alcotest.(check bool) "empty again" true (Lockfree.pop stack c = None))

let test_lockfree_stack_concurrent () =
  let eng, machine, _ = make ~cfg:Config.numachine () in
  let stack = Lockfree.make_stack machine ~home:0 in
  let popped = ref 0 in
  let rng = Rng.create 10 in
  for proc = 0 to 5 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        for i = 1 to 30 do
          Lockfree.push stack ctx (proc, i);
          if i land 1 = 0 then
            match Lockfree.pop stack ctx with
            | Some _ -> incr popped
            | None -> ()
        done)
  done;
  Engine.run eng;
  let ctx = Ctx.create machine ~proc:0 (Rng.create 1) in
  Process.spawn eng (fun () ->
      let remaining = Lockfree.stack_size stack ctx in
      Alcotest.(check int) "push/pop conservation" (6 * 30) (!popped + remaining));
  Engine.run eng

let test_counter_workload_modes_agree () =
  List.iter
    (fun (r : Workloads.Counter_stress.result) ->
      Alcotest.(check int)
        (Workloads.Counter_stress.mode_name r.Workloads.Counter_stress.mode
        ^ " exact")
        r.Workloads.Counter_stress.expected_value
        r.Workloads.Counter_stress.final_value)
    (Workloads.Counter_stress.run_all
       ~config:{ Workloads.Counter_stress.default_config with ops = 30 }
       ())

(* -- claim-level checks for the new ablations -------------------------------------------- *)

let test_clh_vs_mcs_claim () =
  let rows = Hurricane.Experiments.ablation_clh () in
  let find machine algo =
    (List.find
       (fun (r : Hurricane.Experiments.abl4_row) ->
         r.Hurricane.Experiments.machine4 = machine
         && r.Hurricane.Experiments.algo4 = algo)
       rows)
      .Hurricane.Experiments.contended_us
  in
  Alcotest.(check bool) "CLH hurts on non-coherent HECTOR" true
    (find "hector" Lock.Clh > find "hector" Lock.Mcs_h1 *. 1.5);
  Alcotest.(check bool) "CLH competitive with coherent caches" true
    (find "numachine" Lock.Clh < find "numachine" Lock.Mcs_h1 *. 1.25)

let test_cached_locks_claim () =
  let rows = Hurricane.Experiments.ablation_cached_locks () in
  let pair machine =
    (List.find
       (fun (r : Hurricane.Experiments.abl5_row) ->
         r.Hurricane.Experiments.machine5 = machine
         && r.Hurricane.Experiments.algo5 = Lock.Mcs_h2)
       rows)
      .Hurricane.Experiments.pair_us
  in
  Alcotest.(check bool) "cached pair is an order of magnitude cheaper" true
    (pair "numachine" < pair "hector" /. 8.0)

let suite =
  [
    Alcotest.test_case "NUMAchine preset" `Quick test_numachine_preset;
    Alcotest.test_case "cache read hit" `Quick test_cache_read_hit;
    Alcotest.test_case "write invalidates other copies" `Quick
      test_cache_invalidation_on_write;
    Alcotest.test_case "cached atomic when exclusive" `Quick
      test_cached_atomic_cheap_when_exclusive;
    Alcotest.test_case "HECTOR never caches" `Quick test_hector_is_never_cached;
    Alcotest.test_case "CLH mutual exclusion (HECTOR)" `Quick
      test_clh_mutual_exclusion_hector;
    Alcotest.test_case "CLH mutual exclusion (NUMAchine)" `Quick
      test_clh_mutual_exclusion_numachine;
    Alcotest.test_case "CLH FIFO" `Quick test_clh_fifo;
    Alcotest.test_case "CLH spins remotely on HECTOR" `Quick
      test_clh_remote_spin_on_hector;
    Alcotest.test_case "STB fast path" `Quick test_stb_fast_path;
    Alcotest.test_case "STB blocks on long holds" `Quick
      test_stb_blocks_on_long_hold;
    Alcotest.test_case "STB mutual exclusion" `Quick test_stb_mutual_exclusion;
    Alcotest.test_case "lock-free counter is exact" `Quick
      test_lockfree_counter_exact;
    Alcotest.test_case "lock-free bit operations" `Quick test_lockfree_bits;
    Alcotest.test_case "lock-free stack LIFO" `Quick test_lockfree_stack;
    Alcotest.test_case "lock-free stack concurrent" `Quick
      test_lockfree_stack_concurrent;
    Alcotest.test_case "counter workload modes agree" `Quick
      test_counter_workload_modes_agree;
    Alcotest.test_case "ABL4 claim: CLH vs MCS" `Slow test_clh_vs_mcs_claim;
    Alcotest.test_case "ABL5 claim: cached locks" `Slow test_cached_locks_claim;
  ]
