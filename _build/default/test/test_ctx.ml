(* Tests for the per-processor context: instruction charging, the swap
   overlap window, interrupts, and soft masking. *)

open Eventsim
open Hector

let make ?(cfg = Config.hector) () =
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (100 + p)) in
  (eng, machine, ctx)

let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

let test_instr_costs () =
  let eng, machine, ctx = make () in
  let c = ctx 0 in
  simulate eng (fun () ->
      let t0 = Machine.now machine in
      Ctx.instr c ~reg:3 ~br:2 ();
      (* 3 * 1 + 2 * 2 = 7 cycles, no overlap credit pending. *)
      Alcotest.(check int) "cycles" 7 (Machine.now machine - t0))

let test_overlap_after_atomic () =
  let eng, machine, ctx = make () in
  let c = ctx 0 in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      ignore (Ctx.fetch_and_store c cell 1);
      let t0 = Machine.now machine in
      (* 5 cycles of overlap credit: the first 5 instruction cycles are
         hidden behind the swap's store phase. *)
      Ctx.instr c ~reg:3 ~br:1 ();
      Alcotest.(check int) "5 cycles hidden" 0 (Machine.now machine - t0);
      let t1 = Machine.now machine in
      Ctx.instr c ~reg:2 ();
      Alcotest.(check int) "credit exhausted" 2 (Machine.now machine - t1))

let test_overlap_cleared_by_memory_op () =
  let eng, machine, ctx = make () in
  let c = ctx 0 in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      ignore (Ctx.fetch_and_store c cell 1);
      ignore (Ctx.read c cell);
      let t0 = Machine.now machine in
      Ctx.instr c ~reg:2 ();
      Alcotest.(check int) "no credit after load" 2 (Machine.now machine - t0))

let test_ipi_delivery () =
  let eng, _, ctx = make () in
  let target = ctx 1 in
  let served = ref false in
  Process.spawn eng (fun () -> Ctx.idle_loop target);
  Process.spawn eng (fun () ->
      Ctx.post_ipi target (fun _ -> served := true);
      Process.pause eng 1000);
  Engine.run eng;
  Alcotest.(check bool) "handler ran" true !served;
  Alcotest.(check int) "counted" 1 (Ctx.irqs_taken target)

let test_soft_mask_defers () =
  let eng, machine, ctx = make () in
  let target = ctx 1 in
  let cell = Machine.alloc machine ~home:1 0 in
  let served_at = ref (-1) in
  let unmask_at = ref (-1) in
  Process.spawn eng (fun () ->
      Ctx.set_soft_mask target;
      (* Memory ops poll interrupts; the mask must defer the handler. *)
      for _ = 1 to 20 do
        ignore (Ctx.read target cell)
      done;
      unmask_at := Machine.now machine;
      Ctx.clear_soft_mask target;
      Process.pause eng 100);
  Process.spawn eng (fun () ->
      Process.pause eng 30;
      Ctx.post_ipi target (fun tctx -> served_at := Ctx.now tctx));
  Engine.run eng;
  Alcotest.(check bool) "deferred until unmask" true (!served_at >= !unmask_at);
  Alcotest.(check int) "counted as deferred" 1 (Ctx.irqs_deferred target)

let test_unmasked_interrupt_taken_at_op_boundary () =
  let eng, machine, ctx = make () in
  let target = ctx 1 in
  let cell = Machine.alloc machine ~home:1 0 in
  let served_at = ref (-1) in
  Process.spawn eng (fun () ->
      for _ = 1 to 50 do
        ignore (Ctx.read target cell)
      done);
  Process.spawn eng (fun () ->
      Process.pause eng 55;
      Ctx.post_ipi target (fun tctx -> served_at := Ctx.now tctx));
  Engine.run eng;
  Alcotest.(check bool) "served promptly" true
    (!served_at >= 55 && !served_at < 300);
  ignore machine

let test_no_nested_interrupts () =
  let eng, machine, ctx = make () in
  let target = ctx 1 in
  let order = ref [] in
  Process.spawn eng (fun () -> Ctx.idle_loop target);
  Process.spawn eng (fun () ->
      Process.pause eng 10;
      Ctx.post_ipi target (fun tctx ->
          order := "first-start" :: !order;
          (* While this handler runs, a second IPI arrives; it must not
             nest. The handler's own memory ops poll, but in_interrupt
             blocks re-entry. *)
          ignore (Ctx.read tctx (Machine.alloc machine ~home:1 0));
          Ctx.work tctx 200;
          order := "first-end" :: !order);
      Process.pause eng 20;
      Ctx.post_ipi target (fun _ -> order := "second" :: !order));
  Engine.run eng;
  Alcotest.(check (list string))
    "second handler ran after the first"
    [ "first-start"; "first-end"; "second" ]
    (List.rev !order)

let test_await_serves_interrupts () =
  let eng, _, ctx = make () in
  let waiter = ctx 0 in
  let iv = Ivar.create () in
  let served = ref false in
  let got = ref 0 in
  Process.spawn eng (fun () -> got := Ctx.await waiter iv);
  Process.spawn eng (fun () ->
      Process.pause eng 50;
      (* Interrupt the waiting processor... *)
      Ctx.post_ipi waiter (fun _ -> served := true);
      Process.pause eng 200;
      Ivar.fill eng iv 9);
  Engine.run eng;
  Alcotest.(check bool) "interrupt served while awaiting" true !served;
  Alcotest.(check int) "reply received" 9 !got

let test_with_soft_mask_restores_on_exception () =
  let eng, _, ctx = make () in
  let c = ctx 0 in
  simulate eng (fun () ->
      (try Ctx.with_soft_mask c (fun () -> failwith "boom") with
      | Failure _ -> ());
      Alcotest.(check bool) "mask cleared" false (Ctx.soft_masked c))

let suite =
  [
    Alcotest.test_case "instruction cycle charging" `Quick test_instr_costs;
    Alcotest.test_case "swap overlap window" `Quick test_overlap_after_atomic;
    Alcotest.test_case "memory op closes overlap window" `Quick
      test_overlap_cleared_by_memory_op;
    Alcotest.test_case "IPI wakes an idle processor" `Quick test_ipi_delivery;
    Alcotest.test_case "soft mask defers handlers" `Quick test_soft_mask_defers;
    Alcotest.test_case "unmasked IPI taken at op boundary" `Quick
      test_unmasked_interrupt_taken_at_op_boundary;
    Alcotest.test_case "interrupts do not nest" `Quick test_no_nested_interrupts;
    Alcotest.test_case "await keeps serving interrupts" `Quick
      test_await_serves_interrupts;
    Alcotest.test_case "with_soft_mask restores on exception" `Quick
      test_with_soft_mask_restores_on_exception;
  ]
