(* Tests for FIFO server resources. *)

open Eventsim

let test_free_resource_serves_immediately () =
  let r = Resource.create "r" in
  let finish = Resource.reserve r ~now:100 ~service:10 in
  Alcotest.(check int) "finish" 110 finish;
  Alcotest.(check int) "next_free" 110 (Resource.next_free r)

let test_busy_resource_queues () =
  let r = Resource.create "r" in
  let f1 = Resource.reserve r ~now:0 ~service:10 in
  let f2 = Resource.reserve r ~now:0 ~service:10 in
  let f3 = Resource.reserve r ~now:5 ~service:10 in
  Alcotest.(check int) "first" 10 f1;
  Alcotest.(check int) "second queued" 20 f2;
  Alcotest.(check int) "third queued" 30 f3

let test_idle_gap () =
  let r = Resource.create "r" in
  let f1 = Resource.reserve r ~now:0 ~service:5 in
  let f2 = Resource.reserve r ~now:100 ~service:5 in
  Alcotest.(check int) "first" 5 f1;
  Alcotest.(check int) "after a gap no queueing" 105 f2

let test_accounting () =
  let r = Resource.create "r" in
  ignore (Resource.reserve r ~now:0 ~service:10);
  ignore (Resource.reserve r ~now:0 ~service:10);
  Alcotest.(check int) "busy" 20 (Resource.busy_cycles r);
  Alcotest.(check int) "queued" 10 (Resource.queued_cycles r);
  Alcotest.(check int) "requests" 2 (Resource.n_requests r);
  Alcotest.(check (float 0.001)) "utilization" 0.5
    (Resource.utilization r ~horizon:40)

let test_reset () =
  let r = Resource.create "r" in
  ignore (Resource.reserve r ~now:0 ~service:10);
  Resource.reset r;
  Alcotest.(check int) "busy cleared" 0 (Resource.busy_cycles r);
  Alcotest.(check int) "requests cleared" 0 (Resource.n_requests r);
  Alcotest.(check int) "free now" 0 (Resource.next_free r)

let test_zero_service () =
  let r = Resource.create "r" in
  let f = Resource.reserve r ~now:7 ~service:0 in
  Alcotest.(check int) "instant" 7 f

let test_negative_service_rejected () =
  let r = Resource.create "r" in
  Alcotest.check_raises "negative"
    (Invalid_argument "Resource.reserve: negative service") (fun () ->
      ignore (Resource.reserve r ~now:0 ~service:(-1)))

let prop_fifo_completion_monotone =
  QCheck.Test.make
    ~name:"completions are non-decreasing for non-decreasing arrivals"
    ~count:200
    QCheck.(list (pair (int_bound 100) (int_bound 20)))
    (fun reqs ->
      let r = Resource.create "r" in
      let arrivals =
        List.sort compare (List.map fst reqs)
        |> List.map2 (fun (_, s) a -> (a, s)) reqs
      in
      let finishes =
        List.map (fun (now, service) -> Resource.reserve r ~now ~service)
          arrivals
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono finishes)

let prop_finish_at_least_now_plus_service =
  QCheck.Test.make ~name:"finish >= now + service" ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 50)))
    (fun reqs ->
      let reqs = List.sort compare reqs in
      let r = Resource.create "r" in
      List.for_all
        (fun (now, service) ->
          Resource.reserve r ~now ~service >= now + service)
        reqs)

let suite =
  [
    Alcotest.test_case "free resource serves immediately" `Quick
      test_free_resource_serves_immediately;
    Alcotest.test_case "busy resource queues FIFO" `Quick
      test_busy_resource_queues;
    Alcotest.test_case "idle gaps do not queue" `Quick test_idle_gap;
    Alcotest.test_case "busy/queued accounting" `Quick test_accounting;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "zero service" `Quick test_zero_service;
    Alcotest.test_case "negative service rejected" `Quick
      test_negative_service_rejected;
    QCheck_alcotest.to_alcotest prop_fifo_completion_monotone;
    QCheck_alcotest.to_alcotest prop_finish_at_least_now_plus_service;
  ]
