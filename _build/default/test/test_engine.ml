(* Tests for the discrete-event engine. *)

open Eventsim

let test_time_starts_at_zero () =
  let eng = Engine.create () in
  Alcotest.(check int) "now" 0 (Engine.now eng)

let test_runs_in_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule eng ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule eng ~at:20 (fun () -> log := 20 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "final time" 30 (Engine.now eng)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    Engine.schedule eng ~at:7 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_schedule_in_past_rejected () =
  let eng = Engine.create () in
  Engine.schedule eng ~at:10 (fun () -> ());
  Engine.run eng;
  Alcotest.check_raises "past" (Invalid_argument
    "Engine.schedule: at=5 is in the past (now=10)")
    (fun () -> Engine.schedule eng ~at:5 (fun () -> ()))

let test_events_can_schedule_events () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let rec chain n =
    if n > 0 then
      Engine.schedule_after eng ~delay:5 (fun () ->
          incr hits;
          chain (n - 1))
  in
  chain 10;
  Engine.run eng;
  Alcotest.(check int) "all ran" 10 !hits;
  Alcotest.(check int) "time advanced" 50 (Engine.now eng)

let test_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  List.iter
    (fun t -> Engine.schedule eng ~at:t (fun () -> incr hits))
    [ 10; 20; 30; 40 ];
  Engine.run ~until:25 eng;
  Alcotest.(check int) "only early events" 2 !hits;
  Alcotest.(check int) "pending" 2 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check int) "rest ran" 4 !hits

let test_run_until_advances_clock_when_empty () =
  let eng = Engine.create () in
  Engine.run ~until:100 eng;
  Alcotest.(check int) "clock moved" 100 (Engine.now eng)

let test_step () =
  let eng = Engine.create () in
  Alcotest.(check bool) "nothing to step" false (Engine.step eng);
  Engine.schedule eng ~at:3 (fun () -> ());
  Alcotest.(check bool) "stepped" true (Engine.step eng);
  Alcotest.(check int) "executed" 1 (Engine.events_executed eng)

let test_event_budget () =
  let eng = Engine.create ~max_events:100 () in
  let rec forever () = Engine.schedule_after eng ~delay:1 forever in
  forever ();
  Alcotest.check_raises "budget"
    (Engine.Deadlock "event budget exhausted (100 events executed)")
    (fun () -> Engine.run eng)

let test_negative_delay_rejected () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      Engine.schedule_after eng ~delay:(-1) (fun () -> ()))

let suite =
  [
    Alcotest.test_case "time starts at zero" `Quick test_time_starts_at_zero;
    Alcotest.test_case "runs events in time order" `Quick test_runs_in_order;
    Alcotest.test_case "same-time events run FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "scheduling in the past fails" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "events schedule events" `Quick
      test_events_can_schedule_events;
    Alcotest.test_case "run ~until leaves later events" `Quick test_run_until;
    Alcotest.test_case "run ~until advances an empty clock" `Quick
      test_run_until_advances_clock_when_empty;
    Alcotest.test_case "single step" `Quick test_step;
    Alcotest.test_case "livelock budget" `Quick test_event_budget;
    Alcotest.test_case "negative delay rejected" `Quick
      test_negative_delay_rejected;
  ]
