test/test_rng.ml: Alcotest Array Eventsim QCheck QCheck_alcotest Rng
