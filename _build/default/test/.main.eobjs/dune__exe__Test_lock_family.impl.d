test/test_lock_family.ml: Alcotest Anderson_lock Config Ctx Engine Eventsim Four_classes Hector Hurricane List Lock Locks Machine Measure Process Rng Ticket_lock Workloads
