test/test_ctx.ml: Alcotest Config Ctx Engine Eventsim Hector Ivar List Machine Process Rng
