test/test_fserver.ml: Alcotest Config Ctx Engine Eventsim Fserver Hector Hkernel Kernel List Machine Process Workloads
