test/test_kernel.ml: Alcotest Cell Clustering Config Costs Engine Eventsim Hector Hkernel Kernel Khash List Locks Machine Memmgr Page Printf Process Resource Rpc
