test/test_integration.ml: Alcotest Cell Clustering Config Ctx Engine Eventsim Fserver Hector Hkernel Kernel Khash List Locks Machine Memmgr Option Page Printf Process Procs QCheck QCheck_alcotest Rng
