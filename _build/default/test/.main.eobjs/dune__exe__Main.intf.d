test/main.mli:
