test/test_experiments.ml: Alcotest Destruction Hash_stress Hkernel Hurricane Independent_faults List Lock Lock_stress Locks Measure Printf Shared_faults Trylock_starvation Uncontended Workloads
