test/test_rpc.ml: Alcotest Array Config Costs Ctx Engine Eventsim Hector Hkernel Machine Process Rng Rpc
