test/test_ivar.ml: Alcotest Engine Eventsim Ivar List Process
