test/test_resource.ml: Alcotest Eventsim List QCheck QCheck_alcotest Resource
