test/test_extensions.ml: Alcotest Cell Clh Config Ctx Engine Eventsim Hector Hurricane List Lock Lockfree Locks Machine Process Rng Stb_lock Workloads
