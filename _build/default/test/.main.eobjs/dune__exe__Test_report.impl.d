test/test_report.ml: Alcotest Astring Buffer Dat Eventsim Experiments Filename Format Hector Hurricane List Lock Locks Measure Report String Sys Workloads
