test/test_config.ml: Alcotest Config Hector List
