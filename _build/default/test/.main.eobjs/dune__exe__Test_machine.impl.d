test/test_machine.ml: Alcotest Array Cell Config Engine Eventsim Hector List Machine Process
