test/test_pqueue.ml: Alcotest Eventsim List Pqueue QCheck QCheck_alcotest
