test/test_process.ml: Alcotest Engine Eventsim List Process
