test/test_engine.ml: Alcotest Engine Eventsim List
