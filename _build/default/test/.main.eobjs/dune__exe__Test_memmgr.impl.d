test/test_memmgr.ml: Alcotest Cell Clustering Config Ctx Engine Eventsim Hector Hkernel Kernel Khash List Locks Machine Memmgr Page Process QCheck QCheck_alcotest
