test/test_procs.ml: Alcotest Config Ctx Engine Eventsim Hector Hkernel Kernel List Machine Printf Process Procs Workloads
