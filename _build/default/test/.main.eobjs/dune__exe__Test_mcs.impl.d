test/test_mcs.ml: Alcotest Config Ctx Engine Eventsim Hector List Locks Machine Mcs Process QCheck QCheck_alcotest Rng
