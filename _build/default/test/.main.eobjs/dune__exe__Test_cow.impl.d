test/test_cow.ml: Alcotest Cell Config Ctx Engine Eventsim Hector Hkernel Kernel Khash List Machine Memmgr Page Process Procs Workloads
