test/test_stat.ml: Alcotest Eventsim Gen List QCheck QCheck_alcotest Stat
