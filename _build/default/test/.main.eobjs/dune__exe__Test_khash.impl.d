test/test_khash.ml: Alcotest Config Ctx Engine Eventsim Hashtbl Hector Hkernel Khash List Lock Locks Machine Process QCheck QCheck_alcotest Reserve Rng String
