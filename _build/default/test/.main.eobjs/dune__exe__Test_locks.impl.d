test/test_locks.ml: Alcotest Backoff Config Ctx Engine Eventsim Hector Instr_model List Lock Locks Machine Process Reserve Rng Spin_lock
