test/test_clustering.ml: Alcotest Clustering Hkernel List Printf QCheck QCheck_alcotest
