(* Tests for the machine model: latencies, atomicity, contention. *)

open Eventsim
open Hector

let make () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  (eng, machine)

(* Run a single simulated computation to completion. *)
let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

let timed machine f =
  let t0 = Machine.now machine in
  let v = f () in
  (v, Machine.now machine - t0)

let test_base_latencies () =
  let _, machine = make () in
  Alcotest.(check int) "local" 10 (Machine.base_latency machine ~proc:0 ~home:0);
  Alcotest.(check int) "on-station" 19
    (Machine.base_latency machine ~proc:0 ~home:3);
  Alcotest.(check int) "cross-ring" 23
    (Machine.base_latency machine ~proc:0 ~home:12)

let test_local_read_latency () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:2 99 in
  simulate eng (fun () ->
      let v, dt = timed machine (fun () -> Machine.read machine ~proc:2 cell) in
      Alcotest.(check int) "value" 99 v;
      Alcotest.(check int) "10 cycles" 10 dt)

let test_remote_read_latency_uncontended () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:12 5 in
  simulate eng (fun () ->
      let _, dt = timed machine (fun () -> Machine.read machine ~proc:0 cell) in
      (* Cross-ring: at least the 23-cycle base; the interconnect path may
         add a little when its service occupancies exceed the base. *)
      Alcotest.(check bool) "at least base" true (dt >= 23);
      Alcotest.(check bool) "no queueing when idle" true (dt <= 30))

let test_write_visible () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      Machine.write machine ~proc:0 cell 123;
      Alcotest.(check int) "readback" 123 (Machine.read machine ~proc:0 cell))

let test_fetch_and_store () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:0 7 in
  simulate eng (fun () ->
      let old, dt =
        timed machine (fun () -> Machine.fetch_and_store machine ~proc:0 cell 9)
      in
      Alcotest.(check int) "old value" 7 old;
      Alcotest.(check int) "new value" 9 (Cell.peek cell);
      (* Swap = two local accesses. *)
      Alcotest.(check int) "2x local latency" 20 dt)

let test_test_and_set () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      Alcotest.(check int) "was free" 0 (Machine.test_and_set machine ~proc:0 cell);
      Alcotest.(check int) "now held" 1 (Machine.test_and_set machine ~proc:0 cell))

let test_cas_needs_capability () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      match Machine.compare_and_swap machine ~proc:0 cell ~expect:0 ~set:1 with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "CAS accepted on a swap-only machine")

let test_cas_when_available () =
  let eng = Engine.create () in
  let machine = Machine.create eng (Config.with_cas Config.hector) in
  let cell = Machine.alloc machine ~home:0 5 in
  simulate eng (fun () ->
      Alcotest.(check bool) "matches" true
        (Machine.compare_and_swap machine ~proc:0 cell ~expect:5 ~set:6);
      Alcotest.(check bool) "mismatch" false
        (Machine.compare_and_swap machine ~proc:0 cell ~expect:5 ~set:7);
      Alcotest.(check int) "value" 6 (Cell.peek cell))

let test_remote_contention_queues () =
  (* Two processors hammer one remote module; the second stream must see
     queueing that an isolated stream would not. *)
  let run n_contenders =
    let eng, machine = make () in
    let cells = Array.init 2 (fun i -> Machine.alloc machine ~home:12 i) in
    let finish = ref 0 in
    for p = 0 to n_contenders - 1 do
      Process.spawn eng (fun () ->
          for _ = 1 to 50 do
            ignore (Machine.read machine ~proc:p cells.(p mod 2))
          done;
          finish := max !finish (Machine.now machine))
    done;
    Engine.run eng;
    !finish
  in
  let alone = run 1 in
  let contended = run 2 in
  Alcotest.(check bool) "contention stretches accesses" true
    (contended > alone)

let test_local_accesses_do_not_contend () =
  (* The local port: a processor spinning on its own memory must not slow a
     remote reader of a different cell on another module. *)
  let eng, machine = make () in
  let local_cell = Machine.alloc machine ~home:1 0 in
  let remote_cell = Machine.alloc machine ~home:2 0 in
  (* Proc 1 spins furiously on its own memory. *)
  Process.spawn eng (fun () ->
      for _ = 1 to 1000 do
        ignore (Machine.read machine ~proc:1 local_cell)
      done);
  let dt = ref 0 in
  Process.spawn eng (fun () ->
      let t0 = Machine.now machine in
      ignore (Machine.read machine ~proc:2 remote_cell);
      dt := Machine.now machine - t0);
  Engine.run eng;
  Alcotest.(check int) "local read unhindered" 10 !dt

let test_operation_counters () =
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:0 0 in
  simulate eng (fun () ->
      ignore (Machine.read machine ~proc:0 cell);
      Machine.write machine ~proc:0 cell 1;
      ignore (Machine.fetch_and_store machine ~proc:0 cell 2));
  Alcotest.(check int) "reads" 1 (Machine.reads machine);
  Alcotest.(check int) "writes" 1 (Machine.writes machine);
  Alcotest.(check int) "atomics" 1 (Machine.atomics machine)

let test_alloc_validates_home () =
  let _, machine = make () in
  Alcotest.(check bool) "bad home rejected" true
    (match Machine.alloc machine ~home:99 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_atomicity_order () =
  (* Two concurrent fetch&stores on the same cell: exactly one sees the
     other's value; the final value belongs to the later one. *)
  let eng, machine = make () in
  let cell = Machine.alloc machine ~home:8 0 in
  let results = ref [] in
  for p = 0 to 1 do
    Process.spawn eng (fun () ->
        let old = Machine.fetch_and_store machine ~proc:p cell (p + 1) in
        results := (p, old) :: !results)
  done;
  Engine.run eng;
  let olds = List.map snd !results |> List.sort compare in
  (* One got the initial 0; the other got the first writer's value. *)
  Alcotest.(check bool) "serialised" true
    (olds = [ 0; 1 ] || olds = [ 0; 2 ])

let suite =
  [
    Alcotest.test_case "base latencies 10/19/23" `Quick test_base_latencies;
    Alcotest.test_case "local read costs 10 cycles" `Quick
      test_local_read_latency;
    Alcotest.test_case "remote read near base when idle" `Quick
      test_remote_read_latency_uncontended;
    Alcotest.test_case "writes are visible" `Quick test_write_visible;
    Alcotest.test_case "fetch&store semantics and cost" `Quick
      test_fetch_and_store;
    Alcotest.test_case "test&set" `Quick test_test_and_set;
    Alcotest.test_case "CAS refused without capability" `Quick
      test_cas_needs_capability;
    Alcotest.test_case "CAS works when configured" `Quick test_cas_when_available;
    Alcotest.test_case "remote contention queues" `Quick
      test_remote_contention_queues;
    Alcotest.test_case "local accesses use a private port" `Quick
      test_local_accesses_do_not_contend;
    Alcotest.test_case "operation counters" `Quick test_operation_counters;
    Alcotest.test_case "alloc validates home" `Quick test_alloc_validates_home;
    Alcotest.test_case "concurrent swaps serialise" `Quick test_atomicity_order;
  ]
