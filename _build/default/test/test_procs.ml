(* Tests for process descriptors, the family tree, and destruction under
   both deadlock-management strategies. *)

open Eventsim
open Hector
open Hkernel

let make ?(cluster_size = 4) ?(strategy = Procs.Optimistic)
    ?(layout = Procs.Combined) ?(seed = 81) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~seed in
  let procs = Procs.create ~strategy ~layout kernel in
  (eng, kernel, procs)

let test_spawn_and_tree () =
  let _, _, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:2 ~parent:1;
  Procs.spawn_process_untimed procs ~pid:3 ~parent:1;
  Alcotest.(check bool) "root alive" true (Procs.alive_untimed procs 1);
  Alcotest.(check (list int)) "children" [ 2; 3 ]
    (List.sort compare (Procs.children_untimed procs 1))

let test_spawn_validates () =
  let _, _, procs = make () in
  Alcotest.(check bool) "pid 0 rejected" true
    (match Procs.spawn_process_untimed procs ~pid:0 ~parent:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown parent rejected" true
    (match Procs.spawn_process_untimed procs ~pid:5 ~parent:99 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_destroy_leaf () =
  let eng, kernel, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:2 ~parent:1;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let ok = ref false in
  Process.spawn eng (fun () -> ok := Procs.destroy procs (Kernel.ctx kernel 0) 2);
  Engine.run eng;
  Alcotest.(check bool) "destroyed" true !ok;
  Alcotest.(check bool) "dead" false (Procs.alive_untimed procs 2);
  Alcotest.(check (list int)) "unlinked from parent" []
    (Procs.children_untimed procs 1);
  Alcotest.(check int) "counted" 1 (Procs.destroys procs)

let test_destroy_middle_reparents () =
  let eng, kernel, procs = make () in
  (* 1 -> 2 -> {3, 4}: destroying 2 must hand 3 and 4 to 1. *)
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:2 ~parent:1;
  Procs.spawn_process_untimed procs ~pid:3 ~parent:2;
  Procs.spawn_process_untimed procs ~pid:4 ~parent:2;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      ignore (Procs.destroy procs (Kernel.ctx kernel 0) 2));
  Engine.run eng;
  Alcotest.(check bool) "2 gone" false (Procs.alive_untimed procs 2);
  Alcotest.(check (list int)) "grandchildren adopted" [ 3; 4 ]
    (List.sort compare (Procs.children_untimed procs 1))

let test_destroy_missing_pid () =
  let eng, kernel, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let r = ref true in
  Process.spawn eng (fun () -> r := Procs.destroy procs (Kernel.ctx kernel 0) 42);
  Engine.run eng;
  Alcotest.(check bool) "returns false" false !r

let test_double_destroy_one_winner () =
  let eng, kernel, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:2 ~parent:1;
  Kernel.spawn_idle_except kernel ~active:[ 0; 1 ];
  let wins = ref 0 in
  for p = 0 to 1 do
    Process.spawn eng (fun () ->
        if Procs.destroy procs (Kernel.ctx kernel p) 2 then incr wins)
  done;
  Engine.run eng;
  Alcotest.(check int) "exactly one destroyer wins" 1 !wins;
  Alcotest.(check bool) "dead" false (Procs.alive_untimed procs 2)

(* A full storm must leave a consistent tree regardless of strategy. *)
let storm strategy =
  let eng, kernel, procs = make ~strategy () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  let children = List.init 8 (fun i -> 10 + i) in
  List.iter (fun pid -> Procs.spawn_process_untimed procs ~pid ~parent:1) children;
  let destroyers = [ 0; 1; 2; 3 ] in
  Kernel.spawn_idle_except kernel ~active:destroyers;
  List.iteri
    (fun i proc ->
      Process.spawn eng (fun () ->
          let ctx = Kernel.ctx kernel proc in
          (* Each destroyer takes every other child (overlapping targets to
             force lost races too). *)
          List.iteri
            (fun j pid -> if j mod 2 = i mod 2 then ignore (Procs.destroy procs ctx pid))
            children;
          Ctx.idle_loop ctx))
    destroyers;
  Engine.run eng;
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d destroyed" pid)
        false
        (Procs.alive_untimed procs pid))
    children;
  Alcotest.(check (list int)) "root has no children left" []
    (Procs.children_untimed procs 1);
  procs

let test_storm_optimistic () =
  let procs = storm Procs.Optimistic in
  Alcotest.(check int) "no revalidations when optimistic" 0
    (Procs.revalidations procs)

let test_storm_pessimistic () =
  let procs = storm Procs.Pessimistic in
  Alcotest.(check bool) "pessimistic pays revalidations" true
    (Procs.revalidations procs > 0)

let test_retries_happen_under_contention () =
  (* Siblings on different clusters dying simultaneously contend on the
     parent's reservation: the paper's "retries are common". *)
  let eng, kernel, procs = make ~cluster_size:2 () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  let children = List.init 12 (fun i -> 20 + i) in
  List.iter (fun pid -> Procs.spawn_process_untimed procs ~pid ~parent:1) children;
  let destroyers = [ 0; 1; 2; 3; 10; 11 ] in
  Kernel.spawn_idle_except kernel ~active:destroyers;
  List.iteri
    (fun i proc ->
      Process.spawn eng (fun () ->
          let ctx = Kernel.ctx kernel proc in
          List.iteri
            (fun j pid ->
              if j mod List.length destroyers = i then
                ignore (Procs.destroy procs ctx pid))
            children;
          (* Keep serving unlink/reparent RPCs after finishing. *)
          Ctx.idle_loop ctx))
    destroyers;
  Engine.run eng;
  Alcotest.(check int) "all destroyed" 12 (Procs.destroys procs);
  Alcotest.(check bool) "retries occurred" true (Procs.retries procs > 0)

let test_send_local_and_remote () =
  let eng, kernel, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  (* pid 4 lives in cluster 0 (4 mod 4), pid 5 in cluster 1. *)
  Procs.spawn_process_untimed procs ~pid:4 ~parent:1;
  Procs.spawn_process_untimed procs ~pid:5 ~parent:1;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      Alcotest.(check bool) "local send" true (Procs.send procs ctx ~src:4 ~dst:4);
      Alcotest.(check bool) "remote send" true (Procs.send procs ctx ~src:4 ~dst:5);
      Alcotest.(check bool) "to dead process" false
        (Procs.send procs ctx ~src:4 ~dst:99));
  Engine.run eng;
  Alcotest.(check int) "self message arrived" 1 (Procs.mailbox_untimed procs 4);
  Alcotest.(check int) "remote message arrived" 1 (Procs.mailbox_untimed procs 5);
  Alcotest.(check int) "sends counted" 2 (Procs.sends procs)

let test_send_requires_local_src () =
  let eng, kernel, procs = make () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:5 ~parent:1;
  let raised = ref false in
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      try ignore (Procs.send procs ctx ~src:5 ~dst:5)
      with Invalid_argument _ -> raised := true);
  Engine.run eng;
  Alcotest.(check bool) "rejected" true !raised

let test_separate_layout_tree_ops () =
  let eng, kernel, procs = make ~layout:Procs.Separate () in
  Procs.spawn_process_untimed procs ~pid:1 ~parent:0;
  Procs.spawn_process_untimed procs ~pid:2 ~parent:1;
  Procs.spawn_process_untimed procs ~pid:3 ~parent:2;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      ignore (Procs.destroy procs (Kernel.ctx kernel 0) 2));
  Engine.run eng;
  Alcotest.(check bool) "dead" false (Procs.alive_untimed procs 2);
  Alcotest.(check (list int)) "grandchild adopted" [ 3 ]
    (Procs.children_untimed procs 1)

let test_layout_ablation_removes_destroy_retries () =
  let comb, sep =
    Workloads.Messaging_mix.run_both
      ~config:
        {
          Workloads.Messaging_mix.default_config with
          messages_per_sender = 40;
        }
      ()
  in
  Alcotest.(check int) "same destroys" comb.Workloads.Messaging_mix.destroys
    sep.Workloads.Messaging_mix.destroys;
  Alcotest.(check bool) "combined layout suffers destroy retries" true
    (comb.Workloads.Messaging_mix.destroy_retries
    > (4 * sep.Workloads.Messaging_mix.destroy_retries) + 4);
  Alcotest.(check bool) "separate tree destroys faster" true
    (sep.Workloads.Messaging_mix.destroy_summary.Workloads.Measure.mean_us
    < comb.Workloads.Messaging_mix.destroy_summary.Workloads.Measure.mean_us)

let suite =
  [
    Alcotest.test_case "spawn and family tree" `Quick test_spawn_and_tree;
    Alcotest.test_case "spawn validates arguments" `Quick test_spawn_validates;
    Alcotest.test_case "destroy a leaf" `Quick test_destroy_leaf;
    Alcotest.test_case "destroying a middle node reparents" `Quick
      test_destroy_middle_reparents;
    Alcotest.test_case "destroy a missing pid" `Quick test_destroy_missing_pid;
    Alcotest.test_case "double destroy has one winner" `Quick
      test_double_destroy_one_winner;
    Alcotest.test_case "storm, optimistic strategy" `Quick test_storm_optimistic;
    Alcotest.test_case "storm, pessimistic strategy" `Quick
      test_storm_pessimistic;
    Alcotest.test_case "contention causes retries" `Quick
      test_retries_happen_under_contention;
    Alcotest.test_case "message passing, local and remote" `Quick
      test_send_local_and_remote;
    Alcotest.test_case "send requires a local source" `Quick
      test_send_requires_local_src;
    Alcotest.test_case "separate-tree layout destroys correctly" `Quick
      test_separate_layout_tree_ops;
    Alcotest.test_case "ABL8: separate tree removes destroy retries" `Slow
      test_layout_ablation_removes_destroy_retries;
  ]
