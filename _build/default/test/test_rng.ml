(* Tests for the deterministic splittable PRNG. *)

open Eventsim

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_changes_stream () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_split_independent () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 c1 = Rng.next_int64 c2 then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 5)

let test_int_bound_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_range () =
  let r = Rng.create 5 in
  for _ = 1 to 200 do
    let v = Rng.range r 10 20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20)
  done

let test_range_bad () =
  let r = Rng.create 5 in
  Alcotest.check_raises "hi<lo" (Invalid_argument "Rng.range: hi < lo")
    (fun () -> ignore (Rng.range r 5 4))

let test_shuffle_permutes () =
  let r = Rng.create 9 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_float_range () =
  let r = Rng.create 11 in
  for _ = 1 to 200 do
    let v = Rng.float r in
    Alcotest.(check bool) "[0,1)" true (v >= 0.0 && v < 1.0)
  done

let prop_int_nonnegative_and_bounded =
  QCheck.Test.make ~name:"Rng.int stays within [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_bool_both_values =
  QCheck.Test.make ~name:"Rng.bool produces both values" ~count:50 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let t = ref false and f = ref false in
      for _ = 1 to 64 do
        if Rng.bool r then t := true else f := true
      done;
      !t && !f)

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_seed_changes_stream;
    Alcotest.test_case "split gives independent streams" `Quick
      test_split_independent;
    Alcotest.test_case "int rejects non-positive bound" `Quick
      test_int_bound_rejects_nonpositive;
    Alcotest.test_case "range bounds" `Quick test_range;
    Alcotest.test_case "range rejects hi<lo" `Quick test_range_bad;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    QCheck_alcotest.to_alcotest prop_int_nonnegative_and_bounded;
    QCheck_alcotest.to_alcotest prop_bool_both_values;
  ]
