(* Tests for the memory manager: fault paths, page-table state, the
   coherence protocol and its invariants, combining, and retries. *)

open Eventsim
open Hector
open Hkernel

let make ?(cluster_size = 4) ?(lock_algo = Locks.Lock.Mcs_h2) ?(seed = 71) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~lock_algo ~seed in
  (eng, machine, kernel)

(* Coherence invariant: at most one cluster holds a valid-for-write
   replica, and then nobody else holds any valid replica. *)
let check_coherence kernel ~vpage =
  let states = ref [] in
  let n = Clustering.n_clusters (Kernel.clustering kernel) in
  for c = 0 to n - 1 do
    match Kernel.find_descriptor_untimed kernel ~cluster:c ~vpage with
    | None -> ()
    | Some e -> states := Cell.peek e.Khash.payload.Page.vstate :: !states
  done;
  let writers = List.length (List.filter (fun s -> s = Page.st_valid_write) !states) in
  let readers = List.length (List.filter (fun s -> s = Page.st_valid_read) !states) in
  Alcotest.(check bool) "at most one writer" true (writers <= 1);
  if writers = 1 then
    Alcotest.(check int) "no readers besides a writer" 0 readers

let test_simple_fault_maps_page () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:100 ~master_cluster:0 ~frame:100;
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      Memmgr.fault kernel ctx ~vpage:100 ~write:true;
      (* The page-table word records the mapping. *)
      Alcotest.(check int) "pte set" (100 lor 1)
        (Cell.peek (Kernel.pte_cell kernel 0)));
  Engine.run eng;
  Alcotest.(check int) "fault counted" 1 (Kernel.faults kernel);
  match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:100 with
  | None -> Alcotest.fail "descriptor lost"
  | Some e ->
    Alcotest.(check int) "refcount" 1 (Cell.peek e.Khash.payload.Page.refcount);
    Alcotest.(check bool) "reserve released" false
      (Locks.Reserve.write_reserved e.Khash.status)

let test_unmap_decrements () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:101 ~master_cluster:0 ~frame:101;
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      Memmgr.fault kernel ctx ~vpage:101 ~write:true;
      Memmgr.unmap kernel ctx ~vpage:101;
      Alcotest.(check int) "pte cleared" 0 (Cell.peek (Kernel.pte_cell kernel 0)));
  Engine.run eng;
  match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:101 with
  | None -> Alcotest.fail "descriptor lost"
  | Some e ->
    Alcotest.(check int) "refcount back to 0" 0
      (Cell.peek e.Khash.payload.Page.refcount)

let test_read_fault_replicates () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:102 ~master_cluster:0 ~frame:102;
  Kernel.spawn_idle_except kernel ~active:[ 4 ];
  Process.spawn eng (fun () ->
      (* Processor 4 lives in cluster 1; its read fault replicates the
         descriptor there. *)
      Memmgr.fault kernel (Kernel.ctx kernel 4) ~vpage:102 ~write:false);
  Engine.run eng;
  Alcotest.(check int) "one replication" 1 (Kernel.replications kernel);
  (match Kernel.find_descriptor_untimed kernel ~cluster:1 ~vpage:102 with
  | None -> Alcotest.fail "no replica in cluster 1"
  | Some e ->
    Alcotest.(check int) "replica valid for read" Page.st_valid_read
      (Cell.peek e.Khash.payload.Page.vstate));
  (* Master directory now lists cluster 1 as a sharer. *)
  (match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:102 with
  | None -> Alcotest.fail "master lost"
  | Some e ->
    Alcotest.(check bool) "sharer recorded" true
      (Page.has_sharer (Cell.peek e.Khash.payload.Page.dir_sharers) 1));
  check_coherence kernel ~vpage:102

let test_write_fault_takes_ownership () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:103 ~master_cluster:0 ~frame:103;
  Kernel.spawn_idle_except kernel ~active:[ 8 ];
  Process.spawn eng (fun () ->
      (* Cluster 2 writes: master's own copy must be invalidated and the
         directory transferred. *)
      Memmgr.fault kernel (Kernel.ctx kernel 8) ~vpage:103 ~write:true);
  Engine.run eng;
  (match Kernel.find_descriptor_untimed kernel ~cluster:2 ~vpage:103 with
  | None -> Alcotest.fail "no replica in writer's cluster"
  | Some e ->
    Alcotest.(check int) "writer valid-write" Page.st_valid_write
      (Cell.peek e.Khash.payload.Page.vstate));
  (match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:103 with
  | None -> Alcotest.fail "master lost"
  | Some e ->
    let d = e.Khash.payload in
    Alcotest.(check int) "master invalidated" Page.st_invalid
      (Cell.peek d.Page.vstate);
    Alcotest.(check int) "owner recorded" (2 + 1) (Cell.peek d.Page.dir_owner);
    Alcotest.(check bool) "master reserve released after confirm" false
      (Locks.Reserve.write_reserved e.Khash.status));
  check_coherence kernel ~vpage:103

let test_ownership_pingpong () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:104 ~master_cluster:0 ~frame:104;
  Kernel.spawn_idle_except kernel ~active:[ 0; 4; 8; 12 ];
  (* One writer per cluster, sequential rounds via pauses. *)
  List.iteri
    (fun i proc ->
      Process.spawn eng (fun () ->
          let ctx = Kernel.ctx kernel proc in
          Process.pause eng (i * 20_000);
          Memmgr.fault kernel ctx ~vpage:104 ~write:true;
          Memmgr.unmap kernel ctx ~vpage:104;
          Ctx.idle_loop ctx))
    [ 0; 4; 8; 12 ];
  Engine.run eng;
  (* Final owner must be cluster 3 and everyone else invalid. *)
  (match Kernel.find_descriptor_untimed kernel ~cluster:3 ~vpage:104 with
  | None -> Alcotest.fail "no replica in last writer's cluster"
  | Some e ->
    Alcotest.(check int) "final writer owns" Page.st_valid_write
      (Cell.peek e.Khash.payload.Page.vstate));
  check_coherence kernel ~vpage:104;
  Alcotest.(check bool) "invalidations happened" true
    (Kernel.invalidations kernel >= 2)

let test_concurrent_writers_race () =
  let eng, _, kernel = make ~seed:5 () in
  Kernel.populate_page kernel ~vpage:105 ~master_cluster:0 ~frame:105;
  let writers = [ 1; 5; 9; 13 ] in
  Kernel.spawn_idle_except kernel ~active:writers;
  List.iter
    (fun proc ->
      Process.spawn eng (fun () ->
          let ctx = Kernel.ctx kernel proc in
          for _ = 1 to 3 do
            Memmgr.fault kernel ctx ~vpage:105 ~write:true;
            Memmgr.unmap kernel ctx ~vpage:105
          done;
          Ctx.idle_loop ctx))
    writers;
  Engine.run eng;
  Alcotest.(check int) "all faults completed" 12 (Kernel.faults kernel);
  check_coherence kernel ~vpage:105

let test_combining_single_rpc_per_cluster () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:106 ~master_cluster:0 ~frame:106;
  (* All four processors of cluster 1 read-fault simultaneously: the
     placeholder combines them into one replication. *)
  let readers = [ 4; 5; 6; 7 ] in
  Kernel.spawn_idle_except kernel ~active:readers;
  List.iter
    (fun proc ->
      Process.spawn eng (fun () ->
          Memmgr.fault kernel (Kernel.ctx kernel proc) ~vpage:106 ~write:false))
    readers;
  Engine.run eng;
  Alcotest.(check int) "exactly one replication" 1 (Kernel.replications kernel);
  match Kernel.find_descriptor_untimed kernel ~cluster:1 ~vpage:106 with
  | None -> Alcotest.fail "no replica"
  | Some e ->
    Alcotest.(check int) "all four mapped it" 4
      (Cell.peek e.Khash.payload.Page.refcount)

let test_lockless_calibration_path () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size:16 ~lockless:true ~seed:6 in
  Kernel.populate_page kernel ~vpage:107 ~master_cluster:0 ~frame:107;
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      Memmgr.fault kernel ctx ~vpage:107 ~write:true;
      Memmgr.unmap kernel ctx ~vpage:107);
  Engine.run eng;
  Alcotest.(check int) "no atomics at all" 0 (Machine.atomics machine)

let test_read_fault_downgrades_writer () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:108 ~master_cluster:0 ~frame:108;
  Kernel.spawn_idle_except kernel ~active:[ 4; 8 ];
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 4 in
      (* Cluster 1 takes write ownership... *)
      Memmgr.fault kernel ctx ~vpage:108 ~write:true;
      Ctx.idle_loop ctx);
  Process.spawn eng (fun () ->
      Process.pause eng 30_000;
      (* ...then cluster 2 reads: the writer must be downgraded. *)
      Memmgr.fault kernel (Kernel.ctx kernel 8) ~vpage:108 ~write:false);
  Engine.run eng;
  (match Kernel.find_descriptor_untimed kernel ~cluster:1 ~vpage:108 with
  | None -> Alcotest.fail "writer replica missing"
  | Some e ->
    Alcotest.(check bool) "writer downgraded" true
      (Cell.peek e.Khash.payload.Page.vstate <= Page.st_valid_read));
  check_coherence kernel ~vpage:108

let test_no_combining_path () =
  let eng, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:109 ~master_cluster:0 ~frame:109;
  let readers = [ 4; 5; 6; 7 ] in
  Kernel.spawn_idle_except kernel ~active:readers;
  List.iter
    (fun proc ->
      Process.spawn eng (fun () ->
          Memmgr.read_fault_no_combining kernel (Kernel.ctx kernel proc)
            ~vpage:109))
    readers;
  Engine.run eng;
  Alcotest.(check int) "all faults ran" 4 (Kernel.faults kernel);
  Alcotest.(check bool) "more than one replication without combining" true
    (Kernel.replications kernel >= 1);
  match Kernel.find_descriptor_untimed kernel ~cluster:1 ~vpage:109 with
  | None -> Alcotest.fail "no replica"
  | Some e ->
    Alcotest.(check int) "replica readable" Page.st_valid_read
      (Cell.peek e.Khash.payload.Page.vstate)

(* Random concurrent storms keep the coherence invariant. *)
let prop_coherence_under_storm =
  QCheck.Test.make ~name:"coherence invariant under random write storms"
    ~count:15
    QCheck.(pair (int_range 1 8) (int_bound 10_000))
    (fun (writers, seed) ->
      let eng, _, kernel = make ~seed () in
      Kernel.populate_page kernel ~vpage:200 ~master_cluster:0 ~frame:200;
      let procs = List.init writers (fun i -> (i * 3) mod 16) in
      let procs = List.sort_uniq compare procs in
      Kernel.spawn_idle_except kernel ~active:procs;
      List.iter
        (fun proc ->
          Process.spawn eng (fun () ->
              let ctx = Kernel.ctx kernel proc in
              for _ = 1 to 2 do
                Memmgr.fault kernel ctx ~vpage:200 ~write:true;
                Memmgr.unmap kernel ctx ~vpage:200
              done;
              Ctx.idle_loop ctx))
        procs;
      Engine.run eng;
      let states = ref [] in
      let n = Clustering.n_clusters (Kernel.clustering kernel) in
      for c = 0 to n - 1 do
        match Kernel.find_descriptor_untimed kernel ~cluster:c ~vpage:200 with
        | None -> ()
        | Some e -> states := Cell.peek e.Khash.payload.Page.vstate :: !states
      done;
      List.length (List.filter (fun s -> s = Page.st_valid_write) !states) <= 1)

let suite =
  [
    Alcotest.test_case "fault maps the page" `Quick test_simple_fault_maps_page;
    Alcotest.test_case "unmap decrements" `Quick test_unmap_decrements;
    Alcotest.test_case "read fault replicates" `Quick test_read_fault_replicates;
    Alcotest.test_case "write fault takes ownership" `Quick
      test_write_fault_takes_ownership;
    Alcotest.test_case "ownership ping-pong" `Quick test_ownership_pingpong;
    Alcotest.test_case "concurrent writers race safely" `Quick
      test_concurrent_writers_race;
    Alcotest.test_case "combining: one RPC per cluster" `Quick
      test_combining_single_rpc_per_cluster;
    Alcotest.test_case "lockless calibration path" `Quick
      test_lockless_calibration_path;
    Alcotest.test_case "read fault downgrades a writer" `Quick
      test_read_fault_downgrades_writer;
    Alcotest.test_case "no-combining read fault" `Quick test_no_combining_path;
    QCheck_alcotest.to_alcotest prop_coherence_under_storm;
  ]
