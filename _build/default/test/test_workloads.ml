(* Tests for the workload harnesses: each runs at reduced scale and is
   checked for sane, internally consistent results. The paper-facing claim
   checks live in test_experiments.ml. *)

open Eventsim
open Hector
open Locks
open Workloads

(* -- barrier ------------------------------------------------------------- *)

let test_barrier_releases_together () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let barrier = Barrier.create ~parties:4 in
  let rng = Rng.create 3 in
  let released = ref [] in
  for p = 0 to 3 do
    let ctx = Ctx.create machine ~proc:p (Rng.split rng) in
    Process.spawn eng (fun () ->
        Ctx.work ctx (100 * (p + 1));
        Barrier.wait barrier ctx;
        released := (p, Machine.now machine) :: !released)
  done;
  Engine.run eng;
  let times = List.map snd !released in
  let latest_arrival = 400 in
  List.iter
    (fun t ->
      Alcotest.(check bool) "released only after the last arrival" true
        (t >= latest_arrival))
    times;
  Alcotest.(check int) "all released" 4 (List.length times)

let test_barrier_reusable () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let barrier = Barrier.create ~parties:2 in
  let rng = Rng.create 4 in
  let rounds_done = ref 0 in
  for p = 0 to 1 do
    let ctx = Ctx.create machine ~proc:p (Rng.split rng) in
    Process.spawn eng (fun () ->
        for _ = 1 to 5 do
          Ctx.work ctx (10 + (p * 7));
          Barrier.wait barrier ctx;
          incr rounds_done
        done)
  done;
  Engine.run eng;
  Alcotest.(check int) "5 rounds x 2 parties" 10 !rounds_done

let test_barrier_rejects_zero_parties () =
  Alcotest.(check bool) "rejected" true
    (match Barrier.create ~parties:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- measure ---------------------------------------------------------------- *)

let test_measure_summary () =
  let stat = Stat.create "x" in
  (* 16 cycles = 1 us on HECTOR. *)
  List.iter (Stat.add stat) [ 16; 32; 48 ];
  let s = Measure.of_stat Config.hector ~label:"x" stat in
  Alcotest.(check int) "n" 3 s.Measure.n;
  Alcotest.(check (float 0.01)) "mean us" 2.0 s.Measure.mean_us;
  Alcotest.(check (float 0.01)) "min us" 1.0 s.Measure.min_us;
  Alcotest.(check (float 0.01)) "max us" 3.0 s.Measure.max_us;
  Alcotest.(check (float 0.001)) "no tail" 0.0 s.Measure.frac_above_2ms

(* -- uncontended -------------------------------------------------------------- *)

let test_uncontended_measured_matches_model () =
  List.iter
    (fun (r : Uncontended.result) ->
      match r.Uncontended.predicted_us with
      | Some model ->
        Alcotest.(check (float 0.02))
          (Lock.algo_name r.Uncontended.algo ^ " matches static model")
          model r.Uncontended.pair_us
      | None -> ())
    (Uncontended.run_all ~iters:200 ())

(* -- lock stress ------------------------------------------------------------- *)

let test_lock_stress_sane () =
  let r =
    Lock_stress.run
      ~config:{ Lock_stress.default_config with p = 4; window_us = 2000.0 }
      Lock.Mcs_h2
  in
  Alcotest.(check bool) "many acquisitions" true (r.Lock_stress.acquisitions > 50);
  Alcotest.(check bool) "latency positive" true
    (r.Lock_stress.summary.Measure.mean_us > 0.0);
  Alcotest.(check bool) "atomics happened" true (r.Lock_stress.atomics > 0)

let test_lock_stress_single_proc_near_uncontended () =
  let r =
    Lock_stress.run
      ~config:
        { Lock_stress.default_config with p = 1; window_us = 2000.0 }
      Lock.Mcs_h2
  in
  (* One processor: pair latency must be the uncontended 3.69us-ish. *)
  Alcotest.(check bool) "close to uncontended" true
    (r.Lock_stress.summary.Measure.mean_us < 4.0)

(* -- independent faults --------------------------------------------------------- *)

let test_independent_faults_counts () =
  let config =
    { Independent_faults.default_config with p = 4; iters = 20 }
  in
  let r = Independent_faults.run ~config () in
  Alcotest.(check int) "one sample per fault" 80 r.Independent_faults.summary.Measure.n;
  Alcotest.(check int) "kernel counted the faults" 80 r.Independent_faults.faults;
  Alcotest.(check int) "private pages: no cross-cluster RPCs" 0
    r.Independent_faults.rpcs;
  Alcotest.(check bool) "fault latency in a sane band" true
    (r.Independent_faults.summary.Measure.mean_us > 100.0
    && r.Independent_faults.summary.Measure.mean_us < 400.0)

(* -- shared faults ----------------------------------------------------------------- *)

let test_shared_faults_single_cluster_no_rpcs () =
  let config =
    { Shared_faults.default_config with p = 4; rounds = 5; cluster_size = 16 }
  in
  let r = Shared_faults.run ~config () in
  Alcotest.(check int) "samples" (4 * 5 * config.Shared_faults.n_pages)
    r.Shared_faults.summary.Measure.n;
  Alcotest.(check int) "one cluster: no RPCs" 0 r.Shared_faults.rpcs

let test_shared_faults_cross_cluster_traffic () =
  let config =
    { Shared_faults.default_config with p = 8; rounds = 5; cluster_size = 4 }
  in
  let r = Shared_faults.run ~config () in
  Alcotest.(check bool) "RPCs happened" true (r.Shared_faults.rpcs > 0);
  Alcotest.(check bool) "replications happened" true
    (r.Shared_faults.replications > 0);
  Alcotest.(check bool) "invalidations happened" true
    (r.Shared_faults.invalidations > 0)

(* -- calibration --------------------------------------------------------------------- *)

let test_calibration_anchors () =
  let c = Calibration.run () in
  let within name lo hi v =
    Alcotest.(check bool)
      (Printf.sprintf "%s %.1f in [%.0f, %.0f]" name v lo hi)
      true
      (v >= lo && v <= hi)
  in
  (* The paper's anchors, with generous bands: 160us fault (40us locks),
     27us null RPC, 88us lookup+replicate. *)
  within "soft fault" 130.0 200.0 c.Calibration.soft_fault_us;
  within "lock overhead" 25.0 55.0 c.Calibration.lock_overhead_us;
  within "null rpc" 20.0 36.0 c.Calibration.null_rpc_us;
  within "replicate extra" 60.0 120.0 c.Calibration.replicate_extra_us

(* -- hash stress --------------------------------------------------------------------- *)

let test_hash_stress_all_modes_run () =
  List.iter
    (fun (r : Hash_stress.result) ->
      Alcotest.(check int)
        (Hkernel.Khash.granularity_name r.Hash_stress.granularity ^ " samples")
        (4 * 50) r.Hash_stress.summary.Measure.n)
    (Hash_stress.run_all
       ~config:{ Hash_stress.default_config with ops = 50 }
       ())

let test_hash_stress_space_accounting () =
  let rs =
    Hash_stress.run_all ~config:{ Hash_stress.default_config with ops = 10 } ()
  in
  let find g =
    List.find (fun (r : Hash_stress.result) -> r.Hash_stress.granularity = g) rs
  in
  Alcotest.(check int) "hybrid needs one lock word" 1
    (find Hkernel.Khash.Hybrid).Hash_stress.lock_words;
  Alcotest.(check bool) "fine needs many" true
    ((find Hkernel.Khash.Fine).Hash_stress.lock_words > 32)

(* -- replication storm --------------------------------------------------------------- *)

let test_replication_storm_combining_bounds_demand () =
  let config = { Replication_storm.default_config with p = 8; storms = 6 } in
  let comb, direct = Replication_storm.run_both ~config () in
  (* 8 processors over 2 clusters; cluster 0 is the master. Combining must
     replicate once per non-master cluster per storm. *)
  Alcotest.(check (float 0.01)) "combining replicates once per cluster" 1.0
    comb.Replication_storm.replications_per_storm;
  Alcotest.(check bool) "direct replicates at least as much" true
    (direct.Replication_storm.replications_per_storm
    >= comb.Replication_storm.replications_per_storm)

(* -- destruction storm ----------------------------------------------------------------- *)

let test_destruction_storm_consistency () =
  List.iter
    (fun strategy ->
      let config =
        {
          Destruction.default_config with
          n_programs = 3;
          children = 4;
          strategy;
        }
      in
      let r = Destruction.run ~config () in
      (* children plus the root, per program *)
      Alcotest.(check int)
        (Hkernel.Procs.strategy_name strategy ^ ": all processes destroyed")
        (3 * (4 + 1))
        r.Destruction.destroys)
    [ Hkernel.Procs.Optimistic; Hkernel.Procs.Pessimistic ]

(* -- trylock starvation ------------------------------------------------------------------ *)

let test_trylock_starvation_shape () =
  let config =
    { Trylock_starvation.default_config with window_us = 4000.0 }
  in
  let r = Trylock_starvation.run ~config () in
  Alcotest.(check bool) "attempts made" true (r.Trylock_starvation.try_attempts > 10);
  Alcotest.(check bool) "trylock starves under saturation" true
    (r.Trylock_starvation.try_success_rate < 0.2);
  Alcotest.(check int) "deferred work all completes"
    r.Trylock_starvation.deferred_posted r.Trylock_starvation.deferred_completed

let suite =
  [
    Alcotest.test_case "barrier releases together" `Quick
      test_barrier_releases_together;
    Alcotest.test_case "barrier is reusable" `Quick test_barrier_reusable;
    Alcotest.test_case "barrier rejects zero parties" `Quick
      test_barrier_rejects_zero_parties;
    Alcotest.test_case "measure summary conversion" `Quick test_measure_summary;
    Alcotest.test_case "uncontended matches the static model" `Quick
      test_uncontended_measured_matches_model;
    Alcotest.test_case "lock stress sanity" `Quick test_lock_stress_sane;
    Alcotest.test_case "lock stress, single processor" `Quick
      test_lock_stress_single_proc_near_uncontended;
    Alcotest.test_case "independent faults accounting" `Quick
      test_independent_faults_counts;
    Alcotest.test_case "shared faults, one cluster" `Quick
      test_shared_faults_single_cluster_no_rpcs;
    Alcotest.test_case "shared faults, cross-cluster traffic" `Quick
      test_shared_faults_cross_cluster_traffic;
    Alcotest.test_case "calibration anchors near the paper's" `Quick
      test_calibration_anchors;
    Alcotest.test_case "hash stress runs in all modes" `Quick
      test_hash_stress_all_modes_run;
    Alcotest.test_case "hash stress space accounting" `Quick
      test_hash_stress_space_accounting;
    Alcotest.test_case "combining bounds master demand" `Quick
      test_replication_storm_combining_bounds_demand;
    Alcotest.test_case "destruction storm consistency" `Quick
      test_destruction_storm_consistency;
    Alcotest.test_case "trylock starvation shape" `Quick
      test_trylock_starvation_shape;
  ]
