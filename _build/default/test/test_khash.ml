(* Tests for the hybrid-locked chained hash table. *)

open Eventsim
open Hector
open Locks
open Hkernel

let make ?(granularity = Khash.Hybrid) ?(lock_algo = Lock.Mcs_h2) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let table =
    Khash.create machine ~granularity ~nbins:16 ~lock_algo
      ~homes:(List.init 16 (fun i -> i))
  in
  let ctx p = Ctx.create machine ~proc:p (Rng.create (400 + p)) in
  (eng, machine, table, ctx)

let simulate eng f =
  Process.spawn eng f;
  Engine.run eng

let test_insert_and_find () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 42 ~make:(fun _ -> "hello"));
      match Khash.reserve_existing table c 42 with
      | None -> Alcotest.fail "not found"
      | Some e ->
        Alcotest.(check string) "payload" "hello" e.Khash.payload;
        Alcotest.(check int) "key" 42 e.Khash.key;
        Khash.release_reserve c e);
  Alcotest.(check int) "size" 1 (Khash.size table)

let test_missing_key () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      Alcotest.(check bool) "absent" true
        (Khash.reserve_existing table (ctx 0) 7 = None))

let test_reserve_blocks_second_reserver () =
  let eng, machine, table, ctx = make () in
  let order = ref [] in
  simulate eng (fun () ->
      ignore (Khash.insert table (ctx 0) 1 ~make:(fun _ -> ())));
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      match Khash.reserve_existing table c 1 with
      | Some e ->
        order := ("a-got", Machine.now machine) :: !order;
        Ctx.work c 1000;
        Khash.release_reserve c e;
        order := ("a-rel", Machine.now machine) :: !order
      | None -> Alcotest.fail "a missing");
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 50;
      match Khash.reserve_existing table c 1 with
      | Some e ->
        order := ("b-got", Machine.now machine) :: !order;
        Khash.release_reserve c e
      | None -> Alcotest.fail "b missing");
  Engine.run eng;
  match List.rev !order with
  | [ ("a-got", _); ("a-rel", t_rel); ("b-got", t_b) ] ->
    Alcotest.(check bool) "b waited for a's release" true (t_b >= t_rel);
    Alcotest.(check bool) "conflict recorded" true
      (Khash.reserve_conflicts table >= 1)
  | other ->
    Alcotest.failf "unexpected order: %s"
      (String.concat "," (List.map fst other))

let test_reserve_or_insert_placeholder () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      (match Khash.reserve_or_insert table c 9 ~make:(fun _ -> "new") with
      | `Inserted e ->
        Alcotest.(check string) "fresh payload" "new" e.Khash.payload;
        (* Placeholder is born reserved: the combining-tree trick. *)
        Alcotest.(check bool) "born reserved" true
          (Reserve.write_reserved e.Khash.status);
        Khash.release_reserve c e
      | `Reserved _ -> Alcotest.fail "expected insertion");
      match Khash.reserve_or_insert table c 9 ~make:(fun _ -> "other") with
      | `Reserved e ->
        Alcotest.(check string) "existing payload" "new" e.Khash.payload;
        Khash.release_reserve c e
      | `Inserted _ -> Alcotest.fail "duplicate insertion")

let test_try_reserve_existing_fails_fast () =
  let eng, _, table, ctx = make () in
  Process.spawn eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 5 ~make:(fun _ -> ()));
      match Khash.reserve_existing table c 5 with
      | Some e ->
        Ctx.work c 2000;
        Khash.release_reserve c e
      | None -> Alcotest.fail "missing");
  Process.spawn eng (fun () ->
      let c = ctx 1 in
      Process.pause eng 700;
      (* While reserved: the non-blocking path must report the conflict. *)
      (match Khash.try_reserve_existing table c 5 with
      | `Would_deadlock -> ()
      | `Absent -> Alcotest.fail "should exist"
      | `Reserved _ -> Alcotest.fail "should be reserved by proc 0");
      match Khash.try_reserve_existing table c 999 with
      | `Absent -> ()
      | _ -> Alcotest.fail "999 should be absent");
  Engine.run eng

let test_remove () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      ignore (Khash.insert table c 3 ~make:(fun _ -> ()));
      Alcotest.(check bool) "removed" true (Khash.remove table c 3);
      Alcotest.(check bool) "gone" true (Khash.reserve_existing table c 3 = None);
      Alcotest.(check bool) "second remove false" false (Khash.remove table c 3));
  Alcotest.(check int) "size back to zero" 0 (Khash.size table)

let test_search_charges_probes () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      for k = 0 to 31 do
        ignore (Khash.insert table c k ~make:(fun _ -> ()))
      done;
      let before = Khash.probes table in
      (match Khash.reserve_existing table c 17 with
      | Some e -> Khash.release_reserve c e
      | None -> Alcotest.fail "missing");
      Alcotest.(check bool) "probes counted" true (Khash.probes table > before))

let test_with_element_all_granularities () =
  List.iter
    (fun granularity ->
      let eng, _, table, ctx = make ~granularity () in
      let hits = ref 0 in
      simulate eng (fun () ->
          let c = ctx 0 in
          ignore (Khash.insert table c 11 ~make:(fun _ -> ())));
      for p = 0 to 3 do
        Process.spawn eng (fun () ->
            let c = ctx p in
            for _ = 1 to 10 do
              match Khash.with_element table c 11 (fun _ -> incr hits) with
              | Some () -> ()
              | None -> Alcotest.fail "element vanished"
            done)
      done;
      Engine.run eng;
      Alcotest.(check int)
        (Khash.granularity_name granularity ^ " all ops ran")
        40 !hits)
    [ Khash.Hybrid; Khash.Coarse; Khash.Fine ]

let test_with_element_missing () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      Alcotest.(check bool) "None for missing" true
        (Khash.with_element table (ctx 0) 123 (fun _ -> ()) = None))

let test_untimed_iteration () =
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      List.iter
        (fun k -> ignore (Khash.insert table c k ~make:(fun _ -> k * 10)))
        [ 1; 2; 3; 4; 5 ]);
  let keys = ref [] in
  Khash.iter_untimed table (fun e -> keys := e.Khash.key :: !keys);
  Alcotest.(check (list int)) "all keys" [ 1; 2; 3; 4; 5 ]
    (List.sort compare !keys);
  Alcotest.(check bool) "mem" true (Khash.mem_untimed table 3);
  Alcotest.(check bool) "not mem" false (Khash.mem_untimed table 9)

let test_coarse_lock_masks_interrupts () =
  (* with_coarse must set the soft mask so services cannot deadlock on the
     holder's own coarse lock. *)
  let eng, _, table, ctx = make () in
  simulate eng (fun () ->
      let c = ctx 0 in
      Khash.with_coarse table c (fun () ->
          Alcotest.(check bool) "masked inside" true (Ctx.soft_masked c));
      Alcotest.(check bool) "unmasked outside" false (Ctx.soft_masked c))

let prop_untimed_matches_inserted =
  QCheck.Test.make ~name:"table contents = inserted \\ removed" ~count:50
    QCheck.(list (pair (int_range 0 50) bool))
    (fun ops ->
      let eng, _, table, ctx = make () in
      let expected = Hashtbl.create 16 in
      Process.spawn eng (fun () ->
          let c = ctx 0 in
          List.iter
            (fun (k, ins) ->
              if ins then begin
                if not (Hashtbl.mem expected k) then begin
                  Hashtbl.replace expected k ();
                  ignore (Khash.insert table c k ~make:(fun _ -> ()))
                end
              end
              else begin
                Hashtbl.remove expected k;
                ignore (Khash.remove table c k)
              end)
            ops);
      Engine.run eng;
      let actual = ref [] in
      Khash.iter_untimed table (fun e -> actual := e.Khash.key :: !actual);
      List.sort compare !actual
      = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) expected []))

let suite =
  [
    Alcotest.test_case "insert and find" `Quick test_insert_and_find;
    Alcotest.test_case "missing key" `Quick test_missing_key;
    Alcotest.test_case "reserve blocks a second reserver" `Quick
      test_reserve_blocks_second_reserver;
    Alcotest.test_case "reserve_or_insert placeholder" `Quick
      test_reserve_or_insert_placeholder;
    Alcotest.test_case "try_reserve_existing fails fast" `Quick
      test_try_reserve_existing_fails_fast;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "search charges probes" `Quick test_search_charges_probes;
    Alcotest.test_case "with_element under all granularities" `Quick
      test_with_element_all_granularities;
    Alcotest.test_case "with_element on a missing key" `Quick
      test_with_element_missing;
    Alcotest.test_case "untimed iteration" `Quick test_untimed_iteration;
    Alcotest.test_case "coarse sections soft-mask interrupts" `Quick
      test_coarse_lock_masks_interrupts;
    QCheck_alcotest.to_alcotest prop_untimed_matches_inserted;
  ]
