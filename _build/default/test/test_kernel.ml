(* Direct tests for the Kernel wiring: creation variants, the memory-bound
   work model, idle service loops and counters. *)

open Eventsim
open Hector
open Hkernel

let make ?(cluster_size = 4) ?(lockless = false) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~lockless ~seed:111 in
  (eng, machine, kernel)

let test_creation_shapes () =
  List.iter
    (fun cluster_size ->
      let _, _, kernel = make ~cluster_size () in
      Alcotest.(check int)
        (Printf.sprintf "clusters for size %d" cluster_size)
        ((16 + cluster_size - 1) / cluster_size)
        (Clustering.n_clusters (Kernel.clustering kernel));
      Alcotest.(check int) "16 contexts" 16 (Kernel.n_procs kernel))
    [ 1; 2; 4; 8; 16 ]

let test_cluster_structures_distinct () =
  let _, _, kernel = make () in
  let c0 = Kernel.cluster kernel 0 and c1 = Kernel.cluster kernel 1 in
  Alcotest.(check bool) "distinct hashes" true
    (c0.Kernel.page_hash != c1.Kernel.page_hash);
  Alcotest.(check int) "ids" 0 c0.Kernel.c_id;
  Alcotest.(check (list int)) "procs of cluster 1" [ 4; 5; 6; 7 ]
    c1.Kernel.procs

let test_kernel_work_duration () =
  let eng, machine, kernel = make () in
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      let t0 = Machine.now machine in
      Kernel.kernel_work kernel ctx 500;
      let dt = Machine.now machine - t0 in
      Alcotest.(check bool) "at least the requested cycles" true (dt >= 500);
      (* Memory-bound, not a sleep: reads must have been issued. *)
      Alcotest.(check bool) "issues memory accesses" true
        (Machine.reads machine > 10));
  Engine.run eng

let test_struct_work_hits_the_right_module () =
  let eng, machine, kernel = make () in
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      Kernel.struct_work kernel ctx ~home:9 400);
  Engine.run eng;
  Alcotest.(check bool) "module 9 served the accesses" true
    (Resource.n_requests (Machine.mem_resource machine 9) > 5)

let test_lockless_kernel_uses_null_locks () =
  let _, _, kernel = make ~lockless:true () in
  Alcotest.(check bool) "lockless flag" true (Kernel.lockless kernel);
  Alcotest.(check bool) "null algo" true (Kernel.lock_algo kernel = Locks.Lock.Null)

let test_populate_and_find () =
  let _, _, kernel = make () in
  Kernel.populate_page kernel ~vpage:7 ~master_cluster:2 ~frame:7;
  (match Kernel.find_descriptor_untimed kernel ~cluster:2 ~vpage:7 with
  | Some e ->
    let d = e.Khash.payload in
    Alcotest.(check int) "master" 2 d.Page.master_cluster;
    Alcotest.(check int) "starts valid-write" Page.st_valid_write
      (Cell.peek d.Page.vstate);
    Alcotest.(check int) "owner is the master" 3 (Cell.peek d.Page.dir_owner)
  | None -> Alcotest.fail "not found at master");
  Alcotest.(check bool) "absent elsewhere" true
    (Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:7 = None)

let test_idle_procs_serve_and_terminate () =
  let eng, _, kernel = make () in
  (* All processors idle except 0; the engine must terminate even though 15
     idle loops are parked. *)
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  let served = ref 0 in
  Process.spawn eng (fun () ->
      let ctx = Kernel.ctx kernel 0 in
      for target = 1 to 15 do
        (match
          Rpc.call (Kernel.rpc kernel) ctx ~target (fun _ ->
              incr served;
              Rpc.Ok 0)
        with
        | Rpc.Ok _ -> ()
        | _ -> Alcotest.fail "rpc failed")
      done);
  Engine.run eng;
  Alcotest.(check int) "every idle processor served" 15 !served

let test_counters_start_zero () =
  let _, _, kernel = make () in
  Alcotest.(check int) "faults" 0 (Kernel.faults kernel);
  Alcotest.(check int) "retries" 0 (Kernel.retries kernel);
  Alcotest.(check int) "replications" 0 (Kernel.replications kernel);
  Kernel.count_fault kernel;
  Kernel.count_retry kernel;
  Alcotest.(check int) "fault counted" 1 (Kernel.faults kernel);
  Alcotest.(check int) "retry counted" 1 (Kernel.retries kernel)

let test_zero_costs_kernel_runs () =
  (* The Costs.zero variant must still execute a fault correctly. *)
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel =
    Kernel.create machine ~cluster_size:4 ~costs:Costs.zero ~seed:7
  in
  Kernel.populate_page kernel ~vpage:3 ~master_cluster:0 ~frame:3;
  Process.spawn eng (fun () ->
      Memmgr.fault kernel (Kernel.ctx kernel 0) ~vpage:3 ~write:true);
  Engine.run eng;
  Alcotest.(check int) "fault ran" 1 (Kernel.faults kernel)

let suite =
  [
    Alcotest.test_case "creation shapes" `Quick test_creation_shapes;
    Alcotest.test_case "per-cluster structures are distinct" `Quick
      test_cluster_structures_distinct;
    Alcotest.test_case "kernel_work is memory-bound" `Quick
      test_kernel_work_duration;
    Alcotest.test_case "struct_work hits its module" `Quick
      test_struct_work_hits_the_right_module;
    Alcotest.test_case "lockless kernel" `Quick test_lockless_kernel_uses_null_locks;
    Alcotest.test_case "populate and find" `Quick test_populate_and_find;
    Alcotest.test_case "idle processors serve and terminate" `Quick
      test_idle_procs_serve_and_terminate;
    Alcotest.test_case "counters" `Quick test_counters_start_zero;
    Alcotest.test_case "zero-cost kernel runs" `Quick test_zero_costs_kernel_runs;
  ]
