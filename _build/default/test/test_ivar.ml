(* Tests for one-shot ivars. *)

open Eventsim

let test_fill_then_read () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Alcotest.(check bool) "empty" false (Ivar.is_full iv);
  Ivar.fill eng iv 42;
  Alcotest.(check bool) "full" true (Ivar.is_full iv);
  Alcotest.(check (option int)) "peek" (Some 42) (Ivar.peek iv);
  let got = ref 0 in
  Process.spawn eng (fun () -> got := Ivar.read iv);
  Engine.run eng;
  Alcotest.(check int) "read full" 42 !got

let test_read_blocks_until_fill () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref (-1) in
  let when_read = ref (-1) in
  Process.spawn eng (fun () ->
      got := Ivar.read iv;
      when_read := Engine.now eng);
  Process.spawn eng (fun () ->
      Process.pause eng 100;
      Ivar.fill eng iv 7);
  Engine.run eng;
  Alcotest.(check int) "value" 7 !got;
  Alcotest.(check int) "woke at fill time" 100 !when_read

let test_multiple_readers_wake_in_order () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Process.spawn eng (fun () ->
        Process.pause eng i;
        ignore (Ivar.read iv);
        log := i :: !log)
  done;
  Process.spawn eng (fun () ->
      Process.pause eng 50;
      Ivar.fill eng iv ());
  Engine.run eng;
  Alcotest.(check (list int)) "arrival order" [ 1; 2; 3 ] (List.rev !log)

let test_double_fill_raises () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill eng iv 1;
  Alcotest.check_raises "double" Ivar.Already_filled (fun () ->
      Ivar.fill eng iv 2)

let suite =
  [
    Alcotest.test_case "fill then read" `Quick test_fill_then_read;
    Alcotest.test_case "read blocks until fill" `Quick
      test_read_blocks_until_fill;
    Alcotest.test_case "readers wake in arrival order" `Quick
      test_multiple_readers_wake_in_order;
    Alcotest.test_case "double fill raises" `Quick test_double_fill_raises;
  ]
