(* Smoke tests for the report printers and the TSV emitters: every printer
   renders its experiment's output without raising, and the .dat files are
   well-formed. Run on reduced-size experiments. *)

open Hurricane
open Locks
open Workloads

let buf_print f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let nonempty name s =
  Alcotest.(check bool) (name ^ " produced output") true (String.length s > 40)

let test_fig4_printer () =
  nonempty "fig4" (buf_print (fun ppf -> Report.fig4 ppf (Experiments.fig4 ())))

let test_uncontended_printer () =
  nonempty "uncontended"
    (buf_print (fun ppf -> Report.uncontended ppf (Experiments.uncontended ())))

let test_fig5_printer () =
  let series = Experiments.fig5 ~procs:[ 1; 2 ] ~window_us:1000.0 () in
  nonempty "fig5"
    (buf_print (fun ppf -> Report.fig5 ppf ~name:"FIG5a" ~hold_us:0.0 series))

let test_fig7_printer () =
  let series = Experiments.fig7a ~procs:[ 1; 2 ] ~iters:10 () in
  nonempty "fig7"
    (buf_print (fun ppf ->
         Report.fig7 ppf ~name:"FIG7a" ~xlabel:"p" ~claim:"c" series))

let test_constants_printer () =
  nonempty "constants"
    (buf_print (fun ppf -> Report.constants ppf (Experiments.constants ())))

let test_section_format () =
  let s = buf_print (fun ppf -> Report.section ppf "TITLE" "CLAIM") in
  Alcotest.(check bool) "has title" true
    (Astring.String.is_infix ~affix:"TITLE" s
    || String.length s > 0 && String.sub s 0 1 = "-")

let test_dat_files () =
  let dir = Filename.temp_file "hurricane" "" in
  Sys.remove dir;
  let series = Experiments.fig5 ~procs:[ 1; 2 ] ~window_us:1000.0 () in
  Sys.mkdir dir 0o755;
  let path = Dat.fig5 dir ~name:"t5" series in
  let ic = open_in path in
  let header = input_line ic in
  let row1 = input_line ic in
  let row2 = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header is a comment" true (header.[0] = '#');
  let cols s = List.length (String.split_on_char '\t' s) in
  Alcotest.(check int) "columns = 1 + algorithms" (1 + 5) (cols row1);
  Alcotest.(check int) "rows consistent" (cols row1) (cols row2);
  Alcotest.(check bool) "x values" true
    (String.sub row1 0 1 = "1" && String.sub row2 0 1 = "2")

let test_dat_fig7 () =
  let dir = Filename.temp_file "hurricane" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let series = Experiments.fig7a ~procs:[ 1; 4 ] ~iters:10 () in
  let path = Dat.fig7 dir ~name:"t7" series in
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check bool) "mentions the algorithms" true
    (Astring.String.is_infix ~affix:"H1-MCS" header
    && Astring.String.is_infix ~affix:"Spin" header)

let test_gnuplot_script () =
  let dir = Filename.temp_file "hurricane" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Dat.gnuplot_script dir in
  Alcotest.(check bool) "written" true (Sys.file_exists path)

let test_measure_pp () =
  let stat = Eventsim.Stat.create "x" in
  Eventsim.Stat.add stat 160;
  let s =
    buf_print (fun ppf ->
        Measure.pp ppf (Measure.of_stat Hector.Config.hector ~label:"x" stat))
  in
  Alcotest.(check bool) "mentions the label" true
    (Astring.String.is_infix ~affix:"x" s);
  ignore Lock.Mcs_h2

let suite =
  [
    Alcotest.test_case "fig4 printer" `Quick test_fig4_printer;
    Alcotest.test_case "uncontended printer" `Quick test_uncontended_printer;
    Alcotest.test_case "fig5 printer" `Quick test_fig5_printer;
    Alcotest.test_case "fig7 printer" `Quick test_fig7_printer;
    Alcotest.test_case "constants printer" `Quick test_constants_printer;
    Alcotest.test_case "section format" `Quick test_section_format;
    Alcotest.test_case "fig5 .dat files" `Quick test_dat_files;
    Alcotest.test_case "fig7 .dat files" `Quick test_dat_fig7;
    Alcotest.test_case "gnuplot script" `Quick test_gnuplot_script;
    Alcotest.test_case "Measure.pp" `Quick test_measure_pp;
  ]
