(* Tests for effect-based simulated processes. *)

open Eventsim

let test_pause_advances_time () =
  let eng = Engine.create () in
  let seen = ref (-1) in
  Process.spawn eng (fun () ->
      Process.pause eng 100;
      seen := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "resumed at 100" 100 !seen

let test_pause_zero_is_noop () =
  let eng = Engine.create () in
  let ran = ref false in
  Process.spawn eng (fun () ->
      Process.pause eng 0;
      ran := true;
      Alcotest.(check int) "no time passed" 0 (Engine.now eng));
  Engine.run eng;
  Alcotest.(check bool) "ran" true !ran

let test_wait_until () =
  let eng = Engine.create () in
  let log = ref [] in
  Process.spawn eng (fun () ->
      Process.wait_until eng 50;
      log := ("a", Engine.now eng) :: !log;
      Process.wait_until eng 70;
      log := ("b", Engine.now eng) :: !log);
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "waits hit their times"
    [ ("a", 50); ("b", 70) ]
    (List.rev !log)

let test_wait_until_past_rejected () =
  let eng = Engine.create () in
  let raised = ref false in
  Process.spawn eng (fun () ->
      Process.pause eng 10;
      (try Process.wait_until eng 5 with Invalid_argument _ -> raised := true));
  Engine.run eng;
  Alcotest.(check bool) "raised" true !raised

let test_spawn_at () =
  let eng = Engine.create () in
  let started = ref (-1) in
  Process.spawn_at eng ~at:42 (fun () -> started := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "starts at 42" 42 !started

let test_two_processes_interleave () =
  let eng = Engine.create () in
  let log = ref [] in
  let worker name delay =
    Process.spawn eng (fun () ->
        for i = 1 to 3 do
          Process.pause eng delay;
          log := (name, i, Engine.now eng) :: !log
        done)
  in
  worker "fast" 10;
  worker "slow" 25;
  Engine.run eng;
  let names = List.map (fun (n, _, _) -> n) (List.rev !log) in
  Alcotest.(check (list string))
    "interleaving by time"
    [ "fast"; "fast"; "slow"; "fast"; "slow"; "slow" ]
    names

let test_suspend_manual_resume () =
  let eng = Engine.create () in
  let resume_slot = ref None in
  let state = ref "init" in
  Process.spawn eng (fun () ->
      state := "suspended";
      Process.suspend (fun resume -> resume_slot := Some resume);
      state := "resumed");
  Engine.run eng;
  Alcotest.(check string) "parked" "suspended" !state;
  (match !resume_slot with
  | Some resume -> resume ()
  | None -> Alcotest.fail "no resume captured");
  Alcotest.(check string) "woke" "resumed" !state

let test_yield_lets_same_time_events_run () =
  let eng = Engine.create () in
  let log = ref [] in
  Process.spawn eng (fun () ->
      log := "a1" :: !log;
      Process.yield eng;
      log := "a2" :: !log);
  Process.spawn eng (fun () -> log := "b" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "b ran between" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let test_many_processes () =
  let eng = Engine.create () in
  let finished = ref 0 in
  for i = 1 to 200 do
    Process.spawn eng (fun () ->
        Process.pause eng i;
        incr finished)
  done;
  Engine.run eng;
  Alcotest.(check int) "all finished" 200 !finished;
  Alcotest.(check int) "time is max delay" 200 (Engine.now eng)

let suite =
  [
    Alcotest.test_case "pause advances virtual time" `Quick
      test_pause_advances_time;
    Alcotest.test_case "pause 0 is a no-op" `Quick test_pause_zero_is_noop;
    Alcotest.test_case "wait_until" `Quick test_wait_until;
    Alcotest.test_case "wait_until in the past fails" `Quick
      test_wait_until_past_rejected;
    Alcotest.test_case "spawn_at" `Quick test_spawn_at;
    Alcotest.test_case "two processes interleave" `Quick
      test_two_processes_interleave;
    Alcotest.test_case "manual suspend/resume" `Quick test_suspend_manual_resume;
    Alcotest.test_case "yield" `Quick test_yield_lets_same_time_events_run;
    Alcotest.test_case "200 processes" `Quick test_many_processes;
  ]
