(* Tests for the copy-on-write fault path (Sections 2.3 / 2.5). *)

open Eventsim
open Hector
open Hkernel

let make ?(cluster_size = 4) ?(seed = 91) () =
  let eng = Engine.create () in
  let machine = Machine.create eng Config.hector in
  let kernel = Kernel.create machine ~cluster_size ~seed in
  (eng, machine, kernel)

let populate_shared kernel ~vpage ~shares =
  Kernel.populate_page kernel ~vpage ~master_cluster:0 ~frame:vpage;
  match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage with
  | Some e -> Cell.poke e.Khash.payload.Page.refcount shares
  | None -> assert false

let shared_exists kernel ~vpage =
  Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage <> None

let test_single_break () =
  let eng, _, kernel = make () in
  populate_shared kernel ~vpage:500 ~shares:2;
  Kernel.spawn_idle_except kernel ~active:[ 4 ];
  let got = ref None in
  Process.spawn eng (fun () ->
      got :=
        Some
          (Memmgr.cow_fault kernel (Kernel.ctx kernel 4)
             ~strategy:Procs.Optimistic ~vpage:500 ~private_vpage:501));
  Engine.run eng;
  Alcotest.(check bool) "broke" true (!got = Some Memmgr.Broke);
  (* One share left; shared page survives. *)
  Alcotest.(check bool) "shared page remains" true (shared_exists kernel ~vpage:500);
  (match Kernel.find_descriptor_untimed kernel ~cluster:0 ~vpage:500 with
  | Some e ->
    Alcotest.(check int) "share count dropped" 1
      (Cell.peek e.Khash.payload.Page.refcount)
  | None -> Alcotest.fail "gone");
  (* The private page exists in the writer's cluster, valid for write. *)
  match Kernel.find_descriptor_untimed kernel ~cluster:1 ~vpage:501 with
  | Some e ->
    Alcotest.(check int) "private valid-write" Page.st_valid_write
      (Cell.peek e.Khash.payload.Page.vstate)
  | None -> Alcotest.fail "no private page"

let test_last_break_removes_shared () =
  let eng, _, kernel = make () in
  populate_shared kernel ~vpage:510 ~shares:1;
  Kernel.spawn_idle_except kernel ~active:[ 0 ];
  Process.spawn eng (fun () ->
      ignore
        (Memmgr.cow_fault kernel (Kernel.ctx kernel 0)
           ~strategy:Procs.Optimistic ~vpage:510 ~private_vpage:511));
  Engine.run eng;
  Alcotest.(check bool) "shared page removed with last share" false
    (shared_exists kernel ~vpage:510)

let test_concurrent_breaks_all_succeed () =
  List.iter
    (fun strategy ->
      let eng, _, kernel = make () in
      let writers = [ 0; 4; 8; 12 ] in
      populate_shared kernel ~vpage:520 ~shares:(List.length writers);
      Kernel.spawn_idle_except kernel ~active:writers;
      let outcomes = ref [] in
      List.iteri
        (fun i proc ->
          Process.spawn eng (fun () ->
              let ctx = Kernel.ctx kernel proc in
              let r =
                Memmgr.cow_fault kernel ctx ~strategy ~vpage:520
                  ~private_vpage:(530 + i)
              in
              outcomes := r :: !outcomes;
              Ctx.idle_loop ctx))
        writers;
      Engine.run eng;
      Alcotest.(check int)
        (Procs.strategy_name strategy ^ ": all broke")
        4
        (List.length !outcomes);
      Alcotest.(check bool)
        (Procs.strategy_name strategy ^ ": shared page gone")
        false (shared_exists kernel ~vpage:520))
    [ Procs.Optimistic; Procs.Pessimistic ]

let test_storm_share_accounting () =
  let opt, pes =
    Workloads.Cow_storm.run_both
      ~config:{ Workloads.Cow_storm.default_config with rounds = 4 }
      ()
  in
  let total (r : Workloads.Cow_storm.result) =
    r.Workloads.Cow_storm.broke + r.Workloads.Cow_storm.found_gone
  in
  (* Every writer breaks every page exactly once: p * pages * rounds. *)
  Alcotest.(check int) "optimistic total" (8 * 4 * 4) (total opt);
  Alcotest.(check int) "pessimistic total" (8 * 4 * 4) (total pes);
  Alcotest.(check int) "optimistic never sees disappearance" 0
    opt.Workloads.Cow_storm.found_gone;
  Alcotest.(check bool) "both strategies retry (the paper's point)" true
    (opt.Workloads.Cow_storm.retries > 0 && pes.Workloads.Cow_storm.retries > 0)

let suite =
  [
    Alcotest.test_case "single COW break" `Quick test_single_break;
    Alcotest.test_case "last break removes the shared page" `Quick
      test_last_break_removes_shared;
    Alcotest.test_case "concurrent breaks all succeed" `Quick
      test_concurrent_breaks_all_succeed;
    Alcotest.test_case "COW storm share accounting" `Slow
      test_storm_share_accounting;
  ]
