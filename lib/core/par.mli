(** Domain pool for independent experiment cells.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    OCaml domains (the calling domain is one of them) and returns the
    results in input order — byte-for-byte the same list the sequential
    [List.map f xs] would produce, provided each [f x] is independent of the
    others. With [jobs <= 1] (the default) it is exactly [List.map f xs] on
    the calling domain.

    If any application raises, the exception raised by the earliest failing
    input is re-raised (with its backtrace) after all domains have joined. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
