(* One runner per table/figure of the paper's evaluation (plus the
   ablations called out in DESIGN.md). Each returns structured rows so the
   benchmark harness, the CLI and the test suite all share the same code.

   Experiment ids (DESIGN.md): FIG4, UNC, FIG5a, FIG5b, FIG7a, FIG7b,
   FIG7c, FIG7d, CONST, RETRY, ABL1, ABL2, ABL3, TRY. *)

open Hector
open Locks
open Workloads

let paper_procs = [ 1; 2; 4; 8; 12; 16 ]
let paper_cluster_sizes = [ 1; 2; 4; 8; 16 ]

(* The lock algorithms of Figure 5. *)
let fig5_algos = Lock.all_paper_algos

(* The kernel-lock algorithms compared in Figure 7: the paper plots
   "Distributed Locks" vs exponential-backoff spin locks; we show both
   modified-MCS variants. *)
let fig7_algos =
  [ Lock.Mcs_h1; Lock.Mcs_h2; Lock.Spin { max_backoff_us = 35.0 } ]

(* -- FIG4: instruction counts -------------------------------------------- *)

type fig4_row = {
  algo : Instr_model.algo;
  ours : Instr_model.counts;
  paper : Instr_model.counts;
  predicted_us : float;
}

let fig4 ?(cfg = Config.hector) () =
  List.map
    (fun a ->
      {
        algo = a;
        ours = Instr_model.counts a;
        paper = Instr_model.paper_counts a;
        predicted_us = Instr_model.predicted_us cfg a;
      })
    Instr_model.all

(* -- UNC: uncontended latency --------------------------------------------- *)

let uncontended ?cfg () = Uncontended.run_all ?cfg ()

(* -- FIG5: lock latency under contention ---------------------------------- *)

type fig5_series = {
  algo : Lock.algo;
  points : (int * Lock_stress.result) list; (* p, result *)
}

let fig5 ?(cfg = Config.hector) ?(hold_us = 0.0) ?(procs = paper_procs)
    ?(window_us = 20_000.0) ?(algos = fig5_algos) () =
  List.map
    (fun algo ->
      {
        algo;
        points =
          List.map
            (fun p ->
              ( p,
                Lock_stress.run ~cfg
                  ~config:
                    { Lock_stress.default_config with p; hold_us; window_us }
                  algo ))
            procs;
      })
    algos

let fig5a ?cfg ?procs ?algos () = fig5 ?cfg ~hold_us:0.0 ?procs ?algos ()
let fig5b ?cfg ?procs ?algos () = fig5 ?cfg ~hold_us:25.0 ?procs ?algos ()

(* The Section 4.1.2 starvation observation: fraction of acquisitions of
   the 2 ms-backoff spin lock taking more than 2 ms, at p = 16 and a 25 us
   hold. *)
let starvation ?(cfg = Config.hector) () =
  let r =
    Lock_stress.run ~cfg
      ~config:
        {
          Lock_stress.default_config with
          p = 16;
          hold_us = 25.0;
          window_us = 60_000.0;
        }
      (Lock.Spin { max_backoff_us = 2000.0 })
  in
  r.Lock_stress.summary

(* -- FIG7a/b: fault latency vs processors --------------------------------- *)

type fig7_point = {
  x : int; (* p for 7a/7b, cluster size for 7c/7d *)
  mean_us : float;
  p99_us : float;
  retries : int;
  rpcs : int;
}

type fig7_series = { lock_algo : Lock.algo; series : fig7_point list }

let fig7a ?(cfg = Config.hector) ?(procs = paper_procs) ?(iters = 100)
    ?(algos = fig7_algos) () =
  List.map
    (fun lock_algo ->
      {
        lock_algo;
        series =
          List.map
            (fun p ->
              let r =
                Independent_faults.run ~cfg
                  ~config:
                    {
                      Independent_faults.default_config with
                      p;
                      iters;
                      lock_algo;
                    }
                  ()
              in
              {
                x = p;
                mean_us = r.Independent_faults.summary.Measure.mean_us;
                p99_us = r.Independent_faults.summary.Measure.p99_us;
                retries = r.Independent_faults.retries;
                rpcs = r.Independent_faults.rpcs;
              })
            procs;
      })
    algos

let fig7b ?(cfg = Config.hector) ?(procs = paper_procs) ?(rounds = 20)
    ?(algos = fig7_algos) () =
  List.map
    (fun lock_algo ->
      {
        lock_algo;
        series =
          List.map
            (fun p ->
              let r =
                Shared_faults.run ~cfg
                  ~config:
                    { Shared_faults.default_config with p; rounds; lock_algo }
                  ()
              in
              {
                x = p;
                mean_us = r.Shared_faults.summary.Measure.mean_us;
                p99_us = r.Shared_faults.summary.Measure.p99_us;
                retries = r.Shared_faults.retries;
                rpcs = r.Shared_faults.rpcs;
              })
            procs;
      })
    algos

(* -- FIG7c/d: fault latency vs cluster size at p = 16 ---------------------- *)

let fig7c ?(cfg = Config.hector) ?(sizes = paper_cluster_sizes) ?(iters = 100)
    ?(algos = fig7_algos) () =
  List.map
    (fun lock_algo ->
      {
        lock_algo;
        series =
          List.map
            (fun cluster_size ->
              let r =
                Independent_faults.run ~cfg
                  ~config:
                    {
                      Independent_faults.default_config with
                      p = 16;
                      iters;
                      cluster_size;
                      lock_algo;
                    }
                  ()
              in
              {
                x = cluster_size;
                mean_us = r.Independent_faults.summary.Measure.mean_us;
                p99_us = r.Independent_faults.summary.Measure.p99_us;
                retries = r.Independent_faults.retries;
                rpcs = r.Independent_faults.rpcs;
              })
            sizes;
      })
    algos

let fig7d ?(cfg = Config.hector) ?(sizes = paper_cluster_sizes) ?(rounds = 15)
    ?(algos = fig7_algos) () =
  List.map
    (fun lock_algo ->
      {
        lock_algo;
        series =
          List.map
            (fun cluster_size ->
              let r =
                Shared_faults.run ~cfg
                  ~config:
                    {
                      Shared_faults.default_config with
                      p = 16;
                      rounds;
                      cluster_size;
                      lock_algo;
                    }
                  ()
              in
              {
                x = cluster_size;
                mean_us = r.Shared_faults.summary.Measure.mean_us;
                p99_us = r.Shared_faults.summary.Measure.p99_us;
                retries = r.Shared_faults.retries;
                rpcs = r.Shared_faults.rpcs;
              })
            sizes;
      })
    algos

(* -- CONST: absolute anchors ----------------------------------------------- *)

let constants ?cfg () = Calibration.run ?cfg ()

(* -- RETRY: optimistic vs pessimistic deadlock management ------------------ *)

let retries ?cfg () =
  let run strategy =
    Destruction.run ?cfg
      ~config:{ Destruction.default_config with strategy }
      ()
  in
  (run Hkernel.Procs.Optimistic, run Hkernel.Procs.Pessimistic)

(* -- ABL1: locking granularity --------------------------------------------- *)

let ablation_granularity ?cfg () = Hash_stress.run_all ?cfg ()

(* -- ABL2: combining tree --------------------------------------------------- *)

let ablation_combining ?cfg () = Replication_storm.run_both ?cfg ()

(* -- ABL3: compare&swap release (Section 5.2) ------------------------------- *)

type abl3_row = {
  machine : string;
  algo : Lock.algo;
  uncontended_us : float;
  contended_p16_us : float;
}

let ablation_cas () =
  let measure cfg algo =
    let unc = (Uncontended.run ~cfg algo).Uncontended.pair_us in
    let con =
      (Lock_stress.run ~cfg
         ~config:
           { Lock_stress.default_config with p = 16; hold_us = 0.0 }
         algo)
        .Lock_stress.summary
        .Measure.mean_us
    in
    (unc, con)
  in
  let hector_cfg = Config.hector in
  let cas_cfg = Config.with_cas Config.hector in
  let mk machine cfg algo =
    let uncontended_us, contended_p16_us = measure cfg algo in
    { machine; algo; uncontended_us; contended_p16_us }
  in
  [
    mk "hector(swap)" hector_cfg Lock.Mcs_h2;
    mk "hector(+cas)" cas_cfg Lock.Mcs_h2;
    mk "hector(+cas)" cas_cfg Lock.Mcs_cas;
  ]

(* -- TRY: TryLock fairness --------------------------------------------------- *)

let trylock ?cfg () = Trylock_starvation.run ?cfg ()

(* -- ABL4: CLH vs MCS on non-coherent vs coherent NUMA ---------------------- *)

type abl4_row = {
  machine4 : string;
  algo4 : Lock.algo;
  contended_us : float;
}

let ablation_clh () =
  let measure cfg algo =
    (Lock_stress.run ~cfg
       ~config:
         { Lock_stress.default_config with p = 12; hold_us = 5.0;
           window_us = 10_000.0 }
       algo)
      .Lock_stress.summary
      .Measure.mean_us
  in
  List.concat_map
    (fun (name, cfg) ->
      List.map
        (fun algo ->
          { machine4 = name; algo4 = algo; contended_us = measure cfg algo })
        [ Lock.Mcs_h1; Lock.Clh ])
    [ ("hector", Config.hector); ("numachine", Config.numachine) ]

(* -- ABL5: cache-based lock primitives (Section 5.2/5.3) --------------------- *)

type abl5_row = {
  machine5 : string;
  algo5 : Lock.algo;
  pair_us : float;
  pair_cycles : float;
}

let ablation_cached_locks () =
  List.concat_map
    (fun (name, cfg) ->
      List.map
        (fun algo ->
          let r = Uncontended.run ~cfg algo in
          {
            machine5 = name;
            algo5 = algo;
            pair_us = r.Uncontended.pair_us;
            pair_cycles =
              r.Uncontended.pair_us *. float_of_int cfg.Config.mhz;
          })
        [ Lock.Spin { max_backoff_us = 35.0 }; Lock.Mcs_h2 ])
    [ ("hector", Config.hector); ("numachine", Config.numachine) ]

(* -- ABL6: spin-then-block (Section 5.3) -------------------------------------- *)

let ablation_spin_then_block ?(hold_us = 50.0) () =
  List.map
    (fun algo ->
      ( algo,
        Lock_stress.run ~cfg:Config.hector
          ~config:
            {
              Lock_stress.default_config with
              p = 12;
              hold_us;
              window_us = 20_000.0;
            }
          algo ))
    [
      Lock.Mcs_h1;
      Lock.Spin { max_backoff_us = 35.0 };
      Lock.Spin_then_block { spin_us = 10.0 };
    ]

(* -- ABL7: lock-free single-word updates (Section 5.3) ------------------------- *)

let ablation_lockfree () = Counter_stress.run_all ()

(* -- ABL8: data-structure design (Section 2.5) -------------------------------- *)

let ablation_layout ?cfg () = Messaging_mix.run_both ?cfg ()

(* -- ABL9: the queue-lock family on the modern machine ------------------------ *)

type abl9_row = {
  algo9 : Lock.algo;
  unc_us : float;
  contended12_us : float;
  space : int; (* words per lock at 16 processors *)
}

let abl9_algos =
  [
    Lock.Spin { max_backoff_us = 35.0 };
    Lock.Ticket;
    Lock.Anderson;
    Lock.Clh;
    Lock.Mcs_cas;
    Lock.Spin_then_block { spin_us = 10.0 };
  ]

let ablation_lock_family ?(cfg = Config.numachine) () =
  List.map
    (fun algo ->
      let unc = (Uncontended.run ~cfg algo).Uncontended.pair_us in
      let con =
        (Lock_stress.run ~cfg
           ~config:
             {
               Lock_stress.default_config with
               p = 12;
               hold_us = 5.0;
               window_us = 10_000.0;
             }
           algo)
          .Lock_stress.summary
          .Measure.mean_us
      in
      {
        algo9 = algo;
        unc_us = unc;
        contended12_us = con;
        space = Lock.space_words ~n_procs:16 algo;
      })
    abl9_algos

(* -- CLASSES: the four access-behaviour classes at once ------------------------ *)

let classes ?cfg () = Four_classes.run ?cfg ()

(* -- COW: simultaneous copy-on-write breaks (Sections 2.3 / 2.5) --------------- *)

let cow ?cfg () = Cow_storm.run_both ?cfg ()

(* -- FS: the file server (Section 5.1) ----------------------------------------- *)

let fs ?cfg () = File_read.run_grid ?cfg ()

(* -- FAULTS: injected holder stalls vs recovery mechanisms --------------------- *)

type fault_row = {
  fmech : Fault_storm.mechanism;
  stall_every_us : float; (* 0 = fault-free baseline *)
  fault_ops : int;
  retained : float; (* fault_ops / the same mechanism's baseline ops *)
  recovery_mean_us : float;
  recovery_p99_us : float;
  fault_lock_timeouts : int;
  fault_reserve_timeouts : int;
  fault_gave_ups : int;
  fault_deferred : int;
  stalls : int;
}

(* One stall dose (scheduled mode, identical for every mechanism) per
   period x mechanism, plus a fault-free baseline per mechanism to express
   throughput as a retained fraction. *)
let fault_matrix ?(cfg = Config.hector)
    ?(periods_us = [ 4000.0; 2000.0; 1000.0 ]) () =
  let stall_cycles = Config.cycles_of_us cfg 1000.0 in
  let run mech ~period_us =
    let fault =
      if period_us <= 0.0 then None
      else
        Some
          {
            Eventsim.Fault.disabled with
            seed = 42;
            stall_every = Config.cycles_of_us cfg period_us;
            stall_cycles;
          }
    in
    Fault_storm.run ~cfg
      ~config:{ Fault_storm.default_config with fault }
      mech
  in
  List.concat_map
    (fun mech ->
      let base = run mech ~period_us:0.0 in
      let row ~period_us (r : Fault_storm.result) =
        {
          fmech = mech;
          stall_every_us = period_us;
          fault_ops = r.Fault_storm.ops;
          retained =
            (if base.Fault_storm.ops = 0 then 0.0
             else float_of_int r.Fault_storm.ops
                  /. float_of_int base.Fault_storm.ops);
          recovery_mean_us = r.Fault_storm.recovery.Measure.mean_us;
          recovery_p99_us = r.Fault_storm.recovery.Measure.p99_us;
          fault_lock_timeouts = r.Fault_storm.lock_timeouts;
          fault_reserve_timeouts = r.Fault_storm.reserve_timeouts;
          fault_gave_ups = r.Fault_storm.rpc_gave_ups;
          fault_deferred = r.Fault_storm.deferred;
          stalls = r.Fault_storm.stalls_injected;
        }
      in
      row ~period_us:0.0 base
      :: List.map
           (fun period_us -> row ~period_us (run mech ~period_us))
           periods_us)
    [ Fault_storm.No_timeout; Fault_storm.Timeout; Fault_storm.Bounded_retry ]

(* -- VERIFY: the lockdep checker against planted violations -------------------- *)

type verify_row = {
  vprobe : Verify_probes.probe;
  vexpected : string; (* expected violation kind, "none" for the clean run *)
  vviolations : int;
  vhits : int; (* violations of the expected kind *)
  vaborted : bool; (* run terminated by the watchdog raising *)
  vok : bool;
  vfirst : string; (* first violation recorded, for display *)
}

let verify_suite () =
  List.map
    (fun (r : Verify_probes.result) ->
      {
        vprobe = r.Verify_probes.probe;
        vexpected =
          (match r.Verify_probes.expected with
          | None -> "none"
          | Some k -> Verify.kind_name k);
        vviolations = r.Verify_probes.violations;
        vhits = r.Verify_probes.hits;
        vaborted = r.Verify_probes.aborted;
        vok = r.Verify_probes.ok;
        vfirst = r.Verify_probes.first;
      })
    (Verify_probes.run_all ())

(* -- NUMA-LOCKS: cross-cluster contention, composites vs flat MCS ---------- *)

type numa_point = {
  nalgo : Lock.algo;
  nclusters : int;
  nhold_us : float;
  nmean_us : float;
  np99_us : float;
  nacqs : int;
  nlocal : int; (* contended hand-offs inside a cluster *)
  nremote : int; (* contended hand-offs across clusters *)
  nremote_frac : float; (* nremote / (nlocal + nremote); 0 if none *)
  nmax_wait_us : float;
}

let numa_algos = Lock.Mcs_h2 :: Lock.all_numa_algos

(* Flat MCS against the three NUMA composites, sweeping how finely 16
   processors are clustered and how long the lock is held. The composites
   must show a lower cross-cluster hand-off fraction whenever there is
   more than one cluster; at hold > 0 the locality should also buy back
   latency (the protected data stops migrating every hand-off). *)
let numa_locks ?(cfg = Config.hector) ?(clusters = [ 1; 2; 4 ])
    ?(holds_us = [ 0.0; 10.0 ]) ?(algos = numa_algos) () =
  List.concat_map
    (fun nalgo ->
      List.concat_map
        (fun n_clusters ->
          List.map
            (fun hold_us ->
              let r =
                Numa_stress.run ~cfg
                  ~config:
                    { Numa_stress.default_config with n_clusters; hold_us }
                  nalgo
              in
              let local = r.Numa_stress.local_handoffs in
              let remote = r.Numa_stress.remote_handoffs in
              let total = local + remote in
              {
                nalgo;
                nclusters = n_clusters;
                nhold_us = hold_us;
                nmean_us = r.Numa_stress.summary.Measure.mean_us;
                np99_us = r.Numa_stress.summary.Measure.p99_us;
                nacqs = r.Numa_stress.acquisitions;
                nlocal = local;
                nremote = remote;
                nremote_frac =
                  (if total = 0 then 0.0
                   else float_of_int remote /. float_of_int total);
                nmax_wait_us = r.Numa_stress.max_wait_us;
              })
            holds_us)
        clusters)
    algos

(* -- HASH-SCALING: sharded table + optimistic reads ------------------------- *)

type hash_point = {
  hgran : Hkernel.Khash.granularity;
  hshards : int; (* 1 for Hybrid *)
  hoptimistic : bool;
  hp : int;
  hread_ratio : float;
  hread_mean_us : float; (* lookup latency *)
  hread_p99_us : float;
  hupdate_mean_us : float; (* with_element latency, element work excluded *)
  hthroughput : float; (* completed ops per virtual millisecond *)
  hopt_hits : int;
  hopt_fallbacks : int;
  hatomics : int;
}

(* The single-lock hybrid against the sharded table at several shard
   counts, with the seqlock read path off and on, sweeping concurrency and
   read mix. The claims (asserted by the regression tests and exported as
   HASH-SCALING): throughput scales with the shard count once the single
   lock saturates, and at read-heavy mixes the optimistic path serves
   lookups for a pair of loads instead of a lock round-trip. *)
let hash_scaling ?(cfg = Config.hector) ?(procs = [ 4; 8; 16 ])
    ?(read_ratios = [ 0.5; 0.9 ]) ?(shard_counts = [ 2; 4; 8 ]) () =
  let point ~p ~read_ratio ~granularity ~shards ~optimistic =
    let r =
      Hash_scaling.run ~cfg
        ~config:
          {
            Hash_scaling.default_config with
            p;
            read_ratio;
            granularity;
            shards;
            optimistic;
          }
        ()
    in
    {
      hgran = granularity;
      hshards = r.Hash_scaling.shards;
      hoptimistic = optimistic;
      hp = p;
      hread_ratio = read_ratio;
      hread_mean_us = r.Hash_scaling.read_summary.Measure.mean_us;
      hread_p99_us = r.Hash_scaling.read_summary.Measure.p99_us;
      hupdate_mean_us = r.Hash_scaling.update_summary.Measure.mean_us;
      hthroughput = r.Hash_scaling.throughput_ops_ms;
      hopt_hits = r.Hash_scaling.optimistic_hits;
      hopt_fallbacks = r.Hash_scaling.optimistic_fallbacks;
      hatomics = r.Hash_scaling.atomics;
    }
  in
  List.concat_map
    (fun p ->
      List.concat_map
        (fun read_ratio ->
          point ~p ~read_ratio ~granularity:Hkernel.Khash.Hybrid ~shards:1
            ~optimistic:false
          :: List.concat_map
               (fun shards ->
                 List.map
                   (fun optimistic ->
                     point ~p ~read_ratio ~granularity:Hkernel.Khash.Sharded
                       ~shards ~optimistic)
                   [ false; true ])
               shard_counts)
        read_ratios)
    procs

(* -- OBS: contention profile of the fault storm ---------------------------- *)

type obs_result = { obs_rows : Obs.row list; obs_storm : Fault_storm.result }

(* Station = cluster: the storm runs on a bare machine, so the natural
   cluster attribution is the HECTOR station each processor sits on. The
   dosed stall plan matches the fault matrix's middle column, giving the
   profile real contention to attribute. *)
let obs_profile ?(cfg = Config.hector) ?(mechanism = Fault_storm.Timeout) () =
  let obs =
    Obs.create
      ~cluster_of:(Config.station_of_proc cfg)
      ~n_clusters:cfg.Config.stations ~n_procs:(Config.n_procs cfg) ()
  in
  let fault =
    Some
      {
        Eventsim.Fault.disabled with
        seed = 42;
        stall_every = Config.cycles_of_us cfg 2000.0;
        stall_cycles = Config.cycles_of_us cfg 1000.0;
      }
  in
  let storm =
    Fault_storm.run ~cfg
      ~config:{ Fault_storm.default_config with fault }
      ~obs mechanism
  in
  { obs_rows = Obs.profile_rows obs; obs_storm = storm }

(* -- ABORT-STORM: timed abandonment under a planted holder stall ------------ *)

type abort_point = {
  aalgo : Lock.algo;
  aattempts : int;
  aacqs : int;
  aaborts : int;
  afast_fails : int;
  astalls : int;
  aover_mean_us : float; (* waited-out expiries: return minus deadline *)
  aover_p99_us : float;
  aover_max_us : float;
  abound_ratio : float; (* worst (return - issue) / timeout *)
  arecovery_mean_us : float; (* stall release to next timed acquisition *)
  arecovery_max_us : float;
  aobs_aborts : int; (* observer-counted, cohort constituents included *)
  aobs_repairs : int;
  aremote_aborts : int; (* aborts outside the staller's cluster *)
  afinal_free : bool;
}

(* Each abortable algorithm — flat MCS and the three NUMA composites —
   under the same planted cross-cluster holder stall. The bound_ratio
   column is the acceptance criterion: every timed waiter returned within
   that multiple of its deadline, where the unbounded protocol would have
   ridden out the whole stall; remote aborts > 0 shows waiters expired at
   every level of the composite, not just beside the holder. *)
let abort_storm ?(cfg = Config.hector) ?(algos = numa_algos) () =
  List.map
    (fun aalgo ->
      let r = Abort_storm.run ~cfg aalgo in
      {
        aalgo;
        aattempts = r.Abort_storm.attempts;
        aacqs = r.Abort_storm.acquisitions;
        aaborts = r.Abort_storm.aborts;
        afast_fails = r.Abort_storm.fast_fails;
        astalls = r.Abort_storm.stalls;
        aover_mean_us = r.Abort_storm.overshoot.Measure.mean_us;
        aover_p99_us = r.Abort_storm.overshoot.Measure.p99_us;
        aover_max_us = r.Abort_storm.max_overshoot_us;
        abound_ratio = r.Abort_storm.bound_ratio;
        arecovery_mean_us = r.Abort_storm.recovery.Measure.mean_us;
        arecovery_max_us = r.Abort_storm.recovery.Measure.max_us;
        aobs_aborts = r.Abort_storm.obs_aborts;
        aobs_repairs = r.Abort_storm.obs_repairs;
        aremote_aborts = r.Abort_storm.remote_aborts;
        afinal_free = r.Abort_storm.final_free;
      })
    algos

(* -- RW-SCALING: read-mostly lookups, reader parallelism --------------------- *)

type rw_point = {
  rstyle : Rw_scaling.style;
  rstyle_name : string;
  rread_ratio : float;
  rclusters : int;
  rp : int;
  rread_mean_us : float;
  rread_p99_us : float;
  rread_p999_us : float;
  rwrite_mean_us : float;
  rthroughput : float; (* all completed ops per virtual ms *)
  rread_throughput : float;
  rreads : int;
  rwrites : int;
  rpeak_readers : int;
  rread_remote : int;
  rseq_aborts : int;
  rlockdep_violations : int;
}

(* The read-mostly candidates, one per strategy family: the exclusive-lock
   baseline every writer-serialising algorithm is stuck at, the RW lock
   over the MCS cohort (plus its centralised-indicator baseline — the
   remote-traffic comparator), the seqlock optimistic path, and
   HURRICANE-shaped per-cluster replication. *)
let rw_styles =
  [
    Rw_scaling.Mutex Lock.c_mcs_mcs;
    Rw_scaling.Rw_lock
      {
        writer = Lock.c_mcs_mcs;
        policy = Rwlock.Writer_blocking;
        centralised = false;
      };
    Rw_scaling.Rw_lock
      {
        writer = Lock.Mcs_h2;
        policy = Rwlock.Writer_blocking;
        centralised = true;
      };
    Rw_scaling.Seqlock_style { writer = Lock.Mcs_h2 };
    Rw_scaling.Replicated { writer = Lock.Mcs_h2 };
  ]

let rw_scaling ?(cfg = Config.hector) ?(styles = rw_styles)
    ?(ratios = [ 0.95; 0.99; 0.999 ]) ?(clusters = [ 1; 2; 4 ]) ?(ops = 200)
    () =
  List.concat_map
    (fun rstyle ->
      List.concat_map
        (fun rread_ratio ->
          List.map
            (fun rclusters ->
              let r =
                Rw_scaling.run ~cfg
                  ~config:
                    {
                      Rw_scaling.default_config with
                      Rw_scaling.style = rstyle;
                      read_ratio = rread_ratio;
                      n_clusters = rclusters;
                      ops;
                    }
                  ()
              in
              {
                rstyle;
                rstyle_name = r.Rw_scaling.style_name;
                rread_ratio;
                rclusters;
                rp = r.Rw_scaling.p;
                rread_mean_us = r.Rw_scaling.read_summary.Measure.mean_us;
                rread_p99_us = r.Rw_scaling.read_summary.Measure.p99_us;
                rread_p999_us = r.Rw_scaling.read_summary.Measure.p999_us;
                rwrite_mean_us = r.Rw_scaling.write_summary.Measure.mean_us;
                rthroughput = r.Rw_scaling.throughput_ops_ms;
                rread_throughput = r.Rw_scaling.read_throughput_ops_ms;
                rreads = r.Rw_scaling.reads_done;
                rwrites = r.Rw_scaling.writes_done;
                rpeak_readers = r.Rw_scaling.peak_readers;
                rread_remote = r.Rw_scaling.read_remote;
                rseq_aborts = r.Rw_scaling.seq_aborts;
                rlockdep_violations = r.Rw_scaling.lockdep_violations;
              })
            clusters)
        ratios)
    styles

(* -- CRASH-STORM: fail-stop mid-CS kills, crash-recoverable locking --------- *)

type crash_point = {
  calgo : Lock.algo;
  ckills : int;
  cacqs : int;
  cobs_crashes : int;
  cobs_recoveries : int; (* forced releases, cohort constituents included *)
  clockdep_recoveries : int;
  clockdep_violations : int;
  crec_mean_us : float; (* kill to forced release *)
  crec_p99_us : float;
  crec_max_us : float;
  crec_n : int;
  cclusters_hit : int; (* clusters with at least one recovery sample *)
  cworst_cluster_p99_us : float;
  cfinal_free : bool;
}

(* Representative flat queue locks (MCS, CLH, and the non-abortable Ticket,
   whose waiters recover in-spin) plus the NUMA composites — each under the
   same planted mid-critical-section kill schedule. *)
let crash_algos = Lock.Mcs_h2 :: Lock.Clh :: Lock.Ticket :: Lock.all_numa_algos

let crash_storm ?(cfg = Config.hector) ?(algos = crash_algos) () =
  List.map
    (fun calgo ->
      let r = Crash_storm.run ~cfg calgo in
      let worst =
        List.fold_left
          (fun acc (_, s) -> Float.max acc s.Measure.p99_us)
          0.0 r.Crash_storm.by_cluster
      in
      {
        calgo;
        ckills = r.Crash_storm.kills;
        cacqs = r.Crash_storm.acquisitions;
        cobs_crashes = r.Crash_storm.obs_crashes;
        cobs_recoveries = r.Crash_storm.obs_recoveries;
        clockdep_recoveries = r.Crash_storm.lockdep_recoveries;
        clockdep_violations = r.Crash_storm.lockdep_violations;
        crec_mean_us = r.Crash_storm.recovery.Measure.mean_us;
        crec_p99_us = r.Crash_storm.recovery.Measure.p99_us;
        crec_max_us = r.Crash_storm.recovery.Measure.max_us;
        crec_n = r.Crash_storm.recovery.Measure.n;
        cclusters_hit = List.length r.Crash_storm.by_cluster;
        cworst_cluster_p99_us = worst;
        cfinal_free = r.Crash_storm.final_free;
      })
    algos

(* -- SLO: open-loop sustained-request stream -------------------------------- *)

type slo_point = {
  srate : float; (* offered requests per virtual ms *)
  sp : int;
  selements : int;
  sshards : int;
  scompleted : int;
  sachieved : float; (* completed requests per virtual ms *)
  sread : Measure.summary; (* arrival-to-completion, reads *)
  supdate : Measure.summary;
  speak_backlog : int;
  sopt_hits : int;
  sopt_fallbacks : int;
  sviolations : int; (* must be 0 *)
}

(* Offered-load sweep: comfortable, near the knee, and past it — the top
   rate exceeds the measured table capacity (~300 requests/ms for the
   default 16 servers over a 16-shard million-element table), so its tail
   percentiles are dominated by queueing; the low rate's tails stay within
   a small multiple of the service time. *)
let slo_rates = [ 150.0; 250.0; 350.0 ]

let slo ?(cfg = Config.hector) ?(rates = slo_rates)
    ?(elements = Slo_stream.default_config.Slo_stream.elements)
    ?(requests = Slo_stream.default_config.Slo_stream.requests) () =
  List.map
    (fun rate ->
      let r =
        Slo_stream.run ~cfg
          ~config:
            {
              Slo_stream.default_config with
              Slo_stream.rate_per_ms = rate;
              elements;
              requests;
            }
          ()
      in
      {
        srate = rate;
        sp = Slo_stream.default_config.Slo_stream.p;
        selements = elements;
        sshards = Slo_stream.default_config.Slo_stream.shards;
        scompleted = r.Slo_stream.completed;
        sachieved = r.Slo_stream.achieved_per_ms;
        sread = r.Slo_stream.read_summary;
        supdate = r.Slo_stream.update_summary;
        speak_backlog = r.Slo_stream.peak_backlog;
        sopt_hits = r.Slo_stream.optimistic_hits;
        sopt_fallbacks = r.Slo_stream.optimistic_fallbacks;
        sviolations = r.Slo_stream.lockdep_violations;
      })
    rates

(* -- ADAPTIVE: lock morphing over the diurnal load cycle -------------------- *)

type adaptive_point = {
  dalgo : Lock.algo;
  dname : string;
  dcold1_ops : int;
  dhot_ops : int;
  dcold2_ops : int;
  dcold_throughput : float; (* ops per virtual ms, both cold plateaus *)
  dhot_throughput : float;
  dmorphs_up : int; (* observer-counted; 0 for the static shapes *)
  dmorphs_down : int;
  dfinal_shape : int;
  dfinal_free : bool;
  dviolations : int; (* must be 0 *)
}

(* The static field the morphing lock is raced against: the cold-phase
   favourite (test&set), both flat MCS hybrids, all three NUMA
   composites, and the morphing lock itself. No static row tops both
   phase columns — test&set collapses at the peak, the composites pay
   for their layers in the trickle — which is the regime gap Adaptive
   exists to close. *)
let adaptive_algos =
  [ Lock.Spin { max_backoff_us = 35.0 }; Lock.Mcs_h1; Lock.Mcs_h2;
    Lock.cna; Lock.c_mcs_mcs; Lock.hmcs; Lock.adaptive ]

let adaptive ?(cfg = Config.hector) ?(algos = adaptive_algos) () =
  List.map
    (fun dalgo ->
      let r =
        Diurnal.run ~cfg
          ~config:{ Diurnal.default_config with Diurnal.algo = dalgo }
          ()
      in
      {
        dalgo;
        dname = r.Diurnal.algo_name;
        dcold1_ops = r.Diurnal.cold1_ops;
        dhot_ops = r.Diurnal.hot_ops;
        dcold2_ops = r.Diurnal.cold2_ops;
        dcold_throughput = r.Diurnal.cold_throughput_ops_ms;
        dhot_throughput = r.Diurnal.hot_throughput_ops_ms;
        dmorphs_up = r.Diurnal.morphs_up;
        dmorphs_down = r.Diurnal.morphs_down;
        dfinal_shape = r.Diurnal.final_shape;
        dfinal_free = r.Diurnal.final_free;
        dviolations = r.Diurnal.lockdep_violations;
      })
    algos
