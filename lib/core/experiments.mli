(** One runner per table/figure of the paper's evaluation, plus the
    ablations in DESIGN.md. Shared by the benchmark harness
    ([bench/main.exe]), the CLI ([bin/hurricane_sim]) and the claim-level
    regression tests. *)

open Hector
open Locks
open Workloads

val paper_procs : int list
val paper_cluster_sizes : int list

(** Figure 5's five algorithms. *)
val fig5_algos : Lock.algo list

(** Figure 7's kernel-lock algorithms (both modified-MCS variants and the
    35 µs spin lock). *)
val fig7_algos : Lock.algo list

(** FIG4 — the instruction-count table. *)

type fig4_row = {
  algo : Instr_model.algo;
  ours : Instr_model.counts;
  paper : Instr_model.counts;
  predicted_us : float;
}

val fig4 : ?cfg:Config.t -> unit -> fig4_row list

(** UNC — Section 4.1.1 uncontended latencies. *)
val uncontended : ?cfg:Config.t -> unit -> Uncontended.result list

(** FIG5a/FIG5b — lock response time under contention. *)

type fig5_series = {
  algo : Lock.algo;
  points : (int * Lock_stress.result) list;
}

val fig5 :
  ?cfg:Config.t ->
  ?hold_us:float ->
  ?procs:int list ->
  ?window_us:float ->
  ?algos:Lock.algo list ->
  unit ->
  fig5_series list

val fig5a :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?algos:Lock.algo list ->
  unit ->
  fig5_series list

val fig5b :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?algos:Lock.algo list ->
  unit ->
  fig5_series list

(** The Section 4.1.2 starvation measurement (2 ms spin lock, p=16,
    25 µs hold). *)
val starvation : ?cfg:Config.t -> unit -> Measure.summary

(** FIG7 — page-fault latency series. *)

type fig7_point = {
  x : int;  (** p for 7a/7b; cluster size for 7c/7d *)
  mean_us : float;
  p99_us : float;
  retries : int;
  rpcs : int;
}

type fig7_series = { lock_algo : Lock.algo; series : fig7_point list }

val fig7a :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?iters:int ->
  ?algos:Lock.algo list ->
  unit ->
  fig7_series list

val fig7b :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?rounds:int ->
  ?algos:Lock.algo list ->
  unit ->
  fig7_series list

val fig7c :
  ?cfg:Config.t ->
  ?sizes:int list ->
  ?iters:int ->
  ?algos:Lock.algo list ->
  unit ->
  fig7_series list

val fig7d :
  ?cfg:Config.t ->
  ?sizes:int list ->
  ?rounds:int ->
  ?algos:Lock.algo list ->
  unit ->
  fig7_series list

(** CONST — the absolute anchors. *)
val constants : ?cfg:Config.t -> unit -> Calibration.result

(** RETRY — optimistic vs pessimistic destruction storms. *)
val retries :
  ?cfg:Config.t -> unit -> Destruction.result * Destruction.result

(** ABL1 — hybrid vs coarse vs fine hash locking. *)
val ablation_granularity :
  ?cfg:Config.t -> unit -> Hash_stress.result list

(** ABL2 — combining tree on/off. *)
val ablation_combining :
  ?cfg:Config.t -> unit -> Replication_storm.result * Replication_storm.result

(** ABL3 — compare&swap release (Section 5.2). *)

type abl3_row = {
  machine : string;
  algo : Lock.algo;
  uncontended_us : float;
  contended_p16_us : float;
}

val ablation_cas : unit -> abl3_row list

(** ABL4 — CLH vs MCS across machines (Section 5.2). *)

type abl4_row = { machine4 : string; algo4 : Lock.algo; contended_us : float }

val ablation_clh : unit -> abl4_row list

(** ABL5 — cache-based lock primitives (Sections 5.2/5.3). *)

type abl5_row = {
  machine5 : string;
  algo5 : Lock.algo;
  pair_us : float;
  pair_cycles : float;
}

val ablation_cached_locks : unit -> abl5_row list

(** ABL6 — spin-then-block under long holds (Section 5.3). *)
val ablation_spin_then_block :
  ?hold_us:float -> unit -> (Lock.algo * Lock_stress.result) list

(** ABL7 — lock-free single-word updates (Section 5.3). *)
val ablation_lockfree : unit -> Counter_stress.result list

(** ABL8 — data-structure design: combined vs separate family tree
    (Section 2.5). *)
val ablation_layout :
  ?cfg:Config.t -> unit -> Messaging_mix.result * Messaging_mix.result

(** ABL9 — the queue-lock family (spin, ticket, Anderson, CLH, MCS-CAS,
    spin-then-block) on the modern machine: latency and space
    (Section 5.2's trade-off discussion). *)

type abl9_row = {
  algo9 : Lock.algo;
  unc_us : float;
  contended12_us : float;
  space : int;
}

val abl9_algos : Lock.algo list
val ablation_lock_family : ?cfg:Config.t -> unit -> abl9_row list

(** TRY — TryLock fairness under saturation (Section 3.2). *)
val trylock : ?cfg:Config.t -> unit -> Trylock_starvation.result

(** CLASSES — the paper's four access-behaviour classes (Section 1) running
    simultaneously, one cluster each. *)
val classes : ?cfg:Config.t -> unit -> Four_classes.result

(** COW — simultaneous copy-on-write breaks under both deadlock strategies
    (Sections 2.3 / 2.5). *)
val cow : ?cfg:Config.t -> unit -> Cow_storm.result * Cow_storm.result

(** FS — the file server built from the same techniques (Section 5.1):
    private vs shared files, read-ahead off/on. *)
val fs : ?cfg:Config.t -> unit -> File_read.result list

(** FAULTS — injected lock-holder stalls (1 ms, scheduled at a fixed
    period so every mechanism gets the same dose) against the unbounded
    protocol, timeout-capable locking, and bounded-retry RPC. *)

type fault_row = {
  fmech : Fault_storm.mechanism;
  stall_every_us : float;  (** 0 = fault-free baseline *)
  fault_ops : int;
  retained : float;  (** fault_ops over the mechanism's baseline ops *)
  recovery_mean_us : float;
  recovery_p99_us : float;
  fault_lock_timeouts : int;
  fault_reserve_timeouts : int;
  fault_gave_ups : int;
  fault_deferred : int;
  stalls : int;
}

val fault_matrix :
  ?cfg:Config.t -> ?periods_us:float list -> unit -> fault_row list

(** VERIFY — the lockdep checker ({!Verify}) against the planted-violation
    probes: every deliberately wrong workload must be caught (the two
    watchdog probes by aborting an otherwise-endless run), and the clean
    storm must record nothing. *)

type verify_row = {
  vprobe : Verify_probes.probe;
  vexpected : string;  (** expected violation kind, "none" for clean *)
  vviolations : int;
  vhits : int;  (** violations of the expected kind *)
  vaborted : bool;  (** run terminated by the watchdog raising *)
  vok : bool;
  vfirst : string;  (** first violation recorded, for display *)
}

val verify_suite : unit -> verify_row list

(** NUMA-LOCKS — cross-cluster contention: flat MCS against the NUMA-aware
    composites (C-MCS-MCS cohort, HMCS, CNA), sweeping cluster count and
    hold time on 16 processors. [nremote_frac] is the fraction of
    contended hand-offs that crossed a cluster boundary — the composites'
    figure of merit. *)

type numa_point = {
  nalgo : Lock.algo;
  nclusters : int;
  nhold_us : float;
  nmean_us : float;
  np99_us : float;
  nacqs : int;
  nlocal : int;  (** contended hand-offs inside a cluster *)
  nremote : int;  (** contended hand-offs across clusters *)
  nremote_frac : float;  (** nremote / (nlocal + nremote); 0 if none *)
  nmax_wait_us : float;
}

(** The algorithms NUMA-LOCKS compares: flat H2-MCS plus the composites. *)
val numa_algos : Lock.algo list

val numa_locks :
  ?cfg:Config.t ->
  ?clusters:int list ->
  ?holds_us:float list ->
  ?algos:Lock.algo list ->
  unit ->
  numa_point list

(** HASH-SCALING — the sharded hash table: single-lock Hybrid against
    [Sharded] at several shard counts, optimistic seqlock reads off/on,
    sweeping concurrency and read mix. *)

type hash_point = {
  hgran : Hkernel.Khash.granularity;
  hshards : int;  (** 1 for Hybrid *)
  hoptimistic : bool;
  hp : int;
  hread_ratio : float;
  hread_mean_us : float;  (** lookup latency *)
  hread_p99_us : float;
  hupdate_mean_us : float;  (** update latency, element work excluded *)
  hthroughput : float;  (** completed ops per virtual millisecond *)
  hopt_hits : int;
  hopt_fallbacks : int;
  hatomics : int;
}

val hash_scaling :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?read_ratios:float list ->
  ?shard_counts:int list ->
  unit ->
  hash_point list

(** OBS — the contention profile ({!Obs}) of a dosed fault storm: which
    lock class, on which cluster (station), burned the waiting cycles. *)

type obs_result = { obs_rows : Obs.row list; obs_storm : Fault_storm.result }

val obs_profile :
  ?cfg:Config.t -> ?mechanism:Fault_storm.mechanism -> unit -> obs_result

(** ABORT-STORM — timed acquisition under a planted cross-cluster holder
    stall ({!Workloads.Abort_storm}): flat MCS and the NUMA composites,
    each with a holder that goes dark far longer than any waiter's
    deadline. [abound_ratio] is the acceptance bound — the worst
    return-time-to-timeout multiple over every expired attempt; remote
    aborts show waiters expiring at every level of the composite. *)

type abort_point = {
  aalgo : Lock.algo;
  aattempts : int;
  aacqs : int;
  aaborts : int;
  afast_fails : int;
      (** refused instantly: an earlier expiry's abandoned node was still
          enqueued awaiting repair *)
  astalls : int;
  aover_mean_us : float;  (** waited-out expiries: return minus deadline *)
  aover_p99_us : float;
  aover_max_us : float;
  abound_ratio : float;  (** worst (return − issue) / timeout *)
  arecovery_mean_us : float;
      (** stall release to next successful timed acquisition *)
  arecovery_max_us : float;
  aobs_aborts : int;  (** observer-counted, cohort constituents included *)
  aobs_repairs : int;
  aremote_aborts : int;  (** aborts outside the staller's cluster *)
  afinal_free : bool;  (** lock free after the final untimed drain *)
}

val abort_storm :
  ?cfg:Config.t -> ?algos:Lock.algo list -> unit -> abort_point list

(** RW-SCALING — read-mostly page-descriptor lookups
    ({!Workloads.Rw_scaling}): the exclusive-lock baseline against the
    distributed RW lock (plus its centralised-indicator comparator), the
    seqlock optimistic path and per-cluster replication, sweeping read
    ratio and cluster count. [rpeak_readers] > 1 is the reader-parallelism
    evidence; [rread_remote] = 0 the distributed layout's locality
    evidence. *)

type rw_point = {
  rstyle : Rw_scaling.style;
  rstyle_name : string;
  rread_ratio : float;
  rclusters : int;
  rp : int;
  rread_mean_us : float;
  rread_p99_us : float;
  rread_p999_us : float;
  rwrite_mean_us : float;
  rthroughput : float;  (** all completed ops per virtual ms *)
  rread_throughput : float;
  rreads : int;
  rwrites : int;
  rpeak_readers : int;
  rread_remote : int;
  rseq_aborts : int;
  rlockdep_violations : int;  (** must be 0 *)
}

(** The candidate styles RW-SCALING compares. *)
val rw_styles : Rw_scaling.style list

val rw_scaling :
  ?cfg:Config.t ->
  ?styles:Rw_scaling.style list ->
  ?ratios:float list ->
  ?clusters:int list ->
  ?ops:int ->
  unit ->
  rw_point list

(** CRASH-STORM — fail-stop processor crashes planted mid-critical-section
    ({!Workloads.Crash_storm}): representative flat queue locks and the
    NUMA composites, each with victims dying while holding the lock and
    every survivor acquiring through the recoverable face. Conservation
    (every kill recovered), legality (an installed lockdep checker sees
    every forced release as a recovery transfer, zero violations) and the
    kill-to-forced-release latency distribution, worst cluster included. *)

type crash_point = {
  calgo : Lock.algo;
  ckills : int;
  cacqs : int;  (** successful worker acquisitions around the kills *)
  cobs_crashes : int;
  cobs_recoveries : int;
      (** forced releases, cohort constituents included *)
  clockdep_recoveries : int;  (** checker-legalised recovery transfers *)
  clockdep_violations : int;  (** must be 0 *)
  crec_mean_us : float;  (** kill to forced release *)
  crec_p99_us : float;
  crec_max_us : float;
  crec_n : int;
  cclusters_hit : int;  (** clusters with at least one recovery sample *)
  cworst_cluster_p99_us : float;
  cfinal_free : bool;  (** lock free after the surviving-processor drain *)
}

(** The algorithms CRASH-STORM kills and recovers. *)
val crash_algos : Lock.algo list

val crash_storm :
  ?cfg:Config.t -> ?algos:Lock.algo list -> unit -> crash_point list

(** SLO — open-loop sustained-request stream over the sharded
    million-element table ({!Workloads.Slo_stream}): exponential arrivals
    at a fixed offered rate, FIFO queueing behind a random server,
    arrival-to-completion latency with p50/p99/p99.9 tails. One point per
    offered rate; the top rate sits past the knee so the tails visibly
    leave the service time while the stream still drains. *)

type slo_point = {
  srate : float;  (** offered requests per virtual ms *)
  sp : int;
  selements : int;
  sshards : int;
  scompleted : int;
  sachieved : float;  (** completed requests per virtual ms *)
  sread : Measure.summary;  (** arrival-to-completion, reads *)
  supdate : Measure.summary;
  speak_backlog : int;
  sopt_hits : int;
  sopt_fallbacks : int;
  sviolations : int;  (** must be 0 *)
}

(** The offered-load sweep the SLO experiment runs. *)
val slo_rates : float list

val slo :
  ?cfg:Config.t ->
  ?rates:float list ->
  ?elements:int ->
  ?requests:int ->
  unit ->
  slo_point list

(** ADAPTIVE — lock morphing over the diurnal load cycle
    ({!Workloads.Diurnal}): load ramps cold → hot → cold; no static shape
    wins both phases, while the morphing {!Locks.Lock.Adaptive} lock
    tracks the per-phase winner. One point per algorithm raced over the
    identical cycle. *)

type adaptive_point = {
  dalgo : Lock.algo;
  dname : string;
  dcold1_ops : int;
  dhot_ops : int;
  dcold2_ops : int;
  dcold_throughput : float;  (** ops per virtual ms, both cold plateaus *)
  dhot_throughput : float;
  dmorphs_up : int;  (** observer-counted promotions; 0 for static shapes *)
  dmorphs_down : int;
  dfinal_shape : int;
  dfinal_free : bool;
  dviolations : int;  (** must be 0 *)
}

(** The algorithms the ADAPTIVE experiment races: the morphing lock's own
    three shapes (test&set, H1-MCS, CNA) plus H2-MCS, the cohort composite
    and HMCS, and the morphing lock itself — a field wide enough that each
    phase's winner is a different static shape. *)
val adaptive_algos : Lock.algo list

val adaptive :
  ?cfg:Config.t -> ?algos:Lock.algo list -> unit -> adaptive_point list
