(* Text reports for the reproduction harness: one printer per experiment,
   each stating what the paper reports next to what we measured so the
   output reads as an EXPERIMENTS.md draft. *)

open Locks
open Workloads

let hr ppf = Format.fprintf ppf "%s@." (String.make 78 '-')

let section ppf title paper_claim =
  hr ppf;
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "paper: %s@." paper_claim;
  hr ppf

let fig4 ppf rows =
  section ppf "FIG4 - instruction counts per uncontended lock/unlock pair"
    "MCS 2/2/3/5, H1 2/1/3/5, H2 2/0/3/4, Spin 2/0/1/3 (Atomic/Mem/Reg/Br)";
  Format.fprintf ppf "%-8s %7s %5s %5s %5s   %-6s %9s@." "algo" "Atomic"
    "Mem" "Reg" "Br" "match" "pred(us)";
  List.iter
    (fun (r : Experiments.fig4_row) ->
      let c = r.ours in
      Format.fprintf ppf "%-8s %7d %5d %5d %5d   %-6b %9.2f@."
        (Instr_model.algo_name r.algo)
        c.Instr_model.atomic c.Instr_model.mem c.Instr_model.reg
        c.Instr_model.br (r.ours = r.paper) r.predicted_us)
    rows

let uncontended ppf results =
  section ppf "UNC - uncontended lock/unlock latency (Section 4.1.1)"
    "MCS 5.40us -> H2-MCS 3.69us (32% better); spin 3.65us";
  Format.fprintf ppf "%-10s %12s %12s@." "algo" "measured(us)" "model(us)";
  List.iter
    (fun (r : Uncontended.result) ->
      Format.fprintf ppf "%-10s %12.2f %12s@."
        (Lock.algo_name r.Uncontended.algo)
        r.Uncontended.pair_us
        (match r.Uncontended.predicted_us with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"))
    results

let fig5 ppf ~name ~hold_us series =
  section ppf
    (Printf.sprintf "%s - lock response time under contention (hold %.0fus)"
       name hold_us)
    "MCS/H1 scale best; H2 adds a constant repair cost (visible at hold 0); \
     spin(35us) degrades; spin(2ms) competitive in mean but starves";
  Format.fprintf ppf "%-12s" "p";
  (match series with
  | { Experiments.points; _ } :: _ ->
    List.iter (fun (p, _) -> Format.fprintf ppf "%9d" p) points
  | [] -> ());
  Format.fprintf ppf "@.";
  List.iter
    (fun { Experiments.algo; points } ->
      Format.fprintf ppf "%-12s" (Lock.algo_name algo);
      List.iter
        (fun (_, (r : Lock_stress.result)) ->
          Format.fprintf ppf "%9.1f" r.Lock_stress.summary.Measure.mean_us)
        points;
      Format.fprintf ppf "@.")
    series

let starvation ppf (s : Measure.summary) =
  section ppf "STARVATION - spin(2ms), p=16, hold 25us (Section 4.1.2)"
    "over 13% of acquisitions took more than 2ms";
  Format.fprintf ppf
    "measured: %.1f%% of %d acquisitions over 2ms (p99 = %.0fus, max = %.0fus)@."
    (100.0 *. s.Measure.frac_above_2ms)
    s.Measure.n s.Measure.p99_us s.Measure.max_us

let fig7 ppf ~name ~xlabel ~claim series =
  section ppf name claim;
  Format.fprintf ppf "%-12s" xlabel;
  (match series with
  | { Experiments.series = pts; _ } :: _ ->
    List.iter (fun p -> Format.fprintf ppf "%9d" p.Experiments.x) pts
  | [] -> ());
  Format.fprintf ppf "@.";
  List.iter
    (fun { Experiments.lock_algo; series = pts } ->
      Format.fprintf ppf "%-12s" (Lock.algo_name lock_algo);
      List.iter (fun p -> Format.fprintf ppf "%9.1f" p.Experiments.mean_us) pts;
      Format.fprintf ppf "@.")
    series

let constants ppf (c : Calibration.result) =
  section ppf "CONST - absolute cost anchors"
    "soft fault ~160us of which ~40us locking; null RPC ~27us; \
     lookup+replicate ~88us";
  Format.fprintf ppf "soft page fault     : %7.1f us@."
    c.Calibration.soft_fault_us;
  Format.fprintf ppf "  lock overhead     : %7.1f us@."
    c.Calibration.lock_overhead_us;
  Format.fprintf ppf "null RPC            : %7.1f us@." c.Calibration.null_rpc_us;
  Format.fprintf ppf "lookup + replicate  : %7.1f us (extra over a local fault)@."
    c.Calibration.replicate_extra_us

let retries ppf ((opt : Destruction.result), (pes : Destruction.result)) =
  section ppf "RETRY - program destruction, optimistic vs pessimistic (2.3/2.5)"
    "retries are common for destruction regardless of strategy; the \
     optimistic protocol avoids re-establishing state in the common case";
  let line (r : Destruction.result) =
    Format.fprintf ppf
      "%-12s destroys=%4d retries=%4d revalidations=%4d lost=%3d mean=%8.1fus total=%9.0fus@."
      (Hkernel.Procs.strategy_name r.Destruction.strategy)
      r.Destruction.destroys r.Destruction.retries r.Destruction.revalidations
      r.Destruction.lost_races r.Destruction.destroy_summary.Measure.mean_us
      r.Destruction.total_us
  in
  line opt;
  line pes

let ablation_granularity ppf results =
  section ppf "ABL1 - hybrid vs coarse vs fine locking of the hash table"
    "hybrid matches fine-grained concurrency for independent requests at a \
     fraction of the lock words; coarse serialises";
  Format.fprintf ppf "%-8s %10s %10s %10s %12s@." "mode" "mean(us)" "p99(us)"
    "atomics" "lock words";
  List.iter
    (fun (r : Hash_stress.result) ->
      Format.fprintf ppf "%-8s %10.1f %10.1f %10d %12d@."
        (Hkernel.Khash.granularity_name r.Hash_stress.granularity)
        r.Hash_stress.summary.Measure.mean_us
        r.Hash_stress.summary.Measure.p99_us r.Hash_stress.atomics
        r.Hash_stress.lock_words)
    results

let ablation_combining ppf
    ((comb : Replication_storm.result), (direct : Replication_storm.result)) =
  section ppf "ABL2 - combining tree for descriptor replication (Section 2.2)"
    "the combining tree bounds demand on the master to one request per \
     cluster under bursty simultaneous misses";
  let line (r : Replication_storm.result) =
    Format.fprintf ppf
      "%-14s mean=%8.1fus p99=%8.1fus master-rpcs/storm=%5.1f replications/storm=%5.1f@."
      r.Replication_storm.summary.Measure.label
      r.Replication_storm.summary.Measure.mean_us
      r.Replication_storm.summary.Measure.p99_us
      r.Replication_storm.master_rpcs_per_storm
      r.Replication_storm.replications_per_storm
  in
  line comb;
  line direct

let ablation_cas ppf rows =
  section ppf "ABL3 - compare&swap release (Section 5.2)"
    "with CAS the contended differential of the fetch&store repair shrinks";
  Format.fprintf ppf "%-14s %-12s %14s %16s@." "machine" "algo"
    "uncontended(us)" "contended p16(us)";
  List.iter
    (fun (r : Experiments.abl3_row) ->
      Format.fprintf ppf "%-14s %-12s %14.2f %16.1f@." r.Experiments.machine
        (Lock.algo_name r.Experiments.algo)
        r.Experiments.uncontended_us r.Experiments.contended_p16_us)
    rows

let trylock ppf (r : Trylock_starvation.result) =
  section ppf "TRY - TryLock under a saturated distributed lock (Section 3.2)"
    "retry-based TryLock starves (the lock is never observed free); the \
     soft-mask + deferred-work scheme completes every request";
  Format.fprintf ppf
    "trylock-v2: %d/%d attempts succeeded (%.1f%%)@."
    r.Trylock_starvation.try_successes r.Trylock_starvation.try_attempts
    (100.0 *. r.Trylock_starvation.try_success_rate);
  Format.fprintf ppf
    "deferred-work: %d/%d completed; latency %a@."
    r.Trylock_starvation.deferred_completed r.Trylock_starvation.deferred_posted
    Measure.pp r.Trylock_starvation.deferred_latency

let ablation_clh ppf rows =
  section ppf "ABL4 - CLH vs MCS queue locks across machines (Section 5.2)"
    "CLH spins on the predecessor's node: fine with coherent caches, remote \
     traffic on HECTOR — why Hurricane picked MCS";
  Format.fprintf ppf "%-12s %-8s %14s@." "machine" "algo" "contended(us)";
  List.iter
    (fun (r : Experiments.abl4_row) ->
      Format.fprintf ppf "%-12s %-8s %14.1f@." r.Experiments.machine4
        (Lock.algo_name r.Experiments.algo4)
        r.Experiments.contended_us)
    rows

let ablation_cached_locks ppf rows =
  section ppf "ABL5 - uncontended lock cost with cache-based primitives"
    "on the coherent machine, lock pairs run in the cache: tens of lock \
     operations per miss (Section 5.3)";
  Format.fprintf ppf "%-12s %-12s %10s %12s@." "machine" "algo" "pair(us)"
    "pair(cycles)";
  List.iter
    (fun (r : Experiments.abl5_row) ->
      Format.fprintf ppf "%-12s %-12s %10.3f %12.0f@." r.Experiments.machine5
        (Lock.algo_name r.Experiments.algo5)
        r.Experiments.pair_us r.Experiments.pair_cycles)
    rows

let ablation_spin_then_block ppf rows =
  section ppf "ABL6 - spin-then-block under long holds (Section 5.3)"
    "with long critical sections, blocked waiters generate no traffic; the \
     hand-off premium is small";
  List.iter
    (fun ((algo : Lock.algo), (r : Lock_stress.result)) ->
      Format.fprintf ppf "%-14s %a@."
        (Lock.algo_name algo)
        Measure.pp r.Lock_stress.summary)
    rows

let ablation_lockfree ppf rows =
  section ppf "ABL7 - lock-free single-word updates (Section 5.3)"
    "a CAS retry loop beats lock/update/unlock for leaf data on the CAS \
     machine, with exact results";
  Format.fprintf ppf "%-22s %10s %10s %8s %10s@." "mode" "per-op(us)"
    "atomics" "exact" "cas-fail";
  List.iter
    (fun (r : Counter_stress.result) ->
      Format.fprintf ppf "%-22s %10.2f %10d %8b %10d@."
        (Counter_stress.mode_name r.Counter_stress.mode)
        r.Counter_stress.per_op_us r.Counter_stress.atomics
        (r.Counter_stress.final_value = r.Counter_stress.expected_value)
        r.Counter_stress.cas_failures)
    rows

let ablation_layout ppf
    ((combined : Messaging_mix.result), (separate : Messaging_mix.result)) =
  section ppf "ABL8 - combined vs separate family tree (Section 2.5)"
    "tree links inside the process descriptors make destruction and message \
     passing contend on the same reserve bits; a separate tree removes the \
     interference";
  let line (r : Messaging_mix.result) =
    Format.fprintf ppf
      "%-14s sends=%4d send-retries=%4d destroys=%3d destroy-retries=%4d \
       send-mean=%7.1fus destroy-mean=%8.1fus@."
      (Hkernel.Procs.layout_name r.Messaging_mix.layout)
      r.Messaging_mix.sends r.Messaging_mix.send_retries
      r.Messaging_mix.destroys r.Messaging_mix.destroy_retries
      r.Messaging_mix.send_summary.Measure.mean_us
      r.Messaging_mix.destroy_summary.Measure.mean_us
  in
  line combined;
  line separate

let ablation_lock_family ppf rows =
  section ppf "ABL9 - the lock family on the modern machine (Section 5.2)"
    "spin: cheapest, unfair; ticket: fair, 2 words, one hot word; Anderson: \
     fair, P words/lock; CLH/MCS: fair, per-processor nodes; \
     spin-then-block: fair, no waiting traffic";
  Format.fprintf ppf "%-14s %14s %16s %14s@." "algo" "uncontended(us)"
    "contended p12(us)" "words/lock(P=16)";
  List.iter
    (fun (r : Experiments.abl9_row) ->
      Format.fprintf ppf "%-14s %14.3f %16.1f %14d@."
        (Lock.algo_name r.Experiments.algo9)
        r.Experiments.unc_us r.Experiments.contended12_us r.Experiments.space)
    rows

let classes ppf (r : Four_classes.result) =
  section ppf "CLASSES - the four access-behaviour classes at once (Section 1)"
    "clustering isolates the independent classes; replication absorbs read \
     sharing; only write sharing pays cross-cluster costs";
  let line (s : Measure.summary) = Format.fprintf ppf "  %a@." Measure.pp s in
  line r.Four_classes.non_concurrent;
  line r.Four_classes.independent;
  line r.Four_classes.read_shared;
  line r.Four_classes.write_shared;
  Format.fprintf ppf
    "  cross-cluster: %d replications, %d invalidations, %d retries@."
    r.Four_classes.replications r.Four_classes.invalidations
    r.Four_classes.retries

let cow ppf ((opt : Cow_storm.result), (pes : Cow_storm.result)) =
  section ppf "COW - simultaneous copy-on-write faults (Sections 2.3/2.5)"
    "retries are required independent of the strategy; the pessimistic one \
     additionally finds the shared page gone and must handle it";
  let line (r : Cow_storm.result) =
    Format.fprintf ppf
      "%-12s broke=%4d found-gone=%3d retries=%4d mean=%8.1fus p99=%8.1fus@."
      (Hkernel.Procs.strategy_name r.Cow_storm.strategy)
      r.Cow_storm.broke r.Cow_storm.found_gone r.Cow_storm.retries
      r.Cow_storm.summary.Measure.mean_us r.Cow_storm.summary.Measure.p99_us
  in
  line opt;
  line pes

let fault_matrix ppf rows =
  section ppf "FAULTS - injected holder stalls vs recovery mechanisms"
    "a stalled holder freezes everything behind an unbounded spin or retry; \
     timeouts re-search around it and a bounded RPC budget degrades to \
     pessimistic fallbacks instead of looping";
  Format.fprintf ppf "%-14s %10s %6s %9s %11s %11s %6s %6s %6s %7s %7s@."
    "mechanism" "stall/us" "doses" "ops" "retained" "recov(us)" "ltmo"
    "rtmo" "gaveup" "defer" "p99(us)";
  List.iter
    (fun (r : Experiments.fault_row) ->
      Format.fprintf ppf
        "%-14s %10.0f %6d %9d %10.0f%% %11.1f %6d %6d %6d %7d %7.1f@."
        (Fault_storm.mechanism_name r.fmech)
        r.stall_every_us r.stalls r.fault_ops
        (100.0 *. r.retained)
        r.recovery_mean_us r.fault_lock_timeouts r.fault_reserve_timeouts
        r.fault_gave_ups r.fault_deferred r.recovery_p99_us)
    rows

let fs ppf rows =
  section ppf "FS - the file server, same techniques (Section 5.1)"
    "per-cluster block caches + combining fetches give the file system the \
     same concurrency; read-ahead turns sequential misses into hits";
  Format.fprintf ppf "%-16s %10s %10s %10s %12s@." "workload" "mean(us)"
    "p99(us)" "hit rate" "fetch RPCs";
  List.iter
    (fun (r : File_read.result) ->
      Format.fprintf ppf "%-16s %10.1f %10.1f %9.0f%% %12d@."
        r.File_read.summary.Measure.label r.File_read.summary.Measure.mean_us
        r.File_read.summary.Measure.p99_us
        (100.0 *. r.File_read.hit_rate)
        r.File_read.fetch_rpcs)
    rows

let verify ppf rows =
  section ppf "VERIFY - lockdep checker vs planted violations"
    "each probe plants one class of locking error; the checker must catch \
     every one (the watchdog probes by aborting an otherwise-endless run) \
     and stay silent on the clean storm";
  Format.fprintf ppf "%-16s %-18s %6s %6s %8s %6s@." "probe" "expected"
    "total" "hits" "aborted" "ok";
  List.iter
    (fun (r : Experiments.verify_row) ->
      Format.fprintf ppf "%-16s %-18s %6d %6d %8s %6s@."
        (Verify_probes.probe_name r.Experiments.vprobe)
        r.Experiments.vexpected r.Experiments.vviolations r.Experiments.vhits
        (if r.Experiments.vaborted then "yes" else "no")
        (if r.Experiments.vok then "ok" else "FAIL"))
    rows;
  List.iter
    (fun (r : Experiments.verify_row) ->
      if r.Experiments.vfirst <> "" then
        Format.fprintf ppf "  %-16s %s@."
          (Verify_probes.probe_name r.Experiments.vprobe)
          r.Experiments.vfirst)
    rows

let numa_locks ppf (rows : Experiments.numa_point list) =
  section ppf "NUMA-LOCKS - cross-cluster contention (cohort/HMCS/CNA vs MCS)"
    "16 processors hammer one lock, partitioned into clusters; NUMA-aware \
     locks hand off within a cluster when they can, so the fraction of \
     hand-offs crossing a cluster boundary - and with it the data's \
     migration traffic - drops against flat MCS";
  Format.fprintf ppf "%-15s %8s %9s %10s %9s %9s %9s %8s %10s@." "lock"
    "clusters" "hold(us)" "mean(us)" "p99(us)" "local" "remote" "rem%"
    "maxw(us)";
  List.iter
    (fun (r : Experiments.numa_point) ->
      Format.fprintf ppf "%-15s %8d %9.0f %10.2f %9.1f %9d %9d %7.1f%% %10.1f@."
        (Lock.algo_name r.Experiments.nalgo)
        r.Experiments.nclusters r.Experiments.nhold_us r.Experiments.nmean_us
        r.Experiments.np99_us r.Experiments.nlocal r.Experiments.nremote
        (100.0 *. r.Experiments.nremote_frac)
        r.Experiments.nmax_wait_us)
    rows

let hash_scaling ppf (rows : Experiments.hash_point list) =
  section ppf "HASH-SCALING - sharded table + seqlock optimistic reads"
    "the hybrid table's single coarse lock is the ceiling within a \
     cluster; splitting the bins over per-shard locks homed on distinct \
     PMMs restores scaling, and a per-shard sequence word lets read-only \
     lookups skip the lock entirely (a pair of loads instead of an \
     acquire/release round-trip)";
  Format.fprintf ppf "%-8s %6s %4s %5s %5s %10s %9s %10s %9s %6s %5s@."
    "mode" "shards" "opt" "p" "read" "read(us)" "p99(us)" "upd(us)"
    "thr/ms" "hits" "fb";
  List.iter
    (fun (r : Experiments.hash_point) ->
      Format.fprintf ppf
        "%-8s %6d %4s %5d %4.0f%% %10.2f %9.1f %10.2f %9.1f %6d %5d@."
        (Hkernel.Khash.granularity_name r.Experiments.hgran)
        r.Experiments.hshards
        (if r.Experiments.hoptimistic then "yes" else "no")
        r.Experiments.hp
        (100.0 *. r.Experiments.hread_ratio)
        r.Experiments.hread_mean_us r.Experiments.hread_p99_us
        r.Experiments.hupdate_mean_us r.Experiments.hthroughput
        r.Experiments.hopt_hits r.Experiments.hopt_fallbacks)
    rows

let abort_storm ppf (rows : Experiments.abort_point list) =
  section ppf "ABORT-STORM - timed abandonment under a stalled holder"
    "one processor takes the lock and goes dark for ~10x any waiter's \
     deadline; every other processor attempts through the timed face. \
     Each expired waiter must return within a bounded multiple of its \
     deadline (the ratio column) instead of riding out the stall, remote \
     aborts show waiters expiring at every level of the NUMA composite, \
     and the lock must recover promptly - abandoned queue nodes repaired \
     at the next hand-offs - once the holder releases";
  Format.fprintf ppf "%-15s %8s %6s %7s %6s %9s %9s %6s %9s %7s %7s %5s@."
    "lock" "attempts" "acq" "aborts" "stall" "over(us)" "maxov(us)" "ratio"
    "rec(us)" "rem-ab" "repair" "free";
  List.iter
    (fun (r : Experiments.abort_point) ->
      Format.fprintf ppf
        "%-15s %8d %6d %7d %6d %9.2f %9.1f %6.2f %9.1f %7d %7d %5s@."
        (Lock.algo_name r.Experiments.aalgo)
        r.Experiments.aattempts r.Experiments.aacqs r.Experiments.aaborts
        r.Experiments.astalls r.Experiments.aover_mean_us
        r.Experiments.aover_max_us r.Experiments.abound_ratio
        r.Experiments.arecovery_mean_us r.Experiments.aremote_aborts
        r.Experiments.aobs_repairs
        (if r.Experiments.afinal_free then "yes" else "NO"))
    rows

let crash_storm ppf (rows : Experiments.crash_point list) =
  section ppf "CRASH-STORM - fail-stop kills mid-critical-section"
    "victim processors fail-stop while holding the lock (the fiber parks, \
     releasing nothing); every survivor acquires through the recoverable \
     face, whose dead-holder detector force-releases each orphaned hold. \
     Conservation demands a recovery per kill, an installed lockdep \
     checker must see every forced release as a legal transfer (zero \
     violations), and the storm must end with the lock free";
  Format.fprintf ppf "%-15s %6s %6s %7s %6s %6s %5s %9s %9s %9s %5s %10s %5s@."
    "lock" "kills" "acq" "crashes" "recov" "lkdep" "viol" "rec(us)" "p99(us)"
    "max(us)" "clus" "worstp99" "free";
  List.iter
    (fun (r : Experiments.crash_point) ->
      Format.fprintf ppf
        "%-15s %6d %6d %7d %6d %6d %5d %9.1f %9.1f %9.1f %5d %10.1f %5s@."
        (Lock.algo_name r.Experiments.calgo)
        r.Experiments.ckills r.Experiments.cacqs r.Experiments.cobs_crashes
        r.Experiments.cobs_recoveries r.Experiments.clockdep_recoveries
        r.Experiments.clockdep_violations r.Experiments.crec_mean_us
        r.Experiments.crec_p99_us r.Experiments.crec_max_us
        r.Experiments.cclusters_hit r.Experiments.cworst_cluster_p99_us
        (if r.Experiments.cfinal_free then "yes" else "NO"))
    rows

let rw_scaling ppf (rows : Experiments.rw_point list) =
  section ppf "RW-SCALING - read-mostly lookups: RW lock vs seqlock vs replication"
    "every writer-serialising lock queues readers like writers (peak \
     concurrent readers 1 by construction); per-cluster reader indicators \
     let readers CAS their own cluster's word and run in parallel, the \
     seqlock serves reads for a pair of loads, and replication reads a \
     local copy but pays an update broadcast per write. rd-rem counts \
     read-path indicator ops that crossed a cluster boundary - zero for \
     the distributed layout, the centralised baseline's defining cost";
  Format.fprintf ppf
    "%-22s %5s %4s %3s %9s %8s %9s %9s %7s %5s %7s %6s@." "style" "read"
    "clus" "p" "read(us)" "p99.9" "write(us)" "rdthr/ms" "peak-rd" "rd-rem"
    "sq-ab" "viol";
  List.iter
    (fun (r : Experiments.rw_point) ->
      Format.fprintf ppf
        "%-22s %4.1f%% %4d %3d %9.2f %8.1f %9.2f %9.1f %7d %5d %7d %6d@."
        r.Experiments.rstyle_name
        (100.0 *. r.Experiments.rread_ratio)
        r.Experiments.rclusters r.Experiments.rp r.Experiments.rread_mean_us
        r.Experiments.rread_p999_us r.Experiments.rwrite_mean_us
        r.Experiments.rread_throughput r.Experiments.rpeak_readers
        r.Experiments.rread_remote r.Experiments.rseq_aborts
        r.Experiments.rlockdep_violations)
    rows

let obs ?(cfg = Hector.Config.hector) ppf (r : Experiments.obs_result) =
  section ppf "OBS - where did the cycles go (dosed fault storm)"
    "the argument of Figures 5/7 is made by attributing waiting time to \
     specific locks; here every wait/hold cycle is charged to its lock \
     class and the waiting processor's cluster";
  let us c = Hector.Config.us_of_cycles cfg c in
  Format.fprintf ppf "%-16s %-8s %9s %9s %12s %10s %10s %12s %9s %11s@."
    "class" "cluster" "acqs" "cont" "wait(us)" "avg(us)" "maxw(us)" "hold(us)"
    "handoff" "local/rem";
  let line name cluster (c : Obs.cells) =
    Format.fprintf ppf
      "%-16s %-8s %9d %9d %12.1f %10.2f %10.1f %12.1f %9d %5d/%-5d@." name
      cluster c.Obs.acqs c.Obs.contended
      (us c.Obs.wait_cycles)
      (if c.Obs.acqs + c.Obs.contended = 0 then 0.0
       else us c.Obs.wait_cycles /. float_of_int (max c.Obs.acqs c.Obs.contended))
      (us c.Obs.max_wait_cycles)
      (us c.Obs.hold_cycles) c.Obs.handoffs c.Obs.handoffs_local
      c.Obs.handoffs_remote
  in
  List.iter
    (fun (row : Obs.row) ->
      line row.Obs.row_class "total" row.Obs.total;
      List.iter
        (fun (cl, cells) -> line "" (Printf.sprintf "  c%d" cl) cells)
        row.Obs.by_cluster)
    r.Experiments.obs_rows;
  let s = r.Experiments.obs_storm in
  Format.fprintf ppf
    "storm: ops=%d deferred=%d rpc=%d/%d stalls=%d (mechanism %s)@."
    s.Fault_storm.ops s.Fault_storm.deferred s.Fault_storm.rpc_ok
    s.Fault_storm.rpc_calls s.Fault_storm.stalls_injected
    (Fault_storm.mechanism_name s.Fault_storm.mechanism)

let slo ppf (rows : Experiments.slo_point list) =
  section ppf "SLO - open-loop request stream over the million-element table"
    "requests arrive on their own clock and queue behind a random server, \
     so latency includes queueing delay: as the offered rate approaches \
     the table's capacity the p99/p99.9 tails leave the service time long \
     before the mean moves - the closed-loop workloads cannot show this. \
     every point runs under the lockdep checker (viol must be 0)";
  Format.fprintf ppf
    "%-9s %3s %9s %7s %9s %8s %8s %9s %9s %8s %6s %5s@." "rate/ms" "p"
    "elements" "done" "ach/ms" "rd-p50" "rd-p99" "rd-p99.9" "up-p99" "backlog"
    "opt-h" "viol";
  List.iter
    (fun (r : Experiments.slo_point) ->
      Format.fprintf ppf
        "%9.1f %3d %9d %7d %9.1f %8.2f %8.2f %9.2f %9.2f %8d %6d %5d@."
        r.Experiments.srate r.Experiments.sp r.Experiments.selements
        r.Experiments.scompleted r.Experiments.sachieved
        r.Experiments.sread.Measure.p50_us r.Experiments.sread.Measure.p99_us
        r.Experiments.sread.Measure.p999_us
        r.Experiments.supdate.Measure.p99_us r.Experiments.speak_backlog
        r.Experiments.sopt_hits r.Experiments.sviolations)
    rows

let adaptive ppf (rows : Experiments.adaptive_point list) =
  section ppf "ADAPTIVE - lock morphing over the diurnal load cycle"
    "load ramps cold -> hot -> cold in three equal plateaus: a same-cluster \
     trickle where a test&set lock is unbeatable, then every processor \
     across every cluster where hand-offs go mostly remote and the NUMA \
     composite wins, then the trickle again. No static shape tops both \
     phase columns; the morphing lock promotes through its shapes as the \
     peak arrives (up/down count the observer's morph events) and demotes \
     back once traffic cools, tracking the per-phase winner. Every row \
     runs under the lockdep checker (viol must be 0)";
  Format.fprintf ppf "%-16s %9s %9s %9s %9s %9s %4s %5s %6s %5s %5s@." "lock"
    "cold1-ops" "hot-ops" "cold2-ops" "cold/ms" "hot/ms" "up" "down" "shape"
    "free" "viol";
  List.iter
    (fun (r : Experiments.adaptive_point) ->
      Format.fprintf ppf "%-16s %9d %9d %9d %9.1f %9.1f %4d %5d %6d %5s %5d@."
        r.Experiments.dname r.Experiments.dcold1_ops r.Experiments.dhot_ops
        r.Experiments.dcold2_ops r.Experiments.dcold_throughput
        r.Experiments.dhot_throughput r.Experiments.dmorphs_up
        r.Experiments.dmorphs_down r.Experiments.dfinal_shape
        (if r.Experiments.dfinal_free then "yes" else "NO")
        r.Experiments.dviolations)
    rows
