(** Text reports, one per experiment: each prints what the paper reports
    beside what the reproduction measured. *)

open Locks
open Workloads

val hr : Format.formatter -> unit
val section : Format.formatter -> string -> string -> unit

val fig4 : Format.formatter -> Experiments.fig4_row list -> unit
val uncontended : Format.formatter -> Uncontended.result list -> unit

val fig5 :
  Format.formatter ->
  name:string ->
  hold_us:float ->
  Experiments.fig5_series list ->
  unit

val starvation : Format.formatter -> Measure.summary -> unit

val fig7 :
  Format.formatter ->
  name:string ->
  xlabel:string ->
  claim:string ->
  Experiments.fig7_series list ->
  unit

val constants : Format.formatter -> Calibration.result -> unit

val retries :
  Format.formatter -> Destruction.result * Destruction.result -> unit

val ablation_granularity : Format.formatter -> Hash_stress.result list -> unit

val ablation_combining :
  Format.formatter -> Replication_storm.result * Replication_storm.result -> unit

val ablation_cas : Format.formatter -> Experiments.abl3_row list -> unit
val ablation_clh : Format.formatter -> Experiments.abl4_row list -> unit

val ablation_cached_locks :
  Format.formatter -> Experiments.abl5_row list -> unit

val ablation_spin_then_block :
  Format.formatter -> (Lock.algo * Lock_stress.result) list -> unit

val ablation_lockfree : Format.formatter -> Counter_stress.result list -> unit

val ablation_layout :
  Format.formatter -> Messaging_mix.result * Messaging_mix.result -> unit
val trylock : Format.formatter -> Trylock_starvation.result -> unit

val ablation_lock_family :
  Format.formatter -> Experiments.abl9_row list -> unit

val classes : Format.formatter -> Four_classes.result -> unit

val cow : Format.formatter -> Cow_storm.result * Cow_storm.result -> unit

val fs : Format.formatter -> File_read.result list -> unit

val fault_matrix : Format.formatter -> Experiments.fault_row list -> unit

val verify : Format.formatter -> Experiments.verify_row list -> unit

val numa_locks : Format.formatter -> Experiments.numa_point list -> unit

val hash_scaling : Format.formatter -> Experiments.hash_point list -> unit

val abort_storm : Format.formatter -> Experiments.abort_point list -> unit
val crash_storm : Format.formatter -> Experiments.crash_point list -> unit
val rw_scaling : Format.formatter -> Experiments.rw_point list -> unit

val obs :
  ?cfg:Hector.Config.t -> Format.formatter -> Experiments.obs_result -> unit

val slo : Format.formatter -> Experiments.slo_point list -> unit

val adaptive : Format.formatter -> Experiments.adaptive_point list -> unit
