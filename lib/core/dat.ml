(* TSV emitters for the figure series, for plotting.

   `bench/main.exe --dat DIR` writes one file per figure plus a gnuplot
   script that renders them; columns are tab-separated with a commented
   header, so any plotting tool can read them. *)

open Locks
open Workloads

let write_file dir name lines =
  let path = Filename.concat dir name in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  path

(* Figure 5 series: p vs mean latency per algorithm. *)
let fig5 dir ~name (series : Experiments.fig5_series list) =
  let header =
    "# p\t"
    ^ String.concat "\t"
        (List.map
           (fun (s : Experiments.fig5_series) ->
             Lock.algo_name s.Experiments.algo)
           series)
  in
  let xs =
    match series with
    | s :: _ -> List.map fst s.Experiments.points
    | [] -> []
  in
  let row p =
    string_of_int p
    ^ "\t"
    ^ String.concat "\t"
        (List.map
           (fun (s : Experiments.fig5_series) ->
             let r =
               (* Each series swept the same processor counts; a missing
                  point means a runner bug, and a bare [Not_found] from
                  deep inside the emitter names neither the figure nor
                  the hole. *)
               try List.assoc p s.Experiments.points
               with Not_found ->
                 failwith
                   (Printf.sprintf
                      "Dat.fig5 (%s): series %s has no point at p=%d" name
                      (Lock.algo_name s.Experiments.algo) p)
             in
             Printf.sprintf "%.2f" r.Lock_stress.summary.Measure.mean_us)
           series)
  in
  write_file dir (name ^ ".dat") (header :: List.map row xs)

(* Figure 7 series: x vs mean latency per lock algorithm. *)
let fig7 dir ~name (series : Experiments.fig7_series list) =
  let header =
    "# x\t"
    ^ String.concat "\t"
        (List.map (fun s -> Lock.algo_name s.Experiments.lock_algo) series)
  in
  let xs =
    match series with
    | s :: _ -> List.map (fun p -> p.Experiments.x) s.Experiments.series
    | [] -> []
  in
  let row x =
    string_of_int x
    ^ "\t"
    ^ String.concat "\t"
        (List.map
           (fun s ->
             let p =
               try
                 List.find (fun p -> p.Experiments.x = x) s.Experiments.series
               with Not_found ->
                 failwith
                   (Printf.sprintf
                      "Dat.fig7 (%s): series %s has no point at x=%d" name
                      (Lock.algo_name s.Experiments.lock_algo) x)
             in
             Printf.sprintf "%.2f" p.Experiments.mean_us)
           series)
  in
  write_file dir (name ^ ".dat") (header :: List.map row xs)

let gnuplot_script dir =
  let lines =
    [
      "# gnuplot script regenerating the paper's figures from the .dat files";
      "# usage: gnuplot plots.gp   (produces .svg next to the data)";
      "set datafile commentschars '#'";
      "set key top left";
      "set grid";
      "set style data linespoints";
      "set terminal svg size 720,480";
      "set ylabel 'response time (us)'";
      "";
      "set xlabel 'contending processors'";
      "do for [f in 'fig5a fig5b fig7a fig7b'] {";
      "  set output f.'.svg'";
      "  set title f";
      "  plot for [i=2:6] f.'.dat' using 1:i title columnheader(i)";
      "}";
      "";
      "set xlabel 'cluster size'";
      "do for [f in 'fig7c fig7d'] {";
      "  set output f.'.svg'";
      "  set title f";
      "  plot for [i=2:4] f.'.dat' using 1:i title columnheader(i)";
      "}";
    ]
  in
  write_file dir "plots.gp" lines

(* Run every figure and drop its data into [dir]. *)
let write_all dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written =
    [
      fig5 dir ~name:"fig5a" (Experiments.fig5a ());
      fig5 dir ~name:"fig5b" (Experiments.fig5b ());
      fig7 dir ~name:"fig7a" (Experiments.fig7a ());
      fig7 dir ~name:"fig7b" (Experiments.fig7b ());
      fig7 dir ~name:"fig7c" (Experiments.fig7c ());
      fig7 dir ~name:"fig7d" (Experiments.fig7d ());
      gnuplot_script dir;
    ]
  in
  written
