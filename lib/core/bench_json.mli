(** Machine-readable benchmark export: runs the paper experiments and
    renders their in-process results as one schema-stable JSON document
    ([bench/main.exe -- --json] writes it to [BENCH_results.json]), so the
    perf trajectory can be tracked across PRs by tooling instead of by
    reading text tables.

    Schema (version {!schema_version}):
    {v
    { "schema_version": 8,
      "config": "hector",
      "units": { "latency": "us" },
      "experiments": {
        "fig4":        [ {algo, ours:{atomic,mem,reg,br}, paper:{...},
                          matches_paper, predicted_us} ],
        "uncontended": [ {algo, pair_us, predicted_us|null} ],
        "fig5a"/"fig5b": { hold_us,
                           series: [ {algo, points: [ {p, n, mean_us,
                             p50_us, p99_us, p999_us, max_us,
                             frac_above_2ms, acquisitions} ]} ] },
        "starvation":  {n, mean_us, p50_us, p90_us, p99_us, p999_us,
                        min_us, max_us, frac_above_2ms},
        "fig7a".."fig7d": { xlabel,
                            series: [ {algo, points: [ {x, mean_us,
                              p99_us, retries, rpcs} ]} ] },
        "constants":   {soft_fault_us, lockless_fault_us, ...},
        "numa_locks":  [ {algo, clusters, hold_us, mean_us, p99_us,
                          acquisitions, local_handoffs, remote_handoffs,
                          remote_frac, max_wait_us} ],
        "hash_scaling": [ {granularity, shards, optimistic, p, read_ratio,
                           read_mean_us, read_p99_us, update_mean_us,
                           throughput_ops_ms, optimistic_hits,
                           optimistic_fallbacks, atomics} ],
        "abort_storm": [ {algo, attempts, acquisitions, aborts, fast_fails,
                          stalls, overshoot_mean_us, overshoot_p99_us,
                          overshoot_max_us, bound_ratio, recovery_mean_us,
                          recovery_max_us, obs_aborts, obs_repairs,
                          remote_aborts, final_free} ],
        "crash_storm": [ {algo, kills, acquisitions, obs_crashes,
                          obs_recoveries, lockdep_recoveries,
                          lockdep_violations, recovery_mean_us,
                          recovery_p99_us, recovery_max_us, recovery_n,
                          clusters_hit, worst_cluster_p99_us, final_free} ],
        "rw_scaling":  [ {style, read_ratio, clusters, p, read_mean_us,
                          read_p99_us, read_p999_us, write_mean_us,
                          throughput_ops_ms, read_throughput_ops_ms, reads,
                          writes, peak_readers, read_remote, seq_aborts,
                          lockdep_violations} ],
        "slo":         [ {offered_per_ms, p, elements, shards, completed,
                          achieved_per_ms, read:{n, mean_us, p50_us, p90_us,
                          p99_us, p999_us, min_us, max_us, frac_above_2ms},
                          update:{...}, peak_backlog, optimistic_hits,
                          optimistic_fallbacks, lockdep_violations} ],
        "adaptive":    [ {lock, cold1_ops, hot_ops, cold2_ops,
                          cold_throughput_ops_ms, hot_throughput_ops_ms,
                          morphs_up, morphs_down, final_shape, final_free,
                          lockdep_violations} ]
      } }
    v}
    Version 2 added "numa_locks" (cross-cluster contention: NUMA-aware
    composites vs flat MCS, with hand-off locality and worst-case waits).
    Version 3 added "hash_scaling" (sharded hash table + seqlock
    optimistic reads: throughput and read/update latency per granularity x
    shard count x read ratio x p).
    Version 4 added "abort_storm" (timed abandonment under a planted
    cross-cluster holder stall: overshoot vs deadline, worst
    return/timeout ratio, recovery latency and per-cluster abort counts
    per abortable algorithm).
    Version 5 added "crash_storm" (fail-stop kills planted
    mid-critical-section: conservation, lockdep-legalised recovery
    transfers, kill-to-forced-release latency per algorithm and worst
    cluster).
    Version 6 added "rw_scaling" (read-mostly lookups: distributed RW lock
    vs its centralised-indicator baseline vs seqlock vs per-cluster
    replication, with reader-parallelism peaks and remote read-path
    traffic) and "p999_us" in every latency summary.
    Version 7 added "slo" (open-loop request stream over the sharded
    million-element table: offered vs achieved rate, arrival-to-completion
    p50/p99/p99.9 per offered load, peak backlog, zero lockdep
    violations); all pre-v7 experiment values unchanged.
    Version 8 added "adaptive" (the diurnal load cycle: per-phase
    throughput of the morphing lock against every static shape, with
    observer-counted promotions/demotions and the final shape gauge); all
    pre-v8 experiment values unchanged.
    Every number is the exact value the in-process runner returned — the
    schema test re-runs an experiment and compares the parsed file against
    it. *)

open Hector

val schema_version : int

(** ["fig4"; "uncontended"; "fig5a"; "fig5b"; "starvation"; "fig7a"-"d";
    "constants"; "numa_locks"; "hash_scaling"; "abort_storm";
    "crash_storm"; "rw_scaling"; "slo"; "adaptive"] — what a bare [--json]
    exports. *)
val default_names : string list

(** Build the document for the named experiments (unknown names raise
    [Invalid_argument]). The sweep knobs ([procs]/[sizes]/[iters]/[rounds])
    default to the paper's full settings; tests and CI pass reduced ones
    through the same code path. [jobs] runs the independent experiment
    cells on that many OCaml domains via {!Par.map}; the document is
    byte-identical to a [jobs = 1] run (each cell owns its Engine, Machine
    and seeded Rng, and fragments are reassembled in the sequential
    order). *)
val document :
  ?cfg:Config.t ->
  ?procs:int list ->
  ?sizes:int list ->
  ?iters:int ->
  ?rounds:int ->
  ?jobs:int ->
  names:string list ->
  unit ->
  Json.t

(** [write ~path doc] serialises with a trailing newline. *)
val write : path:string -> Json.t -> unit
