(* A small work-stealing-free domain pool for embarrassingly parallel maps.

   The bench matrix is a list of independent experiment cells: each one
   builds its own Engine + Machine + seeded Rng, so cells share no mutable
   state beyond a few atomics (Cell.counter, Verify interning) that never
   reach exported results. [map] hands cells to [jobs] domains through a
   single atomic work index and writes each result into its input's slot, so
   the output order — and therefore any serialisation of it — is identical
   to the sequential order no matter how the domains interleave.

   Exceptions are captured per slot and re-raised in input order once every
   domain has joined: a crash in cell 7 surfaces as the same exception the
   sequential run would raise, after the pool has quiesced. *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let slots = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (slots.(i) <-
           (match f input.(i) with
            | r -> Done r
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned = min jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* First failure in input order, for determinism. *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      slots;
    Array.to_list
      (Array.map
         (function Done r -> r | Pending | Raised _ -> assert false)
         slots)
  end
