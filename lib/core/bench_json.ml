(* JSON benchmark export (schema in bench_json.mli). Each experiment's
   encoder works from the same result values the text reports print, so the
   file and the tables can never disagree.

   Every experiment is decomposed into independent *cells* — one value of
   its outermost sweep axis (an algorithm, a style, a processor count, an
   offered rate) — each of which builds its own Engine/Machine/Rng from a
   fixed seed. [document ~jobs] runs the cells of all requested experiments
   through {!Par.map}, which returns fragments in input order, and
   reassembles them by concatenation — the outermost axis is also the
   outermost loop of every runner, so the parallel export is byte-identical
   to the sequential one. *)

open Locks
open Workloads

(* Version 2: added the "numa_locks" experiment (cross-cluster contention
   with local/remote hand-off counts and worst-case waits).
   Version 3: added the "hash_scaling" experiment (sharded hash table +
   seqlock optimistic reads: throughput and read/update latency per
   granularity x shard count x read ratio x p).
   Version 4: added the "abort_storm" experiment (timed abandonment under
   a planted cross-cluster holder stall: overshoot distribution, worst
   return/timeout ratio, recovery latency and per-cluster abort counts
   per abortable algorithm).
   Version 5: added the "crash_storm" experiment (fail-stop kills planted
   mid-critical-section: conservation, lockdep-legalised recovery
   transfers, kill-to-forced-release latency per algorithm and worst
   cluster).
   Version 6: added the "rw_scaling" experiment (read-mostly lookups:
   distributed RW lock vs its centralised baseline vs seqlock vs
   per-cluster replication, with reader-parallelism peaks and remote
   read-path traffic) and the "p999_us" field in every latency summary.
   Version 7: added the "slo" experiment (open-loop request stream over
   the sharded million-element table: offered vs achieved rate,
   arrival-to-completion p50/p99/p99.9 per offered load, peak backlog,
   zero lockdep violations). All pre-v7 experiment values unchanged.
   Version 8: added the "adaptive" experiment (the diurnal load cycle:
   per-phase throughput of the morphing lock against every static shape,
   with observer-counted promotions/demotions and the final shape gauge).
   All pre-v8 experiment values unchanged. *)
let schema_version = 8

let default_names =
  [
    "fig4";
    "uncontended";
    "fig5a";
    "fig5b";
    "starvation";
    "fig7a";
    "fig7b";
    "fig7c";
    "fig7d";
    "constants";
    "numa_locks";
    "hash_scaling";
    "abort_storm";
    "crash_storm";
    "rw_scaling";
    "slo";
    "adaptive";
  ]

(* -- encoders ------------------------------------------------------------- *)

let counts_json (c : Instr_model.counts) =
  Json.Obj
    [
      ("atomic", Json.Int c.Instr_model.atomic);
      ("mem", Json.Int c.Instr_model.mem);
      ("reg", Json.Int c.Instr_model.reg);
      ("br", Json.Int c.Instr_model.br);
    ]

let fig4_json (rows : Experiments.fig4_row list) =
  Json.List
    (List.map
       (fun (r : Experiments.fig4_row) ->
         Json.Obj
           [
             ("algo", Json.String (Instr_model.algo_name r.Experiments.algo));
             ("ours", counts_json r.Experiments.ours);
             ("paper", counts_json r.Experiments.paper);
             ("matches_paper", Json.Bool (r.Experiments.ours = r.Experiments.paper));
             ("predicted_us", Json.Float r.Experiments.predicted_us);
           ])
       rows)

let uncontended_json (rows : Uncontended.result list) =
  Json.List
    (List.map
       (fun (r : Uncontended.result) ->
         Json.Obj
           [
             ("algo", Json.String (Lock.algo_name r.Uncontended.algo));
             ("pair_us", Json.Float r.Uncontended.pair_us);
             ("predicted_us",
              match r.Uncontended.predicted_us with
              | Some us -> Json.Float us
              | None -> Json.Null);
           ])
       rows)

let summary_fields (s : Measure.summary) =
  [
    ("n", Json.Int s.Measure.n);
    ("mean_us", Json.Float s.Measure.mean_us);
    ("p50_us", Json.Float s.Measure.p50_us);
    ("p90_us", Json.Float s.Measure.p90_us);
    ("p99_us", Json.Float s.Measure.p99_us);
    ("p999_us", Json.Float s.Measure.p999_us);
    ("min_us", Json.Float s.Measure.min_us);
    ("max_us", Json.Float s.Measure.max_us);
    ("frac_above_2ms", Json.Float s.Measure.frac_above_2ms);
  ]

let fig5_series_json (s : Experiments.fig5_series) =
  Json.Obj
    [
      ("algo", Json.String (Lock.algo_name s.Experiments.algo));
      ("points",
       Json.List
         (List.map
            (fun (p, (r : Lock_stress.result)) ->
              Json.Obj
                (("p", Json.Int p)
                 :: summary_fields r.Lock_stress.summary
                @ [ ("acquisitions", Json.Int r.Lock_stress.acquisitions) ]))
            s.Experiments.points));
    ]

let fig7_series_json (s : Experiments.fig7_series) =
  Json.Obj
    [
      ("algo", Json.String (Lock.algo_name s.Experiments.lock_algo));
      ("points",
       Json.List
         (List.map
            (fun (p : Experiments.fig7_point) ->
              Json.Obj
                [
                  ("x", Json.Int p.Experiments.x);
                  ("mean_us", Json.Float p.Experiments.mean_us);
                  ("p99_us", Json.Float p.Experiments.p99_us);
                  ("retries", Json.Int p.Experiments.retries);
                  ("rpcs", Json.Int p.Experiments.rpcs);
                ])
            s.Experiments.series));
    ]

let numa_locks_json (rows : Experiments.numa_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.numa_point) ->
         Json.Obj
           [
             ("algo", Json.String (Lock.algo_name r.Experiments.nalgo));
             ("clusters", Json.Int r.Experiments.nclusters);
             ("hold_us", Json.Float r.Experiments.nhold_us);
             ("mean_us", Json.Float r.Experiments.nmean_us);
             ("p99_us", Json.Float r.Experiments.np99_us);
             ("acquisitions", Json.Int r.Experiments.nacqs);
             ("local_handoffs", Json.Int r.Experiments.nlocal);
             ("remote_handoffs", Json.Int r.Experiments.nremote);
             ("remote_frac", Json.Float r.Experiments.nremote_frac);
             ("max_wait_us", Json.Float r.Experiments.nmax_wait_us);
           ])
       rows)

let hash_scaling_json (rows : Experiments.hash_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.hash_point) ->
         Json.Obj
           [
             ("granularity",
              Json.String
                (Hkernel.Khash.granularity_name r.Experiments.hgran));
             ("shards", Json.Int r.Experiments.hshards);
             ("optimistic", Json.Bool r.Experiments.hoptimistic);
             ("p", Json.Int r.Experiments.hp);
             ("read_ratio", Json.Float r.Experiments.hread_ratio);
             ("read_mean_us", Json.Float r.Experiments.hread_mean_us);
             ("read_p99_us", Json.Float r.Experiments.hread_p99_us);
             ("update_mean_us", Json.Float r.Experiments.hupdate_mean_us);
             ("throughput_ops_ms", Json.Float r.Experiments.hthroughput);
             ("optimistic_hits", Json.Int r.Experiments.hopt_hits);
             ("optimistic_fallbacks", Json.Int r.Experiments.hopt_fallbacks);
             ("atomics", Json.Int r.Experiments.hatomics);
           ])
       rows)

let abort_storm_json (rows : Experiments.abort_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.abort_point) ->
         Json.Obj
           [
             ("algo", Json.String (Lock.algo_name r.Experiments.aalgo));
             ("attempts", Json.Int r.Experiments.aattempts);
             ("acquisitions", Json.Int r.Experiments.aacqs);
             ("aborts", Json.Int r.Experiments.aaborts);
             ("fast_fails", Json.Int r.Experiments.afast_fails);
             ("stalls", Json.Int r.Experiments.astalls);
             ("overshoot_mean_us", Json.Float r.Experiments.aover_mean_us);
             ("overshoot_p99_us", Json.Float r.Experiments.aover_p99_us);
             ("overshoot_max_us", Json.Float r.Experiments.aover_max_us);
             ("bound_ratio", Json.Float r.Experiments.abound_ratio);
             ("recovery_mean_us", Json.Float r.Experiments.arecovery_mean_us);
             ("recovery_max_us", Json.Float r.Experiments.arecovery_max_us);
             ("obs_aborts", Json.Int r.Experiments.aobs_aborts);
             ("obs_repairs", Json.Int r.Experiments.aobs_repairs);
             ("remote_aborts", Json.Int r.Experiments.aremote_aborts);
             ("final_free", Json.Bool r.Experiments.afinal_free);
           ])
       rows)

let crash_storm_json (rows : Experiments.crash_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.crash_point) ->
         Json.Obj
           [
             ("algo", Json.String (Lock.algo_name r.Experiments.calgo));
             ("kills", Json.Int r.Experiments.ckills);
             ("acquisitions", Json.Int r.Experiments.cacqs);
             ("obs_crashes", Json.Int r.Experiments.cobs_crashes);
             ("obs_recoveries", Json.Int r.Experiments.cobs_recoveries);
             ("lockdep_recoveries", Json.Int r.Experiments.clockdep_recoveries);
             ("lockdep_violations", Json.Int r.Experiments.clockdep_violations);
             ("recovery_mean_us", Json.Float r.Experiments.crec_mean_us);
             ("recovery_p99_us", Json.Float r.Experiments.crec_p99_us);
             ("recovery_max_us", Json.Float r.Experiments.crec_max_us);
             ("recovery_n", Json.Int r.Experiments.crec_n);
             ("clusters_hit", Json.Int r.Experiments.cclusters_hit);
             ("worst_cluster_p99_us",
              Json.Float r.Experiments.cworst_cluster_p99_us);
             ("final_free", Json.Bool r.Experiments.cfinal_free);
           ])
       rows)

let rw_scaling_json (rows : Experiments.rw_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.rw_point) ->
         Json.Obj
           [
             ("style", Json.String r.Experiments.rstyle_name);
             ("read_ratio", Json.Float r.Experiments.rread_ratio);
             ("clusters", Json.Int r.Experiments.rclusters);
             ("p", Json.Int r.Experiments.rp);
             ("read_mean_us", Json.Float r.Experiments.rread_mean_us);
             ("read_p99_us", Json.Float r.Experiments.rread_p99_us);
             ("read_p999_us", Json.Float r.Experiments.rread_p999_us);
             ("write_mean_us", Json.Float r.Experiments.rwrite_mean_us);
             ("throughput_ops_ms", Json.Float r.Experiments.rthroughput);
             ("read_throughput_ops_ms",
              Json.Float r.Experiments.rread_throughput);
             ("reads", Json.Int r.Experiments.rreads);
             ("writes", Json.Int r.Experiments.rwrites);
             ("peak_readers", Json.Int r.Experiments.rpeak_readers);
             ("read_remote", Json.Int r.Experiments.rread_remote);
             ("seq_aborts", Json.Int r.Experiments.rseq_aborts);
             ("lockdep_violations",
              Json.Int r.Experiments.rlockdep_violations);
           ])
       rows)

let slo_json (rows : Experiments.slo_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.slo_point) ->
         Json.Obj
           [
             ("offered_per_ms", Json.Float r.Experiments.srate);
             ("p", Json.Int r.Experiments.sp);
             ("elements", Json.Int r.Experiments.selements);
             ("shards", Json.Int r.Experiments.sshards);
             ("completed", Json.Int r.Experiments.scompleted);
             ("achieved_per_ms", Json.Float r.Experiments.sachieved);
             ("read", Json.Obj (summary_fields r.Experiments.sread));
             ("update", Json.Obj (summary_fields r.Experiments.supdate));
             ("peak_backlog", Json.Int r.Experiments.speak_backlog);
             ("optimistic_hits", Json.Int r.Experiments.sopt_hits);
             ("optimistic_fallbacks", Json.Int r.Experiments.sopt_fallbacks);
             ("lockdep_violations", Json.Int r.Experiments.sviolations);
           ])
       rows)

let adaptive_json (rows : Experiments.adaptive_point list) =
  Json.List
    (List.map
       (fun (r : Experiments.adaptive_point) ->
         Json.Obj
           [
             ("lock", Json.String r.Experiments.dname);
             ("cold1_ops", Json.Int r.Experiments.dcold1_ops);
             ("hot_ops", Json.Int r.Experiments.dhot_ops);
             ("cold2_ops", Json.Int r.Experiments.dcold2_ops);
             ("cold_throughput_ops_ms",
              Json.Float r.Experiments.dcold_throughput);
             ("hot_throughput_ops_ms",
              Json.Float r.Experiments.dhot_throughput);
             ("morphs_up", Json.Int r.Experiments.dmorphs_up);
             ("morphs_down", Json.Int r.Experiments.dmorphs_down);
             ("final_shape", Json.Int r.Experiments.dfinal_shape);
             ("final_free", Json.Bool r.Experiments.dfinal_free);
             ("lockdep_violations", Json.Int r.Experiments.dviolations);
           ])
       rows)

let constants_json (r : Calibration.result) =
  Json.Obj
    [
      ("soft_fault_us", Json.Float r.Calibration.soft_fault_us);
      ("lockless_fault_us", Json.Float r.Calibration.lockless_fault_us);
      ("lock_overhead_us", Json.Float r.Calibration.lock_overhead_us);
      ("null_rpc_us", Json.Float r.Calibration.null_rpc_us);
      ("replicate_fault_us", Json.Float r.Calibration.replicate_fault_us);
      ("replicate_extra_us", Json.Float r.Calibration.replicate_extra_us);
    ]

(* -- cells and document ---------------------------------------------------- *)

(* A cell is one independent simulation slice of an experiment; a plan is
   the cell list plus how to reassemble the fragments (returned in input
   order by {!Par.map}) into the experiment's JSON value. Splitting is
   always along the runner's *outermost* sweep axis, so concatenating the
   per-cell row lists reproduces the sequential row order exactly. *)

type plan = {
  cells : (unit -> Json.t) list;
  assemble : Json.t list -> Json.t;
}

let single run =
  {
    cells = [ run ];
    assemble =
      (function
      | [ frag ] -> frag
      | frags ->
        invalid_arg
          (Printf.sprintf
             "Bench_json: single-cell experiment got %d fragments"
             (List.length frags)));
  }

let rows_of = function
  | Json.List rows -> rows
  | _ -> invalid_arg "Bench_json: cell fragment is not a list"

let concat_rows frags = Json.List (List.concat_map rows_of frags)

let plan_of ?cfg ?procs ?sizes ?iters ?rounds name =
  let per_algo algos run = List.map (fun a () -> run a) algos in
  match name with
  | "fig4" -> single (fun () -> fig4_json (Experiments.fig4 ?cfg ()))
  | "uncontended" ->
    single (fun () -> uncontended_json (Experiments.uncontended ?cfg ()))
  | "fig5a" ->
    {
      cells =
        per_algo Experiments.fig5_algos (fun a ->
            Json.List
              (List.map fig5_series_json
                 (Experiments.fig5a ?cfg ?procs ~algos:[ a ] ())));
      assemble =
        (fun frags ->
          Json.Obj
            [ ("hold_us", Json.Float 0.0); ("series", concat_rows frags) ]);
    }
  | "fig5b" ->
    {
      cells =
        per_algo Experiments.fig5_algos (fun a ->
            Json.List
              (List.map fig5_series_json
                 (Experiments.fig5b ?cfg ?procs ~algos:[ a ] ())));
      assemble =
        (fun frags ->
          Json.Obj
            [ ("hold_us", Json.Float 25.0); ("series", concat_rows frags) ]);
    }
  | "starvation" ->
    single (fun () -> Json.Obj (summary_fields (Experiments.starvation ?cfg ())))
  | "fig7a" | "fig7b" | "fig7c" | "fig7d" ->
    let run, xlabel =
      match name with
      | "fig7a" ->
        ( (fun a -> Experiments.fig7a ?cfg ?procs ?iters ~algos:[ a ] ()),
          "p" )
      | "fig7b" ->
        ( (fun a -> Experiments.fig7b ?cfg ?procs ?rounds ~algos:[ a ] ()),
          "p" )
      | "fig7c" ->
        ( (fun a -> Experiments.fig7c ?cfg ?sizes ?iters ~algos:[ a ] ()),
          "cluster_size" )
      | _ ->
        ( (fun a -> Experiments.fig7d ?cfg ?sizes ?rounds ~algos:[ a ] ()),
          "cluster_size" )
    in
    {
      cells =
        per_algo Experiments.fig7_algos (fun a ->
            Json.List (List.map fig7_series_json (run a)));
      assemble =
        (fun frags ->
          Json.Obj
            [ ("xlabel", Json.String xlabel); ("series", concat_rows frags) ]);
    }
  | "constants" -> single (fun () -> constants_json (Experiments.constants ?cfg ()))
  | "numa_locks" ->
    {
      cells =
        per_algo Experiments.numa_algos (fun a ->
            numa_locks_json (Experiments.numa_locks ?cfg ~algos:[ a ] ()));
      assemble = concat_rows;
    }
  | "hash_scaling" ->
    {
      cells =
        List.map
          (fun p () ->
            hash_scaling_json (Experiments.hash_scaling ?cfg ~procs:[ p ] ()))
          [ 4; 8; 16 ];
      assemble = concat_rows;
    }
  | "abort_storm" ->
    {
      cells =
        per_algo Experiments.numa_algos (fun a ->
            abort_storm_json (Experiments.abort_storm ?cfg ~algos:[ a ] ()));
      assemble = concat_rows;
    }
  | "crash_storm" ->
    {
      cells =
        per_algo Experiments.crash_algos (fun a ->
            crash_storm_json (Experiments.crash_storm ?cfg ~algos:[ a ] ()));
      assemble = concat_rows;
    }
  | "rw_scaling" ->
    {
      cells =
        List.map
          (fun style () ->
            rw_scaling_json (Experiments.rw_scaling ?cfg ~styles:[ style ] ()))
          Experiments.rw_styles;
      assemble = concat_rows;
    }
  | "slo" ->
    {
      cells =
        List.map
          (fun rate () -> slo_json (Experiments.slo ?cfg ~rates:[ rate ] ()))
          Experiments.slo_rates;
      assemble = concat_rows;
    }
  | "adaptive" ->
    {
      cells =
        per_algo Experiments.adaptive_algos (fun a ->
            adaptive_json (Experiments.adaptive ?cfg ~algos:[ a ] ()));
      assemble = concat_rows;
    }
  | other ->
    invalid_arg
      (Printf.sprintf "Bench_json.document: unknown experiment %S" other)

let document ?cfg ?procs ?sizes ?iters ?rounds ?(jobs = 1) ~names () =
  let names = if names = [] then default_names else names in
  (* Resolve every plan first so an unknown name fails before any cell has
     burned simulation time. *)
  let plans =
    List.map (fun n -> (n, plan_of ?cfg ?procs ?sizes ?iters ?rounds n)) names
  in
  let cells = List.concat_map (fun (_, p) -> p.cells) plans in
  let fragments = Par.map ~jobs (fun cell -> cell ()) cells in
  let experiments, rest =
    List.fold_left
      (fun (acc, frags) (n, p) ->
        let rec take k fr =
          if k = 0 then ([], fr)
          else
            match fr with
            | [] -> invalid_arg "Bench_json.document: missing cell result"
            | f :: tl ->
              let mine, rest = take (k - 1) tl in
              (f :: mine, rest)
        in
        let mine, rest = take (List.length p.cells) frags in
        ((n, p.assemble mine) :: acc, rest))
      ([], fragments) plans
  in
  assert (rest = []);
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("config", Json.String "hector");
      ("units", Json.Obj [ ("latency", Json.String "us") ]);
      ("experiments", Json.Obj (List.rev experiments));
    ]

let write ~path doc =
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc
