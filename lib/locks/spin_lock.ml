(* Test&set spin lock with exponential backoff (Figure 3c of the paper).

   acquire: while test_and_set(L) = locked { delay; delay := delay * 2 }
   release: swap(L, 0) — HECTOR has only swap, so the release store is an
   atomic too, which is why Figure 4 counts two atomic operations for the
   spin lock's lock/unlock pair.

   Every failed attempt spins *on the lock word itself*, so remote waiters
   load the lock's memory module and the interconnect — the second-order
   effect distributed locks avoid. *)

open Hector

type t = {
  flag : Cell.t;
  backoff : Backoff.t;
  mutable acquisitions : int;
  mutable failed_attempts : int;
  mutable holder_proc : int; (* processor holding the lock, -1 = free;
                                host-side bookkeeping for dead-holder
                                recovery, not simulated state *)
  mutable recovering : bool; (* serialises recoverers host-side *)
  vcls : Verify.lock_class;
  vid : int;
}

let create machine ?(home = 0) ?(vclass = "spinlock") backoff =
  {
    flag = Machine.alloc machine ~label:"spinlock" ~home 0;
    backoff;
    acquisitions = 0;
    failed_attempts = 0;
    holder_proc = -1;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let failed_attempts t = t.failed_attempts
let home t = Cell.home t.flag

(* Untimed: is the lock currently held? For assertions in tests. *)
let is_held t = Cell.peek t.flag <> 0

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let rec attempt delay =
    let old = Ctx.test_and_set ctx t.flag in
    if old = 0 then begin
      (* Uncontended path instruction budget (Figure 4): 1 reg, 2 br for the
         acquire side. *)
      Ctx.instr ctx ~reg:1 ~br:2 ();
      t.acquisitions <- t.acquisitions + 1;
      t.holder_proc <- Ctx.proc ctx;
      Vhook.acquired ctx ~cls:t.vcls ~id:t.vid
    end
    else begin
      t.failed_attempts <- t.failed_attempts + 1;
      Ctx.instr ctx ~reg:1 ~br:1 ();
      Backoff.delay_on ctx t.backoff delay;
      attempt (Backoff.next t.backoff delay)
    end
  in
  attempt (Backoff.initial t.backoff)

let release t ctx =
  t.holder_proc <- -1;
  (* Hook before the clearing swap — the swap is the transfer point, so an
     observer must order our release before the successor's acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  (* swap(L, 0): the MC88100 has no plain "atomic" store-release; the paper
     counts the release as an atomic as well. *)
  ignore (Ctx.fetch_and_store ctx t.flag 0);
  Ctx.instr ctx ~br:1 ()

let vclass t = t.vcls

(* Dead-holder recovery: the release is a plain swap(L, 0), so any
   processor can perform it on the corpse's behalf — [holder_proc] is the
   evidence the holder really died mid-section (fail-stop crashes are
   detectable, so the liveness read is legitimate). The recoverer does not
   end up holding the lock; it re-contends through the normal acquire. *)
let recover t ctx =
  let dead = t.holder_proc in
  if
    t.recovering || dead < 0
    || Machine.proc_alive (Ctx.machine ctx) dead
    || not (is_held t)
  then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

(* Single attempt; used where a TryLock is meaningful for comparison. *)
let try_acquire t ctx =
  let old = Ctx.test_and_set ctx t.flag in
  Ctx.instr ctx ~reg:1 ~br:2 ();
  if old = 0 then begin
    t.acquisitions <- t.acquisitions + 1;
    t.holder_proc <- Ctx.proc ctx;
    Vhook.try_acquired ctx ~cls:t.vcls ~id:t.vid;
    true
  end
  else begin
    t.failed_attempts <- t.failed_attempts + 1;
    false
  end

(* Timed acquisition: a test&set lock is trivially abortable — a waiter
   that gives up leaves no queue state behind, so abandonment is just
   "stop retrying". An already-expired deadline fails without touching the
   lock word. *)
let try_acquire_for t ctx ~deadline =
  if Ctx.now ctx >= deadline then false
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
    let rec attempt delay =
      let old = Ctx.test_and_set ctx t.flag in
      if old = 0 then begin
        Ctx.instr ctx ~reg:1 ~br:2 ();
        t.acquisitions <- t.acquisitions + 1;
        t.holder_proc <- Ctx.proc ctx;
        Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
        true
      end
      else begin
        t.failed_attempts <- t.failed_attempts + 1;
        Ctx.instr ctx ~reg:1 ~br:1 ();
        if Ctx.now ctx >= deadline then begin
          Vhook.wait_abandoned ctx;
          false
        end
        else begin
          Backoff.delay_on ctx t.backoff delay;
          attempt (Backoff.next t.backoff delay)
        end
      end
    in
    attempt (Backoff.initial t.backoff)
  end

(* Core-interface view: the 35 us capped backoff the paper uses for its
   kernel spin locks. A test&set lock cannot tell whether anyone is backing
   off against it, so [waiters] is conservatively false — a cohort built
   over a spin local lock simply never passes locally. *)
module Core = struct
  type nonrec t = t

  let algo = "Spin(35us)"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "spinlock") machine =
    let cfg = Machine.config machine in
    create machine ~home ~vclass (Backoff.of_us cfg ~max_us:35.0 ())

  let acquire = acquire
  let release = release
  let try_acquire = try_acquire
  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free t = not (is_held t)
  let waiters _ = false
  let acquisitions = acquisitions
  let vclass = vclass
  let vid t = t.vid
end
