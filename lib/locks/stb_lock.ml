(* Spin-then-block lock (Section 5.3).

   TORNADO's direction: a more process-oriented kernel where waiters spin
   only briefly and then block, yielding the processor. In the simulation,
   "blocking" parks the waiting process on the lock's wait list (no events,
   no memory traffic) until a releaser hands the lock over and wakes it.

   The fast path is a test&set, so the uncontended cost matches a spin
   lock; the block path adds a wake-up hand-off latency but removes all
   spinning traffic — the right trade once critical sections are long or
   processors have other work to run. *)

open Eventsim
open Hector

type waiter = { proc : int; resume : unit -> unit; granted : bool ref }

type t = {
  flag : Cell.t; (* 0 free, 1 held *)
  spin_cycles : int; (* how long to spin before blocking *)
  waiters : waiter Queue.t;
  machine : Machine.t;
  mutable acquisitions : int;
  mutable blocks : int; (* waiters that gave up spinning *)
  mutable handoffs : int; (* releases that woke a blocked waiter *)
  vcls : Verify.lock_class;
  vid : int;
}

let create ?(home = 0) ?(spin_us = 5.0) ?(vclass = "stb") machine =
  {
    flag = Machine.alloc machine ~label:"stb" ~home 0;
    spin_cycles = Config.cycles_of_us (Machine.config machine) spin_us;
    waiters = Queue.create ();
    machine;
    acquisitions = 0;
    blocks = 0;
    handoffs = 0;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let flag t = t.flag
let acquisitions t = t.acquisitions
let blocks t = t.blocks
let handoffs t = t.handoffs
let is_held t = Cell.peek t.flag <> 0

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let deadline = Machine.now t.machine + t.spin_cycles in
  let rec spin delay =
    if Ctx.test_and_set ctx t.flag = 0 then begin
      Ctx.instr ctx ~reg:1 ~br:2 ();
      t.acquisitions <- t.acquisitions + 1;
      Vhook.acquired ctx ~cls:t.vcls ~id:t.vid
    end
    else if Machine.now t.machine < deadline then begin
      Ctx.instr ctx ~reg:1 ~br:1 ();
      Ctx.work ctx delay;
      spin (min (delay * 2) 64)
    end
    else block ()
  and block () =
    (* Block: enqueue and deschedule. The releaser transfers ownership
       directly (the flag stays 1), so no thundering herd on wake-up. *)
    t.blocks <- t.blocks + 1;
    Ctx.work ctx 30 (* enqueue + context-switch entry *);
    (* The holder may have released during that entry work — and a releaser
       that finds an empty wait list just clears the flag, so sleeping now
       would be forever. The check and the enqueue are one host-atomic step
       against release's pop-or-clear, so one side always sees the other. *)
    if Cell.peek t.flag = 0 then spin 8
    else begin
      let granted = ref false in
      Process.suspend (fun resume ->
          Queue.push { proc = Ctx.proc ctx; resume; granted } t.waiters);
      Ctx.work ctx 30 (* context-switch exit *);
      if !granted then begin
        (* Woken with the lock already ours. *)
        t.acquisitions <- t.acquisitions + 1;
        Vhook.acquired ctx ~cls:t.vcls ~id:t.vid
      end
      else
        (* Spurious wake: our enqueue raced a clearing release (the swap
           applies at its completion instant, after the releaser's empty
           check). The lock is free; retry — the spin phase is spent, so
           this either wins the test&set or blocks again properly. *)
        spin 8
    end
  in
  spin 8

(* Single test&set attempt, never blocking. (Deliberately does not count
   towards [acquisitions], which tracks the blocking-path statistics.) *)
let try_acquire t ctx =
  if Ctx.test_and_set ctx t.flag = 0 then begin
    Vhook.try_acquired ctx ~cls:t.vcls ~id:t.vid;
    true
  end
  else false

let release t ctx =
  (* Hook first: both branches below can transfer the lock (the clearing
     swap, or the hand-off whose wake-up work suspends us while the woken
     waiter runs), so an observer must order our release before the
     successor's acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if Queue.is_empty t.waiters then begin
    ignore (Ctx.fetch_and_store ctx t.flag 0);
    Ctx.instr ctx ~br:1 ();
    (* A waiter may have enqueued while the clearing swap was in flight (it
       applies at completion time, after the empty check above). The lock
       is free now, so nobody may stay parked: wake them ungranted — they
       re-contend from the spin loop. *)
    while not (Queue.is_empty t.waiters) do
      let w = Queue.pop t.waiters in
      Engine.schedule_after (Machine.engine t.machine) ~delay:0 w.resume
    done
  end
  else begin
    (* Direct hand-off: the flag stays held; wake the first waiter. *)
    let w = Queue.pop t.waiters in
    w.granted := true;
    t.handoffs <- t.handoffs + 1;
    Ctx.work ctx 20 (* wake-up IPI / scheduler insertion *);
    Engine.schedule_after (Machine.engine t.machine) ~delay:0 w.resume;
    Ctx.instr ctx ~br:1 ()
  end
