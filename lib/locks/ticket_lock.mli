(** Ticket lock with proportional backoff — the cheapest fair lock: two
    words regardless of processor count, all waiters spinning on one word.
    Requires a CAS machine (fetch&increment is a CAS retry loop). *)

open Hector

type t

val create : ?home:int -> ?spin_unit:int -> ?vclass:string -> Machine.t -> t

val acquisitions : t -> int
val is_free : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** The {!Lock_core.S} view; [try_acquire] takes a ticket and waits. *)
module Core : Lock_core.S with type t = t
