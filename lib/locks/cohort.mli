(** Lock cohorting (Dice, Marathe & Shavit): compose any per-cluster local
    lock with any global lock into a NUMA-aware lock. A releaser that sees
    same-cluster waiters hands over only the local lock, so the global lock
    — and the protected data — migrate across clusters once per cohort
    session instead of once per critical section. [max_handoffs] bounds
    consecutive local hand-offs so remote clusters are not starved. *)

open Hector

type t

(** Runtime-composed constructor used by [Lock.make]: [local] builds one
    constituent per cluster (homed at the cluster's lowest processor),
    [global] builds the top-level lock. Raises [Invalid_argument] if
    [max_handoffs < 1] or some cluster has no processors. *)
val create_packed :
  ?vclass:string ->
  ?max_handoffs:int ->
  name:string ->
  topo:Lock_core.topo ->
  local:(cluster:int -> home:int -> vclass:string -> Lock_core.packed) ->
  global:(vclass:string -> Lock_core.packed) ->
  Machine.t ->
  t

val default_max_handoffs : int

val name : t -> string
val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit
val try_acquire : t -> Ctx.t -> bool

(** Timed acquisition: timed local acquire, then timed global acquire with
    the remaining deadline; a global-side failure gives the local lock
    back. Fails immediately, touching nothing, when [deadline] has already
    passed. A constituent's committed hand-off may deliver the composite
    past the deadline (returning [true]). With a non-abortable constituent
    the corresponding level simply blocks — see {!abortable}. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Whether every constituent supports abandonment (the composite's timed
    face is only bounded if so). *)
val abortable : t -> bool

(** The composite is recoverable only if both constituents are (the unwind
    runs their releases on a dead holder's behalf). *)
val recoverable : t -> bool

(** Dead-holder recovery: if the processor in the critical section has
    fail-stopped, run the thread-oblivious release on its behalf — a local
    pass if cluster-mates are queued, else the full global-then-local
    release — and return [true]. [false] when the lock is free, the holder
    is alive, the composite is not recoverable, or a recovery is already
    in flight. *)
val recover : t -> Ctx.t -> bool

(** Deadline expiries at either level (including fail-fast refusals). *)
val timeouts : t -> int

val is_free : t -> bool
val waiters : t -> bool
val acquisitions : t -> int

(** Pass-releases where the global lock stayed with the cluster. *)
val local_handoffs : t -> int

(** Full releases where the global lock changed hands. *)
val global_releases : t -> int

val vclass : t -> Verify.lock_class

(** Statically-typed instances: [Make (Local) (Global)] is a full
    {!Lock_core.S} (so cohorts compose), plus cohort-specific extras. *)
module Make (_ : Lock_core.S) (_ : Lock_core.S) : sig
  include Lock_core.S with type t = t

  val create_with :
    ?home:int ->
    ?vclass:string ->
    ?max_handoffs:int ->
    topo:Lock_core.topo ->
    Machine.t ->
    t

  val local_handoffs : t -> int
  val global_releases : t -> int
end

(** The paper-faithful instance: MCS at both levels (C-MCS-MCS). *)
module C_mcs_mcs : sig
  include Lock_core.S with type t = t

  val create_with :
    ?home:int ->
    ?vclass:string ->
    ?max_handoffs:int ->
    topo:Lock_core.topo ->
    Machine.t ->
    t

  val local_handoffs : t -> int
  val global_releases : t -> int
end
