(** Verification hook sites shared by the lock implementations: each call
    is one branch when no checker is installed on the machine, and pure
    host-side bookkeeping (no simulated cycles) when one is. *)

open Hector

(** [on ctx f] applies [f] to the installed checker, if any. *)
val on : Ctx.t -> (Verify.t -> unit) -> unit

(** [obs ctx f] applies [f] to the installed contention observer, if
    any. *)
val obs : Ctx.t -> (Obs.t -> unit) -> unit

(** A blocking acquisition is entering its wait (call before the first
    spin, even if the lock turns out free). *)
val wait_acquire : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** The blocking acquisition succeeded. *)
val acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A non-blocking acquisition succeeded (no [wait_acquire] was issued). *)
val try_acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A {e timed} blocking acquisition is entering its wait: the checker gets
    a {!Verify.wait_acquire_timed} frame (no order edges, skipped by the
    watchdog), the observer an ordinary wait. Balance with {!acquired} or
    {!wait_abandoned}. *)
val wait_acquire_timed : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A hand-off reclaimed a node some timed waiter abandoned (observer
    only). *)
val abandon_repaired : Ctx.t -> cls:Verify.lock_class -> unit

(** The blocking acquisition timed out and gave up. *)
val wait_abandoned : Ctx.t -> unit

val released : Ctx.t -> cls:Verify.lock_class -> id:int -> unit
