(** Verification hook sites shared by the lock implementations: each call
    is one branch when no checker is installed on the machine, and pure
    host-side bookkeeping (no simulated cycles) when one is. *)

open Hector

(** [on ctx f] applies [f] to the installed checker, if any. *)
val on : Ctx.t -> (Verify.t -> unit) -> unit

(** [obs ctx f] applies [f] to the installed contention observer, if
    any. *)
val obs : Ctx.t -> (Obs.t -> unit) -> unit

(** A blocking acquisition is entering its wait (call before the first
    spin, even if the lock turns out free). *)
val wait_acquire : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** The blocking acquisition succeeded. *)
val acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A non-blocking acquisition succeeded (no [wait_acquire] was issued). *)
val try_acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A {e timed} blocking acquisition is entering its wait: the checker gets
    a {!Verify.wait_acquire_timed} frame (no order edges, skipped by the
    watchdog), the observer an ordinary wait. Balance with {!acquired} or
    {!wait_abandoned}. *)
val wait_acquire_timed : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A hand-off reclaimed a node some timed waiter abandoned (observer
    only). *)
val abandon_repaired : Ctx.t -> cls:Verify.lock_class -> unit

(** The blocking acquisition timed out and gave up. *)
val wait_abandoned : Ctx.t -> unit

(** A recovery forced the hand-off a dead holder [dead] will never
    perform; the observer records it against the {e victim's} cluster with
    the detection-to-repair latency (now minus the kill time). The checker
    needs no call of its own: the forced release reaches it through
    {!released}, which legalises the transfer when the registered holder is
    dead. *)
val recovered : Ctx.t -> cls:Verify.lock_class -> dead:int -> unit

(** Ownership of a held lock moved to the calling processor without a
    release/acquire pair (a cohort pass recipient inheriting the global
    constituent lock). Checker only. *)
val transferred : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

val released : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** An adaptive lock switched to shape index [shape] ([up] for a
    promotion). Observer only: the shape-level acquire/release pairs the
    checker sees across a morph are already balanced. *)
val morphed : Ctx.t -> cls:Verify.lock_class -> up:bool -> shape:int -> unit

(** An optimistic read (seqlock sample) aborted: observer only — nothing
    was ever held, so there is nothing for the checker to balance. *)
val optimistic_abort : Ctx.t -> cls:Verify.lock_class -> unit

(** {2 Shared (reader-side) faces of an RW lock}

    Lockdep-wise these are ordinary acquisitions — the checker's
    per-processor held lists make concurrent shared holders of one
    instance legal without special casing; a blocking shared acquire
    still records order edges because a reader {e can} be the waiting
    side of a deadlock when a writer gates it. The observer additionally
    tracks the concurrent-reader gauge ({!Obs.rw_read_peak}). Use a
    distinct reader class (e.g. ["foo.read"]) so reader and writer rows
    separate in the profile while sharing the composite's instance id
    for hand-off locality. *)

(** The blocking shared acquisition of a {!wait_acquire} succeeded. *)
val acquired_shared : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A non-blocking shared acquisition succeeded. *)
val try_acquired_shared : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A shared hold ended. *)
val released_shared : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A recoverer swept a shared hold off fail-stopped processor [dead]
    (maps to {!Verify.released_dead}: the dead-holder legalisation of
    {!released} cannot apply, since the registered holder of a shared
    instance may be a different, live reader). *)
val released_dead :
  Ctx.t -> cls:Verify.lock_class -> id:int -> dead:int -> unit
