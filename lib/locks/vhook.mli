(** Verification hook sites shared by the lock implementations: each call
    is one branch when no checker is installed on the machine, and pure
    host-side bookkeeping (no simulated cycles) when one is. *)

open Hector

(** [on ctx f] applies [f] to the installed checker, if any. *)
val on : Ctx.t -> (Verify.t -> unit) -> unit

(** [obs ctx f] applies [f] to the installed contention observer, if
    any. *)
val obs : Ctx.t -> (Obs.t -> unit) -> unit

(** A blocking acquisition is entering its wait (call before the first
    spin, even if the lock turns out free). *)
val wait_acquire : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** The blocking acquisition succeeded. *)
val acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A non-blocking acquisition succeeded (no [wait_acquire] was issued). *)
val try_acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** The blocking acquisition timed out and gave up. *)
val wait_abandoned : Ctx.t -> unit

val released : Ctx.t -> cls:Verify.lock_class -> id:int -> unit
