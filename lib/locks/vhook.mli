(** Verification hook sites shared by the lock implementations: each call
    is one branch when no checker is installed on the machine, and pure
    host-side bookkeeping (no simulated cycles) when one is. *)

open Hector

(** [on ctx f] applies [f] to the installed checker, if any. *)
val on : Ctx.t -> (Verify.t -> unit) -> unit

(** [obs ctx f] applies [f] to the installed contention observer, if
    any. *)
val obs : Ctx.t -> (Obs.t -> unit) -> unit

(** A blocking acquisition is entering its wait (call before the first
    spin, even if the lock turns out free). *)
val wait_acquire : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** The blocking acquisition succeeded. *)
val acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A non-blocking acquisition succeeded (no [wait_acquire] was issued). *)
val try_acquired : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A {e timed} blocking acquisition is entering its wait: the checker gets
    a {!Verify.wait_acquire_timed} frame (no order edges, skipped by the
    watchdog), the observer an ordinary wait. Balance with {!acquired} or
    {!wait_abandoned}. *)
val wait_acquire_timed : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

(** A hand-off reclaimed a node some timed waiter abandoned (observer
    only). *)
val abandon_repaired : Ctx.t -> cls:Verify.lock_class -> unit

(** The blocking acquisition timed out and gave up. *)
val wait_abandoned : Ctx.t -> unit

(** A recovery forced the hand-off a dead holder [dead] will never
    perform; the observer records it against the {e victim's} cluster with
    the detection-to-repair latency (now minus the kill time). The checker
    needs no call of its own: the forced release reaches it through
    {!released}, which legalises the transfer when the registered holder is
    dead. *)
val recovered : Ctx.t -> cls:Verify.lock_class -> dead:int -> unit

(** Ownership of a held lock moved to the calling processor without a
    release/acquire pair (a cohort pass recipient inheriting the global
    constituent lock). Checker only. *)
val transferred : Ctx.t -> cls:Verify.lock_class -> id:int -> unit

val released : Ctx.t -> cls:Verify.lock_class -> id:int -> unit
