(** Sequence lock: an optimistic read path over writer-excluded data.

    A seqlock is one word of simulated memory holding a sequence number:
    even while the protected data is stable, odd while a writer is inside a
    mutation. Writers — already serialised by some real lock (in {!Hkernel.Khash},
    the shard lock) — bump the word to odd before mutating and back to even
    after. Readers sample the word, probe the data with plain loads, and
    re-sample: an unchanged even value proves no writer overlapped the probe,
    so the read cost is two extra loads instead of a lock acquire/release
    pair (the "RMA lock" read-path idea of the PAPERS.md distributed-locks
    line of work, scaled down to one word).

    The writer side charges one timed store per transition (the holder of
    the writer lock knows the last value it wrote, so no read is needed);
    the reader side charges one timed load per sample. A successful
    optimistic read is reported to an installed {!Verify} checker / {!Obs}
    observer as a zero-length try-acquire/release pair under the seqlock's
    class, so read traffic shows up in contention profiles without ever
    adding lock-order edges (an optimistic read cannot block, hence can
    never be the waiting side of a deadlock). *)

open Hector

type t

(** [create machine ~home ()] allocates the sequence word on PMM [home].
    [vclass] names the {!Verify.lock_class} successful optimistic reads are
    attributed to. *)
val create : Machine.t -> ?home:int -> ?vclass:string -> unit -> t

(** Untimed: current sequence value (tests / assertions). *)
val peek : t -> int

(** Untimed: is a writer inside a critical section? *)
val write_in_progress : t -> bool

(** Completed write sections. Crash repairs ({!recover_write}) roll the
    sequence forward without counting here — a repair is not a write. *)
val writes : t -> int

(** Sequence words rolled forward by {!recover_write}. *)
val repairs : t -> int

(** Successful optimistic reads ({!read_validate} returning [true]). *)
val read_hits : t -> int

(** Failed validations plus writer-busy samples — optimistic attempts that
    had to fall back to the caller's locked path. Each is also reported to
    an installed observer ([Obs.lock_optimistic_abort]) under the lock's
    class, at zero simulated cost. *)
val read_aborts : t -> int

val vclass : t -> Verify.lock_class

(** {2 Writer side — caller must hold the data's writer lock} *)

(** Bump the sequence to odd: one timed store. Readers sampling from here
    on fail validation. *)
val write_begin : t -> Ctx.t -> unit

(** Bump the sequence back to even: one timed store. *)
val write_end : t -> Ctx.t -> unit

(** [write_begin]/[write_end] around [f], exception-safe. *)
val with_write : t -> Ctx.t -> (unit -> 'a) -> 'a

(** Crash repair: if the last [write_begin] was issued by a processor that
    has since fail-stopped, roll the sequence forward to even on its
    behalf (one timed store, charged to the recoverer) and return [true].
    The caller must guarantee no live writer can be inside — in
    {!Hkernel.Khash}, the corpse still holds the shard lock while its
    shard is repaired, which excludes them. *)
val recover_write : t -> Ctx.t -> bool

(** {2 Reader side — no lock held} *)

(** Sample the sequence word (one timed load). [None] if a writer is
    inside a mutation — the caller should fall back to its locked path
    rather than spin. *)
val read_begin : t -> Ctx.t -> int option

(** Re-sample and compare (one timed load): [true] iff no writer ran since
    the matching {!read_begin}, i.e. everything probed in between was
    consistent. Reports the hit/abort to an installed checker/observer. *)
val read_validate : t -> Ctx.t -> int -> bool
