(* Anderson's array-based queue lock.

   One of the "newer cache-based queueing locks" of the paper's Section 5.2
   discussion: a fetch&increment hands each waiter a private slot of a
   P-entry array to spin on; release flips the next slot. Fair and, with a
   slot per cache line, free of the ticket lock's single-word hot spot —
   at the cost of P words *per lock*, the space overhead that made the
   paper prefer MCS-style per-processor nodes shared across locks.

   Requires a CAS machine (the slot counter is a CAS-loop increment).

   Timed acquisition works by slot forfeiture. A slot holds 0 (not yet
   granted), 1 (granted) or 2 (forfeited). A timed-out waiter swaps 2 into
   its slot: if the swap returns 1 a grant already landed, so the waiter
   consumes it and takes the lock after all; if it returns 0 the forfeit
   stands. A releaser granting a slot whose claimant is timed uses
   CAS(0 -> 1): success commits the grant (the atomic is what prevents a
   forfeit from sneaking between a read and a blind store and losing the
   lock); failure means the slot reads 2, so the releaser resets it to 0
   and advances to the next slot. Grants to untimed claimants stay plain
   stores, so runs that never use the timed face are unchanged.

   The slot array has 2P + 1 entries rather than P: a processor may have
   one not-yet-skipped forfeited slot plus one active wait outstanding
   (at most 2P issues in flight, a contiguous issue range), and the +1
   guarantees two concurrent issues never share a physical slot — which is
   what lets the bare value 2 mark a forfeit without generation tags.
   While a processor's forfeited slot is still unskipped, a new timed
   acquire fails fast. *)

open Hector

type t = {
  slots : Cell.t array; (* has_lock flags; 2P + 1 entries *)
  tail : Cell.t; (* next free slot index (monotonic; slot = mod len) *)
  machine : Machine.t;
  mutable acquisitions : int;
  mutable my_slot : int array; (* slot each processor spins on *)
  mutable holder_slot : int; (* bookkeeping *)
  mutable holder_proc : int; (* processor holding the lock, -1 = free *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  timed_claim : bool array; (* slot -> current claimant is a timed waiter *)
  forfeiter_of_slot : int array; (* slot -> forfeiting proc, or -1 *)
  pending_forfeit : bool array; (* proc -> forfeited slot not yet skipped *)
  mutable timeouts : int;
  mutable gc_count : int; (* forfeited slots skipped by releases *)
  vcls : Verify.lock_class;
  vid : int;
}

let create ?(home = 0) ?(vclass = "anderson") machine =
  if not (Machine.config machine).Config.has_cas then
    invalid_arg "Anderson_lock.create: needs a machine with compare&swap";
  let n = Machine.n_procs machine in
  let len = (2 * n) + 1 in
  let slots =
    (* Slots are spread over the machine so waiters don't all hammer one
       module; slot 0 starts with the lock. *)
    Array.init len (fun i ->
        Machine.alloc machine
          ~label:(Printf.sprintf "anderson%d" i)
          ~home:(i mod n)
          (if i = 0 then 1 else 0))
  in
  {
    slots;
    tail = Machine.alloc machine ~label:"anderson.tail" ~home 0;
    machine;
    acquisitions = 0;
    my_slot = Array.make n (-1);
    holder_slot = -1;
    holder_proc = -1;
    recovering = false;
    timed_claim = Array.make len false;
    forfeiter_of_slot = Array.make len (-1);
    pending_forfeit = Array.make n false;
    timeouts = 0;
    gc_count = 0;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let timeouts t = t.timeouts
let gc_count t = t.gc_count

let is_free t =
  t.holder_slot = -1
  && Cell.peek t.slots.(Cell.peek t.tail mod Array.length t.slots) = 1

let take_slot t ctx =
  let rec loop () =
    let v = Ctx.read ctx t.tail in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx t.tail ~expect:v ~set:(v + 1) then v
    else loop ()
  in
  loop ()

let got_lock t ctx slot =
  t.my_slot.(Ctx.proc ctx) <- slot;
  assert (t.holder_slot = -1);
  t.holder_slot <- slot;
  t.holder_proc <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let n = Array.length t.slots in
  let slot = take_slot t ctx mod n in
  (* Exit only on the grant value: an untimed waiter's slot can never hold
     a stale forfeit mark (the ring is collision-free), so this spins on
     exactly the same reads as before the timed face existed. *)
  let rec wait () =
    let v = Ctx.read ctx t.slots.(slot) in
    Ctx.instr ctx ~br:1 ();
    if v <> 1 then begin
      Ctx.interruptible_pause ctx 16;
      wait ()
    end
  in
  wait ();
  (* Consume the flag for the next trip around the array. *)
  Ctx.write ctx t.slots.(slot) 0;
  got_lock t ctx slot;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* Timed acquisition: take a slot like everyone else, but bound the spin
   and forfeit the slot on expiry (see the header comment for the
   grant/forfeit atomics). *)
let acquire_with_timeout t ctx ~timeout =
  let proc = Ctx.proc ctx in
  if timeout <= 0 || t.pending_forfeit.(proc) then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
    let deadline = Machine.now t.machine + timeout in
    let n = Array.length t.slots in
    let slot = take_slot t ctx mod n in
    t.timed_claim.(slot) <- true;
    let rec wait () =
      let v = Ctx.read ctx t.slots.(slot) in
      Ctx.instr ctx ~br:1 ();
      if v = 1 then true
      else if Machine.now t.machine >= deadline then false
      else begin
        Ctx.interruptible_pause ctx 16;
        wait ()
      end
    in
    let take () =
      Ctx.write ctx t.slots.(slot) 0;
      t.timed_claim.(slot) <- false;
      got_lock t ctx slot;
      Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
      true
    in
    if wait () then take ()
    else begin
      let prev = Ctx.fetch_and_store ctx t.slots.(slot) 2 in
      Ctx.instr ctx ~br:1 ();
      if prev = 1 then
        (* A grant landed before our forfeit: it is ours, and nobody else
           will ever consume it — take the lock after all. *)
        take ()
      else begin
        (* Forfeit stands: the slot stays marked until a release reaches
           and skips it. *)
        t.forfeiter_of_slot.(slot) <- proc;
        t.pending_forfeit.(proc) <- true;
        t.timeouts <- t.timeouts + 1;
        Vhook.wait_abandoned ctx;
        false
      end
    end
  end

let try_acquire_for t ctx ~deadline =
  acquire_with_timeout t ctx ~timeout:(deadline - Machine.now t.machine)

(* Grant slot [s], skipping (and resetting) forfeited slots. Untimed
   claimants get the historical plain store; timed claimants need the CAS
   so a racing forfeit cannot lose the grant. *)
let rec grant t ctx s =
  let n = Array.length t.slots in
  if not t.timed_claim.(s) then begin
    Ctx.write ctx t.slots.(s) 1;
    Ctx.instr ctx ~br:1 ()
  end
  else if Ctx.compare_and_swap ctx t.slots.(s) ~expect:0 ~set:1 then
    Ctx.instr ctx ~br:1 ()
  else begin
    (* The claimant forfeited (the slot reads 2): reset it, free its
       owner's timed face, and pass the grant along. *)
    Ctx.instr ctx ~br:1 ();
    Ctx.write ctx t.slots.(s) 0;
    t.timed_claim.(s) <- false;
    let p = t.forfeiter_of_slot.(s) in
    t.forfeiter_of_slot.(s) <- -1;
    if p >= 0 then t.pending_forfeit.(p) <- false;
    t.gc_count <- t.gc_count + 1;
    Vhook.abandon_repaired ctx ~cls:t.vcls;
    grant t ctx ((s + 1) mod n)
  end

(* Thread-oblivious: the releasing processor comes from the holder
   bookkeeping, not from [ctx], so a recoverer can run the release on a
   dead holder's behalf. *)
let release t ctx =
  let n = Array.length t.slots in
  let p = t.holder_proc in
  let slot = t.my_slot.(p) in
  assert (slot = t.holder_slot);
  t.holder_slot <- -1;
  t.holder_proc <- -1;
  t.my_slot.(p) <- -1;
  (* Hook before the grant — the slot write is the transfer point, so an
     observer must order our release before the successor's acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  grant t ctx ((slot + 1) mod n)

(* Dead-holder recovery: run the corpse's release — slot-skip GC included,
   so forfeited slots between the dead holder and the next live waiter are
   swept in the same pass. *)
let recover t ctx =
  let dead = t.holder_proc in
  if
    t.recovering || dead < 0 || Machine.proc_alive t.machine dead
  then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

(* Core-interface view; [try_acquire] takes a slot and waits (slots cannot
   be handed back — only timed waiters, which pre-announce themselves,
   may forfeit). *)
module Core = struct
  type nonrec t = t

  let algo = "Anderson"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "anderson") machine = create ~home ~vclass machine
  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free

  (* Slots issued past the holder's mean queued waiters. The tail counter is
     monotonic, so compare against the holder's issue number modulo the ring
     size. A forfeited-but-unskipped slot also counts — the hint may
     overshoot, never deadlock. *)
  let waiters t =
    t.holder_slot >= 0
    && Cell.peek t.tail mod Array.length t.slots
       <> (t.holder_slot + 1) mod Array.length t.slots

  let acquisitions = acquisitions
  let vclass t = t.vcls
  let vid t = t.vid
end
