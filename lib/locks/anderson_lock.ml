(* Anderson's array-based queue lock.

   One of the "newer cache-based queueing locks" of the paper's Section 5.2
   discussion: a fetch&increment hands each waiter a private slot of a
   P-entry array to spin on; release flips the next slot. Fair and, with a
   slot per cache line, free of the ticket lock's single-word hot spot —
   at the cost of P words *per lock*, the space overhead that made the
   paper prefer MCS-style per-processor nodes shared across locks.

   Requires a CAS machine (the slot counter is a CAS-loop increment). *)

open Hector

type t = {
  slots : Cell.t array; (* has_lock flags, one per processor slot *)
  tail : Cell.t; (* next free slot index (monotonic; slot = mod P) *)
  machine : Machine.t;
  mutable acquisitions : int;
  mutable my_slot : int array; (* slot each processor spins on *)
  mutable holder_slot : int; (* bookkeeping *)
  vcls : Verify.lock_class;
  vid : int;
}

let create ?(home = 0) ?(vclass = "anderson") machine =
  if not (Machine.config machine).Config.has_cas then
    invalid_arg "Anderson_lock.create: needs a machine with compare&swap";
  let n = Machine.n_procs machine in
  let slots =
    (* Slots are spread over the machine so waiters don't all hammer one
       module; slot 0 starts with the lock. *)
    Array.init n (fun i ->
        Machine.alloc machine
          ~label:(Printf.sprintf "anderson%d" i)
          ~home:(i mod n)
          (if i = 0 then 1 else 0))
  in
  {
    slots;
    tail = Machine.alloc machine ~label:"anderson.tail" ~home 0;
    machine;
    acquisitions = 0;
    my_slot = Array.make n (-1);
    holder_slot = -1;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let is_free t = t.holder_slot = -1 && Cell.peek t.slots.(Cell.peek t.tail mod Array.length t.slots) = 1

let take_slot t ctx =
  let rec loop () =
    let v = Ctx.read ctx t.tail in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx t.tail ~expect:v ~set:(v + 1) then v
    else loop ()
  in
  loop ()

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let n = Array.length t.slots in
  let slot = take_slot t ctx mod n in
  let rec wait () =
    let v = Ctx.read ctx t.slots.(slot) in
    Ctx.instr ctx ~br:1 ();
    if v = 0 then begin
      Ctx.interruptible_pause ctx 16;
      wait ()
    end
  in
  wait ();
  (* Consume the flag for the next trip around the array. *)
  Ctx.write ctx t.slots.(slot) 0;
  t.my_slot.(Ctx.proc ctx) <- slot;
  assert (t.holder_slot = -1);
  t.holder_slot <- slot;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

let release t ctx =
  let n = Array.length t.slots in
  let slot = t.my_slot.(Ctx.proc ctx) in
  assert (slot = t.holder_slot);
  t.holder_slot <- -1;
  t.my_slot.(Ctx.proc ctx) <- -1;
  Ctx.write ctx t.slots.((slot + 1) mod n) 1;
  Ctx.instr ctx ~br:1 ();
  Vhook.released ctx ~cls:t.vcls ~id:t.vid

(* Core-interface view; [try_acquire] takes a slot and waits (slots cannot
   be handed back). *)
module Core = struct
  type nonrec t = t

  let algo = "Anderson"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "anderson") machine = create ~home ~vclass machine
  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let is_free = is_free

  (* Slots issued past the holder's mean queued waiters. The tail counter is
     monotonic, so compare against the holder's issue number modulo P. *)
  let waiters t =
    t.holder_slot >= 0
    && Cell.peek t.tail mod Array.length t.slots
       <> (t.holder_slot + 1) mod Array.length t.slots

  let acquisitions = acquisitions
  let vclass t = t.vcls
end
