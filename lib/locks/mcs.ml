(* MCS distributed locks, fetch&store variant, with the paper's two
   modifications (Figure 3a/3b) and the TryLock extensions of Section 3.2.

   Variants:
   - [Original]  Mellor-Crummey & Scott, using only fetch&store (HECTOR has
                 no compare&swap): acquire initialises the queue node; the
                 release checks for a successor and repairs the queue when
                 the unconditional fetch&store removed waiters by accident.
   - [H1]        queue nodes are pre-initialised (next = nil, locked = true)
                 and re-initialised on the *contended* path only, removing
                 the initialisation store from the uncontended acquire.
   - [H2]        additionally removes the successor check from release: the
                 release always runs the fetch&store path, adding a constant
                 repair cost under contention but saving a memory access in
                 the common, uncontended case.

   Queue nodes live in the owner's local memory, so waiting processors spin
   locally — the defining property of a distributed (queue) lock.

   The queue-repair protocol (release finds old_tail <> I after storing nil)
   follows the MCS paper: a second fetch&store re-installs the victims'
   tail; if some "usurper" enqueued in the window, the victims are grafted
   behind the usurper's tail and the lock stays with the usurper.

   TryLock:
   - variant 1 ("in-use flag"): every acquire/release marks the processor's
     node busy; an interrupt handler only starts waiting when the flag shows
     it did not interrupt the lock holder on its own processor. Not a true
     TryLock (it may wait), and the flag writes slow the uncontended path.
   - variant 2 ("interrupt node"): a separate pre-allocated node per
     processor; a true TryLock that enqueues, and on failure *abandons* the
     node in the queue with a mark. Release garbage-collects abandoned
     nodes. Inherently unfair to retrying remote requesters when the lock is
     saturated (Section 3.2), which experiment TRY demonstrates. *)

open Hector

type variant = Original | H1 | H2

let variant_name = function
  | Original -> "MCS"
  | H1 -> "H1-MCS"
  | H2 -> "H2-MCS"

type qnode = {
  next : Cell.t; (* successor qnode id; 0 = nil *)
  locked : Cell.t; (* 1 = wait, 0 = go *)
  mark : Cell.t; (* trylock bookkeeping: 1 = abandoned in queue (interrupt
                    nodes), or in-use flag (variant-1 regular nodes) *)
  owner : int; (* owning processor *)
  mutable dirty_locked : bool;
      (* the locked flag was cleared by a releaser and awaits
         re-initialisation (H1/H2 only) *)
}

type t = {
  variant : variant;
  tail : Cell.t; (* the lock word L: id of the queue tail, 0 = free *)
  nodes : qnode array; (* [0, n): per-processor nodes;
                          [n, 2n): per-processor interrupt nodes *)
  machine : Machine.t;
  use_cas_release : bool; (* Section 5.2 ablation *)
  track_in_use : bool; (* TryLock variant 1 *)
  mutable holder : int; (* qnode id holding the lock; bookkeeping only *)
  mutable acquisitions : int;
  mutable repairs : int; (* releases that found old_tail <> I *)
  mutable grafts : int; (* repairs that found a usurper *)
  mutable try_failures : int;
  mutable gc_count : int; (* abandoned nodes collected by release *)
  mutable timeouts : int; (* acquire_with_timeout deadline expiries *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  vcls : Verify.lock_class;
  vid : int;
}

let nil = 0

(* Mark values on an interrupt node. [mark_claimed] is written by a
   releaser's atomic swap to commit a hand-off to a live timeout waiter;
   the swap is what makes hand-off and abandonment race-free (whoever swaps
   the mark first wins the node). *)
let mark_abandoned = 1
let mark_claimed = 2

let create ?(variant = H2) ?(home = 0) ?(use_cas_release = false)
    ?(track_in_use = false) ?(vclass = "mcs") machine =
  let n = Machine.n_procs machine in
  let mk_node ~interrupt p =
    let label kind =
      Printf.sprintf "qn%s.p%d%s" kind p (if interrupt then "i" else "")
    in
    {
      (* Pre-initialised per the H1 discipline: next = nil, locked = 1.
         The Original variant ignores the pre-initialisation and writes its
         own, as in Figure 3a. *)
      next = Machine.alloc machine ~label:(label "next") ~home:p nil;
      locked = Machine.alloc machine ~label:(label "locked") ~home:p 1;
      mark = Machine.alloc machine ~label:(label "mark") ~home:p 0;
      owner = p;
      dirty_locked = false;
    }
  in
  {
    variant;
    tail = Machine.alloc machine ~label:"mcs.tail" ~home nil;
    nodes =
      Array.init (2 * n) (fun i ->
          if i < n then mk_node ~interrupt:false i
          else mk_node ~interrupt:true (i - n));
    machine;
    use_cas_release;
    track_in_use;
    holder = nil;
    acquisitions = 0;
    repairs = 0;
    grafts = 0;
    try_failures = 0;
    gc_count = 0;
    timeouts = 0;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let variant t = t.variant
let name t = variant_name t.variant
let vclass t = t.vcls
let acquisitions t = t.acquisitions
let repairs t = t.repairs
let grafts t = t.grafts
let try_failures t = t.try_failures
let gc_count t = t.gc_count
let timeouts t = t.timeouts

(* Qnode ids are 1-based indices into [nodes]. *)
let id_of_node t node =
  let n = Machine.n_procs t.machine in
  if t.nodes.(node.owner) == node then node.owner + 1 else n + node.owner + 1

let node_of_id t id = t.nodes.(id - 1)
let regular_node t proc = t.nodes.(proc)
let interrupt_node t proc = t.nodes.(Machine.n_procs t.machine + proc)

(* Untimed; for test assertions. *)
let is_held t = t.holder <> nil
let is_free t = Cell.peek t.tail = nil && t.holder = nil
let holder_proc t = if t.holder = nil then None else Some (node_of_id t t.holder).owner

(* Spin locally until our locked flag clears. Each poll is a load from the
   spinner's own memory module — local spinning is what removes the
   second-order network effects. *)
let spin_while_locked ctx node =
  let rec loop () =
    let v = Ctx.read ctx node.locked in
    Ctx.instr ctx ~br:1 ();
    if v <> 0 then loop ()
  in
  loop ()

let got_lock t node =
  assert (t.holder = nil);
  t.holder <- id_of_node t node;
  t.acquisitions <- t.acquisitions + 1

(* Common contended-path tail of acquire: link behind [pred_id] and wait. *)
let wait_behind t ctx node pred_id =
  (match t.variant with
  | Original ->
    (* Figure 3a: I->locked := true, then pred->next := I. *)
    Ctx.write ctx node.locked 1;
    Ctx.write ctx (node_of_id t pred_id).next (id_of_node t node)
  | H1 | H2 ->
    (* locked is already 1 by the pre-initialisation invariant; the releaser
       will clear it, so remember to re-initialise it — off the hand-off
       critical path, at our own next release. *)
    node.dirty_locked <- true;
    Ctx.write ctx (node_of_id t pred_id).next (id_of_node t node));
  Ctx.instr ctx ~reg:1 ~br:1 ();
  spin_while_locked ctx node;
  got_lock t node

let acquire_with_node t ctx node =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  (match t.variant with
  | Original -> Ctx.write ctx node.next nil (* the initialisation store *)
  | H1 | H2 -> ());
  if t.track_in_use then Ctx.write ctx node.mark 1;
  let pred = Ctx.fetch_and_store ctx t.tail (id_of_node t node) in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  if pred = nil then got_lock t node else wait_behind t ctx node pred;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

let acquire t ctx = acquire_with_node t ctx (regular_node t (Ctx.proc ctx))

(* Find who comes after [node], repairing the queue if our unconditional
   fetch&store removed waiters. [check_next] is the successor check the H2
   modification removes. Returns:
   - [`Next id]  the successor now owed the lock;
   - [`Free]     the queue was empty, the lock is free;
   - [`Grafted]  an usurper acquired in the repair window; our victims were
                 appended behind it and the lock is no longer ours to give.

   Re-initialisation of [node.next] is the caller's job (deferred past the
   hand-off so it never delays the next lock holder). *)
let successor_after t ctx node ~check_next =
  let next_hint =
    if check_next then begin
      let next = Ctx.read ctx node.next in
      Ctx.instr ctx ~br:1 ();
      next
    end
    else nil
  in
  if next_hint <> nil then `Next next_hint
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail = id_of_node t node then `Free
    else begin
      (* We removed waiters (node .. old_tail chain): put them back. *)
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.tail old_tail in
      Ctx.instr ctx ~br:1 ();
      (* Wait for the victim head pointer to materialise. *)
      let rec wait_next () =
        let v = Ctx.read ctx node.next in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      if usurper <> nil then begin
        (* The usurper (tail of the new chain) just enqueued on an empty
           queue, so its next is nil and stays ours to set. *)
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (node_of_id t usurper).next victim;
        `Grafted
      end
      else `Next victim
    end
  end

(* Release with a compare&swap (Section 5.2 ablation): the uncontended
   release is CAS(L, I, nil); on failure the successor is awaited, no repair
   needed. *)
let successor_after_cas t ctx node =
  let me = id_of_node t node in
  if Ctx.compare_and_swap ctx t.tail ~expect:me ~set:nil then begin
    Ctx.instr ctx ~br:1 ();
    `Free
  end
  else begin
    Ctx.instr ctx ~br:1 ();
    let rec wait_next () =
      let v = Ctx.read ctx node.next in
      Ctx.instr ctx ~br:1 ();
      if v = nil then wait_next () else v
    in
    `Next (wait_next ())
  end

(* Hand the lock to [succ_id], garbage-collecting abandoned TryLock nodes
   (a marked interrupt node means its owner gave up and left). A live
   (unmarked) interrupt node is a timeout-capable waiter: commit the
   hand-off to it by atomically claiming its mark, so an abandonment racing
   with us cannot strand the lock — whoever swaps the mark first wins. *)
let rec hand_off t ctx succ_id =
  let succ = node_of_id t succ_id in
  let n = Machine.n_procs t.machine in
  let is_interrupt_node = succ_id > n in
  if is_interrupt_node then begin
    if Ctx.read ctx succ.mark <> 0 then collect t ctx succ
    else begin
      let prev = Ctx.fetch_and_store ctx succ.mark mark_claimed in
      Ctx.instr ctx ~br:1 ();
      if prev <> 0 then
        (* The owner abandoned between our read and our swap. *)
        collect t ctx succ
      else Ctx.write ctx succ.locked 0
    end
  end
  else Ctx.write ctx succ.locked 0

(* Unlink an abandoned interrupt node, restore its pre-initialised state,
   free it for its owner, and continue down the queue. *)
and collect t ctx succ =
  t.gc_count <- t.gc_count + 1;
  Vhook.abandon_repaired ctx ~cls:t.vcls;
  Ctx.instr ctx ~br:1 ();
  let continuation = successor_after t ctx succ ~check_next:true in
  (match continuation with
  | `Next _ | `Grafted -> Ctx.write ctx succ.next nil
  | `Free -> ());
  Ctx.write ctx succ.mark 0;
  match continuation with
  | `Free | `Grafted -> ()
  | `Next next_id -> hand_off t ctx next_id

let release_with_node t ctx node =
  assert (t.holder = id_of_node t node);
  t.holder <- nil;
  (* Hook before the successor hunt: [successor_after]'s fetch&store window
     is itself a transfer point (a usurper acquires the instant the tail
     reads nil), so an observer must order our release before any
     successor's acquisition — and never the reverse. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if t.track_in_use then Ctx.write ctx node.mark 0;
  let successor =
    if t.use_cas_release then successor_after_cas t ctx node
    else
      (* H2's modification 2 skips the successor check and always runs the
         fetch&store path. *)
      successor_after t ctx node ~check_next:(t.variant <> H2)
  in
  (match successor with
  | `Free -> Ctx.instr ctx ~br:1 ()
  | `Grafted -> ()
  | `Next succ_id -> hand_off t ctx succ_id);
  (* Deferred re-initialisation (H1 discipline): restore the node's
     pre-initialised state *after* the hand-off, so the stores — local,
     contended-path-only — never delay the next lock holder. *)
  match t.variant with
  | Original -> ()
  | H1 | H2 ->
    (match successor with
    | `Next _ | `Grafted -> Ctx.write ctx node.next nil
    | `Free -> ());
    if node.dirty_locked then begin
      Ctx.write ctx node.locked 1;
      node.dirty_locked <- false
    end

let release t ctx =
  let node =
    if t.holder <> nil then node_of_id t t.holder
    else regular_node t (Ctx.proc ctx)
  in
  release_with_node t ctx node

(* Dead-holder recovery: the queue bookkeeping names the holder's qnode
   ([t.holder]), so [release] already runs correctly from any processor —
   recovery is that release performed by a detector on the corpse's
   behalf, hand-off (and abandoned-node GC) included. The recoverer does
   not end up holding the lock; it re-contends normally. *)
let recover t ctx =
  if t.recovering then false
  else
    match holder_proc t with
    | None -> false
    | Some dead when Machine.proc_alive t.machine dead -> false
    | Some dead ->
      t.recovering <- true;
      Fun.protect
        ~finally:(fun () -> t.recovering <- false)
        (fun () ->
          release t ctx;
          Vhook.recovered ctx ~cls:t.vcls ~dead;
          true)

(* TryLock variant 1: an interrupt handler may wait for the lock only when
   the in-use flag shows it did not interrupt the lock holder (or a waiter)
   on this same processor. Requires the lock to be created with
   [~track_in_use:true]. *)
let try_acquire_v1 t ctx =
  if not t.track_in_use then
    invalid_arg "Mcs.try_acquire_v1: lock lacks ~track_in_use:true";
  let node = regular_node t (Ctx.proc ctx) in
  let busy = Ctx.read ctx node.mark in
  Ctx.instr ctx ~br:1 ();
  if busy <> 0 then begin
    t.try_failures <- t.try_failures + 1;
    false
  end
  else begin
    acquire_with_node t ctx node;
    true
  end

(* TryLock variant 2: a true TryLock using the per-processor interrupt
   node. On failure the node is left in the queue, marked abandoned, for
   release to collect. *)
let try_acquire_v2 t ctx =
  let node = interrupt_node t (Ctx.proc ctx) in
  (* If our interrupt node is still queued from an earlier failed attempt we
     cannot reuse it yet. *)
  let still_queued = Ctx.read ctx node.mark in
  Ctx.instr ctx ~br:1 ();
  if still_queued <> 0 then begin
    t.try_failures <- t.try_failures + 1;
    false
  end
  else begin
    let pred = Ctx.fetch_and_store ctx t.tail (id_of_node t node) in
    Ctx.instr ctx ~reg:1 ~br:2 ();
    if pred = nil then begin
      got_lock t node;
      Vhook.try_acquired ctx ~cls:t.vcls ~id:t.vid;
      true
    end
    else begin
      (* The lock is held: mark the node abandoned *before* linking it in,
         so a releaser that reaches it always sees the mark and collects it
         instead of waking a node nobody is watching. *)
      Ctx.write ctx node.mark mark_abandoned;
      Ctx.write ctx (node_of_id t pred).next (id_of_node t node);
      t.try_failures <- t.try_failures + 1;
      false
    end
  end

(* Timeout-capable acquire, on the interrupt node (Chabbi et al.'s MCS-try
   family, adapted to the fetch&store-only queue): enqueue and spin like a
   normal acquire, but give up once [timeout] cycles pass. A timed-out node
   is abandoned in place — marked, exactly like a failed TryLock-v2 node —
   and a later release collects it with the same GC machinery.

   The abandonment handshake: a releaser that reaches a live interrupt node
   first atomically swaps its mark to [mark_claimed], then clears [locked];
   a waiter whose deadline expires atomically swaps the mark to
   [mark_abandoned]. Whichever swap lands first wins the node, so the lock
   is never handed to a waiter that already left, and a waiter never walks
   away from a hand-off that already committed. *)
let acquire_with_timeout t ctx ~timeout =
  if timeout <= 0 then begin
    (* Already-expired deadline: fail before touching the lock — no
       enqueue, no reads, no hook traffic (pinned by test_mcs). *)
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
  let node = interrupt_node t (Ctx.proc ctx) in
  (* A node abandoned by an earlier timeout may still sit in the queue. *)
  let still_queued = Ctx.read ctx node.mark in
  Ctx.instr ctx ~br:1 ();
  if still_queued <> 0 then begin
    t.try_failures <- t.try_failures + 1;
    false
  end
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
    let deadline = Machine.now t.machine + timeout in
    (match t.variant with
    | Original -> Ctx.write ctx node.next nil
    | H1 | H2 -> ());
    let pred = Ctx.fetch_and_store ctx t.tail (id_of_node t node) in
    Ctx.instr ctx ~reg:2 ~br:2 ();
    if pred = nil then begin
      got_lock t node;
      Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
      true
    end
    else begin
      (match t.variant with
      | Original -> Ctx.write ctx node.locked 1
      | H1 | H2 -> node.dirty_locked <- true);
      Ctx.write ctx (node_of_id t pred).next (id_of_node t node);
      Ctx.instr ctx ~reg:1 ~br:1 ();
      let rec spin_bounded () =
        let v = Ctx.read ctx node.locked in
        Ctx.instr ctx ~br:1 ();
        if v = 0 then true
        else if Machine.now t.machine >= deadline then false
        else spin_bounded ()
      in
      if spin_bounded () then begin
        (* The releaser claimed the node (mark := claimed) before clearing
           [locked]; make the node reusable again. *)
        Ctx.write ctx node.mark 0;
        got_lock t node;
        Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
        true
      end
      else begin
        let prev = Ctx.fetch_and_store ctx node.mark mark_abandoned in
        Ctx.instr ctx ~br:1 ();
        if prev = mark_claimed then begin
          (* Lost the race: a hand-off to us already committed, so the
             clearing of [locked] is on its way. Take the lock after all. *)
          spin_while_locked ctx node;
          Ctx.write ctx node.mark 0;
          got_lock t node;
          Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
          true
        end
        else begin
          (* Abandonment stands: the node stays queued, marked, until some
             release collects it. [locked] was never cleared, preserving
             the pre-initialisation invariant. *)
          node.dirty_locked <- false;
          t.timeouts <- t.timeouts + 1;
          Vhook.wait_abandoned ctx;
          false
        end
      end
    end
  end
  end

(* The {!Lock_core} timed face: absolute deadline, delegating to the
   relative-timeout entry point above. *)
let try_acquire_for t ctx ~deadline =
  acquire_with_timeout t ctx ~timeout:(deadline - Machine.now t.machine)

(* Core-interface view (H2 variant, the kernel's default). [waiters] is the
   untimed queue-non-empty hint a cohort release consults: the tail trailing
   the holder's node means someone enqueued behind it (an abandoned TryLock
   node also counts — the hint may overshoot, never deadlock, since the
   passed-to local head re-checks nothing: local passing only needs the
   global lock to stay held, which it does). *)
module Core = struct
  type nonrec t = t

  let algo = "MCS"
  let name = name

  let create ?(home = 0) ?(vclass = "mcs") machine =
    create ~variant:H2 ~home ~vclass machine

  let acquire = acquire
  let release = release
  let try_acquire = try_acquire_v2
  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free
  let waiters t = t.holder <> nil && Cell.peek t.tail <> t.holder
  let acquisitions = acquisitions
  let vclass = vclass
  let vid t = t.vid
end

(* The H1 face, for compositions. H2's removed successor check means every
   contended release runs the fetch&store repair, opening a short window in
   which the tail reads nil and a re-enqueuing processor usurps the lock
   past the whole queue. Stacked under a combinator whose release path has
   a long deterministic stretch (a cohort's global hand-off), that window
   resonates with the re-enqueue cadence and the usurped queue can starve.
   H1 keeps the fetch&store-only discipline but hands off directly whenever
   the successor link is visible, so a deep queue never opens the window. *)
let create_h1 ?(home = 0) ?(vclass = "mcs") machine =
  create ~variant:H1 ~home ~vclass machine

module Core_h1 = struct
  include Core

  let algo = "H1-MCS"

  (* [include Core] shadowed the variant-taking [create] above. *)
  let create = create_h1
end
