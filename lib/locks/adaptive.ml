(* Adaptive lock morphing: test&set -> MCS -> NUMA composite, driven by a
   sliding window of observed contention.

   The paper hand-picked a lock shape per subsystem because no single shape
   wins across load regimes: a test&set lock is unbeatable uncontended, a
   queue lock under symmetric contention, a hierarchical composite once
   hand-offs cross clusters. This lock carries all three shapes and morphs
   between them at run time, Fissile-style, keyed on the contended fraction
   and the remote-hand-off fraction of the last [window] acquisitions.

   Morph protocol. The three constituent shapes are pre-created and share
   one lockdep class (distinct instance ids); [current] is a one-word timed
   cell naming the active shape. An acquirer routes by reading [current],
   acquires that shape, then re-reads [current] to validate: if a morph
   happened while it was queued, it releases the stale shape (a "drain"
   hand-off that wakes the next stale waiter) and re-routes. Only a
   releaser that owned the critical section writes [current], and only
   after checking the target shape is free with no waiters — so the old
   shape drains before its words carry the lock again, and [current] never
   moves while any processor is inside the critical section.

   Mutual exclusion: entering the critical section requires holding shape
   [s] *and* observing [current = s] after the shape-level acquire. Shape-
   level mutual exclusion makes two holders of one shape impossible, and
   [current] is written only between critical sections (by the releaser,
   before its shape-level hand-off), so two processors validating against
   different shapes cannot both be inside.

   Verification needs no special casing: every shape-level acquire/release
   — drains included — is a balanced pair on a constituent instance, and a
   recovery is the constituent's own forced hand-off. The observer gains
   [morphs_up]/[morphs_down] counters and a current-shape gauge through
   {!Vhook.morphed}. *)

open Hector

(* Shape indices. *)
let shape_ts = 0
let shape_queue = 1
let shape_numa = 2
let n_shapes = 3

let shape_name = function
  | 0 -> "ts"
  | 1 -> "queue"
  | _ -> "numa"

type t = {
  name : string;
  shapes : Lock_core.packed array; (* [| ts; queue; numa |] *)
  current : Cell.t; (* the mode word: index of the active shape *)
  topo : Lock_core.topo;
  (* policy: sliding window of acquisitions and its thresholds *)
  window : int;
  up_contended : float;
  down_contended : float;
  up_remote : float;
  wait_threshold : int; (* cycles; a slower acquire counts as contended *)
  mutable w_acqs : int;
  mutable w_contended : int;
  mutable w_remote : int;
  (* Arrivals currently blocked inside a shape-level acquire (routing,
     queued or draining). Host-side, like the window: the wrapper can see
     queue depth even for shapes that cannot (a backed-off test&set has
     no queue to inspect). Overcounts after a crash kills a queued waiter
     — that only biases the policy towards bigger shapes, never towards
     shrinking a contended lock. *)
  mutable in_flight : int;
  (* bookkeeping (host-side, like every lock's holder word) *)
  mutable holder : int; (* -1 when free *)
  mutable holder_shape : int; (* shape the holder validated against *)
  mutable last_releaser : int; (* -1 before the first release *)
  mutable acquisitions : int;
  mutable morphs_up : int;
  mutable morphs_down : int;
  mutable drains : int; (* stale-shape hand-offs released and re-routed *)
  mutable deferrals : int; (* morphs blocked on a still-draining target *)
  mutable recovering : bool;
  abortable : bool;
  recoverable : bool;
  vcls : Verify.lock_class;
  vid : int;
}

(* The window is deliberately short: a regime change is only visible
   through acquisitions that *complete*, and the shape that most needs
   replacing (a saturated test&set) completes them slowest — a long
   window would leave the lock stuck in its worst shape for most of a
   load spike. Eight acquisitions is enough to estimate the contended
   fraction against thresholds this coarse. *)
let default_window = 8
let default_up_contended = 0.5
let default_down_contended = 0.15
let default_up_remote = 0.4

(* An acquisition also counts as contended when the shape-level acquire
   took longer than this. The instantaneous sample (holder set, or the
   shape reports waiters) misses the shape that most needs replacing: a
   backed-off test&set lock has no queue to inspect and its word is free
   for most of the wall-clock time between hand-offs, so a saturated
   spin shape looks idle at route time. The threshold sits above the
   family's uncontended acquire costs (a few µs) and far below a
   saturated wait (tens of µs). *)
let default_contended_wait_us = 10.0

let create ?(home = 0) ?(vclass = "adaptive") ?(window = default_window)
    ?(up_contended = default_up_contended)
    ?(down_contended = default_down_contended)
    ?(up_remote = default_up_remote)
    ?(contended_wait_us = default_contended_wait_us) ~name ~topo ~shapes
    ~abortable ~recoverable machine =
  if Array.length shapes <> n_shapes then
    invalid_arg "Adaptive.create: expected exactly [| ts; queue; numa |]";
  if window < 2 then invalid_arg "Adaptive.create: window must be >= 2";
  {
    name;
    shapes;
    current = Cell.make ~label:"adaptive.current" ~home shape_ts;
    topo;
    window;
    up_contended;
    down_contended;
    up_remote;
    wait_threshold =
      Config.cycles_of_us (Machine.config machine) contended_wait_us;
    w_acqs = 0;
    w_contended = 0;
    w_remote = 0;
    in_flight = 0;
    holder = -1;
    holder_shape = shape_ts;
    last_releaser = -1;
    acquisitions = 0;
    morphs_up = 0;
    morphs_down = 0;
    drains = 0;
    deferrals = 0;
    recovering = false;
    abortable;
    recoverable;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name t = t.name
let acquisitions t = t.acquisitions
let morphs_up t = t.morphs_up
let morphs_down t = t.morphs_down
let drains t = t.drains
let deferrals t = t.deferrals
let current_shape t = Cell.peek t.current
let vclass t = t.vcls
let vid t = t.vid
let holder t = t.holder

let is_free t =
  t.holder = -1 && Array.for_all Lock_core.p_is_free t.shapes

let waiters t =
  t.in_flight > 0 || Array.exists Lock_core.p_waiters t.shapes

(* Host-side window bookkeeping at critical-section entry. The caller has
   already decided [contended] from the route-time sample and the measured
   wait; an entry that leaves other arrivals still blocked behind it is
   contended too. A contended hand-off is remote when the previous
   releaser sat in a different cluster. *)
let entered t ctx ~shape ~contended =
  let p = Ctx.proc ctx in
  t.in_flight <- t.in_flight - 1;
  let contended = contended || t.in_flight > 0 in
  t.holder <- p;
  t.holder_shape <- shape;
  t.acquisitions <- t.acquisitions + 1;
  t.w_acqs <- t.w_acqs + 1;
  if contended then begin
    t.w_contended <- t.w_contended + 1;
    if
      t.last_releaser >= 0
      && t.topo.Lock_core.cluster_of t.last_releaser
         <> t.topo.Lock_core.cluster_of p
    then t.w_remote <- t.w_remote + 1
  end

let sample_contended t shape =
  t.holder >= 0 || Lock_core.p_waiters t.shapes.(shape)

let acquire t ctx =
  let t0 = Ctx.now ctx in
  t.in_flight <- t.in_flight + 1;
  let rec go () =
    let s = Ctx.read ctx t.current in
    let contended = sample_contended t s in
    Lock_core.p_acquire t.shapes.(s) ctx;
    if Ctx.read ctx t.current <> s then begin
      (* A morph landed while we were queued: hand the stale shape to the
         next drainer and re-route. Balanced pair; no critical section. *)
      t.drains <- t.drains + 1;
      Lock_core.p_release t.shapes.(s) ctx;
      go ()
    end
    else
      let contended =
        contended || Ctx.now ctx - t0 >= t.wait_threshold
      in
      entered t ctx ~shape:s ~contended
  in
  go ()

let try_acquire t ctx =
  t.in_flight <- t.in_flight + 1;
  let rec go () =
    let s = Ctx.read ctx t.current in
    let contended = sample_contended t s in
    if not (Lock_core.p_try_acquire t.shapes.(s) ctx) then begin
      t.in_flight <- t.in_flight - 1;
      false
    end
    else if Ctx.read ctx t.current <> s then begin
      t.drains <- t.drains + 1;
      Lock_core.p_release t.shapes.(s) ctx;
      go ()
    end
    else begin
      entered t ctx ~shape:s ~contended;
      true
    end
  in
  go ()

let try_acquire_for t ctx ~deadline =
  let t0 = Ctx.now ctx in
  t.in_flight <- t.in_flight + 1;
  let rec go () =
    if Ctx.now ctx >= deadline && t.abortable then begin
      t.in_flight <- t.in_flight - 1;
      false
    end
    else begin
      let s = Ctx.read ctx t.current in
      let contended = sample_contended t s in
      if not (Lock_core.p_try_acquire_for t.shapes.(s) ctx ~deadline) then begin
        t.in_flight <- t.in_flight - 1;
        false
      end
      else if Ctx.read ctx t.current <> s then begin
        t.drains <- t.drains + 1;
        Lock_core.p_release t.shapes.(s) ctx;
        go ()
      end
      else begin
        let contended =
          contended || Ctx.now ctx - t0 >= t.wait_threshold
        in
        entered t ctx ~shape:s ~contended;
        true
      end
    end
  in
  go ()

(* The policy, run by the releaser between its critical section and the
   shape-level hand-off — the only writer of [current].

   Promotion is eager: evaluated every release once a quarter-window
   quorum of samples exists, because the regimes that need a bigger shape
   are exactly the ones where a full window takes longest to fill (a
   saturated test&set completes acquisitions slowly). Demotion is
   conservative: evaluated only on a full window, so a brief lull cannot
   shrink the lock out from under a storm — and it keys on the contended
   fraction alone. The remote fraction is deliberately excluded from
   demotion: measured *under* the NUMA shape it is low precisely because
   that shape localises hand-offs, and demoting on it would oscillate.
   The gap between [up_contended] and [down_contended] is the hysteresis
   that keeps a borderline load from thrashing shapes every window.

   The fractions are clamped to [0, 1] — mirroring the observer-side
   invariant (contended can outrun acquisitions when waits abandon), a
   ratio above one means saturation, nothing hotter.

   The free-and-unqueued guard on the target implements the drain rule:
   the old shape's words never carry the lock again until its queue has
   fully drained; a blocked morph is deferred and retried. *)
let maybe_morph t ctx ~cur =
  let quorum = max 2 (t.window / 4) in
  (* The saturation fast path: half a window of arrivals blocked right
     now is direct evidence of the hot regime, available before the
     window can fill — a saturated test&set completes acquisitions so
     slowly that waiting for window samples from it would burn most of a
     load spike in the worst shape. *)
  let saturated = t.in_flight >= max 2 (t.window / 2) in
  if saturated || t.w_acqs >= quorum then begin
    let fc =
      min 1.0 (float_of_int t.w_contended /. float_of_int (max 1 t.w_acqs))
    in
    let fr =
      if t.w_contended = 0 then 0.0
      else min 1.0 (float_of_int t.w_remote /. float_of_int t.w_contended)
    in
    let hot = saturated || (t.w_acqs >= quorum && fc >= t.up_contended) in
    let target =
      if cur = shape_ts && hot then Some shape_queue
      else if
        cur = shape_queue && hot && t.w_contended >= 2 && fr >= t.up_remote
      then Some shape_numa
      else if t.w_acqs >= t.window && cur > shape_ts && fc <= t.down_contended
      then Some (cur - 1)
      else None
    in
    let reset () =
      t.w_acqs <- 0;
      t.w_contended <- 0;
      t.w_remote <- 0
    in
    match target with
    | Some tgt_idx ->
      let tgt = t.shapes.(tgt_idx) in
      if Lock_core.p_is_free tgt && not (Lock_core.p_waiters tgt) then begin
        Ctx.write ctx t.current tgt_idx;
        let up = tgt_idx > cur in
        if up then t.morphs_up <- t.morphs_up + 1
        else t.morphs_down <- t.morphs_down + 1;
        Vhook.morphed ctx ~cls:t.vcls ~up ~shape:tgt_idx
      end
      else t.deferrals <- t.deferrals + 1;
      reset ()
    | None -> if t.w_acqs >= t.window then reset ()
  end

let release t ctx =
  assert (t.holder = Ctx.proc ctx);
  let s = t.holder_shape in
  t.holder <- -1;
  t.last_releaser <- Ctx.proc ctx;
  maybe_morph t ctx ~cur:s;
  Lock_core.p_release t.shapes.(s) ctx

(* Dead-holder recovery. The easy case: the corpse validated (it is
   [t.holder]) — delegate to its shape's own recover, which forces the
   hand-off and reports it. The hard case is a crash inside an in-flight
   morph or drain: the corpse holds a constituent shape but [t.holder] is
   -1 — it died after routing but before validating, mid-drain-release, or
   between writing [current] and its shape-level hand-off. No Adaptive
   word says which shape it holds, so sweep every shape's recover; each
   returns false unless its registered holder really is dead. Serialised
   by a host-side flag, like every recover in the family. *)
let recover t ctx =
  if not t.recoverable then false
  else if t.recovering then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        let machine = Ctx.machine ctx in
        if t.holder >= 0 && not (Machine.proc_alive machine t.holder) then begin
          let ok = Lock_core.p_recover t.shapes.(t.holder_shape) ctx in
          if ok then begin
            t.holder <- -1;
            (* The window sampled a regime the crash just invalidated. *)
            t.w_acqs <- 0;
            t.w_contended <- 0;
            t.w_remote <- 0
          end;
          ok
        end
        else begin
          let swept = ref false in
          Array.iter
            (fun sh -> if Lock_core.p_recover sh ctx then swept := true)
            t.shapes;
          !swept
        end)
  end

module Core = struct
  type nonrec t = t

  let name = name
  let acquire = acquire
  let release = release
  let try_acquire = try_acquire
  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free
  let waiters = waiters
  let acquisitions = acquisitions
  let vclass = vclass
  let vid = vid
end
