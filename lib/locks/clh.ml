(* CLH queue lock (Craig; Landin & Hagersten).

   Like MCS, the CLH lock builds an implicit FIFO queue with one
   fetch&store on the tail word. Unlike MCS, a waiter spins on its
   PREDECESSOR's node, and on release a processor adopts its predecessor's
   node for its next acquisition, so nodes migrate between processors.

   On a cache-coherent machine this is elegant: the spin hits the local
   cache until the predecessor's release invalidates it. On HECTOR —
   no coherence — the spin goes to wherever the predecessor's node
   happens to live, usually remote memory, re-creating exactly the
   second-order traffic that distributed locks exist to avoid. The ABL4
   experiment measures this contrast; it is why Hurricane's choice was MCS
   (Section 5.2 discusses the trade-offs among queue locks).

   Node state: locked = 1 while its owner holds or waits for the lock;
   0 once released. The tail initially points at a dummy unlocked node. *)

open Hector

type t = {
  tail : Cell.t; (* node id of the queue tail *)
  nodes : Cell.t array; (* node id -> locked flag cell *)
  mutable node_of_proc : int array; (* which node each processor owns *)
  machine : Machine.t;
  mutable acquisitions : int;
  (* Bookkeeping for assertions (untimed). *)
  mutable holder : int; (* processor or -1 *)
  pred_of_proc : int array; (* node adopted from the predecessor *)
  vcls : Verify.lock_class;
  vid : int;
}

(* Node ids index [nodes]; node i for i < n starts owned by processor i,
   node n is the dummy the tail starts at. *)
let create ?(home = 0) ?(vclass = "clh") machine =
  let n = Machine.n_procs machine in
  let nodes =
    Array.init (n + 1) (fun i ->
        let node_home = if i < n then i else home in
        Machine.alloc machine
          ~label:(Printf.sprintf "clh%d" i)
          ~home:node_home
          (if i = n then 0 else 1))
  in
  {
    tail = Machine.alloc machine ~label:"clh.tail" ~home n;
    nodes;
    node_of_proc = Array.init n (fun i -> i);
    machine;
    acquisitions = 0;
    holder = -1;
    pred_of_proc = Array.make n (-1);
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let holder_proc t = if t.holder < 0 then None else Some t.holder
let is_free t = t.holder < 0

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let proc = Ctx.proc ctx in
  let my = t.node_of_proc.(proc) in
  (* Mark our node locked (it may be a recycled node homed anywhere). *)
  Ctx.write ctx t.nodes.(my) 1;
  let pred = Ctx.fetch_and_store ctx t.tail my in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  (* Spin on the PREDECESSOR's node — remote, unless a coherent cache holds
     it. *)
  let rec wait () =
    let v = Ctx.read ctx t.nodes.(pred) in
    Ctx.instr ctx ~br:1 ();
    if v <> 0 then wait ()
  in
  wait ();
  t.pred_of_proc.(proc) <- pred;
  assert (t.holder < 0);
  t.holder <- proc;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

let release t ctx =
  let proc = Ctx.proc ctx in
  assert (t.holder = proc);
  t.holder <- -1;
  let my = t.node_of_proc.(proc) in
  Ctx.write ctx t.nodes.(my) 0;
  Ctx.instr ctx ~br:1 ();
  (* Adopt the predecessor's node for next time. *)
  t.node_of_proc.(proc) <- t.pred_of_proc.(proc);
  t.pred_of_proc.(proc) <- -1;
  Vhook.released ctx ~cls:t.vcls ~id:t.vid

(* Core-interface view. CLH has no cheap TryLock (the queue admits no
   removal), so [try_acquire] enqueues and waits. *)
module Core = struct
  type nonrec t = t

  let algo = "CLH"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "clh") machine = create ~home ~vclass machine
  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let is_free = is_free

  (* The tail still pointing at a node other than the holder's means a
     waiter enqueued behind it. *)
  let waiters t = t.holder >= 0 && Cell.peek t.tail <> t.node_of_proc.(t.holder)
  let acquisitions = acquisitions
  let vclass t = t.vcls
end
