(* CLH queue lock (Craig; Landin & Hagersten).

   Like MCS, the CLH lock builds an implicit FIFO queue with one
   fetch&store on the tail word. Unlike MCS, a waiter spins on its
   PREDECESSOR's node, and on release a processor adopts its predecessor's
   node for its next acquisition, so nodes migrate between processors.

   On a cache-coherent machine this is elegant: the spin hits the local
   cache until the predecessor's release invalidates it. On HECTOR —
   no coherence — the spin goes to wherever the predecessor's node
   happens to live, usually remote memory, re-creating exactly the
   second-order traffic that distributed locks exist to avoid. The ABL4
   experiment measures this contrast; it is why Hurricane's choice was MCS
   (Section 5.2 discusses the trade-offs among queue locks).

   Node state: locked = 1 while its owner holds or waits for the lock;
   0 once released. The tail initially points at a dummy unlocked node.

   Timed acquisition (node recycling rules): a CLH node cannot be removed
   from the implicit queue, but because the release signal is
   level-triggered (the 0 persists in the predecessor's node), a timed-out
   waiter can abandon {e by value}: it writes [pred + 2] into its own node
   and leaves. Its unique successor — the one processor spinning on that
   node — decodes the redirect, adopts [pred] as its new predecessor, and
   returns the abandoned node to its owner (host-side bookkeeping; the
   owner is idle in the queue's eyes, so no handshake is needed — a grant
   that raced the abandonment is still sitting, level-triggered, at the
   end of the redirect chain). Timed acquisitions run on a separate
   per-processor node (the MCS interrupt-node discipline) so untimed
   acquisitions never go node-less; while a processor's timed node is
   still abandoned-in-queue, a new timed acquire fails fast. *)

open Hector

(* Node cell values. *)
let v_released = 0
let v_locked = 1
let encode_abandoned ~pred = pred + 2
let decode_abandoned v = v - 2

type t = {
  tail : Cell.t; (* node id of the queue tail *)
  nodes : Cell.t array; (* node id -> locked flag cell *)
  mutable node_of_proc : int array; (* which node each processor owns *)
  machine : Machine.t;
  mutable acquisitions : int;
  (* Bookkeeping for assertions (untimed). *)
  mutable holder : int; (* processor or -1 *)
  pred_of_proc : int array; (* node adopted from the predecessor *)
  timed_node_of_proc : int array; (* node for timed acquires; -1 = in queue *)
  abandoner_of_node : int array; (* node id -> proc that abandoned it, -1 *)
  timed_active : bool array; (* current hold came through the timed face *)
  mutable timeouts : int;
  mutable gc_count : int; (* abandoned nodes returned by an observer *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  vcls : Verify.lock_class;
  vid : int;
}

(* Node ids index [nodes]; node i for i < n starts owned by processor i,
   node n is the dummy the tail starts at, nodes n+1 .. 2n are the
   per-processor timed nodes (i - n - 1 owns node i). *)
let create ?(home = 0) ?(vclass = "clh") machine =
  let n = Machine.n_procs machine in
  let nodes =
    Array.init ((2 * n) + 1) (fun i ->
        let node_home = if i < n then i else if i = n then home else i - n - 1 in
        Machine.alloc machine
          ~label:(Printf.sprintf "clh%d" i)
          ~home:node_home
          (if i = n then v_released else v_locked))
  in
  {
    tail = Machine.alloc machine ~label:"clh.tail" ~home n;
    nodes;
    node_of_proc = Array.init n (fun i -> i);
    machine;
    acquisitions = 0;
    holder = -1;
    pred_of_proc = Array.make n (-1);
    timed_node_of_proc = Array.init n (fun i -> n + 1 + i);
    abandoner_of_node = Array.make ((2 * n) + 1) (-1);
    timed_active = Array.make n false;
    timeouts = 0;
    gc_count = 0;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let holder_proc t = if t.holder < 0 then None else Some t.holder
let is_free t = t.holder < 0
let timeouts t = t.timeouts
let gc_count t = t.gc_count

(* Our predecessor abandoned: return its node to its owner (we are the only
   processor spinning on it, so the reclaim cannot race another observer)
   and follow the redirect. *)
let reclaim_abandoned t ctx node =
  let owner = t.abandoner_of_node.(node) in
  t.abandoner_of_node.(node) <- -1;
  if owner >= 0 then t.timed_node_of_proc.(owner) <- node;
  t.gc_count <- t.gc_count + 1;
  Vhook.abandon_repaired ctx ~cls:t.vcls

(* Spin on [pred]'s node until it reads released, following abandonment
   redirects; returns the node the grant finally arrived through (the node
   to adopt at release). *)
let rec spin_on_pred t ctx pred =
  let v = Ctx.read ctx t.nodes.(pred) in
  Ctx.instr ctx ~br:1 ();
  if v = v_released then pred
  else if v >= 2 then begin
    let redirect = decode_abandoned v in
    reclaim_abandoned t ctx pred;
    spin_on_pred t ctx redirect
  end
  else spin_on_pred t ctx pred

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let proc = Ctx.proc ctx in
  let my = t.node_of_proc.(proc) in
  (* Mark our node locked (it may be a recycled node homed anywhere). *)
  Ctx.write ctx t.nodes.(my) v_locked;
  let pred = Ctx.fetch_and_store ctx t.tail my in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  (* Spin on the PREDECESSOR's node — remote, unless a coherent cache holds
     it. *)
  let granted_through = spin_on_pred t ctx pred in
  t.pred_of_proc.(proc) <- granted_through;
  assert (t.holder < 0);
  t.holder <- proc;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* Timed acquisition on the per-processor timed node. On expiry the waiter
   publishes the redirect value and leaves; the level-triggered release
   signal means no claim handshake is needed (a grant that lands after the
   abandonment waits, as a persistent 0, for whoever follows the redirect
   chain — conservation holds because the successor, or the next enqueuer,
   inherits it). *)
let acquire_with_timeout t ctx ~timeout =
  if timeout <= 0 then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    let proc = Ctx.proc ctx in
    let my = t.timed_node_of_proc.(proc) in
    if my < 0 then begin
      (* Our timed node is still abandoned in the queue. *)
      t.timeouts <- t.timeouts + 1;
      false
    end
    else begin
      Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
      let deadline = Machine.now t.machine + timeout in
      Ctx.write ctx t.nodes.(my) v_locked;
      let pred = Ctx.fetch_and_store ctx t.tail my in
      Ctx.instr ctx ~reg:2 ~br:2 ();
      (* [wait] returns [Ok granted_through] on the grant, or
         [Error cur_pred] on expiry — [cur_pred] being the node we were
         spinning on when time ran out, which is NOT necessarily the node
         the fetch&store returned: every redirect we followed reclaimed
         its node and returned it to an owner who may re-enqueue it
         anywhere. An abandonment must therefore redirect to [cur_pred];
         pointing at the original predecessor would aim our successor at
         a recycled node — possibly queued *behind* it — and close a
         circular wait. *)
      let rec wait pred =
        let v = Ctx.read ctx t.nodes.(pred) in
        Ctx.instr ctx ~br:1 ();
        if v = v_released then Ok pred
        else if v >= 2 then begin
          let redirect = decode_abandoned v in
          reclaim_abandoned t ctx pred;
          wait redirect
        end
        else if Machine.now t.machine >= deadline then Error pred
        else wait pred
      in
      match wait pred with
      | Ok granted_through ->
        t.pred_of_proc.(proc) <- granted_through;
        t.timed_active.(proc) <- true;
        assert (t.holder < 0);
        t.holder <- proc;
        t.acquisitions <- t.acquisitions + 1;
        Vhook.acquired ctx ~cls:t.vcls ~id:t.vid;
        true
      | Error cur_pred ->
        (* Abandon by value: our successor (or the next enqueuer, if we are
           the tail) redirects to our wait position and returns this node
           to us. *)
        t.abandoner_of_node.(my) <- proc;
        t.timed_node_of_proc.(proc) <- -1;
        Ctx.write ctx t.nodes.(my) (encode_abandoned ~pred:cur_pred);
        t.timeouts <- t.timeouts + 1;
        Vhook.wait_abandoned ctx;
        false
    end
  end

let try_acquire_for t ctx ~deadline =
  acquire_with_timeout t ctx ~timeout:(deadline - Machine.now t.machine)

(* Thread-oblivious: the releasing processor is derived from the holder
   bookkeeping, not from [ctx], so a recoverer can run the release on a
   dead holder's behalf (the cycles are charged to whoever calls). *)
let release t ctx =
  let proc = t.holder in
  assert (proc >= 0);
  t.holder <- -1;
  let timed = t.timed_active.(proc) in
  t.timed_active.(proc) <- false;
  let my =
    if timed then t.timed_node_of_proc.(proc) else t.node_of_proc.(proc)
  in
  (* Hook before the grant write — the write is the transfer point, so an
     observer must order our release before the successor's acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  Ctx.write ctx t.nodes.(my) v_released;
  Ctx.instr ctx ~br:1 ();
  (* Adopt the predecessor's node for next time, into the slot the
     acquisition came from. *)
  if timed then t.timed_node_of_proc.(proc) <- t.pred_of_proc.(proc)
  else t.node_of_proc.(proc) <- t.pred_of_proc.(proc);
  t.pred_of_proc.(proc) <- -1

(* Force the corpse's release if the current holder has been dead longer
   than any normal recovery would take (and nobody else is already doing
   it). The grace period keeps this strictly a last resort: a waiter
   running [recover] fires within its check period (well under a
   millisecond), so whenever one exists it wins and this never triggers —
   the rescue only matters when every remaining survivor is stuck inside a
   pump and no recover call is ever coming. Detection is host-side
   bookkeeping — it costs no simulated accesses — so callers may check on
   every spin iteration. *)
let rescue_grace_cycles = 16_000 (* 1 ms at 16 MHz *)

let rescue_dead_holder t ctx =
  match holder_proc t with
  | Some dead
    when (not (Machine.proc_alive t.machine dead))
         && (not t.recovering)
         && Machine.killed_at t.machine dead >= 0
         && Machine.now t.machine - Machine.killed_at t.machine dead
            > rescue_grace_cycles ->
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead)
  | _ -> ()

(* The queue pump used by [recover] on a free lock (below). It must spin
   dead-aware: between the pump's enqueue and its grant, another processor
   can acquire and fail-stop mid-critical-section, and if every remaining
   survivor is itself inside a pump there is no one left outside to run
   dead-holder recovery — the lock wedges with all survivors spinning on a
   corpse's node. Identical to [acquire] except that each spin iteration
   also rescues a dead holder. *)
let rec pump_spin t ctx pred =
  let v = Ctx.read ctx t.nodes.(pred) in
  Ctx.instr ctx ~br:1 ();
  if v = v_released then pred
  else if v >= 2 then begin
    let redirect = decode_abandoned v in
    reclaim_abandoned t ctx pred;
    pump_spin t ctx redirect
  end
  else begin
    rescue_dead_holder t ctx;
    pump_spin t ctx pred
  end

let pump_acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let proc = Ctx.proc ctx in
  let my = t.node_of_proc.(proc) in
  Ctx.write ctx t.nodes.(my) v_locked;
  let pred = Ctx.fetch_and_store ctx t.tail my in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  let granted_through = pump_spin t ctx pred in
  t.pred_of_proc.(proc) <- granted_through;
  assert (t.holder < 0);
  t.holder <- proc;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* Dead-holder recovery: [release] is thread-oblivious, so recovery is the
   corpse's release run by the detector. The grant it publishes is
   level-triggered, so the successor picks it up exactly as if the dead
   processor had released in time. *)
let recover t ctx =
  match holder_proc t with
  | None ->
    (* Free lock, but the caller's timed node may still sit abandoned in
       the queue. Only an enqueuer can walk the redirect chain and return
       it — and if every other processor is dead or idle, none ever will,
       while the caller's own timed face fast-fails for want of a node.
       Pump the queue: a plain acquire on the untimed node follows the
       redirects (reclaiming our timed node en route), finds the
       level-triggered grant parked at the end of the chain, and the
       immediate release leaves the lock free again. No forced release
       happens, so the [recovering] guard stays down and the contract's
       "no effect on a free lock" holds in the queue's eyes — the pump is
       an ordinary acquire/release pair. *)
    let proc = Ctx.proc ctx in
    if t.timed_node_of_proc.(proc) < 0 then begin
      pump_acquire t ctx;
      release t ctx
    end;
    false
  | Some dead when Machine.proc_alive t.machine dead -> false
  | Some dead ->
    if t.recovering then false
    else begin
      t.recovering <- true;
      Fun.protect
        ~finally:(fun () -> t.recovering <- false)
        (fun () ->
          release t ctx;
          Vhook.recovered ctx ~cls:t.vcls ~dead;
          true)
    end

(* Core-interface view. CLH has no cheap TryLock (the queue admits no
   removal), so [try_acquire] enqueues and waits. *)
module Core = struct
  type nonrec t = t

  let algo = "CLH"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "clh") machine = create ~home ~vclass machine
  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free

  (* The tail still pointing at a node other than the holder's means a
     waiter enqueued behind it. *)
  let waiters t =
    t.holder >= 0
    &&
    let active =
      if t.timed_active.(t.holder) then t.timed_node_of_proc.(t.holder)
      else t.node_of_proc.(t.holder)
    in
    Cell.peek t.tail <> active
  let acquisitions = acquisitions
  let vclass t = t.vcls
  let vid t = t.vid
end
