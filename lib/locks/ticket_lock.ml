(* Ticket lock with proportional backoff.

   The simplest fair lock: take a ticket (fetch&increment on the [next]
   word), spin until the [owner] word reaches it, backing off proportionally
   to the distance. HECTOR's swap cannot implement fetch&increment, so this
   lock — like the paper's "newer" queueing locks — requires a CAS machine
   (the increment is a CAS retry loop; LL/SC on real hardware).

   Space: two words total, independent of the processor count — the
   cheapest fair lock, at the price of all waiters spinning on one word
   ([owner]), which coherent caches amortise and non-coherent machines pay
   for dearly. *)

open Hector

type t = {
  next : Cell.t;
  owner : Cell.t;
  spin_unit : int; (* backoff cycles per waiter ahead of us *)
  machine : Machine.t;
  mutable acquisitions : int;
  mutable holder : int; (* ticket currently served; bookkeeping *)
  mutable holder_proc : int; (* processor holding the lock, -1 = free *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  vcls : Verify.lock_class;
  vid : int;
}

let create ?(home = 0) ?(spin_unit = 40) ?(vclass = "ticket") machine =
  if not (Machine.config machine).Config.has_cas then
    invalid_arg "Ticket_lock.create: needs a machine with compare&swap";
  {
    next = Machine.alloc machine ~label:"ticket.next" ~home 0;
    owner = Machine.alloc machine ~label:"ticket.owner" ~home 0;
    spin_unit;
    machine;
    acquisitions = 0;
    holder = -1;
    holder_proc = -1;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let acquisitions t = t.acquisitions
let is_free t = Cell.peek t.next = Cell.peek t.owner

(* fetch&increment by CAS retry. *)
let take_ticket t ctx =
  let rec loop () =
    let v = Ctx.read ctx t.next in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx t.next ~expect:v ~set:(v + 1) then v
    else loop ()
  in
  loop ()

(* Thread-oblivious: the served ticket comes from the bookkeeping, so any
   processor can advance [owner] on the holder's behalf. *)
let release t ctx =
  assert (t.holder >= 0);
  let my = t.holder in
  t.holder <- -1;
  t.holder_proc <- -1;
  (* Hook before the owner write — the write is the transfer point, so an
     observer must order our release before the successor's acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  Ctx.write ctx t.owner (my + 1);
  Ctx.instr ctx ~br:1 ()

(* Dead-holder recovery: advance [owner] past the corpse's ticket. A
   ticket, once granted, must be retired or every later waiter stalls —
   which is exactly what a dead holder causes and this repairs. *)
let recover t ctx =
  let dead = t.holder_proc in
  if t.recovering || dead < 0 || Machine.proc_alive t.machine dead then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let my = take_ticket t ctx in
  let rec wait () =
    let cur = Ctx.read ctx t.owner in
    Ctx.instr ctx ~br:1 ();
    if cur <> my then begin
      (if
         t.holder = cur && t.holder_proc >= 0
         && not (Machine.proc_alive t.machine t.holder_proc)
       then begin
         (* A ticket waiter cannot abort ([abortable = false]), so crash
            tolerance lives in the spin itself: the ticket being served
            belongs to a dead processor — retire it on the corpse's
            behalf. The liveness test is a host-side read, free when
            nobody dies; a lost recovery race just backs off and
            re-reads. *)
         if not (recover t ctx) then Ctx.interruptible_pause ctx t.spin_unit
       end
       else begin
         (* Proportional backoff: roughly one critical section per waiter
            ahead. *)
         let ahead = my - cur in
         Ctx.interruptible_pause ctx (max 1 (ahead * t.spin_unit))
       end);
      wait ()
    end
  in
  wait ();
  assert (t.holder = -1);
  t.holder <- my;
  t.holder_proc <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* Core-interface view; [try_acquire] takes a ticket and waits (a true
   TryLock would need fetch&decrement to give the ticket back). *)
module Core = struct
  type nonrec t = t

  let algo = "Ticket"
  let name _ = algo

  let create ?(home = 0) ?(vclass = "ticket") machine = create ~home ~vclass machine
  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  (* Not abortable: a ticket, once taken, cannot be returned without
     fetch&decrement, and a skipped ticket would stall every later waiter
     (the owner word only ever advances by one). Timed acquisition
     degenerates to a blocking acquire, as the capability flag states. *)
  let try_acquire_for t ctx ~deadline:_ =
    acquire t ctx;
    true

  let abortable = false

  (* Recoverable despite not being abortable: waiters recover in-spin (see
     [acquire]), and a detector can call [recover] directly. *)
  let recover = recover
  let recoverable = true
  let is_free = is_free

  (* More than one ticket outstanding past the one being served. *)
  let waiters t = t.holder >= 0 && Cell.peek t.next > t.holder + 1
  let acquisitions = acquisitions
  let vclass t = t.vcls
  let vid t = t.vid
end
