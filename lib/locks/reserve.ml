(* Reserve bits: the fine-grained half of the hybrid locking strategy.

   A reserve bit lives in a status word co-located with the element it
   protects. It is set and cleared with plain loads and stores — no atomic
   operations — because every modification happens under the protection of
   the structure's coarse-grained lock (clearing is a single store and may
   happen outside the lock). Waiters release the coarse lock and spin on the
   status word with exponential backoff, re-acquiring the coarse lock once
   the bit clears (Figure 1b).

   The word doubles as a reader-writer reserve: bit 0 is the exclusive
   (write) reservation; the remaining bits count read reservations. Which
   mode applies depends on the data the bit protects (Section 2.3).

   Why [clear] can be a single store of 0, even outside the coarse lock:
   [try_reserve] succeeds only when the word is entirely free (no writer,
   no readers) and [try_reserve_read] refuses while the write bit is set —
   both under the coarse lock. So from the moment a write reservation is
   taken until it is cleared, the word's value is exactly [write_bit]: no
   reader increment can interleave, and storing 0 loses nothing. A
   read-modify-write here would not be any safer — it would just re-read a
   value the protocol already pins — and the paper's protocol ("clearing is
   a single store") relies on the store being cheap enough to do from
   interrupt level. *)

open Hector

let write_bit = 1
let reader_one = 2

(* Verification hooks: pure host-side bookkeeping, charged no simulated
   cycles — one [match] on the installed checker when off. *)
let vcheck ctx f =
  match Machine.verify (Ctx.machine ctx) with None -> () | Some v -> f v

let ocheck ctx f =
  match Machine.obs (Ctx.machine ctx) with None -> () | Some o -> f o

let default_cls = Verify.lock_class "reserve"

(* All operations below assume the caller holds the coarse lock, except
   [clear_*] and [spin_until_clear*]. *)

let is_reserved ctx status =
  let v = Ctx.read ctx status in
  Ctx.instr ctx ~br:1 ();
  v land write_bit <> 0

(* [known] is the status value the caller just read (the status word is
   co-located with the key it examined during the search), saving the
   re-read. *)
let try_reserve ?known ?(cls = default_cls) ctx status =
  let v =
    match known with
    | Some v -> v
    | None -> Ctx.read ctx status
  in
  Ctx.instr ctx ~br:1 ();
  if v land write_bit <> 0 || v >= reader_one then false
  else begin
    Ctx.write ctx status (v lor write_bit);
    vcheck ctx (fun vf ->
        Verify.reserve_set vf ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
          ~label:(Cell.label status) ~now:(Ctx.now ctx));
    ocheck ctx (fun o ->
        Obs.reserve_set o ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
          ~now:(Ctx.now ctx));
    true
  end

let clear ctx status =
  Ctx.write ctx status 0;
  vcheck ctx (fun vf ->
      Verify.reserve_clear vf ~proc:(Ctx.proc ctx) ~word:(Cell.id status)
        ~now:(Ctx.now ctx));
  ocheck ctx (fun o ->
      Obs.reserve_clear o ~proc:(Ctx.proc ctx) ~word:(Cell.id status)
        ~now:(Ctx.now ctx))

(* Crash repair: clear a write reservation abandoned by a fail-stopped
   holder. The abandoned reservation pins the word at [write_bit] (the
   same argument that makes [clear] a single store), so the sweep is that
   same store, issued on the corpse's behalf by whoever detects it. The
   installed checker sees the foreign clear but waives it because the
   recorded owner is dead. Returns [false] — touching no simulated memory
   beyond one probe load — when [dead] is still alive or the bit is not
   set, so callers can speculatively sweep every reservation they track. *)
let clear_orphan ?(cls = default_cls) ctx status ~dead =
  if dead < 0 || Machine.proc_alive (Ctx.machine ctx) dead then false
  else begin
    let v = Ctx.read ctx status in
    Ctx.instr ctx ~br:1 ();
    if v land write_bit = 0 then false
    else begin
      clear ctx status;
      Vhook.recovered ctx ~cls ~dead;
      true
    end
  end

let try_reserve_read ?(cls = default_cls) ctx status =
  let v = Ctx.read ctx status in
  Ctx.instr ctx ~br:1 ();
  if v land write_bit <> 0 then false
  else begin
    Ctx.write ctx status (v + reader_one);
    vcheck ctx (fun vf ->
        Verify.reserve_read_set vf ~proc:(Ctx.proc ctx) ~cls
          ~word:(Cell.id status) ~label:(Cell.label status) ~now:(Ctx.now ctx));
    ocheck ctx (fun o ->
        Obs.reserve_read_set o ~proc:(Ctx.proc ctx) ~cls
          ~word:(Cell.id status) ~now:(Ctx.now ctx));
    true
  end

let clear_read ctx status =
  let v = Ctx.read ctx status in
  Ctx.instr ctx ~br:1 ();
  assert (v >= reader_one);
  Ctx.write ctx status (v - reader_one);
  vcheck ctx (fun vf ->
      Verify.reserve_read_clear vf ~proc:(Ctx.proc ctx) ~word:(Cell.id status)
        ~now:(Ctx.now ctx));
  ocheck ctx (fun o ->
      Obs.reserve_read_clear o ~proc:(Ctx.proc ctx) ~word:(Cell.id status)
        ~now:(Ctx.now ctx))

let readers status = Cell.peek status / reader_one
let write_reserved status = Cell.peek status land write_bit <> 0

(* Spin (with exponential backoff) until the exclusive bit clears. Called
   without the coarse lock held; the caller re-acquires the coarse lock and
   re-searches afterwards. *)
let spin_until_clear ?(cls = default_cls) ctx backoff status =
  vcheck ctx (fun vf ->
      Verify.reserve_wait vf ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
        ~label:(Cell.label status) ~now:(Ctx.now ctx)
        ~in_interrupt:(Ctx.in_interrupt ctx));
  ocheck ctx (fun o ->
      Obs.reserve_wait o ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
        ~now:(Ctx.now ctx));
  let rec loop delay =
    let v = Ctx.read ctx status in
    Ctx.instr ctx ~br:1 ();
    if v land write_bit <> 0 then begin
      Backoff.delay_on ctx backoff delay;
      loop (Backoff.next backoff delay)
    end
  in
  loop (Backoff.initial backoff);
  vcheck ctx (fun vf ->
      Verify.reserve_wait_done vf ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
  ocheck ctx (fun o ->
      Obs.reserve_wait_done o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx))

(* Bounded spin: gives up once [timeout] cycles pass with the bit still
   set, returning false so the caller can re-search — reserve another
   element, say — instead of waiting out a stalled holder. A zero or
   negative timeout is an already-expired deadline: fail immediately,
   before the wait hooks and before any memory traffic, so the edge case
   has no side effects at all. *)
let spin_until_clear_timeout ?(cls = default_cls) ctx backoff status ~timeout =
  if timeout <= 0 then false
  else begin
  vcheck ctx (fun vf ->
      Verify.reserve_wait vf ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
        ~label:(Cell.label status) ~now:(Ctx.now ctx)
        ~in_interrupt:(Ctx.in_interrupt ctx));
  ocheck ctx (fun o ->
      Obs.reserve_wait o ~proc:(Ctx.proc ctx) ~cls ~word:(Cell.id status)
        ~now:(Ctx.now ctx));
  let deadline = Ctx.now ctx + timeout in
  let rec loop delay =
    let v = Ctx.read ctx status in
    Ctx.instr ctx ~br:1 ();
    if v land write_bit = 0 then true
    else if Ctx.now ctx >= deadline then false
    else begin
      Backoff.delay_on ctx backoff delay;
      loop (Backoff.next backoff delay)
    end
  in
  let ok = loop (Backoff.initial backoff) in
  vcheck ctx (fun vf ->
      Verify.reserve_wait_done vf ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
  ocheck ctx (fun o ->
      Obs.reserve_wait_done o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
  ok
  end
