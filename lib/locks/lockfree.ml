(* Lock-free single-word operations (Section 5.3).

   TORNADO's plan: "lock-free data structures for simple leaf locks,
   particularly for data required by interrupt handlers and if the data to
   be modified is contained in a single word". These helpers implement that
   class with compare&swap retry loops (LL/SC on the real machine), plus a
   Treiber-style free-list whose nodes are model-level (only the head word
   is simulated memory — the paper's single-word-update restriction).

   They require a CAS-capable machine configuration. *)

open Hector

type counter = { cell : Cell.t; mutable cas_failures : int }

let make_counter machine ~home v =
  { cell = Machine.alloc machine ~label:"lf.counter" ~home v; cas_failures = 0 }

let counter_value c = Cell.peek c.cell
let counter_cell c = c.cell
let counter_cas_failures c = c.cas_failures

(* Atomic fetch-and-add by CAS retry. Returns the previous value. *)
let counter_add c ctx delta =
  let rec loop () =
    let v = Ctx.read ctx c.cell in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx c.cell ~expect:v ~set:(v + delta) then v
    else begin
      c.cas_failures <- c.cas_failures + 1;
      loop ()
    end
  in
  loop ()

let counter_incr c ctx = counter_add c ctx 1

(* A single-word flags cell updated lock-free: set/clear bits atomically.
   This is the lock-free replacement for a "leaf" spin lock protecting a
   status word. *)
let set_bits cell ctx mask =
  let rec loop () =
    let v = Ctx.read ctx cell in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx cell ~expect:v ~set:(v lor mask) then v
    else loop ()
  in
  loop ()

let clear_bits cell ctx mask =
  let rec loop () =
    let v = Ctx.read ctx cell in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if Ctx.compare_and_swap ctx cell ~expect:v ~set:(v land lnot mask) then v
    else loop ()
  in
  loop ()

(* Treiber stack over model-level nodes: the head word is the only
   simulated memory (single-word atomic update); node contents are
   OCaml-side. Push/pop are lock-free. The simulation's determinism and
   cell-level access ordering make the ABA problem unobservable here (node
   ids are never recycled while a pop is in flight), which we note rather
   than solve. *)
type 'a stack = {
  head : Cell.t; (* node id; 0 = empty *)
  nodes : (int, int * 'a) Hashtbl.t; (* id -> (next id, value) *)
  mutable next_id : int;
  mutable pushes : int;
  mutable pops : int;
}

let make_stack machine ~home =
  {
    head = Machine.alloc machine ~label:"lf.stack" ~home 0;
    nodes = Hashtbl.create 64;
    next_id = 1;
    pushes = 0;
    pops = 0;
  }

(* Model-level next pointers live alongside the payload. Popped nodes stay
   in the table: a concurrent pop that read the old head before losing its
   CAS still looks the node up during the retry window, exactly as the
   never-shrinking assoc list behaved (node ids are never recycled, so the
   stale entry can only be read, not resurrected). *)
let push stack ctx v =
  let id = stack.next_id in
  stack.next_id <- id + 1;
  let rec loop () =
    let head = Ctx.read ctx stack.head in
    Ctx.instr ctx ~reg:2 ~br:1 ();
    (* Record (id -> (next, value)) at model level, then swing the head. *)
    Hashtbl.replace stack.nodes id (head, v);
    if not (Ctx.compare_and_swap ctx stack.head ~expect:head ~set:id) then
      loop ()
  in
  loop ();
  stack.pushes <- stack.pushes + 1

let pop stack ctx =
  let rec loop () =
    let head = Ctx.read ctx stack.head in
    Ctx.instr ctx ~reg:2 ~br:1 ();
    if head = 0 then None
    else
      let next, v = Hashtbl.find stack.nodes head in
      if Ctx.compare_and_swap ctx stack.head ~expect:head ~set:next then begin
        stack.pops <- stack.pops + 1;
        Some v
      end
      else loop ()
  in
  loop ()

let stack_size stack ctx =
  (* Walk the chain, charging one read for the head only (the chain is
     model-level). *)
  let head = Ctx.read ctx stack.head in
  let rec count id acc =
    if id = 0 then acc
    else
      let next, _ = Hashtbl.find stack.nodes id in
      count next (acc + 1)
  in
  count head 0
