(** Reserve bits — the fine-grained half of the hybrid locking strategy.

    A reserve bit is one bit of an element's status word, set with plain
    loads and stores *under the structure's coarse-grained lock* (no atomic
    operations needed), and held for as long as the element is in use.
    Waiters drop the coarse lock and spin on the word with backoff.

    The same word supports reader-writer reservations: bit 0 is the
    exclusive reservation, higher bits count readers.

    {b Clearing protocol.} [clear] is a single unconditional store of 0 and
    needs no lock. This is mask-consistent because the set-side operations
    pin the word's value for the whole write-hold: [try_reserve] succeeds
    only on a fully free word (no writer, no readers) and
    [try_reserve_read] refuses while the write bit is set — both run under
    the coarse lock — so from set to clear the word is exactly the write
    bit and no concurrent reader increment can be lost. [clear_read] is a
    read-modify-write and therefore {e does} rely on the coarse lock (or
    other external serialisation of readers of the same word) to avoid
    losing a concurrent decrement.

    The optional [cls] arguments name the {!Verify.lock_class} used for
    lock-order checking when a checker is installed on the machine;
    structures with their own ordering discipline (e.g. the kernel hash
    tables) pass a per-structure class. *)

open Hector

(** True if the exclusive bit is set. Timed read; call under the coarse
    lock. *)
val is_reserved : Ctx.t -> Cell.t -> bool

(** Set the exclusive bit if the word is free of writers and readers.
    Call under the coarse lock. [known] passes a status value the caller
    just read, skipping the re-read (key and status share the header
    word). *)
val try_reserve : ?known:int -> ?cls:Verify.lock_class -> Ctx.t -> Cell.t -> bool

(** Clear the exclusive bit: a single store of 0, no coarse lock needed
    (see the clearing-protocol note above). *)
val clear : Ctx.t -> Cell.t -> unit

(** Crash repair: clear a write reservation abandoned by processor [dead]
    if it has fail-stopped. The abandoned reservation pins the word at the
    write bit, so the sweep is the same single store as {!clear}, issued
    on the corpse's behalf; an installed checker waives the foreign clear
    because the recorded owner is dead, and the recovery (with its
    kill-to-sweep latency) is reported to an installed {!Obs} observer
    under [cls]. Returns [false], touching nothing beyond one probe load,
    when [dead] is alive, negative, or the bit is already clear — callers
    may speculatively sweep every reservation they track. *)
val clear_orphan :
  ?cls:Verify.lock_class -> Ctx.t -> Cell.t -> dead:int -> bool

(** Add a read reservation if no writer holds the word. Under the coarse
    lock. *)
val try_reserve_read : ?cls:Verify.lock_class -> Ctx.t -> Cell.t -> bool

(** Drop one read reservation. Read-modify-write: serialise with other
    readers of the same word (see the clearing-protocol note above). *)
val clear_read : Ctx.t -> Cell.t -> unit

(** Untimed views for tests. *)
val readers : Cell.t -> int

val write_reserved : Cell.t -> bool

(** Spin with backoff until the exclusive bit clears. Called without the
    coarse lock; re-acquire and re-search afterwards. *)
val spin_until_clear : ?cls:Verify.lock_class -> Ctx.t -> Backoff.t -> Cell.t -> unit

(** Like {!spin_until_clear} but gives up after [timeout] cycles: [false]
    means the bit was still set at the deadline, and the caller should
    re-search (e.g. pick a different element) rather than keep waiting on a
    possibly stalled holder. [timeout <= 0] is an already-expired deadline:
    returns [false] immediately with no side effects — no read of the
    status word, no verification or observability events. *)
val spin_until_clear_timeout :
  ?cls:Verify.lock_class -> Ctx.t -> Backoff.t -> Cell.t -> timeout:int -> bool
