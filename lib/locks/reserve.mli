(** Reserve bits — the fine-grained half of the hybrid locking strategy.

    A reserve bit is one bit of an element's status word, set with plain
    loads and stores *under the structure's coarse-grained lock* (no atomic
    operations needed), and held for as long as the element is in use.
    Waiters drop the coarse lock and spin on the word with backoff.

    The same word supports reader-writer reservations: bit 0 is the
    exclusive reservation, higher bits count readers. *)

open Hector

(** True if the exclusive bit is set. Timed read; call under the coarse
    lock. *)
val is_reserved : Ctx.t -> Cell.t -> bool

(** Set the exclusive bit if the word is free of writers and readers.
    Call under the coarse lock. [known] passes a status value the caller
    just read, skipping the re-read (key and status share the header
    word). *)
val try_reserve : ?known:int -> Ctx.t -> Cell.t -> bool

(** Clear the exclusive bit (plain store; no coarse lock needed). *)
val clear : Ctx.t -> Cell.t -> unit

(** Add a read reservation if no writer holds the word. Under the coarse
    lock. *)
val try_reserve_read : Ctx.t -> Cell.t -> bool

(** Drop one read reservation. *)
val clear_read : Ctx.t -> Cell.t -> unit

(** Untimed views for tests. *)
val readers : Cell.t -> int

val write_reserved : Cell.t -> bool

(** Spin with backoff until the exclusive bit clears. Called without the
    coarse lock; re-acquire and re-search afterwards. *)
val spin_until_clear : Ctx.t -> Backoff.t -> Cell.t -> unit

(** Like {!spin_until_clear} but gives up after [timeout] cycles: [false]
    means the bit was still set at the deadline, and the caller should
    re-search (e.g. pick a different element) rather than keep waiting on a
    possibly stalled holder. *)
val spin_until_clear_timeout :
  Ctx.t -> Backoff.t -> Cell.t -> timeout:int -> bool
