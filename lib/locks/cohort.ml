(* Lock cohorting (Dice, Marathe & Shavit): a generic combinator that
   turns any per-cluster local lock plus any global lock into a NUMA-aware
   lock.

   The composite's invariant: a processor is in the critical section iff it
   holds its cluster's local lock AND its cluster owns the global lock.
   Ownership of the global lock is a *cluster* property ([owned]): a
   releaser that sees local waiters hands the local lock over without
   touching the global one, so the lock — and the data it protects — stay
   in the cluster's memory across consecutive critical sections. That is
   the paper's hierarchical-clustering insight pushed into the lock itself:
   hand-offs are cluster-local until either the cohort drains or the
   [max_handoffs] fairness bound trips, and only then does the global lock
   change hands (one cross-cluster transfer per cohort session instead of
   one per critical section).

   The combinator works over {!Lock_core.packed}, so the constituent
   algorithms can be chosen at runtime ([Lock.make]); the {!Make} functor
   is the statically-typed face over the same engine. Requirements on the
   constituents (the cohorting paper's terms):
   - the global lock must be *thread-oblivious* — acquired by one processor
     of a cluster, released by another. Every lock in this library
     qualifies: their release paths work from the releasing context, not a
     remembered owner. (Their [holder] bookkeeping is assertion-only and
     updated on every hand-off.)
   - the local lock must answer "is anyone behind me?" ([waiters]); a
     conservative [false] (spin locks) degrades locality, never safety.

   One hazard is specific to this simulator's MCS TryLock: a failed
   composite [try_acquire] can leave an abandoned node in the local queue,
   so a pass-release may hand the local lock to a node whose owner already
   left; the local release then GC-collects it and the local lock comes out
   *free* while the cluster still owns the global lock. The pass therefore
   uses an explicit handshake: the releaser writes a fresh generation
   token into [pass_token] before releasing the local lock, and whoever
   completes a local acquire zeroes it (host-side, in the same step its
   acquire returns). A pass that comes back with the releaser's *own*
   token still in place *and* the local lock free reached nobody, and is
   demoted to a full release. Checking [is_free] alone would be wrong:
   the local release's own trailing timed operations (the H1/H2 deferred
   re-initialisation) let the successor run — it can take the pass, do a
   full release of its own and leave the local lock free, and the demote
   would then release the global lock a second time. Nor would a boolean
   flag do: those same trailing operations let two pass-releases overlap,
   and the earlier releaser's check would read the *later* releaser's
   freshly-raised flag (plus a local lock momentarily free mid-hand-off)
   and demote while the cohort session is still live. The token makes a
   stale check inert — any acquire or later pass has overwritten it.

   The demote itself needs one more guard: it releases the global lock
   *after* the local lock is back in circulation (the full-release path
   orders these the other way around), so a cluster-mate could acquire
   the local lock, see [owned] false and enqueue on the global lock while
   the demoted release is still in flight. If that mate is the processor
   that opened the session, it re-enqueues the very MCS node the release
   is operating on, and the hand-off is lost — both sides spin forever.
   [demoting] closes the window: an acquirer that finds it raised waits
   it out (short, bounded by the global release's few timed operations)
   before touching the global lock. *)

open Hector

let default_max_handoffs = 16

type t = {
  cname : string;
  locals : Lock_core.packed array; (* one per cluster *)
  global : Lock_core.packed;
  owned : bool array; (* cluster currently owns the global lock *)
  passes : int array; (* consecutive local hand-offs this cohort session *)
  pass_token : int array; (* 0 = none; else the in-flight pass's generation *)
  mutable token_ctr : int; (* generation source for [pass_token] *)
  demoting : bool array; (* a demoted global release is in flight *)
  max_handoffs : int;
  cluster_of : int -> int;
  mutable holder : int; (* processor in the critical section; -1 = none *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  mutable acquisitions : int;
  mutable local_handoffs : int; (* pass-releases: global stayed put *)
  mutable global_releases : int; (* full releases: global changed hands *)
  mutable timeouts : int; (* timed-acquisition expiries, either level *)
  vcls : Verify.lock_class;
  vid : int;
}

(* The lowest processor of each cluster, for homing that cluster's local
   lock in cluster-local memory. *)
let cluster_homes machine (topo : Lock_core.topo) =
  let n = Machine.n_procs machine in
  let homes = Array.make topo.Lock_core.n_clusters (-1) in
  for p = n - 1 downto 0 do
    let c = topo.Lock_core.cluster_of p in
    if c >= 0 && c < Array.length homes then homes.(c) <- p
  done;
  Array.iteri
    (fun c h ->
      if h < 0 then
        invalid_arg (Printf.sprintf "Cohort: cluster %d has no processors" c))
    homes;
  homes

let create_packed ?(vclass = "cohort") ?(max_handoffs = default_max_handoffs)
    ~name ~topo ~local ~global machine =
  if max_handoffs < 1 then
    invalid_arg "Cohort: max_handoffs must be at least 1";
  let homes = cluster_homes machine topo in
  {
    cname = name;
    locals =
      Array.init topo.Lock_core.n_clusters (fun c ->
          local ~cluster:c ~home:homes.(c) ~vclass:(vclass ^ ".local"));
    global = global ~vclass:(vclass ^ ".global");
    owned = Array.make topo.Lock_core.n_clusters false;
    passes = Array.make topo.Lock_core.n_clusters 0;
    pass_token = Array.make topo.Lock_core.n_clusters 0;
    token_ctr = 0;
    demoting = Array.make topo.Lock_core.n_clusters false;
    max_handoffs;
    cluster_of = topo.Lock_core.cluster_of;
    holder = -1;
    recovering = false;
    acquisitions = 0;
    local_handoffs = 0;
    global_releases = 0;
    timeouts = 0;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name t = t.cname
let acquisitions t = t.acquisitions
let local_handoffs t = t.local_handoffs
let global_releases t = t.global_releases
let timeouts t = t.timeouts
let vclass t = t.vcls
let vid t = t.vid

(* The composite is abortable only if both constituents are: a
   non-abortable constituent turns the timed face into a blocking one. *)
let abortable t =
  Array.for_all Lock_core.p_abortable t.locals
  && Lock_core.p_abortable t.global

let is_free t =
  Lock_core.p_is_free t.global
  && Array.for_all Lock_core.p_is_free t.locals
  && not (Array.exists Fun.id t.owned)

let waiters t =
  Array.exists Lock_core.p_waiters t.locals
  || Lock_core.p_waiters t.global

let cluster t ctx = t.cluster_of (Ctx.proc ctx)

let got_lock t ctx =
  assert (t.holder = -1);
  t.holder <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let c = cluster t ctx in
  Lock_core.p_acquire t.locals.(c) ctx;
  (* Accept any in-flight pass before the next timed operation: the
     releaser's demote check must see either the token overwritten or the
     local lock still occupied (see the header). *)
  t.pass_token.(c) <- 0;
  (* A demoted global release may still be in flight; wait it out before
     touching the global lock (see the header). *)
  while t.demoting.(c) do
    Ctx.work ctx 10
  done;
  (* [owned] is only ever read or written by the holder of cluster [c]'s
     local lock, so this host-side check cannot race. *)
  Ctx.instr ctx ~br:1 ();
  if not t.owned.(c) then begin
    Lock_core.p_acquire t.global ctx;
    t.owned.(c) <- true;
    t.passes.(c) <- 0
  end
  else
    (* Inherited an open cohort session: the still-held global lock is now
       ours to release (or pass on). The checker's registered holder must
       follow the session, or the eventual global release looks foreign —
       host-side only, no simulated cost. *)
    Lock_core.p_transferred t.global ctx;
  got_lock t ctx

let try_acquire t ctx =
  let c = cluster t ctx in
  if not (Lock_core.p_try_acquire t.locals.(c) ctx) then false
  else begin
    t.pass_token.(c) <- 0;
    Ctx.instr ctx ~br:1 ();
    if t.demoting.(c) then begin
      (* A demoted global release is in flight: enqueueing on the global
         lock now could lose the hand-off, and a non-blocking caller
         cannot wait it out — report the lock as busy. *)
      Lock_core.p_release t.locals.(c) ctx;
      false
    end
    else if t.owned.(c) then begin
      Lock_core.p_transferred t.global ctx;
      got_lock t ctx;
      true
    end
    else if Lock_core.p_try_acquire t.global ctx then begin
      t.owned.(c) <- true;
      t.passes.(c) <- 0;
      got_lock t ctx;
      true
    end
    else begin
      (* Could not take the global lock: give the local one back. *)
      Lock_core.p_release t.locals.(c) ctx;
      false
    end
  end

(* Timed acquisition: a timed local acquire (whose failure leaves nothing
   held — the constituent's abandonment protocol cleans up after itself),
   then the same pass-acceptance and demote-fence steps as [acquire], then
   a timed global acquire with whatever deadline remains. A global-side
   failure gives the local lock back, exactly like [try_acquire]. Either
   constituent may return [true] past the deadline (a committed hand-off
   must be consumed); the composite then either delivers the lock or, if
   the other level has already run out of time, backs out cleanly. *)
let try_acquire_for t ctx ~deadline =
  if Ctx.now ctx >= deadline then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
    let c = cluster t ctx in
    if not (Lock_core.p_try_acquire_for t.locals.(c) ctx ~deadline) then begin
      t.timeouts <- t.timeouts + 1;
      Vhook.wait_abandoned ctx;
      false
    end
    else begin
      t.pass_token.(c) <- 0;
      while t.demoting.(c) do
        Ctx.work ctx 10
      done;
      Ctx.instr ctx ~br:1 ();
      if t.owned.(c) then begin
        Lock_core.p_transferred t.global ctx;
        got_lock t ctx;
        true
      end
      else if Lock_core.p_try_acquire_for t.global ctx ~deadline then begin
        t.owned.(c) <- true;
        t.passes.(c) <- 0;
        got_lock t ctx;
        true
      end
      else begin
        Lock_core.p_release t.locals.(c) ctx;
        t.timeouts <- t.timeouts + 1;
        Vhook.wait_abandoned ctx;
        false
      end
    end
  end

(* Full release: the cohort session ends, the global lock changes hands.
   [owned] goes false before the global release's first timed operation, so
   a cluster-mate that acquires the local lock mid-release already sees it
   down and competes for the global lock itself. *)
let release_global_then_local t ctx c =
  t.owned.(c) <- false;
  t.passes.(c) <- 0;
  t.global_releases <- t.global_releases + 1;
  Lock_core.p_release t.global ctx;
  Lock_core.p_release t.locals.(c) ctx

(* Thread-oblivious at the composite level too: the cluster being released
   comes from the holder bookkeeping, not from [ctx] — the constituent
   releases are holder-derived themselves, so a recoverer can run the
   whole unwind on a dead holder's behalf. *)
let release t ctx =
  let p = t.holder in
  assert (p >= 0);
  t.holder <- -1;
  let c = t.cluster_of p in
  let may_pass =
    t.passes.(c) < t.max_handoffs && Lock_core.p_waiters t.locals.(c)
  in
  Ctx.instr ctx ~br:1 ();
  (* The released hook runs just before whichever constituent release can
     transfer the lock, so an observer sees our release before the
     successor's acquisition — and never the reverse. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if may_pass then begin
    (* Local hand-off: keep the global lock with the cluster. *)
    t.passes.(c) <- t.passes.(c) + 1;
    t.token_ctr <- t.token_ctr + 1;
    let tok = t.token_ctr in
    t.pass_token.(c) <- tok;
    Lock_core.p_release t.locals.(c) ctx;
    (* The waiter the hint saw may have been an abandoned TryLock node the
       release just collected. If nobody accepted the pass (our own token
       still in place — any acquire or later pass overwrites it) and the
       local lock came out free, the cohort session is over: demote to a
       full release of the global lock. An acquirer that slips in after
       this check finds [owned] already false and [demoting] raised. *)
    if t.pass_token.(c) = tok && Lock_core.p_is_free t.locals.(c) then begin
      t.pass_token.(c) <- 0;
      t.demoting.(c) <- true;
      t.owned.(c) <- false;
      t.passes.(c) <- 0;
      t.global_releases <- t.global_releases + 1;
      Lock_core.p_release t.global ctx;
      t.demoting.(c) <- false
    end
    else t.local_handoffs <- t.local_handoffs + 1
  end
  else release_global_then_local t ctx c

(* The composite is recoverable only if both constituents are: the unwind
   runs their releases on the corpse's behalf, which needs each to be
   thread-oblivious with holder bookkeeping of its own. *)
let recoverable t =
  Array.for_all Lock_core.p_recoverable t.locals
  && Lock_core.p_recoverable t.global

(* Dead-holder recovery: the thread-oblivious release unwinds the corpse's
   session — a local pass if cluster-mates are queued (the cluster keeps
   the global lock), otherwise the full global-then-local release. *)
let recover t ctx =
  let dead = t.holder in
  if
    t.recovering || dead < 0
    || Machine.proc_alive (Ctx.machine ctx) dead
    || not (recoverable t)
  then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

(* The statically-typed face: one functor application per (local, global)
   algorithm pair, each yielding a full {!Lock_core.S} — so cohorts
   compose (a cohort can be the local or global side of another). *)
module Make (Local : Lock_core.S) (Global : Lock_core.S) = struct
  type nonrec t = t

  let algo = Printf.sprintf "C-%s-%s" Local.algo Global.algo

  let create_with ?(home = 0) ?vclass ?max_handoffs ~topo machine =
    ignore home;
    create_packed ?vclass ?max_handoffs ~name:algo ~topo
      ~local:(fun ~cluster:_ ~home ~vclass ->
        Lock_core.pack (module Local) (Local.create ~home ~vclass machine))
      ~global:(fun ~vclass ->
        Lock_core.pack (module Global) (Global.create ~home:0 ~vclass machine))
      machine

  let create ?home ?vclass machine =
    create_with ?home ?vclass ~topo:(Lock_core.topo_of_machine machine) machine

  let name = name
  let acquire = acquire
  let release = release
  let try_acquire = try_acquire
  let try_acquire_for = try_acquire_for
  let abortable = Local.abortable && Global.abortable
  let recover = recover
  let recoverable = Local.recoverable && Global.recoverable
  let is_free = is_free
  let waiters = waiters
  let acquisitions = acquisitions
  let vclass = vclass
  let vid = vid
  let local_handoffs = local_handoffs
  let global_releases = global_releases
end

(* The paper-faithful instance: MCS at both levels (C-MCS-MCS), the
   configuration the cohorting paper benchmarks against flat MCS. The
   constituents are the H1 variant: H2's always-fetch&store release opens a
   repair window on every local hand-off, and under the cohort's longer
   release path (the global hand-off's fixed-length stretch) that window
   resonates with re-enqueue timing — a recently served processor usurps
   the local queue every session and the queued cluster-mates starve. H1
   hands off directly whenever the successor link is visible, so a deep
   local queue never opens the window. *)
module C_mcs_mcs = Make (Mcs.Core_h1) (Mcs.Core_h1)
