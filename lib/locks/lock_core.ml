(* First-class-module lock interface (see lock_core.mli).

   The module types are the contract; the [packed] existential is the glue
   that lets [Lock.make] pick constituent algorithms at runtime and hand
   them to the cohort engine, which only ever sees OPS. *)

open Hector

type topo = { n_clusters : int; cluster_of : int -> int }

let topo ~n_clusters ~cluster_of =
  if n_clusters <= 0 then
    invalid_arg "Lock_core.topo: n_clusters must be positive";
  { n_clusters; cluster_of }

(* Hardware stations as the default topology: a machine-level analogue of
   the kernel's Clustering when no explicit clustering is in play. *)
let topo_of_machine machine =
  let cfg = Machine.config machine in
  { n_clusters = cfg.Config.stations; cluster_of = Config.station_of_proc cfg }

module type OPS = sig
  type t

  val name : t -> string
  val acquire : t -> Ctx.t -> unit
  val release : t -> Ctx.t -> unit
  val try_acquire : t -> Ctx.t -> bool
  val try_acquire_for : t -> Ctx.t -> deadline:int -> bool
  val abortable : bool
  val recover : t -> Ctx.t -> bool
  val recoverable : bool
  val is_free : t -> bool
  val waiters : t -> bool
  val acquisitions : t -> int
  val vclass : t -> Verify.lock_class
  val vid : t -> int
end

module type S = sig
  include OPS

  val algo : string
  val create : ?home:int -> ?vclass:string -> Machine.t -> t
end

type packed = Packed : (module OPS with type t = 'a) * 'a -> packed

let pack (type a) (module M : OPS with type t = a) (v : a) =
  Packed ((module M), v)

let p_name (Packed ((module M), v)) = M.name v
let p_acquire (Packed ((module M), v)) ctx = M.acquire v ctx
let p_release (Packed ((module M), v)) ctx = M.release v ctx
let p_try_acquire (Packed ((module M), v)) ctx = M.try_acquire v ctx

let p_try_acquire_for (Packed ((module M), v)) ctx ~deadline =
  M.try_acquire_for v ctx ~deadline

let p_abortable (Packed ((module M), _)) = M.abortable
let p_recover (Packed ((module M), v)) ctx = M.recover v ctx
let p_recoverable (Packed ((module M), _)) = M.recoverable
let p_is_free (Packed ((module M), v)) = M.is_free v
let p_waiters (Packed ((module M), v)) = M.waiters v
let p_acquisitions (Packed ((module M), v)) = M.acquisitions v

(* Tell the checker the calling processor inherited this (still-held) lock:
   a cohort pass moves the session to a cluster-mate without the global
   constituent changing hands, so the checker's registered holder must
   follow or the eventual release looks foreign. *)
let p_transferred (Packed ((module M), v)) ctx =
  Vhook.transferred ctx ~cls:(M.vclass v) ~id:(M.vid v)
