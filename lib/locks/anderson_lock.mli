(** Anderson's array-based queue lock: a fetch&increment hands each waiter
    a private array slot to spin on; release flips the next slot. Fair,
    hot-spot free — and P words per lock, the space cost that made the
    paper prefer per-processor MCS nodes (Section 5.2). Requires a CAS
    machine. *)

open Hector

type t

val create : ?home:int -> ?vclass:string -> Machine.t -> t

val acquisitions : t -> int
val is_free : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** The {!Lock_core.S} view; [try_acquire] takes a slot and waits. *)
module Core : Lock_core.S with type t = t
