(** Anderson's array-based queue lock: a fetch&increment hands each waiter
    a private array slot to spin on; release flips the next slot. Fair,
    hot-spot free — and P words per lock, the space cost that made the
    paper prefer per-processor MCS nodes (Section 5.2). Requires a CAS
    machine. *)

open Hector

type t

val create : ?home:int -> ?vclass:string -> Machine.t -> t

val acquisitions : t -> int
val is_free : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** Timed acquisition by slot forfeiture: a timed-out waiter swaps the
    forfeit mark (2) into its slot — a swap returning the grant (1) means
    the hand-off already committed, so the waiter takes the lock and
    returns [true] even past the deadline. Releases grant timed claimants
    with CAS(0 -> 1) and skip+reset forfeited slots. The slot ring holds
    2P+1 entries so concurrent issues never collide. [timeout <= 0], or an
    earlier forfeit of this processor not yet skipped by a release, fails
    immediately with no side effects on the lock. *)
val acquire_with_timeout : t -> Ctx.t -> timeout:int -> bool

(** {!acquire_with_timeout} against an absolute deadline — the
    {!Lock_core.OPS.try_acquire_for} face. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Deadline expiries (including fail-fast refusals). *)
val timeouts : t -> int

(** Forfeited slots skipped and reset by releases. *)
val gc_count : t -> int

(** The {!Lock_core.S} view; [try_acquire] takes a slot and waits. *)
module Core : Lock_core.S with type t = t
