(** HMCS (Chabbi, Fagan & Mellor-Crummey): a hierarchical MCS lock — one
    MCS queue per cluster plus a root MCS queue over clusters. The word a
    local waiter spins on doubles as the protocol channel: release writes
    the running pass count (root comes with the lock) or a sentinel telling
    the waiter to acquire the root itself. [threshold] bounds consecutive
    in-cluster hand-offs. Both levels use the fetch&store-only repair
    protocol (no compare&swap needed). *)

open Hector

type t

(** Raises [Invalid_argument] if [threshold < 1] or [topo] does not cover
    the machine's processors. *)
val create :
  ?home:int ->
  ?threshold:int ->
  ?vclass:string ->
  topo:Lock_core.topo ->
  Machine.t ->
  t

val default_threshold : int

val name : t -> string
val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit
val is_free : t -> bool
val waiters : t -> bool
val acquisitions : t -> int

(** Hand-offs that kept the root lock within the cluster. *)
val local_passes : t -> int

(** Releases that gave the root lock up. *)
val global_releases : t -> int

val repairs : t -> int
val grafts : t -> int
val vclass : t -> Verify.lock_class

(** The {!Lock_core.S} view; [create] clusters by hardware station and
    [try_acquire] enqueues and waits. *)
module Core : Lock_core.S with type t = t
