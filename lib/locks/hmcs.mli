(** HMCS (Chabbi, Fagan & Mellor-Crummey): a hierarchical MCS lock — one
    MCS queue per cluster plus a root MCS queue over clusters. The word a
    local waiter spins on doubles as the protocol channel: release writes
    the running pass count (root comes with the lock) or a sentinel telling
    the waiter to acquire the root itself. [threshold] bounds consecutive
    in-cluster hand-offs. Both levels use the fetch&store-only repair
    protocol (no compare&swap needed). *)

open Hector

type t

(** Raises [Invalid_argument] if [threshold < 1] or [topo] does not cover
    the machine's processors. *)
val create :
  ?home:int ->
  ?threshold:int ->
  ?vclass:string ->
  topo:Lock_core.topo ->
  Machine.t ->
  t

val default_threshold : int

val name : t -> string
val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit
val is_free : t -> bool
val waiters : t -> bool
val acquisitions : t -> int

(** Hand-offs that kept the root lock within the cluster. *)
val local_passes : t -> int

(** Releases that gave the root lock up. *)
val global_releases : t -> int

val repairs : t -> int
val grafts : t -> int
val vclass : t -> Verify.lock_class

(** Timed acquisition (HMCS-T): the waiter enqueues a separate per-processor
    timed node whose mark cell runs the MCS abandonment handshake — at
    {e both} tree levels (timed cnodes carry the root-level marks). A
    releaser collects abandoned nodes in passing, repairing the queue and,
    when an in-flight grant carried root ownership into a drained or
    usurped local queue, releasing the root on the cluster's behalf. A
    claim-race loss at the lock-granting level takes the lock and returns
    [true] even past the deadline; a claim-race loss that delivers only
    local headship passes it onward and fails. [timeout <= 0], a timed
    qnode still abandoned in its local queue, or (at the promotion point) a
    timed cnode still abandoned in the root queue, fail with no lasting
    effect on the lock. *)
val acquire_with_timeout : t -> Ctx.t -> timeout:int -> bool

(** {!acquire_with_timeout} against an absolute deadline — the
    {!Lock_core.OPS.try_acquire_for} face. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Deadline expiries (including fail-fast refusals). *)
val timeouts : t -> int

(** Abandoned nodes collected by releasers, both levels. *)
val gc_count : t -> int

(** The {!Lock_core.S} view; [create] clusters by hardware station and
    [try_acquire] enqueues and waits. *)
module Core : Lock_core.S with type t = t
