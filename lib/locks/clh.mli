(** CLH queue lock (Craig; Landin & Hagersten) — the queue lock the paper's
    Section 5.2 weighs against MCS.

    A waiter spins on its *predecessor's* node and adopts that node on
    release, so nodes migrate between processors. With coherent caches the
    spin is local until the hand-off invalidation; on HECTOR it is remote
    memory traffic — the ABL4 experiment measures the contrast. *)

open Hector

type t

val create : ?home:int -> ?vclass:string -> Machine.t -> t

val acquisitions : t -> int

(** Untimed, for assertions. *)
val holder_proc : t -> int option

val is_free : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** Timed acquisition, on a separate per-processor timed node (so untimed
    acquisitions never go node-less). A CLH node cannot be unlinked, so a
    timed-out waiter abandons {e by value}: it writes [pred + 2] into its
    node and leaves; the unique processor spinning on that node follows
    the redirect to [pred] and returns the node to its owner. The
    level-triggered release signal (the 0 persists) makes the abandonment
    race-free without a claim handshake. [timeout <= 0], or the
    processor's timed node still abandoned in the queue, fails immediately
    with no side effects on the lock. *)
val acquire_with_timeout : t -> Ctx.t -> timeout:int -> bool

(** {!acquire_with_timeout} against an absolute deadline — the
    {!Lock_core.OPS.try_acquire_for} face. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Deadline expiries (including fail-fast refusals). *)
val timeouts : t -> int

(** Abandoned nodes returned to their owners by an observing waiter. *)
val gc_count : t -> int

(** The {!Lock_core.S} view; [try_acquire] enqueues and waits (CLH has no
    cheap TryLock). *)
module Core : Lock_core.S with type t = t
