(** CLH queue lock (Craig; Landin & Hagersten) — the queue lock the paper's
    Section 5.2 weighs against MCS.

    A waiter spins on its *predecessor's* node and adopts that node on
    release, so nodes migrate between processors. With coherent caches the
    spin is local until the hand-off invalidation; on HECTOR it is remote
    memory traffic — the ABL4 experiment measures the contrast. *)

open Hector

type t

val create : ?home:int -> ?vclass:string -> Machine.t -> t

val acquisitions : t -> int

(** Untimed, for assertions. *)
val holder_proc : t -> int option

val is_free : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** The {!Lock_core.S} view; [try_acquire] enqueues and waits (CLH has no
    cheap TryLock). *)
module Core : Lock_core.S with type t = t
