(** Test&set spin lock with exponential backoff (paper Figure 3c).

    Waiters spin on the lock word itself, loading its memory module and the
    interconnect — the behaviour the paper's distributed locks avoid. The
    release is a swap as well (HECTOR has no other atomic), matching the two
    atomic operations Figure 4 charges to a spin lock/unlock pair. *)

open Hector

type t

(** [create machine ~home backoff] allocates the lock word on PMM [home].
    [vclass] names the lock-order class reported to an installed
    {!Verify.t} checker. *)
val create : Machine.t -> ?home:int -> ?vclass:string -> Backoff.t -> t

val acquisitions : t -> int

(** Number of failed test&set attempts (a direct measure of lock-word
    traffic). *)
val failed_attempts : t -> int

val home : t -> int

(** Untimed, for test assertions. *)
val is_held : t -> bool

(** The lock-order class this lock reports under (test assertions). *)
val vclass : t -> Verify.lock_class

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** Single test&set attempt; true if the lock was obtained. *)
val try_acquire : t -> Ctx.t -> bool

(** Retry with backoff until acquired or [deadline] (absolute simulated
    time) passes; an expired deadline fails without touching the lock
    word. A test&set waiter leaves no queue state, so abandonment is
    side-effect-free. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** The {!Lock_core.S} view: creation defaults to the paper's 35 us capped
    backoff. [waiters] is conservatively false (a test&set lock cannot see
    its backers-off), so cohorts over a spin local never pass locally. *)
module Core : Lock_core.S with type t = t
