(** MCS distributed locks (fetch&store variant) with the paper's H1/H2
    modifications and the Section 3.2 TryLock extensions.

    Queue nodes live in their owner's local memory, so waiters spin locally;
    the release repairs the queue when its unconditional fetch&store removed
    waiters ("victims"), grafting them behind any "usurper" that slipped in.

    - [Original]: Figure 3a — acquire initialises its queue node; release
      checks for a successor before touching the lock word.
    - [H1]: nodes pre-initialised; the initialisation store leaves the
      uncontended acquire path (re-initialisation happens on the contended
      path only).
    - [H2]: additionally drops the successor check from release; uncontended
      release is a single fetch&store, at the price of a constant repair
      overhead under contention. *)

open Hector

type variant = Original | H1 | H2

val variant_name : variant -> string

type t

(** [create machine] makes a lock whose word lives on PMM [home] (default
    0). [use_cas_release] switches the release to compare&swap (Section 5.2
    ablation; requires a CAS-capable machine config). [track_in_use]
    maintains the per-node in-use flag required by {!try_acquire_v1}. *)
val create :
  ?variant:variant ->
  ?home:int ->
  ?use_cas_release:bool ->
  ?track_in_use:bool ->
  ?vclass:string ->
  Machine.t ->
  t

val variant : t -> variant
val name : t -> string

val acquisitions : t -> int

(** Releases that found [old_tail <> I] and had to repair the queue. *)
val repairs : t -> int

(** Repairs that found a usurper and grafted the victims behind it. *)
val grafts : t -> int

val try_failures : t -> int

(** Abandoned TryLock nodes collected by releases. *)
val gc_count : t -> int

(** Deadline expiries in {!acquire_with_timeout}. *)
val timeouts : t -> int

(** Untimed; for test assertions. *)
val is_held : t -> bool

val is_free : t -> bool
val holder_proc : t -> int option

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** The {!Lock_core.S} view: H2 variant, TryLock v2. [waiters] is the
    untimed tail-behind-holder hint cohort releases consult. *)
module Core : Lock_core.S with type t = t

(** {!Core} with the H1 variant: release checks the successor link before
    the fetch&store, so a contended hand-off opens no repair window. Use
    this face inside compositions — H2's per-release window resonates with
    re-enqueue timing under a combinator's longer release path and can
    starve the queue behind a repeating usurper. *)
module Core_h1 : Lock_core.S with type t = t

(** TryLock variant 1: fails only when the caller's own queue node is in
    use (i.e. the interrupt arrived on the lock holder's processor);
    otherwise enqueues and waits. Requires [~track_in_use:true]. *)
val try_acquire_v1 : t -> Ctx.t -> bool

(** TryLock variant 2: a true TryLock on the caller's interrupt node. On
    failure the node is abandoned in the queue for release to collect. *)
val try_acquire_v2 : t -> Ctx.t -> bool

(** Acquire with a deadline, on the caller's interrupt node: enqueue and
    spin like {!acquire}, but give up after [timeout] cycles, abandoning
    the node in the queue for release to collect (the TryLock-v2 GC
    machinery). An atomic mark handshake resolves the race between a
    hand-off and an abandonment, so a timed-out waiter that lost the race
    still takes the lock (returns [true]). Returns [false] — with the
    caller holding nothing — when the node is still queued from an earlier
    timeout or the deadline expired.

    Edge semantics: [timeout <= 0] (a zero or already-expired deadline)
    fails immediately with {e no} side effects on the lock — no enqueue, no
    memory traffic, no verification hooks; only the {!timeouts} counter
    advances. *)
val acquire_with_timeout : t -> Ctx.t -> timeout:int -> bool

(** {!acquire_with_timeout} against an absolute deadline ([Machine.now]
    units) — the {!Lock_core.OPS.try_acquire_for} face. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Dead-holder recovery, the {!Lock_core.OPS.recover} face: if the
    current holder has fail-stopped (per the machine's liveness oracle),
    run {!release} on the corpse's behalf — hand-off and abandoned-node GC
    included — and return [true]. Returns [false] when the lock is free,
    the holder is alive, or another recoverer is already at work. *)
val recover : t -> Ctx.t -> bool
