(** Adaptive lock morphing: test&set → MCS → NUMA composite, driven by a
    sliding window of observed contention (Fissile-style, closing the loop
    the ROADMAP left open over the [lib/obs] profile).

    The lock carries three pre-created shapes sharing one lockdep class and
    routes arrivals through a one-word timed mode cell. Promotion is eager:
    once a quarter-window quorum of samples exists, every release checks
    whether the contended fraction crossed [up_contended] (and, for the
    step to the NUMA shape, whether the remote-hand-off fraction crossed
    [up_remote]). Demotion is conservative: only a full window whose
    contended fraction fell to [down_contended] shrinks the lock one step —
    the remote fraction is deliberately not a demotion trigger, because
    under the NUMA shape it is low precisely {e because} that shape
    localises hand-offs. The gap between [up_contended] and
    [down_contended] is the hysteresis that keeps a borderline load from
    thrashing shapes every window.

    Morph safety: an acquirer validates the mode cell {e after} acquiring
    the routed shape and, on a stale read, releases it (draining the old
    queue) and re-routes; only the critical-section owner writes the mode
    cell, and only once the target shape is free with no waiters. See
    [adaptive.ml] for the mutual-exclusion argument. *)

open Hector

type t

val default_window : int
val default_up_contended : float
val default_down_contended : float
val default_up_remote : float

(** An acquisition whose shape-level acquire exceeded this also counts as
    contended — the instantaneous sample cannot see a saturated test&set
    shape, whose word is free for most of the wall-clock time between
    backed-off hand-offs. *)
val default_contended_wait_us : float

(** Shape indices, in promotion order. *)

val shape_ts : int
val shape_queue : int
val shape_numa : int
val shape_name : int -> string

(** [create ~name ~topo ~shapes ~abortable ~recoverable machine] builds the
    morphing lock over [shapes = [| ts; queue; numa |]] — three
    {!Lock_core.packed} instances that must share one lockdep class (their
    distinct instance ids keep the checker's ledgers separate).
    [abortable]/[recoverable] are the conjunction of the constituents'
    dynamic capabilities, supplied by the caller because a packed view only
    exposes static module flags ({!Lock.make} computes them). [home] places
    the mode word. Thresholds default to the [default_*] values. *)
val create :
  ?home:int ->
  ?vclass:string ->
  ?window:int ->
  ?up_contended:float ->
  ?down_contended:float ->
  ?up_remote:float ->
  ?contended_wait_us:float ->
  name:string ->
  topo:Lock_core.topo ->
  shapes:Lock_core.packed array ->
  abortable:bool ->
  recoverable:bool ->
  Machine.t ->
  t

val name : t -> string

(** Critical-section entries (validated acquisitions; drains excluded). *)
val acquisitions : t -> int

val morphs_up : t -> int
val morphs_down : t -> int

(** Stale-shape hand-offs: acquisitions that found the mode cell moved
    while they were queued, released the old shape and re-routed. *)
val drains : t -> int

(** Morph decisions blocked on a still-draining target shape. *)
val deferrals : t -> int

(** Untimed read of the mode word (tests and gauges). *)
val current_shape : t -> int

(** Untimed; -1 when free. *)
val holder : t -> int

val vclass : t -> Verify.lock_class
val vid : t -> int
val is_free : t -> bool
val waiters : t -> bool
val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit
val try_acquire : t -> Ctx.t -> bool
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Dead-holder recovery. A corpse that validated is repaired through its
    shape's own recover; otherwise (crash inside an in-flight morph or
    drain — the corpse holds a constituent but never became the Adaptive
    holder) every shape's recover is swept, each a no-op unless its
    registered holder really is dead. *)
val recover : t -> Ctx.t -> bool

(** The {!Lock_core.OPS} view, for packing. The static
    [abortable]/[recoverable] flags are [true]; the instance capabilities
    depend on the NUMA constituent — {!Lock.make} wires the dynamic
    values into the uniform record. *)
module Core : Lock_core.OPS with type t = t
