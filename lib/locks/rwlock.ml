(* Distributed reader–writer lock (see rwlock.mli for the protocol).

   One indicator word per cluster, homed on that cluster's own PMM: value
   2*readers + gate bit. Readers CAS only their own cluster's word, so the
   steady-state read path is entirely cluster-local; a writer first takes
   an ordinary exclusive lock (any [Lock_core.packed], so RW-cohort and
   RW-CNA come free from the combinator), then sweeps every indicator —
   close the gate bit, wait for the reader count to drain. The [policy]
   picks the sweep shape: [Writer_blocking] slams every gate shut before
   draining any (readers machine-wide stop admitting at once);
   [Reader_preference] closes and drains one cluster at a time, so
   clusters the sweep has not reached yet keep admitting readers.

   The machine may lack fetch&add, so indicator arithmetic is a CAS retry
   loop; [Lock.needs_cas] advertises the requirement. All bookkeeping
   besides the indicator words ([reader_inside], holder fields, counters)
   is host state, kept crash-consistent by the kill semantics: a
   fail-stop parks the fiber at the next timed-operation boundary, so
   host updates issued immediately after a timed op are atomic with
   it. *)

open Hector

type policy = Reader_preference | Writer_blocking

let policy_name = function
  | Reader_preference -> "rp"
  | Writer_blocking -> "wb"

type t = {
  name : string;
  machine : Machine.t;
  topo : Lock_core.topo;
  policy : policy;
  centralised : bool;
  writer : Lock_core.packed; (* serialises writers *)
  w_abortable : bool;
  w_recoverable : bool;
  inds : Cell.t array; (* per cluster (or 1 if centralised) *)
  ind_cluster : int array; (* cluster each indicator word is homed in *)
  reader_inside : bool array; (* per proc; true iff its +2 is in-flight *)
  mutable writer_proc : int; (* proc that owns [writer], -1 otherwise *)
  mutable gates_closed : int; (* indicators with our gate bit set *)
  mutable w_acquired : bool; (* writer finished its drain sweep *)
  mutable recovering : bool; (* serialises recoveries *)
  mutable acquisitions : int; (* completed writer acquisitions *)
  mutable read_acquisitions : int;
  mutable timeouts : int; (* writer-side deadline expiries *)
  mutable read_timeouts : int;
  mutable read_remote : int; (* read-path ops on a remote indicator *)
  mutable reader_sweeps : int; (* dead-reader indicators swept *)
  mutable readers_now : int;
  mutable readers_peak : int;
  vcls_rd : Verify.lock_class;
  vcls_wr : Verify.lock_class;
  vid : int; (* one instance id: readers and writers share it *)
}

(* Lowest processor of each cluster — the indicator homes (same convention
   as [Cohort.create_packed]). *)
let cluster_homes machine topo =
  let n_clusters = topo.Lock_core.n_clusters in
  let homes = Array.make n_clusters (-1) in
  for p = Machine.n_procs machine - 1 downto 0 do
    let c = topo.Lock_core.cluster_of p in
    if c < 0 || c >= n_clusters then
      invalid_arg "Rwlock.create: cluster_of out of range";
    homes.(c) <- p
  done;
  Array.iteri
    (fun c h ->
      if h < 0 then
        invalid_arg (Printf.sprintf "Rwlock.create: cluster %d has no procs" c))
    homes;
  homes

let create ?home ?(vclass = "rwlock") ?(policy = Writer_blocking)
    ?(centralised = false) ~name ~topo ~writer ?writer_abortable
    ?writer_recoverable machine =
  if not (Machine.config machine).Config.has_cas then
    invalid_arg "Rwlock.create: reader indicators need compare&swap";
  let homes = cluster_homes machine topo in
  let w_home = match home with Some h -> h | None -> homes.(0) in
  let writer = writer ~vclass:(vclass ^ ".writer") in
  let inds =
    if centralised then
      [| Machine.alloc machine ~label:(vclass ^ ".readers") ~home:w_home 0 |]
    else
      Array.init topo.Lock_core.n_clusters (fun c ->
          Machine.alloc machine
            ~label:(Printf.sprintf "%s.readers%d" vclass c)
            ~home:homes.(c) 0)
  in
  let ind_cluster =
    if centralised then [| topo.Lock_core.cluster_of w_home |]
    else Array.init topo.Lock_core.n_clusters Fun.id
  in
  {
    name;
    machine;
    topo;
    policy;
    centralised;
    writer;
    w_abortable =
      (match writer_abortable with
      | Some b -> b
      | None -> Lock_core.p_abortable writer);
    w_recoverable =
      (match writer_recoverable with
      | Some b -> b
      | None -> Lock_core.p_recoverable writer);
    inds;
    ind_cluster;
    reader_inside = Array.make (Machine.n_procs machine) false;
    writer_proc = -1;
    gates_closed = 0;
    w_acquired = false;
    recovering = false;
    acquisitions = 0;
    read_acquisitions = 0;
    timeouts = 0;
    read_timeouts = 0;
    read_remote = 0;
    reader_sweeps = 0;
    readers_now = 0;
    readers_peak = 0;
    vcls_rd = Verify.lock_class (vclass ^ ".read");
    vcls_wr = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name t = t.name
let policy t = t.policy
let centralised t = t.centralised
let acquisitions t = t.acquisitions
let read_acquisitions t = t.read_acquisitions
let timeouts t = t.timeouts
let read_timeouts t = t.read_timeouts
let read_remote t = t.read_remote
let reader_sweeps t = t.reader_sweeps
let readers_now t = t.readers_now
let readers_peak t = t.readers_peak
let vclass t = t.vcls_wr
let vclass_read t = t.vcls_rd
let abortable t = t.w_abortable
let recoverable t = t.w_recoverable

let ind_index t proc =
  if t.centralised then 0 else t.topo.Lock_core.cluster_of proc

(* Read-path remote-traffic accounting: the acceptance evidence for the
   distributed layout. Charged per timed indicator op whose home cluster
   differs from the operator's — identically zero for the distributed
   layout, every off-home-cluster reader op for the centralised one. *)
let note_read_op t ~proc i =
  if t.topo.Lock_core.cluster_of proc <> t.ind_cluster.(i) then
    t.read_remote <- t.read_remote + 1

let reader_in t proc =
  t.reader_inside.(proc) <- true;
  t.readers_now <- t.readers_now + 1;
  if t.readers_now > t.readers_peak then t.readers_peak <- t.readers_now;
  t.read_acquisitions <- t.read_acquisitions + 1

let reader_out t proc =
  t.reader_inside.(proc) <- false;
  if t.readers_now > 0 then t.readers_now <- t.readers_now - 1

(* -- reader side ---------------------------------------------------------- *)

(* One admission attempt: CAS +2 on the proc's own indicator, succeeding
   only on a gate-clear value (the expect has bit0 clear), so admission
   and the gate check are one atomic step. [`Admitted] on success,
   [`Gated] when the gate bit was set, [`Raced] on CAS interference. *)
let try_admit t ctx =
  let proc = Ctx.proc ctx in
  let i = ind_index t proc in
  let v = Ctx.read ctx t.inds.(i) in
  note_read_op t ~proc i;
  Ctx.instr ctx ~br:1 ();
  if v land 1 = 1 then `Gated
  else if Ctx.compare_and_swap ctx t.inds.(i) ~expect:v ~set:(v + 2) then begin
    note_read_op t ~proc i;
    reader_in t proc;
    `Admitted
  end
  else begin
    note_read_op t ~proc i;
    `Raced
  end

let acquire_read t ctx =
  (* Order edges are wanted for the shared side too: a blocking reader
     gated by a writer can be the waiting side of a deadlock. *)
  Vhook.wait_acquire ctx ~cls:t.vcls_rd ~id:t.vid;
  let rec go () =
    match try_admit t ctx with
    | `Admitted -> Vhook.acquired_shared ctx ~cls:t.vcls_rd ~id:t.vid
    | `Gated | `Raced -> go ()
  in
  go ()

let release_read t ctx =
  let proc = Ctx.proc ctx in
  assert t.reader_inside.(proc);
  let i = ind_index t proc in
  let rec go () =
    let v = Ctx.read ctx t.inds.(i) in
    note_read_op t ~proc i;
    Ctx.instr ctx ~br:1 ();
    (* -2 preserves the gate bit: a draining writer may have closed it
       while we were inside. *)
    if Ctx.compare_and_swap ctx t.inds.(i) ~expect:v ~set:(v - 2) then
      note_read_op t ~proc i
    else go ()
  in
  go ();
  (* Host bookkeeping right after the CAS completes is atomic with it
     (kill parks at the next timed op), so a corpse can never have
     decremented but still be marked inside. *)
  reader_out t proc;
  Vhook.released_shared ctx ~cls:t.vcls_rd ~id:t.vid

let try_acquire_read t ctx =
  match try_admit t ctx with
  | `Admitted ->
    Vhook.try_acquired_shared ctx ~cls:t.vcls_rd ~id:t.vid;
    true
  | `Gated | `Raced -> false

let try_acquire_read_for t ctx ~deadline =
  if Ctx.now ctx >= deadline then begin
    t.read_timeouts <- t.read_timeouts + 1;
    false
  end
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls_rd ~id:t.vid;
    let rec go () =
      match try_admit t ctx with
      | `Admitted ->
        Vhook.acquired_shared ctx ~cls:t.vcls_rd ~id:t.vid;
        true
      | `Gated | `Raced ->
        if Ctx.now ctx >= deadline then begin
          t.read_timeouts <- t.read_timeouts + 1;
          Vhook.wait_abandoned ctx;
          false
        end
        else go ()
    in
    go ()
  end

let with_read t ctx f =
  acquire_read t ctx;
  Fun.protect ~finally:(fun () -> release_read t ctx) f

(* -- writer side ---------------------------------------------------------- *)

(* Set the gate bit on indicator [i]: CAS retry against concurrent reader
   arithmetic. Only the (unique, packed-serialised) writer sets gates, so
   an already-set bit means our own earlier close. *)
let close_gate t ctx i =
  let rec go () =
    let v = Ctx.read ctx t.inds.(i) in
    Ctx.instr ctx ~br:1 ();
    if v land 1 = 1 then ()
    else if Ctx.compare_and_swap ctx t.inds.(i) ~expect:v ~set:(v lor 1) then ()
    else go ()
  in
  go ();
  t.gates_closed <- max t.gates_closed (i + 1)

(* Clear the gate bit, preserving any still-draining reader count (a timed
   writer backing out reopens before the count reaches zero). *)
let open_gate t ctx i =
  let rec go () =
    let v = Ctx.read ctx t.inds.(i) in
    Ctx.instr ctx ~br:1 ();
    if v land 1 = 0 then ()
    else if
      Ctx.compare_and_swap ctx t.inds.(i) ~expect:v ~set:(v land lnot 1)
    then ()
    else go ()
  in
  go ();
  t.gates_closed <- min t.gates_closed i

(* Spin until indicator [i] holds only our gate bit. [deadline] < 0 means
   block; returns false on expiry with the gate still closed. *)
let drain_gate t ctx ~deadline i =
  let rec go () =
    let v = Ctx.read ctx t.inds.(i) in
    Ctx.instr ctx ~br:1 ();
    if v = 1 then true
    else if deadline >= 0 && Ctx.now ctx >= deadline then false
    else go ()
  in
  go ()

(* Close-and-drain every indicator per the policy; on a deadline expiry
   reopen everything closed so far and report failure. *)
let sweep t ctx ~deadline =
  let n = Array.length t.inds in
  let back_out () =
    for i = t.gates_closed - 1 downto 0 do
      open_gate t ctx i
    done;
    false
  in
  match t.policy with
  | Writer_blocking ->
    for i = 0 to n - 1 do
      close_gate t ctx i
    done;
    let rec drain i =
      if i >= n then true
      else if drain_gate t ctx ~deadline i then drain (i + 1)
      else back_out ()
    in
    drain 0
  | Reader_preference ->
    let rec go i =
      if i >= n then true
      else begin
        close_gate t ctx i;
        if drain_gate t ctx ~deadline i then go (i + 1) else back_out ()
      end
    in
    go 0

let got_write t ctx =
  t.w_acquired <- true;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls_wr ~id:t.vid

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls_wr ~id:t.vid;
  Lock_core.p_acquire t.writer ctx;
  t.writer_proc <- Ctx.proc ctx;
  let ok = sweep t ctx ~deadline:(-1) in
  assert ok;
  got_write t ctx

(* Thread-oblivious: may run on a recoverer's behalf for a dead writer, so
   everything works off the lock's own holder fields, and the composite
   release hook only fires when the drain sweep had completed (a corpse
   killed mid-sweep never reported [acquired], so there is no held entry
   for lockdep to balance). *)
let release t ctx =
  if t.w_acquired then begin
    t.w_acquired <- false;
    Vhook.released ctx ~cls:t.vcls_wr ~id:t.vid
  end;
  for i = t.gates_closed - 1 downto 0 do
    open_gate t ctx i
  done;
  t.writer_proc <- -1;
  Lock_core.p_release t.writer ctx

let try_acquire t ctx =
  if not (Lock_core.p_try_acquire t.writer ctx) then false
  else begin
    t.writer_proc <- Ctx.proc ctx;
    (* One-shot drain: close the gates, then demand every indicator is
       already empty at the first sample — deadline "now". *)
    if sweep t ctx ~deadline:(Ctx.now ctx) then begin
      got_write t ctx;
      true
    end
    else begin
      t.writer_proc <- -1;
      Lock_core.p_release t.writer ctx;
      false
    end
  end

let try_acquire_for t ctx ~deadline =
  if not t.w_abortable then begin
    acquire t ctx;
    true
  end
  else if Ctx.now ctx >= deadline then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    Vhook.wait_acquire_timed ctx ~cls:t.vcls_wr ~id:t.vid;
    if not (Lock_core.p_try_acquire_for t.writer ctx ~deadline) then begin
      t.timeouts <- t.timeouts + 1;
      Vhook.wait_abandoned ctx;
      false
    end
    else begin
      t.writer_proc <- Ctx.proc ctx;
      (* The packed lock may have been delivered by a committed hand-off
         past the deadline; still attempt one sweep pass so forward
         progress matches the cohort convention, but bound the drains. *)
      if sweep t ctx ~deadline then begin
        got_write t ctx;
        true
      end
      else begin
        t.writer_proc <- -1;
        Lock_core.p_release t.writer ctx;
        t.timeouts <- t.timeouts + 1;
        Vhook.wait_abandoned ctx;
        false
      end
    end
  end

let with_write t ctx f =
  acquire t ctx;
  Fun.protect ~finally:(fun () -> release t ctx) f

(* -- recovery ------------------------------------------------------------- *)

(* Sweep the wreckage of fail-stopped processors: a dead reader's +2 is
   removed from its cluster's indicator (charged to the recoverer), a dead
   writer's release is run on its behalf, and a corpse queued inside the
   packed writer lock is left to that lock's own recovery. Serialised by
   [recovering] — concurrent recoverers would double-decrement. *)
let recover t ctx =
  if t.recovering then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        let progress = ref false in
        Array.iteri
          (fun p inside ->
            if inside && not (Machine.proc_alive t.machine p) then begin
              let i = ind_index t p in
              let rec dec () =
                let v = Ctx.read ctx t.inds.(i) in
                Ctx.instr ctx ~br:1 ();
                if
                  not (Ctx.compare_and_swap ctx t.inds.(i) ~expect:v ~set:(v - 2))
                then dec ()
              in
              dec ();
              reader_out t p;
              t.reader_sweeps <- t.reader_sweeps + 1;
              Vhook.released_dead ctx ~cls:t.vcls_rd ~id:t.vid ~dead:p;
              Vhook.recovered ctx ~cls:t.vcls_rd ~dead:p;
              progress := true
            end)
          t.reader_inside;
        let wp = t.writer_proc in
        if wp >= 0 && not (Machine.proc_alive t.machine wp) then
          if t.w_recoverable then begin
            (* Reopen the corpse's gates and hand its packed lock on. The
               composite [released] inside fires only if the sweep had
               completed (see [release]); the packed constituent needs its
               own recovery, not a foreign release — its release path
               walks the caller's queue node. *)
            if t.w_acquired then begin
              t.w_acquired <- false;
              Vhook.released ctx ~cls:t.vcls_wr ~id:t.vid
            end;
            for i = t.gates_closed - 1 downto 0 do
              open_gate t ctx i
            done;
            t.writer_proc <- -1;
            ignore (Lock_core.p_recover t.writer ctx);
            Vhook.recovered ctx ~cls:t.vcls_wr ~dead:wp;
            progress := true
          end
          else ()
        else if wp < 0 && t.w_recoverable then
          (* No registered writer: any corpse is inside the packed queue. *)
          if Lock_core.p_recover t.writer ctx then progress := true;
        !progress)
  end

(* Crash-tolerant reader acquire: poll in bounded slices so dead writers
   (or dead fellow readers a writer is stuck draining behind) are noticed
   and repaired — same slice/jitter discipline as [Lock.acquire_recoverable]
   (the randomised, growing pause breaks retry phase lock). *)
let acquire_read_recoverable ?(check_period = 2_000) t ctx =
  let rng = Ctx.rng ctx in
  let rec attempt pause =
    if try_acquire_read_for t ctx ~deadline:(Ctx.now ctx + check_period) then ()
    else begin
      ignore (recover t ctx);
      Ctx.interruptible_pause ctx (1 + (pause / 2) + Eventsim.Rng.int rng pause);
      attempt (min (2 * pause) (8 * check_period))
    end
  in
  attempt 64

(* -- untimed probes ------------------------------------------------------- *)

let is_free t =
  Lock_core.p_is_free t.writer
  && t.writer_proc = -1
  && Array.for_all (fun ind -> Cell.peek ind = 0) t.inds
  && not (Array.exists Fun.id t.reader_inside)

let waiters t = Lock_core.p_waiters t.writer
let readers t = Array.fold_left (fun n ind -> n + (Cell.peek ind asr 1)) 0 t.inds
