(** CNA (Compact NUMA-Aware lock, Dice & Kogan): MCS with a NUMA-aware
    release — the releaser hands the lock to the first waiter of its own
    cluster and moves the skipped remote waiters onto a secondary queue,
    spliced back in after [threshold] consecutive local hand-offs (the
    starvation bound), when the lock leaves the cluster, or when the main
    queue drains. The acquire path and the per-processor spin are stock
    MCS; the lock itself stays three words. *)

open Hector

type t

(** Raises [Invalid_argument] if [threshold < 1] or [topo] does not cover
    the machine's processors. *)
val create :
  ?home:int ->
  ?threshold:int ->
  ?vclass:string ->
  topo:Lock_core.topo ->
  Machine.t ->
  t

val default_threshold : int

val name : t -> string
val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit
val is_free : t -> bool
val waiters : t -> bool
val acquisitions : t -> int

(** Hand-offs to a same-cluster waiter. *)
val local_handoffs : t -> int

(** Hand-offs that left the cluster (including secondary-queue flushes). *)
val remote_handoffs : t -> int

(** Waiters moved onto the secondary queue. *)
val moved : t -> int

(** Secondary-queue splices back into service. *)
val flushes : t -> int

val repairs : t -> int
val grafts : t -> int
val vclass : t -> Verify.lock_class

(** Timed acquisition on a separate per-processor timed node whose mark
    cell runs the MCS abandonment handshake. The release-side scan ignores
    marks; abandonment is discovered when a hand-off reaches the node,
    which is then unlinked (main or secondary queue alike) and the grant
    passed to its true successor. A claim-race loss takes the lock and
    returns [true] even past the deadline. [timeout <= 0], or the timed
    node still abandoned in a queue, fails immediately with no side
    effects on the lock. *)
val acquire_with_timeout : t -> Ctx.t -> timeout:int -> bool

(** {!acquire_with_timeout} against an absolute deadline — the
    {!Lock_core.OPS.try_acquire_for} face. *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** Deadline expiries (including fail-fast refusals). *)
val timeouts : t -> int

(** Abandoned nodes collected by hand-offs. *)
val gc_count : t -> int

(** The {!Lock_core.S} view; [create] clusters by hardware station and
    [try_acquire] enqueues and waits. *)
module Core : Lock_core.S with type t = t
