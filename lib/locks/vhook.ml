(* One-line verification/observation hook sites for the lock
   implementations: each is a single branch per installed subsystem when
   both are off, and pure host-side bookkeeping (no simulated cycles) when
   either is on. *)

open Hector

let on ctx f =
  match Machine.verify (Ctx.machine ctx) with None -> () | Some v -> f v

let obs ctx f =
  match Machine.obs (Ctx.machine ctx) with None -> () | Some o -> f o

let wait_acquire ctx ~cls ~id =
  on ctx (fun v ->
      Verify.wait_acquire v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_acquired o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let try_acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.try_acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_try_acquired o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let wait_acquire_timed ctx ~cls ~id =
  on ctx (fun v ->
      Verify.wait_acquire_timed v ~proc:(Ctx.proc ctx) ~cls ~id
        ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let abandon_repaired ctx ~cls =
  obs ctx (fun o ->
      Obs.lock_abandon_repaired o ~proc:(Ctx.proc ctx) ~cls ~now:(Ctx.now ctx))

let wait_abandoned ctx =
  on ctx (fun v ->
      Verify.wait_abandoned v ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait_abandoned o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx))

let recovered ctx ~cls ~dead =
  obs ctx (fun o ->
      let now = Ctx.now ctx in
      let killed = Machine.killed_at (Ctx.machine ctx) dead in
      let latency = if killed >= 0 && killed <= now then now - killed else 0 in
      Obs.lock_recovered o ~proc:(Ctx.proc ctx) ~cls ~dead ~latency ~now)

let transferred ctx ~cls ~id =
  on ctx (fun v ->
      Verify.transferred v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let released ctx ~cls ~id =
  on ctx (fun v ->
      Verify.released v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_released o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

(* An adaptive lock switched shape: observer only — the shape-level
   acquire/release pairs the checker sees are already balanced, so the
   morph itself is not a lockdep event. *)
let morphed ctx ~cls ~up ~shape =
  obs ctx (fun o ->
      Obs.lock_morphed o ~proc:(Ctx.proc ctx) ~cls ~up ~shape ~now:(Ctx.now ctx))

(* An optimistic read (seqlock sample) aborted: no lock was ever held, so
   only the profile hears about it — there is nothing for lockdep to
   balance. *)
let optimistic_abort ctx ~cls =
  obs ctx (fun o ->
      Obs.lock_optimistic_abort o ~proc:(Ctx.proc ctx) ~cls ~now:(Ctx.now ctx))

(* Shared (reader-side) faces of an RW lock. Same lockdep entry points as
   the exclusive ones — the checker's per-processor held lists make
   concurrent shared holders legal without special casing — plus the
   observer's reader-concurrency gauge. *)
let acquired_shared ctx ~cls ~id =
  on ctx (fun v ->
      Verify.acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      let proc = Ctx.proc ctx in
      let now = Ctx.now ctx in
      Obs.lock_acquired o ~proc ~cls ~id ~now;
      Obs.rw_read_enter o ~proc ~cls)

let try_acquired_shared ctx ~cls ~id =
  on ctx (fun v ->
      Verify.try_acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      let proc = Ctx.proc ctx in
      let now = Ctx.now ctx in
      Obs.lock_try_acquired o ~proc ~cls ~id ~now;
      Obs.rw_read_enter o ~proc ~cls)

let released_shared ctx ~cls ~id =
  on ctx (fun v ->
      Verify.released v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      let proc = Ctx.proc ctx in
      let now = Ctx.now ctx in
      Obs.lock_released o ~proc ~cls ~id ~now;
      Obs.rw_read_exit o ~proc ~cls)

(* A recoverer sweeps a shared hold off fail-stopped processor [dead].
   [Verify.released] cannot legalise this one — its dead-holder path keys
   on the single registered holder, and a shared lock has many — so the
   corpse is named explicitly. *)
let released_dead ctx ~cls ~id ~dead =
  on ctx (fun v ->
      Verify.released_dead v ~proc:(Ctx.proc ctx) ~dead ~cls ~id
        ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_released o ~proc:dead ~cls ~id ~now:(Ctx.now ctx);
      Obs.rw_read_exit o ~proc:dead ~cls)
