(* One-line verification hook sites for the lock implementations: each is a
   single branch on the installed checker when verification is off, and pure
   host-side bookkeeping (no simulated cycles) when it is on. *)

open Hector

let on ctx f =
  match Machine.verify (Ctx.machine ctx) with None -> () | Some v -> f v

let wait_acquire ctx ~cls ~id =
  on ctx (fun v ->
      Verify.wait_acquire v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let try_acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.try_acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let wait_abandoned ctx =
  on ctx (fun v ->
      Verify.wait_abandoned v ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx))

let released ctx ~cls ~id =
  on ctx (fun v ->
      Verify.released v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))
