(* One-line verification/observation hook sites for the lock
   implementations: each is a single branch per installed subsystem when
   both are off, and pure host-side bookkeeping (no simulated cycles) when
   either is on. *)

open Hector

let on ctx f =
  match Machine.verify (Ctx.machine ctx) with None -> () | Some v -> f v

let obs ctx f =
  match Machine.obs (Ctx.machine ctx) with None -> () | Some o -> f o

let wait_acquire ctx ~cls ~id =
  on ctx (fun v ->
      Verify.wait_acquire v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_acquired o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let try_acquired ctx ~cls ~id =
  on ctx (fun v ->
      Verify.try_acquired v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_try_acquired o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let wait_acquire_timed ctx ~cls ~id =
  on ctx (fun v ->
      Verify.wait_acquire_timed v ~proc:(Ctx.proc ctx) ~cls ~id
        ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let abandon_repaired ctx ~cls =
  obs ctx (fun o ->
      Obs.lock_abandon_repaired o ~proc:(Ctx.proc ctx) ~cls ~now:(Ctx.now ctx))

let wait_abandoned ctx =
  on ctx (fun v ->
      Verify.wait_abandoned v ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_wait_abandoned o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx))

let recovered ctx ~cls ~dead =
  obs ctx (fun o ->
      let now = Ctx.now ctx in
      let killed = Machine.killed_at (Ctx.machine ctx) dead in
      let latency = if killed >= 0 && killed <= now then now - killed else 0 in
      Obs.lock_recovered o ~proc:(Ctx.proc ctx) ~cls ~dead ~latency ~now)

let transferred ctx ~cls ~id =
  on ctx (fun v ->
      Verify.transferred v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))

let released ctx ~cls ~id =
  on ctx (fun v ->
      Verify.released v ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx));
  obs ctx (fun o ->
      Obs.lock_released o ~proc:(Ctx.proc ctx) ~cls ~id ~now:(Ctx.now ctx))
