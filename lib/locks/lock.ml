(* Uniform lock interface.

   Experiments sweep over lock algorithms; this record type lets a workload
   take "a lock" without knowing which algorithm backs it. The [algo] type
   enumerates every configuration the paper's figures compare. *)

open Hector

type t = {
  name : string;
  acquire : Ctx.t -> unit;
  release : Ctx.t -> unit;
  try_acquire : Ctx.t -> bool;
  try_acquire_for : Ctx.t -> deadline:int -> bool;
  abortable : bool; (* [try_acquire_for] can actually give up *)
  recover : Ctx.t -> bool; (* force a dead holder's release; see lock.mli *)
  recoverable : bool; (* [recover] can actually repair a dead holder *)
  is_free : unit -> bool; (* untimed, for assertions *)
  acquires : int ref; (* instrumentation: completed acquires *)
  wait_cycles : int ref; (* total cycles spent inside acquire *)
}

type algo =
  | Spin of { max_backoff_us : float }
  | Mcs_original
  | Mcs_h1
  | Mcs_h2
  | Mcs_cas (* H2 with compare&swap release: Section 5.2 ablation *)
  | Clh (* CLH queue lock (Craig): spins on the predecessor's node *)
  | Ticket (* fetch&increment ticket lock; CAS machines only *)
  | Anderson (* array-based queue lock; CAS machines only *)
  | Spin_then_block of { spin_us : float } (* Section 5.3, TORNADO *)
  | Null (* no-op lock: calibration probes measuring lock overhead *)
  | Cohort of { local : algo; global : algo; max_handoffs : int }
    (* lock cohorting: [local] per cluster under one [global] *)
  | Hmcs of { threshold : int } (* hierarchical MCS: two-level MCS tree *)
  | Cna of { threshold : int } (* compact NUMA-aware MCS: secondary queue *)
  | Rw of { writer : algo; policy : Rwlock.policy; centralised : bool }
    (* distributed RW lock: per-cluster reader indicators over [writer] *)
  | Adaptive of { numa : algo }
    (* morphing lock: test&set -> H1-MCS -> [numa] by observed contention *)

let rec algo_name = function
  | Spin { max_backoff_us } ->
    if max_backoff_us >= 1000.0 then
      Printf.sprintf "Spin(%.0fms)" (max_backoff_us /. 1000.0)
    else Printf.sprintf "Spin(%.0fus)" max_backoff_us
  | Mcs_original -> "MCS"
  | Mcs_h1 -> "H1-MCS"
  | Mcs_h2 -> "H2-MCS"
  | Mcs_cas -> "H2-MCS(cas)"
  | Clh -> "CLH"
  | Ticket -> "Ticket"
  | Anderson -> "Anderson"
  | Spin_then_block { spin_us } -> Printf.sprintf "STB(%.0fus)" spin_us
  | Null -> "none"
  | Cohort { local; global; _ } ->
    Printf.sprintf "C-%s-%s" (algo_name local) (algo_name global)
  | Hmcs _ -> "HMCS"
  | Cna _ -> "CNA"
  | Rw { writer; policy; centralised } ->
    Printf.sprintf "RW%s%s-%s"
      (match policy with
      | Rwlock.Writer_blocking -> ""
      | Rwlock.Reader_preference -> "(rp)")
      (if centralised then "(1w)" else "")
      (algo_name writer)
  | Adaptive { numa } -> Printf.sprintf "Adaptive(%s)" (algo_name numa)

(* Whether [make] will demand a compare&swap machine for this algorithm —
   so workloads sweeping the whole family can upgrade the configuration
   ({!Config.with_cas}) for exactly the algorithms that need it. *)
let rec needs_cas = function
  | Mcs_cas | Ticket | Anderson -> true
  | Rw _ -> true (* reader admission is a CAS retry loop *)
  | Cohort { local; global; _ } -> needs_cas local || needs_cas global
  | Adaptive { numa } ->
    (* The test&set and H1-MCS shapes are swap-only; only the NUMA
       constituent can raise the requirement. *)
    needs_cas numa
  | Spin _ | Mcs_original | Mcs_h1 | Mcs_h2 | Clh | Spin_then_block _ | Null
  | Hmcs _ | Cna _ ->
    false

(* A lock that does nothing: lets calibration probes measure a kernel path
   with its locking subtracted. *)
let null =
  {
    name = "none";
    acquire = (fun _ -> ());
    release = (fun _ -> ());
    try_acquire = (fun _ -> true);
    try_acquire_for = (fun _ ~deadline:_ -> true);
    abortable = true;
    recover = (fun _ -> false);
    recoverable = false;
    is_free = (fun () -> true);
    acquires = ref 0;
    wait_cycles = ref 0;
  }

let all_paper_algos =
  [ Mcs_original; Mcs_h1; Mcs_h2; Spin { max_backoff_us = 35.0 };
    Spin { max_backoff_us = 2000.0 } ]

(* H1 constituents, not H2: H2's successor-check-free release opens a
   fetch&store repair window on every hand-off, and stacked under the
   cohort's release path that window resonates with re-enqueue timing and
   starves the local queue behind a repeating usurper (see {!Cohort}). *)
let c_mcs_mcs =
  Cohort
    {
      local = Mcs_h1;
      global = Mcs_h1;
      max_handoffs = Cohort.default_max_handoffs;
    }

let hmcs = Hmcs { threshold = Hmcs.default_threshold }
let cna = Cna { threshold = Cna.default_threshold }
let all_numa_algos = [ c_mcs_mcs; hmcs; cna ]
let adaptive = Adaptive { numa = cna }

(* Wrap an acquire with wall-clock accounting (virtual cycles spent from
   call to lock entry). Algorithms without a real abandonment protocol get
   a blocking [try_acquire_for] (acquire, return true) and advertise it
   with [abortable = false]. *)
let instrumented ~name ~acquire ~release ~try_acquire ?try_acquire_for
    ?(abortable = false) ?recover ~is_free () =
  let acquires = ref 0 and wait_cycles = ref 0 in
  let timed_acquire ctx =
    let t0 = Machine.now (Ctx.machine ctx) in
    acquire ctx;
    incr acquires;
    wait_cycles := !wait_cycles + (Machine.now (Ctx.machine ctx) - t0)
  in
  let try_acquire_for =
    match try_acquire_for with
    | Some f ->
      fun ctx ~deadline ->
        let ok = f ctx ~deadline in
        if ok then incr acquires;
        ok
    | None ->
      fun ctx ~deadline:_ ->
        timed_acquire ctx;
        true
  in
  let recover, recoverable =
    match recover with
    | Some f -> (f, true)
    | None -> ((fun _ -> false), false)
  in
  {
    name;
    acquire = timed_acquire;
    release;
    try_acquire;
    try_acquire_for;
    abortable;
    recover;
    recoverable;
    is_free;
    acquires;
    wait_cycles;
  }

let of_spin lock =
  instrumented ~name:"spin"
    ~acquire:(fun ctx -> Spin_lock.acquire lock ctx)
    ~release:(fun ctx -> Spin_lock.release lock ctx)
    ~try_acquire:(fun ctx -> Spin_lock.try_acquire lock ctx)
    ~try_acquire_for:(fun ctx ~deadline ->
      Spin_lock.try_acquire_for lock ctx ~deadline)
    ~abortable:true
    ~recover:(fun ctx -> Spin_lock.Core.recover lock ctx)
    ~is_free:(fun () -> not (Spin_lock.is_held lock))
    ()

let of_mcs lock =
  instrumented ~name:(Mcs.name lock)
    ~acquire:(fun ctx -> Mcs.acquire lock ctx)
    ~release:(fun ctx -> Mcs.release lock ctx)
    ~try_acquire:(fun ctx -> Mcs.try_acquire_v2 lock ctx)
    ~try_acquire_for:(fun ctx ~deadline -> Mcs.try_acquire_for lock ctx ~deadline)
    ~abortable:true
    ~recover:(fun ctx -> Mcs.Core.recover lock ctx)
    ~is_free:(fun () -> Mcs.is_free lock)
    ()

(* A base algorithm as a {!Lock_core.packed} instance — the constituents a
   runtime-composed [Cohort] is assembled from. Only algorithms exposing a
   [Core] module qualify; nesting composites (or [Null] / STB) inside a
   cohort is rejected. *)
let packed_of_algo machine ~home ~vclass algo : Lock_core.packed =
  let cfg = Machine.config machine in
  match algo with
  | Spin { max_backoff_us } ->
    let backoff = Backoff.of_us cfg ~max_us:max_backoff_us () in
    Lock_core.pack
      (module Spin_lock.Core)
      (Spin_lock.create machine ~home ~vclass backoff)
  | Mcs_original ->
    Lock_core.pack (module Mcs.Core)
      (Mcs.create ~variant:Mcs.Original ~home ~vclass machine)
  | Mcs_h1 ->
    Lock_core.pack (module Mcs.Core)
      (Mcs.create ~variant:Mcs.H1 ~home ~vclass machine)
  | Mcs_h2 ->
    Lock_core.pack (module Mcs.Core)
      (Mcs.create ~variant:Mcs.H2 ~home ~vclass machine)
  | Mcs_cas ->
    if not cfg.Config.has_cas then
      invalid_arg "Lock.make: Mcs_cas needs a machine with compare&swap";
    Lock_core.pack (module Mcs.Core)
      (Mcs.create ~variant:Mcs.H2 ~home ~use_cas_release:true ~vclass machine)
  | Clh -> Lock_core.pack (module Clh.Core) (Clh.create ~home ~vclass machine)
  | Ticket ->
    Lock_core.pack
      (module Ticket_lock.Core)
      (Ticket_lock.create ~home ~vclass machine)
  | Anderson ->
    Lock_core.pack
      (module Anderson_lock.Core)
      (Anderson_lock.create ~home ~vclass machine)
  | Spin_then_block _ | Null | Cohort _ | Hmcs _ | Cna _ | Rw _ | Adaptive _ ->
    invalid_arg
      (Printf.sprintf
         "Lock.make: %s cannot be a cohort constituent (base algorithms only)"
         (algo_name algo))

(* An algorithm as an RW writer constituent: any base algorithm, or one of
   the NUMA composites — which is the point of building RW over [packed]:
   RW-cohort and RW-CNA fall out of the existing combinators. Returns the
   instance's *dynamic* abortable/recoverable capabilities alongside: a
   runtime-composed cohort's packed view only knows the module's static
   flags, which may be wrong for these constituents. *)
let rw_writer machine ~home ~topo algo ~vclass :
    Lock_core.packed * bool * bool =
  match algo with
  | Cohort { local; global; max_handoffs } ->
    let c =
      Cohort.create_packed ~vclass ~max_handoffs ~name:(algo_name algo) ~topo
        ~local:(fun ~cluster:_ ~home ~vclass ->
          packed_of_algo machine ~home ~vclass local)
        ~global:(fun ~vclass -> packed_of_algo machine ~home ~vclass global)
        machine
    in
    ( Lock_core.pack (module Cohort.C_mcs_mcs) c,
      Cohort.abortable c,
      Cohort.recoverable c )
  | Hmcs { threshold } ->
    let l = Hmcs.create ~home ~threshold ~vclass ~topo machine in
    (Lock_core.pack (module Hmcs.Core) l, true, true)
  | Cna { threshold } ->
    let l = Cna.create ~home ~threshold ~vclass ~topo machine in
    (Lock_core.pack (module Cna.Core) l, true, true)
  | Null | Spin_then_block _ | Rw _ | Adaptive _ ->
    invalid_arg
      (Printf.sprintf "Lock.make: %s cannot be an RW writer constituent"
         (algo_name algo))
  | Spin _ | Mcs_original | Mcs_h1 | Mcs_h2 | Mcs_cas | Clh | Ticket | Anderson
    ->
    let p = packed_of_algo machine ~home ~vclass algo in
    (p, Lock_core.p_abortable p, Lock_core.p_recoverable p)

(* The RW composite itself, with both faces — workloads that want the
   reader side use this directly; [make (Rw ...)] wraps the writer face in
   the uniform record. *)
let make_rw machine ?home ?(vclass = "rwlock") ?topo ~policy ~centralised
    writer_algo =
  let topo =
    match topo with Some t -> t | None -> Lock_core.topo_of_machine machine
  in
  let name = algo_name (Rw { writer = writer_algo; policy; centralised }) in
  let p, writer_abortable, writer_recoverable =
    rw_writer machine
      ~home:(match home with Some h -> h | None -> 0)
      ~topo writer_algo
      ~vclass:(vclass ^ ".writer")
  in
  Rwlock.create ?home ~vclass ~policy ~centralised ~name ~topo
    ~writer:(fun ~vclass:_ -> p)
    ~writer_abortable ~writer_recoverable machine

let make machine ?(home = 0) ?vclass ?topo algo =
  let cfg = Machine.config machine in
  let topo =
    match topo with
    | Some t -> t
    | None -> Lock_core.topo_of_machine machine
  in
  match algo with
  | Null -> null
  | Spin { max_backoff_us } ->
    let backoff = Backoff.of_us cfg ~max_us:max_backoff_us () in
    let lock = Spin_lock.create machine ~home ?vclass backoff in
    { (of_spin lock) with name = algo_name algo }
  | Mcs_original -> of_mcs (Mcs.create ~variant:Mcs.Original ~home ?vclass machine)
  | Mcs_h1 -> of_mcs (Mcs.create ~variant:Mcs.H1 ~home ?vclass machine)
  | Mcs_h2 -> of_mcs (Mcs.create ~variant:Mcs.H2 ~home ?vclass machine)
  | Mcs_cas ->
    if not cfg.Config.has_cas then
      invalid_arg "Lock.make: Mcs_cas needs a machine with compare&swap";
    let lock =
      Mcs.create ~variant:Mcs.H2 ~home ~use_cas_release:true ?vclass machine
    in
    { (of_mcs lock) with name = algo_name Mcs_cas }
  | Clh ->
    let lock = Clh.create ~home ?vclass machine in
    instrumented ~name:"CLH"
      ~acquire:(fun ctx -> Clh.acquire lock ctx)
      ~release:(fun ctx -> Clh.release lock ctx)
      ~try_acquire:(fun ctx ->
        (* CLH has no cheap TryLock; enqueue and wait. *)
        Clh.acquire lock ctx;
        true)
      ~try_acquire_for:(fun ctx ~deadline ->
        Clh.try_acquire_for lock ctx ~deadline)
      ~abortable:true
      ~recover:(fun ctx -> Clh.Core.recover lock ctx)
      ~is_free:(fun () -> Clh.is_free lock)
      ()
  | Ticket ->
    (* A drawn ticket cannot be handed back (a skipped number would stall
       every later waiter), so the timed face blocks: abortable = false. *)
    let lock = Ticket_lock.create ~home ?vclass machine in
    instrumented ~name:"Ticket"
      ~acquire:(fun ctx -> Ticket_lock.acquire lock ctx)
      ~release:(fun ctx -> Ticket_lock.release lock ctx)
      ~try_acquire:(fun ctx ->
        Ticket_lock.acquire lock ctx;
        true)
      ~recover:(fun ctx -> Ticket_lock.Core.recover lock ctx)
      ~is_free:(fun () -> Ticket_lock.is_free lock)
      ()
  | Anderson ->
    let lock = Anderson_lock.create ~home ?vclass machine in
    instrumented ~name:"Anderson"
      ~acquire:(fun ctx -> Anderson_lock.acquire lock ctx)
      ~release:(fun ctx -> Anderson_lock.release lock ctx)
      ~try_acquire:(fun ctx ->
        Anderson_lock.acquire lock ctx;
        true)
      ~try_acquire_for:(fun ctx ~deadline ->
        Anderson_lock.try_acquire_for lock ctx ~deadline)
      ~abortable:true
      ~recover:(fun ctx -> Anderson_lock.Core.recover lock ctx)
      ~is_free:(fun () -> Anderson_lock.is_free lock)
      ()
  | Spin_then_block { spin_us } ->
    (* Blocking hands the processor to the scheduler; there is no waiter
       state to retract, and wakeup is the scheduler's promise — the timed
       face blocks: abortable = false. *)
    let lock = Stb_lock.create ~home ~spin_us ?vclass machine in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Stb_lock.acquire lock ctx)
      ~release:(fun ctx -> Stb_lock.release lock ctx)
      ~try_acquire:(fun ctx -> Stb_lock.try_acquire lock ctx)
      ~is_free:(fun () -> not (Stb_lock.is_held lock))
      ()
  | Cohort { local; global; max_handoffs } ->
    let name = algo_name algo in
    let vcls = Option.value vclass ~default:"cohort" in
    let lock =
      Cohort.create_packed ~vclass:vcls ~max_handoffs ~name ~topo
        ~local:(fun ~cluster:_ ~home ~vclass ->
          packed_of_algo machine ~home ~vclass local)
        ~global:(fun ~vclass -> packed_of_algo machine ~home ~vclass global)
        machine
    in
    instrumented ~name
      ~acquire:(fun ctx -> Cohort.acquire lock ctx)
      ~release:(fun ctx -> Cohort.release lock ctx)
      ~try_acquire:(fun ctx -> Cohort.try_acquire lock ctx)
      ~try_acquire_for:(fun ctx ~deadline ->
        Cohort.try_acquire_for lock ctx ~deadline)
      ~abortable:(Cohort.abortable lock)
      ?recover:
        (if Cohort.recoverable lock then
           Some (fun ctx -> Cohort.recover lock ctx)
         else None)
      ~is_free:(fun () -> Cohort.is_free lock)
      ()
  | Hmcs { threshold } ->
    let lock = Hmcs.create ~home ~threshold ?vclass ~topo machine in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Hmcs.acquire lock ctx)
      ~release:(fun ctx -> Hmcs.release lock ctx)
      ~try_acquire:(fun ctx ->
        Hmcs.acquire lock ctx;
        true)
      ~try_acquire_for:(fun ctx ~deadline ->
        Hmcs.try_acquire_for lock ctx ~deadline)
      ~abortable:true
      ~recover:(fun ctx -> Hmcs.Core.recover lock ctx)
      ~is_free:(fun () -> Hmcs.is_free lock)
      ()
  | Cna { threshold } ->
    let lock = Cna.create ~home ~threshold ?vclass ~topo machine in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Cna.acquire lock ctx)
      ~release:(fun ctx -> Cna.release lock ctx)
      ~try_acquire:(fun ctx ->
        Cna.acquire lock ctx;
        true)
      ~try_acquire_for:(fun ctx ~deadline ->
        Cna.try_acquire_for lock ctx ~deadline)
      ~abortable:true
      ~recover:(fun ctx -> Cna.Core.recover lock ctx)
      ~is_free:(fun () -> Cna.is_free lock)
      ()
  | Adaptive { numa } ->
    (* Morphing lock: three pre-created shapes sharing one lockdep class
       (distinct instance ids), routed through Adaptive's mode word. The
       NUMA shape reuses the RW-writer constituent builder, which is the
       one that knows the composites' *dynamic* abortable/recoverable
       capabilities. *)
    (match numa with
    | Cohort _ | Hmcs _ | Cna _ -> ()
    | _ ->
      invalid_arg
        (Printf.sprintf
           "Lock.make: Adaptive's numa shape must be a NUMA composite \
            (Cohort/Hmcs/Cna), not %s"
           (algo_name numa)));
    let vcls = Option.value vclass ~default:"adaptive" in
    (* The test&set shape caps its backoff far below the standalone
       Spin default: by construction it only ever serves light traffic
       (contention promotes the lock away from it), and a tight cap is
       what lets a saturated spin shape drain quickly after a morph —
       with the 35us cap, the post-morph drain of a full complement of
       backed-off waiters is as slow as the spin shape itself. *)
    let ts =
      packed_of_algo machine ~home ~vclass:vcls (Spin { max_backoff_us = 5.0 })
    in
    let queue = packed_of_algo machine ~home ~vclass:vcls Mcs_h1 in
    let numa_p, numa_abortable, numa_recoverable =
      rw_writer machine ~home ~topo numa ~vclass:vcls
    in
    let abortable =
      Lock_core.p_abortable ts && Lock_core.p_abortable queue && numa_abortable
    in
    let recoverable =
      Lock_core.p_recoverable ts
      && Lock_core.p_recoverable queue
      && numa_recoverable
    in
    let lock =
      Adaptive.create ~home ~vclass:vcls ~name:(algo_name algo) ~topo
        ~shapes:[| ts; queue; numa_p |]
        ~abortable ~recoverable machine
    in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Adaptive.acquire lock ctx)
      ~release:(fun ctx -> Adaptive.release lock ctx)
      ~try_acquire:(fun ctx -> Adaptive.try_acquire lock ctx)
      ~try_acquire_for:(fun ctx ~deadline ->
        Adaptive.try_acquire_for lock ctx ~deadline)
      ~abortable
      ?recover:
        (if recoverable then Some (fun ctx -> Adaptive.recover lock ctx)
         else None)
      ~is_free:(fun () -> Adaptive.is_free lock)
      ()
  | Rw { writer; policy; centralised } ->
    (* The uniform record is the *writer* face; workloads wanting the
       reader side build the lock with [make_rw] instead. *)
    let lock = make_rw machine ~home ?vclass ~topo ~policy ~centralised writer in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Rwlock.acquire lock ctx)
      ~release:(fun ctx -> Rwlock.release lock ctx)
      ~try_acquire:(fun ctx -> Rwlock.try_acquire lock ctx)
      ~try_acquire_for:(fun ctx ~deadline ->
        Rwlock.try_acquire_for lock ctx ~deadline)
      ~abortable:(Rwlock.abortable lock)
      ?recover:
        (if Rwlock.recoverable lock then
           Some (fun ctx -> Rwlock.recover lock ctx)
         else None)
      ~is_free:(fun () -> Rwlock.is_free lock)
      ()

(* Crash-tolerant acquire: poll in bounded slices so a dead holder is
   noticed and repaired instead of being waited on forever. Each slice is a
   timed acquisition of [check_period] cycles; on expiry, [recover] runs if
   the holder fail-stopped. The backoff pause between slices is mandatory,
   not a politeness: an abortable algorithm whose abandoned node is still
   queued fails its next timed attempt in zero virtual time (fail-fast on
   the marked node), and without the pause the retry loop would spin the
   host without ever advancing the simulation.

   The pause must also be *randomised*, and allowed to grow past the check
   period. Mass timeout is pathological for abandon-in-place queue locks: a
   release hand-off walking the queue collects each abandoned node, which
   frees that node's owner to re-enqueue and time out again — trail growth
   exactly matches collection, and if every waiter runs the same
   deterministic slice/pause cadence the walker arrives at each position
   just after its owner gave up, forever (observed as a no-crash livelock
   at p = 16). Jitter breaks the phase lock, and the growing cap thins the
   abandonment rate until the walker catches a node whose owner is still
   spinning. A non-abortable but recoverable algorithm (Ticket) blocks and
   recovers in-spin; a non-recoverable one just blocks — callers that plan
   to inject crashes should pick from the recoverable family. *)
let acquire_recoverable ?(check_period = 2_000) t ctx =
  if not (t.abortable && t.recoverable) then t.acquire ctx
  else begin
    let rng = Ctx.rng ctx in
    let rec attempt pause =
      if t.try_acquire_for ctx ~deadline:(Ctx.now ctx + check_period) then ()
      else begin
        ignore (t.recover ctx);
        Ctx.interruptible_pause ctx
          (1 + (pause / 2) + Eventsim.Rng.int rng pause);
        attempt (min (2 * pause) (8 * check_period))
      end
    in
    attempt 64
  end

(* Acquire with the processor's soft mask set, so inter-processor interrupts
   that could deadlock with this lock are deferred until release (Section
   3.2's adopted solution). *)
let with_lock_masked t ctx f =
  Ctx.set_soft_mask ctx;
  t.acquire ctx;
  Fun.protect
    ~finally:(fun () ->
      t.release ctx;
      Ctx.clear_soft_mask ctx)
    f

let with_lock t ctx f =
  t.acquire ctx;
  Fun.protect ~finally:(fun () -> t.release ctx) f

(* Space cost of one lock instance, in words, for [n_procs] processors and
   [n_clusters] clusters. MCS queue nodes are per-processor but *shared
   across all locks* on real systems; here we charge the per-lock view the
   paper uses when comparing strategies ("an additional two words per
   actively spinning processor" for distributed locks, one word for a spin
   lock, a P-entry array for Anderson). The NUMA composites follow the same
   convention (see lock.mli for the full accounting). *)
let rec space_words ?(n_clusters = 1) ~n_procs = function
  | Spin _ -> 1
  | Ticket -> 2
  | Anderson -> 1 + n_procs
  | Clh -> 1 + n_procs + 1 (* tail + a node per processor + the dummy *)
  | Mcs_original | Mcs_h1 | Mcs_h2 | Mcs_cas -> 1 + (2 * n_procs)
  | Spin_then_block _ -> 1 (* plus the scheduler's wait list, not memory *)
  | Null -> 0
  | Cohort { local; global; _ } ->
    (* One [local] instance per cluster, one [global], plus the per-cluster
       [owned] flag and pass counter. *)
    space_words ~n_clusters ~n_procs global
    + (n_clusters * space_words ~n_clusters ~n_procs local)
    + (2 * n_clusters)
  | Hmcs _ ->
    (* Root tail; root node (next + locked) and local tail per cluster;
       queue node (next + locked) per processor. *)
    1 + (3 * n_clusters) + (2 * n_procs)
  | Cna _ ->
    (* Tail + secondary head/tail, and a 3-word node per processor (next,
       locked, cluster). Independent of the cluster count — CNA's "compact"
       claim. *)
    3 + (3 * n_procs)
  | Rw { writer; centralised; _ } ->
    (* The writer constituent plus one reader-indicator word per cluster
       (count and gate bit share the word), or a single word for the
       centralised baseline. *)
    space_words ~n_clusters ~n_procs writer
    + (if centralised then 1 else n_clusters)
  | Adaptive { numa } ->
    (* The mode word plus the max over the three shapes. The accounting
       convention throughout this function is the paper's per-lock *active*
       view (MCS nodes are per-processor but shared across locks on real
       systems); under that convention only one shape's words spin at a
       time — the morph guard keeps the inactive shapes quiescent — so the
       max, not the sum, is the footprint comparable with the static
       rows. *)
    1
    + List.fold_left max 0
        (List.map
           (space_words ~n_clusters ~n_procs)
           [ Spin { max_backoff_us = 5.0 }; Mcs_h1; numa ])
