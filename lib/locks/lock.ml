(* Uniform lock interface.

   Experiments sweep over lock algorithms; this record type lets a workload
   take "a lock" without knowing which algorithm backs it. The [algo] type
   enumerates every configuration the paper's figures compare. *)

open Hector

type t = {
  name : string;
  acquire : Ctx.t -> unit;
  release : Ctx.t -> unit;
  try_acquire : Ctx.t -> bool;
  is_free : unit -> bool; (* untimed, for assertions *)
  acquires : int ref; (* instrumentation: completed acquires *)
  wait_cycles : int ref; (* total cycles spent inside acquire *)
}

type algo =
  | Spin of { max_backoff_us : float }
  | Mcs_original
  | Mcs_h1
  | Mcs_h2
  | Mcs_cas (* H2 with compare&swap release: Section 5.2 ablation *)
  | Clh (* CLH queue lock (Craig): spins on the predecessor's node *)
  | Ticket (* fetch&increment ticket lock; CAS machines only *)
  | Anderson (* array-based queue lock; CAS machines only *)
  | Spin_then_block of { spin_us : float } (* Section 5.3, TORNADO *)
  | Null (* no-op lock: calibration probes measuring lock overhead *)

let algo_name = function
  | Spin { max_backoff_us } ->
    if max_backoff_us >= 1000.0 then
      Printf.sprintf "Spin(%.0fms)" (max_backoff_us /. 1000.0)
    else Printf.sprintf "Spin(%.0fus)" max_backoff_us
  | Mcs_original -> "MCS"
  | Mcs_h1 -> "H1-MCS"
  | Mcs_h2 -> "H2-MCS"
  | Mcs_cas -> "H2-MCS(cas)"
  | Clh -> "CLH"
  | Ticket -> "Ticket"
  | Anderson -> "Anderson"
  | Spin_then_block { spin_us } -> Printf.sprintf "STB(%.0fus)" spin_us
  | Null -> "none"

(* A lock that does nothing: lets calibration probes measure a kernel path
   with its locking subtracted. *)
let null =
  {
    name = "none";
    acquire = (fun _ -> ());
    release = (fun _ -> ());
    try_acquire = (fun _ -> true);
    is_free = (fun () -> true);
    acquires = ref 0;
    wait_cycles = ref 0;
  }

let all_paper_algos =
  [ Mcs_original; Mcs_h1; Mcs_h2; Spin { max_backoff_us = 35.0 };
    Spin { max_backoff_us = 2000.0 } ]

(* Wrap an acquire with wall-clock accounting (virtual cycles spent from
   call to lock entry). *)
let instrumented ~name ~acquire ~release ~try_acquire ~is_free =
  let acquires = ref 0 and wait_cycles = ref 0 in
  let acquire ctx =
    let t0 = Machine.now (Ctx.machine ctx) in
    acquire ctx;
    incr acquires;
    wait_cycles := !wait_cycles + (Machine.now (Ctx.machine ctx) - t0)
  in
  { name; acquire; release; try_acquire; is_free; acquires; wait_cycles }

let of_spin lock =
  instrumented ~name:"spin"
    ~acquire:(fun ctx -> Spin_lock.acquire lock ctx)
    ~release:(fun ctx -> Spin_lock.release lock ctx)
    ~try_acquire:(fun ctx -> Spin_lock.try_acquire lock ctx)
    ~is_free:(fun () -> not (Spin_lock.is_held lock))

let of_mcs lock =
  instrumented ~name:(Mcs.name lock)
    ~acquire:(fun ctx -> Mcs.acquire lock ctx)
    ~release:(fun ctx -> Mcs.release lock ctx)
    ~try_acquire:(fun ctx -> Mcs.try_acquire_v2 lock ctx)
    ~is_free:(fun () -> Mcs.is_free lock)

let make machine ?(home = 0) ?vclass algo =
  let cfg = Machine.config machine in
  match algo with
  | Null -> null
  | Spin { max_backoff_us } ->
    let backoff = Backoff.of_us cfg ~max_us:max_backoff_us () in
    let lock = Spin_lock.create machine ~home ?vclass backoff in
    { (of_spin lock) with name = algo_name algo }
  | Mcs_original -> of_mcs (Mcs.create ~variant:Mcs.Original ~home ?vclass machine)
  | Mcs_h1 -> of_mcs (Mcs.create ~variant:Mcs.H1 ~home ?vclass machine)
  | Mcs_h2 -> of_mcs (Mcs.create ~variant:Mcs.H2 ~home ?vclass machine)
  | Mcs_cas ->
    if not cfg.Config.has_cas then
      invalid_arg "Lock.make: Mcs_cas needs a machine with compare&swap";
    let lock =
      Mcs.create ~variant:Mcs.H2 ~home ~use_cas_release:true ?vclass machine
    in
    { (of_mcs lock) with name = algo_name Mcs_cas }
  | Clh ->
    let lock = Clh.create ~home ?vclass machine in
    instrumented ~name:"CLH"
      ~acquire:(fun ctx -> Clh.acquire lock ctx)
      ~release:(fun ctx -> Clh.release lock ctx)
      ~try_acquire:(fun ctx ->
        (* CLH has no cheap TryLock; enqueue and wait. *)
        Clh.acquire lock ctx;
        true)
      ~is_free:(fun () -> Clh.is_free lock)
  | Ticket ->
    let lock = Ticket_lock.create ~home ?vclass machine in
    instrumented ~name:"Ticket"
      ~acquire:(fun ctx -> Ticket_lock.acquire lock ctx)
      ~release:(fun ctx -> Ticket_lock.release lock ctx)
      ~try_acquire:(fun ctx ->
        Ticket_lock.acquire lock ctx;
        true)
      ~is_free:(fun () -> Ticket_lock.is_free lock)
  | Anderson ->
    let lock = Anderson_lock.create ~home ?vclass machine in
    instrumented ~name:"Anderson"
      ~acquire:(fun ctx -> Anderson_lock.acquire lock ctx)
      ~release:(fun ctx -> Anderson_lock.release lock ctx)
      ~try_acquire:(fun ctx ->
        Anderson_lock.acquire lock ctx;
        true)
      ~is_free:(fun () -> Anderson_lock.is_free lock)
  | Spin_then_block { spin_us } ->
    let lock = Stb_lock.create ~home ~spin_us ?vclass machine in
    instrumented ~name:(algo_name algo)
      ~acquire:(fun ctx -> Stb_lock.acquire lock ctx)
      ~release:(fun ctx -> Stb_lock.release lock ctx)
      ~try_acquire:(fun ctx -> Stb_lock.try_acquire lock ctx)
      ~is_free:(fun () -> not (Stb_lock.is_held lock))

(* Acquire with the processor's soft mask set, so inter-processor interrupts
   that could deadlock with this lock are deferred until release (Section
   3.2's adopted solution). *)
let with_lock_masked t ctx f =
  Ctx.set_soft_mask ctx;
  t.acquire ctx;
  Fun.protect
    ~finally:(fun () ->
      t.release ctx;
      Ctx.clear_soft_mask ctx)
    f

let with_lock t ctx f =
  t.acquire ctx;
  Fun.protect ~finally:(fun () -> t.release ctx) f

(* Space cost of one lock instance, in words, for [n_procs] processors.
   MCS queue nodes are per-processor but *shared across all locks* on real
   systems; here we charge the per-lock view the paper uses when comparing
   strategies ("an additional two words per actively spinning processor"
   for distributed locks, one word for a spin lock, a P-entry array for
   Anderson). *)
let space_words ~n_procs = function
  | Spin _ -> 1
  | Ticket -> 2
  | Anderson -> 1 + n_procs
  | Clh -> 1 + n_procs + 1 (* tail + a node per processor + the dummy *)
  | Mcs_original | Mcs_h1 | Mcs_h2 | Mcs_cas -> 1 + (2 * n_procs)
  | Spin_then_block _ -> 1 (* plus the scheduler's wait list, not memory *)
  | Null -> 0
