(** The core lock-algorithm signature, as a first-class-module interface.

    Every base algorithm in [lib/locks] ([Spin_lock], [Mcs], [Clh],
    [Ticket_lock], [Anderson_lock]) exposes a [Core] module implementing
    {!S}; the NUMA-aware composites ({!Cohort}, and — natively — [Hmcs]
    and [Cna]) are built against {!OPS}/{!S} rather than any concrete
    lock, so any local lock can be paired with any global lock. *)

open Hector

(** Cluster topology a NUMA-aware lock is constructed against: which of
    [n_clusters] clusters each processor belongs to. [cluster_of] must be
    total over the machine's processors and return values in
    [0, n_clusters). *)
type topo = { n_clusters : int; cluster_of : int -> int }

(** The machine's own hardware stations as a topology — the default when a
    lock is built without an explicit [Clustering]. *)
val topo_of_machine : Machine.t -> topo

(** [cluster_topo] with explicit values; validates the bounds. *)
val topo : n_clusters:int -> cluster_of:(int -> int) -> topo

(** Operations on an already-created lock instance: the algorithm-agnostic
    surface the composites and the uniform {!Lock.t} record need. *)
module type OPS = sig
  type t

  val name : t -> string

  val acquire : t -> Ctx.t -> unit
  val release : t -> Ctx.t -> unit

  (** Non-blocking where the algorithm supports one; algorithms without a
      cheap TryLock (CLH, ticket, Anderson) acquire and return [true]. *)
  val try_acquire : t -> Ctx.t -> bool

  (** Timed acquisition (the HMCS-T face). [deadline] is an absolute
      simulated time ([Machine.now]); the call returns [true] holding the
      lock, or — on an abortable algorithm — [false] with no residual
      effect on the lock once its abandoned node has been reclaimed by a
      later hand-off. An already-expired deadline ([deadline <= now]) must
      fail without touching the lock. Non-abortable algorithms
      ([abortable = false]) ignore the deadline: they block, acquire, and
      return [true]. *)
  val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

  (** Capability probe: [true] iff {!try_acquire_for} can actually fail
      past the deadline rather than degenerate to a blocking acquire. *)
  val abortable : bool

  (** Dead-holder recovery. If the current holder has fail-stopped
      ([Machine.proc_alive] is the detector — fail-stop crashes are
      detectable), force the hand-off the corpse will never perform and
      return [true]; return [false] (with no effect on the lock) when the
      lock is free, the holder is alive, or another recovery is already in
      flight. The caller does {e not} hold the lock afterwards: recovery
      re-opens the normal hand-off path and the recoverer re-contends. *)
  val recover : t -> Ctx.t -> bool

  (** Capability probe: [true] iff {!recover} can actually repair a dead
      holder rather than being a constant [false]. *)
  val recoverable : bool

  (** Untimed, for assertions. *)
  val is_free : t -> bool

  (** Untimed hint: is some processor queued or spinning behind the current
      holder? Used by cohort-style releases to decide whether a cluster-local
      hand-off is possible; a conservative [false] only costs locality, never
      correctness. *)
  val waiters : t -> bool

  (** Completed acquisitions (blocking and successful non-blocking). *)
  val acquisitions : t -> int

  (** The lock-order class this instance reports to {!Verify}. *)
  val vclass : t -> Verify.lock_class

  (** The {!Verify} instance identity this lock reports under (drawn from
      {!Verify.fresh_id} at creation). *)
  val vid : t -> int
end

(** A full algorithm: instance operations plus construction. *)
module type S = sig
  include OPS

  (** Algorithm name, as shown in reports ("MCS", "CLH", ...). *)
  val algo : string

  val create : ?home:int -> ?vclass:string -> Machine.t -> t
end

(** A lock instance packed with its operations — the dynamic counterpart
    of {!S}, letting [Lock.make] compose algorithms chosen at runtime. *)
type packed = Packed : (module OPS with type t = 'a) * 'a -> packed

val pack : (module OPS with type t = 'a) -> 'a -> packed

val p_name : packed -> string
val p_acquire : packed -> Ctx.t -> unit
val p_release : packed -> Ctx.t -> unit
val p_try_acquire : packed -> Ctx.t -> bool
val p_try_acquire_for : packed -> Ctx.t -> deadline:int -> bool
val p_abortable : packed -> bool
val p_recover : packed -> Ctx.t -> bool
val p_recoverable : packed -> bool
val p_is_free : packed -> bool
val p_waiters : packed -> bool
val p_acquisitions : packed -> int

(** Report to the installed checker (if any) that the calling processor
    inherited this still-held lock — see {!Verify.transferred}. Fired by
    {!Cohort} when a pass recipient inherits the global constituent. *)
val p_transferred : packed -> Ctx.t -> unit
