(** Spin-then-block lock (Section 5.3, the TORNADO direction).

    Waiters spin briefly, then park on the lock's wait list — no events, no
    memory traffic — until a releaser hands the lock over directly and
    wakes them. The uncontended path is a test&set. *)

open Hector

type t

(** [create machine] with a [spin_us] spinning budget before blocking. *)
val create : ?home:int -> ?spin_us:float -> ?vclass:string -> Machine.t -> t

val flag : t -> Cell.t
val acquisitions : t -> int

(** Waiters that exhausted the spin budget and parked. *)
val blocks : t -> int

(** Releases that woke a parked waiter (direct hand-off; the flag never
    clears). *)
val handoffs : t -> int

val is_held : t -> bool

val acquire : t -> Ctx.t -> unit
val release : t -> Ctx.t -> unit

(** Single test&set attempt, never blocking; true if the lock was
    obtained. *)
val try_acquire : t -> Ctx.t -> bool
