(** Distributed reader–writer lock with per-cluster reader indicators
    (the "reader indicator" decomposition of the PAPERS.md distributed
    RMA-locks line, built over any exclusive lock in the family).

    Each cluster owns one indicator word, homed on its local PMM: value
    [2*readers + gate]. A reader CASes +2 into {e its own cluster's} word
    — the steady-state read path never crosses a cluster boundary, which
    is the whole point (HURRICANE gets the same read locality from
    per-cluster replication; this gets it with one word per cluster and
    no invalidation protocol). A writer first acquires an ordinary
    exclusive lock (any {!Lock_core.packed}: MCS, a cohort, CNA — so
    RW-cohort and RW-CNA come free from the combinator), then sweeps the
    indicators: set the gate bit (admission stops; the CAS admission
    checks the gate and increments in one atomic step), spin until the
    count drains, proceed. Release reopens the gates and releases the
    exclusive lock.

    Two sweep policies: {!Writer_blocking} closes {e all} gates before
    draining any — every cluster stops admitting at once, minimising
    writer latency; {!Reader_preference} closes and drains one cluster at
    a time, so clusters the sweep has not yet reached keep admitting
    readers. Writer progress is bounded under both (each gate, once
    closed, stays closed until the writer is done).

    The whole PR 6/7 surface carries over: timed reader and writer faces
    ({!try_acquire_read_for}/{!try_acquire_for}), and crash recovery
    ({!recover}) that sweeps a fail-stopped reader's stuck +2 out of its
    cluster's indicator and runs a dead writer's release on its behalf.
    Readers report to {!Verify}/{!Obs} under class ["<vclass>.read"],
    writers under ["<vclass>"], both on one instance id — reader and
    writer rows separate in profiles while hand-off locality is
    classified across the read/write boundary.

    Space: [space(writer) + C] indicator words ([1] if [centralised]) —
    see the accounting note in [lock.mli]. Requires compare&swap (the
    machine has no fetch&add; admission is a CAS retry loop). *)

open Hector

type t

type policy =
  | Reader_preference  (** close-and-drain one cluster at a time *)
  | Writer_blocking  (** close every gate before draining any *)

(** Short tag used in report names: ["rp"] / ["wb"]. *)
val policy_name : policy -> string

(** [create ~name ~topo ~writer machine] builds the lock; [writer] builds
    the exclusive constituent (it receives [vclass ^ ".writer"]).
    [centralised] collapses the indicators to a single word homed at
    [home] — the baseline the per-cluster layout is measured against.
    [writer_abortable]/[writer_recoverable] override the packed
    constituent's static capability flags (a runtime-composed cohort's
    packed view reports the module defaults, not the instance's).
    Raises [Invalid_argument] without compare&swap or on a cluster with
    no processors. *)
val create :
  ?home:int ->
  ?vclass:string ->
  ?policy:policy ->
  ?centralised:bool ->
  name:string ->
  topo:Lock_core.topo ->
  writer:(vclass:string -> Lock_core.packed) ->
  ?writer_abortable:bool ->
  ?writer_recoverable:bool ->
  Machine.t ->
  t

val name : t -> string
val policy : t -> policy
val centralised : t -> bool

(** {2 Reader side} *)

val acquire_read : t -> Ctx.t -> unit
val release_read : t -> Ctx.t -> unit

(** One admission attempt; may fail spuriously under CAS interference. *)
val try_acquire_read : t -> Ctx.t -> bool

(** Timed admission: retry until the (absolute) deadline passes. Always
    abortable — an admission loop holds nothing it cannot walk away
    from. *)
val try_acquire_read_for : t -> Ctx.t -> deadline:int -> bool

(** Crash-tolerant reader acquire: timed slices with {!recover} between
    them, same slice/jitter discipline as [Lock.acquire_recoverable]. *)
val acquire_read_recoverable : ?check_period:int -> t -> Ctx.t -> unit

(** [acquire_read]/[release_read] around [f], exception-safe. *)
val with_read : t -> Ctx.t -> (unit -> 'a) -> 'a

(** {2 Writer side} *)

val acquire : t -> Ctx.t -> unit

(** Thread-oblivious (a recoverer may run it for a dead writer): works
    off the lock's own holder fields. *)
val release : t -> Ctx.t -> unit

(** Non-blocking: exclusive-lock TryLock, then a one-sample drain check;
    backs out (gates reopened, exclusive lock released) if any reader is
    inside. *)
val try_acquire : t -> Ctx.t -> bool

(** Timed: timed exclusive acquire, then a deadline-bounded sweep; a
    sweep expiry backs out. With a non-abortable [writer] constituent
    this blocks (the {!Lock_core.OPS} convention). *)
val try_acquire_for : t -> Ctx.t -> deadline:int -> bool

(** [acquire]/[release] around [f], exception-safe. *)
val with_write : t -> Ctx.t -> (unit -> 'a) -> 'a

(** {2 Crash recovery}

    [recover t ctx] sweeps fail-stopped processors' wreckage: each dead
    reader's +2 is CASed back out of its cluster's indicator (one timed
    op sequence charged to the recoverer, reported as
    [Verify.released_dead]), a dead writer's release runs on its behalf
    (gates reopened; the packed constituent is repaired through its own
    [recover], never a foreign release), and with no registered writer
    the packed queue itself is checked for corpses. Returns [true] if
    anything was repaired. Serialised: a second concurrent recovery
    returns [false] immediately. *)
val recover : t -> Ctx.t -> bool

(** The writer face can actually abandon at a deadline. *)
val abortable : t -> bool

(** A dead {e writer} can be repaired (dead readers always can). *)
val recoverable : t -> bool

(** {2 Counters and probes} (host-side, untimed) *)

val acquisitions : t -> int
val read_acquisitions : t -> int

(** Writer-side deadline expiries (exclusive stage or sweep). *)
val timeouts : t -> int

val read_timeouts : t -> int

(** Read-path timed ops that touched an indicator homed in another
    cluster: identically 0 for the distributed layout, the centralised
    baseline's defining cost at C >= 2. *)
val read_remote : t -> int

(** Dead-reader indicator sweeps performed by {!recover}. *)
val reader_sweeps : t -> int

val readers_now : t -> int

(** High-water mark of concurrent readers — the reader-parallelism
    evidence no exclusive [Lock.algo] can produce. *)
val readers_peak : t -> int

(** Current total reader count summed over the indicators. *)
val readers : t -> int

val is_free : t -> bool
val waiters : t -> bool
val vclass : t -> Verify.lock_class
val vclass_read : t -> Verify.lock_class
