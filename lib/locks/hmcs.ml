(* HMCS (Chabbi, Fagan & Mellor-Crummey): a hierarchical MCS lock built as
   a two-level tree of MCS queues — one local queue per cluster plus one
   root queue whose nodes represent whole clusters.

   Where {!Cohort} composes two opaque locks and needs a side flag
   ([owned]) plus a waiter hint, HMCS fuses the levels: the word a local
   waiter spins on *is* the hand-off channel, and its value carries the
   protocol state. A waiter is released with
   - a value in [1, threshold]: the lock arrives with the root already
     held by this cluster; the value is the running count of consecutive
     local hand-offs (the paper's curcount), so the fairness bound needs
     no extra word or host-side state;
   - [acquire_parent] (= threshold + 1): the previous local head exhausted
     the budget or the root must change hands; the waiter becomes the new
     local head and must acquire the root queue itself.

   The root level is a plain MCS queue over per-cluster nodes: only a
   cluster's current local head ever touches its cluster's root node, so
   one node per cluster suffices. Both levels use the fetch&store-only
   repair protocol of {!Mcs} (HECTOR has no compare&swap): a release that
   dequeued waiters by accident re-installs them, grafting them behind any
   usurper that slipped in.

   Space: 1 (root tail) + 3 per cluster (root node + local tail)
   + 2 per processor (local node). Timed acquisition adds a second,
   marked node per processor and per cluster (the MCS interrupt-node
   convention — excluded from the space accounting like MCS's own
   interrupt nodes), plus one busy word per root cnode: because a
   cluster's root release may run in a different processor's context
   than its next local head (collect_local's demotion empties the local
   tail before releasing the root), a cnode could otherwise be
   re-enqueued while a release through it is still unlinking it. The
   busy word covers the cnode's whole root-queue residency — enqueue
   to end of release/collect — and gates re-entry at both faces.

   Timed acquisition (HMCS-T, after "Correctness of Hierarchical MCS Locks
   with Timeout"): a timed waiter enqueues a separate *timed* node whose
   [mark] cell runs the same abandonment handshake as {!Mcs}'s interrupt
   nodes — a releaser commits a hand-off to a live timed node by swapping
   the mark to claimed before writing the protocol value; a waiter whose
   deadline expires swaps the mark to abandoned; whoever swaps first wins
   the node. The same protocol runs at {e both} tree levels: the local
   queues (qnode marks) and the root queue (cnode marks, one timed cnode
   per cluster). Every signal therefore goes through [signal_local] /
   [signal_root], which collect abandoned nodes in the releaser's context:
   unlink, pass the in-flight protocol value to the true successor (repair
   and graft exactly as a release would), and — crucially — if a
   root-carrying value (a pass count in [1, threshold]) drains into an
   empty local queue or grafts behind a usurping fresh head, the collector
   must release the root on the cluster's behalf, or root ownership would
   be stranded. A timed waiter that loses the claim race takes the lock
   and returns [true] even past its deadline (the hand-off committed;
   nobody else will ever receive it) — except a claim-race loss that
   delivers [acquire_parent], which confers only local headship, not the
   lock: the waiter passes headship onward and fails. *)

open Hector

let default_threshold = 16

(* Mark values on a timed node, either level (same handshake as Mcs). *)
let mark_abandoned = 1
let mark_claimed = 2

type qnode = {
  next : Cell.t; (* successor qnode id; 0 = nil *)
  locked : Cell.t; (* 0 = wait; 1..threshold = go, root held, pass count;
                      threshold + 1 = go, acquire the root yourself *)
  mark : Cell.t; (* abandonment handshake; always 0 on regular nodes *)
  owner : int;
}

type cnode = {
  cnext : Cell.t; (* successor cnode id; 0 = nil *)
  clocked : Cell.t; (* 1 = wait, 0 = go *)
  cmark : Cell.t; (* abandonment handshake; always 0 on regular cnodes *)
  cbusy : Cell.t; (* 1 from enqueue on the root queue until the cnode is
                     fully unlinked again (a release or collect through it
                     has completed). Guards against re-enqueueing a cnode
                     that a concurrent [release_root]/[collect_root] — run
                     by a *different* processor of the same cluster — is
                     still unlinking; see [acquire_root_via]. *)
}

type t = {
  threshold : int;
  n_clusters : int;
  cluster_of : int -> int;
  root_tail : Cell.t; (* cnode id of the root-queue tail; 0 = free *)
  cnodes : cnode array; (* [0, C): per-cluster; [C, 2C): timed *)
  local_tails : Cell.t array; (* qnode id of each cluster's tail; 0 = free *)
  nodes : qnode array; (* [0, n): per-processor; [n, 2n): timed *)
  machine : Machine.t;
  mutable holder : int; (* processor in the critical section; -1 = none *)
  active : int array; (* proc -> qnode id of its current hold *)
  root_via : int array; (* cluster -> cnode id holding the root for it *)
  mutable acquisitions : int;
  mutable local_passes : int; (* hand-offs that kept the root in-cluster *)
  mutable global_releases : int; (* releases that gave up the root *)
  mutable repairs : int; (* fetch&store removed waiters; queue re-installed *)
  mutable grafts : int; (* repairs that found a usurper *)
  mutable timeouts : int; (* timed-acquisition expiries (incl. fail-fast) *)
  mutable gc_count : int; (* abandoned nodes collected, both levels *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  vcls : Verify.lock_class;
  vid : int;
}

let nil = 0
let w_wait = 0

let acquire_parent t = t.threshold + 1

let create ?(home = 0) ?(threshold = default_threshold) ?(vclass = "hmcs")
    ~(topo : Lock_core.topo) machine =
  if threshold < 1 then invalid_arg "Hmcs.create: threshold must be >= 1";
  let n = Machine.n_procs machine in
  let n_clusters = topo.Lock_core.n_clusters in
  let cluster_of = topo.Lock_core.cluster_of in
  (* Home each cluster's root node and tail at its lowest processor, each
     processor's queue node in its own memory (local spinning). *)
  let cluster_home = Array.make n_clusters home in
  for p = n - 1 downto 0 do
    let c = cluster_of p in
    if c < 0 || c >= n_clusters then
      invalid_arg "Hmcs.create: cluster_of out of range";
    cluster_home.(c) <- p
  done;
  let mk_cnode c timed =
    let lbl s =
      Printf.sprintf "hmcs.cn%d%s.%s" c (if timed then "t" else "") s
    in
    {
      cnext = Machine.alloc machine ~label:(lbl "next") ~home:cluster_home.(c) nil;
      clocked =
        Machine.alloc machine ~label:(lbl "locked") ~home:cluster_home.(c) 1;
      cmark = Machine.alloc machine ~label:(lbl "mark") ~home:cluster_home.(c) 0;
      cbusy = Machine.alloc machine ~label:(lbl "busy") ~home:cluster_home.(c) 0;
    }
  in
  let mk_qnode p timed =
    let lbl s =
      Printf.sprintf "hmcs.qn%d%s.%s" p (if timed then "t" else "") s
    in
    {
      next = Machine.alloc machine ~label:(lbl "next") ~home:p nil;
      locked = Machine.alloc machine ~label:(lbl "locked") ~home:p w_wait;
      mark = Machine.alloc machine ~label:(lbl "mark") ~home:p 0;
      owner = p;
    }
  in
  {
    threshold;
    n_clusters;
    cluster_of;
    root_tail = Machine.alloc machine ~label:"hmcs.root" ~home nil;
    cnodes =
      Array.init (2 * n_clusters) (fun i ->
          if i < n_clusters then mk_cnode i false
          else mk_cnode (i - n_clusters) true);
    local_tails =
      Array.init n_clusters (fun c ->
          Machine.alloc machine
            ~label:(Printf.sprintf "hmcs.tail%d" c)
            ~home:cluster_home.(c) nil);
    nodes =
      Array.init (2 * n) (fun i ->
          if i < n then mk_qnode i false else mk_qnode (i - n) true);
    machine;
    holder = -1;
    active = Array.make n 0;
    root_via = Array.make n_clusters 0;
    acquisitions = 0;
    local_passes = 0;
    global_releases = 0;
    repairs = 0;
    grafts = 0;
    timeouts = 0;
    gc_count = 0;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name _ = "HMCS"
let vclass t = t.vcls
let acquisitions t = t.acquisitions
let local_passes t = t.local_passes
let global_releases t = t.global_releases
let repairs t = t.repairs
let grafts t = t.grafts
let timeouts t = t.timeouts
let gc_count t = t.gc_count

(* Qnode ids are 1-based: [1, n] regular (processor id - 1), [n+1, 2n]
   timed. Cnode ids likewise: [1, C] regular, [C+1, 2C] timed. *)
let qid p = p + 1
let qnode t id = t.nodes.(id - 1)
let timed_qid t p = Machine.n_procs t.machine + p + 1
let is_timed_qid t id = id > Machine.n_procs t.machine
let cid c = c + 1
let cnode t id = t.cnodes.(id - 1)
let timed_cid t c = t.n_clusters + c + 1
let is_timed_cid t id = id > t.n_clusters

let is_free t =
  t.holder = -1
  && Cell.peek t.root_tail = nil
  && Array.for_all (fun tl -> Cell.peek tl = nil) t.local_tails

let waiters t =
  t.holder >= 0
  &&
  let hc = t.cluster_of t.holder in
  let expected c = if c = hc then t.active.(t.holder) else nil in
  let found = ref false in
  Array.iteri
    (fun c tl -> if Cell.peek tl <> expected c then found := true)
    t.local_tails;
  !found

let got_lock t ctx =
  assert (t.holder = -1);
  t.holder <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* -- root level ----------------------------------------------------------- *)

(* Wake root-queue node [id], running the abandonment handshake when it is
   a timed cnode and collecting it if its owner gave up. *)
let rec signal_root t ctx id =
  let cn = cnode t id in
  if not (is_timed_cid t id) then Ctx.write ctx cn.clocked 0
  else if Ctx.read ctx cn.cmark <> 0 then collect_root t ctx id
  else begin
    let prev = Ctx.fetch_and_store ctx cn.cmark mark_claimed in
    Ctx.instr ctx ~br:1 ();
    if prev <> 0 then collect_root t ctx id else Ctx.write ctx cn.clocked 0
  end

(* Unlink an abandoned timed cnode from the root queue and pass the root
   grant to its true successor (repairing/grafting as a release would). *)
and collect_root t ctx id =
  t.gc_count <- t.gc_count + 1;
  Vhook.abandon_repaired ctx ~cls:t.vcls;
  let cn = cnode t id in
  Ctx.instr ctx ~br:1 ();
  let next = Ctx.read ctx cn.cnext in
  Ctx.instr ctx ~br:1 ();
  if next <> nil then begin
    Ctx.write ctx cn.cnext nil;
    Ctx.write ctx cn.cmark 0;
    Ctx.write ctx cn.cbusy 0;
    signal_root t ctx next
  end
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.root_tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail = id then begin
      (* Root queue drained: the root is free. *)
      Ctx.write ctx cn.cmark 0;
      Ctx.write ctx cn.cbusy 0
    end
    else begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.root_tail old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx cn.cnext in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      Ctx.write ctx cn.cnext nil;
      Ctx.write ctx cn.cmark 0;
      Ctx.write ctx cn.cbusy 0;
      if usurper <> nil then begin
        (* The usurper saw an empty root queue and holds the root; victims
           go behind it. *)
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (cnode t usurper).cnext victim
      end
      else signal_root t ctx victim
    end
  end

(* Plain MCS acquire on the root queue, entered by cluster [c]'s current
   local head through cnode [via].

   The [cbusy] wait closes a reuse race opened by the timed machinery:
   [collect_local] empties the local tail *before* its demotion
   [release_root], so a fresh local head can reach the root while the
   previous release — through this very cnode, in another processor's
   context — is still unlinking it. Re-enqueueing the cnode then clobbers
   its [cnext] and double-owns the root (both releasers wedge in the
   repair's wait-for-successor). The wait is bounded: [cbusy] with an
   empty local queue means an in-flight release/collect, which completes
   in a bounded number of steps without needing us. Purely untimed
   traffic never opens the window, so the extra read stays uncontended. *)
let acquire_root_via t ctx c via =
  let cn = cnode t via in
  let rec wait_busy () =
    let b = Ctx.read ctx cn.cbusy in
    Ctx.instr ctx ~br:1 ();
    if b <> 0 then wait_busy ()
  in
  wait_busy ();
  Ctx.write ctx cn.cbusy 1;
  Ctx.write ctx cn.cnext nil;
  Ctx.write ctx cn.clocked 1;
  let pred = Ctx.fetch_and_store ctx t.root_tail via in
  Ctx.instr ctx ~reg:1 ~br:1 ();
  if pred <> nil then begin
    Ctx.write ctx (cnode t pred).cnext via;
    let rec spin () =
      let v = Ctx.read ctx cn.clocked in
      Ctx.instr ctx ~br:1 ();
      if v <> 0 then spin ()
    in
    spin ()
  end;
  t.root_via.(c) <- via

let acquire_root t ctx c = acquire_root_via t ctx c (cid c)

(* MCS release on the root queue through the cnode the root was acquired
   with, with the fetch&store repair. Drops the cnode's [cbusy] last, on
   every path: until then no one may re-enqueue this cnode (the releaser
   may be a different processor than the cluster's next local head). *)
let release_root t ctx c =
  let via = t.root_via.(c) in
  t.root_via.(c) <- 0;
  let cn = cnode t via in
  let succ = Ctx.read ctx cn.cnext in
  Ctx.instr ctx ~br:1 ();
  if succ <> nil then signal_root t ctx succ
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.root_tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail <> via then begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.root_tail old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx cn.cnext in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (cnode t usurper).cnext victim
      end
      else signal_root t ctx victim
    end
  end;
  Ctx.write ctx cn.cbusy 0

(* -- local level ---------------------------------------------------------- *)

(* Deliver protocol value [v] (a pass count, or [acquire_parent]) to local
   node [id] of cluster [c], running the handshake for timed nodes and
   collecting abandoned ones. *)
let rec signal_local t ctx c id v =
  let nd = qnode t id in
  if not (is_timed_qid t id) then Ctx.write ctx nd.locked v
  else if Ctx.read ctx nd.mark <> 0 then collect_local t ctx c id v
  else begin
    let prev = Ctx.fetch_and_store ctx nd.mark mark_claimed in
    Ctx.instr ctx ~br:1 ();
    if prev <> 0 then collect_local t ctx c id v
    else Ctx.write ctx nd.locked v
  end

(* Unlink an abandoned timed qnode, passing [v] to its true successor. The
   delicate case: [v] in [1, threshold] means the in-flight grant carries
   root ownership — if it drains into an empty queue, or grafts behind a
   usurper (a fresh head off acquiring the root itself), the collector must
   release the root here or the cluster strands it forever. *)
and collect_local t ctx c id v =
  t.gc_count <- t.gc_count + 1;
  Vhook.abandon_repaired ctx ~cls:t.vcls;
  let nd = qnode t id in
  Ctx.instr ctx ~br:1 ();
  let next = Ctx.read ctx nd.next in
  Ctx.instr ctx ~br:1 ();
  if next <> nil then begin
    Ctx.write ctx nd.next nil;
    Ctx.write ctx nd.mark 0;
    signal_local t ctx c next v
  end
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.local_tails.(c) nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail = id then begin
      (* Local queue drained behind the abandoned node. *)
      Ctx.write ctx nd.mark 0;
      if v <> acquire_parent t then begin
        (* The grant carried the root: release it (demotion). *)
        t.global_releases <- t.global_releases + 1;
        release_root t ctx c
      end
    end
    else begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.local_tails.(c) old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let w = Ctx.read ctx nd.next in
        Ctx.instr ctx ~br:1 ();
        if w = nil then wait_next () else w
      in
      let victim = wait_next () in
      Ctx.write ctx nd.next nil;
      Ctx.write ctx nd.mark 0;
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (qnode t usurper).next victim;
        if v <> acquire_parent t then begin
          (* Victims grafted behind a fresh head that is acquiring the
             root itself; our root-carrying grant must be surrendered. *)
          t.global_releases <- t.global_releases + 1;
          release_root t ctx c
        end
      end
      else signal_local t ctx c victim v
    end
  end

(* -- untimed faces -------------------------------------------------------- *)

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let p = Ctx.proc ctx in
  let c = t.cluster_of p in
  let me = t.nodes.(p) in
  Ctx.write ctx me.next nil;
  Ctx.write ctx me.locked w_wait;
  let pred = Ctx.fetch_and_store ctx t.local_tails.(c) (qid p) in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  if pred = nil then begin
    (* Local head of a fresh cohort: pass count starts at 1, then compete
       for the root on the cluster's behalf. *)
    Ctx.write ctx me.locked 1;
    acquire_root t ctx c
  end
  else begin
    Ctx.write ctx (qnode t pred).next (qid p);
    Ctx.instr ctx ~reg:1 ~br:1 ();
    let rec spin () =
      let v = Ctx.read ctx me.locked in
      Ctx.instr ctx ~br:1 ();
      if v = w_wait then spin () else v
    in
    let v = spin () in
    if v = acquire_parent t then begin
      (* The previous head gave up the root (budget exhausted or cohort
         drained elsewhere): we are the new local head. *)
      Ctx.write ctx me.locked 1;
      acquire_root t ctx c
    end
    (* else v in [1, threshold]: the root came with the hand-off. *)
  end;
  t.active.(p) <- qid p;
  got_lock t ctx

(* Thread-oblivious: the releasing processor — and hence the cluster whose
   local queue and root tenure are unwound — is derived from the holder
   bookkeeping, not from [ctx], so a recoverer can run the release on a
   dead holder's behalf across both tree levels. *)
let release t ctx =
  let p = t.holder in
  assert (p >= 0);
  let c = t.cluster_of p in
  let me = qnode t t.active.(p) in
  let my_id = t.active.(p) in
  t.holder <- -1;
  let curcount = Ctx.read ctx me.locked in
  let succ = Ctx.read ctx me.next in
  Ctx.instr ctx ~reg:1 ~br:2 ();
  (* Hook after the protocol reads but before anything that can transfer
     the lock (the local pass write, or the root release waking another
     cluster), so an observer orders our release before the successor's
     acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if succ <> nil && curcount < t.threshold then begin
    (* Pass within the cluster: the root stays put, the successor inherits
       the incremented pass count. *)
    t.local_passes <- t.local_passes + 1;
    signal_local t ctx c succ (curcount + 1)
  end
  else begin
    (* Give up the root first, then hand local headship over (the paper's
       order: the next head re-acquires the root, possibly behind other
       clusters that were waiting). *)
    release_root t ctx c;
    t.global_releases <- t.global_releases + 1;
    if succ <> nil then signal_local t ctx c succ (acquire_parent t)
    else begin
      let old_tail = Ctx.fetch_and_store ctx t.local_tails.(c) nil in
      Ctx.instr ctx ~reg:1 ~br:1 ();
      if old_tail <> my_id then begin
        (* The fetch&store removed waiters: re-install them, grafting
           behind any usurper (who, having seen an empty queue, made itself
           local head and is acquiring the root). *)
        t.repairs <- t.repairs + 1;
        let usurper = Ctx.fetch_and_store ctx t.local_tails.(c) old_tail in
        Ctx.instr ctx ~br:1 ();
        let rec wait_next () =
          let v = Ctx.read ctx me.next in
          Ctx.instr ctx ~br:1 ();
          if v = nil then wait_next () else v
        in
        let victim = wait_next () in
        if usurper <> nil then begin
          t.grafts <- t.grafts + 1;
          Ctx.write ctx (qnode t usurper).next victim
        end
        else signal_local t ctx c victim (acquire_parent t)
      end
    end
  end

(* -- timed face ----------------------------------------------------------- *)

(* Hand local headship onward without taking the lock: the path of a timed
   head that cannot (or will not) acquire the root. Mirrors the release
   else-branch, minus the root release — we never held it. *)
let pass_headship t ctx c me my_id =
  let succ = Ctx.read ctx me.next in
  Ctx.instr ctx ~br:1 ();
  if succ <> nil then begin
    Ctx.write ctx me.next nil;
    signal_local t ctx c succ (acquire_parent t)
  end
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.local_tails.(c) nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail <> my_id then begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.local_tails.(c) old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx me.next in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      Ctx.write ctx me.next nil;
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (qnode t usurper).next victim
      end
      else signal_local t ctx c victim (acquire_parent t)
    end
  end

(* Timed acquisition. Returns [false] — holding nothing, with every queue
   eventually repaired — once [timeout] expires at either tree level;
   returns [true] holding the lock, possibly past the deadline, when a
   hand-off committed first (claim-race loss at the lock-granting level).

   Fail-fast cases (no side effect on the lock): [timeout <= 0], or this
   processor's timed qnode still abandoned in its local queue. A cluster
   whose timed cnode is still abandoned in the root queue also fails
   fast at the promotion point, after passing local headship onward. *)
let acquire_with_timeout t ctx ~timeout =
  if timeout <= 0 then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    let p = Ctx.proc ctx in
    let c = t.cluster_of p in
    let my_id = timed_qid t p in
    let me = qnode t my_id in
    let still_queued = Ctx.read ctx me.mark in
    Ctx.instr ctx ~br:1 ();
    if still_queued <> 0 then begin
      t.timeouts <- t.timeouts + 1;
      false
    end
    else begin
      Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
      let deadline = Machine.now t.machine + timeout in
      let abandon_fail () =
        t.timeouts <- t.timeouts + 1;
        Vhook.wait_abandoned ctx;
        false
      in
      (* Timed root acquisition as local head (our locked = pass count 1).
         Uses the cluster's timed cnode so abandonment never poisons the
         untimed root path. *)
      let root_attempt () =
        let via = timed_cid t c in
        let cn = cnode t via in
        let marked = Ctx.read ctx cn.cmark in
        Ctx.instr ctx ~br:1 ();
        (* [cbusy] with a clear mark: a previous (successful) root tenure
           through this cnode is still being released or collected in
           another processor's context — bounded, so wait it out, with the
           deadline as backstop. Re-enqueueing before it clears would
           clobber the in-flight unlink (see [acquire_root_via]). *)
        let rec busy_wait () =
          let b = Ctx.read ctx cn.cbusy in
          Ctx.instr ctx ~br:1 ();
          if b = 0 then true
          else if Machine.now t.machine >= deadline then false
          else busy_wait ()
        in
        if marked <> 0 || not (busy_wait ()) then begin
          (* Our cluster's timed cnode is still abandoned in the root
             queue (or stuck mid-release past our deadline): we cannot
             wait abortably at the root. Decline. *)
          pass_headship t ctx c me my_id;
          abandon_fail ()
        end
        else begin
          Ctx.write ctx cn.cbusy 1;
          Ctx.write ctx cn.cnext nil;
          Ctx.write ctx cn.clocked 1;
          let pred = Ctx.fetch_and_store ctx t.root_tail via in
          Ctx.instr ctx ~reg:1 ~br:1 ();
          if pred = nil then begin
            t.root_via.(c) <- via;
            t.active.(p) <- my_id;
            got_lock t ctx;
            true
          end
          else begin
            Ctx.write ctx (cnode t pred).cnext via;
            let rec spin () =
              let v = Ctx.read ctx cn.clocked in
              Ctx.instr ctx ~br:1 ();
              if v = 0 then true
              else if Machine.now t.machine >= deadline then false
              else spin ()
            in
            let take_root () =
              Ctx.write ctx cn.cmark 0;
              t.root_via.(c) <- via;
              t.active.(p) <- my_id;
              got_lock t ctx;
              true
            in
            if spin () then take_root ()
            else begin
              let prev = Ctx.fetch_and_store ctx cn.cmark mark_abandoned in
              Ctx.instr ctx ~br:1 ();
              if prev = mark_claimed then begin
                (* The root hand-off already committed: it is ours. *)
                let rec wait_grant () =
                  let v = Ctx.read ctx cn.clocked in
                  Ctx.instr ctx ~br:1 ();
                  if v <> 0 then wait_grant ()
                in
                wait_grant ();
                take_root ()
              end
              else begin
                (* Cnode abandoned in the root queue (collected by a later
                   root release); surrender local headship and fail. *)
                pass_headship t ctx c me my_id;
                abandon_fail ()
              end
            end
          end
        end
      in
      Ctx.write ctx me.next nil;
      Ctx.write ctx me.locked w_wait;
      let pred = Ctx.fetch_and_store ctx t.local_tails.(c) my_id in
      Ctx.instr ctx ~reg:2 ~br:2 ();
      if pred = nil then begin
        Ctx.write ctx me.locked 1;
        root_attempt ()
      end
      else begin
        Ctx.write ctx (qnode t pred).next my_id;
        Ctx.instr ctx ~reg:1 ~br:1 ();
        let rec spin () =
          let v = Ctx.read ctx me.locked in
          Ctx.instr ctx ~br:1 ();
          if v <> w_wait then Some v
          else if Machine.now t.machine >= deadline then None
          else spin ()
        in
        let with_value v =
          (* The passer claimed our mark before writing the value. *)
          Ctx.write ctx me.mark 0;
          if v = acquire_parent t then begin
            Ctx.write ctx me.locked 1;
            root_attempt ()
          end
          else begin
            (* v in [1, threshold]: the root came with the hand-off. *)
            t.active.(p) <- my_id;
            got_lock t ctx;
            true
          end
        in
        match spin () with
        | Some v -> with_value v
        | None ->
          let prev = Ctx.fetch_and_store ctx me.mark mark_abandoned in
          Ctx.instr ctx ~br:1 ();
          if prev = mark_claimed then begin
            (* A hand-off committed: collect the value it delivers. *)
            let rec wait_value () =
              let v = Ctx.read ctx me.locked in
              Ctx.instr ctx ~br:1 ();
              if v = w_wait then wait_value () else v
            in
            let v = wait_value () in
            if v = acquire_parent t then begin
              (* Headship without the lock, past our deadline: we must
                 not park the cluster on an expired waiter — pass it on
                 and fail. *)
              Ctx.write ctx me.mark 0;
              pass_headship t ctx c me my_id;
              abandon_fail ()
            end
            else with_value v
          end
          else
            (* Abandonment stands: the node remains queued, marked, until
               a later signal collects it. *)
            abandon_fail ()
      end
    end
  end

let try_acquire_for t ctx ~deadline =
  acquire_with_timeout t ctx ~timeout:(deadline - Machine.now t.machine)

(* Dead-holder recovery: the thread-oblivious release unwinds both tree
   levels on the corpse's behalf — a local pass if the budget and queue
   allow, otherwise the root release plus local-headship hand-over, with
   the usual repair/graft/GC machinery. *)
let recover t ctx =
  let dead = t.holder in
  if t.recovering || dead < 0 || Machine.proc_alive t.machine dead then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

(* Core-interface view. [try_acquire] enqueues and waits (the timed face
   is the true abortable entry point). [create] uses the machine's
   hardware stations as the cluster topology. *)
module Core = struct
  type nonrec t = t

  let algo = "HMCS"
  let name = name

  let create ?(home = 0) ?(vclass = "hmcs") machine =
    create ~home ~vclass ~topo:(Lock_core.topo_of_machine machine) machine

  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free
  let waiters = waiters
  let acquisitions = acquisitions
  let vclass = vclass
  let vid t = t.vid
end
