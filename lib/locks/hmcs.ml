(* HMCS (Chabbi, Fagan & Mellor-Crummey): a hierarchical MCS lock built as
   a two-level tree of MCS queues — one local queue per cluster plus one
   root queue whose nodes represent whole clusters.

   Where {!Cohort} composes two opaque locks and needs a side flag
   ([owned]) plus a waiter hint, HMCS fuses the levels: the word a local
   waiter spins on *is* the hand-off channel, and its value carries the
   protocol state. A waiter is released with
   - a value in [1, threshold]: the lock arrives with the root already
     held by this cluster; the value is the running count of consecutive
     local hand-offs (the paper's curcount), so the fairness bound needs
     no extra word or host-side state;
   - [acquire_parent] (= threshold + 1): the previous local head exhausted
     the budget or the root must change hands; the waiter becomes the new
     local head and must acquire the root queue itself.

   The root level is a plain MCS queue over per-cluster nodes: only a
   cluster's current local head ever touches its cluster's root node, so
   one node per cluster suffices. Both levels use the fetch&store-only
   repair protocol of {!Mcs} (HECTOR has no compare&swap): a release that
   dequeued waiters by accident re-installs them, grafting them behind any
   usurper that slipped in.

   Space: 1 (root tail) + 3 per cluster (root node + local tail)
   + 2 per processor (local node). *)

open Hector

let default_threshold = 16

type qnode = {
  next : Cell.t; (* successor qnode id; 0 = nil *)
  locked : Cell.t; (* 0 = wait; 1..threshold = go, root held, pass count;
                      threshold + 1 = go, acquire the root yourself *)
  owner : int;
}

type cnode = {
  cnext : Cell.t; (* successor cnode id; 0 = nil *)
  clocked : Cell.t; (* 1 = wait, 0 = go *)
}

type t = {
  threshold : int;
  n_clusters : int;
  cluster_of : int -> int;
  root_tail : Cell.t; (* cnode id of the root-queue tail; 0 = free *)
  cnodes : cnode array; (* one per cluster *)
  local_tails : Cell.t array; (* qnode id of each cluster's tail; 0 = free *)
  nodes : qnode array; (* one per processor *)
  machine : Machine.t;
  mutable holder : int; (* processor in the critical section; -1 = none *)
  mutable acquisitions : int;
  mutable local_passes : int; (* hand-offs that kept the root in-cluster *)
  mutable global_releases : int; (* releases that gave up the root *)
  mutable repairs : int; (* fetch&store removed waiters; queue re-installed *)
  mutable grafts : int; (* repairs that found a usurper *)
  vcls : Verify.lock_class;
  vid : int;
}

let nil = 0
let w_wait = 0

let acquire_parent t = t.threshold + 1

let create ?(home = 0) ?(threshold = default_threshold) ?(vclass = "hmcs")
    ~(topo : Lock_core.topo) machine =
  if threshold < 1 then invalid_arg "Hmcs.create: threshold must be >= 1";
  let n = Machine.n_procs machine in
  let n_clusters = topo.Lock_core.n_clusters in
  let cluster_of = topo.Lock_core.cluster_of in
  (* Home each cluster's root node and tail at its lowest processor, each
     processor's queue node in its own memory (local spinning). *)
  let cluster_home = Array.make n_clusters home in
  for p = n - 1 downto 0 do
    let c = cluster_of p in
    if c < 0 || c >= n_clusters then
      invalid_arg "Hmcs.create: cluster_of out of range";
    cluster_home.(c) <- p
  done;
  {
    threshold;
    n_clusters;
    cluster_of;
    root_tail = Machine.alloc machine ~label:"hmcs.root" ~home nil;
    cnodes =
      Array.init n_clusters (fun c ->
          {
            cnext =
              Machine.alloc machine
                ~label:(Printf.sprintf "hmcs.cn%d.next" c)
                ~home:cluster_home.(c) nil;
            clocked =
              Machine.alloc machine
                ~label:(Printf.sprintf "hmcs.cn%d.locked" c)
                ~home:cluster_home.(c) 1;
          })
      ;
    local_tails =
      Array.init n_clusters (fun c ->
          Machine.alloc machine
            ~label:(Printf.sprintf "hmcs.tail%d" c)
            ~home:cluster_home.(c) nil);
    nodes =
      Array.init n (fun p ->
          {
            next =
              Machine.alloc machine
                ~label:(Printf.sprintf "hmcs.qn%d.next" p)
                ~home:p nil;
            locked =
              Machine.alloc machine
                ~label:(Printf.sprintf "hmcs.qn%d.locked" p)
                ~home:p w_wait;
            owner = p;
          });
    machine;
    holder = -1;
    acquisitions = 0;
    local_passes = 0;
    global_releases = 0;
    repairs = 0;
    grafts = 0;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name _ = "HMCS"
let vclass t = t.vcls
let acquisitions t = t.acquisitions
let local_passes t = t.local_passes
let global_releases t = t.global_releases
let repairs t = t.repairs
let grafts t = t.grafts

(* Qnode ids are 1-based processor numbers; cnode ids 1-based cluster
   numbers. *)
let qid p = p + 1
let qnode t id = t.nodes.(id - 1)
let cid c = c + 1
let cnode t id = t.cnodes.(id - 1)

let is_free t =
  t.holder = -1
  && Cell.peek t.root_tail = nil
  && Array.for_all (fun tl -> Cell.peek tl = nil) t.local_tails

let waiters t =
  t.holder >= 0
  &&
  let hc = t.cluster_of t.holder in
  let expected c = if c = hc then qid t.holder else nil in
  let found = ref false in
  Array.iteri
    (fun c tl -> if Cell.peek tl <> expected c then found := true)
    t.local_tails;
  !found

let got_lock t ctx =
  assert (t.holder = -1);
  t.holder <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* Plain MCS acquire on the root queue, entered by cluster [c]'s current
   local head. *)
let acquire_root t ctx c =
  let cn = t.cnodes.(c) in
  Ctx.write ctx cn.cnext nil;
  Ctx.write ctx cn.clocked 1;
  let pred = Ctx.fetch_and_store ctx t.root_tail (cid c) in
  Ctx.instr ctx ~reg:1 ~br:1 ();
  if pred <> nil then begin
    Ctx.write ctx (cnode t pred).cnext (cid c);
    let rec spin () =
      let v = Ctx.read ctx cn.clocked in
      Ctx.instr ctx ~br:1 ();
      if v <> 0 then spin ()
    in
    spin ()
  end

(* Plain MCS release on the root queue, with the fetch&store repair. *)
let release_root t ctx c =
  let cn = t.cnodes.(c) in
  let succ = Ctx.read ctx cn.cnext in
  Ctx.instr ctx ~br:1 ();
  if succ <> nil then Ctx.write ctx (cnode t succ).clocked 0
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.root_tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail <> cid c then begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.root_tail old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx cn.cnext in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (cnode t usurper).cnext victim
      end
      else Ctx.write ctx (cnode t victim).clocked 0
    end
  end

let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let p = Ctx.proc ctx in
  let c = t.cluster_of p in
  let me = t.nodes.(p) in
  Ctx.write ctx me.next nil;
  Ctx.write ctx me.locked w_wait;
  let pred = Ctx.fetch_and_store ctx t.local_tails.(c) (qid p) in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  if pred = nil then begin
    (* Local head of a fresh cohort: pass count starts at 1, then compete
       for the root on the cluster's behalf. *)
    Ctx.write ctx me.locked 1;
    acquire_root t ctx c
  end
  else begin
    Ctx.write ctx (qnode t pred).next (qid p);
    Ctx.instr ctx ~reg:1 ~br:1 ();
    let rec spin () =
      let v = Ctx.read ctx me.locked in
      Ctx.instr ctx ~br:1 ();
      if v = w_wait then spin () else v
    in
    let v = spin () in
    if v = acquire_parent t then begin
      (* The previous head gave up the root (budget exhausted or cohort
         drained elsewhere): we are the new local head. *)
      Ctx.write ctx me.locked 1;
      acquire_root t ctx c
    end
    (* else v in [1, threshold]: the root came with the hand-off. *)
  end;
  got_lock t ctx

let release t ctx =
  let p = Ctx.proc ctx in
  let c = t.cluster_of p in
  let me = t.nodes.(p) in
  assert (t.holder = p);
  t.holder <- -1;
  let curcount = Ctx.read ctx me.locked in
  let succ = Ctx.read ctx me.next in
  Ctx.instr ctx ~reg:1 ~br:2 ();
  (* Hook after the protocol reads but before anything that can transfer
     the lock (the local pass write, or the root release waking another
     cluster), so an observer orders our release before the successor's
     acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if succ <> nil && curcount < t.threshold then begin
    (* Pass within the cluster: the root stays put, the successor inherits
       the incremented pass count. *)
    t.local_passes <- t.local_passes + 1;
    Ctx.write ctx (qnode t succ).locked (curcount + 1)
  end
  else begin
    (* Give up the root first, then hand local headship over (the paper's
       order: the next head re-acquires the root, possibly behind other
       clusters that were waiting). *)
    release_root t ctx c;
    t.global_releases <- t.global_releases + 1;
    if succ <> nil then Ctx.write ctx (qnode t succ).locked (acquire_parent t)
    else begin
      let old_tail = Ctx.fetch_and_store ctx t.local_tails.(c) nil in
      Ctx.instr ctx ~reg:1 ~br:1 ();
      if old_tail <> qid p then begin
        (* The fetch&store removed waiters: re-install them, grafting
           behind any usurper (who, having seen an empty queue, made itself
           local head and is acquiring the root). *)
        t.repairs <- t.repairs + 1;
        let usurper = Ctx.fetch_and_store ctx t.local_tails.(c) old_tail in
        Ctx.instr ctx ~br:1 ();
        let rec wait_next () =
          let v = Ctx.read ctx me.next in
          Ctx.instr ctx ~br:1 ();
          if v = nil then wait_next () else v
        in
        let victim = wait_next () in
        if usurper <> nil then begin
          t.grafts <- t.grafts + 1;
          Ctx.write ctx (qnode t usurper).next victim
        end
        else Ctx.write ctx (qnode t victim).locked (acquire_parent t)
      end
    end
  end

(* Core-interface view. [try_acquire] enqueues and waits: a true TryLock
   would need the abandonment protocol at both levels. [create] uses the
   machine's hardware stations as the cluster topology. *)
module Core = struct
  type nonrec t = t

  let algo = "HMCS"
  let name = name

  let create ?(home = 0) ?(vclass = "hmcs") machine =
    create ~home ~vclass ~topo:(Lock_core.topo_of_machine machine) machine

  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let is_free = is_free
  let waiters = waiters
  let acquisitions = acquisitions
  let vclass = vclass
end
