(** Uniform lock interface over every algorithm the paper compares.

    Workloads take a [t] and stay agnostic of the algorithm; [make] builds
    one from an [algo] tag. *)

open Hector

type t = {
  name : string;
  acquire : Ctx.t -> unit;
  release : Ctx.t -> unit;
  try_acquire : Ctx.t -> bool;
  is_free : unit -> bool;
  acquires : int ref;
  wait_cycles : int ref;
}

type algo =
  | Spin of { max_backoff_us : float }
  | Mcs_original
  | Mcs_h1
  | Mcs_h2
  | Mcs_cas
  | Clh
  | Ticket
  | Anderson
  | Spin_then_block of { spin_us : float }
  | Null

val algo_name : algo -> string

(** The five algorithms of Figure 5: MCS, H1-MCS, H2-MCS, spin with 35 µs
    cap, spin with 2 ms cap. *)
val all_paper_algos : algo list

(** [vclass] names the lock-order class reported to an installed
    {!Verify.t} checker; defaults to a per-algorithm class name. *)
val make : Machine.t -> ?home:int -> ?vclass:string -> algo -> t

(** A lock that does nothing; calibration probes use it to measure a path
    with locking subtracted. *)
val null : t

val of_spin : Spin_lock.t -> t
val of_mcs : Mcs.t -> t

(** Run [f] holding the lock, with the processor's soft interrupt mask set
    for the duration (the paper's Stodolsky-style deadlock avoidance for
    RPC interrupt handlers). *)
val with_lock_masked : t -> Ctx.t -> (unit -> 'a) -> 'a

(** Run [f] holding the lock. *)
val with_lock : t -> Ctx.t -> (unit -> 'a) -> 'a

(** Space cost of one lock instance in words, for the paper's strategy
    comparisons (Section 2.1 / 5.2). *)
val space_words : n_procs:int -> algo -> int
