(** Uniform lock interface over every algorithm the paper compares.

    Workloads take a [t] and stay agnostic of the algorithm; [make] builds
    one from an [algo] tag. *)

open Hector

type t = {
  name : string;
  acquire : Ctx.t -> unit;
  release : Ctx.t -> unit;
  try_acquire : Ctx.t -> bool;
  try_acquire_for : Ctx.t -> deadline:int -> bool;
      (** Timed acquisition against an absolute deadline (in
          [Machine.now] units). On an abortable algorithm ([abortable]),
          returns [false] — holding nothing, with all queue state
          eventually repaired — once the deadline expires; may return
          [true] past the deadline when a hand-off committed first (a
          committed grant must be consumed — nobody else ever will). An
          already-expired deadline fails without touching the lock. On a
          non-abortable algorithm this simply blocks, acquires, and
          returns [true].

          Abortability matrix:
          - abortable: Spin, MCS (all variants), CLH, Anderson, HMCS,
            CNA, Null, any Cohort whose two constituents are both
            abortable, and any Adaptive whose NUMA shape is abortable
            (its test&set and MCS shapes always are);
          - non-abortable (timed face blocks): Ticket (a drawn ticket
            cannot be handed back), Spin_then_block (wakeup is the
            scheduler's promise). *)
  abortable : bool;
  recover : Ctx.t -> bool;
      (** Dead-holder recovery: if the processor holding the lock has
          fail-stopped, force the release it will never perform (the
          thread-oblivious release run by the detector) and return [true];
          [false] when the lock is free, the holder is alive, the
          algorithm is not recoverable, or another recovery is in flight.
          The caller does not hold the lock afterwards — it re-contends.

          Recoverability matrix: every base and composite algorithm except
          [Spin_then_block] (blocked waiters are the scheduler's, beyond
          the lock's reach) and [Null]; a [Cohort] is recoverable iff both
          constituents are, and an [Adaptive] iff its NUMA shape is.
          Ticket is recoverable despite being non-abortable — its waiters
          run the dead-holder check inside their own spin. *)
  recoverable : bool;
  is_free : unit -> bool;
  acquires : int ref;
  wait_cycles : int ref;
}

type algo =
  | Spin of { max_backoff_us : float }
  | Mcs_original
  | Mcs_h1
  | Mcs_h2
  | Mcs_cas
  | Clh
  | Ticket
  | Anderson
  | Spin_then_block of { spin_us : float }
  | Null
  | Cohort of { local : algo; global : algo; max_handoffs : int }
      (** Lock cohorting: one [local] lock per cluster under one [global]
          lock; at most [max_handoffs] consecutive in-cluster hand-offs.
          Constituents must be base algorithms (not [Null], STB, or another
          composite) — [make] raises [Invalid_argument] otherwise. *)
  | Hmcs of { threshold : int }
      (** Hierarchical MCS: a two-level MCS tree, local queue per cluster
          plus a root queue over clusters. *)
  | Cna of { threshold : int }
      (** Compact NUMA-aware MCS: release shunts remote-cluster waiters
          onto a secondary queue, spliced back after [threshold]
          consecutive local hand-offs. *)
  | Rw of { writer : algo; policy : Rwlock.policy; centralised : bool }
      (** Distributed reader–writer lock: per-cluster reader indicators
          (single word when [centralised]) over any exclusive [writer]
          constituent — a base algorithm or a NUMA composite, so RW-cohort
          and RW-CNA come free; not [Null], STB, or another [Rw]. The
          uniform record carries the {e writer} face; workloads that want
          the reader side build with {!make_rw}. Requires compare&swap. *)
  | Adaptive of { numa : algo }
      (** Morphing lock ({!Adaptive}): starts as a 5 µs-capped test&set
          (capped low so a post-morph drain hands off quickly),
          promotes to H1-MCS when the contended fraction of a sliding
          acquisition window crosses a threshold, promotes again to [numa]
          (a NUMA composite: [Cohort], [Hmcs] or [Cna] — [make] raises
          [Invalid_argument] otherwise) when the remote-hand-off fraction
          crosses a second threshold, and demotes as traffic cools. All
          three shapes share one lockdep class; the morph protocol drains
          the old shape before the new one carries the lock. *)

val algo_name : algo -> string

(** [true] iff {!make} demands a compare&swap machine for this algorithm
    ([Mcs_cas], [Ticket], [Anderson], [Rw], or a cohort containing one) — lets a
    workload sweeping the family upgrade its configuration
    ([Config.with_cas]) for exactly the algorithms that need it. *)
val needs_cas : algo -> bool

(** The five algorithms of Figure 5: MCS, H1-MCS, H2-MCS, spin with 35 µs
    cap, spin with 2 ms cap. *)
val all_paper_algos : algo list

(** The paper-faithful cohort instance: MCS at both levels, default
    hand-off bound. *)
val c_mcs_mcs : algo

val hmcs : algo
val cna : algo

(** The three NUMA-aware composites at default thresholds. *)
val all_numa_algos : algo list

(** The default morphing lock: test&set → H1-MCS → CNA. *)
val adaptive : algo

(** [vclass] names the lock-order class reported to an installed
    {!Verify.t} checker; defaults to a per-algorithm class name. [topo] is
    the cluster topology the NUMA-aware composites ([Cohort], [Hmcs],
    [Cna]) are built against, defaulting to the machine's hardware
    stations; base algorithms ignore it. *)
val make :
  Machine.t -> ?home:int -> ?vclass:string -> ?topo:Lock_core.topo -> algo -> t

(** The RW composite with both faces exposed: [make_rw m ~policy
    ~centralised writer] is the lock behind [make (Rw {writer; policy;
    centralised})], as an {!Rwlock.t} so the reader side
    ([Rwlock.acquire_read] and friends) is reachable. The writer
    constituent reports under [vclass ^ ".writer"], readers under
    [vclass ^ ".read"]. Raises [Invalid_argument] on a machine without
    compare&swap or an invalid writer constituent. *)
val make_rw :
  Machine.t ->
  ?home:int ->
  ?vclass:string ->
  ?topo:Lock_core.topo ->
  policy:Rwlock.policy ->
  centralised:bool ->
  algo ->
  Rwlock.t

(** A lock that does nothing; calibration probes use it to measure a path
    with locking subtracted. *)
val null : t

val of_spin : Spin_lock.t -> t
val of_mcs : Mcs.t -> t

(** Crash-tolerant acquire: timed-acquisition slices of [check_period]
    cycles (default 2000) with a dead-holder {!recover} between them, so a
    waiter never waits forever on a corpse. Degrades to a plain blocking
    [acquire] when the algorithm is not both abortable and recoverable
    (Ticket still recovers — in-spin). The inter-slice backoff pause is
    load-bearing: a fail-fast timed attempt costs zero virtual time while
    the waiter's abandoned node is still queued, and the pause is what
    lets simulated time advance to the hand-off that reclaims it. *)
val acquire_recoverable : ?check_period:int -> t -> Ctx.t -> unit

(** Run [f] holding the lock, with the processor's soft interrupt mask set
    for the duration (the paper's Stodolsky-style deadlock avoidance for
    RPC interrupt handlers). *)
val with_lock_masked : t -> Ctx.t -> (unit -> 'a) -> 'a

(** Run [f] holding the lock. *)
val with_lock : t -> Ctx.t -> (unit -> 'a) -> 'a

(** Space cost of one lock instance in words, for the paper's strategy
    comparisons (Section 2.1 / 5.2).

    Counting convention: every word of lock state is charged to the lock
    that allocates it — the lock word(s), per-processor queue nodes (two
    words for MCS/CLH, three for CNA, which also records the waiter's
    cluster), and per-cluster control state. Per-processor nodes are
    charged at the full machine width even for a cohort's per-cluster
    local locks (nodes are per-processor arrays here, as on a real system
    where they are shared across locks). Formulas for the composites, with
    P processors and C clusters ([n_clusters], default 1):
    - [Cohort]: space(global) + C * space(local) + 2C (owned flag and pass
      counter per cluster);
    - [Hmcs]: 1 + 3C + 2P (root tail; root node and local tail per
      cluster; queue node per processor);
    - [Cna]: 3 + 3P regardless of C — CNA's "compact" claim (lock word,
      secondary-queue head/tail, three-word nodes);
    - [Rw]: space(writer) + C reader-indicator words (count and gate bit
      share a word; 1 word when [centralised]) — the read-parallelism
      upgrade costs one word per cluster on top of whatever exclusive
      lock serialises the writers;
    - [Adaptive]: 1 + max(space(shape)) over its three shapes (mode word
      plus the largest constituent) — under the per-lock {e active} view
      only the current shape's words carry the lock, the morph guard
      keeping the other two quiescent.

    Timed-acquisition state is {e excluded}, by the same convention that
    excludes MCS's per-processor interrupt nodes: the timed twin nodes
    (MCS, CLH, CNA, HMCS — plus HMCS's per-cluster timed root nodes and
    Anderson's ring extension to 2P+1 slots) are per-processor structures
    shared across all locks on a real system, charged to the processor,
    not the lock. *)
val space_words : ?n_clusters:int -> n_procs:int -> algo -> int
