(* CNA (Compact NUMA-Aware lock, Dice & Kogan): a flat MCS queue whose
   *release* is NUMA-aware. Instead of restructuring the lock into a tree
   (HMCS) or stacking two locks (Cohort), the releaser scans the main queue
   for the first waiter of its own cluster, hands the lock to it, and moves
   the skipped remote-cluster prefix onto a secondary queue. Waiters spin
   exactly as in MCS and need no extra per-lock state — the NUMA policy
   lives entirely in the release path, which is why the lock stays
   "compact": 3 words of lock state plus the usual per-processor nodes.

   Starvation bound (the escape hatch): [passes] counts consecutive
   same-cluster hand-offs. Once it reaches [threshold] while the secondary
   queue is non-empty, the secondary chain is spliced back *in front of*
   the main queue and the lock goes to its head — so a moved waiter is
   overtaken by at most [threshold] + 1 critical sections. The secondary
   queue is also flushed whenever the lock leaves the cluster anyway (no
   same-cluster waiter found) and when the main queue drains; both keep the
   invariant that every secondary node is remote to the cluster currently
   holding the lock.

   Only the lock holder ever touches the secondary queue and the pass
   counter, so they are plain host-side fields here; every queue-link
   mutation is a timed cell write, and the scan pays a timed read per
   examined node — the traffic a real CNA release generates.

   Fetch&store only: the empty-queue paths reuse the MCS repair protocol
   (victims re-installed, grafting behind usurpers), including when
   re-installing the secondary chain as the new main queue.

   Timed acquisition: a timed waiter enqueues a separate per-processor
   timed node whose [mark] cell runs the MCS abandonment handshake (a
   granter swaps the mark to claimed before writing locked = 0; an
   expiring waiter swaps it to abandoned; first swap wins the node). The
   release-side scan deliberately ignores marks — abandonment is
   discovered at *grant* time, where every hand-off funnels through
   [grant]: an abandoned grant target is unlinked and the grant passed to
   its successor, with the drained/usurped main-queue cases repaired
   exactly as a release would (including re-installing the secondary
   queue). Abandoned nodes that were moved onto the secondary queue ride
   along unlinked until a flush grants their position. *)

open Hector

let default_threshold = 16

(* Mark values on a timed node (same handshake as Mcs). *)
let mark_abandoned = 1
let mark_claimed = 2

type qnode = {
  next : Cell.t; (* successor qnode id; 0 = nil *)
  locked : Cell.t; (* 1 = wait, 0 = go *)
  mark : Cell.t; (* abandonment handshake; always 0 on regular nodes *)
  owner : int;
  cluster : int;
}

type t = {
  threshold : int;
  cluster_of : int -> int;
  tail : Cell.t; (* the lock word: id of the queue tail, 0 = free *)
  nodes : qnode array; (* one per processor *)
  machine : Machine.t;
  mutable sec_head : int; (* secondary queue of skipped remote waiters *)
  mutable sec_tail : int;
  mutable passes : int; (* consecutive same-cluster hand-offs *)
  mutable holder : int; (* processor in the critical section; -1 = none *)
  mutable acquisitions : int;
  mutable local_handoffs : int; (* hand-offs to a same-cluster waiter *)
  mutable remote_handoffs : int; (* hand-offs that left the cluster *)
  mutable moved : int; (* waiters moved onto the secondary queue *)
  mutable flushes : int; (* secondary-queue splices back into service *)
  mutable repairs : int;
  mutable grafts : int;
  active : int array; (* proc -> qnode id of its current hold *)
  mutable timeouts : int; (* timed-acquisition expiries (incl. fail-fast) *)
  mutable gc_count : int; (* abandoned nodes collected by grants *)
  mutable recovering : bool; (* serialises dead-holder recoverers *)
  vcls : Verify.lock_class;
  vid : int;
}

let nil = 0

let create ?(home = 0) ?(threshold = default_threshold) ?(vclass = "cna")
    ~(topo : Lock_core.topo) machine =
  if threshold < 1 then invalid_arg "Cna.create: threshold must be >= 1";
  let n = Machine.n_procs machine in
  let cluster_of = topo.Lock_core.cluster_of in
  {
    threshold;
    cluster_of;
    tail = Machine.alloc machine ~label:"cna.tail" ~home nil;
    nodes =
      (* [0, n): per-processor nodes; [n, 2n): their timed twins. *)
      Array.init (2 * n) (fun i ->
          let p = if i < n then i else i - n in
          let timed = i >= n in
          let c = cluster_of p in
          if c < 0 || c >= topo.Lock_core.n_clusters then
            invalid_arg "Cna.create: cluster_of out of range";
          let lbl s =
            Printf.sprintf "cna.qn%d%s.%s" p (if timed then "t" else "") s
          in
          {
            next = Machine.alloc machine ~label:(lbl "next") ~home:p nil;
            locked = Machine.alloc machine ~label:(lbl "locked") ~home:p 1;
            mark = Machine.alloc machine ~label:(lbl "mark") ~home:p 0;
            owner = p;
            cluster = c;
          });
    machine;
    sec_head = nil;
    sec_tail = nil;
    passes = 0;
    holder = -1;
    acquisitions = 0;
    local_handoffs = 0;
    remote_handoffs = 0;
    moved = 0;
    flushes = 0;
    repairs = 0;
    grafts = 0;
    active = Array.make n 0;
    timeouts = 0;
    gc_count = 0;
    recovering = false;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let name _ = "CNA"
let vclass t = t.vcls
let acquisitions t = t.acquisitions
let local_handoffs t = t.local_handoffs
let remote_handoffs t = t.remote_handoffs
let moved t = t.moved
let flushes t = t.flushes
let repairs t = t.repairs
let grafts t = t.grafts
let timeouts t = t.timeouts
let gc_count t = t.gc_count

(* Qnode ids are 1-based: [1, n] regular (processor id - 1), [n+1, 2n]
   timed. *)
let qid p = p + 1
let qnode t id = t.nodes.(id - 1)
let timed_qid t p = Machine.n_procs t.machine + p + 1
let is_timed_qid t id = id > Machine.n_procs t.machine

let is_free t = t.holder = -1 && Cell.peek t.tail = nil && t.sec_head = nil

let waiters t =
  t.holder >= 0
  && (Cell.peek t.tail <> t.active.(t.holder) || t.sec_head <> nil)

let got_lock t ctx =
  assert (t.holder = -1);
  t.holder <- Ctx.proc ctx;
  t.acquisitions <- t.acquisitions + 1;
  Vhook.acquired ctx ~cls:t.vcls ~id:t.vid

(* The acquire side is stock MCS — that is CNA's point. *)
let acquire t ctx =
  Vhook.wait_acquire ctx ~cls:t.vcls ~id:t.vid;
  let p = Ctx.proc ctx in
  let me = t.nodes.(p) in
  Ctx.write ctx me.next nil;
  let pred = Ctx.fetch_and_store ctx t.tail (qid p) in
  Ctx.instr ctx ~reg:2 ~br:2 ();
  if pred <> nil then begin
    Ctx.write ctx me.locked 1;
    Ctx.write ctx (qnode t pred).next (qid p);
    Ctx.instr ctx ~reg:1 ~br:1 ();
    let rec spin () =
      let v = Ctx.read ctx me.locked in
      Ctx.instr ctx ~br:1 ();
      if v <> 0 then spin ()
    in
    spin ()
  end;
  t.active.(p) <- qid p;
  got_lock t ctx

(* Hand the lock to node [id], running the abandonment handshake for timed
   nodes and collecting abandoned ones: unlink, pass the grant to the true
   successor, repairing the drained/usurped main-queue cases exactly as a
   release would. *)
let rec hand_off t ctx id =
  let nd = qnode t id in
  if not (is_timed_qid t id) then Ctx.write ctx nd.locked 0
  else if Ctx.read ctx nd.mark <> 0 then collect t ctx id
  else begin
    let prev = Ctx.fetch_and_store ctx nd.mark mark_claimed in
    Ctx.instr ctx ~br:1 ();
    if prev <> 0 then collect t ctx id else Ctx.write ctx nd.locked 0
  end

and collect t ctx id =
  t.gc_count <- t.gc_count + 1;
  Vhook.abandon_repaired ctx ~cls:t.vcls;
  let nd = qnode t id in
  Ctx.instr ctx ~br:1 ();
  let next = Ctx.read ctx nd.next in
  Ctx.instr ctx ~br:1 ();
  if next <> nil then begin
    Ctx.write ctx nd.next nil;
    Ctx.write ctx nd.mark 0;
    hand_off t ctx next
  end
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail = id then begin
      (* Main queue drained behind the abandoned node: the banked
         secondary chain (if any) becomes the new main queue; otherwise
         the lock is free. *)
      Ctx.write ctx nd.mark 0;
      if t.sec_head <> nil then reinstall_secondary t ctx
      else t.passes <- 0
    end
    else begin
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.tail old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx nd.next in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      Ctx.write ctx nd.next nil;
      Ctx.write ctx nd.mark 0;
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (qnode t usurper).next victim
      end
      else hand_off t ctx victim
    end
  end

(* Re-install the banked secondary chain as the new main queue and wake its
   head, grafting behind any usurper that enqueued on the momentarily-empty
   queue. *)
and reinstall_secondary t ctx =
  let h = t.sec_head and last = t.sec_tail in
  t.sec_head <- nil;
  t.sec_tail <- nil;
  t.flushes <- t.flushes + 1;
  t.passes <- 0;
  let usurper = Ctx.fetch_and_store ctx t.tail last in
  Ctx.instr ctx ~br:1 ();
  if usurper <> nil then begin
    t.grafts <- t.grafts + 1;
    Ctx.write ctx (qnode t usurper).next h
  end
  else begin
    t.remote_handoffs <- t.remote_handoffs + 1;
    hand_off t ctx h
  end

(* Append the already-linked chain [first .. last] to the secondary
   queue. The chain's links are live cells; only the join is written. *)
let append_secondary t ctx ~first ~last =
  if t.sec_head = nil then t.sec_head <- first
  else Ctx.write ctx (qnode t t.sec_tail).next first;
  t.sec_tail <- last

(* Splice the secondary queue in front of [head_id] (the main-queue head)
   and hand the lock to the secondary's own head. Used by the escape hatch
   and by hand-offs that leave the cluster anyway. *)
let flush_secondary_before t ctx head_id =
  let h = t.sec_head in
  Ctx.write ctx (qnode t t.sec_tail).next head_id;
  t.sec_head <- nil;
  t.sec_tail <- nil;
  t.flushes <- t.flushes + 1;
  t.passes <- 0;
  t.remote_handoffs <- t.remote_handoffs + 1;
  hand_off t ctx h

(* Hand the lock onward given the main-queue head [succ_id], applying the
   NUMA policy: prefer a same-cluster waiter, move the skipped prefix to
   the secondary queue, respect the starvation bound. [my_cluster] is the
   releasing processor's cluster. *)
let dispatch t ctx ~my_cluster succ_id =
  Ctx.instr ctx ~br:1 ();
  if t.sec_head <> nil && t.passes >= t.threshold then
    (* Escape hatch: the moved waiters have been overtaken [threshold]
       times; put them first. *)
    flush_secondary_before t ctx succ_id
  else begin
    (* Scan the linked part of the queue for the first same-cluster
       waiter. [prev] trails [cur]; the prefix [succ_id .. prev] is remote
       when a local waiter is found at [cur]. *)
    let rec scan prev cur n_skipped =
      Ctx.instr ctx ~reg:1 ~br:1 ();
      if (qnode t cur).cluster = my_cluster then begin
        if prev <> nil then begin
          (* Cut the remote prefix out of the main queue and bank it. *)
          t.moved <- t.moved + n_skipped;
          Ctx.write ctx (qnode t prev).next nil;
          append_secondary t ctx ~first:succ_id ~last:prev
        end;
        t.passes <- t.passes + 1;
        t.local_handoffs <- t.local_handoffs + 1;
        hand_off t ctx cur
      end
      else begin
        let nxt = Ctx.read ctx (qnode t cur).next in
        Ctx.instr ctx ~br:1 ();
        if nxt = nil then begin
          (* No same-cluster waiter in the linked chain (the true tail may
             still be mid-enqueue; skipping it would be unsafe). The lock
             leaves the cluster: flush the secondary queue ahead of the
             untouched main queue, or hand to the head directly. *)
          if t.sec_head <> nil then flush_secondary_before t ctx succ_id
          else begin
            t.passes <- 0;
            t.remote_handoffs <- t.remote_handoffs + 1;
            hand_off t ctx succ_id
          end
        end
        else scan cur nxt (n_skipped + 1)
      end
    in
    scan nil succ_id 1
  end

(* Thread-oblivious: the releasing processor is derived from the holder
   bookkeeping, not from [ctx], so a recoverer can run the release on a
   dead holder's behalf. The NUMA policy keys off the *holder's* cluster
   either way — the lock prefers to stay where the critical section ran. *)
let release t ctx =
  let p = t.holder in
  assert (p >= 0);
  let my_id = t.active.(p) in
  let me = qnode t my_id in
  let my_cluster = me.cluster in
  t.holder <- -1;
  let succ = Ctx.read ctx me.next in
  Ctx.instr ctx ~br:1 ();
  (* Hook after the successor read but before anything that can transfer
     the lock, so an observer orders our release before the successor's
     acquisition. *)
  Vhook.released ctx ~cls:t.vcls ~id:t.vid;
  if succ <> nil then dispatch t ctx ~my_cluster succ
  else begin
    let old_tail = Ctx.fetch_and_store ctx t.tail nil in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    if old_tail = my_id then begin
      (* Main queue drained. If skipped waiters are banked, re-install
         their chain as the new main queue and wake its head; a usurper
         that enqueued on the momentarily-empty queue holds the lock, so
         graft the chain behind it instead. *)
      if t.sec_head <> nil then reinstall_secondary t ctx
      else t.passes <- 0
    end
    else begin
      (* The fetch&store removed waiters: standard MCS repair, then apply
         the NUMA policy to the re-installed head. *)
      t.repairs <- t.repairs + 1;
      let usurper = Ctx.fetch_and_store ctx t.tail old_tail in
      Ctx.instr ctx ~br:1 ();
      let rec wait_next () =
        let v = Ctx.read ctx me.next in
        Ctx.instr ctx ~br:1 ();
        if v = nil then wait_next () else v
      in
      let victim = wait_next () in
      if usurper <> nil then begin
        t.grafts <- t.grafts + 1;
        Ctx.write ctx (qnode t usurper).next victim
      end
      else dispatch t ctx ~my_cluster victim
    end
  end

(* Timed acquisition on the per-processor timed node. Whether the node sits
   in the main queue or was moved to the secondary queue, the waiter spins
   on its own locked cell just like any CNA waiter; expiry runs the mark
   handshake, and a claim-race loss means a hand-off committed — the lock
   is taken even past the deadline. Fail-fast ([timeout <= 0], or the
   timed node still abandoned in a queue) touches nothing. *)
let acquire_with_timeout t ctx ~timeout =
  if timeout <= 0 then begin
    t.timeouts <- t.timeouts + 1;
    false
  end
  else begin
    let p = Ctx.proc ctx in
    let my_id = timed_qid t p in
    let me = qnode t my_id in
    let still_queued = Ctx.read ctx me.mark in
    Ctx.instr ctx ~br:1 ();
    if still_queued <> 0 then begin
      t.timeouts <- t.timeouts + 1;
      false
    end
    else begin
      Vhook.wait_acquire_timed ctx ~cls:t.vcls ~id:t.vid;
      let deadline = Machine.now t.machine + timeout in
      Ctx.write ctx me.next nil;
      let pred = Ctx.fetch_and_store ctx t.tail my_id in
      Ctx.instr ctx ~reg:2 ~br:2 ();
      let take () =
        Ctx.write ctx me.mark 0;
        t.active.(p) <- my_id;
        got_lock t ctx;
        true
      in
      if pred = nil then begin
        t.active.(p) <- my_id;
        got_lock t ctx;
        true
      end
      else begin
        Ctx.write ctx me.locked 1;
        Ctx.write ctx (qnode t pred).next my_id;
        Ctx.instr ctx ~reg:1 ~br:1 ();
        let rec spin () =
          let v = Ctx.read ctx me.locked in
          Ctx.instr ctx ~br:1 ();
          if v = 0 then true
          else if Machine.now t.machine >= deadline then false
          else spin ()
        in
        if spin () then take ()
        else begin
          let prev = Ctx.fetch_and_store ctx me.mark mark_abandoned in
          Ctx.instr ctx ~br:1 ();
          if prev = mark_claimed then begin
            (* A hand-off committed before our abandonment: the lock is
               ours; nobody else will ever receive it. *)
            let rec wait_grant () =
              let v = Ctx.read ctx me.locked in
              Ctx.instr ctx ~br:1 ();
              if v <> 0 then wait_grant ()
            in
            wait_grant ();
            take ()
          end
          else begin
            (* Abandonment stands: the node remains queued, marked, until
               a grant reaches and collects it. *)
            t.timeouts <- t.timeouts + 1;
            Vhook.wait_abandoned ctx;
            false
          end
        end
      end
    end
  end

let try_acquire_for t ctx ~deadline =
  acquire_with_timeout t ctx ~timeout:(deadline - Machine.now t.machine)

(* Dead-holder recovery: the thread-oblivious release runs the full CNA
   policy — scan, secondary-queue banking, abandoned-node GC — on the
   corpse's behalf. *)
let recover t ctx =
  let dead = t.holder in
  if t.recovering || dead < 0 || Machine.proc_alive t.machine dead then false
  else begin
    t.recovering <- true;
    Fun.protect
      ~finally:(fun () -> t.recovering <- false)
      (fun () ->
        release t ctx;
        Vhook.recovered ctx ~cls:t.vcls ~dead;
        true)
  end

(* Core-interface view; [create] clusters by hardware station and
   [try_acquire] enqueues and waits. *)
module Core = struct
  type nonrec t = t

  let algo = "CNA"
  let name = name

  let create ?(home = 0) ?(vclass = "cna") machine =
    create ~home ~vclass ~topo:(Lock_core.topo_of_machine machine) machine

  let acquire = acquire
  let release = release

  let try_acquire t ctx =
    acquire t ctx;
    true

  let try_acquire_for = try_acquire_for
  let abortable = true
  let recover = recover
  let recoverable = true
  let is_free = is_free
  let waiters = waiters
  let acquisitions = acquisitions
  let vclass = vclass
  let vid t = t.vid
end
