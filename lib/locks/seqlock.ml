(* Sequence lock (see seqlock.mli for the protocol).

   The sequence word is the only simulated state. Writers are serialised by
   an external lock, so the writer side keeps a host-side shadow of the
   last value stored and pays exactly one timed store per transition;
   readers pay one timed load per sample. Validation outcomes are counted
   host-side and reported through the same hook sites as every other lock,
   at zero simulated cost. *)

open Hector

type t = {
  seq : Cell.t;
  mutable shadow : int; (* last value stored; valid under the writer lock *)
  mutable writer : int; (* proc inside a write section, -1 otherwise *)
  mutable writes : int;
  mutable repairs : int;
  mutable read_hits : int;
  mutable read_aborts : int;
  vcls : Verify.lock_class;
  vid : int;
}

let create machine ?(home = 0) ?(vclass = "seqlock") () =
  {
    seq = Machine.alloc machine ~label:vclass ~home 0;
    shadow = 0;
    writer = -1;
    writes = 0;
    repairs = 0;
    read_hits = 0;
    read_aborts = 0;
    vcls = Verify.lock_class vclass;
    vid = Verify.fresh_id ();
  }

let peek t = Cell.peek t.seq
let write_in_progress t = Cell.peek t.seq land 1 <> 0
let writes t = t.writes
let repairs t = t.repairs
let read_hits t = t.read_hits
let read_aborts t = t.read_aborts
let vclass t = t.vcls

let write_begin t ctx =
  (* The shard lock serialises writers, so [shadow] is the word's current
     value: no read-modify-write needed, just the store (the same argument
     that lets [Reserve.clear] be a single store). *)
  assert (t.shadow land 1 = 0);
  t.writer <- Ctx.proc ctx;
  t.shadow <- t.shadow + 1;
  Ctx.write ctx t.seq t.shadow

let write_end t ctx =
  assert (t.shadow land 1 = 1);
  t.writer <- -1;
  t.shadow <- t.shadow + 1;
  t.writes <- t.writes + 1;
  Ctx.write ctx t.seq t.shadow

(* A writer that fail-stopped between [write_begin] and [write_end] leaves
   the sequence word odd forever, so every optimistic reader falls back to
   the locked path. Roll the sequence forward to even on the corpse's
   behalf: one timed store from the recoverer. Safe because the corpse
   still "holds" the external writer lock while its shard is repaired, so
   no live writer can be inside. *)
let recover_write t ctx =
  if
    t.shadow land 1 = 1
    && t.writer >= 0
    && not (Machine.proc_alive (Ctx.machine ctx) t.writer)
  then begin
    (* Not [write_end]: a repair rolls the sequence forward but is not a
       completed write, so [writes] must not move — CRASH-STORM repair
       rows would otherwise overstate write throughput. *)
    assert (t.shadow land 1 = 1);
    t.writer <- -1;
    t.shadow <- t.shadow + 1;
    t.repairs <- t.repairs + 1;
    Ctx.write ctx t.seq t.shadow;
    true
  end
  else false

let with_write t ctx f =
  write_begin t ctx;
  Fun.protect ~finally:(fun () -> write_end t ctx) f

let read_begin t ctx =
  let v = Ctx.read ctx t.seq in
  Ctx.instr ctx ~br:1 ();
  if v land 1 = 0 then Some v
  else begin
    t.read_aborts <- t.read_aborts + 1;
    Vhook.optimistic_abort ctx ~cls:t.vcls;
    None
  end

let read_validate t ctx seq =
  let v = Ctx.read ctx t.seq in
  Ctx.instr ctx ~br:1 ();
  if v = seq then begin
    t.read_hits <- t.read_hits + 1;
    (* A zero-length try-acquire/release pair: the read shows up in the
       contention profile under the seqlock's class but adds no lock-order
       edges (it never blocks). *)
    Vhook.try_acquired ctx ~cls:t.vcls ~id:t.vid;
    Vhook.released ctx ~cls:t.vcls ~id:t.vid;
    true
  end
  else begin
    t.read_aborts <- t.read_aborts + 1;
    Vhook.optimistic_abort ctx ~cls:t.vcls;
    false
  end
