(** Inter-cluster remote procedure calls, carried by inter-processor
    interrupts.

    The caller deposits a request (remote write), raises the IPI, and spins
    on the reply with interrupts enabled — a busy processor still serves
    incoming RPCs, which an exception-based kernel requires. Services run in
    the target's interrupt context and must never wait: they fail with
    [Would_deadlock] and the initiator retries (Section 2.3).

    With a fault plan installed ({!set_fault_plan}), requests and replies
    may be delayed or (at most once per call) lost; a lost message is
    recovered by the caller's reply timeout resending the IPI —
    at-least-once delivery, so services run under a plan must tolerate
    re-execution. *)

open Eventsim
open Hector

type outcome =
  | Ok of int
  | Would_deadlock  (** a reserve bit was found set on the remote side *)
  | Absent  (** the remote structure does not exist *)
  | Gave_up
      (** {!call_until_resolved} exhausted its attempt budget; the caller
          should degrade (e.g. fall back to the pessimistic protocol) *)
  | Dead_target
      (** the target processor fail-stopped ([Machine.kill_proc]) — unlike
          [Gave_up], the condition is permanent (barring a restart): the
          caller should stop addressing this processor rather than retry.
          Returned without any message traffic when the death is known
          up front, or from the resend path when the target dies with the
          call in flight. A crash plan should set a positive
          [reply_timeout], or an in-flight call to the victim spins on its
          reply forever. *)

val outcome_name : outcome -> string

type t

val create : Machine.t -> Ctx.t array -> Costs.t -> t

(** Install the function charging marshal/dispatch cycles (the kernel routes
    them through its memory-bound worker). *)
val set_work : t -> (Ctx.t -> int -> unit) -> unit

(** Install (or clear) a fault plan governing delay/loss injection and the
    reply timeout. [None] (the default) is exactly free. *)
val set_fault_plan : t -> Fault.t option -> unit

val fault_plan : t -> Fault.t option
val calls : t -> int
val deadlock_failures : t -> int
val retries : t -> int

(** Reply timeouts that resent the request IPI. *)
val resends : t -> int

(** Calls that returned [Gave_up]. *)
val gave_ups : t -> int

(** Highest attempt number any {!call_until_resolved} reached, recorded
    uniformly on every resolution — first-try successes and local
    ([target = self]) calls included, not only the retry path. *)
val max_attempts_seen : t -> int

(** Failed attempts past the x8 backoff cap — retries that no longer spread
    out; a persistently growing count is the unbounded-retry warning sign
    that the [max_attempts] cap exists to stop. *)
val backoff_cap_hits : t -> int

(** Calls that returned [Dead_target] (counted whether the death was known
    up front or detected on a resend timeout). *)
val dead_targets : t -> int

(** One synchronous call; [service] runs on the target processor. A call to
    the caller's own processor runs the service directly. Never returns
    [Gave_up]; returns [Dead_target] if the target is (or dies) dead. *)
val call : t -> Ctx.t -> target:int -> (Ctx.t -> outcome) -> outcome

(** Retry a call through [Would_deadlock] failures with jittered backoff;
    [before_retry] releases the caller's reserve bits first (the optimistic
    protocol) — it also runs before a [Gave_up] return. [max_attempts]
    caps the attempts (0, the default, retries forever); on exhaustion the
    call returns [Gave_up] instead of [Would_deadlock]. *)
val call_until_resolved :
  ?before_retry:(unit -> unit) ->
  ?max_attempts:int ->
  t ->
  Ctx.t ->
  target:int ->
  (Ctx.t -> outcome) ->
  outcome
