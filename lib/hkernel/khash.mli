(** Chained hash table under the hybrid coarse-grain/fine-grain locking
    strategy of Figures 1 and 2.

    A single coarse lock protects the whole table but is held only long
    enough to search a chain and set a reserve bit in the found element; the
    reserve bit then protects the element for the long operation. Waiters on
    a reserved element release the coarse lock, spin on the status word with
    backoff, and re-search.

    The [Coarse] and [Fine] granularities implement the strategies the
    hybrid is compared against (experiment ABL1). Every coarse-lock hold
    sets the processor's soft interrupt mask, so RPC service handlers can
    never deadlock against the lock their own processor holds
    (Section 3.2).

    {2 Sharded granularity}

    [Sharded] splits the bin array into [shards] groups (bin [b] belongs to
    shard [b mod shards]); each shard has its own coarse lock — any
    {!Lock.algo}, including the NUMA composites — homed on a distinct PMM,
    together with that shard's bin-head words. Operations behave exactly as
    in [Hybrid] mode but take the key's shard lock instead of the table
    lock, so reserve-bit dances on different shards proceed in parallel and
    load distinct memory modules.

    Each shard also carries a {!Locks.Seqlock}. Chain-mutating writers
    ({!insert}, {!remove}, the placeholder arm of {!reserve_or_insert})
    bump it {e inside} the shard lock. Read-only {!lookup}s use it as an
    optimistic read path: sample the sequence word, probe the chain with
    plain (unlocked) loads, validate the sequence. The contract is:

    - a lookup whose validation succeeds observed a chain no writer touched
      between the two samples, so its answer is consistent;
    - a writer-busy sample or a failed validation makes the lookup fall
      back to {!lookup_locked} — one bounded retry through the shard lock,
      never an unbounded optimistic spin;
    - reserve bits protect element {e payloads}, not chain structure, so
      optimistic lookups may return a currently-reserved element — exactly
      what a locked search would do. Callers that need the payload stable
      must go through {!reserve_existing}/{!with_element} as usual. *)

open Hector
open Locks

type granularity = Hybrid | Coarse | Fine | Sharded

val granularity_name : granularity -> string

type 'a elem = {
  key : int;
  status : Cell.t; (* header word: reserve bits *)
  elem_lock : Spin_lock.t option; (* Fine mode only *)
  home : int;
  payload : 'a;
  mutable reserver : int;
      (** Processor holding the write reservation, -1 when none — host-side
          bookkeeping the crash sweep ({!recover}) uses to tell an orphaned
          reservation from a live one. *)
}

type 'a t

(** [create machine ~lock_algo ~homes] makes a table whose storage (lock
    word, bin heads, elements) lives on PMMs drawn from [homes] — the lock
    and its neighbours, as a real table occupies a contiguous region.
    [make] callbacks receive the chosen element home. [vname] prefixes the
    table's {!Verify.lock_class} names (coarse lock [<vname>.lock], bins
    [<vname>.bin], element locks [<vname>.elem], reserve bits
    [<vname>.reserve]; under [Sharded], shard locks [<vname>.shard<i>] and
    seqlocks [<vname>.seq<i>] — one class per shard, so contention profiles
    attribute waits to individual shards), giving each table its own place
    in the lock-order graph.

    [shards] is only meaningful with [~granularity:Sharded] (ignored
    otherwise) and must be in [1, nbins]; shard [s]'s lock, sequence word
    and bin heads are homed on [homes.(s mod length homes)]. *)
val create :
  ?granularity:granularity ->
  ?nbins:int ->
  ?shards:int ->
  ?vname:string ->
  lock_algo:Lock.algo ->
  homes:int list ->
  Machine.t ->
  'a t

val granularity : 'a t -> granularity
val size : 'a t -> int
val searches : 'a t -> int
val probes : 'a t -> int

(** Times a reserver found the element already reserved and had to wait. *)
val reserve_conflicts : 'a t -> int

(** {!lookup}s served entirely by the optimistic (unlocked) read path. *)
val optimistic_hits : 'a t -> int

(** {!lookup}s that sampled a writer-busy sequence word or failed
    validation and fell back to the locked path. *)
val optimistic_fallbacks : 'a t -> int

val coarse_lock : 'a t -> Lock.t

(** Shard count: 1 unless the granularity is [Sharded]. *)
val shards : 'a t -> int

(** The shard a key's bin belongs to ([bin_of_key mod shards]). *)
val shard_of_key : 'a t -> int -> int

(** Shard [s]'s coarse lock / sequence word. Only meaningful under
    [Sharded]; raises [Invalid_argument] otherwise (empty arrays). *)
val shard_lock : 'a t -> int -> Lock.t

val seqlock : 'a t -> int -> Seqlock.t

(** The bin for a key: multiplicative hash reduced with
    {!Clustering.positive_mod}, so it is total and in [0, nbins) for every
    key including [min_int] (where the previous [abs _ mod _] reduction
    went negative). Exposed for property tests. *)
val bin_of_key : 'a t -> int -> int

(** Run [f] with the coarse lock held and the soft interrupt mask set.
    Exception-safe: the lock is released and the mask cleared if [f]
    raises. *)
val with_coarse : 'a t -> Ctx.t -> (unit -> 'b) -> 'b

(** Search a chain; requires the protecting lock (or [with_coarse]).
    Charges one read of the bin head plus one per element examined. *)
val search_locked : Ctx.t -> 'a t -> int -> 'a elem option

(** Acquire the key's protecting lock (table lock, or shard lock under
    [Sharded]), search, reserve; retry through reserve-bit waits. [None] if
    absent. *)
val reserve_existing : 'a t -> Ctx.t -> int -> 'a elem option

(** Like {!reserve_existing} but inserts a *reserved placeholder* under the
    same lock hold when the key is absent — the combining-tree trick of
    Section 2.2. *)
val reserve_or_insert :
  'a t ->
  Ctx.t ->
  int ->
  make:(int -> 'a) ->
  [ `Inserted of 'a elem | `Reserved of 'a elem ]

(** Non-blocking reservation, for RPC service handlers (Section 2.3): a
    reserved element yields [`Would_deadlock] instead of waiting. *)
val try_reserve_existing :
  'a t -> Ctx.t -> int -> [ `Absent | `Reserved of 'a elem | `Would_deadlock ]

(** Clear an element's reservation (plain store). *)
val release_reserve : Ctx.t -> 'a elem -> unit

(** Remove a key under the protecting lock; the caller holds the element's
    reservation, which dies with it. *)
val remove : 'a t -> Ctx.t -> int -> bool

(** Insert a fresh, unreserved element. *)
val insert : 'a t -> Ctx.t -> int -> make:(int -> 'a) -> 'a elem

(** Read-only lookup. Under [Sharded] this is the optimistic read path
    described above (unlocked probe validated by the shard's seqlock,
    locked fallback on conflict); under every other granularity it is
    {!lookup_locked}. *)
val lookup : 'a t -> Ctx.t -> int -> 'a elem option

(** Search under the key's protecting lock (bin spin lock in [Fine] mode).
    The pessimistic path {!lookup} falls back to. *)
val lookup_locked : 'a t -> Ctx.t -> int -> 'a elem option

(** Run [f] on the element under the configured granularity's protection:
    reserve bit (Hybrid / Sharded), the coarse lock (Coarse), or
    bin+element spin locks (Fine). [None] if the key is absent. All arms
    release their locks (and reservation) if [f] raises. *)
val with_element : 'a t -> Ctx.t -> int -> ('a elem -> 'b) -> 'b option

(** Untimed setup insertion (pre-populating before a run). *)
val insert_untimed : 'a t -> int -> status0:int -> make:(int -> 'a) -> 'a elem

(** Untimed iteration/membership, for tests and invariant checks. *)
val iter_untimed : 'a t -> ('a elem -> unit) -> unit

val mem_untimed : 'a t -> int -> bool

(** Crash repair: force the release of every protecting lock whose holder
    has fail-stopped (coarse, shard, and Fine-mode bin / element locks),
    roll forward any shard sequence word a dead writer left odd (so
    optimistic readers resume instead of falling back forever), and clear
    reserve bits whose recorded owner is dead. Per shard, the sequence
    word is repaired {e before} the shard lock changes hands, so the next
    writer's [write_begin] finds it even. Returns the number of repairs
    performed; free when no processor has died. *)
val recover : 'a t -> Ctx.t -> int
