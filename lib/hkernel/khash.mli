(** Chained hash table under the hybrid coarse-grain/fine-grain locking
    strategy of Figures 1 and 2.

    A single coarse lock protects the whole table but is held only long
    enough to search a chain and set a reserve bit in the found element; the
    reserve bit then protects the element for the long operation. Waiters on
    a reserved element release the coarse lock, spin on the status word with
    backoff, and re-search.

    The [Coarse] and [Fine] granularities implement the strategies the
    hybrid is compared against (experiment ABL1). Every coarse-lock hold
    sets the processor's soft interrupt mask, so RPC service handlers can
    never deadlock against the lock their own processor holds
    (Section 3.2). *)

open Hector
open Locks

type granularity = Hybrid | Coarse | Fine

val granularity_name : granularity -> string

type 'a elem = {
  key : int;
  status : Cell.t; (* header word: reserve bits *)
  elem_lock : Spin_lock.t option; (* Fine mode only *)
  home : int;
  payload : 'a;
}

type 'a t

(** [create machine ~lock_algo ~homes] makes a table whose storage (lock
    word, bin heads, elements) lives on PMMs drawn from [homes] — the lock
    and its neighbours, as a real table occupies a contiguous region.
    [make] callbacks receive the chosen element home. [vname] prefixes the
    table's {!Verify.lock_class} names (coarse lock [<vname>.lock], bins
    [<vname>.bin], element locks [<vname>.elem], reserve bits
    [<vname>.reserve]), giving each table its own place in the lock-order
    graph. *)
val create :
  ?granularity:granularity ->
  ?nbins:int ->
  ?vname:string ->
  lock_algo:Lock.algo ->
  homes:int list ->
  Machine.t ->
  'a t

val granularity : 'a t -> granularity
val size : 'a t -> int
val searches : 'a t -> int
val probes : 'a t -> int

(** Times a reserver found the element already reserved and had to wait. *)
val reserve_conflicts : 'a t -> int

val coarse_lock : 'a t -> Lock.t

(** Run [f] with the coarse lock held and the soft interrupt mask set. *)
val with_coarse : 'a t -> Ctx.t -> (unit -> 'b) -> 'b

(** Search a chain; requires the coarse lock (or [with_coarse]). Charges one
    read of the bin head plus one per element examined. *)
val search_locked : Ctx.t -> 'a t -> int -> 'a elem option

(** Acquire the coarse lock, search, reserve; retry through reserve-bit
    waits. [None] if absent. *)
val reserve_existing : 'a t -> Ctx.t -> int -> 'a elem option

(** Like {!reserve_existing} but inserts a *reserved placeholder* under the
    same lock hold when the key is absent — the combining-tree trick of
    Section 2.2. *)
val reserve_or_insert :
  'a t ->
  Ctx.t ->
  int ->
  make:(int -> 'a) ->
  [ `Inserted of 'a elem | `Reserved of 'a elem ]

(** Non-blocking reservation, for RPC service handlers (Section 2.3): a
    reserved element yields [`Would_deadlock] instead of waiting. *)
val try_reserve_existing :
  'a t -> Ctx.t -> int -> [ `Absent | `Reserved of 'a elem | `Would_deadlock ]

(** Clear an element's reservation (plain store). *)
val release_reserve : Ctx.t -> 'a elem -> unit

(** Remove a key under the coarse lock; the caller holds the element's
    reservation, which dies with it. *)
val remove : 'a t -> Ctx.t -> int -> bool

(** Insert a fresh, unreserved element. *)
val insert : 'a t -> Ctx.t -> int -> make:(int -> 'a) -> 'a elem

(** Run [f] on the element under the configured granularity's protection:
    reserve bit (Hybrid), the coarse lock (Coarse), or bin+element spin
    locks (Fine). [None] if the key is absent. *)
val with_element : 'a t -> Ctx.t -> int -> ('a elem -> 'b) -> 'b option

(** Untimed setup insertion (pre-populating before a run). *)
val insert_untimed : 'a t -> int -> status0:int -> make:(int -> 'a) -> 'a elem

(** Untimed iteration/membership, for tests and invariant checks. *)
val iter_untimed : 'a t -> ('a elem -> unit) -> unit

val mem_untimed : 'a t -> int -> bool
