(* The memory manager: soft page faults, unmapping, and page-level
   coherence across clusters.

   A soft fault (the page is in core but unmapped) follows the paper's
   hybrid-locking pattern end to end:

   1. exception entry and region lookup (a brief coarse-lock hold);
   2. the cluster's page-descriptor hash is searched under its coarse lock
      and the descriptor *reserved* (Figure 1b); if the page has no local
      descriptor yet, a reserved placeholder is inserted under the same lock
      hold, so concurrent local faulters wait on the placeholder instead of
      issuing redundant remote requests — the combining tree of Section 2.2;
   3. if the local replica's validity is insufficient, ownership or data is
      obtained from the page's master cluster by RPC under the *optimistic*
      deadlock-avoidance protocol: our reserve bit is held across the RPC; a
      remote service that runs into a reserved descriptor fails with
      [Would_deadlock] instead of waiting; the initiator then releases its
      reserve bits, backs off and retries (Section 2.3);
   4. write ownership also invalidates the other clusters' replicas. The
      *initiator* (never an interrupt handler) sends those RPCs, so no
      processor is ever held across a nested wait — the processor-as-locked-
      resource deadlock of Section 2.3. While the invalidations are in
      flight the master keeps its own descriptor reserved on the initiator's
      behalf; a confirm RPC releases it. The master's own replica is
      invalidated inline by the master service (it holds that reserve
      already), never by an RPC that would trip over it;
   5. the page-table update runs under the processor's page-table lock and
      the replica's reference count is adjusted under the reserve bit.

   The [lockless] kernel variant runs the same path with every lock and
   reserve operation skipped: the difference calibrates the paper's "40 us
   of a 160 us page fault is locking" anchor. *)

open Hector
open Locks

let region_lookup_work = 16

(* -- page-table update --------------------------------------------------- *)

(* Mapping a page splits between local work (the processor's page table)
   and descriptor-bound work (validating and updating the descriptor's
   words, on the descriptor's home module). *)
let map_page k ctx desc =
  let p = Ctx.proc ctx in
  let costs = Kernel.costs k in
  let desc_home = Cell.home desc.Page.refcount in
  let pte_lock = Kernel.pte_lock k p in
  pte_lock.Lock.acquire ctx;
  Ctx.write ctx (Kernel.pte_cell k p) (desc.Page.vpage lor 0x1);
  Kernel.kernel_work k ctx (costs.Costs.map_page * 3 / 5);
  pte_lock.Lock.release ctx;
  Kernel.struct_work k ctx ~home:desc_home (costs.Costs.map_page * 2 / 5);
  (* Count the mapping in the cluster replica, under the reserve bit. *)
  let rc = Ctx.read ctx desc.Page.refcount in
  Ctx.write ctx desc.Page.refcount (rc + 1)

let unmap_pte k ctx desc =
  let p = Ctx.proc ctx in
  let costs = Kernel.costs k in
  let pte_lock = Kernel.pte_lock k p in
  pte_lock.Lock.acquire ctx;
  Ctx.write ctx (Kernel.pte_cell k p) 0;
  Kernel.kernel_work k ctx (costs.Costs.unmap_page / 2);
  pte_lock.Lock.release ctx;
  Kernel.struct_work k ctx ~home:(Cell.home desc.Page.refcount)
    (costs.Costs.unmap_page / 2);
  let rc = Ctx.read ctx desc.Page.refcount in
  Ctx.write ctx desc.Page.refcount (max 0 (rc - 1))

(* -- RPC services (run in the target's interrupt context; never wait) ---- *)

(* Master-side: grant [req_cluster] a replica (read) or write ownership of
   [vpage].

   Read: the requester is added to the sharer set; if some other cluster
   held write ownership, it must be downgraded — its cluster bit is returned
   and the ownership cleared. The master reserve is released immediately.

   Write: the sharer set collapses to the requester; the master's own
   replica is invalidated inline; the bits of the other replicas to
   invalidate are returned, and the master descriptor STAYS reserved for the
   requester until its confirm call, so no competing transfer can interleave
   with the invalidations. *)
let master_acquire_service k ~vpage ~req_cluster ~write tctx =
  let cd = Kernel.local_cluster k tctx in
  let my_cluster = cd.Kernel.c_id in
  if write then begin
    match Khash.try_reserve_existing cd.Kernel.page_hash tctx vpage with
    | `Absent -> Rpc.Absent
    | `Would_deadlock -> Rpc.Would_deadlock
    | `Reserved e ->
      let d = e.Khash.payload in
      Kernel.kernel_work k tctx (Kernel.costs k).Costs.directory_update;
      let sharers = Ctx.read tctx d.Page.dir_sharers in
      (* Invalidate our own replica inline if we held one. *)
      if Page.has_sharer sharers my_cluster then begin
        Ctx.write tctx d.Page.vstate Page.st_invalid;
        Kernel.kernel_work k tctx (Kernel.costs k).Costs.shootdown
      end;
      let mask =
        Page.remove_sharer (Page.remove_sharer sharers my_cluster) req_cluster
      in
      Ctx.write tctx d.Page.dir_owner (req_cluster + 1);
      Ctx.write tctx d.Page.dir_sharers (Page.sharer_bit req_cluster);
      (* Reserve deliberately kept: the requester's confirm releases it. *)
      Rpc.Ok mask
  end
  else begin
    (* Read grants need no element reservation at all: the directory update
       is a few stores, done entirely under the coarse lock — the hybrid
       strategy's "multiple simple atomic operations under a single lock".
       The reserve bit is consulted read-only: a write transfer in flight
       (element write-reserved) still fails the call. *)
    let hash = cd.Kernel.page_hash in
    Khash.with_coarse hash tctx (fun () ->
        match Khash.search_locked tctx hash vpage with
        | None -> Rpc.Absent
        | Some e ->
          if Locks.Reserve.is_reserved tctx e.Khash.status then
            Rpc.Would_deadlock
          else begin
            let d = e.Khash.payload in
            Kernel.kernel_work k tctx (Kernel.costs k).Costs.directory_update;
            let sharers = Ctx.read tctx d.Page.dir_sharers in
            let owner = Ctx.read tctx d.Page.dir_owner in
            (* Any write exclusivity ends with a new read replica —
               including the master's own copy, downgraded inline. *)
            let own_state = Ctx.read tctx d.Page.vstate in
            if own_state > Page.st_valid_read then
              Ctx.write tctx d.Page.vstate Page.st_valid_read;
            let downgrade =
              if
                owner <> 0 && owner - 1 <> req_cluster
                && owner - 1 <> my_cluster
              then Page.sharer_bit (owner - 1)
              else 0
            in
            if owner <> 0 then Ctx.write tctx d.Page.dir_owner 0;
            Ctx.write tctx d.Page.dir_sharers
              (Page.add_sharer sharers req_cluster);
            Rpc.Ok downgrade
          end)
  end

(* Release the reservation the master held on the requester's behalf. *)
let confirm_release_service k ~vpage tctx =
  let cd = Kernel.local_cluster k tctx in
  let hash = cd.Kernel.page_hash in
  let found =
    Khash.with_coarse hash tctx (fun () -> Khash.search_locked tctx hash vpage)
  in
  match found with
  | None -> Rpc.Absent
  | Some e ->
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* Sharer-side: demote this cluster's replica of [vpage] to [to_state]
   (invalid for ownership transfer, valid-read for a downgrade). *)
let demote_service k ~vpage ~to_state tctx =
  let cd = Kernel.local_cluster k tctx in
  match Khash.try_reserve_existing cd.Kernel.page_hash tctx vpage with
  | `Absent -> Rpc.Ok 0
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let d = e.Khash.payload in
    let st = Ctx.read tctx d.Page.vstate in
    if st > to_state then Ctx.write tctx d.Page.vstate to_state;
    Kernel.kernel_work k tctx (Kernel.costs k).Costs.shootdown;
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* -- fault path ----------------------------------------------------------- *)

(* Exponential, jittered backoff before retrying a conflicted remote
   operation: a pure delay (the processor is waiting, not touching kernel
   data), capped at ~500 us so congested transfers decongest. *)
let retry_pause k ctx attempt =
  Kernel.count_retry k;
  let b = (Kernel.costs k).Costs.retry_backoff in
  let base = min (b * (1 lsl min attempt 6)) 8000 in
  Ctx.interruptible_pause ctx
    (base + Eventsim.Rng.int (Ctx.rng ctx) (max 1 base))

(* Fast path used by the lockless calibration probe: assumes a valid local
   descriptor (private pages). *)
let lockless_fault k ctx ~vpage =
  let cd = Kernel.local_cluster k ctx in
  match Khash.search_locked ctx cd.Kernel.page_hash vpage with
  | None -> failwith "lockless_fault: page not populated"
  | Some e ->
    let d = e.Khash.payload in
    ignore (Ctx.read ctx d.Page.vstate);
    let p = Ctx.proc ctx in
    Ctx.write ctx (Kernel.pte_cell k p) (vpage lor 0x1);
    Kernel.kernel_work k ctx (Kernel.costs k).Costs.map_page;
    let rc = Ctx.read ctx d.Page.refcount in
    Ctx.write ctx d.Page.refcount (rc + 1)

(* Static location resolution: the master cluster of a page, from untimed
   model bookkeeping (the paper abstracts this as a "data specific location
   resolution technique"; its cost is inside the fault-entry padding). *)
let resolve_master k ~vpage ~my_cluster =
  match Kernel.find_descriptor_untimed k ~cluster:my_cluster ~vpage with
  | Some e -> e.Khash.payload.Page.master_cluster
  | None ->
    let n = Clustering.n_clusters (Kernel.clustering k) in
    let rec find c =
      if c >= n then failwith "fault: page not populated anywhere"
      else
        match Kernel.find_descriptor_untimed k ~cluster:c ~vpage with
        | Some e -> e.Khash.payload.Page.master_cluster
        | None -> find (c + 1)
    in
    find 0

let fault k ctx ~vpage ~write =
  Kernel.count_fault k;
  let costs = Kernel.costs k in
  Kernel.kernel_work k ctx costs.Costs.fault_entry;
  let cd = Kernel.local_cluster k ctx in
  (* The faulting process's descriptor is locked for the duration of the
     trap decode. *)
  let pd_lock = Kernel.proc_desc_lock k (Ctx.proc ctx) in
  pd_lock.Lock.acquire ctx;
  Ctx.work ctx 6;
  pd_lock.Lock.release ctx;
  (* Address-space, region and file-cache lookups: three brief
     coarse-lock holds on the way to the page descriptor. *)
  cd.Kernel.as_lock.Lock.acquire ctx;
  Ctx.work ctx 8;
  cd.Kernel.as_lock.Lock.release ctx;
  cd.Kernel.region_lock.Lock.acquire ctx;
  Ctx.work ctx region_lookup_work;
  cd.Kernel.region_lock.Lock.release ctx;
  cd.Kernel.fcm_lock.Lock.acquire ctx;
  Ctx.work ctx 10;
  cd.Kernel.fcm_lock.Lock.release ctx;
  if Kernel.lockless k then lockless_fault k ctx ~vpage
  else begin
    let clustering = Kernel.clustering k in
    let my_cluster = cd.Kernel.c_id in
    let needed = if write then Page.st_valid_write else Page.st_valid_read in
    let master = resolve_master k ~vpage ~my_cluster in
    let make_placeholder home =
      Page.make (Kernel.machine k) ~home ~vpage ~frame:vpage
        ~master_cluster:master ~vstate:Page.st_invalid
    in
    let rpc_to cluster service =
      Kernel.count_fault_rpc k;
      let target =
        Clustering.rpc_target clustering ~from:(Ctx.proc ctx)
          ~target_cluster:cluster
      in
      Rpc.call (Kernel.rpc k) ctx ~target service
    in
    (* Demotions owed from an earlier attempt survive retries: once the
       master directory records the transfer, the mask must not be lost when
       the optimistic protocol forces a release-and-retry. While the mask is
       owed, the master descriptor stays reserved on our behalf. *)
    let owed = ref None in
    let rec attempt n =
      match
        Khash.reserve_or_insert cd.Kernel.page_hash ctx vpage
          ~make:make_placeholder
      with
      | `Inserted e | `Reserved e -> (
        let d = e.Khash.payload in
        let st = Ctx.read ctx d.Page.vstate in
        if st >= needed && !owed = None then begin
          map_page k ctx d;
          Khash.release_reserve ctx e
        end
        else begin
          let fetch_needed = st = Page.st_invalid in
          let step_master () =
            match !owed with
            | Some _ -> `Proceed
            | None ->
              if master = my_cluster then begin
                (* We are the master: the directory lives in the descriptor
                   we already hold reserved. *)
                Ctx.work ctx costs.Costs.directory_update;
                let sharers = Ctx.read ctx d.Page.dir_sharers in
                if write then begin
                  let mask = Page.remove_sharer sharers my_cluster in
                  Ctx.write ctx d.Page.dir_owner (my_cluster + 1);
                  Ctx.write ctx d.Page.dir_sharers
                    (Page.sharer_bit my_cluster);
                  owed := Some mask
                end
                else begin
                  let owner = Ctx.read ctx d.Page.dir_owner in
                  let downgrade =
                    if owner <> 0 && owner - 1 <> my_cluster then
                      Page.sharer_bit (owner - 1)
                    else 0
                  in
                  if downgrade <> 0 then Ctx.write ctx d.Page.dir_owner 0;
                  Ctx.write ctx d.Page.dir_sharers
                    (Page.add_sharer sharers my_cluster);
                  owed := Some downgrade
                end;
                `Proceed
              end
              else begin
                match
                  rpc_to master
                    (master_acquire_service k ~vpage ~req_cluster:my_cluster
                       ~write)
                with
                | Rpc.Absent -> failwith "fault: master lost the page"
                | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target -> `Retry
                | Rpc.Ok mask ->
                  if fetch_needed then begin
                    Kernel.count_replication k;
                    (* Copying the payload writes into the new replica. *)
                    Kernel.struct_work k ctx
                      ~home:(Cell.home d.Page.refcount)
                      costs.Costs.replicate_copy
                  end;
                  owed := Some mask;
                  `Proceed
              end
          in
          match step_master () with
          | `Retry ->
            Khash.release_reserve ctx e;
            retry_pause k ctx n;
            attempt (n + 1)
          | `Proceed -> (
            (* Demote the other clusters' replicas, one RPC each; a conflict
               forces a release-and-retry of our own replica (the master-side
               reservation persists, so the transfer cannot be stolen). *)
            let to_state =
              if write then Page.st_invalid else Page.st_valid_read
            in
            let rec demote_all mask =
              match Page.sharers_to_list mask with
              | [] -> `Done
              | c :: _ ->
                if c = my_cluster || c = master then
                  (* Our own copy is the one being upgraded; the master's
                     copy was demoted inline by the master service. *)
                  let mask' = Page.remove_sharer mask c in
                  (owed := Some mask';
                   demote_all mask')
                else begin
                  match rpc_to c (demote_service k ~vpage ~to_state) with
                  | Rpc.Absent | Rpc.Ok _ ->
                    Kernel.count_invalidation k;
                    let mask' = Page.remove_sharer mask c in
                    owed := Some mask';
                    demote_all mask'
                  | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target -> `Conflict
                end
            in
            let mask = Option.value !owed ~default:0 in
            let rec demote_with_retries mask n =
              match demote_all mask with
              | `Conflict when master = my_cluster ->
                (* We are the master: our reservation IS the transfer guard
                   that keeps competing ownership transfers out, so it must
                   persist across demote retries (the conflicting side
                   releases, so cycles still break). *)
                retry_pause k ctx n;
                demote_with_retries (Option.value !owed ~default:0) (n + 1)
              | (`Conflict | `Done) as r -> r
            in
            match demote_with_retries mask n with
            | `Conflict ->
              Khash.release_reserve ctx e;
              retry_pause k ctx n;
              attempt (n + 1)
            | `Done ->
              owed := None;
              (* Write transfers leave the master descriptor reserved for
                 us; confirm to release it. *)
              if write && master <> my_cluster then
                ignore (rpc_to master (confirm_release_service k ~vpage));
              Ctx.write ctx d.Page.vstate needed;
              map_page k ctx d;
              Khash.release_reserve ctx e)
        end)
    in
    attempt 1
  end;
  Kernel.kernel_work k ctx costs.Costs.fault_exit

let unmap k ctx ~vpage =
  let cd = Kernel.local_cluster k ctx in
  if Kernel.lockless k then begin
    match Khash.search_locked ctx cd.Kernel.page_hash vpage with
    | None -> ()
    | Some e ->
      let d = e.Khash.payload in
      let p = Ctx.proc ctx in
      Ctx.write ctx (Kernel.pte_cell k p) 0;
      Kernel.kernel_work k ctx (Kernel.costs k).Costs.unmap_page;
      let rc = Ctx.read ctx d.Page.refcount in
      Ctx.write ctx d.Page.refcount (max 0 (rc - 1))
  end
  else
    match Khash.reserve_existing cd.Kernel.page_hash ctx vpage with
    | None -> ()
    | Some e ->
      unmap_pte k ctx e.Khash.payload;
      Khash.release_reserve ctx e

(* -- no-combining read fault (ablation ABL2) ------------------------------ *)

(* Read fault that bypasses the combining tree: a processor that misses (or
   finds an invalid replica) goes to the master itself instead of waiting on
   the cluster placeholder's reserve bit, so simultaneous missers in one
   cluster each pay an RPC and the master absorbs per-processor (not
   per-cluster) demand. Used only by the combining ablation. *)
let read_fault_no_combining k ctx ~vpage =
  Kernel.count_fault k;
  let costs = Kernel.costs k in
  Kernel.kernel_work k ctx costs.Costs.fault_entry;
  let cd = Kernel.local_cluster k ctx in
  let pd_lock = Kernel.proc_desc_lock k (Ctx.proc ctx) in
  pd_lock.Lock.acquire ctx;
  Ctx.work ctx 6;
  pd_lock.Lock.release ctx;
  cd.Kernel.region_lock.Lock.acquire ctx;
  Ctx.work ctx region_lookup_work;
  cd.Kernel.region_lock.Lock.release ctx;
  let clustering = Kernel.clustering k in
  let my_cluster = cd.Kernel.c_id in
  let master = resolve_master k ~vpage ~my_cluster in
  let fresh_state () =
    let found =
      Khash.with_coarse cd.Kernel.page_hash ctx (fun () ->
          Khash.search_locked ctx cd.Kernel.page_hash vpage)
    in
    match found with
    | Some e when Cell.peek e.Khash.payload.Page.vstate >= Page.st_valid_read
      ->
      `Valid e
    | Some e -> `Invalid e
    | None -> `Missing
  in
  let rec attempt n =
    match fresh_state () with
    | `Valid e ->
      (* Raced with someone who filled it; still a redundant RPC may have
         been paid by us earlier. *)
      map_page k ctx e.Khash.payload
    | `Invalid _ | `Missing -> (
      if master = my_cluster then begin
        (* Local master: just validate under a reservation. *)
        match Khash.reserve_existing cd.Kernel.page_hash ctx vpage with
        | None -> failwith "read_fault_no_combining: master lost the page"
        | Some e ->
          map_page k ctx e.Khash.payload;
          Khash.release_reserve ctx e
      end
      else begin
        (* Go remote without coordinating with other local missers. *)
        Kernel.count_fault_rpc k;
        let target =
          Clustering.rpc_target clustering ~from:(Ctx.proc ctx)
            ~target_cluster:master
        in
        match
          Rpc.call (Kernel.rpc k) ctx ~target
            (master_acquire_service k ~vpage ~req_cluster:my_cluster
               ~write:false)
        with
        | Rpc.Absent -> failwith "read_fault_no_combining: master lost page"
        | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
          retry_pause k ctx n;
          attempt (n + 1)
        | Rpc.Ok _downgrade -> (
          Kernel.count_replication k;
          match
            Khash.reserve_or_insert cd.Kernel.page_hash ctx vpage
              ~make:(fun home ->
                Page.make (Kernel.machine k) ~home ~vpage ~frame:vpage
                  ~master_cluster:master ~vstate:Page.st_invalid)
          with
          | `Inserted e | `Reserved e ->
            let d = e.Khash.payload in
            Kernel.struct_work k ctx ~home:(Cell.home d.Page.refcount)
              costs.Costs.replicate_copy;
            let st = Ctx.read ctx d.Page.vstate in
            if st < Page.st_valid_read then
              Ctx.write ctx d.Page.vstate Page.st_valid_read;
            map_page k ctx d;
            Khash.release_reserve ctx e)
      end)
  in
  attempt 1;
  Kernel.kernel_work k ctx costs.Costs.fault_exit

(* -- copy-on-write faults (Sections 2.3 / 2.5) ------------------------------ *)

(* A COW page: many processes map one physical page read-only; the first
   write by each must break the sharing — decrement the shared page's
   share count and instantiate a private copy. Simultaneous COW faults on
   the same page from different clusters are the paper's canonical retry
   source: with the optimistic strategy the initiator holds its reserve
   across the share-count RPC and retries on conflict; with the pessimistic
   strategy it releases first and may find "its copy of the page had
   disappeared by the time it completed its remote operation".

   The shared descriptor lives at its master cluster; its [refcount] is the
   share count here. When the count drops to zero the master removes the
   descriptor — that removal is what pessimistic re-validation observes as
   disappearance. *)

type cow_outcome = Broke | Already_gone

(* Master-side: drop one share of [vpage]; remove the descriptor when the
   last share goes. Never waits. *)
let cow_unshare_service k ~vpage tctx =
  let cd = Kernel.local_cluster k tctx in
  match Khash.try_reserve_existing cd.Kernel.page_hash tctx vpage with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let d = e.Khash.payload in
    let n = Ctx.read tctx d.Page.refcount in
    if n <= 1 then begin
      (* Last sharer: the shared page dies. *)
      ignore (Khash.remove cd.Kernel.page_hash tctx vpage);
      Khash.release_reserve tctx e;
      Rpc.Ok 0
    end
    else begin
      Ctx.write tctx d.Page.refcount (n - 1);
      Khash.release_reserve tctx e;
      Rpc.Ok (n - 1)
    end

(* Break copy-on-write sharing of [vpage] for the calling processor:
   allocate the private page, drop our share at the master, and map the
   private copy. [private_vpage] names the new private page (created in the
   local cluster, mastered locally). Returns [Broke] on success or
   [Already_gone] if the shared page vanished first (pessimistic only —
   optimistic callers hold their reserve, so the page cannot vanish under
   them).

   [degrade_after] (0 = never) bounds the optimistic attempts: past that
   many conflicts the fault switches to the pessimistic release-everything
   protocol, so a stalled remote holder costs bounded optimistic spinning
   rather than an unbounded reserve-and-retry loop. *)
let cow_fault ?(degrade_after = 0) k ctx ~strategy ~vpage ~private_vpage =
  Kernel.count_fault k;
  let costs = Kernel.costs k in
  Kernel.kernel_work k ctx costs.Costs.fault_entry;
  let cd = Kernel.local_cluster k ctx in
  let clustering = Kernel.clustering k in
  let my_cluster = cd.Kernel.c_id in
  let master = resolve_master k ~vpage ~my_cluster in
  let rpc_to cluster service =
    Kernel.count_fault_rpc k;
    let target =
      Clustering.rpc_target clustering ~from:(Ctx.proc ctx)
        ~target_cluster:cluster
    in
    Rpc.call (Kernel.rpc k) ctx ~target service
  in
  (* Instantiate the private page first (the paper's rule: create the local
     instance before going remote so cluster-mates do not duplicate the
     work). *)
  let fresh_private () =
    match
      Khash.reserve_or_insert cd.Kernel.page_hash ctx private_vpage
        ~make:(fun home ->
          Page.make (Kernel.machine k) ~home ~vpage:private_vpage
            ~frame:private_vpage ~master_cluster:my_cluster
            ~vstate:Page.st_valid_write)
    with
    | `Inserted e | `Reserved e -> e
  in
  let unshare () =
    if master = my_cluster then cow_unshare_service k ~vpage ctx
    else rpc_to master (cow_unshare_service k ~vpage)
  in
  let finish priv =
    let d = priv.Khash.payload in
    Ctx.write ctx d.Page.vstate Page.st_valid_write;
    Kernel.struct_work k ctx
      ~home:(Cell.home d.Page.refcount)
      costs.Costs.replicate_copy (* copy the page contents *);
    map_page k ctx d;
    Khash.release_reserve ctx priv
  in
  let rec attempt n =
    if n > 1000 then failwith "Memmgr.cow_fault: livelock";
    let strategy =
      if degrade_after > 0 && n > degrade_after then begin
        if strategy = Procs.Optimistic && n = degrade_after + 1 then
          Kernel.count_degradation k;
        Procs.Pessimistic
      end
      else strategy
    in
    match strategy with
    | Procs.Optimistic -> (
      (* Hold the private placeholder's reserve across the unshare. *)
      let priv = fresh_private () in
      match unshare () with
      | Rpc.Ok _ | Rpc.Absent ->
        (* Absent: someone else took the last share first; our private copy
           is still the right outcome. *)
        finish priv;
        Kernel.kernel_work k ctx costs.Costs.fault_exit;
        Broke
      | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
        Khash.release_reserve ctx priv;
        retry_pause k ctx n;
        attempt (n + 1))
    | Procs.Pessimistic -> (
      (* Release everything before going remote... *)
      match unshare () with
      | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
        retry_pause k ctx n;
        attempt (n + 1)
      | (Rpc.Ok _ | Rpc.Absent) as r ->
        (* ...then re-establish state: search the shared descriptor again,
           prepared for it to be gone (the paper's §2.3 overhead that the
           optimistic protocol avoids in the common case). [Ok 0] means we
           removed it ourselves — not a disappearance. *)
        let probe () =
          let search_service tctx =
            let mcd = Kernel.cluster k master in
            Khash.with_coarse mcd.Kernel.page_hash tctx (fun () ->
                match Khash.search_locked tctx mcd.Kernel.page_hash vpage with
                | Some _ -> Rpc.Ok 1
                | None -> Rpc.Absent)
          in
          if master = my_cluster then search_service ctx
          else rpc_to master search_service
        in
        let disappeared =
          match r with
          | Rpc.Absent -> true
          | Rpc.Ok 0 -> false (* the last share was ours *)
          | _ -> probe () = Rpc.Absent
        in
        if disappeared then
          (* Handle the no-longer-present case: extra bookkeeping the
             optimistic strategy never pays. *)
          Kernel.kernel_work k ctx (costs.Costs.directory_update * 2);
        let priv = fresh_private () in
        finish priv;
        Kernel.kernel_work k ctx costs.Costs.fault_exit;
        if disappeared then Already_gone else Broke)
  in
  attempt 1
