(* The simulated HURRICANE kernel instance.

   One [t] wires together the machine, one execution context per processor,
   the clustering layout, and a complete set of kernel data structures per
   cluster (Section 2.2): the page-descriptor hash table with its coarse
   lock, a region lock, and per-processor page-table locks.

   [lock_algo] selects the algorithm backing every coarse-grained kernel
   lock — the independent/shared fault experiments (Figure 7) sweep this
   between distributed locks and exponential-backoff spin locks. *)

open Eventsim
open Hector
open Locks

type cluster_data = {
  c_id : int;
  procs : int list;
  as_lock : Lock.t; (* address space descriptor, held briefly *)
  region_lock : Lock.t; (* region list, held briefly *)
  fcm_lock : Lock.t; (* file cache manager (mapped-file metadata) *)
  page_hash : Page.pdesc Khash.t;
  scratch : Cell.t array;
      (* stand-in for the cluster's uncached kernel data: page tables,
         region lists, descriptors the padding work walks *)
}

type t = {
  machine : Machine.t;
  clustering : Clustering.t;
  costs : Costs.t;
  ctxs : Ctx.t array;
  rpc : Rpc.t;
  clusters : cluster_data array;
  proc_desc_locks : Lock.t array; (* the faulting process's descriptor *)
  pte_locks : Lock.t array; (* one per processor's page table *)
  pte_cells : Cell.t array; (* the page-table word the fault path updates *)
  local_scratch : Cell.t array; (* per-processor kernel data (page tables etc.) *)
  pmm_scratch : Cell.t array; (* stand-in words for structures homed per PMM *)
  lock_algo : Lock.algo;
  lockless : bool; (* calibration probe: skip all locks and reserve bits *)
  mutable faults : int;
  mutable fault_rpcs : int;
  mutable retries : int; (* optimistic-protocol retries *)
  mutable replications : int; (* descriptors replicated to a cluster *)
  mutable invalidations : int; (* replicas invalidated for write ownership *)
  mutable degradations : int; (* optimistic ops that fell back to pessimistic *)
}

let create ?(costs = Costs.default) ?(lock_algo = Lock.Mcs_h2)
    ?(granularity = Khash.Hybrid) ?(lockless = false) ?(nbins = 64)
    ?(seed = 1234) machine ~cluster_size =
  let n = Machine.n_procs machine in
  let clustering = Clustering.create ~n_procs:n ~cluster_size in
  let rng = Rng.create seed in
  let ctxs = Array.init n (fun p -> Ctx.create machine ~proc:p (Rng.split rng)) in
  let algo = if lockless then Lock.Null else lock_algo in
  let clusters =
    Array.init (Clustering.n_clusters clustering) (fun c ->
        let procs = Clustering.procs_of_cluster clustering c in
        let home salt =
          Clustering.home_in_cluster clustering ~cluster:c ~salt
        in
        {
          c_id = c;
          procs;
          as_lock = Lock.make machine ~home:(home 2) ~vclass:"kernel.as" algo;
          region_lock =
            Lock.make machine ~home:(home 1) ~vclass:"kernel.region" algo;
          fcm_lock = Lock.make machine ~home:(home 3) ~vclass:"kernel.fcm" algo;
          page_hash =
            Khash.create machine ~granularity ~nbins ~vname:"kernel.pages"
              ~lock_algo:algo ~homes:procs;
          scratch =
            Array.init 32 (fun i ->
                Machine.alloc machine
                  ~label:(Printf.sprintf "kdata%d.%d" c i)
                  ~home:(home i) 0);
        })
  in
  let t =
  {
    machine;
    clustering;
    costs;
    ctxs;
    rpc = Rpc.create machine ctxs costs;
    clusters;
    proc_desc_locks =
      Array.init n (fun p -> Lock.make machine ~home:p ~vclass:"kernel.pd" algo);
    pte_locks =
      Array.init n (fun p -> Lock.make machine ~home:p ~vclass:"kernel.pte" algo);
    pte_cells =
      Array.init n (fun p ->
          Machine.alloc machine ~label:(Printf.sprintf "pte%d" p) ~home:p 0);
    local_scratch =
      Array.init n (fun p ->
          Machine.alloc machine ~label:(Printf.sprintf "klocal%d" p) ~home:p 0);
    pmm_scratch =
      Array.init n (fun p ->
          Machine.alloc machine ~label:(Printf.sprintf "kpmm%d" p) ~home:p 0);
    lock_algo = algo;
    lockless;
    faults = 0;
    fault_rpcs = 0;
    retries = 0;
    replications = 0;
    invalidations = 0;
    degradations = 0;
  }
  in
  t

let machine t = t.machine
let engine t = Machine.engine t.machine
let clustering t = t.clustering
let costs t = t.costs
let rpc t = t.rpc
let lock_algo t = t.lock_algo
let lockless t = t.lockless

let ctx t p = t.ctxs.(p)
let n_procs t = Array.length t.ctxs

let cluster t c = t.clusters.(c)
let cluster_of_proc t p = Clustering.cluster_of_proc t.clustering p
let local_cluster t ctx = t.clusters.(cluster_of_proc t (Ctx.proc ctx))

let proc_desc_lock t p = t.proc_desc_locks.(p)
let pte_lock t p = t.pte_locks.(p)
let pte_cell t p = t.pte_cells.(p)

let faults t = t.faults
let fault_rpcs t = t.fault_rpcs
let retries t = t.retries
let replications t = t.replications
let invalidations t = t.invalidations
let degradations t = t.degradations

(* Install (or clear) a fault plan machine-wide: memory hot-spots at the
   machine layer, delay/loss and the reply timeout at the RPC layer. *)
let install_fault_plan t plan =
  Machine.set_fault_plan t.machine plan;
  Rpc.set_fault_plan t.rpc plan

(* Install (or remove) a lockdep checker machine-wide; every lock family
   and reserve bit reports to it from then on. *)
let install_verify t v = Machine.set_verify t.machine v

(* Kernel execution is memory-bound: the MC88100 runs with kernel data
   uncached, so padding work is charged as interleaved accesses to kernel
   data plus a few compute cycles per access. Most of that data (page
   tables, the process's own structures) is local to the executing
   processor; roughly a quarter of the accesses walk cluster-shared
   structures spread over the cluster's memory. Under load the shared part
   queues behind lock traffic at the memory modules and interconnect — the
   coupling that lets remote spinning stretch kernel operations (Section
   2.1). [cycles] is the uncontended duration. *)
let kernel_work t ctx cycles =
  let cd = t.clusters.(cluster_of_proc t (Ctx.proc ctx)) in
  let scratch = cd.scratch in
  let n = Array.length scratch in
  let proc = Ctx.proc ctx in
  let local = t.local_scratch.(proc) in
  let start = Machine.now t.machine in
  let rng = Ctx.rng ctx in
  let rec step i =
    if Machine.now t.machine - start < cycles then begin
      let c = if i land 7 = 0 then scratch.(Rng.int rng n) else local in
      if i land 15 = 0 then Ctx.write ctx c i else ignore (Ctx.read ctx c);
      Ctx.work ctx 6;
      step (i + 1)
    end
  in
  step 1

(* Work bound to a structure homed on a particular PMM — mapping a page
   reads and writes its descriptor's words repeatedly, so those accesses
   land on the descriptor's module and queue behind whatever lock traffic
   loads it. *)
let struct_work t ctx ~home cycles =
  let cell = t.pmm_scratch.(home) in
  let start = Machine.now t.machine in
  let rec step i =
    if Machine.now t.machine - start < cycles then begin
      if i land 3 = 0 then Ctx.write ctx cell i else ignore (Ctx.read ctx cell);
      Ctx.work ctx 6;
      step (i + 1)
    end
  in
  step 1

let count_fault t = t.faults <- t.faults + 1
let count_fault_rpc t = t.fault_rpcs <- t.fault_rpcs + 1
let count_retry t = t.retries <- t.retries + 1
let count_replication t = t.replications <- t.replications + 1
let count_invalidation t = t.invalidations <- t.invalidations + 1
let count_degradation t = t.degradations <- t.degradations + 1

(* Spawn idle RPC-service loops on every processor not in [active], so RPCs
   directed at them are served. The membership test is a host-side bitset
   indexed by processor id — O(1) per context instead of scanning the
   [active] list once per processor. *)
let spawn_idle_except t ~active =
  let is_active = Array.make (Array.length t.ctxs) false in
  List.iter
    (fun p ->
      if p >= 0 && p < Array.length is_active then is_active.(p) <- true)
    active;
  Array.iter
    (fun c ->
      if not is_active.(Ctx.proc c) then
        Process.spawn (engine t) (fun () -> Ctx.idle_loop c))
    t.ctxs

(* Pre-populate a page descriptor at its master cluster (untimed setup).
   The master starts with a valid-for-write copy, itself as owner and sole
   sharer. *)
let populate_page t ~vpage ~master_cluster ~frame =
  let cd = t.clusters.(master_cluster) in
  let make home =
    let desc =
      Page.make t.machine ~home ~vpage ~frame ~master_cluster
        ~vstate:Page.st_valid_write
    in
    Cell.poke desc.Page.dir_owner (master_cluster + 1);
    Cell.poke desc.Page.dir_sharers (Page.sharer_bit master_cluster);
    desc
  in
  ignore (Khash.insert_untimed cd.page_hash vpage ~status0:0 ~make)

(* Untimed: the master-cluster descriptor for a page, for assertions. *)
let find_descriptor_untimed t ~cluster ~vpage =
  let cd = t.clusters.(cluster) in
  let found = ref None in
  Khash.iter_untimed cd.page_hash (fun e ->
      if e.Khash.key = vpage then found := Some e);
  !found

(* The RPC layer's marshal/dispatch cycles are kernel code too: route them
   through the memory-bound worker. Done here (after [kernel_work] exists)
   and re-exported as the real constructor. *)
let create ?costs ?lock_algo ?granularity ?lockless ?nbins ?seed machine
    ~cluster_size =
  let t =
    create ?costs ?lock_algo ?granularity ?lockless ?nbins ?seed machine
      ~cluster_size
  in
  Rpc.set_work t.rpc (fun ctx cycles -> kernel_work t ctx cycles);
  t
