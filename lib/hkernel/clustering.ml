(* Hierarchical clustering: partition the machine's processors into
   clusters. A complete set of kernel data structures is instantiated per
   cluster; only processors inside a cluster touch its structures directly,
   and cross-cluster work travels by RPC (i-th processor to i-th processor,
   to balance the RPC load — Section 2.2). *)

type t = {
  cluster_size : int;
  n_clusters : int;
  n_procs : int;
}

let create ~n_procs ~cluster_size =
  if cluster_size <= 0 || cluster_size > n_procs then
    invalid_arg
      (Printf.sprintf "Clustering.create: bad cluster size %d (procs %d)"
         cluster_size n_procs);
  let n_clusters = (n_procs + cluster_size - 1) / cluster_size in
  { cluster_size; n_clusters; n_procs }

let cluster_size t = t.cluster_size
let n_clusters t = t.n_clusters
let n_procs t = t.n_procs

let cluster_of_proc t p =
  if p < 0 || p >= t.n_procs then
    invalid_arg (Printf.sprintf "Clustering.cluster_of_proc: bad proc %d" p);
  p / t.cluster_size

(* Index of a processor within its cluster. *)
let index_in_cluster t p = p mod t.cluster_size

let check_cluster t c =
  if c < 0 || c >= t.n_clusters then
    invalid_arg (Printf.sprintf "Clustering: bad cluster %d" c)

(* Clusters are consecutive processor ranges, so membership is index
   arithmetic — these sit on the RPC/homing hot path, where walking a
   freshly built list was O(cluster size) per call. Only the last cluster
   can be short. *)
let size_of_cluster t c =
  check_cluster t c;
  min t.cluster_size (t.n_procs - (c * t.cluster_size))

let procs_of_cluster t c =
  let first = c * t.cluster_size in
  List.init (size_of_cluster t c) (fun i -> first + i)

(* The paper's load-balancing rule: an RPC from the i-th processor of the
   source cluster goes to the i-th processor of the target cluster. *)
let rpc_target t ~from ~target_cluster =
  let i = index_in_cluster t from in
  (target_cluster * t.cluster_size) + (i mod size_of_cluster t target_cluster)

(* Euclidean modulus: total for every int (including [min_int]) and always
   in [0, len).  [abs salt mod len] is NOT — [abs min_int] is still
   negative — which bit this module's salts once and [Khash.bin_of_key]'s
   multiplicative hash after it; both now reduce through this one
   function so the fix cannot diverge again. *)
let positive_mod salt len =
  let i = salt mod len in
  if i < 0 then i + len else i

(* A PMM within cluster [c] to home a structure on, spread round-robin by
   [salt] so cluster data is distributed over the cluster's memory. The
   salt is arbitrary (hashes, negative deltas), hence the Euclidean
   reduction. *)
let home_in_cluster t ~cluster ~salt =
  let len = size_of_cluster t cluster in
  (cluster * t.cluster_size) + positive_mod salt len

(* This clustering as the topology a NUMA-aware lock is built against
   ([Lock.make ~topo]), so the lock's hand-off locality follows the
   kernel's cluster boundaries rather than the hardware stations. *)
let topo t =
  Locks.Lock_core.topo ~n_clusters:t.n_clusters ~cluster_of:(cluster_of_proc t)

let pp ppf t =
  Format.fprintf ppf "%d clusters of %d (over %d procs)" t.n_clusters
    t.cluster_size t.n_procs
