(* A file server built from the paper's techniques (Section 5.1: "We have
   applied the techniques described in this paper to several of our system
   servers, in particular the file system, and have found the benefits of
   reduced latency and increased concurrency ... apply.").

   Structure, all per cluster (hierarchical clustering):
   - an open-file table: a hybrid-locked hash of file descriptors,
     replicated on demand from the file's home cluster, each replica with
     its own open count;
   - a block cache: a hybrid-locked hash of cached file blocks. A miss
     inserts a reserved placeholder (combining: one fetch per cluster no
     matter how many local readers want the block) and fetches the data by
     RPC from the file's home cluster, optionally with read-ahead.

   File data is read-mostly (a 1994 file cache's job is mapping cached
   executables and libraries); a rewrite bumps the home version and
   broadcasts invalidations to the caching clusters — the page directory's
   write path in a simpler, version-based form. *)

open Hector

(* Cached-block payload. *)
type block = {
  b_file : int;
  b_index : int;
  version : Cell.t; (* 0 = placeholder, not yet filled *)
}

(* Open-file descriptor (per-cluster replica). *)
type ofile = {
  f_file : int;
  mutable f_blocks : int; (* file length, filled on first open *)
  opens : Cell.t; (* per-cluster open count *)
}

(* Home-side file metadata. *)
type home_file = {
  h_blocks : int;
  h_version : Cell.t;
  h_caching : Cell.t; (* bitmask of clusters caching blocks *)
}

type t = {
  kernel : Kernel.t;
  block_caches : block Khash.t array; (* per cluster *)
  open_tables : ofile Khash.t array; (* per cluster *)
  homes : (int, home_file) Hashtbl.t; (* file -> home metadata *)
  read_ahead : int; (* extra blocks fetched per miss *)
  mutable reads : int;
  mutable hits : int;
  mutable fetches : int; (* blocks transferred from homes *)
  mutable fetch_rpcs : int;
  mutable invalidated_blocks : int;
}

let block_key ~file ~index = (file * 10_000) + index

let create ?(read_ahead = 0) kernel =
  let clustering = Kernel.clustering kernel in
  let machine = Kernel.machine kernel in
  let mk nbins vname () =
    Array.init (Clustering.n_clusters clustering) (fun c ->
        Khash.create machine ~nbins ~vname
          ~lock_algo:(Kernel.lock_algo kernel)
          ~homes:(Clustering.procs_of_cluster clustering c))
  in
  {
    kernel;
    block_caches = mk 128 "fsrv.blocks" ();
    open_tables = mk 32 "fsrv.open" ();
    homes = Hashtbl.create 16;
    read_ahead;
    reads = 0;
    hits = 0;
    fetches = 0;
    fetch_rpcs = 0;
    invalidated_blocks = 0;
  }

let reads t = t.reads
let hits t = t.hits
let fetches t = t.fetches
let fetch_rpcs t = t.fetch_rpcs
let invalidated_blocks t = t.invalidated_blocks

let hit_rate t =
  if t.reads = 0 then 0.0 else float_of_int t.hits /. float_of_int t.reads

let home_cluster t file =
  file mod Clustering.n_clusters (Kernel.clustering t.kernel)

(* Untimed setup: create a file of [blocks] blocks at its home cluster. *)
let create_file_untimed t ~file ~blocks =
  if Hashtbl.mem t.homes file then invalid_arg "Fserver: file exists";
  let clustering = Kernel.clustering t.kernel in
  let home = home_cluster t file in
  let cell v =
    Cell.make
      ~home:(Clustering.home_in_cluster clustering ~cluster:home ~salt:file)
      v
  in
  Hashtbl.replace t.homes file
    { h_blocks = blocks; h_version = cell 1; h_caching = cell 0 }

let file_exists t file = Hashtbl.mem t.homes file

let file_version_untimed t file =
  match Hashtbl.find_opt t.homes file with
  | None -> 0
  | Some h -> Cell.peek h.h_version

let my_cluster t ctx =
  Clustering.cluster_of_proc (Kernel.clustering t.kernel) (Ctx.proc ctx)

let rpc_to_cluster t ctx cluster service =
  let target =
    Clustering.rpc_target (Kernel.clustering t.kernel) ~from:(Ctx.proc ctx)
      ~target_cluster:cluster
  in
  Rpc.call (Kernel.rpc t.kernel) ctx ~target service

(* -- home-side services (never wait) ---------------------------------------- *)

(* Register the requester as a caching cluster; reply with the file length
   (version * 1e6 + blocks, packed). *)
let home_open_service t ~file ~req_cluster tctx =
  match Hashtbl.find_opt t.homes file with
  | None -> Rpc.Absent
  | Some h ->
    Kernel.kernel_work t.kernel tctx 80 (* inode lookup *);
    let caching = Ctx.read tctx h.h_caching in
    Ctx.write tctx h.h_caching (Page.add_sharer caching req_cluster);
    let v = Ctx.read tctx h.h_version in
    Rpc.Ok ((v * 1_000_000) + h.h_blocks)

(* Transfer up to [count] blocks starting at [index] to [req_cluster],
   registering it as a caching cluster; replies with the number
   transferred (version * 1e6 + n, packed). *)
let home_fetch_service t ~file ~index ~count ~req_cluster tctx =
  match Hashtbl.find_opt t.homes file with
  | None -> Rpc.Absent
  | Some h ->
    if index >= h.h_blocks then Rpc.Absent
    else begin
      let n = min count (h.h_blocks - index) in
      (* Per-block copy out of the home's cache. *)
      Kernel.kernel_work t.kernel tctx (60 + (180 * n));
      let caching = Ctx.read tctx h.h_caching in
      if not (Page.has_sharer caching req_cluster) then
        Ctx.write tctx h.h_caching (Page.add_sharer caching req_cluster);
      let v = Ctx.read tctx h.h_version in
      Rpc.Ok ((v * 1_000_000) + n)
    end

(* Drop this cluster's cached blocks of [file]. Fails with a deadlock
   indication if any of them is reserved (a fetch in flight). *)
let invalidate_file_service t ~file tctx =
  let c = my_cluster t tctx in
  let cache = t.block_caches.(c) in
  let mine = ref [] in
  Khash.iter_untimed cache (fun e ->
      if e.Khash.payload.b_file = file then mine := e :: !mine);
  if
    List.exists
      (fun e -> Locks.Reserve.write_reserved e.Khash.status)
      !mine
  then Rpc.Would_deadlock
  else begin
    List.iter
      (fun (e : block Khash.elem) ->
        ignore (Khash.remove cache tctx e.Khash.key);
        t.invalidated_blocks <- t.invalidated_blocks + 1)
      !mine;
    Rpc.Ok (List.length !mine)
  end

(* -- client operations -------------------------------------------------------- *)

(* Open a file: find or replicate the descriptor in the local open table
   and count the open. Returns the length in blocks, or None if the file
   does not exist. *)
let open_file t ctx ~file =
  let c = my_cluster t ctx in
  let table = t.open_tables.(c) in
  match
    Khash.reserve_or_insert table ctx file ~make:(fun home ->
        {
          f_file = file;
          f_blocks = 0;
          opens = Cell.make ~home 0;
        })
  with
  | `Reserved e ->
    let f = e.Khash.payload in
    let n = Ctx.read ctx f.opens in
    Ctx.write ctx f.opens (n + 1);
    Khash.release_reserve ctx e;
    Some f.f_blocks
  | `Inserted e ->
    (* First open in this cluster: replicate the descriptor from home. *)
    let f = e.Khash.payload in
    let outcome =
      if home_cluster t file = c then home_open_service t ~file ~req_cluster:c ctx
      else
        rpc_to_cluster t ctx (home_cluster t file)
          (home_open_service t ~file ~req_cluster:c)
    in
    (match outcome with
    | Rpc.Ok packed ->
      f.f_blocks <- packed mod 1_000_000;
      Ctx.write ctx f.opens 1;
      Khash.release_reserve ctx e;
      Some f.f_blocks
    | Rpc.Absent | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
      (* No such file: drop the placeholder. *)
      ignore (Khash.remove table ctx file);
      Khash.release_reserve ctx e;
      None)

let close_file t ctx ~file =
  let c = my_cluster t ctx in
  match Khash.reserve_existing t.open_tables.(c) ctx file with
  | None -> ()
  | Some e ->
    let f = e.Khash.payload in
    let n = Ctx.read ctx f.opens in
    Ctx.write ctx f.opens (max 0 (n - 1));
    Khash.release_reserve ctx e

let open_count_untimed t ~cluster ~file =
  let found = ref 0 in
  Khash.iter_untimed t.open_tables.(cluster) (fun e ->
      if e.Khash.key = file then found := Cell.peek e.Khash.payload.opens);
  !found

(* Read one block: hit in the cluster cache, or fetch it (plus read-ahead)
   from the file's home. Concurrent local misses combine on the
   placeholder's reserve bit. Returns false if the block does not exist. *)
let read_block t ctx ~file ~index =
  t.reads <- t.reads + 1;
  let c = my_cluster t ctx in
  let cache = t.block_caches.(c) in
  let make_placeholder idx home =
    { b_file = file; b_index = idx; version = Cell.make ~home 0 }
  in
  match
    Khash.reserve_or_insert cache ctx (block_key ~file ~index)
      ~make:(make_placeholder index)
  with
  | `Reserved e ->
    let b = e.Khash.payload in
    let v = Ctx.read ctx b.version in
    if v > 0 then begin
      t.hits <- t.hits + 1;
      (* Copy to the user: local work. *)
      Kernel.kernel_work t.kernel ctx 120;
      Khash.release_reserve ctx e;
      true
    end
    else begin
      (* A placeholder left by a failed fetch: drop it and report. *)
      ignore (Khash.remove cache ctx (block_key ~file ~index));
      Khash.release_reserve ctx e;
      false
    end
  | `Inserted e -> (
    (* Miss: fetch this block and [read_ahead] more. *)
    t.fetch_rpcs <- t.fetch_rpcs + 1;
    let count = 1 + t.read_ahead in
    let home = home_cluster t file in
    let outcome =
      if home = c then
        home_fetch_service t ~file ~index ~count ~req_cluster:c ctx
      else
        rpc_to_cluster t ctx home
          (home_fetch_service t ~file ~index ~count ~req_cluster:c)
    in
    match outcome with
    | Rpc.Ok packed ->
      let v = packed / 1_000_000 and n = packed mod 1_000_000 in
      t.fetches <- t.fetches + n;
      (* Install the fetched blocks: ours first... *)
      Kernel.struct_work t.kernel ctx ~home:e.Khash.home 150;
      Ctx.write ctx e.Khash.payload.version v;
      (* ...then the read-ahead blocks, skipping any that are present or
         being fetched by someone else. *)
      for ahead = 1 to n - 1 do
        let idx = index + ahead in
        match
          Khash.reserve_or_insert cache ctx (block_key ~file ~index:idx)
            ~make:(make_placeholder idx)
        with
        | `Inserted e2 ->
          Kernel.struct_work t.kernel ctx ~home:e2.Khash.home 90;
          Ctx.write ctx e2.Khash.payload.version v;
          Khash.release_reserve ctx e2
        | `Reserved e2 ->
          (* Already cached (or racing): leave it be. *)
          Khash.release_reserve ctx e2
      done;
      Kernel.kernel_work t.kernel ctx 120 (* copy to the user *);
      Khash.release_reserve ctx e;
      true
    | Rpc.Absent | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
      ignore (Khash.remove cache ctx (block_key ~file ~index));
      Khash.release_reserve ctx e;
      false)

(* Rewrite a file: bump the home version and invalidate every caching
   cluster's blocks, with the optimistic retry protocol. Must be called
   from a processor of the file's home cluster. *)
let rewrite_file t ctx ~file =
  let c = my_cluster t ctx in
  if home_cluster t file <> c then
    invalid_arg "Fserver.rewrite_file: must run at the file's home cluster";
  match Hashtbl.find_opt t.homes file with
  | None -> false
  | Some h ->
    let v = Ctx.read ctx h.h_version in
    Ctx.write ctx h.h_version (v + 1);
    let mask = Ctx.read ctx h.h_caching in
    let rec invalidate todo n =
      match Page.sharers_to_list todo with
      | [] -> ()
      | d :: _ when d = c ->
        (* Our own cache: invalidate inline. *)
        ignore (invalidate_file_service t ~file ctx);
        invalidate (Page.remove_sharer todo d) n
      | d :: _ -> (
        match rpc_to_cluster t ctx d (invalidate_file_service t ~file) with
        | Rpc.Ok _ | Rpc.Absent -> invalidate (Page.remove_sharer todo d) n
        | Rpc.Dead_target ->
          (* The sharer's service processor fail-stopped: its cache dies
             with it, so the invalidation is moot — drop it from the mask
             instead of retrying into a corpse forever. *)
          invalidate (Page.remove_sharer todo d) n
        | Rpc.Would_deadlock | Rpc.Gave_up ->
          Kernel.count_retry t.kernel;
          Ctx.interruptible_pause ctx (200 * min n 8);
          invalidate todo (n + 1))
    in
    invalidate mask 1;
    Ctx.write ctx h.h_caching (Page.sharer_bit c);
    true
