(** Hierarchical clustering: the partition of processors into clusters,
    each holding a complete instance of the kernel data structures
    (Section 2.2). *)

type t

(** [create ~n_procs ~cluster_size] partitions processors [0, n_procs) into
    consecutive clusters of [cluster_size] (the last may be smaller).
    @raise Invalid_argument if the size is out of range. *)
val create : n_procs:int -> cluster_size:int -> t

val cluster_size : t -> int
val n_clusters : t -> int
val n_procs : t -> int

val cluster_of_proc : t -> int -> int

(** Position of a processor within its cluster. *)
val index_in_cluster : t -> int -> int

val procs_of_cluster : t -> int -> int list
val size_of_cluster : t -> int -> int

(** The paper's load-balancing rule: RPCs from the i-th processor of the
    source cluster go to the i-th processor of the target cluster. *)
val rpc_target : t -> from:int -> target_cluster:int -> int

(** Euclidean modulus: [positive_mod salt len] is in [0, len) for every
    [salt], including [min_int] (where [abs salt mod len] stays negative).
    The one shared reduction for arbitrary salts/hashes — used by
    {!home_in_cluster} and {!Khash}'s bin hash. *)
val positive_mod : int -> int -> int

(** A PMM within [cluster] to home a structure on, chosen by [salt] so a
    cluster's structures spread over its memory. *)
val home_in_cluster : t -> cluster:int -> salt:int -> int

(** This clustering as a lock topology: pass to [Lock.make ~topo] so a
    NUMA-aware lock's hand-off locality follows the kernel's cluster
    boundaries rather than the hardware stations. *)
val topo : t -> Locks.Lock_core.topo

val pp : Format.formatter -> t -> unit
