(* Chained hash table under the hybrid locking strategy (Figures 1 and 2).

   In the default [Hybrid] mode a single coarse-grained lock protects the
   whole table, but it is held only long enough to search a chain and flip a
   reserve bit in the target element; the element then stays reserved (a
   fine-grain, one-bit lock) for the long part of the operation. Waiters for
   a reserved element release the coarse lock and spin on the element's
   status word with exponential backoff, then re-acquire the coarse lock and
   search again — the element may have moved or died in between.

   The two ablation modes implement the strategies the hybrid is compared
   against in Section 2.4:
   - [Coarse]: the coarse lock is held across the whole operation;
   - [Fine]:   per-bin spin locks plus a per-element spin lock (Figure 1a),
               with bin-then-element ordering.

   [Sharded] scales the hybrid: the bin array is split into [shards] groups,
   each protected by its own coarse lock homed on a distinct PMM — the
   paper's clustering idea applied *within* one table, so reserve-bit dances
   on different shards never touch the same lock word or memory module. On
   top of each shard sits a {!Locks.Seqlock}: chain-mutating writers bump it
   inside the shard lock, and read-only lookups ({!lookup}) probe the chain
   with plain loads, validating the sequence afterwards and falling back to
   the locked path on conflict.

   Chain traversal charges one timed read per element examined (the header
   word holding key and status), so long chains and remote bins cost what
   they should. *)

open Hector
open Locks

type granularity = Hybrid | Coarse | Fine | Sharded

let granularity_name = function
  | Hybrid -> "hybrid"
  | Coarse -> "coarse"
  | Fine -> "fine"
  | Sharded -> "sharded"

type 'a elem = {
  key : int;
  status : Cell.t; (* header word: reserve bits *)
  elem_lock : Spin_lock.t option; (* Fine mode only *)
  home : int;
  payload : 'a;
  mutable reserver : int;
      (* processor holding the write reservation, -1 when none. Host-side
         bookkeeping only — on real hardware the owner is implicit in the
         thread that set the bit; the simulator records it so a crash
         sweep can tell an orphaned reservation from a live one. *)
}

type 'a t = {
  machine : Machine.t;
  granularity : granularity;
  nbins : int;
  nshards : int; (* 1 unless [Sharded] *)
  bins : 'a elem list array;
  bin_heads : Cell.t array; (* chain-head words, co-located with the lock *)
  lock : Lock.t; (* coarse table lock (Hybrid / Coarse) *)
  shard_locks : Lock.t array; (* Sharded: one coarse lock per shard *)
  seqlocks : Seqlock.t array; (* Sharded: per-shard sequence words *)
  bin_locks : Spin_lock.t array; (* Fine mode *)
  backoff : Backoff.t; (* for reserve-bit waiters *)
  homes : int array; (* the cluster's PMMs (for Fine-mode bin locks) *)
  elem_homes : int array; (* PMMs the table's storage lives on *)
  mutable next_home : int;
  mutable n_elems : int;
  mutable searches : int;
  mutable probes : int;
  mutable reserve_conflicts : int; (* found element reserved, had to wait *)
  mutable optimistic_hits : int; (* lookups served by the unlocked path *)
  mutable optimistic_fallbacks : int; (* lookups that fell back to the lock *)
  rcls : Verify.lock_class; (* lock-order class of this table's reserve bits *)
  elem_vclass : string; (* class name for Fine-mode element locks *)
}

let fine_backoff machine =
  Backoff.of_us (Machine.config machine) ~max_us:35.0 ()

(* Multiplicative hash, reduced with the shared Euclidean modulus: [abs
   (key * knuth) mod nbins] overflows to [min_int] for adversarial keys,
   where [abs] is a no-op and the "bin" goes negative — the same pathology
   {!Clustering.positive_mod} was introduced for. *)
let bin_of_key t key = Clustering.positive_mod (key * 2654435761) t.nbins

let create ?(granularity = Hybrid) ?(nbins = 64) ?(shards = 4)
    ?(vname = "khash") ~lock_algo ~homes machine =
  if homes = [] then invalid_arg "Khash.create: empty home list";
  if nbins <= 0 then invalid_arg "Khash.create: nbins must be positive";
  let nshards = match granularity with Sharded -> shards | _ -> 1 in
  if nshards <= 0 || nshards > nbins then
    invalid_arg
      (Printf.sprintf "Khash.create: bad shard count %d (nbins %d)" nshards
         nbins);
  let homes = Array.of_list homes in
  (* The table is a unit (Figure 2): its lock word, bin heads and elements
     live together in the cluster's memory, on the PMM mid-cluster and its
     neighbour. Holders therefore walk the same modules that waiters'
     lock-word traffic loads — the coupling behind the paper's second-order
     effects. In [Sharded] mode each shard group (lock, sequence word and
     bin heads) is instead homed on its own PMM, so shards load distinct
     memory modules. *)
  let lock_home = homes.(Array.length homes / 2) in
  let shard_home s = homes.(s mod Array.length homes) in
  let shard_of_bin b = b mod nshards in
  let elem_homes =
    let n = Array.length homes in
    if n = 1 then [| lock_home |]
    else [| lock_home; homes.(((n / 2) + 1) mod n) |]
  in
  {
    machine;
    granularity;
    nbins;
    nshards;
    bins = Array.make nbins [];
    bin_heads =
      Array.init nbins (fun i ->
          let home =
            match granularity with
            | Sharded -> shard_home (shard_of_bin i)
            | Hybrid | Coarse | Fine -> lock_home
          in
          Machine.alloc machine ~label:(Printf.sprintf "binhead%d" i) ~home 0);
    lock = Lock.make machine ~home:lock_home ~vclass:(vname ^ ".lock") lock_algo;
    shard_locks =
      (match granularity with
      | Sharded ->
        Array.init nshards (fun s ->
            Lock.make machine ~home:(shard_home s)
              ~vclass:(Printf.sprintf "%s.shard%d" vname s)
              lock_algo)
      | Hybrid | Coarse | Fine -> [||]);
    seqlocks =
      (match granularity with
      | Sharded ->
        Array.init nshards (fun s ->
            Seqlock.create machine ~home:(shard_home s)
              ~vclass:(Printf.sprintf "%s.seq%d" vname s)
              ())
      | Hybrid | Coarse | Fine -> [||]);
    bin_locks =
      (match granularity with
      | Fine ->
        Array.init nbins (fun i ->
            Spin_lock.create machine
              ~home:homes.(i mod Array.length homes)
              ~vclass:(vname ^ ".bin")
              (fine_backoff machine))
      | Hybrid | Coarse | Sharded -> [||]);
    backoff = fine_backoff machine;
    homes;
    elem_homes;
    next_home = 0;
    n_elems = 0;
    searches = 0;
    probes = 0;
    reserve_conflicts = 0;
    optimistic_hits = 0;
    optimistic_fallbacks = 0;
    rcls = Verify.lock_class (vname ^ ".reserve");
    elem_vclass = vname ^ ".elem";
  }

let granularity t = t.granularity
let size t = t.n_elems
let searches t = t.searches
let probes t = t.probes
let reserve_conflicts t = t.reserve_conflicts
let optimistic_hits t = t.optimistic_hits
let optimistic_fallbacks t = t.optimistic_fallbacks
let coarse_lock t = t.lock
let shards t = t.nshards
let shard_of_key t key = bin_of_key t key mod t.nshards
let shard_lock t s = t.shard_locks.(s)
let seqlock t s = t.seqlocks.(s)

let pick_home t =
  let h = t.elem_homes.(t.next_home mod Array.length t.elem_homes) in
  t.next_home <- t.next_home + 1;
  h

(* -- operations that require the protecting lock to be held ------------- *)

(* Search a chain: one read of the bin-head word (which lives beside the
   lock, as the table header does on real hardware), then one header read
   per element examined. *)
let search_locked_status ctx t key =
  t.searches <- t.searches + 1;
  ignore (Ctx.read ctx t.bin_heads.(bin_of_key t key));
  let costs_probe e =
    t.probes <- t.probes + 1;
    let v = Ctx.read ctx e.status in
    Ctx.instr ctx ~reg:1 ~br:1 ();
    v
  in
  let rec go = function
    | [] -> None
    | e :: rest ->
      let v = costs_probe e in
      if e.key = key then Some (e, v) else go rest
  in
  go t.bins.(bin_of_key t key)

let search_locked ctx t key =
  Option.map fst (search_locked_status ctx t key)

(* The seqlock covering [key]'s shard, when the granularity has one. Chain
   mutations bump it inside the shard lock so unlocked readers can detect
   overlap. *)
let seq_of_key t key =
  match t.granularity with
  | Sharded -> Some t.seqlocks.(shard_of_key t key)
  | Hybrid | Coarse | Fine -> None

let seq_write_begin t ctx key =
  match seq_of_key t key with
  | Some sq -> Seqlock.write_begin sq ctx
  | None -> ()

let seq_write_end t ctx key =
  match seq_of_key t key with
  | Some sq -> Seqlock.write_end sq ctx
  | None -> ()

(* Insert a fresh element; [status0] seeds the status word (e.g. already
   reserved, for placeholder descriptors — the combining-tree trick).
   [make] builds the payload given the element's home PMM, so payload cells
   can be co-located with the element. *)
let insert_locked ctx t key ~status0 ~make =
  let home = pick_home t in
  let payload = make home in
  let elem =
    {
      key;
      status = Machine.alloc t.machine ~label:(Printf.sprintf "h%d" key) ~home status0;
      elem_lock =
        (match t.granularity with
        | Fine ->
          Some
            (Spin_lock.create t.machine ~home ~vclass:t.elem_vclass
               (fine_backoff t.machine))
        | Hybrid | Coarse | Sharded -> None);
      home;
      payload;
      reserver = (if status0 land 1 <> 0 then Ctx.proc ctx else -1);
    }
  in
  let b = bin_of_key t key in
  seq_write_begin t ctx key;
  t.bins.(b) <- elem :: t.bins.(b);
  t.n_elems <- t.n_elems + 1;
  (* Link the element into the chain: one header write. *)
  Ctx.write ctx elem.status status0;
  seq_write_end t ctx key;
  (* A placeholder born reserved (the combining-tree trick) belongs to its
     inserter from this moment; tell the checker, since no [try_reserve]
     will ever run for it. *)
  if status0 land 1 <> 0 then begin
    Vhook.on ctx (fun v ->
        Verify.reserve_set v ~proc:(Ctx.proc ctx) ~cls:t.rcls
          ~word:(Cell.id elem.status) ~label:(Cell.label elem.status)
          ~now:(Ctx.now ctx));
    Vhook.obs ctx (fun o ->
        Obs.reserve_set o ~proc:(Ctx.proc ctx) ~cls:t.rcls
          ~word:(Cell.id elem.status) ~now:(Ctx.now ctx))
  end;
  elem

let remove_locked ctx t key =
  let b = bin_of_key t key in
  let found = ref false in
  seq_write_begin t ctx key;
  t.bins.(b) <-
    List.filter
      (fun e ->
        if e.key = key && not !found then begin
          found := true;
          false
        end
        else true)
      t.bins.(b);
  if !found then begin
    t.n_elems <- t.n_elems - 1;
    (* Unlink write. *)
    Ctx.work ctx 10
  end;
  seq_write_end t ctx key;
  !found

(* -- hybrid-mode public operations --------------------------------------- *)

(* Every coarse-lock hold sets the processor's soft interrupt mask first
   (Stodolsky et al., Section 3.2): an RPC service that would otherwise be
   taken mid-hold — and spin on the very lock its host processor holds — is
   deferred to the per-processor work queue and runs when the mask clears.
   The flag sits at the top of the lock hierarchy. The hold is
   exception-protected: a raising [f] must not leave the lock held and the
   mask set, or it wedges every other processor in the cluster. *)
let with_coarse t ctx f = Lock.with_lock_masked t.lock ctx f

(* The lock protecting [key]: the table lock, or [key]'s shard lock under
   [Sharded]. Same hold discipline (soft mask, exception-protected). *)
let with_key_locked t ctx key f =
  match t.granularity with
  | Sharded -> Lock.with_lock_masked t.shard_locks.(shard_of_key t key) ctx f
  | Hybrid | Coarse | Fine -> with_coarse t ctx f

(* Acquire the protecting lock, search, and reserve the element, retrying
   the whole dance whenever the element is found reserved by someone else
   (Figure 1b). Returns [None] if the key is absent. *)
let rec reserve_existing t ctx key =
  let outcome =
    with_key_locked t ctx key (fun () ->
        match search_locked_status ctx t key with
        | None -> `Absent
        | Some (e, st) ->
          if Reserve.try_reserve ~known:st ~cls:t.rcls ctx e.status then begin
            e.reserver <- Ctx.proc ctx;
            `Got e
          end
          else `Busy e)
  in
  match outcome with
  | `Absent -> None
  | `Got e -> Some e
  | `Busy e ->
    t.reserve_conflicts <- t.reserve_conflicts + 1;
    Reserve.spin_until_clear ~cls:t.rcls ctx t.backoff e.status;
    reserve_existing t ctx key

(* Like [reserve_existing], but when the key is absent insert a reserved
   placeholder built by [make] under the same coarse-lock hold, so exactly
   one processor per cluster goes remote for the data while the others wait
   on the placeholder's reserve bit. *)
let rec reserve_or_insert t ctx key ~make =
  let outcome =
    with_key_locked t ctx key (fun () ->
        match search_locked_status ctx t key with
        | None -> `New (insert_locked ctx t key ~status0:1 ~make)
        | Some (e, st) ->
          if Reserve.try_reserve ~known:st ~cls:t.rcls ctx e.status then begin
            e.reserver <- Ctx.proc ctx;
            `Got e
          end
          else `Busy e)
  in
  match outcome with
  | `New e -> `Inserted e
  | `Got e -> `Reserved e
  | `Busy e ->
    t.reserve_conflicts <- t.reserve_conflicts + 1;
    Reserve.spin_until_clear ~cls:t.rcls ctx t.backoff e.status;
    reserve_or_insert t ctx key ~make

(* Non-blocking reservation attempt: used by RPC service handlers, which
   must fail with a potential-deadlock indication rather than spin
   (Section 2.3). *)
let try_reserve_existing t ctx key =
  let outcome =
    with_key_locked t ctx key (fun () ->
        match search_locked_status ctx t key with
        | None -> `Absent
        | Some (e, st) ->
          if Reserve.try_reserve ~known:st ~cls:t.rcls ctx e.status then begin
            e.reserver <- Ctx.proc ctx;
            `Got e
          end
          else `Busy)
  in
  match outcome with
  | `Absent -> `Absent
  | `Got e -> `Reserved e
  | `Busy ->
    t.reserve_conflicts <- t.reserve_conflicts + 1;
    `Would_deadlock

let release_reserve ctx e =
  e.reserver <- -1;
  Reserve.clear ctx e.status

(* Remove a key; the caller must hold the element's reservation, which dies
   with the element. *)
let remove t ctx key =
  with_key_locked t ctx key (fun () -> remove_locked ctx t key)

(* Insert a fresh, unreserved element. *)
let insert t ctx key ~make =
  with_key_locked t ctx key (fun () -> insert_locked ctx t key ~status0:0 ~make)

(* -- read-only lookups ---------------------------------------------------- *)

(* Locked lookup: search under [key]'s protecting lock (bin lock in Fine
   mode). The safe path every granularity supports. *)
let lookup_locked t ctx key =
  match t.granularity with
  | Fine ->
    let bin_lock = t.bin_locks.(bin_of_key t key) in
    Spin_lock.acquire bin_lock ctx;
    Fun.protect
      ~finally:(fun () -> Spin_lock.release bin_lock ctx)
      (fun () -> search_locked ctx t key)
  | Hybrid | Coarse | Sharded ->
    with_key_locked t ctx key (fun () -> search_locked ctx t key)

(* Unlocked probe for the optimistic path: identical cost charging to
   [search_locked_status] (bin-head read, one header read per element).
   Runs against a chain snapshot; the seqlock validation decides whether
   the snapshot was consistent. *)
let search_unlocked ctx t key =
  t.searches <- t.searches + 1;
  ignore (Ctx.read ctx t.bin_heads.(bin_of_key t key));
  let rec go = function
    | [] -> None
    | e :: rest ->
      t.probes <- t.probes + 1;
      ignore (Ctx.read ctx e.status);
      Ctx.instr ctx ~reg:1 ~br:1 ();
      if e.key = key then Some e else go rest
  in
  go t.bins.(bin_of_key t key)

(* Read-only lookup. Under [Sharded] this is the optimistic read path:
   sample the shard's sequence word, probe the chain unlocked, validate.
   A writer-busy sample or failed validation falls back to the locked
   search — one bounded retry through the lock, no unbounded spinning.
   The other granularities always use the locked path. *)
let lookup t ctx key =
  match t.granularity with
  | Hybrid | Coarse | Fine -> lookup_locked t ctx key
  | Sharded -> (
    let sq = t.seqlocks.(shard_of_key t key) in
    match Seqlock.read_begin sq ctx with
    | None ->
      t.optimistic_fallbacks <- t.optimistic_fallbacks + 1;
      lookup_locked t ctx key
    | Some seq ->
      let r = search_unlocked ctx t key in
      if Seqlock.read_validate sq ctx seq then begin
        t.optimistic_hits <- t.optimistic_hits + 1;
        r
      end
      else begin
        t.optimistic_fallbacks <- t.optimistic_fallbacks + 1;
        lookup_locked t ctx key
      end)

(* -- granularity-dispatching operation ----------------------------------- *)

(* Run [f] on the element for [key] with the protection the configured
   granularity prescribes. This is the API the ablation experiment drives:
   - Hybrid/Sharded: reserve bit held during [f], the protecting (table or
     shard) lock only around search;
   - Coarse: coarse lock held during [f];
   - Fine:   bin spin lock around search, element spin lock during [f].
   All arms release their locks and clear the soft mask if [f] raises. *)
let with_element t ctx key f =
  match t.granularity with
  | Hybrid | Sharded -> (
    match reserve_existing t ctx key with
    | None -> None
    | Some e ->
      Some
        (Fun.protect ~finally:(fun () -> release_reserve ctx e) (fun () -> f e)))
  | Coarse ->
    Lock.with_lock t.lock ctx (fun () ->
        match search_locked ctx t key with
        | None -> None
        | Some e -> Some (f e))
  | Fine -> (
    let bin_lock = t.bin_locks.(bin_of_key t key) in
    Spin_lock.acquire bin_lock ctx;
    let found =
      match search_locked ctx t key with
      | None ->
        Spin_lock.release bin_lock ctx;
        None
      | Some e ->
        let el =
          match e.elem_lock with
          | Some l -> l
          | None -> assert false
        in
        (* Bin-then-element order, with the bin lock released only once the
           element lock is held (Figure 1a). *)
        Spin_lock.acquire el ctx;
        Spin_lock.release bin_lock ctx;
        Some (e, el)
      | exception exn ->
        Spin_lock.release bin_lock ctx;
        raise exn
    in
    match found with
    | None -> None
    | Some (e, el) ->
      Some
        (Fun.protect
           ~finally:(fun () -> Spin_lock.release el ctx)
           (fun () -> f e)))

(* Untimed insertion for experiment setup (pre-populating descriptors
   before the simulation starts). The element lock carries the same
   {!Verify} class as a timed insert's, so lockdep sees pre-populated and
   live elements identically. *)
let insert_untimed t key ~status0 ~make =
  let home = pick_home t in
  let payload = make home in
  let elem =
    {
      key;
      status = Cell.make ~label:(Printf.sprintf "h%d" key) ~home status0;
      elem_lock =
        (match t.granularity with
        | Fine ->
          Some
            (Spin_lock.create t.machine ~home ~vclass:t.elem_vclass
               (fine_backoff t.machine))
        | Hybrid | Coarse | Sharded -> None);
      home;
      payload;
      (* No live processor set this bit (untimed setup), so a crash sweep
         has no corpse to attribute it to. *)
      reserver = -1;
    }
  in
  let b = bin_of_key t key in
  t.bins.(b) <- elem :: t.bins.(b);
  t.n_elems <- t.n_elems + 1;
  elem

(* Untimed whole-table iteration, for tests and invariant checks. *)
let iter_untimed t f = Array.iter (fun chain -> List.iter f chain) t.bins

let mem_untimed t key =
  List.exists (fun e -> e.key = key) t.bins.(bin_of_key t key)

(* -- crash repair --------------------------------------------------------- *)

(* Sweep the table after fail-stop crashes: force the release of any
   protecting lock whose holder died (coarse, shard, and Fine-mode bin and
   element locks), roll forward any shard sequence word a dead writer left
   odd, and clear reserve bits whose recorded owner is dead. Returns the
   number of repairs performed.

   Per-shard order matters: the sequence word must be even again *before*
   the shard lock's recovery hands it to a successor, whose own
   [write_begin] asserts an even word. The roll itself cannot race a live
   writer because the corpse still notionally holds the shard lock while
   we repair. Free when nobody died — every check is host-side except one
   probe load per dead-owned reservation. *)
let recover t ctx =
  let repairs = ref 0 in
  let bump b = if b then incr repairs in
  Array.iteri
    (fun s lk ->
      bump (Seqlock.recover_write t.seqlocks.(s) ctx);
      bump (lk.Lock.recover ctx))
    t.shard_locks;
  bump (t.lock.Lock.recover ctx);
  Array.iter (fun l -> bump (Spin_lock.Core.recover l ctx)) t.bin_locks;
  iter_untimed t (fun e ->
      (match e.elem_lock with
      | Some l -> bump (Spin_lock.Core.recover l ctx)
      | None -> ());
      if e.reserver >= 0 && not (Machine.proc_alive t.machine e.reserver)
      then begin
        bump (Reserve.clear_orphan ~cls:t.rcls ctx e.status ~dead:e.reserver);
        e.reserver <- -1
      end);
  !repairs
