(** A simulated HURRICANE kernel instance: per-processor contexts, the
    clustering layout, and a complete set of kernel structures per cluster
    (page-descriptor hash, address-space / region / file-cache locks), plus
    the RPC layer and the memory-bound kernel-work model. *)

open Eventsim
open Hector
open Locks

type cluster_data = {
  c_id : int;
  procs : int list;
  as_lock : Lock.t;
  region_lock : Lock.t;
  fcm_lock : Lock.t;
  page_hash : Page.pdesc Khash.t;
  scratch : Cell.t array;
}

type t

(** [create machine ~cluster_size] builds a kernel. [lock_algo] backs every
    coarse kernel lock (the Figure 7 sweep); [lockless] replaces all locks
    and reserve operations with no-ops for the lock-overhead calibration
    probe; [granularity] selects the hash-table strategy. *)
val create :
  ?costs:Costs.t ->
  ?lock_algo:Lock.algo ->
  ?granularity:Khash.granularity ->
  ?lockless:bool ->
  ?nbins:int ->
  ?seed:int ->
  Machine.t ->
  cluster_size:int ->
  t

val machine : t -> Machine.t
val engine : t -> Engine.t
val clustering : t -> Clustering.t
val costs : t -> Costs.t
val rpc : t -> Rpc.t
val lock_algo : t -> Lock.algo
val lockless : t -> bool

val ctx : t -> int -> Ctx.t
val n_procs : t -> int

val cluster : t -> int -> cluster_data
val cluster_of_proc : t -> int -> int
val local_cluster : t -> Ctx.t -> cluster_data

val proc_desc_lock : t -> int -> Lock.t
val pte_lock : t -> int -> Lock.t
val pte_cell : t -> int -> Cell.t

(** Experiment counters. *)

val faults : t -> int
val fault_rpcs : t -> int
val retries : t -> int
val replications : t -> int
val invalidations : t -> int

(** Optimistic operations that fell back to the pessimistic protocol after
    exhausting their attempt budget. *)
val degradations : t -> int

val count_fault : t -> unit
val count_fault_rpc : t -> unit
val count_retry : t -> unit
val count_replication : t -> unit
val count_invalidation : t -> unit
val count_degradation : t -> unit

(** Install (or clear) a fault plan on the whole kernel: memory hot-spots
    at the machine layer, RPC delay/loss and the reply timeout at the RPC
    layer. [None] restores fault-free execution. *)
val install_fault_plan : t -> Fault.t option -> unit

(** Install (or remove) a lockdep checker on the kernel's machine: every
    lock family and reserve bit reports acquisitions, releases and
    ownership transitions to it from then on. [None] restores unchecked
    execution (and identical timing — the hooks are host-side only). *)
val install_verify : t -> Verify.t option -> unit

(** Memory-bound kernel work: [cycles] of interleaved kernel-data accesses
    (mostly processor-local, partly cluster-shared) and compute. Under load
    the shared accesses queue behind lock traffic — the coupling behind the
    paper's second-order effects. *)
val kernel_work : t -> Ctx.t -> int -> unit

(** Work bound to a structure on a specific PMM (e.g. updating a page
    descriptor's words during mapping). *)
val struct_work : t -> Ctx.t -> home:int -> int -> unit

(** Spawn idle RPC-service loops on every processor not in [active]. *)
val spawn_idle_except : t -> active:int list -> unit

(** Untimed setup: create a page's master descriptor (valid for write,
    owner and sole sharer). *)
val populate_page : t -> vpage:int -> master_cluster:int -> frame:int -> unit

(** Untimed lookup of a cluster's descriptor instance, for assertions. *)
val find_descriptor_untimed :
  t -> cluster:int -> vpage:int -> Page.pdesc Khash.elem option
