(** The memory manager: soft page faults, unmapping, and page-level
    coherence across clusters, implemented with the paper's machinery —
    hybrid locking (coarse lock + reserve bits), combining-tree descriptor
    replication, cross-cluster RPC, and the optimistic deadlock-avoidance
    protocol. The implementation comment in [memmgr.ml] walks the full
    path. *)

open Hector

(** The per-cluster compute cost of the region-list lookup, held under the
    region lock. *)
val region_lookup_work : int

(** Service a soft page fault for [vpage] on the calling processor: map the
    page, acquiring a replica (read) or write ownership (write) from the
    page's master cluster if the local replica is insufficient. Must run
    inside a simulated process; retries internally until it succeeds. *)
val fault : Kernel.t -> Ctx.t -> vpage:int -> write:bool -> unit

(** Remove the calling processor's mapping and drop the replica's reference
    count. *)
val unmap : Kernel.t -> Ctx.t -> vpage:int -> unit

(** Read fault that bypasses the combining tree: simultaneous missers in
    one cluster each go remote. Only for the ABL2 ablation. *)
val read_fault_no_combining : Kernel.t -> Ctx.t -> vpage:int -> unit

(** The RPC services, exposed for direct testing. All run in the target's
    interrupt context and never wait. *)

val master_acquire_service :
  Kernel.t -> vpage:int -> req_cluster:int -> write:bool -> Ctx.t -> Rpc.outcome

val confirm_release_service : Kernel.t -> vpage:int -> Ctx.t -> Rpc.outcome

val demote_service :
  Kernel.t -> vpage:int -> to_state:int -> Ctx.t -> Rpc.outcome

(** Page-table update helpers (the caller holds the descriptor's reserve). *)

val map_page : Kernel.t -> Ctx.t -> Page.pdesc -> unit
val unmap_pte : Kernel.t -> Ctx.t -> Page.pdesc -> unit

(** Copy-on-write faults (Sections 2.3 / 2.5): break the sharing of
    [vpage] for the caller — drop a share at the master (removing the
    shared descriptor with the last share) and map a fresh private page
    [private_vpage]. With [Procs.Pessimistic] the caller releases
    everything around the remote call and may observe the shared page
    already gone. [degrade_after] (0, the default, = never) bounds the
    optimistic attempts before the fault degrades to the pessimistic
    protocol (counted by {!Kernel.degradations}). *)

type cow_outcome = Broke | Already_gone

val cow_unshare_service : Kernel.t -> vpage:int -> Ctx.t -> Rpc.outcome

val cow_fault :
  ?degrade_after:int ->
  Kernel.t ->
  Ctx.t ->
  strategy:Procs.strategy ->
  vpage:int ->
  private_vpage:int ->
  cow_outcome
