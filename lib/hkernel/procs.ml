(* Process descriptors, the family tree, and program destruction.

   Hurricane keeps a family tree of processes whose links run through the
   process descriptors; descriptors are write-shared, so they are *not*
   replicated — each lives on exactly one cluster (pid mod n_clusters here)
   and remote clusters reach them by RPC.

   Destroying a process touches up to three descriptors — its own, its
   parent's (to unlink it), and each child's (to reparent) — which may all
   live on different clusters. Because all processes of a program die at
   about the same time, reservation conflicts and hence retries are common
   (Section 2.5). Both deadlock-management strategies are implemented:

   - [Optimistic]: hold the local reservation across the remote call; on a
     [Would_deadlock] failure release everything, back off, retry; no
     revalidation needed on the success path.
   - [Pessimistic]: release the local reservation before every remote call
     and re-search / re-validate afterwards, paying the revalidation on
     every operation but never holding a reservation across a call. *)

open Hector

type strategy = Optimistic | Pessimistic

let strategy_name = function
  | Optimistic -> "optimistic"
  | Pessimistic -> "pessimistic"

type pd = {
  pid : int;
  parent : Cell.t; (* parent pid; 0 = none *)
  alive : Cell.t;
  nchildren : Cell.t; (* scan cost proxy for the child list *)
  children : int list ref; (* model-level child list *)
  mailbox : Cell.t; (* pending-message count: the messaging side's state *)
}

(* A node of the *separate* family tree (the Section 2.5 "data structure
   design" alternative): tree links live in their own per-cluster tables,
   with their own reserve bits, so tree maintenance and message passing no
   longer contend on the same words. *)
type tnode = {
  t_pid : int;
  t_parent : Cell.t;
  t_nchildren : Cell.t;
  t_children : int list ref;
}

(* Which data-structure design the instance uses. [Combined] is what
   Hurricane shipped (tree links inside the process descriptors); the paper
   wishes it had used [Separate]. *)
type layout = Combined | Separate

let layout_name = function
  | Combined -> "combined"
  | Separate -> "separate-tree"

type t = {
  kernel : Kernel.t;
  tables : pd Khash.t array; (* one per cluster *)
  tree_tables : tnode Khash.t array; (* Separate layout only *)
  layout : layout;
  strategy : strategy;
  max_attempts : int; (* 0 = never degrade *)
  mutable degradations : int; (* operations that fell back to Pessimistic *)
  mutable destroys : int;
  mutable retries : int;
  mutable revalidations : int;
  mutable lost_races : int; (* found the target already dead on revalidate *)
  mutable sends : int;
  mutable send_retries : int;
}

let create ?(strategy = Optimistic) ?(layout = Combined) ?(max_attempts = 0)
    kernel =
  let clustering = Kernel.clustering kernel in
  let machine = Kernel.machine kernel in
  let mk_tables vname () =
    Array.init (Clustering.n_clusters clustering) (fun c ->
        Khash.create machine ~nbins:64 ~vname
          ~lock_algo:(Kernel.lock_algo kernel)
          ~homes:(Clustering.procs_of_cluster clustering c))
  in
  {
    kernel;
    tables = mk_tables "procs.table" ();
    tree_tables =
      (match layout with
      | Separate -> mk_tables "procs.tree" ()
      | Combined -> [||]);
    layout;
    strategy;
    max_attempts;
    degradations = 0;
    destroys = 0;
    retries = 0;
    revalidations = 0;
    lost_races = 0;
    sends = 0;
    send_retries = 0;
  }

let strategy t = t.strategy
let layout t = t.layout
let degradations t = t.degradations

(* Effective strategy for attempt [n]: an optimistic operation past its
   attempt budget degrades to the pessimistic release-everything protocol —
   stop holding reservations across remote calls rather than loop forever
   against a stalled peer. *)
let strategy_for t n =
  if t.max_attempts > 0 && n > t.max_attempts then Pessimistic else t.strategy

let note_degradation t n =
  if t.max_attempts > 0 && n = t.max_attempts + 1 && t.strategy = Optimistic
  then t.degradations <- t.degradations + 1
let destroys t = t.destroys
let retries t = t.retries
let revalidations t = t.revalidations
let lost_races t = t.lost_races
let sends t = t.sends
let send_retries t = t.send_retries

let cluster_of_pid t pid =
  pid mod Clustering.n_clusters (Kernel.clustering t.kernel)

let table_of_pid t pid = t.tables.(cluster_of_pid t pid)
let tree_table_of_pid t pid = t.tree_tables.(cluster_of_pid t pid)

(* Untimed setup: create a process under [parent] (0 for a root). *)
let spawn_process_untimed t ~pid ~parent =
  if pid <= 0 then invalid_arg "spawn_process_untimed: pid must be positive";
  let make home =
    {
      pid;
      parent = Cell.make ~label:"parent" ~home parent;
      alive = Cell.make ~label:"alive" ~home 1;
      nchildren = Cell.make ~label:"nchildren" ~home 0;
      children = ref [];
      mailbox = Cell.make ~label:"mailbox" ~home 0;
    }
  in
  ignore (Khash.insert_untimed (table_of_pid t pid) pid ~status0:0 ~make);
  (match t.layout with
  | Combined -> ()
  | Separate ->
    let make_tnode home =
      {
        t_pid = pid;
        t_parent = Cell.make ~label:"t.parent" ~home parent;
        t_nchildren = Cell.make ~label:"t.nchildren" ~home 0;
        t_children = ref [];
      }
    in
    ignore
      (Khash.insert_untimed (tree_table_of_pid t pid) pid ~status0:0
         ~make:make_tnode));
  if parent <> 0 then begin
    match t.layout with
    | Combined ->
      let found = ref None in
      Khash.iter_untimed (table_of_pid t parent) (fun e ->
          if e.Khash.key = parent then found := Some e.Khash.payload);
      (match !found with
      | None -> invalid_arg "spawn_process_untimed: unknown parent"
      | Some pd ->
        pd.children := pid :: !(pd.children);
        (* [nchildren] always equals the list length, so bump it
           incrementally rather than rescanning the list. *)
        Cell.poke pd.nchildren (Cell.peek pd.nchildren + 1))
    | Separate ->
      let found = ref None in
      Khash.iter_untimed (tree_table_of_pid t parent) (fun e ->
          if e.Khash.key = parent then found := Some e.Khash.payload);
      (match !found with
      | None -> invalid_arg "spawn_process_untimed: unknown parent"
      | Some tn ->
        tn.t_children := pid :: !(tn.t_children);
        Cell.poke tn.t_nchildren (Cell.peek tn.t_nchildren + 1))
  end

let alive_untimed t pid =
  let found = ref false in
  Khash.iter_untimed (table_of_pid t pid) (fun e ->
      if e.Khash.key = pid && Cell.peek e.Khash.payload.alive = 1 then
        found := true);
  !found

let children_untimed t pid =
  let found = ref [] in
  (match t.layout with
  | Combined ->
    Khash.iter_untimed (table_of_pid t pid) (fun e ->
        if e.Khash.key = pid then found := !(e.Khash.payload.children))
  | Separate ->
    Khash.iter_untimed (tree_table_of_pid t pid) (fun e ->
        if e.Khash.key = pid then found := !(e.Khash.payload.t_children)));
  !found

let mailbox_untimed t pid =
  let found = ref 0 in
  Khash.iter_untimed (table_of_pid t pid) (fun e ->
      if e.Khash.key = pid then found := Cell.peek e.Khash.payload.mailbox);
  !found

(* -- RPC services --------------------------------------------------------- *)

(* Unlink [child] from [parent]'s child list, on the parent's cluster. *)
let unlink_child_service t ~parent ~child tctx =
  match Khash.try_reserve_existing (table_of_pid t parent) tctx parent with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let pd = e.Khash.payload in
    (* Scan the child list: one charged read per entry examined. *)
    let rec scan = function
      | [] -> ()
      | c :: rest ->
        ignore (Ctx.read tctx pd.nchildren);
        if c <> child then scan rest
    in
    scan !(pd.children);
    (* Count removals during the filter and decrement [nchildren] by that,
       instead of recomputing the list length from scratch. *)
    let removed = ref 0 in
    pd.children :=
      List.filter
        (fun c -> if c = child then (incr removed; false) else true)
        !(pd.children);
    Ctx.write tctx pd.nchildren (Cell.peek pd.nchildren - !removed);
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* Re-point [child]'s parent link at [new_parent]. *)
let reparent_service t ~child ~new_parent tctx =
  match Khash.try_reserve_existing (table_of_pid t child) tctx child with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let pd = e.Khash.payload in
    Ctx.write tctx pd.parent new_parent;
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* Add [child] to [new_parent]'s child list (reparenting, step 2). *)
let adopt_service t ~child ~new_parent tctx =
  match Khash.try_reserve_existing (table_of_pid t new_parent) tctx new_parent with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let pd = e.Khash.payload in
    pd.children := child :: !(pd.children);
    Ctx.write tctx pd.nchildren (Cell.peek pd.nchildren + 1);
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* Tree-table counterparts, used by the Separate layout: same protocols,
   different reserve bits — the whole point of the design lesson. *)

let t_unlink_child_service t ~parent ~child tctx =
  match Khash.try_reserve_existing (tree_table_of_pid t parent) tctx parent with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let tn = e.Khash.payload in
    let rec scan = function
      | [] -> ()
      | c :: rest ->
        ignore (Ctx.read tctx tn.t_nchildren);
        if c <> child then scan rest
    in
    scan !(tn.t_children);
    let removed = ref 0 in
    tn.t_children :=
      List.filter
        (fun c -> if c = child then (incr removed; false) else true)
        !(tn.t_children);
    Ctx.write tctx tn.t_nchildren (Cell.peek tn.t_nchildren - !removed);
    Khash.release_reserve tctx e;
    Rpc.Ok 0

let t_reparent_service t ~child ~new_parent tctx =
  match Khash.try_reserve_existing (tree_table_of_pid t child) tctx child with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    Ctx.write tctx e.Khash.payload.t_parent new_parent;
    Khash.release_reserve tctx e;
    Rpc.Ok 0

let t_adopt_service t ~child ~new_parent tctx =
  match
    Khash.try_reserve_existing (tree_table_of_pid t new_parent) tctx new_parent
  with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let tn = e.Khash.payload in
    tn.t_children := child :: !(tn.t_children);
    Ctx.write tctx tn.t_nchildren (Cell.peek tn.t_nchildren + 1);
    Khash.release_reserve tctx e;
    Rpc.Ok 0

(* Deposit a message into [dst]'s descriptor (reserve, bump the mailbox,
   release). Runs on [dst]'s cluster; never waits. *)
let deposit_service t ~dst tctx =
  match Khash.try_reserve_existing (table_of_pid t dst) tctx dst with
  | `Absent -> Rpc.Absent
  | `Would_deadlock -> Rpc.Would_deadlock
  | `Reserved e ->
    let pd = e.Khash.payload in
    if Cell.peek pd.alive = 0 then begin
      Khash.release_reserve tctx e;
      Rpc.Absent
    end
    else begin
      let m = Ctx.read tctx pd.mailbox in
      Ctx.write tctx pd.mailbox (m + 1);
      Kernel.kernel_work t.kernel tctx 60 (* copy the message body *);
      Khash.release_reserve tctx e;
      Rpc.Ok 0
    end

(* -- destruction ----------------------------------------------------------- *)

let rpc_to t ctx ~cluster service =
  let target =
    Clustering.rpc_target (Kernel.clustering t.kernel) ~from:(Ctx.proc ctx)
      ~target_cluster:cluster
  in
  Rpc.call (Kernel.rpc t.kernel) ctx ~target service

(* The destruction of [pid] is a sequence of remote steps (unlink from the
   parent, then reparent+adopt for each child), each an RPC that can fail
   with [Would_deadlock]. The strategy decides what our own reservation does
   around each step:

   - Optimistic: keep it; on failure release it, back off, restart the whole
     destruction (no revalidation needed on success).
   - Pessimistic: release it before every call and re-reserve + revalidate
     the descriptor afterwards, paying that cost on every step. *)

let retry_pause t ctx attempt =
  t.retries <- t.retries + 1;
  let costs = Kernel.costs t.kernel in
  let base = costs.Costs.retry_backoff * min attempt 8 in
  Ctx.interruptible_pause ctx
    (base + Eventsim.Rng.int (Ctx.rng ctx) (max 1 base))

let destroy_combined t ctx pid =
  let clustering = Kernel.clustering t.kernel in
  let my_cluster = Clustering.cluster_of_proc clustering (Ctx.proc ctx) in
  let table = table_of_pid t pid in
  let reserve_self () =
    if cluster_of_pid t pid = my_cluster then
      match Khash.reserve_existing table ctx pid with
      | None -> `Gone
      | Some e -> `Got e
    else
      match Khash.try_reserve_existing table ctx pid with
      | `Absent -> `Gone
      | `Would_deadlock -> `Conflict
      | `Reserved e -> `Got e
  in
  (* Re-reserve and revalidate after a pessimistic release. *)
  let re_establish () =
    t.revalidations <- t.revalidations + 1;
    match Khash.try_reserve_existing table ctx pid with
    | `Absent -> `Gone
    | `Would_deadlock -> `Conflict
    | `Reserved e ->
      if Cell.peek e.Khash.payload.alive = 0 then begin
        Khash.release_reserve ctx e;
        `Gone
      end
      else `Got e
  in
  let rec attempt n =
    if n > 1000 then failwith "Procs.destroy: livelock";
    note_degradation t n;
    match reserve_self () with
    | `Gone -> false
    | `Conflict ->
      retry_pause t ctx n;
      attempt (n + 1)
    | `Got e ->
      let pd = e.Khash.payload in
      if Ctx.read ctx pd.alive = 0 then begin
        t.lost_races <- t.lost_races + 1;
        Khash.release_reserve ctx e;
        false
      end
      else begin
        let parent = Ctx.read ctx pd.parent in
        let grandparent = parent in
        let children = !(pd.children) in
        (* The remote steps, in family-tree order: unlink first (parent
           level), then each child's reparent and adoption. *)
        let steps =
          (if parent = 0 then []
           else
             [ (cluster_of_pid t parent,
                unlink_child_service t ~parent ~child:pid) ])
          @ List.concat_map
              (fun c ->
                (cluster_of_pid t c,
                 reparent_service t ~child:c ~new_parent:grandparent)
                ::
                (if grandparent = 0 then []
                 else
                   [ (cluster_of_pid t grandparent,
                      adopt_service t ~child:c ~new_parent:grandparent) ]))
              children
        in
        let rec run held = function
          | [] -> `Finished held
          | (cluster, service) :: rest -> (
            match strategy_for t n with
            | Optimistic -> (
              match rpc_to t ctx ~cluster service with
              | Rpc.Ok _ | Rpc.Absent -> run held rest
              | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
                Khash.release_reserve ctx held;
                `Restart)
            | Pessimistic -> (
              Khash.release_reserve ctx held;
              let r = rpc_to t ctx ~cluster service in
              match r with
              | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target -> `Restart
              | Rpc.Ok _ | Rpc.Absent -> (
                match re_establish () with
                | `Gone -> `Lost
                | `Conflict -> `Restart
                | `Got held' -> run held' rest)))
        in
        match run e steps with
        | `Restart ->
          retry_pause t ctx n;
          attempt (n + 1)
        | `Lost ->
          t.lost_races <- t.lost_races + 1;
          false
        | `Finished held ->
          Ctx.write ctx held.Khash.payload.alive 0;
          ignore (Khash.remove table ctx pid);
          Khash.release_reserve ctx held;
          t.destroys <- t.destroys + 1;
          true
      end
  in
  attempt 1

(* Destruction over the separate family tree: tree links are updated under
   the TREE tables' reserve bits; the process descriptor is touched only at
   the very end, briefly, to mark the process dead — so tree maintenance no
   longer contends with message passing. *)
let destroy_separate t ctx pid =
  let clustering = Kernel.clustering t.kernel in
  let my_cluster = Clustering.cluster_of_proc clustering (Ctx.proc ctx) in
  let ttable = tree_table_of_pid t pid in
  let reserve_tree () =
    if cluster_of_pid t pid = my_cluster then
      match Khash.reserve_existing ttable ctx pid with
      | None -> `Gone
      | Some e -> `Got e
    else
      match Khash.try_reserve_existing ttable ctx pid with
      | `Absent -> `Gone
      | `Would_deadlock -> `Conflict
      | `Reserved e -> `Got e
  in
  let re_establish () =
    t.revalidations <- t.revalidations + 1;
    match Khash.try_reserve_existing ttable ctx pid with
    | `Absent -> `Gone
    | `Would_deadlock -> `Conflict
    | `Reserved e -> `Got e
  in
  let rec attempt n =
    if n > 1000 then failwith "Procs.destroy_separate: livelock";
    note_degradation t n;
    match reserve_tree () with
    | `Gone -> false
    | `Conflict ->
      retry_pause t ctx n;
      attempt (n + 1)
    | `Got e ->
      let tn = e.Khash.payload in
      let parent = Ctx.read ctx tn.t_parent in
      let grandparent = parent in
      let children = !(tn.t_children) in
      let steps =
        (if parent = 0 then []
         else
           [ (cluster_of_pid t parent,
              t_unlink_child_service t ~parent ~child:pid) ])
        @ List.concat_map
            (fun c ->
              (cluster_of_pid t c,
               t_reparent_service t ~child:c ~new_parent:grandparent)
              ::
              (if grandparent = 0 then []
               else
                 [ (cluster_of_pid t grandparent,
                    t_adopt_service t ~child:c ~new_parent:grandparent) ]))
            children
      in
      let rec run held = function
        | [] -> `Finished held
        | (cluster, service) :: rest -> (
          match strategy_for t n with
          | Optimistic -> (
            match rpc_to t ctx ~cluster service with
            | Rpc.Ok _ | Rpc.Absent -> run held rest
            | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
              Khash.release_reserve ctx held;
              `Restart)
          | Pessimistic -> (
            Khash.release_reserve ctx held;
            match rpc_to t ctx ~cluster service with
            | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target -> `Restart
            | Rpc.Ok _ | Rpc.Absent -> (
              match re_establish () with
              | `Gone -> `Lost
              | `Conflict -> `Restart
              | `Got held' -> run held' rest)))
      in
      (match run e steps with
      | `Restart ->
        retry_pause t ctx n;
        attempt (n + 1)
      | `Lost ->
        t.lost_races <- t.lost_races + 1;
        false
      | `Finished held ->
        ignore (Khash.remove ttable ctx pid);
        Khash.release_reserve ctx held;
        (* Finally mark the process itself dead: one brief descriptor
           reservation — messaging's only window of interference. *)
        let table = table_of_pid t pid in
        let rec mark m =
          if m > 1000 then failwith "Procs.destroy_separate: mark livelock";
          match Khash.try_reserve_existing table ctx pid with
          | `Absent -> ()
          | `Would_deadlock ->
            retry_pause t ctx m;
            mark (m + 1)
          | `Reserved de ->
            Ctx.write ctx de.Khash.payload.alive 0;
            ignore (Khash.remove table ctx pid);
            Khash.release_reserve ctx de
        in
        mark 1;
        t.destroys <- t.destroys + 1;
        true)
  in
  attempt 1

let destroy t ctx pid =
  match t.layout with
  | Combined -> destroy_combined t ctx pid
  | Separate -> destroy_separate t ctx pid

(* -- message passing --------------------------------------------------------- *)

(* Send a message from [src] (a process of the calling processor's cluster)
   to an arbitrary [dst]: both descriptors are involved — the sender's to
   record the send state, the receiver's to deposit the message — and there
   is no natural order between them (Section 2.5). The optimistic protocol
   holds the source reservation across the remote deposit; a conflicted
   deposit releases it and retries. Returns false if either process died. *)
let send t ctx ~src ~dst =
  let clustering = Kernel.clustering t.kernel in
  let my_cluster = Clustering.cluster_of_proc clustering (Ctx.proc ctx) in
  if cluster_of_pid t src <> my_cluster then
    invalid_arg "Procs.send: src must belong to the caller's cluster";
  let table = table_of_pid t src in
  let rec attempt n =
    if n > 1000 then failwith "Procs.send: livelock";
    match Khash.reserve_existing table ctx src with
    | None -> false
    | Some e ->
      let pd = e.Khash.payload in
      if Ctx.read ctx pd.alive = 0 then begin
        Khash.release_reserve ctx e;
        false
      end
      else begin
        (* Record the in-flight send in the source descriptor. *)
        Kernel.kernel_work t.kernel ctx 30;
        (* Past the attempt budget the optimistic messaging protocol
           degrades: give up the source reservation *before* the deposit so
           a stalled destination holder cannot keep us looping while we
           hold it, and revalidate the source afterwards. *)
        let degraded = t.max_attempts > 0 && n > t.max_attempts && dst <> src in
        if degraded && n = t.max_attempts + 1 then
          t.degradations <- t.degradations + 1;
        if degraded then Khash.release_reserve ctx e;
        let outcome =
          if dst = src then begin
            (* Self-send: the descriptor is already ours; deposit inline. *)
            let m = Ctx.read ctx pd.mailbox in
            Ctx.write ctx pd.mailbox (m + 1);
            Kernel.kernel_work t.kernel ctx 60;
            Rpc.Ok 0
          end
          else if cluster_of_pid t dst = my_cluster then
            deposit_service t ~dst ctx
          else
            rpc_to t ctx ~cluster:(cluster_of_pid t dst)
              (deposit_service t ~dst)
        in
        match outcome with
        | Rpc.Ok _ ->
          if degraded then begin
            (* The message is deposited; re-check the source briefly (the
               pessimistic revalidation cost). *)
            t.revalidations <- t.revalidations + 1;
            match Khash.try_reserve_existing table ctx src with
            | `Reserved e2 -> Khash.release_reserve ctx e2
            | `Absent | `Would_deadlock -> ()
          end
          else Khash.release_reserve ctx e;
          t.sends <- t.sends + 1;
          true
        | Rpc.Absent ->
          if not degraded then Khash.release_reserve ctx e;
          false
        | Rpc.Would_deadlock | Rpc.Gave_up | Rpc.Dead_target ->
          if not degraded then Khash.release_reserve ctx e;
          t.send_retries <- t.send_retries + 1;
          let costs = Kernel.costs t.kernel in
          let base = costs.Costs.retry_backoff * min n 8 in
          Ctx.interruptible_pause ctx
            (base + Eventsim.Rng.int (Ctx.rng ctx) (max 1 base));
          attempt (n + 1)
      end
  in
  attempt 1
