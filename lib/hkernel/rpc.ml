(* Inter-cluster remote procedure calls.

   An RPC is carried by an inter-processor interrupt: the sender marshals a
   request (a remote write into the target's memory), raises the IPI, and
   spins on the reply word with interrupts enabled — the processor is busy
   but still serves incoming RPCs, as an exception-based kernel must. The
   service runs in the target's interrupt context and therefore must never
   wait on a reserve bit: it fails with [Would_deadlock] instead, and the
   initiator retries (Section 2.3).

   The target processor is chosen by the caller; Hurricane's rule is i-th
   processor to i-th processor (see {!Clustering.rpc_target}).

   Fault injection: with a plan installed ({!set_fault_plan}), a request or
   reply may be delayed, and at most once per call the request or reply may
   be lost outright. A lost message is recovered by the caller's reply
   timeout, which resends the IPI — at-least-once delivery, so services run
   under a fault plan must tolerate re-execution (a duplicate whose reply
   was already delivered is recognised and discarded). With no plan there
   are no draws, no timeouts and no extra cycles: timing is identical to a
   build without injection. *)

open Eventsim
open Hector

type outcome =
  | Ok of int
  | Would_deadlock (* a reserve bit was found set on the remote side *)
  | Absent (* the remote structure does not exist *)
  | Gave_up (* call_until_resolved exhausted its attempt budget *)
  | Dead_target (* the target processor fail-stopped; do not re-retry *)

let outcome_name = function
  | Ok v -> Printf.sprintf "Ok(%d)" v
  | Would_deadlock -> "Would_deadlock"
  | Absent -> "Absent"
  | Gave_up -> "Gave_up"
  | Dead_target -> "Dead_target"

type t = {
  ctxs : Ctx.t array;
  costs : Costs.t;
  req_cells : Cell.t array; (* request mailbox per processor *)
  reply_cells : Cell.t array; (* reply mailbox per (calling) processor *)
  mutable work : Ctx.t -> int -> unit;
      (* how marshal/dispatch cycles are charged; the kernel installs its
         memory-bound worker here *)
  mutable fault : Fault.t option;
  mutable calls : int;
  mutable deadlock_failures : int;
  mutable retries : int;
  mutable resends : int; (* reply timeouts that re-raised the IPI *)
  mutable gave_ups : int;
  mutable max_attempts_seen : int; (* worst attempt count over all calls *)
  mutable backoff_cap_hits : int; (* attempts past the x8 backoff cap *)
  mutable dead_targets : int; (* calls refused because the target is dead *)
}

let create machine ctxs costs =
  {
    ctxs;
    costs;
    req_cells =
      Array.init (Array.length ctxs) (fun p ->
          Machine.alloc machine ~label:(Printf.sprintf "rpcreq%d" p) ~home:p 0);
    (* One reply mailbox per processor, homed locally so the caller's reply
       spin is a local access. Allocated once here: a caller has at most one
       synchronous RPC outstanding, so reuse is safe, and allocating per
       call would grow the machine without bound on long runs. *)
    reply_cells =
      Array.init (Array.length ctxs) (fun p ->
          Machine.alloc machine
            ~label:(Printf.sprintf "rpcreply%d" p)
            ~home:p 0);
    work = (fun ctx cycles -> Ctx.work ctx cycles);
    fault = None;
    calls = 0;
    deadlock_failures = 0;
    retries = 0;
    resends = 0;
    gave_ups = 0;
    max_attempts_seen = 0;
    backoff_cap_hits = 0;
    dead_targets = 0;
  }

let set_work t f = t.work <- f
let set_fault_plan t plan = t.fault <- plan
let fault_plan t = t.fault

let calls t = t.calls
let deadlock_failures t = t.deadlock_failures
let retries t = t.retries
let resends t = t.resends
let gave_ups t = t.gave_ups
let max_attempts_seen t = t.max_attempts_seen
let backoff_cap_hits t = t.backoff_cap_hits
let dead_targets t = t.dead_targets

(* One synchronous RPC. [service] runs on the target processor's context in
   interrupt state. *)
let call t ctx ~target service =
  if target = Ctx.proc ctx then begin
    (* Local "call": run the service directly, no interrupt machinery. *)
    t.calls <- t.calls + 1;
    let r = service ctx in
    (match r with
    | Would_deadlock -> t.deadlock_failures <- t.deadlock_failures + 1
    | Ok _ | Absent | Gave_up | Dead_target -> ());
    r
  end
  else if not (Machine.proc_alive (Ctx.machine ctx) target) then begin
    (* Fail-stop detectability: peers can tell a dead processor from a slow
       one, so a call aimed at a corpse fails fast instead of burning reply
       timeouts against it. A host-side read — free when nobody dies. *)
    t.calls <- t.calls + 1;
    t.dead_targets <- t.dead_targets + 1;
    Dead_target
  end
  else begin
    t.calls <- t.calls + 1;
    t.work ctx t.costs.Costs.rpc_send;
    (* Injected congestion may hold up the request marshalling. *)
    (match t.fault with
    | None -> ()
    | Some plan -> (
      match Fault.draw_rpc_delay plan ~now:(Ctx.now ctx) with
      | None -> ()
      | Some d -> Ctx.interruptible_pause ctx d));
    (* Deposit the request in the target's mailbox: one remote write. *)
    Ctx.write ctx t.req_cells.(target) (Ctx.proc ctx + 1);
    let reply = Ivar.create () in
    let reply_cell = t.reply_cells.(Ctx.proc ctx) in
    (* At most one loss per call, whichever side the draw picks. *)
    let lost_once = ref false in
    let handler ~drop_reply tctx =
      t.work tctx t.costs.Costs.rpc_dispatch;
      if Ivar.peek reply = None then begin
        let r = service tctx in
        (match t.fault with
        | None -> ()
        | Some plan -> (
          match Fault.draw_rpc_delay plan ~now:(Ctx.now tctx) with
          | None -> ()
          | Some d -> Ctx.interruptible_pause tctx d));
        t.work tctx t.costs.Costs.rpc_reply;
        if not drop_reply then begin
          (* Deposit the reply at the caller: one remote write. *)
          Ctx.write tctx reply_cell 1;
          Ivar.fill (Ctx.engine tctx) reply r
        end
      end
      (* else: a resent duplicate whose reply already arrived — the target
         recognises the stale sequence number and discards it. *)
    in
    let post () =
      let fate =
        match t.fault with
        | Some plan when not !lost_once ->
          Fault.draw_rpc_drop plan ~now:(Ctx.now ctx)
        | _ -> Fault.No_drop
      in
      match fate with
      | Fault.Drop_request -> lost_once := true (* the IPI is lost *)
      | Fault.Drop_reply ->
        lost_once := true;
        Ctx.post_ipi t.ctxs.(target) (handler ~drop_reply:true)
      | Fault.No_drop -> Ctx.post_ipi t.ctxs.(target) (handler ~drop_reply:false)
    in
    post ();
    Locks.Vhook.on ctx (fun v ->
        Verify.rpc_started v ~proc:(Ctx.proc ctx) ~target ~now:(Ctx.now ctx));
    Locks.Vhook.obs ctx (fun o ->
        Obs.rpc_issue o ~proc:(Ctx.proc ctx) ~target ~now:(Ctx.now ctx));
    let rec wait () =
      let timeout =
        match t.fault with Some plan -> Fault.reply_timeout plan | None -> 0
      in
      if timeout <= 0 then Ctx.await ctx reply
      else
        match Ctx.await_timeout ctx ~timeout reply with
        | Some r -> r
        | None ->
          if not (Machine.proc_alive (Ctx.machine ctx) target) then begin
            (* The target died with our call in flight: degrade instead of
               resending IPIs into a corpse forever. *)
            t.dead_targets <- t.dead_targets + 1;
            Dead_target
          end
          else begin
            (* The reply is overdue: assume the request or reply was lost
               and resend the IPI. *)
            t.resends <- t.resends + 1;
            Locks.Vhook.obs ctx (fun o ->
                Obs.rpc_retry o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
            t.work ctx t.costs.Costs.rpc_send;
            Ctx.write ctx t.req_cells.(target) (Ctx.proc ctx + 1);
            post ();
            wait ()
          end
    in
    let r = wait () in
    (* Consume the reply word. *)
    ignore (Ctx.read ctx reply_cell);
    Locks.Vhook.on ctx (fun v ->
        Verify.rpc_finished v ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
    Locks.Vhook.obs ctx (fun o ->
        Obs.rpc_reply o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
    (match r with
    | Would_deadlock -> t.deadlock_failures <- t.deadlock_failures + 1
    | Ok _ | Absent | Gave_up | Dead_target -> ());
    r
  end

(* Retry a [Would_deadlock]-prone call until it resolves, backing off with
   jitter between attempts. [before_retry] lets the caller release local
   reserve bits (the optimistic protocol) before each new attempt — and
   before a [Gave_up] is returned, since a caller that gives up must not
   keep holding them either. [max_attempts = 0] retries forever (the
   pre-existing behaviour); a positive cap turns exhaustion into [Gave_up]
   so the caller can degrade instead of looping. *)
let call_until_resolved ?(before_retry = fun () -> ()) ?(max_attempts = 0) t
    ctx ~target service =
  let rec go attempt =
    let r = call t ctx ~target service in
    (* Attempt counts are recorded on every resolution — first-try
       successes, local (target = self) calls and exhaustion included —
       not only on the retry path, so the statistic reflects all calls. *)
    if attempt > t.max_attempts_seen then t.max_attempts_seen <- attempt;
    match r with
    | Would_deadlock ->
      t.retries <- t.retries + 1;
      Locks.Vhook.obs ctx (fun o ->
          Obs.rpc_retry o ~proc:(Ctx.proc ctx) ~now:(Ctx.now ctx));
      (* The backoff multiplier saturates at x8; attempts past that point
         no longer spread out and deserve a visible warning count. *)
      if attempt > 8 then t.backoff_cap_hits <- t.backoff_cap_hits + 1;
      before_retry ();
      if max_attempts > 0 && attempt >= max_attempts then begin
        t.gave_ups <- t.gave_ups + 1;
        Gave_up
      end
      else begin
        let base = t.costs.Costs.retry_backoff * min attempt 8 in
        Ctx.interruptible_pause ctx (base + Rng.int (Ctx.rng ctx) (max 1 base));
        go (attempt + 1)
      end
    | (Ok _ | Absent | Gave_up | Dead_target) as r -> r
  in
  go 1
