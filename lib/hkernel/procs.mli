(** Process descriptors, the family tree, and program destruction
    (Section 2.5).

    Descriptors are write-shared and therefore never replicated: each lives
    on one cluster (pid mod n_clusters) and is reached by RPC. Destroying a
    process updates up to three descriptors on up to three clusters; when a
    program's processes die together, reservation conflicts force retries
    under either deadlock-management strategy. *)

open Hector

type strategy =
  | Optimistic
      (** hold local reservations across remote calls; release and retry on
          conflict; no revalidation in the common case *)
  | Pessimistic
      (** release before every remote call; re-reserve and revalidate after *)

val strategy_name : strategy -> string

type layout =
  | Combined
      (** tree links inside the process descriptors — what Hurricane
          shipped, and regretted (Section 2.5) *)
  | Separate  (** the family tree as its own structure, own reserve bits *)

val layout_name : layout -> string

type pd = {
  pid : int;
  parent : Cell.t;
  alive : Cell.t;
  nchildren : Cell.t;
  children : int list ref;
  mailbox : Cell.t;
}

type t

(** [max_attempts] (0, the default, = never) caps how many optimistic
    attempts an operation makes before degrading to the pessimistic
    release-everything protocol — the recovery path when a remote holder
    may be stalled. *)
val create :
  ?strategy:strategy -> ?layout:layout -> ?max_attempts:int -> Kernel.t -> t

val strategy : t -> strategy
val layout : t -> layout
val destroys : t -> int
val retries : t -> int
val revalidations : t -> int

(** Operations that fell back from optimistic to pessimistic after
    exhausting [max_attempts]. *)
val degradations : t -> int

(** Destructions abandoned because the target died under a racing
    destroyer. *)
val lost_races : t -> int

val sends : t -> int
val send_retries : t -> int

val cluster_of_pid : t -> int -> int

(** Untimed setup: create a process (parent 0 for a root). *)
val spawn_process_untimed : t -> pid:int -> parent:int -> unit

(** Untimed views for assertions. *)

val alive_untimed : t -> int -> bool
val children_untimed : t -> int -> int list
val mailbox_untimed : t -> int -> int

(** Destroy [pid]: unlink from its parent, reparent its children to the
    grandparent, mark dead and remove the descriptor. Returns [false] if
    the process was already gone. Must run inside a simulated process. *)
val destroy : t -> Ctx.t -> int -> bool

(** Send a message from [src] (which must belong to the caller's cluster)
    to an arbitrary [dst]: the source descriptor is reserved across the
    deposit into the destination descriptor — two arbitrarily related
    descriptors, no natural order (Section 2.5). Returns [false] if either
    process is gone. *)
val send : t -> Ctx.t -> src:int -> dst:int -> bool
