(** Contention observability: per-lock-class profiles and a bounded event
    trace, fed by the same hook sites as the {!Verify} checker.

    The discipline matches [lib/verify]: nothing here touches the engine,
    draws random numbers or charges simulated cycles. Uninstalled, every
    hook site is a single branch on [Machine.obs]; installed, the hooks do
    pure host-side bookkeeping, so an instrumented run is bit-identical in
    simulated time to a plain one.

    Lock classes are {!Verify}'s interned classes — the profile speaks the
    same vocabulary as the checker and the [?vclass] arguments the locks
    already take. Proc-to-cluster attribution is a caller-supplied mapping
    (stations for a bare machine, {!Hkernel.Clustering} for clustered
    workloads). *)

type t

(** The interned class RPC waits are accounted under. *)
val rpc_class : Verify.lock_class

(** [create ~n_procs ()] profiles only. [trace] > 0 additionally keeps the
    last [trace] events in a ring (older events are dropped, counted in
    {!trace_dropped}). [cluster_of]/[n_clusters] default to one cluster. *)
val create :
  ?trace:int ->
  ?cluster_of:(int -> int) ->
  ?n_clusters:int ->
  n_procs:int ->
  unit ->
  t

(** {2 Hook sites}

    Mirrors of the {!Verify} reporting entry points; see [Vhook],
    [Reserve], [Rpc] and [Khash] for the call sites. All tolerate events
    with no matching start (an observer installed mid-run). *)

val lock_wait :
  t -> proc:int -> cls:Verify.lock_class -> id:int -> now:int -> unit

val lock_acquired :
  t -> proc:int -> cls:Verify.lock_class -> id:int -> now:int -> unit

val lock_try_acquired :
  t -> proc:int -> cls:Verify.lock_class -> id:int -> now:int -> unit

(** An abandoned wait bumps [aborts] and [contended] without an
    acquisition; the bumps are sequenced (abort first) and hooks are
    host-atomic, so any sampler — including an adaptive lock's policy
    reading its own profile mid-run — sees rows satisfying
    [contended <= acqs + aborts]. *)
val lock_wait_abandoned : t -> proc:int -> now:int -> unit

(** A hand-off reclaimed a node some timed waiter abandoned; attributed to
    the repairing processor's cluster under [cls]. *)
val lock_abandon_repaired :
  t -> proc:int -> cls:Verify.lock_class -> now:int -> unit

val lock_released :
  t -> proc:int -> cls:Verify.lock_class -> id:int -> now:int -> unit

(** An optimistic read sampled the lock and aborted (seqlock validation
    failure or writer-in-progress). Charged to [proc]'s cluster as a
    contended non-acquisition ([contended] and [aborts] both bump); no
    frame or holder state moves since nothing was ever held. *)
val lock_optimistic_abort :
  t -> proc:int -> cls:Verify.lock_class -> now:int -> unit

(** {2 Reader concurrency}

    A gauge of concurrent shared (reader-side) holders per lock class,
    fed by [Vhook.acquired_shared]/[released_shared]. Kept beside the
    profile like the crash buckets: {!cells} is schema-stable and a
    high-water mark is a gauge, not a counter. *)

(** A shared acquisition of class [cls] completed on [proc]. *)
val rw_read_enter : t -> proc:int -> cls:Verify.lock_class -> unit

(** A shared hold of class [cls] ended on [proc] (possibly swept off a
    corpse by a recoverer — pass the dead processor as [proc]). *)
val rw_read_exit : t -> proc:int -> cls:Verify.lock_class -> unit

(** Peak concurrent shared holders observed for [cls]; 0 if never held.
    Readers > 1 is the reader-parallelism evidence no exclusive
    [Lock.algo] can produce. *)
val rw_read_peak : t -> cls:Verify.lock_class -> int

(** Per-cluster peaks, clusters with no shared activity omitted. *)
val rw_read_peak_by_cluster : t -> cls:Verify.lock_class -> (int * int) list

val reserve_set :
  t -> proc:int -> cls:Verify.lock_class -> word:int -> now:int -> unit

val reserve_clear : t -> proc:int -> word:int -> now:int -> unit

val reserve_read_set :
  t -> proc:int -> cls:Verify.lock_class -> word:int -> now:int -> unit

val reserve_read_clear : t -> proc:int -> word:int -> now:int -> unit

val reserve_wait :
  t -> proc:int -> cls:Verify.lock_class -> word:int -> now:int -> unit

val reserve_wait_done : t -> proc:int -> now:int -> unit

val rpc_issue : t -> proc:int -> target:int -> now:int -> unit
val rpc_retry : t -> proc:int -> now:int -> unit
val rpc_reply : t -> proc:int -> now:int -> unit

(** {2 Morphs (adaptive locks)}

    Promotion/demotion counters per cluster and a current-shape gauge per
    lock class, fed by [Vhook.morphed]. Kept beside the profile like the
    crash and rw buckets: {!cells} is schema-stable. *)

(** An adaptive lock of class [cls] switched to [shape] ([up] for a
    promotion); attributed to the morphing releaser's cluster. *)
val lock_morphed :
  t ->
  proc:int ->
  cls:Verify.lock_class ->
  up:bool ->
  shape:int ->
  now:int ->
  unit

type morph_row = { m_cluster : int; m_up : int; m_down : int }

(** One row per cluster with any morph activity for [cls]. *)
val morph_rows : t -> cls:Verify.lock_class -> morph_row list

val morphs_up : t -> cls:Verify.lock_class -> int
val morphs_down : t -> cls:Verify.lock_class -> int

(** Latest shape index reported for [cls]; 0 (the base shape) if the class
    never morphed. *)
val current_shape : t -> cls:Verify.lock_class -> int

(** {2 Crash and recovery}

    Kept beside the profile, not inside {!cells}: the profile schema is
    stable across versions, and crash evidence wants per-event latency
    samples. *)

(** The interned class crash instants are traced under. *)
val crash_class : Verify.lock_class

(** Processor [proc] fail-stopped (called by [Machine.kill_proc]). *)
val proc_crashed : t -> proc:int -> now:int -> unit

(** Recoverer [proc] released lock class [cls] on dead processor [dead]'s
    behalf, [latency] cycles after the kill. Crash-bucket attribution goes
    to [dead]'s cluster. *)
val lock_recovered :
  t ->
  proc:int ->
  cls:Verify.lock_class ->
  dead:int ->
  latency:int ->
  now:int ->
  unit

type crash_row = {
  cr_cluster : int;
  cr_crashes : int;
  cr_recoveries : int;
  cr_latencies : int list;  (** recovery latencies in cycles, chronological *)
}

(** One row per cluster with any crash/recovery activity. *)
val crash_rows : t -> crash_row list

val crashes_observed : t -> int
val recoveries_observed : t -> int

(** {2 Contention profile} *)

type cells = {
  acqs : int;  (** successful acquisitions (incl. try / reserve sets) *)
  contended : int;
      (** acquisitions that found the lock held / completed spin waits *)
  wait_cycles : int;  (** cycles from wait start to acquisition (or abandon) *)
  max_wait_cycles : int;  (** worst single wait (lock, spin or RPC) *)
  hold_cycles : int;  (** cycles from acquisition to release *)
  handoffs : int;  (** releases made with at least one recorded waiter *)
  handoffs_local : int;
      (** contended acquisitions whose previous releaser was in the
          receiving processor's cluster *)
  handoffs_remote : int;
      (** contended acquisitions that pulled the lock across a cluster
          boundary — the transfers a NUMA-aware lock minimises *)
  aborts : int;  (** timed acquisitions that expired and gave up *)
  abandon_repairs : int;
      (** abandoned queue nodes reclaimed by a later hand-off *)
}

type row = {
  row_class : string;
  total : cells;
  by_cluster : (int * cells) list;
      (** attribution by the waiting/holding processor's cluster; clusters
          with no activity for the class are omitted *)
}

(** One row per lock class with any activity, heaviest wait first. *)
val profile_rows : t -> row list

(** {2 Event trace} *)

type kind =
  | Lock_acquired  (** span: wait start to acquisition *)
  | Lock_released  (** span: acquisition to release *)
  | Lock_try  (** instant: non-blocking acquisition *)
  | Lock_abandoned  (** span: wait start to timeout *)
  | Lock_recovered  (** span: kill to recovery release (dur = latency) *)
  | Reserve_set  (** instant *)
  | Reserve_cleared  (** span: set to clear *)
  | Reserve_spin  (** span: spin-wait on a reserve bit *)
  | Rpc_issue  (** instant *)
  | Rpc_retry  (** instant: [Would_deadlock] resend/backoff *)
  | Rpc_reply  (** span: issue to reply *)
  | Proc_crash  (** instant: a processor fail-stopped *)
  | Lock_morphed  (** instant: an adaptive lock switched shape *)

val kind_name : kind -> string

type event = {
  kind : kind;
  proc : int;
  cls : Verify.lock_class;
  time : int;  (** cycle at which the span ended / the instant occurred *)
  dur : int;  (** span length in cycles; 0 for instants *)
}

(** Oldest retained first. *)
val trace : t -> event list

val trace_capacity : t -> int
val trace_recorded : t -> int

(** Events evicted from the ring. *)
val trace_dropped : t -> int

(** Chrome trace-event document (the JSON object format Perfetto and
    [chrome://tracing] load): clusters as processes, processors as
    threads, spans as ["X"] complete events, instants as ["i"].
    [us_per_cycle] converts simulated cycles to trace microseconds. *)
val trace_json : t -> us_per_cycle:float -> Json.t
