(* Contention profiles and event tracing (see obs.mli for the contract).

   Everything here is host-side bookkeeping driven by the same hook sites
   as the lockdep checker: per-proc stacks of open waits, a holder table to
   classify acquisitions as contended, per-word reserve ownership for hold
   attribution, and a fixed-capacity ring of trace events. No call touches
   the engine, so installed-vs-not cannot move simulated time. *)

let rpc_class = Verify.lock_class "rpc"

(* -- profile buckets ------------------------------------------------------ *)

type bucket = {
  mutable b_acqs : int;
  mutable b_contended : int;
  mutable b_wait : int;
  mutable b_max_wait : int;
  mutable b_hold : int;
  mutable b_handoffs : int;
  mutable b_handoffs_local : int;
  mutable b_handoffs_remote : int;
  mutable b_aborts : int;
  mutable b_abandon_repairs : int;
}

let fresh_bucket () =
  {
    b_acqs = 0;
    b_contended = 0;
    b_wait = 0;
    b_max_wait = 0;
    b_hold = 0;
    b_handoffs = 0;
    b_handoffs_local = 0;
    b_handoffs_remote = 0;
    b_aborts = 0;
    b_abandon_repairs = 0;
  }

type cells = {
  acqs : int;
  contended : int;
  wait_cycles : int;
  max_wait_cycles : int;
  hold_cycles : int;
  handoffs : int;
  handoffs_local : int;
  handoffs_remote : int;
  aborts : int; (* timed acquisitions that gave up *)
  abandon_repairs : int; (* abandoned nodes reclaimed by a hand-off *)
}

type row = {
  row_class : string;
  total : cells;
  by_cluster : (int * cells) list;
}

(* -- trace ---------------------------------------------------------------- *)

type kind =
  | Lock_acquired
  | Lock_released
  | Lock_try
  | Lock_abandoned
  | Lock_recovered
  | Reserve_set
  | Reserve_cleared
  | Reserve_spin
  | Rpc_issue
  | Rpc_retry
  | Rpc_reply
  | Proc_crash
  | Lock_morphed

let kind_name = function
  | Lock_acquired -> "lock_acquired"
  | Lock_released -> "lock_released"
  | Lock_try -> "lock_try"
  | Lock_abandoned -> "lock_abandoned"
  | Lock_recovered -> "lock_recovered"
  | Reserve_set -> "reserve_set"
  | Reserve_cleared -> "reserve_cleared"
  | Reserve_spin -> "reserve_spin"
  | Rpc_issue -> "rpc_issue"
  | Rpc_retry -> "rpc_retry"
  | Rpc_reply -> "rpc_reply"
  | Proc_crash -> "proc_crash"
  | Lock_morphed -> "lock_morphed"

type event = {
  kind : kind;
  proc : int;
  cls : Verify.lock_class;
  time : int;
  dur : int;
}

(* -- open-wait / ownership state ------------------------------------------ *)

(* One entry per wait a processor currently has open, newest first. Waits
   nest (a lock wait inside an RPC span, say) and are popped by kind — and
   for locks/words by identity — so interleavings cannot mispair them. *)
type frame =
  | Flock of { id : int; cls : int; since : int; contended : bool }
  | Fspin of { word : int; cls : int; since : int }
  | Frpc of { since : int }

type hold = { h_id : int; h_cls : int; h_since : int }

(* Crash/recovery accounting lives beside the profile buckets, not inside
   them: the [cells] record is schema-stable (profile rows and their JSON
   export are byte-compared across versions), and crash evidence wants
   per-event latency samples, which buckets do not keep. *)
type crash_bucket = {
  mutable cb_crashes : int;
  mutable cb_recoveries : int;
  mutable cb_latencies_rev : int list; (* recovery latencies, newest first *)
}

type crash_row = {
  cr_cluster : int;
  cr_crashes : int;
  cr_recoveries : int;
  cr_latencies : int list; (* chronological *)
}

(* Reader-concurrency gauge for shared (RW reader-side) classes: like the
   crash buckets it lives beside the profile, not inside it — the [cells]
   record is schema-stable, and a concurrency high-water mark is a gauge,
   not a counter. *)
type rw_bucket = { mutable rw_now : int; mutable rw_peak : int }

(* Morph accounting for adaptive locks: promotions/demotions per cluster
   plus a current-shape gauge per class. Beside the profile, not inside it,
   for the same schema-stability reason as the crash and rw buckets. *)
type morph_bucket = { mutable mb_up : int; mutable mb_down : int }

type morph_row = { m_cluster : int; m_up : int; m_down : int }

type t = {
  n_clusters : int;
  cluster_of : int -> int;
  mutable classes : bucket array option array; (* class id -> per-cluster *)
  frames : frame list array; (* per proc, newest first *)
  holds : hold list array; (* per proc, lock holds, newest first *)
  lock_holder : (int, int) Hashtbl.t; (* instance id -> holding proc *)
  lock_waiters : (int, int) Hashtbl.t; (* instance id -> waiter count *)
  last_releaser : (int, int) Hashtbl.t; (* instance id -> last releasing proc *)
  words : (int, int * int * int) Hashtbl.t; (* word -> proc, cls, since *)
  read_words : (int * int, int * int) Hashtbl.t; (* word,proc -> cls,since *)
  word_waiters : (int, int) Hashtbl.t; (* word -> spinner count *)
  trace_cap : int;
  ring : event array;
  mutable recorded : int; (* monotonic; ring index = recorded mod cap *)
  crash : crash_bucket array; (* per cluster *)
  rw : (int, rw_bucket array) Hashtbl.t; (* class id -> total :: per-cluster *)
  morph : (int, morph_bucket array) Hashtbl.t;
  (* class id -> total :: per-cluster *)
  morph_shape : (int, int) Hashtbl.t; (* class id -> current shape gauge *)
}

let create ?(trace = 0) ?cluster_of ?(n_clusters = 1) ~n_procs () =
  if n_procs <= 0 then invalid_arg "Obs.create: n_procs must be positive";
  if n_clusters <= 0 then invalid_arg "Obs.create: n_clusters must be positive";
  if trace < 0 then invalid_arg "Obs.create: negative trace capacity";
  let cluster_of =
    match cluster_of with Some f -> f | None -> fun _ -> 0
  in
  let dummy =
    { kind = Lock_try; proc = 0; cls = 0; time = 0; dur = 0 }
  in
  {
    n_clusters;
    cluster_of;
    classes = Array.make 16 None;
    frames = Array.make n_procs [];
    holds = Array.make n_procs [];
    lock_holder = Hashtbl.create 64;
    lock_waiters = Hashtbl.create 64;
    last_releaser = Hashtbl.create 64;
    words = Hashtbl.create 64;
    read_words = Hashtbl.create 64;
    word_waiters = Hashtbl.create 64;
    trace_cap = trace;
    ring = Array.make (max trace 1) dummy;
    recorded = 0;
    crash =
      Array.init n_clusters (fun _ ->
          { cb_crashes = 0; cb_recoveries = 0; cb_latencies_rev = [] });
    rw = Hashtbl.create 8;
    morph = Hashtbl.create 4;
    morph_shape = Hashtbl.create 4;
  }

let cluster t proc =
  let c = t.cluster_of proc in
  if c < 0 || c >= t.n_clusters then 0 else c

let bucket t ~cls ~proc =
  let cap = Array.length t.classes in
  if cls >= cap then begin
    let bigger = Array.make (max (cls + 1) (2 * cap)) None in
    Array.blit t.classes 0 bigger 0 cap;
    t.classes <- bigger
  end;
  let per_cluster =
    match t.classes.(cls) with
    | Some bs -> bs
    | None ->
      let bs = Array.init t.n_clusters (fun _ -> fresh_bucket ()) in
      t.classes.(cls) <- Some bs;
      bs
  in
  per_cluster.(cluster t proc)

let emit t kind ~proc ~cls ~time ~dur =
  if t.trace_cap > 0 then begin
    t.ring.(t.recorded mod t.trace_cap) <- { kind; proc; cls; time; dur };
    t.recorded <- t.recorded + 1
  end

(* Pop the newest frame satisfying [pred]; [None] if there is none (the
   observer was installed after the wait opened). *)
let pop_frame t proc pred =
  let rec go skipped = function
    | [] -> None
    | f :: rest when pred f ->
      t.frames.(proc) <- List.rev_append skipped rest;
      Some f
    | f :: rest -> go (f :: skipped) rest
  in
  go [] t.frames.(proc)

let bump tbl key delta =
  let v = (match Hashtbl.find_opt tbl key with Some v -> v | None -> 0) + delta in
  if v <= 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v

let count tbl key =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> 0

(* -- lock hooks ----------------------------------------------------------- *)

let lock_wait t ~proc ~cls ~id ~now =
  (* Contended if someone holds the lock — or if waiters are queued while
     it is in flight between holders (a queue lock mid-hand-off): either
     way this acquisition will receive the lock from a releaser. *)
  let contended =
    Hashtbl.mem t.lock_holder id || count t.lock_waiters id > 0
  in
  t.frames.(proc) <- Flock { id; cls; since = now; contended } :: t.frames.(proc);
  bump t.lock_waiters id 1

let start_hold t ~proc ~cls ~id ~now =
  Hashtbl.replace t.lock_holder id proc;
  t.holds.(proc) <- { h_id = id; h_cls = cls; h_since = now } :: t.holds.(proc)

let lock_acquired t ~proc ~cls ~id ~now =
  (match pop_frame t proc (function Flock f -> f.id = id | _ -> false) with
  | Some (Flock f) ->
    bump t.lock_waiters id (-1);
    let b = bucket t ~cls ~proc in
    b.b_acqs <- b.b_acqs + 1;
    if f.contended then begin
      b.b_contended <- b.b_contended + 1;
      (* A contended acquisition received the lock from whoever released it
         last: classify the hand-off by whether it crossed a cluster
         boundary — the locality a NUMA-aware lock exists to improve.
         Attributed to the *receiving* processor's cluster row. *)
      match Hashtbl.find_opt t.last_releaser id with
      | Some r ->
        if cluster t r = cluster t proc then
          b.b_handoffs_local <- b.b_handoffs_local + 1
        else b.b_handoffs_remote <- b.b_handoffs_remote + 1
      | None -> ()
    end;
    let dur = now - f.since in
    b.b_wait <- b.b_wait + dur;
    if dur > b.b_max_wait then b.b_max_wait <- dur;
    emit t Lock_acquired ~proc ~cls ~time:now ~dur
  | _ ->
    let b = bucket t ~cls ~proc in
    b.b_acqs <- b.b_acqs + 1);
  start_hold t ~proc ~cls ~id ~now

let lock_try_acquired t ~proc ~cls ~id ~now =
  let b = bucket t ~cls ~proc in
  b.b_acqs <- b.b_acqs + 1;
  emit t Lock_try ~proc ~cls ~time:now ~dur:0;
  start_hold t ~proc ~cls ~id ~now

(* Abandonments bump [aborts] *before* [contended]: hooks run host-
   atomically, so a mid-run sampler (the adaptive policy reading its own
   profile, a periodic reporter) lands between hooks, never inside one —
   but keeping the excuse written before the excess preserves the row
   invariant [contended <= acqs + aborts] at every sequencing granularity,
   and the qcheck property in test_obs pins it. *)
let lock_wait_abandoned t ~proc ~now =
  match pop_frame t proc (function Flock _ -> true | _ -> false) with
  | Some (Flock f) ->
    bump t.lock_waiters f.id (-1);
    let b = bucket t ~cls:f.cls ~proc in
    b.b_aborts <- b.b_aborts + 1;
    b.b_contended <- b.b_contended + 1;
    let dur = now - f.since in
    b.b_wait <- b.b_wait + dur;
    if dur > b.b_max_wait then b.b_max_wait <- dur;
    emit t Lock_abandoned ~proc ~cls:f.cls ~time:now ~dur
  | _ -> ()

(* A releaser (or a later hand-off) reclaimed a node some timed waiter left
   behind: attributed to the repairing processor's cluster. *)
let lock_abandon_repaired t ~proc ~cls ~now:_ =
  let b = bucket t ~cls ~proc in
  b.b_abandon_repairs <- b.b_abandon_repairs + 1

let lock_released t ~proc ~cls ~id ~now =
  (let rec go skipped = function
     | [] -> ()
     | h :: rest when h.h_id = id ->
       t.holds.(proc) <- List.rev_append skipped rest;
       let b = bucket t ~cls:h.h_cls ~proc in
       let dur = now - h.h_since in
       b.b_hold <- b.b_hold + dur;
       emit t Lock_released ~proc ~cls:h.h_cls ~time:now ~dur
     | h :: rest -> go (h :: skipped) rest
   in
   go [] t.holds.(proc));
  Hashtbl.remove t.lock_holder id;
  Hashtbl.replace t.last_releaser id proc;
  if count t.lock_waiters id > 0 then begin
    let b = bucket t ~cls ~proc in
    b.b_handoffs <- b.b_handoffs + 1
  end

(* An optimistic read sampled the lock and had to abort (writer in
   progress, or the sequence moved under it). Nothing was ever held, so no
   frames or holder tables move: the abort is charged to the sampling
   processor's cluster as a contended non-acquisition. *)
let lock_optimistic_abort t ~proc ~cls ~now =
  let b = bucket t ~cls ~proc in
  (* Abort before contended — see lock_wait_abandoned. *)
  b.b_aborts <- b.b_aborts + 1;
  b.b_contended <- b.b_contended + 1;
  emit t Lock_abandoned ~proc ~cls ~time:now ~dur:0

(* -- reader-concurrency gauge --------------------------------------------- *)

let rw_buckets t ~cls =
  match Hashtbl.find_opt t.rw cls with
  | Some bs -> bs
  | None ->
    let bs =
      Array.init (t.n_clusters + 1) (fun _ -> { rw_now = 0; rw_peak = 0 })
    in
    Hashtbl.replace t.rw cls bs;
    bs

let rw_read_enter t ~proc ~cls =
  let bs = rw_buckets t ~cls in
  let up b =
    b.rw_now <- b.rw_now + 1;
    if b.rw_now > b.rw_peak then b.rw_peak <- b.rw_now
  in
  up bs.(0);
  up bs.(1 + cluster t proc)

let rw_read_exit t ~proc ~cls =
  match Hashtbl.find_opt t.rw cls with
  | None -> ()
  | Some bs ->
    let down b = if b.rw_now > 0 then b.rw_now <- b.rw_now - 1 in
    down bs.(0);
    down bs.(1 + cluster t proc)

let rw_read_peak t ~cls =
  match Hashtbl.find_opt t.rw cls with None -> 0 | Some bs -> bs.(0).rw_peak

let rw_read_peak_by_cluster t ~cls =
  match Hashtbl.find_opt t.rw cls with
  | None -> []
  | Some bs ->
    List.filteri (fun i _ -> i > 0) (Array.to_list bs)
    |> List.mapi (fun c b -> (c, b.rw_peak))
    |> List.filter (fun (_, p) -> p > 0)

(* -- morph hooks ---------------------------------------------------------- *)

let morph_buckets t ~cls =
  match Hashtbl.find_opt t.morph cls with
  | Some bs -> bs
  | None ->
    let bs =
      Array.init (t.n_clusters + 1) (fun _ -> { mb_up = 0; mb_down = 0 })
    in
    Hashtbl.replace t.morph cls bs;
    bs

(* An adaptive lock of class [cls] switched shape; attributed to the
   morphing releaser's cluster. [shape] updates the current-shape gauge. *)
let lock_morphed t ~proc ~cls ~up ~shape ~now =
  let bs = morph_buckets t ~cls in
  let one b = if up then b.mb_up <- b.mb_up + 1 else b.mb_down <- b.mb_down + 1 in
  one bs.(0);
  one bs.(1 + cluster t proc);
  Hashtbl.replace t.morph_shape cls shape;
  emit t Lock_morphed ~proc ~cls ~time:now ~dur:0

let morphs_up t ~cls =
  match Hashtbl.find_opt t.morph cls with None -> 0 | Some bs -> bs.(0).mb_up

let morphs_down t ~cls =
  match Hashtbl.find_opt t.morph cls with None -> 0 | Some bs -> bs.(0).mb_down

let current_shape t ~cls =
  match Hashtbl.find_opt t.morph_shape cls with None -> 0 | Some s -> s

let morph_rows t ~cls =
  match Hashtbl.find_opt t.morph cls with
  | None -> []
  | Some bs ->
    let rows = ref [] in
    Array.iteri
      (fun i b ->
        if i > 0 && (b.mb_up <> 0 || b.mb_down <> 0) then
          rows := { m_cluster = i - 1; m_up = b.mb_up; m_down = b.mb_down } :: !rows)
      bs;
    List.rev !rows

(* -- crash hooks ---------------------------------------------------------- *)

let crash_class = Verify.lock_class "crash"

let proc_crashed t ~proc ~now =
  let cb = t.crash.(cluster t proc) in
  cb.cb_crashes <- cb.cb_crashes + 1;
  emit t Proc_crash ~proc ~cls:crash_class ~time:now ~dur:0

(* A recoverer ([proc]) released lock [cls] on a dead holder's behalf.
   Attributed — crash and latency both — to the {e dead} processor's
   cluster: recovery latency measures how long that cluster's casualty
   wedged the lock, wherever the rescuer happened to run. *)
let lock_recovered t ~proc ~cls ~dead ~latency ~now =
  let cb = t.crash.(cluster t dead) in
  cb.cb_recoveries <- cb.cb_recoveries + 1;
  cb.cb_latencies_rev <- latency :: cb.cb_latencies_rev;
  emit t Lock_recovered ~proc ~cls ~time:now ~dur:latency

let crash_rows t =
  let rows = ref [] in
  Array.iteri
    (fun c cb ->
      if cb.cb_crashes <> 0 || cb.cb_recoveries <> 0 then
        rows :=
          {
            cr_cluster = c;
            cr_crashes = cb.cb_crashes;
            cr_recoveries = cb.cb_recoveries;
            cr_latencies = List.rev cb.cb_latencies_rev;
          }
          :: !rows)
    t.crash;
  List.rev !rows

let crashes_observed t =
  Array.fold_left (fun acc cb -> acc + cb.cb_crashes) 0 t.crash

let recoveries_observed t =
  Array.fold_left (fun acc cb -> acc + cb.cb_recoveries) 0 t.crash

(* -- reserve hooks -------------------------------------------------------- *)

let reserve_set t ~proc ~cls ~word ~now =
  Hashtbl.replace t.words word (proc, cls, now);
  let b = bucket t ~cls ~proc in
  b.b_acqs <- b.b_acqs + 1;
  emit t Reserve_set ~proc ~cls ~time:now ~dur:0

let reserve_clear t ~proc ~word ~now =
  match Hashtbl.find_opt t.words word with
  | None -> ()
  | Some (owner, cls, since) ->
    Hashtbl.remove t.words word;
    (* Attribute the hold to the setter: the clear may run elsewhere (an
       RPC service clearing on the owner's behalf). *)
    let b = bucket t ~cls ~proc:owner in
    let dur = now - since in
    b.b_hold <- b.b_hold + dur;
    if count t.word_waiters word > 0 then b.b_handoffs <- b.b_handoffs + 1;
    emit t Reserve_cleared ~proc ~cls ~time:now ~dur

let reserve_read_set t ~proc ~cls ~word ~now =
  Hashtbl.replace t.read_words (word, proc) (cls, now);
  let b = bucket t ~cls ~proc in
  b.b_acqs <- b.b_acqs + 1;
  emit t Reserve_set ~proc ~cls ~time:now ~dur:0

let reserve_read_clear t ~proc ~word ~now =
  match Hashtbl.find_opt t.read_words (word, proc) with
  | None -> ()
  | Some (cls, since) ->
    Hashtbl.remove t.read_words (word, proc);
    let b = bucket t ~cls ~proc in
    let dur = now - since in
    b.b_hold <- b.b_hold + dur;
    emit t Reserve_cleared ~proc ~cls ~time:now ~dur

let reserve_wait t ~proc ~cls ~word ~now =
  t.frames.(proc) <- Fspin { word; cls; since = now } :: t.frames.(proc);
  bump t.word_waiters word 1

let reserve_wait_done t ~proc ~now =
  match pop_frame t proc (function Fspin _ -> true | _ -> false) with
  | Some (Fspin f) ->
    bump t.word_waiters f.word (-1);
    let b = bucket t ~cls:f.cls ~proc in
    b.b_contended <- b.b_contended + 1;
    let dur = now - f.since in
    b.b_wait <- b.b_wait + dur;
    if dur > b.b_max_wait then b.b_max_wait <- dur;
    emit t Reserve_spin ~proc ~cls:f.cls ~time:now ~dur
  | _ -> ()

(* -- rpc hooks ------------------------------------------------------------ *)

let rpc_issue t ~proc ~target:_ ~now =
  t.frames.(proc) <- Frpc { since = now } :: t.frames.(proc);
  let b = bucket t ~cls:rpc_class ~proc in
  b.b_acqs <- b.b_acqs + 1;
  emit t Rpc_issue ~proc ~cls:rpc_class ~time:now ~dur:0

let rpc_retry t ~proc ~now =
  let b = bucket t ~cls:rpc_class ~proc in
  b.b_contended <- b.b_contended + 1;
  emit t Rpc_retry ~proc ~cls:rpc_class ~time:now ~dur:0

let rpc_reply t ~proc ~now =
  match pop_frame t proc (function Frpc _ -> true | _ -> false) with
  | Some (Frpc f) ->
    let b = bucket t ~cls:rpc_class ~proc in
    let dur = now - f.since in
    b.b_wait <- b.b_wait + dur;
    if dur > b.b_max_wait then b.b_max_wait <- dur;
    emit t Rpc_reply ~proc ~cls:rpc_class ~time:now ~dur
  | _ -> ()

(* -- profile -------------------------------------------------------------- *)

let cells_of_bucket b =
  {
    acqs = b.b_acqs;
    contended = b.b_contended;
    wait_cycles = b.b_wait;
    max_wait_cycles = b.b_max_wait;
    hold_cycles = b.b_hold;
    handoffs = b.b_handoffs;
    handoffs_local = b.b_handoffs_local;
    handoffs_remote = b.b_handoffs_remote;
    aborts = b.b_aborts;
    abandon_repairs = b.b_abandon_repairs;
  }

let bucket_active b =
  b.b_acqs <> 0 || b.b_contended <> 0 || b.b_wait <> 0 || b.b_hold <> 0
  || b.b_handoffs <> 0 || b.b_aborts <> 0 || b.b_abandon_repairs <> 0

let profile_rows t =
  let rows = ref [] in
  Array.iteri
    (fun cls per_cluster ->
      match per_cluster with
      | None -> ()
      | Some bs ->
        let total = fresh_bucket () in
        let by_cluster = ref [] in
        Array.iteri
          (fun c b ->
            if bucket_active b then begin
              total.b_acqs <- total.b_acqs + b.b_acqs;
              total.b_contended <- total.b_contended + b.b_contended;
              total.b_wait <- total.b_wait + b.b_wait;
              if b.b_max_wait > total.b_max_wait then
                total.b_max_wait <- b.b_max_wait;
              total.b_hold <- total.b_hold + b.b_hold;
              total.b_handoffs <- total.b_handoffs + b.b_handoffs;
              total.b_handoffs_local <-
                total.b_handoffs_local + b.b_handoffs_local;
              total.b_handoffs_remote <-
                total.b_handoffs_remote + b.b_handoffs_remote;
              total.b_aborts <- total.b_aborts + b.b_aborts;
              total.b_abandon_repairs <-
                total.b_abandon_repairs + b.b_abandon_repairs;
              by_cluster := (c, cells_of_bucket b) :: !by_cluster
            end)
          bs;
        if bucket_active total then
          rows :=
            {
              row_class = Verify.class_name cls;
              total = cells_of_bucket total;
              by_cluster = List.rev !by_cluster;
            }
            :: !rows)
    t.classes;
  List.stable_sort
    (fun a b ->
      match compare b.total.wait_cycles a.total.wait_cycles with
      | 0 -> (
        match compare b.total.hold_cycles a.total.hold_cycles with
        | 0 -> compare a.row_class b.row_class
        | c -> c)
      | c -> c)
    (List.rev !rows)

(* -- trace export --------------------------------------------------------- *)

let trace_capacity t = t.trace_cap
let trace_recorded t = t.recorded
let trace_dropped t = max 0 (t.recorded - t.trace_cap)

let trace t =
  let kept = min t.recorded t.trace_cap in
  List.init kept (fun i ->
      t.ring.((t.recorded - kept + i) mod t.trace_cap))

let span_name e =
  let cls = Verify.class_name e.cls in
  match e.kind with
  | Lock_acquired -> cls ^ " acquire"
  | Lock_released -> cls ^ " hold"
  | Lock_try -> cls ^ " try"
  | Lock_abandoned -> cls ^ " abandon"
  | Lock_recovered -> cls ^ " recover"
  | Reserve_set -> cls ^ " set"
  | Reserve_cleared -> cls ^ " held"
  | Reserve_spin -> cls ^ " spin"
  | Rpc_issue -> "rpc issue"
  | Rpc_retry -> "rpc retry"
  | Rpc_reply -> "rpc"
  | Proc_crash -> "crash"
  | Lock_morphed -> cls ^ " morph"

let category = function
  | Lock_acquired | Lock_released | Lock_try | Lock_abandoned | Lock_recovered
  | Lock_morphed ->
    "lock"
  | Reserve_set | Reserve_cleared | Reserve_spin -> "reserve"
  | Rpc_issue | Rpc_retry | Rpc_reply -> "rpc"
  | Proc_crash -> "crash"

let is_span e =
  match e.kind with
  | Lock_acquired | Lock_released | Lock_abandoned | Lock_recovered
  | Reserve_cleared | Reserve_spin | Rpc_reply -> true
  | Lock_try | Reserve_set | Rpc_issue | Rpc_retry | Proc_crash | Lock_morphed
    -> false

let trace_json t ~us_per_cycle =
  let us c = float_of_int c *. us_per_cycle in
  let events = trace t in
  (* Name the processes (clusters) and threads (processors) that appear. *)
  let procs = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace procs e.proc ()) events;
  let meta =
    Hashtbl.fold (fun p () acc -> p :: acc) procs []
    |> List.sort compare
    |> List.concat_map (fun p ->
           let c = cluster t p in
           [
             Json.Obj
               [
                 ("name", Json.String "process_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int c);
                 ("args",
                  Json.Obj [ ("name", Json.String (Printf.sprintf "cluster %d" c)) ]);
               ];
             Json.Obj
               [
                 ("name", Json.String "thread_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int c);
                 ("tid", Json.Int p);
                 ("args",
                  Json.Obj [ ("name", Json.String (Printf.sprintf "cpu%d" p)) ]);
               ];
           ])
  in
  let ev_json e =
    let common =
      [
        ("name", Json.String (span_name e));
        ("cat", Json.String (category e.kind));
        ("pid", Json.Int (cluster t e.proc));
        ("tid", Json.Int e.proc);
      ]
    in
    if is_span e then
      Json.Obj
        (common
        @ [
            ("ph", Json.String "X");
            ("ts", Json.Float (us (e.time - e.dur)));
            ("dur", Json.Float (us e.dur));
          ])
    else
      Json.Obj
        (common
        @ [
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("ts", Json.Float (us e.time));
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map ev_json events));
      ("displayTimeUnit", Json.String "ms");
    ]
