(** Lockdep-style runtime verification: lock-order tracking, reserve-bit
    ownership, and a waits-for/stall watchdog.

    A checker is installed on the machine ([Hector.Machine.set_verify]) and
    the locking layers report into it from host code: hooks charge no
    simulated cycles, draw no random numbers and schedule no events, so a
    run with a checker installed has bit-identical simulated timing to one
    without (the [Eventsim.Fault] zero-cost discipline). The one exception
    is [watchdog], which is an explicit low-frequency engine event.

    Checking layers:
    - {b Lock order}: every blocking acquisition adds dependency edges from
      each lock class the processor already holds to the class being
      acquired; an edge closing a cycle across distinct classes is an
      [Order_cycle] the first time the inversion becomes possible, not only
      when it strikes. Non-blocking acquisitions (TryLock, [try_reserve])
      add no edges — they cannot be the waiting side of a deadlock — which
      is what keeps the kernel's hybrid try-reserve-under-coarse-lock
      protocol free of false positives. Same-class edges are recorded but
      not reported (file-cache read-ahead nests block reservations in
      forward index order); true same-class deadlocks are still caught by
      the watchdog.
    - {b Reserve ownership}: each set bit records owner and set time;
      double sets, foreign or double clears, leaked bits at [finish], and
      interrupt-context waits (the RPC [Would_deadlock] invariant) are
      violations.
    - {b Watchdog}: waiting processors form a functional waits-for graph
      (innermost wait frame, resource holder known from the other layers);
      a cycle is a [Deadlock_cycle], a global no-progress window with a
      waiter present is a [Stall]. Both abort the run with a diagnostic
      dump in every mode — their purpose is to terminate runs that would
      otherwise spin to the event budget. *)

(** {1 Classes and identities} *)

(** A lock class: all locks created for the same role (e.g. every per-bin
    lock of one hash table) share a class; ordering is checked between
    classes, not instances. *)
type lock_class = int

(** [lock_class name] interns [name], returning the same id for the same
    name. Creation order is deterministic, so ids are stable run to run. *)
val lock_class : string -> lock_class

val class_name : lock_class -> string

(** Globally unique lock-instance id; locks draw one at creation so their
    identity exists before any checker is installed. *)
val fresh_id : unit -> int

(** {1 Violations} *)

type kind =
  | Order_cycle  (** inverted acquisition order across lock classes *)
  | Recursive_acquire
      (** blocking on an instance/word this processor holds *)
  | Bad_release  (** releasing a lock the processor does not hold *)
  | Double_reserve  (** write-reserving an already-reserved word *)
  | Bad_clear  (** clearing a free word or one owned by someone else *)
  | Reserve_leak  (** bit still set at workload end *)
  | Interrupt_wait  (** reserve wait in interrupt context *)
  | Stall  (** watchdog: no global progress while someone waits *)
  | Deadlock_cycle  (** watchdog: actual waits-for cycle *)

val kind_name : kind -> string

type violation = { vkind : kind; vproc : int; vtime : int; vmsg : string }

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

(** {1 Checker} *)

type t

(** [create ~n_procs ()] makes a checker. In [`Record] mode (default)
    violations accumulate and the run continues; in [`Abort] mode the
    first violation raises [Violation]. [Stall] and [Deadlock_cycle]
    raise in both modes. *)
val create : ?mode:[ `Abort | `Record ] -> n_procs:int -> unit -> t

(** Violations recorded so far, oldest first. *)
val violations : t -> violation list

val violation_count : t -> int
val count_kind : t -> kind -> int

(** Per-processor held/waiting/RPC state, for diagnostics. *)
val dump : t -> now:int -> string

(** {1 Lock hooks} (called by [lib/locks] implementations) *)

(** A blocking acquisition is about to wait (called even if the lock turns
    out to be free: the dependency exists either way). *)
val wait_acquire : t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** A {e timed} blocking acquisition is about to wait. Like {!try_acquired}
    it records no order edges — a waiter that abandons at its deadline
    cannot be the permanently-waiting side of a deadlock — but it does push
    a wait frame (marked timed) so diagnostics show it; the watchdog's
    deadlock walk and stall trigger both skip timed frames. Balance with
    {!acquired} on success or {!wait_abandoned} on timeout, exactly as for
    {!wait_acquire}. *)
val wait_acquire_timed :
  t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** The blocking acquisition of [wait_acquire] succeeded. *)
val acquired : t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** A non-blocking acquisition succeeded (no [wait_acquire] was issued). *)
val try_acquired :
  t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** The blocking acquisition of [wait_acquire] timed out and gave up. *)
val wait_abandoned : t -> proc:int -> now:int -> unit

(** A release. If the releasing processor does not hold the lock but the
    registered holder has fail-stopped ({!proc_crashed}), the release is a
    legal recovery transfer: the corpse's held entry is removed and
    {!recoveries} incremented instead of reporting [Bad_release]. *)
val released : t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** A recoverer ([proc]) sweeps a hold off fail-stopped processor [dead].
    Unlike the dead-holder path of {!released} this names the corpse
    explicitly: the holder table keeps only the last acquirer of an
    instance, and a shared (RW reader-side) instance has many concurrent
    holders, so the registered holder may be a live reader while the
    processor being swept is not. Legal — the held entry is removed and
    {!recoveries} incremented — exactly when [dead] fail-stopped and holds
    the instance; a [Bad_release] otherwise. *)
val released_dead :
  t -> proc:int -> dead:int -> cls:lock_class -> id:int -> now:int -> unit

(** A legal ownership hand-off with no release/acquire pair: [proc]
    inherits the lock from its registered holder (a cohort's local pass
    moves the session to a cluster-mate while the global constituent lock
    stays held). The held entry moves to [proc], keeping its original
    acquisition time; a transfer to the registered holder itself is a
    no-op, and inheriting off a fail-stopped holder is equally legal. *)
val transferred :
  t -> proc:int -> cls:lock_class -> id:int -> now:int -> unit

(** {1 Crash hooks} (called by [Hector.Machine.kill_proc]/[revive]) *)

(** Processor [proc] fail-stopped: its wait frames and in-flight RPC are
    dropped (the parked fiber never resumes them); its held entries stay
    until recovery transfers them. Clears by recoverers of reserve words
    owned by a dead processor become legal sweeps, not [Bad_clear]s. *)
val proc_crashed : t -> proc:int -> now:int -> unit

val proc_revived : t -> proc:int -> unit

(** Is the processor currently marked fail-stopped? *)
val proc_dead : t -> int -> bool

(** Dead-holder ownership transfers and orphaned-reserve sweeps legalized
    so far. *)
val recoveries : t -> int

(** {1 Reserve hooks} (called by [Locks.Reserve]; [word] is the status
    cell's [Cell.id], [label] its allocation label for diagnostics) *)

val reserve_set :
  t -> proc:int -> cls:lock_class -> word:int -> label:string -> now:int -> unit

val reserve_clear : t -> proc:int -> word:int -> now:int -> unit

val reserve_read_set :
  t -> proc:int -> cls:lock_class -> word:int -> label:string -> now:int -> unit

val reserve_read_clear : t -> proc:int -> word:int -> now:int -> unit

(** A blocking spin on a reserve word begins. [in_interrupt] set while
    servicing an interrupt makes this an [Interrupt_wait] violation. *)
val reserve_wait :
  t ->
  proc:int ->
  cls:lock_class ->
  word:int ->
  label:string ->
  now:int ->
  in_interrupt:bool ->
  unit

val reserve_wait_done : t -> proc:int -> now:int -> unit

(** {1 RPC hooks} (diagnostics only: shown in [dump]) *)

val rpc_started : t -> proc:int -> target:int -> now:int -> unit
val rpc_finished : t -> proc:int -> now:int -> unit

(** {1 Watchdog and end-of-run checks} *)

(** [watchdog t eng] schedules a low-frequency check every [period] cycles
    (default 50k): an actual waits-for cycle raises [Violation
    Deadlock_cycle]; more than [stall_limit] cycles (default 1M) without
    any lock/reserve/RPC progress while a processor waits raises
    [Violation Stall]. Both carry [dump] output. The watchdog stops
    rescheduling itself when it is the only pending event, so finished
    workloads still terminate. *)
val watchdog : ?period:int -> ?stall_limit:int -> t -> Eventsim.Engine.t -> unit

(** End-of-workload check: report every reserve bit still set as a
    [Reserve_leak]. *)
val finish : t -> now:int -> unit
