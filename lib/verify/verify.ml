(* Lockdep-style runtime verification for the simulated kernel.

   A checker is installed on the machine (Hector.Machine.set_verify) and the
   locking layers report to it from host code only: hooks never charge
   simulated cycles, never touch the engine's RNGs, and never schedule
   events (the watchdog below is the one exception, and it is spawned
   explicitly). With no checker installed every hook site is a single
   host-side branch — the Eventsim.Fault zero-cost discipline — so
   simulation timing is bit-identical to a build without verification.

   Three layers of checking, in increasing order of "the bug already
   struck":

   1. Lock-order tracking. Each lock instance belongs to a class (interned
      by name at creation). Every *blocking* acquisition adds a dependency
      edge from each class the processor already holds to the class being
      acquired; the edge set forms a global directed graph, and a new edge
      that closes a cycle across distinct classes is reported the first
      time the inverted ordering becomes possible — not only when the two
      processors actually interleave into a deadlock. Non-blocking
      acquisitions (TryLock, try_reserve) push held entries but add no
      edges: an acquisition that cannot wait cannot be the waiting side of
      a deadlock. Edges between two nodes of the *same* class are recorded
      but not reported: the kernel's only same-class nesting (file-cache
      read-ahead) is ordered by block index and therefore safe, and actual
      same-class deadlocks are still caught by layer 3.

   2. Reserve-bit ownership. Every set bit records its owner processor and
      set time. Clears by non-owners, clears of an already-clear word,
      write-reservations of an already-reserved word, reader arithmetic,
      bits still set at workload end ([finish]) and reserve *waits* in
      interrupt context (the Would_deadlock invariant: an RPC service must
      fail rather than spin) are all violations.

   3. Waits-for graph + stall watchdog. Blocking waiters register what they
      wait on; holders are known from layer 1/2; so waiting processors form
      a functional graph (each waits on at most one resource at a time —
      nested waits from interrupt handlers form a stack and the innermost
      frame is the one occupying the processor). A low-frequency watchdog
      event walks this graph: a cycle is an actual deadlock, and a global
      window with no lock/reserve/RPC progress while someone waits is a
      stall. Both dump a per-processor diagnostic and abort the run with
      [Violation] instead of letting the simulation spin to its event
      budget. *)

open Eventsim

(* -- lock classes and instance identities --------------------------------- *)

(* Classes are interned globally by name: identity must exist before any
   checker is installed (locks are created at kernel-construction time),
   and creation order is deterministic, so ids are stable run to run. *)

type lock_class = int

(* The interning tables are the one piece of global mutable state the
   checker keeps, so they are guarded by a host-side mutex: experiment cells
   running on parallel domains (Hurricane.Par) all create locks. Ids stay
   deterministic within a domain's creation order; across domains the
   numbering depends on interleaving, which is fine because ids only name
   graph nodes and diagnostics — no exported result depends on them. *)
let intern_mu = Mutex.create ()

let class_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let class_names : string array ref = ref (Array.make 64 "") (* index = id *)
let n_classes = ref 0

let lock_class name =
  Mutex.lock intern_mu;
  let id =
    match Hashtbl.find_opt class_tbl name with
    | Some id -> id
    | None ->
      let id = !n_classes in
      n_classes := id + 1;
      let cap = Array.length !class_names in
      if id >= cap then begin
        let bigger = Array.make (2 * cap) "" in
        Array.blit !class_names 0 bigger 0 cap;
        class_names := bigger
      end;
      !class_names.(id) <- name;
      Hashtbl.replace class_tbl name id;
      id
  in
  Mutex.unlock intern_mu;
  id

let class_name id =
  Mutex.lock intern_mu;
  let name =
    if id < 0 || id >= !n_classes then begin
      Mutex.unlock intern_mu;
      invalid_arg (Printf.sprintf "Verify.class_name: unknown class %d" id)
    end
    else !class_names.(id)
  in
  Mutex.unlock intern_mu;
  name

let instance_counter = Atomic.make 0

let fresh_id () = 1 + Atomic.fetch_and_add instance_counter 1

(* -- violations ----------------------------------------------------------- *)

type kind =
  | Order_cycle (* inverted acquisition order across lock classes *)
  | Recursive_acquire (* blocking on an instance the processor holds *)
  | Bad_release (* releasing a lock the processor does not hold *)
  | Double_reserve (* write-reserving an already-reserved word *)
  | Bad_clear (* clearing a free word, or one owned by someone else *)
  | Reserve_leak (* bit still set at workload end *)
  | Interrupt_wait (* reserve wait in interrupt context (Would_deadlock) *)
  | Stall (* watchdog: no global progress while someone waits *)
  | Deadlock_cycle (* watchdog: actual waits-for cycle *)

let kind_name = function
  | Order_cycle -> "order-cycle"
  | Recursive_acquire -> "recursive-acquire"
  | Bad_release -> "bad-release"
  | Double_reserve -> "double-reserve"
  | Bad_clear -> "bad-clear"
  | Reserve_leak -> "reserve-leak"
  | Interrupt_wait -> "interrupt-wait"
  | Stall -> "stall"
  | Deadlock_cycle -> "deadlock"

type violation = { vkind : kind; vproc : int; vtime : int; vmsg : string }

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "[%s] p%d @%d: %s" (kind_name v.vkind) v.vproc v.vtime
    v.vmsg

(* -- checker state -------------------------------------------------------- *)

type held_kind = Hlock | Hreserve_w | Hreserve_r

type held = {
  h_cls : lock_class;
  h_id : int; (* lock instance id, or the reserve word's cell id *)
  h_kind : held_kind;
  h_since : int;
}

type wait = {
  w_cls : lock_class;
  w_id : int;
  w_lock : bool; (* false = reserve word *)
  w_timed : bool; (* timed acquisition: can abandon, never deadlocks *)
  w_since : int;
}

type word_state =
  | Wwrite of { owner : int; since : int }
  | Wread of (int * int) list (* (reader proc, since); newest first *)
  | Wfree

type t = {
  mode : [ `Abort | `Record ];
  n_procs : int;
  held : held list array; (* per processor, newest first *)
  waits : wait list array; (* per processor, innermost first *)
  rpc_to : int array; (* in-flight RPC target per processor, -1 = none *)
  rpc_since : int array;
  words : (int, word_state) Hashtbl.t; (* cell id -> reserve state *)
  word_info : (int, lock_class * string) Hashtbl.t; (* class, label *)
  lock_holder : (int, int) Hashtbl.t; (* lock instance id -> holder proc *)
  edges : (int * int, string) Hashtbl.t; (* class edge -> first witness *)
  succs : (int, int list) Hashtbl.t; (* adjacency for cycle search *)
  mutable violations : violation list; (* newest first *)
  mutable last_progress : int;
  mutable watchdog_live : bool;
  dead : bool array; (* fail-stopped processors (Machine.kill_proc) *)
  mutable recoveries : int;
      (* dead-holder ownership transfers + orphaned-reserve sweeps
         legalized below — the "recovery is not a violation" count *)
}

let create ?(mode = `Record) ~n_procs () =
  {
    mode;
    n_procs;
    held = Array.make n_procs [];
    waits = Array.make n_procs [];
    rpc_to = Array.make n_procs (-1);
    rpc_since = Array.make n_procs 0;
    words = Hashtbl.create 256;
    word_info = Hashtbl.create 256;
    lock_holder = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    succs = Hashtbl.create 64;
    violations = [];
    last_progress = 0;
    watchdog_live = false;
    dead = Array.make n_procs false;
    recoveries = 0;
  }

let violations t = List.rev t.violations
let violation_count t = List.length t.violations

let count_kind t k =
  List.length (List.filter (fun v -> v.vkind = k) t.violations)

let report t ~kind ~proc ~now msg =
  let v = { vkind = kind; vproc = proc; vtime = now; vmsg = msg } in
  t.violations <- v :: t.violations;
  match t.mode with `Abort -> raise (Violation v) | `Record -> ()

(* Stall / deadlock findings abort in both modes: their whole point is to
   terminate a run that would otherwise spin to the event budget. *)
let report_fatal t ~kind ~proc ~now msg =
  let v = { vkind = kind; vproc = proc; vtime = now; vmsg = msg } in
  t.violations <- v :: t.violations;
  raise (Violation v)

let progress t ~now = t.last_progress <- now
let recoveries t = t.recoveries
let proc_dead t proc = t.dead.(proc)

(* A processor fail-stopped. Its held entries stay — it really does still
   own what it owned, and recovery transfers ownership via [released] —
   but its wait frames and in-flight RPC are dropped: the parked fiber
   will never resume them, and the watchdog must not chase a ghost. *)
let proc_crashed t ~proc ~now =
  t.dead.(proc) <- true;
  t.waits.(proc) <- [];
  t.rpc_to.(proc) <- -1;
  progress t ~now

let proc_revived t ~proc = t.dead.(proc) <- false

(* -- diagnostics ---------------------------------------------------------- *)

let describe_instance cls id = Printf.sprintf "%s#%d" (class_name cls) id

let word_desc t word =
  match Hashtbl.find_opt t.word_info word with
  | Some (cls, label) ->
    if label = "" then describe_instance cls word
    else Printf.sprintf "%s(%s)" (describe_instance cls word) label
  | None -> Printf.sprintf "word#%d" word

let held_desc t h =
  match h.h_kind with
  | Hlock -> Printf.sprintf "%s(since %d)" (describe_instance h.h_cls h.h_id) h.h_since
  | Hreserve_w -> Printf.sprintf "%s:W(since %d)" (word_desc t h.h_id) h.h_since
  | Hreserve_r -> Printf.sprintf "%s:R(since %d)" (word_desc t h.h_id) h.h_since

(* Who holds the resource a wait frame is waiting on, if known. *)
let holder_of_wait t w =
  if w.w_lock then Hashtbl.find_opt t.lock_holder w.w_id
  else
    match Hashtbl.find_opt t.words w.w_id with
    | Some (Wwrite { owner; _ }) -> Some owner
    | Some (Wread ((p, _) :: _)) -> Some p
    | _ -> None

let wait_desc t w =
  let target =
    if w.w_lock then describe_instance w.w_cls w.w_id else word_desc t w.w_id
  in
  let holder =
    match holder_of_wait t w with
    | Some p -> Printf.sprintf " held by p%d" p
    | None -> ""
  in
  Printf.sprintf "%s since %d%s" target w.w_since holder

(* The per-processor state dump attached to watchdog findings: what each
   processor holds, what it waits on (innermost first), any RPC in flight,
   and the oldest waiter — the place to start reading. *)
let dump t ~now =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "verify dump @%d:\n" now);
  let oldest = ref None in
  for p = 0 to t.n_procs - 1 do
    let held =
      match t.held.(p) with
      | [] -> "-"
      | hs -> String.concat ", " (List.map (held_desc t) (List.rev hs))
    in
    let waiting =
      match t.waits.(p) with
      | [] -> "-"
      | ws ->
        List.iter
          (fun w ->
            match !oldest with
            | Some (_, since) when since <= w.w_since -> ()
            | _ -> oldest := Some (p, w.w_since))
          ws;
        String.concat " <- " (List.map (wait_desc t) ws)
    in
    let rpc =
      if t.rpc_to.(p) < 0 then ""
      else Printf.sprintf "  rpc->p%d since %d" t.rpc_to.(p) t.rpc_since.(p)
    in
    Buffer.add_string b
      (Printf.sprintf "  p%d: held=[%s]  waiting=%s%s\n" p held waiting rpc)
  done;
  (match !oldest with
  | None -> ()
  | Some (p, since) ->
    Buffer.add_string b
      (Printf.sprintf "  oldest waiter: p%d, waiting %d cycles\n" p
         (now - since)));
  Buffer.add_string b
    (Printf.sprintf "  last progress @%d (%d cycles ago)" t.last_progress
       (now - t.last_progress));
  Buffer.contents b

(* -- lock-order graph ----------------------------------------------------- *)

(* Is [target] reachable from [src] in the class graph? Returns the path
   (src excluded, target included) for the report. *)
let find_path t ~src ~target =
  let visited = Hashtbl.create 16 in
  let rec go node =
    if node = target then Some [ node ]
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      let nexts =
        match Hashtbl.find_opt t.succs node with Some l -> l | None -> []
      in
      List.fold_left
        (fun acc n ->
          match acc with
          | Some _ -> acc
          | None -> (
            match go n with Some path -> Some (node :: path) | None -> None))
        None nexts
    end
  in
  match Hashtbl.find_opt t.succs src with
  | None -> None
  | Some nexts ->
    List.fold_left
      (fun acc n ->
        match acc with Some _ -> acc | None -> go n)
      None nexts

let add_edge t ~proc ~now ~from_held cls =
  let a = from_held.h_cls in
  if not (Hashtbl.mem t.edges (a, cls)) then begin
    let witness =
      Printf.sprintf "p%d acquired %s while holding %s @%d" proc
        (class_name cls) (class_name a) now
    in
    (* Report before inserting, so the cycle found is the pre-existing
       reverse path this new edge closes. Same-class edges (a = cls) are
       recorded for the dump but not reported — see the header comment. *)
    (if a <> cls then
       match find_path t ~src:cls ~target:a with
       | None -> ()
       | Some path ->
         let cycle = a :: cls :: path in
         let prior =
           match Hashtbl.find_opt t.edges (cls, a) with
           | Some w -> w
           | None -> "earlier nesting"
         in
         report t ~kind:Order_cycle ~proc ~now
           (Printf.sprintf
              "lock-order cycle %s: %s, but previously %s"
              (String.concat " -> " (List.map class_name cycle))
              witness prior));
    Hashtbl.replace t.edges (a, cls) witness;
    let nexts =
      match Hashtbl.find_opt t.succs a with Some l -> l | None -> []
    in
    Hashtbl.replace t.succs a (cls :: nexts)
  end

(* -- lock events ---------------------------------------------------------- *)

let push_wait t ~proc w = t.waits.(proc) <- w :: t.waits.(proc)

let pop_wait t ~proc =
  match t.waits.(proc) with [] -> () | _ :: rest -> t.waits.(proc) <- rest

(* A blocking acquisition begins: record order edges from everything held,
   flag recursion on an instance we already hold, and register the wait for
   the watchdog. Runs before the first spin, so the dependency is recorded
   even if the lock turns out to be free. *)
let wait_acquire t ~proc ~cls ~id ~now =
  if
    List.exists
      (fun h -> h.h_kind = Hlock && h.h_id = id)
      t.held.(proc)
  then
    report t ~kind:Recursive_acquire ~proc ~now
      (Printf.sprintf "blocking acquire of %s already held by this processor"
         (describe_instance cls id));
  List.iter (fun h -> add_edge t ~proc ~now ~from_held:h cls) t.held.(proc);
  push_wait t ~proc
    { w_cls = cls; w_id = id; w_lock = true; w_timed = false; w_since = now }

(* A *timed* blocking acquisition begins. Like TryLock it records no order
   edges — a waiter that will abandon its wait at a deadline cannot be the
   permanently-waiting side of a deadlock — but it does register a wait
   frame so the dump shows it and [acquired]/[wait_abandoned] stay
   balanced. The frame is marked [w_timed] so the watchdog's cycle walk
   skips it: a cycle through a timed waiter self-resolves at the
   deadline. *)
let wait_acquire_timed t ~proc ~cls ~id ~now =
  if List.exists (fun h -> h.h_kind = Hlock && h.h_id = id) t.held.(proc) then
    report t ~kind:Recursive_acquire ~proc ~now
      (Printf.sprintf
         "timed blocking acquire of %s already held by this processor"
         (describe_instance cls id));
  push_wait t ~proc
    { w_cls = cls; w_id = id; w_lock = true; w_timed = true; w_since = now }

let acquired t ~proc ~cls ~id ~now =
  pop_wait t ~proc;
  t.held.(proc) <-
    { h_cls = cls; h_id = id; h_kind = Hlock; h_since = now } :: t.held.(proc);
  Hashtbl.replace t.lock_holder id proc;
  progress t ~now

(* A successful TryLock: held, but no order edges — it could not have
   waited. *)
let try_acquired t ~proc ~cls ~id ~now =
  t.held.(proc) <-
    { h_cls = cls; h_id = id; h_kind = Hlock; h_since = now } :: t.held.(proc);
  Hashtbl.replace t.lock_holder id proc;
  progress t ~now

(* A timed-out blocking acquisition gave up. *)
let wait_abandoned t ~proc ~now =
  pop_wait t ~proc;
  progress t ~now

let released t ~proc ~cls ~id ~now =
  let found = ref false in
  t.held.(proc) <-
    List.filter
      (fun h ->
        if (not !found) && h.h_kind = Hlock && h.h_id = id then begin
          found := true;
          false
        end
        else true)
      t.held.(proc);
  if !found then Hashtbl.remove t.lock_holder id
  else begin
    (* Recovery is a legal ownership transfer: a releaser that does not
       hold the lock, when the registered holder fail-stopped, is a
       recoverer running the dead holder's release on its behalf. Move
       the held entry off the corpse instead of reporting. *)
    match Hashtbl.find_opt t.lock_holder id with
    | Some owner when t.dead.(owner) ->
      t.held.(owner) <-
        List.filter
          (fun h -> not (h.h_kind = Hlock && h.h_id = id))
          t.held.(owner);
      Hashtbl.remove t.lock_holder id;
      t.recoveries <- t.recoveries + 1
    | _ ->
      report t ~kind:Bad_release ~proc ~now
        (Printf.sprintf "released %s without holding it"
           (describe_instance cls id))
  end;
  progress t ~now

(* A recoverer sweeps a hold left by fail-stopped processor [dead]. The
   [released] dead-holder path cannot legalise this one: [lock_holder]
   remembers only the *last* acquirer of an instance, and a shared (RW
   reader-side) instance has many concurrent holders, so the registered
   holder may well be a live reader while the corpse being swept is not.
   Naming the corpse removes the ambiguity: legal exactly when [dead]
   fail-stopped and holds the instance. *)
let released_dead t ~proc ~dead ~cls ~id ~now =
  if not t.dead.(dead) then
    report t ~kind:Bad_release ~proc ~now
      (Printf.sprintf "swept %s off p%d, which is alive"
         (describe_instance cls id) dead)
  else begin
    let found = ref false in
    t.held.(dead) <-
      List.filter
        (fun h ->
          if (not !found) && h.h_kind = Hlock && h.h_id = id then begin
            found := true;
            false
          end
          else true)
        t.held.(dead);
    if !found then begin
      (match Hashtbl.find_opt t.lock_holder id with
      | Some owner when owner = dead -> Hashtbl.remove t.lock_holder id
      | _ -> ());
      t.recoveries <- t.recoveries + 1
    end
    else
      report t ~kind:Bad_release ~proc ~now
        (Printf.sprintf "swept %s off p%d, which does not hold it"
           (describe_instance cls id) dead)
  end;
  progress t ~now

(* A legal ownership hand-off with no release/acquire pair: a cohort's
   local pass moves the critical section to a cluster-mate while the
   still-held global constituent lock stays put, so the registered holder
   must follow the session or the eventual release looks foreign. The
   recipient inherits the held entry (original acquisition time included —
   the lock has been continuously held); inheriting off a fail-stopped
   holder is the same move and equally legal, the recovery accounting
   having been done by the composite's own release. *)
let transferred t ~proc ~cls ~id ~now =
  (match Hashtbl.find_opt t.lock_holder id with
  | Some owner when owner = proc -> ()
  | Some owner ->
    let frame = ref None in
    t.held.(owner) <-
      List.filter
        (fun h ->
          if !frame = None && h.h_kind = Hlock && h.h_id = id then begin
            frame := Some h;
            false
          end
          else true)
        t.held.(owner);
    let since = match !frame with Some h -> h.h_since | None -> now in
    t.held.(proc) <-
      { h_cls = cls; h_id = id; h_kind = Hlock; h_since = since }
      :: t.held.(proc);
    Hashtbl.replace t.lock_holder id proc
  | None ->
    (* No registered holder (checker installed mid-session): adopt. *)
    t.held.(proc) <-
      { h_cls = cls; h_id = id; h_kind = Hlock; h_since = now }
      :: t.held.(proc);
    Hashtbl.replace t.lock_holder id proc);
  progress t ~now

(* -- reserve events ------------------------------------------------------- *)

let note_word t ~cls ~word ~label =
  if not (Hashtbl.mem t.word_info word) then
    Hashtbl.replace t.word_info word (cls, label)

let reserve_set t ~proc ~cls ~word ~label ~now =
  note_word t ~cls ~word ~label;
  (match Hashtbl.find_opt t.words word with
  | Some (Wwrite { owner; since }) ->
    report t ~kind:Double_reserve ~proc ~now
      (Printf.sprintf "write-reserved %s already reserved by p%d since %d"
         (word_desc t word) owner since)
  | Some (Wread ((p, _) :: _)) ->
    report t ~kind:Double_reserve ~proc ~now
      (Printf.sprintf "write-reserved %s with readers (p%d among them)"
         (word_desc t word) p)
  | Some (Wread []) | Some Wfree | None -> ());
  Hashtbl.replace t.words word (Wwrite { owner = proc; since = now });
  t.held.(proc) <-
    { h_cls = cls; h_id = word; h_kind = Hreserve_w; h_since = now }
    :: t.held.(proc);
  progress t ~now

let remove_held_word t ~proc ~word =
  let found = ref false in
  t.held.(proc) <-
    List.filter
      (fun h ->
        if (not !found) && h.h_kind <> Hlock && h.h_id = word then begin
          found := true;
          false
        end
        else true)
      t.held.(proc);
  !found

let reserve_clear t ~proc ~word ~now =
  (match Hashtbl.find_opt t.words word with
  | Some (Wwrite { owner; _ }) when owner = proc ->
    ignore (remove_held_word t ~proc ~word)
  | Some (Wwrite { owner; since }) ->
    ignore (remove_held_word t ~proc:owner ~word);
    (* Sweeping a reservation orphaned by a fail-stopped owner is legal
       recovery, not a foreign clear. *)
    if t.dead.(owner) then t.recoveries <- t.recoveries + 1
    else
      report t ~kind:Bad_clear ~proc ~now
        (Printf.sprintf "cleared %s owned by p%d since %d" (word_desc t word)
           owner since)
  | Some Wfree ->
    report t ~kind:Bad_clear ~proc ~now
      (Printf.sprintf "cleared %s which is not reserved (double clear?)"
         (word_desc t word))
  | Some (Wread _) ->
    report t ~kind:Bad_clear ~proc ~now
      (Printf.sprintf "write-cleared %s while it holds read reservations"
         (word_desc t word))
  | None ->
    (* A word first seen at its clear pre-dates the checker's install;
       adopt it silently. *)
    ());
  Hashtbl.replace t.words word Wfree;
  progress t ~now

let reserve_read_set t ~proc ~cls ~word ~label ~now =
  note_word t ~cls ~word ~label;
  (match Hashtbl.find_opt t.words word with
  | Some (Wwrite { owner; since }) ->
    report t ~kind:Double_reserve ~proc ~now
      (Printf.sprintf "read-reserved %s write-held by p%d since %d"
         (word_desc t word) owner since)
  | Some (Wread rs) -> Hashtbl.replace t.words word (Wread ((proc, now) :: rs))
  | Some Wfree | None -> Hashtbl.replace t.words word (Wread [ (proc, now) ]));
  (match Hashtbl.find_opt t.words word with
  | Some (Wwrite _) -> ()
  | _ ->
    t.held.(proc) <-
      { h_cls = cls; h_id = word; h_kind = Hreserve_r; h_since = now }
      :: t.held.(proc));
  progress t ~now

let reserve_read_clear t ~proc ~word ~now =
  (match Hashtbl.find_opt t.words word with
  | Some (Wread rs) when List.mem_assoc proc rs ->
    ignore (remove_held_word t ~proc ~word);
    let rs = List.remove_assoc proc rs in
    Hashtbl.replace t.words word (if rs = [] then Wfree else Wread rs)
  | Some (Wread ((p, _) :: _)) ->
    report t ~kind:Bad_clear ~proc ~now
      (Printf.sprintf "read-cleared %s without a read reservation (p%d has one)"
         (word_desc t word) p)
  | Some (Wread []) | Some Wfree ->
    report t ~kind:Bad_clear ~proc ~now
      (Printf.sprintf "read-cleared %s which has no readers" (word_desc t word))
  | Some (Wwrite { owner; _ }) ->
    report t ~kind:Bad_clear ~proc ~now
      (Printf.sprintf "read-cleared %s write-held by p%d" (word_desc t word)
         owner)
  | None -> Hashtbl.replace t.words word Wfree);
  progress t ~now

(* A blocking spin on a reserve word. This is where the Would_deadlock
   invariant is enforced: a processor in interrupt context (an RPC service
   or deferred work record) must never wait on a reserve bit — the holder
   may need this very processor to make progress. *)
let reserve_wait t ~proc ~cls ~word ~label ~now ~in_interrupt =
  note_word t ~cls ~word ~label;
  if in_interrupt then
    report t ~kind:Interrupt_wait ~proc ~now
      (Printf.sprintf "interrupt-context wait on %s" (word_desc t word));
  (match Hashtbl.find_opt t.words word with
  | Some (Wwrite { owner; since }) when owner = proc ->
    report t ~kind:Recursive_acquire ~proc ~now
      (Printf.sprintf "waiting on %s reserved by this processor since %d"
         (word_desc t word) since)
  | _ -> ());
  List.iter (fun h -> add_edge t ~proc ~now ~from_held:h cls) t.held.(proc);
  push_wait t ~proc
    { w_cls = cls; w_id = word; w_lock = false; w_timed = false; w_since = now }

let reserve_wait_done t ~proc ~now =
  pop_wait t ~proc;
  progress t ~now

(* -- rpc events (diagnostics only) ---------------------------------------- *)

let rpc_started t ~proc ~target ~now =
  t.rpc_to.(proc) <- target;
  t.rpc_since.(proc) <- now

let rpc_finished t ~proc ~now =
  t.rpc_to.(proc) <- -1;
  progress t ~now

(* -- watchdog ------------------------------------------------------------- *)

(* Waiting processors form a functional graph: p waits on a resource whose
   holder is q. Walk successor chains with a step bound; returning to the
   start is an actual deadlock. *)
let find_deadlock t =
  let next p =
    match t.waits.(p) with
    | [] -> None
    | w :: _ when w.w_timed -> None (* will abandon at its deadline *)
    | w :: _ -> (
      match holder_of_wait t w with
      | Some q when q <> p -> Some q
      | _ -> None)
  in
  let rec walk start p steps acc =
    if steps > t.n_procs then None
    else
      match next p with
      | None -> None
      | Some q -> if q = start then Some (List.rev (p :: acc)) else walk start q (steps + 1) (p :: acc)
  in
  let rec scan p =
    if p >= t.n_procs then None
    else
      match walk p p 0 [] with
      | Some cycle -> Some (p :: List.tl cycle @ [ p ])
      | None -> scan (p + 1)
  in
  scan 0

let check t ~now ~stall_limit =
  (match find_deadlock t with
  | Some cycle ->
    let chain =
      String.concat " -> " (List.map (Printf.sprintf "p%d") cycle)
    in
    report_fatal t ~kind:Deadlock_cycle ~proc:(List.hd cycle) ~now
      (Printf.sprintf "waits-for cycle %s\n%s" chain (dump t ~now))
  | None -> ());
  (* Timed waiters don't count: they self-resolve at their deadline, and
     each abandonment is itself progress. *)
  let someone_waits =
    Array.exists (fun ws -> List.exists (fun w -> not w.w_timed) ws) t.waits
  in
  if someone_waits && now - t.last_progress > stall_limit then begin
    let proc =
      let p = ref 0 in
      Array.iteri (fun i ws -> if ws <> [] && t.waits.(!p) = [] then p := i) t.waits;
      !p
    in
    report_fatal t ~kind:Stall ~proc ~now
      (Printf.sprintf "no lock/reserve/RPC progress for %d cycles\n%s"
         (now - t.last_progress) (dump t ~now))
  end

(* The watchdog is an ordinary low-frequency engine event. It stops
   rescheduling itself once it is the only thing left in the heap, so a
   finished workload still terminates; a spinning workload keeps the heap
   populated and keeps the watchdog alive until it fires. *)
let watchdog ?(period = 50_000) ?(stall_limit = 1_000_000) t eng =
  if t.watchdog_live then invalid_arg "Verify.watchdog: already running";
  t.watchdog_live <- true;
  t.last_progress <- Engine.now eng;
  let rec tick () =
    if Engine.pending eng = 0 then t.watchdog_live <- false
    else begin
      check t ~now:(Engine.now eng) ~stall_limit;
      Engine.schedule_after eng ~delay:period tick
    end
  in
  Engine.schedule_after eng ~delay:period tick

(* -- end-of-workload checks ----------------------------------------------- *)

(* Leaked reserve bits: every word still write-held or read-held once the
   workload claims to be done. Lock-holder state is intentionally not
   flagged here (some workloads end their window mid-operation); the dump
   shows it. *)
let finish t ~now =
  Hashtbl.iter
    (fun word state ->
      match state with
      | Wfree -> ()
      | Wwrite { owner; since } ->
        report t ~kind:Reserve_leak ~proc:owner ~now
          (Printf.sprintf "%s still write-reserved by p%d since %d (leaked)"
             (word_desc t word) owner since)
      | Wread rs ->
        List.iter
          (fun (p, since) ->
            report t ~kind:Reserve_leak ~proc:p ~now
              (Printf.sprintf "%s still read-reserved by p%d since %d (leaked)"
                 (word_desc t word) p since))
          rs)
    t.words
