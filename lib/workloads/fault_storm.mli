(** Fault-injection storm: workers run the hybrid-locking fast path (coarse
    MCS lock + reserve bits) plus periodic RPCs to a server a "hog" keeps
    reserved, while a {!Eventsim.Fault} plan injects holder stalls, RPC
    delay/loss and memory hot-spots. Compares the unbounded pre-existing
    protocol against timeout-capable locking and bounded-retry RPC. *)

open Eventsim
open Hector

type mechanism =
  | No_timeout  (** plain acquire, unbounded spins, unbounded RPC retry *)
  | Timeout
      (** lock/reserve timeouts (defer or re-search); RPC retry unbounded *)
  | Bounded_retry  (** timeouts plus an RPC attempt budget ([Gave_up]) *)

val mechanism_name : mechanism -> string

type config = {
  p : int;  (** worker processors (server and hog take two more) *)
  s : int;  (** independent structures, each with its own coarse lock *)
  k : int;  (** elements per structure *)
  hold_us : float;
  think_us : float;
  window_us : float;
  rpc_every : int;  (** one op in [rpc_every] also calls the server *)
  lock_timeout_us : float;
  reserve_timeout_us : float;
  max_attempts : int;  (** RPC attempt budget under [Bounded_retry] *)
  hog_hold_us : float;
  hog_idle_us : float;
  seed : int;
  fault : Fault.config option;  (** [None]: nothing injected *)
}

val default_config : config

type result = {
  mechanism : mechanism;
  ops : int;
  deferred : int;  (** ops deferred locally after a lock timeout *)
  rpc_ok : int;
  rpc_calls : int;
  rpc_resends : int;
  rpc_gave_ups : int;
  lock_timeouts : int;
  lock_gcs : int;
  reserve_timeouts : int;
  stalls_injected : int;
  delays_injected : int;
  drops_injected : int;
  hotspots_injected : int;
  recovery : Measure.summary;
      (** per injected stall: stall start to the next reserve acquisition *)
}

(** Run the storm. With [verify] the lockdep checker is installed on the
    machine before any lock traffic and its stall watchdog runs alongside
    the workload; [Verify.finish] is called at the end so leaked reserve
    bits are reported. The hooks are host-side only: results are identical
    with and without a checker. Pair [verify] with a drop-free fault plan —
    reply-drop recovery re-executes services at-least-once, which the
    ownership checker rightly flags as a double clear.

    With [obs] a contention observer ({!Obs}) is installed before any lock
    traffic; like the checker its hooks are host-side only, so profiling or
    tracing a storm cannot move its simulated timing. *)
val run :
  ?cfg:Config.t ->
  ?config:config ->
  ?verify:Verify.t ->
  ?obs:Obs.t ->
  mechanism ->
  result
