(* Abort storm: timed acquisition under a planted cross-cluster holder
   stall (the ABORT-STORM experiment).

   One processor — cluster 0's proc 0 — periodically takes the lock with a
   plain acquire and then goes dark for [stall_us], far longer than any
   waiter's patience: a crashed or preempted holder as seen from every
   other cluster. All other processors hammer the same lock through the
   timed face ([Lock.try_acquire_for]) with a [timeout_us] deadline per
   attempt. Under an unbounded protocol every one of them would be stuck
   for the whole stall; with HMCS-T-style abandonment each must return
   [false] within a bounded overshoot of its own deadline — waiters
   sharing the holder's cluster expire at the local level, cluster heads
   blocked on the root expire at the root level, and a cohort's waiters
   expire inside either constituent. The single absolute deadline is the
   per-level budget: however many levels the attempt climbed, the sum of
   the level waits is bounded by it.

   What the storm measures, per algorithm:

   - the overshoot distribution — how far past its deadline each failed
     attempt returned (the abandonment protocol's latency bound; an
     unbounded protocol has no such number);
   - the worst return-to-timeout ratio, the "bounded multiple" of the
     acceptance criterion;
   - recovery — the time from each stall's release to the next successful
     timed acquisition by any waiter (abandoned queue state must not
     wedge the lock once the holder comes back);
   - the abort and abandoned-node-repair counts the contention observer
     attributes per cluster, which is how the cross-NUMA claim is checked:
     clusters other than the staller's must show aborts too, i.e. waiters
     time out at every level of the composite, not just beside the holder.

   The stall is planted directly (the holder spins [Ctx.work] inside the
   critical section) rather than via a [Fault] plan: the experiment needs
   the stall attributed to a known cluster at a known time, and the
   holder's own acquisitions excluded from the timed-attempt counts.

   After the measurement window every processor, staller included, runs
   one plain acquire/release: abandoned nodes left by expiring waiters
   are repaired at grant time, so a final untimed pass through every
   cluster drains them and the lock must end free ([final_free]). *)

open Eventsim
open Hector
open Hkernel
open Locks

type config = {
  p : int;
  n_clusters : int;
  timeout_us : float;  (* per-attempt deadline for the timed waiters *)
  stall_us : float;  (* how long the planted holder goes dark *)
  stall_idle_us : float;  (* gap between stalls (the recovery window) *)
  hold_us : float;  (* a successful waiter's critical section *)
  think_us : float;
  window_us : float;
  seed : int;
}

let default_config =
  {
    p = 16;
    n_clusters = 4;
    timeout_us = 150.0;
    stall_us = 1_500.0;
    stall_idle_us = 1_500.0;
    hold_us = 2.0;
    think_us = 5.0;
    window_us = 20_000.0;
    seed = 13;
  }

type result = {
  algo : Lock.algo;
  attempts : int;  (* timed acquisition attempts (staller excluded) *)
  acquisitions : int;  (* timed attempts that got the lock *)
  aborts : int;  (* timed attempts that expired and gave up *)
  fast_fails : int;
      (* of those, attempts refused before the deadline: the waiter's
         abandoned node from an earlier expiry was still enqueued, so the
         timed face fails instantly rather than enqueue twice *)
  stalls : int;  (* planted holder stalls completed *)
  overshoot : Measure.summary;
      (* per waited-out expiry (fast-fails excluded): return time minus
         deadline *)
  max_overshoot_us : float;
  bound_ratio : float;
      (* worst (return - issue) / timeout over failed attempts: the
         "bounded multiple of the deadline" of the acceptance bound *)
  recovery : Measure.summary;
      (* per stall: release to the next successful timed acquisition *)
  obs_aborts : int;  (* observer-counted aborts, constituents included *)
  obs_repairs : int;  (* abandoned nodes reclaimed by later hand-offs *)
  remote_aborts : int;
      (* aborts attributed to clusters other than the staller's: timed
         waiters expiring beyond the holder's own cluster *)
  final_free : bool;  (* lock free after the final untimed drain *)
}

(* The lock's top-level activity is profiled under this class; a cohort's
   constituents report under "<class>.local" / "<class>.global" (their
   aborts are folded into [obs_aborts] but not [remote_aborts], which
   reads only the top-level row). *)
let obs_class = "abortstorm"

let run ?(cfg = Config.hector) ?(config = default_config) algo =
  if config.n_clusters <= 0 || config.n_clusters > config.p then
    invalid_arg "Abort_storm.run: n_clusters out of range";
  if config.p < 2 then invalid_arg "Abort_storm.run: need a staller and a waiter";
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let clustering =
    Clustering.create ~n_procs:config.p
      ~cluster_size:((config.p + config.n_clusters - 1) / config.n_clusters)
  in
  let cluster_of = Clustering.cluster_of_proc clustering in
  let obs =
    Obs.create ~cluster_of
      ~n_clusters:(Clustering.n_clusters clustering)
      ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  let lock =
    Lock.make machine ~home:0 ~vclass:obs_class
      ~topo:(Clustering.topo clustering) algo
  in
  if not lock.Lock.abortable then
    invalid_arg
      (Printf.sprintf "Abort_storm.run: %s is not abortable"
         (Lock.algo_name algo));
  let timeout = Config.cycles_of_us cfg config.timeout_us in
  let stall = Config.cycles_of_us cfg config.stall_us in
  let stall_idle = Config.cycles_of_us cfg config.stall_idle_us in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let t_end = Config.cycles_of_us cfg config.window_us in
  let rng = Rng.create config.seed in
  let ctxs =
    Array.init config.p (fun proc -> Ctx.create machine ~proc (Rng.split rng))
  in
  let attempts = ref 0 in
  let acquisitions = ref 0 in
  let aborts = ref 0 in
  let fast_fails = ref 0 in
  let over_stat = Stat.create (Lock.algo_name algo) in
  let max_overshoot = ref 0 in
  let bound_ratio = ref 0.0 in
  let releases_rev = ref [] in
  let entries_rev = ref [] in
  (* The planted staller: plain acquire, go dark, release, idle. Its own
     acquisitions never enter the timed-attempt counts. *)
  Process.spawn eng (fun () ->
      let ctx = ctxs.(0) in
      let rec loop () =
        if Machine.now machine < t_end then begin
          lock.Lock.acquire ctx;
          Ctx.work ctx stall;
          lock.Lock.release ctx;
          releases_rev := Machine.now machine :: !releases_rev;
          Ctx.interruptible_pause ctx stall_idle;
          loop ()
        end
      in
      loop ();
      (* Final drain pass (see header). *)
      lock.Lock.acquire ctx;
      Ctx.work ctx 20;
      lock.Lock.release ctx);
  (* Timed waiters on every processor and (therefore) in every cluster. *)
  for proc = 1 to config.p - 1 do
    let ctx = ctxs.(proc) in
    Process.spawn eng (fun () ->
        let rec loop () =
          if Machine.now machine < t_end then begin
            incr attempts;
            let issue = Machine.now machine in
            let deadline = issue + timeout in
            if lock.Lock.try_acquire_for ctx ~deadline then begin
              incr acquisitions;
              entries_rev := Machine.now machine :: !entries_rev;
              if hold > 0 then Ctx.work ctx hold;
              lock.Lock.release ctx
            end
            else begin
              incr aborts;
              let ret = Machine.now machine in
              if ret < deadline then incr fast_fails
              else begin
                let overshoot = ret - deadline in
                Stat.add over_stat overshoot;
                if overshoot > !max_overshoot then max_overshoot := overshoot;
                let ratio =
                  float_of_int (ret - issue) /. float_of_int (max 1 timeout)
                in
                if ratio > !bound_ratio then bound_ratio := ratio
              end
            end;
            if think > 0 then
              Ctx.work ctx ((think / 2) + Rng.int (Ctx.rng ctx) (max 1 think));
            loop ()
          end
        in
        loop ();
        lock.Lock.acquire ctx;
        Ctx.work ctx 20;
        lock.Lock.release ctx)
  done;
  Engine.run eng;
  let label = Lock.algo_name algo in
  let recovery_stat = Stat.create label in
  (* Per stall release, time to the next successful timed acquisition:
     both lists are in nondecreasing event order. *)
  let entries = ref (List.rev !entries_rev) in
  List.iter
    (fun release ->
      let rec skip () =
        match !entries with
        | e :: rest when e < release ->
          entries := rest;
          skip ()
        | _ -> ()
      in
      skip ();
      match !entries with
      | e :: _ -> Stat.add recovery_stat (e - release)
      | [] -> ())
    (List.rev !releases_rev);
  let rows = Obs.profile_rows obs in
  let obs_aborts, obs_repairs =
    List.fold_left
      (fun (a, r) (row : Obs.row) ->
        (a + row.Obs.total.Obs.aborts, r + row.Obs.total.Obs.abandon_repairs))
      (0, 0) rows
  in
  let remote_aborts =
    match
      List.find_opt (fun (r : Obs.row) -> r.Obs.row_class = obs_class) rows
    with
    | Some r ->
      List.fold_left
        (fun acc (c, (cells : Obs.cells)) ->
          if c <> cluster_of 0 then acc + cells.Obs.aborts else acc)
        0 r.Obs.by_cluster
    | None -> 0
  in
  {
    algo;
    attempts = !attempts;
    acquisitions = !acquisitions;
    aborts = !aborts;
    fast_fails = !fast_fails;
    stalls = List.length !releases_rev;
    overshoot = Measure.of_stat cfg ~label over_stat;
    max_overshoot_us = Config.us_of_cycles cfg !max_overshoot;
    bound_ratio = !bound_ratio;
    recovery = Measure.of_stat cfg ~label recovery_stat;
    obs_aborts;
    obs_repairs;
    remote_aborts;
    final_free = lock.Lock.is_free ();
  }
