(* Crash storm: fail-stop processor crashes planted mid-critical-section
   (the CRASH experiment).

   A set of victim processors — spread round-robin across clusters so
   every cluster sees kills when the count allows — each take the lock at
   a scheduled instant, get halfway through a critical section, and
   fail-stop ([Machine.kill_proc] on themselves; the fiber parks at its
   next operation boundary, releasing nothing). Every other processor
   hammers the same lock through {!Locks.Lock.acquire_recoverable}: timed
   acquisition slices with a dead-holder {!Locks.Lock.recover} between
   them, so each orphaned hold is detected and force-released by whichever
   waiter notices first. Ticket — recoverable but not abortable — takes
   the same storm through its in-spin dead-holder check.

   The kills are planted directly rather than drawn from a [Fault] plan:
   mid-critical-section death is the adversarial case (a rate- or
   schedule-driven kill usually lands in think time), and the experiment
   wants each kill attributed to a known cluster at a known time. The
   rate/schedule machinery is exercised by the fault tests instead.

   What the storm measures, per algorithm:

   - conservation: every planted kill orphans one hold, and every orphan
     is recovered — observer recoveries must reach the kill count (a
     composite may exceed it: each constituent's forced release reports);
   - the recovery-latency distribution, kill to forced release, overall
     and attributed to the dead processor's cluster ({!Obs.crash_rows});
   - legality: an installed lockdep checker must see every forced release
     as a legal recovery transfer (recoveries counted, zero violations);
   - liveness: after the window every surviving processor runs one
     recoverable acquire/release — the storm must reach quiescence with
     the lock free ([final_free]), even when the last kill's corpse still
     holds it at window end. *)

open Eventsim
open Hector
open Hkernel
open Locks

type config = {
  p : int;
  n_clusters : int;
  n_kills : int;  (* victim processors, each killed once, mid-CS *)
  check_period_us : float;  (* recoverable-acquire slice (detector period) *)
  hold_us : float;  (* a worker's critical section *)
  think_us : float;
  window_us : float;
  seed : int;
}

let default_config =
  {
    p = 16;
    n_clusters = 4;
    n_kills = 6;
    check_period_us = 25.0;
    hold_us = 2.0;
    think_us = 5.0;
    window_us = 20_000.0;
    seed = 17;
  }

type result = {
  algo : Lock.algo;
  kills : int;  (* planted mid-CS kills performed *)
  acquisitions : int;  (* successful worker acquisitions *)
  obs_crashes : int;  (* crashes seen by the observer *)
  obs_recoveries : int;  (* forced releases, constituents included *)
  lockdep_recoveries : int;  (* checker-legalised recovery transfers *)
  lockdep_violations : int;  (* must be 0: recovery is not a protocol hole *)
  recovery : Measure.summary;  (* kill-to-forced-release latency, all kills *)
  by_cluster : (int * Measure.summary) list;
      (* recovery latency attributed to the dead processor's cluster *)
  final_free : bool;  (* lock free after the surviving-processor drain *)
}

let obs_class = "crashstorm"

let run ?(cfg = Config.hector) ?(config = default_config) algo =
  if config.n_clusters <= 0 || config.n_clusters > config.p then
    invalid_arg "Crash_storm.run: n_clusters out of range";
  if config.n_kills < 1 || config.n_kills > config.p - 1 then
    invalid_arg "Crash_storm.run: n_kills must leave a survivor";
  (* Ticket/Anderson need compare&swap; upgrade the configuration for
     exactly those algorithms so the rest of the family still runs on the
     paper's swap-only machine. *)
  let cfg =
    if Lock.needs_cas algo && not cfg.Config.has_cas then Config.with_cas cfg
    else cfg
  in
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let clustering =
    Clustering.create ~n_procs:config.p
      ~cluster_size:((config.p + config.n_clusters - 1) / config.n_clusters)
  in
  let cluster_of = Clustering.cluster_of_proc clustering in
  let n_clusters = Clustering.n_clusters clustering in
  let obs =
    Obs.create ~cluster_of ~n_clusters ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  let verify = Verify.create ~mode:`Record ~n_procs:(Config.n_procs cfg) () in
  Machine.set_verify machine (Some verify);
  let lock =
    Lock.make machine ~home:0 ~vclass:obs_class
      ~topo:(Clustering.topo clustering) algo
  in
  if not lock.Lock.recoverable then
    invalid_arg
      (Printf.sprintf "Crash_storm.run: %s is not recoverable"
         (Lock.algo_name algo));
  let check_period = max 1 (Config.cycles_of_us cfg config.check_period_us) in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let t_end = Config.cycles_of_us cfg config.window_us in
  let rng = Rng.create config.seed in
  let ctxs =
    Array.init config.p (fun proc -> Ctx.create machine ~proc (Rng.split rng))
  in
  (* Victims: round-robin across clusters, each cluster's highest-numbered
     processor not yet chosen — kills land in as many clusters as the kill
     count allows. Processor 0 never dies; it anchors the final drain. *)
  let victims =
    let pool = Array.make n_clusters [] in
    for proc = 1 to config.p - 1 do
      pool.(cluster_of proc) <- proc :: pool.(cluster_of proc)
    done;
    let sel = ref [] in
    let n = ref 0 in
    let progress = ref true in
    while !n < config.n_kills && !progress do
      progress := false;
      for c = 0 to n_clusters - 1 do
        if !n < config.n_kills then
          match pool.(c) with
          | v :: rest ->
            pool.(c) <- rest;
            sel := v :: !sel;
            incr n;
            progress := true
          | [] -> ()
      done
    done;
    Array.of_list (List.rev !sel)
  in
  let n_kills = Array.length victims in
  let is_victim = Array.make config.p false in
  Array.iter (fun v -> is_victim.(v) <- true) victims;
  let kills = ref 0 in
  let acquisitions = ref 0 in
  (* Each victim sleeps until its scheduled instant — kills spaced evenly
     through the window — then dies halfway through a hold. The doomed
     acquisition itself is recoverable: an earlier victim's corpse may
     still own the lock when a later victim wants in. *)
  Array.iteri
    (fun k victim ->
      let ctx = ctxs.(victim) in
      Process.spawn eng (fun () ->
          let at = t_end * (k + 1) / (n_kills + 1) in
          let delay = at - Machine.now machine in
          if delay > 0 then Ctx.interruptible_pause ctx delay;
          Lock.acquire_recoverable ~check_period lock ctx;
          if hold > 1 then Ctx.work ctx (hold / 2);
          incr kills;
          Machine.kill_proc machine victim;
          (* Parks here — the release below it never runs. *)
          Ctx.work ctx 1;
          lock.Lock.release ctx))
    victims;
  (* Workers on every surviving processor, in every cluster. *)
  for proc = 0 to config.p - 1 do
    if not is_victim.(proc) then begin
      let ctx = ctxs.(proc) in
      Process.spawn eng (fun () ->
          let rec loop () =
            if Machine.now machine < t_end then begin
              Lock.acquire_recoverable ~check_period lock ctx;
              incr acquisitions;
              if hold > 0 then Ctx.work ctx hold;
              lock.Lock.release ctx;
              if think > 0 then
                Ctx.work ctx ((think / 2) + Rng.int (Ctx.rng ctx) (max 1 think));
              loop ()
            end
          in
          loop ();
          (* Final drain: the last kill's corpse may hold the lock with no
             timed waiter left to notice, so the drain must itself run the
             detector — and a victim's doomed acquisition may still be in
             flight past the window under heavy contention, so wait for
             every planted kill first or quiescence could leave the lock
             with an unrecovered corpse. *)
          while !kills < n_kills do
            Ctx.work ctx check_period
          done;
          Lock.acquire_recoverable ~check_period lock ctx;
          Ctx.work ctx 20;
          lock.Lock.release ctx)
    end
  done;
  Engine.run eng;
  let label = Lock.algo_name algo in
  let crash_rows = Obs.crash_rows obs in
  let all_stat = Stat.create label in
  let by_cluster =
    List.filter_map
      (fun (r : Obs.crash_row) ->
        if r.Obs.cr_latencies = [] then None
        else begin
          let s = Stat.create (Printf.sprintf "%s.c%d" label r.Obs.cr_cluster) in
          List.iter
            (fun l ->
              Stat.add s l;
              Stat.add all_stat l)
            r.Obs.cr_latencies;
          Some (r.Obs.cr_cluster, Measure.of_stat cfg ~label:(Stat.name s) s)
        end)
      crash_rows
  in
  {
    algo;
    kills = !kills;
    acquisitions = !acquisitions;
    obs_crashes = Obs.crashes_observed obs;
    obs_recoveries = Obs.recoveries_observed obs;
    lockdep_recoveries = Verify.recoveries verify;
    lockdep_violations = Verify.violation_count verify;
    recovery = Measure.of_stat cfg ~label all_stat;
    by_cluster;
    final_free = lock.Lock.is_free ();
  }
