(* Measurement summaries in microseconds.

   Experiments record latencies in cycles ({!Eventsim.Stat}); a [summary]
   converts to the paper's unit at the configured clock rate and carries the
   tail statistics the paper quotes (the >2 ms starvation fraction of
   Section 4.1.2). *)

open Eventsim
open Hector

type summary = {
  label : string;
  n : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  min_us : float;
  max_us : float;
  frac_above_2ms : float;
}

let of_stat cfg ~label stat =
  let us c = Config.us_of_cycles cfg c in
  {
    label;
    n = Stat.count stat;
    mean_us = Config.us_of_cycles cfg 1 *. Stat.mean stat;
    p50_us = us (Stat.median stat);
    p90_us = us (Stat.percentile stat 0.90);
    p99_us = us (Stat.percentile stat 0.99);
    p999_us = us (Stat.percentile stat 0.999);
    min_us = us (Stat.min_value stat);
    max_us = us (Stat.max_value stat);
    frac_above_2ms = Stat.fraction_above stat (Config.cycles_of_us cfg 2000.0);
  }

let pp ppf s =
  Format.fprintf ppf
    "%-14s n=%6d mean=%8.2fus p50=%8.2f p99=%9.2f p99.9=%9.2f max=%9.2f \
     >2ms=%5.1f%%"
    s.label s.n s.mean_us s.p50_us s.p99_us s.p999_us s.max_us
    (100.0 *. s.frac_above_2ms)
