(** Planted-violation probes for the lockdep checker ({!Verify}): each
    probe commits one class of locking error on purpose and reports
    whether the checker caught it; [Clean] runs a fault-free storm that
    must stay silent. Together they establish both directions of checker
    correctness — fires on every planted class, silent on correct code. *)

type probe =
  | Abba  (** staggered inverted lock order — possible, never strikes *)
  | Leak  (** reserve bit still set at workload end *)
  | Interrupt_spin  (** reserve wait inside an interrupt handler *)
  | Stalled_holder  (** holder dies; unbounded waiter; watchdog [Stall] *)
  | Deadlock  (** true ABBA deadlock; watchdog [Deadlock_cycle] *)
  | Aborted_waiter
      (** ABBA shape with {e timed} inner acquisitions that expire,
          retreat and retry — self-resolving, so the checker must stay
          silent: no phantom order/deadlock report, no stall *)
  | Dead_owner
      (** holder fail-stops mid-critical-section; a survivor's detector
          force-releases the corpse's hold — the checker must legalise it
          as a recovery transfer: zero violations and [recoveries] > 0 *)
  | Clean  (** fault-free storm under the checker: zero violations *)

val probe_name : probe -> string
val all : probe list

type result = {
  probe : probe;
  expected : Verify.kind option;  (** [None]: no violation expected *)
  violations : int;  (** all violations recorded *)
  hits : int;  (** violations of the expected kind *)
  aborted : bool;  (** run terminated by the watchdog raising *)
  ok : bool;  (** planted class caught, or clean run silent *)
  first : string;  (** first violation, for display *)
}

(** Run one probe under a fresh checker. The watchdog probes
    ([Stalled_holder], [Deadlock]) would run forever unchecked; here they
    terminate via the watchdog's {!Verify.Violation} (caught — [aborted]
    is set). *)
val run : probe -> result

(** All probes, in {!all} order. *)
val run_all : unit -> result list
