(** Fail-stop crashes planted mid-critical-section (the CRASH experiment).

    Victim processors — spread round-robin across clusters — each take
    the lock at a scheduled instant and fail-stop halfway through the
    hold, releasing nothing. Every other processor drives the lock
    through {!Locks.Lock.acquire_recoverable}, so each orphaned hold is
    detected against the machine's liveness oracle and force-released by
    whichever waiter notices first. The storm checks conservation (every
    kill recovered), legality (an installed lockdep checker sees each
    forced release as a recovery transfer, zero violations), the
    kill-to-recovery latency distribution per cluster, and quiescence
    (lock free after a final surviving-processor drain — even when the
    last corpse still holds it at window end). *)

open Hector
open Locks

type config = {
  p : int;
  n_clusters : int;
  n_kills : int;  (** victim processors, each killed once, mid-CS *)
  check_period_us : float;
      (** recoverable-acquire slice — the detector period *)
  hold_us : float;  (** a worker's critical section *)
  think_us : float;
  window_us : float;
  seed : int;
}

val default_config : config

type result = {
  algo : Lock.algo;
  kills : int;  (** planted mid-CS kills performed *)
  acquisitions : int;  (** successful worker acquisitions *)
  obs_crashes : int;  (** crashes seen by the observer *)
  obs_recoveries : int;
      (** forced releases observed; a composite reports one per
          constituent level, so this may exceed [kills] *)
  lockdep_recoveries : int;  (** checker-legalised recovery transfers *)
  lockdep_violations : int;  (** must be 0 *)
  recovery : Measure.summary;
      (** kill-to-forced-release latency over all kills, in µs *)
  by_cluster : (int * Measure.summary) list;
      (** recovery latency attributed to the dead processor's cluster *)
  final_free : bool;  (** lock free after the surviving-processor drain *)
}

(** The observer class the lock reports under ("crashstorm"). *)
val obs_class : string

(** Run the storm over one algorithm. Raises [Invalid_argument] if the
    algorithm is not recoverable ({!Locks.Lock.t.recoverable}) or the
    config is out of range. *)
val run : ?cfg:Config.t -> ?config:config -> Lock.algo -> result
