(* Cross-cluster lock contention (the NUMA-LOCKS experiment).

   The Figure 5 stress pattern — [p] processors hammering one lock for a
   window of virtual time — but with the processors partitioned into
   kernel clusters ({!Hkernel.Clustering}) and the lock built against that
   topology ([Lock.make ~topo]), so NUMA-aware algorithms can keep
   hand-offs inside a cluster. A contention observer attributes every
   contended hand-off as cluster-local or cross-cluster; the remote
   fraction is the quantity the composites (Cohort/HMCS/CNA) exist to
   drive down, and what this workload compares against flat MCS.

   The critical section touches data homed beside the lock, as in
   [Lock_stress]: cross-cluster hand-offs therefore also drag the data's
   cache/memory traffic across stations, which is what stretches the mean
   under remote hand-off churn. *)

open Eventsim
open Hector
open Hkernel
open Locks

type config = {
  p : int;
  n_clusters : int;
  hold_us : float;
  think_us : float; (* per-iteration measurement-loop bookkeeping *)
  warmup_us : float;
  window_us : float;
  seed : int;
}

let default_config =
  {
    p = 16;
    n_clusters = 4;
    hold_us = 0.0;
    think_us = 3.0;
    warmup_us = 200.0;
    window_us = 20_000.0;
    seed = 7;
  }

type result = {
  summary : Measure.summary; (* acquisition latency, hold excluded *)
  acquisitions : int;
  local_handoffs : int; (* contended hand-offs inside a cluster *)
  remote_handoffs : int; (* contended hand-offs across clusters *)
  max_wait_us : float; (* worst single acquisition wait *)
  atomics : int;
}

(* The lock's top-level activity is profiled under this class; a cohort's
   constituents report under "<class>.local" / "<class>.global" and are
   deliberately excluded from the hand-off accounting (a global-lock
   hand-off inside the composite would otherwise be counted twice). *)
let obs_class = "numa"

let run ?(cfg = Config.hector) ?(config = default_config) algo =
  if config.n_clusters <= 0 || config.n_clusters > config.p then
    invalid_arg "Numa_stress.run: n_clusters out of range";
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let clustering =
    Clustering.create ~n_procs:config.p
      ~cluster_size:((config.p + config.n_clusters - 1) / config.n_clusters)
  in
  let obs =
    Obs.create
      ~cluster_of:(Clustering.cluster_of_proc clustering)
      ~n_clusters:(Clustering.n_clusters clustering)
      ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  let lock =
    Lock.make machine ~home:0 ~vclass:obs_class
      ~topo:(Clustering.topo clustering) algo
  in
  let hold = Config.cycles_of_us cfg config.hold_us in
  let think = Config.cycles_of_us cfg config.think_us in
  let warmup = Config.cycles_of_us cfg config.warmup_us in
  let t_end = warmup + Config.cycles_of_us cfg config.window_us in
  let stat = Stat.create (Lock.algo_name algo) in
  let data = Array.init 8 (fun i -> Machine.alloc machine ~home:0 i) in
  let rng = Rng.create config.seed in
  let acquisitions = ref 0 in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng) in
    Process.spawn eng (fun () ->
        let rec loop () =
          if Machine.now machine < t_end then begin
            let t0 = Machine.now machine in
            lock.Lock.acquire ctx;
            let t_in = Machine.now machine in
            if hold > 0 then begin
              let accesses = max 1 (hold / 40) in
              for i = 1 to accesses do
                let c = data.(i land 7) in
                if i land 1 = 0 then ignore (Ctx.read ctx c)
                else Ctx.write ctx c i;
                Ctx.work ctx 14
              done;
              let spent = Machine.now machine - t_in in
              if spent < hold then Ctx.work ctx (hold - spent)
            end;
            let t_out = Machine.now machine in
            lock.Lock.release ctx;
            let t_done = Machine.now machine in
            if t0 >= warmup then begin
              incr acquisitions;
              Stat.add stat (t_done - t0 - (t_out - t_in))
            end;
            if think > 0 then
              Ctx.work ctx ((think / 2) + Rng.int (Ctx.rng ctx) (max 1 think));
            loop ()
          end
        in
        loop ())
  done;
  Engine.run eng;
  let local_handoffs, remote_handoffs, max_wait_cycles =
    match
      List.find_opt
        (fun (r : Obs.row) -> r.Obs.row_class = obs_class)
        (Obs.profile_rows obs)
    with
    | Some r ->
      ( r.Obs.total.Obs.handoffs_local,
        r.Obs.total.Obs.handoffs_remote,
        r.Obs.total.Obs.max_wait_cycles )
    | None -> (0, 0, 0)
  in
  {
    summary = Measure.of_stat cfg ~label:(Lock.algo_name algo) stat;
    acquisitions = !acquisitions;
    local_handoffs;
    remote_handoffs;
    max_wait_us = Config.us_of_cycles cfg max_wait_cycles;
    atomics = Machine.atomics machine;
  }
