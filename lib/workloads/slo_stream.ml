(* Sustained-request SLO stream (the SLO experiment).

   Every other workload in this directory is closed-loop: p processors
   issue an operation, wait for it, think, repeat — so the offered load
   falls automatically when the system slows down, and tail latency is
   bounded by construction. A service serving heavy user traffic is the
   opposite: requests arrive on their own clock (open loop), queue behind
   the processor that must serve them, and the latency a user sees is
   queueing delay plus service time. That is the regime where p50/p99/p99.9
   percentiles mean something, and it is the ROADMAP's million-user axis.

   The workload: a sharded {!Hkernel.Khash} pre-populated with [elements]
   keys (the headline configuration uses 10^6). Requests arrive in an open
   loop — exponential inter-arrival times at a total offered rate of
   [rate_per_ms] requests per virtual millisecond — and each is dispatched
   to a uniformly random server processor, modelling an unaware front-end.
   Each server drains its FIFO backlog: a request is a read-mostly table
   operation (optimistic seqlock lookup of a uniform key, or an in-place
   update through [with_element] with [element_work_us] of work). Latency
   is measured arrival-to-completion, so it includes time spent queued
   behind earlier requests on the same server — push the offered rate past
   the table's capacity and the p99/p99.9 climb long before the mean does.

   The run is always instrumented: a {!Verify} checker (the experiment
   requires zero violations) and an {!Obs} observer grouped by HECTOR
   station. The arrival queues are host-side request buffers (the NIC ring,
   not simulated kernel memory); every table access inside a request is
   charged through [Ctx] as usual. *)

open Eventsim
open Hector
open Locks
open Hkernel

type config = {
  p : int; (* server processors *)
  elements : int; (* keys pre-inserted; requests target these *)
  nbins : int;
  shards : int;
  rate_per_ms : float; (* total offered load, requests per virtual ms *)
  requests : int; (* arrivals generated *)
  read_ratio : float; (* fraction of requests that are lookups *)
  element_work_us : float; (* update work under the element *)
  lock_algo : Lock.algo;
  seed : int;
}

let default_config =
  {
    p = 16;
    elements = 1_000_000;
    nbins = 1 lsl 17;
    shards = 16;
    rate_per_ms = 400.0;
    requests = 4_000;
    read_ratio = 0.9;
    element_work_us = 2.0;
    lock_algo = Lock.Mcs_h2;
    seed = 31;
  }

type result = {
  offered_per_ms : float;
  completed : int; (* always [config.requests]: the stream drains *)
  read_summary : Measure.summary; (* arrival-to-completion, reads *)
  update_summary : Measure.summary; (* arrival-to-completion, updates *)
  makespan_us : float;
  achieved_per_ms : float; (* completed / makespan *)
  peak_backlog : int; (* max requests queued (all servers) at any instant *)
  optimistic_hits : int;
  optimistic_fallbacks : int;
  atomics : int;
  lockdep_violations : int; (* must be 0 *)
  obs_rows : Obs.row list;
}

type request = { t_arrival : int; is_read : bool; key : int }

let run ?(cfg = Config.hector) ?(config = default_config) () =
  if config.read_ratio < 0.0 || config.read_ratio > 1.0 then
    invalid_arg "Slo_stream.run: read_ratio out of [0,1]";
  if config.rate_per_ms <= 0.0 then
    invalid_arg "Slo_stream.run: rate_per_ms must be positive";
  if config.requests <= 0 then
    invalid_arg "Slo_stream.run: requests must be positive";
  if config.elements <= 0 then
    invalid_arg "Slo_stream.run: elements must be positive";
  if config.p <= 0 || config.p > Config.n_procs cfg then
    invalid_arg "Slo_stream.run: p out of range for the machine";
  let eng = Engine.create () in
  let machine = Machine.create eng cfg in
  let verify = Verify.create ~n_procs:(Config.n_procs cfg) () in
  Machine.set_verify machine (Some verify);
  let n_stations =
    let m = ref 0 in
    for proc = 0 to Config.n_procs cfg - 1 do
      m := max !m (Config.station_of_proc cfg proc)
    done;
    !m + 1
  in
  let obs =
    Obs.create
      ~cluster_of:(Config.station_of_proc cfg)
      ~n_clusters:n_stations ~n_procs:(Config.n_procs cfg) ()
  in
  Machine.set_obs machine (Some obs);
  let homes = List.init config.p (fun i -> i) in
  let table =
    Khash.create machine ~granularity:Khash.Sharded ~nbins:config.nbins
      ~shards:config.shards ~vname:"slo" ~lock_algo:config.lock_algo ~homes
  in
  for k = 0 to config.elements - 1 do
    ignore (Khash.insert_untimed table k ~status0:0 ~make:(fun _ -> ()))
  done;
  let rng0 = Rng.create config.seed in
  let rng_arrival = Rng.split rng0 in
  (* Open-loop arrival plan, generated up front so every server knows how
     many requests it owes before the engine starts (clean termination
     without sentinels). Exponential inter-arrival gaps at the offered
     rate; dispatch is uniformly random over the servers. *)
  let mean_gap_cycles =
    float_of_int (Config.cycles_of_us cfg (1000.0 /. config.rate_per_ms))
  in
  let assigned = Array.make config.p 0 in
  let plan =
    let t = ref 0.0 in
    Array.init config.requests (fun _ ->
        let u = Rng.float rng_arrival in
        t := !t +. (-.log (1.0 -. u) *. mean_gap_cycles);
        let server = Rng.int rng_arrival config.p in
        let is_read = Rng.float rng_arrival < config.read_ratio in
        let key = Rng.int rng_arrival config.elements in
        assigned.(server) <- assigned.(server) + 1;
        (int_of_float !t, server, is_read, key))
  in
  let queues = Array.init config.p (fun _ -> Queue.create ()) in
  let parked : (unit -> unit) option array = Array.make config.p None in
  let backlog = ref 0 in
  let peak_backlog = ref 0 in
  Array.iter
    (fun (at, server, is_read, key) ->
      Engine.schedule eng ~at (fun () ->
          Queue.add { t_arrival = at; is_read; key } queues.(server);
          incr backlog;
          if !backlog > !peak_backlog then peak_backlog := !backlog;
          match parked.(server) with
          | Some resume ->
            parked.(server) <- None;
            resume ()
          | None -> ()))
    plan;
  let read_stat = Stat.create "slo-read" in
  let update_stat = Stat.create "slo-update" in
  let work = Config.cycles_of_us cfg config.element_work_us in
  for proc = 0 to config.p - 1 do
    let ctx = Ctx.create machine ~proc (Rng.split rng0) in
    Process.spawn eng (fun () ->
        let served = ref 0 in
        while !served < assigned.(proc) do
          match Queue.take_opt queues.(proc) with
          | None -> Process.suspend (fun k -> parked.(proc) <- Some k)
          | Some req ->
            decr backlog;
            (if req.is_read then begin
               let r = Khash.lookup table ctx req.key in
               assert (r <> None);
               Stat.add read_stat (Machine.now machine - req.t_arrival)
             end
             else begin
               let r =
                 Khash.with_element table ctx req.key (fun _ ->
                     Ctx.work ctx work)
               in
               assert (r <> None);
               Stat.add update_stat (Machine.now machine - req.t_arrival)
             end);
            incr served
        done)
  done;
  Engine.run eng;
  Verify.finish verify ~now:(Machine.now machine);
  assert (!backlog = 0);
  Array.iter (fun q -> assert (Queue.is_empty q)) queues;
  let makespan_us = Config.us_of_cycles cfg (Machine.now machine) in
  {
    offered_per_ms = config.rate_per_ms;
    completed = Stat.count read_stat + Stat.count update_stat;
    read_summary = Measure.of_stat cfg ~label:"slo-read" read_stat;
    update_summary = Measure.of_stat cfg ~label:"slo-update" update_stat;
    makespan_us;
    achieved_per_ms =
      (if makespan_us > 0.0 then
         float_of_int config.requests /. (makespan_us /. 1000.0)
       else 0.0);
    peak_backlog = !peak_backlog;
    optimistic_hits = Khash.optimistic_hits table;
    optimistic_fallbacks = Khash.optimistic_fallbacks table;
    atomics = Machine.atomics machine;
    lockdep_violations = Verify.violation_count verify;
    obs_rows = Obs.profile_rows obs;
  }
