(** Cross-cluster lock contention: the Figure 5 stress pattern with the
    processors partitioned into kernel clusters and the lock built against
    that topology, plus a contention observer classifying each contended
    hand-off as cluster-local or cross-cluster. The remote fraction is
    what the NUMA-aware composites are measured on against flat MCS. *)

open Hector
open Locks

type config = {
  p : int;
  n_clusters : int;
  hold_us : float;
  think_us : float;  (** per-iteration loop bookkeeping *)
  warmup_us : float;
  window_us : float;
  seed : int;
}

val default_config : config

type result = {
  summary : Measure.summary;  (** acquisition latency, hold excluded *)
  acquisitions : int;
  local_handoffs : int;  (** contended hand-offs inside a cluster *)
  remote_handoffs : int;  (** contended hand-offs across clusters *)
  max_wait_us : float;  (** worst single acquisition wait *)
  atomics : int;
}

val run : ?cfg:Config.t -> ?config:config -> Lock.algo -> result
