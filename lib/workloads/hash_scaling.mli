(** Sharded hash-table scaling (experiment HASH-SCALING): a read/update mix
    over one table, comparing the single-lock [Hybrid] strategy against
    [Sharded] granularity at several shard counts, with the per-shard
    seqlock optimistic read path on or off. *)

open Locks
open Hkernel

type config = {
  p : int;
  nbins : int;
  shards : int;  (** meaningful for [Sharded] only *)
  keys_per_proc : int;
  ops : int;
  read_ratio : float;  (** fraction of ops that are read-only lookups *)
  churn_fraction : float;
      (** fraction of non-read ops that delete and re-insert their key
          (chain mutations — seqlock writer traffic) instead of updating
          in place *)
  element_work_us : float;
  think_us : float;
  granularity : Khash.granularity;
  optimistic : bool;
      (** lookups via {!Khash.lookup} (seqlock-validated unlocked probe
          under [Sharded]) vs always {!Khash.lookup_locked} *)
  lock_algo : Lock.algo;
  seed : int;
}

val default_config : config

type result = {
  granularity : Khash.granularity;
  shards : int;
  optimistic : bool;
  read_summary : Measure.summary;  (** lookup latency *)
  update_summary : Measure.summary;  (** update latency, element work excluded *)
  makespan_us : float;
  throughput_ops_ms : float;  (** completed ops per virtual millisecond *)
  optimistic_hits : int;
  optimistic_fallbacks : int;
  reserve_conflicts : int;
  atomics : int;
  obs_rows : Obs.row list;  (** per-class contention profile, when [observe] *)
}

(** [run ()] executes one configuration. [observe] installs a contention
    observer so [obs_rows] carries the per-shard profile (class
    [khash.shard<i>] / [khash.seq<i>]). *)
val run :
  ?cfg:Hector.Config.t -> ?config:config -> ?observe:bool -> unit -> result
