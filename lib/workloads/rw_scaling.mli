(** Read-mostly page-descriptor lookups (the RW-SCALING experiment):
    seqlock vs distributed RW lock vs per-cluster replication vs a plain
    exclusive lock, at 95/99/99.9% read ratios across 1–4 clusters. A
    Verify checker and Obs observer are always installed — the smoke
    gate's "reader parallelism > 1, zero lockdep violations" facts come
    from instrumentation. *)

open Hector
open Locks

type style =
  | Mutex of Lock.algo  (** every access behind one exclusive lock *)
  | Rw_lock of { writer : Lock.algo; policy : Rwlock.policy; centralised : bool }
  | Seqlock_style of { writer : Lock.algo }
      (** optimistic sample/validate readers, locked fallback; writers
          under [writer] *)
  | Replicated of { writer : Lock.algo }
      (** one replica per cluster: local unlocked reads, writers store
          through every replica under [writer] *)

val style_name : style -> string

type config = {
  p : int;
  n_clusters : int;
  ops : int;  (** per processor *)
  read_ratio : float;
  read_work_us : float;
  write_work_us : float;
  think_us : float;
  style : style;
  seed : int;
}

val default_config : config

type result = {
  style : style;
  style_name : string;
  read_ratio : float;
  n_clusters : int;
  p : int;
  read_summary : Measure.summary;  (** latency, section work excluded *)
  write_summary : Measure.summary;
  makespan_us : float;
  throughput_ops_ms : float;
  read_throughput_ops_ms : float;
  reads_done : int;
  writes_done : int;
  peak_readers : int;
      (** host-tracked peak concurrent read sections — 1 by construction
          for [Mutex], > 1 when reads actually parallelise *)
  read_remote : int;
      (** RW styles: read-path indicator ops that crossed a cluster
          boundary (0 for the distributed layout) *)
  seq_aborts : int;
  lockdep_violations : int;
  obs_rows : Obs.row list;
}

(** The profile class the guarded structure reports under ("rw"). *)
val obs_class : string

val run : ?cfg:Config.t -> ?config:config -> unit -> result
