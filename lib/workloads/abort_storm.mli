(** Timed acquisition under a planted cross-cluster holder stall (the
    ABORT-STORM experiment).

    One processor repeatedly takes the lock and goes dark far longer than
    any waiter's deadline; every other processor attempts through
    {!Locks.Lock.try_acquire_for}. With abandonment, each timed waiter —
    at whichever level of the composite its wait happens to sit — must
    return within a bounded overshoot of its own deadline instead of
    riding out the stall, and the lock must recover (next successful
    acquisition) promptly once the holder releases. The per-cluster abort
    attribution from the contention observer checks that waiters expire
    beyond the staller's own cluster, i.e. at every level of the NUMA
    composite. *)

open Hector
open Locks

type config = {
  p : int;
  n_clusters : int;
  timeout_us : float;  (** per-attempt deadline for the timed waiters *)
  stall_us : float;  (** how long the planted holder goes dark *)
  stall_idle_us : float;  (** gap between stalls (the recovery window) *)
  hold_us : float;  (** a successful waiter's critical section *)
  think_us : float;
  window_us : float;
  seed : int;
}

val default_config : config

type result = {
  algo : Lock.algo;
  attempts : int;  (** timed acquisition attempts (staller excluded) *)
  acquisitions : int;  (** timed attempts that got the lock *)
  aborts : int;  (** timed attempts that expired and gave up *)
  fast_fails : int;
      (** of those, attempts refused before the deadline because the
          waiter's abandoned node from an earlier expiry was still
          enqueued (the timed face never enqueues twice) *)
  stalls : int;  (** planted holder stalls completed *)
  overshoot : Measure.summary;
      (** per waited-out expiry (fast-fails excluded): return time minus
          deadline, in µs *)
  max_overshoot_us : float;
  bound_ratio : float;
      (** worst (return − issue) / timeout over failed attempts — the
          "bounded multiple of the deadline" of the acceptance bound *)
  recovery : Measure.summary;
      (** per stall: release to the next successful timed acquisition *)
  obs_aborts : int;  (** observer-counted aborts, constituents included *)
  obs_repairs : int;  (** abandoned nodes reclaimed by later hand-offs *)
  remote_aborts : int;
      (** aborts attributed to clusters other than the staller's *)
  final_free : bool;  (** lock free after the final untimed drain *)
}

(** The observer class the lock reports under ("abortstorm"). *)
val obs_class : string

(** Run the storm over one algorithm. Raises [Invalid_argument] if the
    algorithm is not abortable ({!Locks.Lock.t.abortable}) or the config
    is out of range. *)
val run : ?cfg:Config.t -> ?config:config -> Lock.algo -> result
